// Package decent is the public API of the reproduction of "Please, do not
// decentralize the Internet with (permissionless) blockchains!" (Garcia
// Lopez, Montresor, Datta — ICDCS 2019).
//
// The paper is a position paper: its evaluation is a set of quantitative
// claims about open peer-to-peer systems, permissionless blockchains, and
// their permissioned/edge alternatives. This library rebuilds every system
// those claims rest on — Kademlia/Chord/one-hop/Gnutella overlays, gossip,
// churn and sybil attack models, a proof-of-work blockchain with its mining
// economy, PBFT/Raft and a Fabric-style permissioned stack, and an edge
// placement model — and regenerates each claim as an experiment with a shape
// verdict.
//
// Quick start:
//
//	reg, _ := decent.Experiments()
//	res, _ := reg.Run("E06", decent.Config{Seed: 1})
//	fmt.Println(res)
//
// Parameter sweeps and multi-seed replication run through the harness:
//
//	rep, _ := decent.RunSweep(decent.Sweep{
//		Experiments: []string{"E03", "E06"},
//		Seeds:       []int64{1, 2, 3, 4, 5},
//	}, 0) // 0 workers = GOMAXPROCS
//	fmt.Println(rep)
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results.
package decent

import (
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
)

// Config controls an experiment run. It is re-exported from the core
// framework: Seed pins determinism, Scale trades fidelity for speed, and
// Params carries named per-experiment knobs for sweeps.
type Config = core.Config

// Result is an experiment outcome: regenerated tables/figures plus shape
// checks.
type Result = core.Result

// Experiment is one reproducible paper claim.
type Experiment = core.Experiment

// Registry holds the paper's experiments.
type Registry = core.Registry

// MaxSeeds bounds how many seeds one sweep or replication may expand to.
const MaxSeeds = harness.MaxSeeds

// Sweep is a grid of experiment runs: experiment ids × seeds × scales ×
// named knobs. Expand it with Jobs and run it with RunParallel, or use
// RunSweep for the whole pipeline.
type Sweep = harness.Sweep

// Job is one experiment execution within a sweep.
type Job = harness.Job

// JobResult pairs a job with its outcome.
type JobResult = harness.JobResult

// Report is an aggregated sweep: per-scenario mean/stddev/95%-CI metrics
// and majority-vote shape verdicts, exportable as JSON or CSV.
type Report = harness.Report

// Runner is the harness worker pool for custom registries.
type Runner = harness.Runner

// Transport re-exports — the unified WAN layer every substrate's message
// delivery rides on. Library users compose custom scenarios the same way
// the experiments do: build a Sim, attach a Transport, realize a
// TransportTopology, and schedule condition windows on it.

// Sim is the deterministic discrete-event kernel.
type Sim = sim.Sim

// NewSim builds a simulator whose named RNG streams derive from seed.
func NewSim(seed int64) *Sim {
	return sim.New(sim.WithSeed(seed))
}

// Transport is the simulated wide-area network: regional latencies,
// asymmetric access bandwidth, loss, partitions, and scheduled condition
// windows, with allocation-free Send/Broadcast delivery.
type Transport = netmodel.Net

// TransportOption configures a Transport (jitter, loss).
type TransportOption = netmodel.Option

// WithJitter and WithLoss are the Transport constructor options.
var (
	WithJitter = netmodel.WithJitter
	WithLoss   = netmodel.WithLoss
)

// NewTransport attaches a WAN model to the simulator.
func NewTransport(s *Sim, opts ...TransportOption) *Transport {
	return netmodel.New(s, opts...)
}

// Region is a coarse geographic location on the Transport.
type Region = netmodel.Region

// TransportNode identifies a node attached to the Transport.
type TransportNode = netmodel.NodeID

// The supported regions.
const (
	NorthAmerica = netmodel.NorthAmerica
	Europe       = netmodel.Europe
	Asia         = netmodel.Asia
	SouthAmerica = netmodel.SouthAmerica
	Oceania      = netmodel.Oceania
	Africa       = netmodel.Africa
)

// TransportTopology describes a node population statistically (weighted
// regional mix plus bandwidth classes) for Transport.BuildTopology.
type TransportTopology = netmodel.TopologySpec

// RegionWeight is one component of a regional mix.
type RegionWeight = netmodel.RegionWeight

// BandwidthClass is one weighted access-link tier.
type BandwidthClass = netmodel.BandwidthClass

// MixPreset returns one of the named regional mixes (1..NumMixPresets).
func MixPreset(i int) ([]RegionWeight, error) {
	return netmodel.MixPreset(i)
}

// NumMixPresets is the count of named regional mixes.
const NumMixPresets = netmodel.NumMixPresets

// Shared transport pacing defaults (substrate retry/pacing timescales).
const (
	TransportRetryDelay = netmodel.DefaultRetryDelay
	TransportPacing     = netmodel.DefaultPacing
)

// Sharded-kernel re-exports — the conservatively parallel event kernel.
// A ShardedSim partitions one simulation into per-shard event queues that
// execute concurrently inside time windows bounded by the minimum
// cross-shard delivery delay; cross-shard messages land through a mailbox
// merged deterministically at every window barrier, so results are
// byte-identical at any worker count.

// ShardedSim is the conservatively parallel discrete-event kernel: a
// fixed set of per-shard Sim queues advancing in lockstep windows.
type ShardedSim = sim.ShardedSim

// ShardedSimOption configures a ShardedSim.
type ShardedSimOption = sim.ShardedOption

// WithShardSeed, WithShardWorkers, and WithShardObserver are the
// ShardedSim constructor options: master seed (per-shard streams derive
// from it), worker goroutine count (an execution knob — results are
// identical at every value), and telemetry collector.
var (
	WithShardSeed     = sim.WithShardSeed
	WithShardWorkers  = sim.WithShardWorkers
	WithShardObserver = sim.WithShardObserver
)

// NewShardedSim builds a sharded kernel with the given shard count and
// conservative window. The window must not exceed the minimum cross-shard
// delivery delay of whatever model schedules cross-shard events — for a
// Transport, TransportDelayFloor computes that bound.
func NewShardedSim(shards int, window time.Duration, opts ...ShardedSimOption) (*ShardedSim, error) {
	return sim.NewSharded(shards, window, opts...)
}

// NewShardedTransport attaches a WAN model that spans a sharded kernel:
// nodes are assigned to shards round-robin, deliveries are scheduled on
// the receiving node's shard, and RNG draws come from the sender's shard
// stream. Condition windows and telemetry instruments are not supported
// on a sharded Transport; see the netmodel package docs.
func NewShardedTransport(ss *ShardedSim, opts ...TransportOption) *Transport {
	return netmodel.NewSharded(ss, opts...)
}

// TransportDelayFloor returns the minimum one-way delivery delay a
// Transport with the given jitter fraction can draw between the listed
// regions — the largest safe conservative window for a ShardedSim whose
// cross-shard traffic rides that Transport.
func TransportDelayFloor(jitter float64, regions ...Region) time.Duration {
	return netmodel.DelayFloor(jitter, regions...)
}

// Telemetry re-exports — the zero-cost-when-off run-telemetry layer.
// Attach a Collector to a run (Config.Obs, or NewObservedSim for custom
// scenarios) and the kernel plus every instrumented subsystem record
// counters, streaming latency histograms, and optionally a Chrome
// trace-event log into it. A nil Collector is the off switch: every
// recording call is a nil-receiver no-op and the hot paths stay
// allocation-free.

// Collector gathers one run's telemetry: named counters and gauges,
// constant-memory streaming histograms, kernel statistics, and an
// optional bounded event trace.
type Collector = obs.Collector

// CollectorOption configures a Collector.
type CollectorOption = obs.Option

// NewCollector builds a telemetry collector. Without options it records
// counters, gauges, and histograms; add WithTrace to also buffer events.
func NewCollector(opts ...CollectorOption) *Collector {
	return obs.NewCollector(opts...)
}

// WithTrace enables the event trace with the given buffer limit (<= 0
// means DefaultTraceLimit); once full, further events increment a drop
// counter instead of growing memory.
var WithTrace = obs.WithTrace

// DefaultTraceLimit is the default event-trace buffer size.
const DefaultTraceLimit = obs.DefaultTraceLimit

// TelemetrySnapshot is a Collector's deterministic end-of-run summary:
// kernel statistics plus sorted counter, gauge, and histogram views.
type TelemetrySnapshot = obs.Snapshot

// Trace is the bounded event log a Collector buffers when built with
// WithTrace; WriteJSON renders it in Chrome trace-event format
// (chrome://tracing, Perfetto).
type Trace = obs.Trace

// HostSample carries host-side run measurements (wall time, heap, alloc
// deltas). These are machine facts: they ride on JobResult and the
// report's volatile resources/host.json, never on deterministic output.
type HostSample = obs.HostSample

// NewObservedSim builds a simulator with a telemetry collector attached:
// the kernel reports event and queue statistics to it, and transports
// built on the sim auto-register their instruments.
func NewObservedSim(seed int64, col *Collector) *Sim {
	return sim.New(sim.WithSeed(seed), sim.WithObserver(col))
}

// Experiments returns the full registry (E01–E19) in paper order.
func Experiments() (*Registry, error) {
	return experiments.Registry()
}

// Knobs lists the sweepable per-experiment knobs (name -> description).
func Knobs() map[string]string {
	return experiments.Knobs()
}

// KnobSpec describes one sweepable knob: its default (equal to the
// documented baseline literal), the measurement floor and maximum outside
// which explicit values are run errors, and whether values must be whole.
type KnobSpec = experiments.KnobSpec

// KnobSpecs returns the full sweepable-knob registry, one or more knobs
// per experiment E01–E19.
func KnobSpecs() map[string]KnobSpec {
	return experiments.KnobSpecs()
}

// KnobAppliesTo reports whether a knob name belongs to the given
// experiment id ("e03.lookups" applies to "E03").
func KnobAppliesTo(name, id string) bool {
	return harness.KnobAppliesTo(name, id)
}

// DefaultGridPoints is the default number of swept values per knob in a
// sensitivity grid (KnobSpec.Grid, report -sensitivity).
const DefaultGridPoints = experiments.DefaultGridPoints

// SensitivityGrids builds the default sensitivity grid for every
// registered knob: name -> up to points values spanning the knob's
// floor → default → stretch range, valid as explicit settings at the
// given workload scale. This is the grid `decentsim report -sensitivity`
// sweeps when ReportOptions.Grids is nil.
func SensitivityGrids(points int, scale float64) map[string][]float64 {
	return experiments.SensitivityGrids(points, scale)
}

// ScenarioKey renders the canonical identity replications aggregate on
// (experiment id + scale + knob assignment); it equals Group.Key for the
// group those runs merge into, so sweep output can be indexed by the
// scenarios that were submitted.
func ScenarioKey(experimentID string, scale float64, params map[string]float64) string {
	return harness.ScenarioKey(experimentID, scale, params)
}

// Run executes a single experiment by id with the given configuration.
func Run(id string, cfg Config) (*Result, error) {
	reg, err := experiments.Registry()
	if err != nil {
		return nil, err
	}
	return reg.Run(id, cfg)
}

// RunParallel executes jobs against the paper registry on a worker pool
// (workers <= 0 means GOMAXPROCS) and returns results in job order.
func RunParallel(jobs []Job, workers int) ([]JobResult, error) {
	reg, err := experiments.Registry()
	if err != nil {
		return nil, err
	}
	return harness.RunParallel(reg, jobs, workers), nil
}

// RunSweep validates and expands the sweep, runs it in parallel, and
// aggregates the replications into a Report. The same sweep produces a
// byte-identical Report.JSON() at any worker count.
func RunSweep(s Sweep, workers int) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	results, err := RunParallel(s.Jobs(), workers)
	if err != nil {
		return nil, err
	}
	return harness.Aggregate(results), nil
}

// Aggregate collapses job results into a Report, merging replications of
// the same scenario across seeds.
func Aggregate(results []JobResult) *Report {
	return harness.Aggregate(results)
}

// GroupView is the report-oriented aggregation view: a Report group plus
// the artifacts of its lowest-seed replication.
type GroupView = harness.GroupView

// AggregateView collapses job results into report-oriented group views.
func AggregateView(results []JobResult) []GroupView {
	return harness.AggregateView(results)
}

// SectionOf returns the paper section an experiment's claim belongs to
// (e.g. "§III-C P2") — the axis the reproduction report's traceability
// matrix is grouped on.
func SectionOf(e Experiment) string {
	return core.SectionOf(e)
}

// ReportOptions configures reproduction-report generation: experiment
// ids, replication seeds, workload scale, and harness worker count (the
// latter never affects the generated bytes).
type ReportOptions = report.Options

// ReportTree is a generated reproduction report: a deterministic document
// tree (REPORT.md, per-experiment pages, SVG figures, manifest.json with
// content hashes) plus summary counters.
type ReportTree = report.Tree

// ReportFile is one artifact of a ReportTree.
type ReportFile = report.File

// GenerateReport runs the selected experiments across the seed set on the
// harness worker pool and renders the reproduction report. Equal options
// produce byte-identical trees at any worker count.
func GenerateReport(opts ReportOptions) (*ReportTree, error) {
	reg, err := experiments.Registry()
	if err != nil {
		return nil, err
	}
	return report.Generate(reg, opts)
}

// ParseSeeds parses a seed list specification such as "1..10" or "1,3,9".
func ParseSeeds(spec string) ([]int64, error) {
	return harness.ParseSeeds(spec)
}

// ParseScales parses a comma-separated list of positive scale factors,
// e.g. "0.25,0.5,1".
func ParseScales(spec string) ([]float64, error) {
	return harness.ParseScales(spec)
}

// ParseParam parses one knob specification "name=v1,v2,...".
func ParseParam(spec string) (string, []float64, error) {
	return harness.ParseParam(spec)
}
