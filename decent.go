// Package decent is the public API of the reproduction of "Please, do not
// decentralize the Internet with (permissionless) blockchains!" (Garcia
// Lopez, Montresor, Datta — ICDCS 2019).
//
// The paper is a position paper: its evaluation is a set of quantitative
// claims about open peer-to-peer systems, permissionless blockchains, and
// their permissioned/edge alternatives. This library rebuilds every system
// those claims rest on — Kademlia/Chord/one-hop/Gnutella overlays, gossip,
// churn and sybil attack models, a proof-of-work blockchain with its mining
// economy, PBFT/Raft and a Fabric-style permissioned stack, and an edge
// placement model — and regenerates each claim as an experiment with a shape
// verdict.
//
// Quick start:
//
//	reg, _ := decent.Experiments()
//	res, _ := reg.Run("E06", decent.Config{Seed: 1})
//	fmt.Println(res)
//
// Parameter sweeps and multi-seed replication run through the harness:
//
//	rep, _ := decent.RunSweep(decent.Sweep{
//		Experiments: []string{"E03", "E06"},
//		Seeds:       []int64{1, 2, 3, 4, 5},
//	}, 0) // 0 workers = GOMAXPROCS
//	fmt.Println(rep)
//
// The reproduction report renders offline (GenerateReport, GenerateHTML)
// or as a living HTTP service with scenario-hash caching (Serve).
//
// The re-exports below are grouped by layer: kernel, transport,
// telemetry, experiments, harness, report, and serve.
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results.
package decent

import (
	"context"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/sim"
)

// ---------------------------------------------------------------------------
// Kernel — the deterministic discrete-event simulators every experiment
// runs on: the sequential Sim and the conservatively parallel ShardedSim
// (byte-identical results at any worker count).
// ---------------------------------------------------------------------------

// Sim is the deterministic discrete-event kernel.
type Sim = sim.Sim

// NewSim builds a simulator whose named RNG streams derive from seed.
func NewSim(seed int64) *Sim {
	return sim.New(sim.WithSeed(seed))
}

// NewObservedSim builds a simulator with a telemetry collector attached:
// the kernel reports event and queue statistics to it, and transports
// built on the sim auto-register their instruments.
func NewObservedSim(seed int64, col *Collector) *Sim {
	return sim.New(sim.WithSeed(seed), sim.WithObserver(col))
}

// ShardedSim is the conservatively parallel discrete-event kernel: a
// fixed set of per-shard Sim queues advancing in lockstep windows bounded
// by the minimum cross-shard delivery delay; cross-shard messages land
// through a mailbox merged deterministically at every window barrier, so
// results are byte-identical at any worker count.
type ShardedSim = sim.ShardedSim

// ShardedSimOption configures a ShardedSim.
type ShardedSimOption = sim.ShardedOption

// WithShardSeed, WithShardWorkers, and WithShardObserver are the
// ShardedSim constructor options: master seed (per-shard streams derive
// from it), worker goroutine count (an execution knob — results are
// identical at every value), and telemetry collector.
var (
	WithShardSeed     = sim.WithShardSeed
	WithShardWorkers  = sim.WithShardWorkers
	WithShardObserver = sim.WithShardObserver
)

// NewShardedSim builds a sharded kernel with the given shard count and
// conservative window. The window must not exceed the minimum cross-shard
// delivery delay of whatever model schedules cross-shard events — for a
// Transport, TransportDelayFloor computes that bound.
func NewShardedSim(shards int, window time.Duration, opts ...ShardedSimOption) (*ShardedSim, error) {
	return sim.NewSharded(shards, window, opts...)
}

// ---------------------------------------------------------------------------
// Transport — the unified WAN layer every substrate's message delivery
// rides on. Library users compose custom scenarios the same way the
// experiments do: build a Sim, attach a Transport, realize a
// TransportTopology, and schedule condition windows on it.
// ---------------------------------------------------------------------------

// Transport is the simulated wide-area network: regional latencies,
// asymmetric access bandwidth, loss, partitions, and scheduled condition
// windows, with allocation-free Send/Broadcast delivery.
type Transport = netmodel.Net

// TransportOption configures a Transport (jitter, loss).
type TransportOption = netmodel.Option

// WithJitter and WithLoss are the Transport constructor options.
var (
	WithJitter = netmodel.WithJitter
	WithLoss   = netmodel.WithLoss
)

// NewTransport attaches a WAN model to the simulator.
func NewTransport(s *Sim, opts ...TransportOption) *Transport {
	return netmodel.New(s, opts...)
}

// NewShardedTransport attaches a WAN model that spans a sharded kernel:
// nodes are assigned to shards round-robin, deliveries are scheduled on
// the receiving node's shard, and RNG draws come from the sender's shard
// stream. Condition windows and telemetry instruments are not supported
// on a sharded Transport; see the netmodel package docs.
func NewShardedTransport(ss *ShardedSim, opts ...TransportOption) *Transport {
	return netmodel.NewSharded(ss, opts...)
}

// TransportDelayFloor returns the minimum one-way delivery delay a
// Transport with the given jitter fraction can draw between the listed
// regions — the largest safe conservative window for a ShardedSim whose
// cross-shard traffic rides that Transport.
func TransportDelayFloor(jitter float64, regions ...Region) time.Duration {
	return netmodel.DelayFloor(jitter, regions...)
}

// Region is a coarse geographic location on the Transport.
type Region = netmodel.Region

// TransportNode identifies a node attached to the Transport.
type TransportNode = netmodel.NodeID

// The supported regions.
const (
	NorthAmerica = netmodel.NorthAmerica
	Europe       = netmodel.Europe
	Asia         = netmodel.Asia
	SouthAmerica = netmodel.SouthAmerica
	Oceania      = netmodel.Oceania
	Africa       = netmodel.Africa
)

// TransportTopology describes a node population statistically (weighted
// regional mix plus bandwidth classes) for Transport.BuildTopology.
type TransportTopology = netmodel.TopologySpec

// RegionWeight is one component of a regional mix.
type RegionWeight = netmodel.RegionWeight

// BandwidthClass is one weighted access-link tier.
type BandwidthClass = netmodel.BandwidthClass

// MixPreset returns one of the named regional mixes (1..NumMixPresets).
func MixPreset(i int) ([]RegionWeight, error) {
	return netmodel.MixPreset(i)
}

// NumMixPresets is the count of named regional mixes.
const NumMixPresets = netmodel.NumMixPresets

// Shared transport pacing defaults (substrate retry/pacing timescales).
const (
	TransportRetryDelay = netmodel.DefaultRetryDelay
	TransportPacing     = netmodel.DefaultPacing
)

// ---------------------------------------------------------------------------
// Telemetry — the zero-cost-when-off run-telemetry layer. Attach a
// Collector to a run (Config.Obs, or NewObservedSim for custom scenarios)
// and the kernel plus every instrumented subsystem record counters,
// streaming latency histograms, and optionally a Chrome trace-event log
// into it. A nil Collector is the off switch: every recording call is a
// nil-receiver no-op and the hot paths stay allocation-free.
// ---------------------------------------------------------------------------

// Collector gathers one run's telemetry: named counters and gauges,
// constant-memory streaming histograms, kernel statistics, and an
// optional bounded event trace.
type Collector = obs.Collector

// CollectorOption configures a Collector.
type CollectorOption = obs.Option

// NewCollector builds a telemetry collector. Without options it records
// counters, gauges, and histograms; add WithTrace to also buffer events.
func NewCollector(opts ...CollectorOption) *Collector {
	return obs.NewCollector(opts...)
}

// WithTrace enables the event trace with the given buffer limit (<= 0
// means DefaultTraceLimit); once full, further events increment a drop
// counter instead of growing memory.
var WithTrace = obs.WithTrace

// DefaultTraceLimit is the default event-trace buffer size.
const DefaultTraceLimit = obs.DefaultTraceLimit

// TelemetrySnapshot is a Collector's deterministic end-of-run summary:
// kernel statistics plus sorted counter, gauge, and histogram views.
type TelemetrySnapshot = obs.Snapshot

// Trace is the bounded event log a Collector buffers when built with
// WithTrace; WriteJSON renders it in Chrome trace-event format
// (chrome://tracing, Perfetto).
type Trace = obs.Trace

// HostSample carries host-side run measurements (wall time, heap, alloc
// deltas). These are machine facts: they ride on JobResult and the
// report's volatile resources/host.json, never on deterministic output.
type HostSample = obs.HostSample

// ---------------------------------------------------------------------------
// Experiments — the paper's claims as runnable, knob-parameterized
// reproductions (E01–E19), resolved through a registry.
// ---------------------------------------------------------------------------

// Config controls an experiment run. It is re-exported from the core
// framework: Seed pins determinism, Scale trades fidelity for speed, and
// Params carries named per-experiment knobs for sweeps.
type Config = core.Config

// Result is an experiment outcome: regenerated tables/figures plus shape
// checks.
type Result = core.Result

// Experiment is one reproducible paper claim.
type Experiment = core.Experiment

// Registry holds the paper's experiments.
type Registry = core.Registry

// Experiments returns the full registry (E01–E19) in paper order.
func Experiments() (*Registry, error) {
	return experiments.Registry()
}

// Run executes a single experiment by id with the given configuration.
func Run(id string, cfg Config) (*Result, error) {
	reg, err := experiments.Registry()
	if err != nil {
		return nil, err
	}
	return reg.Run(id, cfg)
}

// SectionOf returns the paper section an experiment's claim belongs to
// (e.g. "§III-C P2") — the axis the reproduction report's traceability
// matrix is grouped on.
func SectionOf(e Experiment) string {
	return core.SectionOf(e)
}

// Knobs lists the sweepable per-experiment knobs (name -> description).
func Knobs() map[string]string {
	return experiments.Knobs()
}

// KnobSpec describes one sweepable knob: its default (equal to the
// documented baseline literal), the measurement floor and maximum outside
// which explicit values are run errors, and whether values must be whole.
type KnobSpec = experiments.KnobSpec

// KnobSpecs returns the full sweepable-knob registry, one or more knobs
// per experiment E01–E19.
func KnobSpecs() map[string]KnobSpec {
	return experiments.KnobSpecs()
}

// KnobAppliesTo reports whether a knob name belongs to the given
// experiment id ("e03.lookups" applies to "E03").
func KnobAppliesTo(name, id string) bool {
	return harness.KnobAppliesTo(name, id)
}

// DefaultGridPoints is the default number of swept values per knob in a
// sensitivity grid (KnobSpec.Grid, report -sensitivity).
const DefaultGridPoints = experiments.DefaultGridPoints

// SensitivityGrids builds the default sensitivity grid for every
// registered knob: name -> up to points values spanning the knob's
// floor → default → stretch range, valid as explicit settings at the
// given workload scale. This is the grid `decentsim report -sensitivity`
// sweeps when ReportOptions.Grids is nil.
func SensitivityGrids(points int, scale float64) map[string][]float64 {
	return experiments.SensitivityGrids(points, scale)
}

// ---------------------------------------------------------------------------
// Harness — the worker-pool execution layer: sweep grids (ids × seeds ×
// scales × knobs), parallel execution with optional cancellation, and
// multi-seed aggregation into verdict reports.
// ---------------------------------------------------------------------------

// MaxSeeds bounds how many seeds one sweep or replication may expand to.
const MaxSeeds = harness.MaxSeeds

// Sweep is a grid of experiment runs: experiment ids × seeds × scales ×
// named knobs. Expand it with Jobs and run it with RunParallel, or use
// RunSweep for the whole pipeline.
type Sweep = harness.Sweep

// Job is one experiment execution within a sweep.
type Job = harness.Job

// JobResult pairs a job with its outcome.
type JobResult = harness.JobResult

// Report is an aggregated sweep: per-scenario mean/stddev/95%-CI metrics
// and majority-vote shape verdicts, exportable as JSON or CSV.
type Report = harness.Report

// Runner is the harness worker pool for custom registries. Run executes
// uncancellably; RunContext checks its context between jobs.
type Runner = harness.Runner

// RunParallel executes jobs against the paper registry on a worker pool
// (workers <= 0 means GOMAXPROCS) and returns results in job order.
func RunParallel(jobs []Job, workers int) ([]JobResult, error) {
	return RunParallelContext(context.Background(), jobs, workers)
}

// RunParallelContext is RunParallel with cancellation: once ctx is done,
// jobs that have not started yet complete immediately with ctx's error as
// their JobResult.Err while in-flight jobs finish, so the returned slice
// always has one entry per job.
func RunParallelContext(ctx context.Context, jobs []Job, workers int) ([]JobResult, error) {
	reg, err := experiments.Registry()
	if err != nil {
		return nil, err
	}
	return harness.RunParallelContext(ctx, reg, jobs, workers), nil
}

// RunSweep validates and expands the sweep, runs it in parallel, and
// aggregates the replications into a Report. The same sweep produces a
// byte-identical Report.JSON() at any worker count.
func RunSweep(s Sweep, workers int) (*Report, error) {
	return RunSweepContext(context.Background(), s, workers)
}

// RunSweepContext is RunSweep with cancellation: replications not yet
// started when ctx ends surface as run errors in the aggregate (the
// report service uses this to abandon sweeps whose requesters have gone
// away).
func RunSweepContext(ctx context.Context, s Sweep, workers int) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	results, err := RunParallelContext(ctx, s.Jobs(), workers)
	if err != nil {
		return nil, err
	}
	return harness.Aggregate(results), nil
}

// Aggregate collapses job results into a Report, merging replications of
// the same scenario across seeds.
func Aggregate(results []JobResult) *Report {
	return harness.Aggregate(results)
}

// GroupView is the report-oriented aggregation view: a Report group plus
// the artifacts of its lowest-seed replication.
type GroupView = harness.GroupView

// AggregateView collapses job results into report-oriented group views.
func AggregateView(results []JobResult) []GroupView {
	return harness.AggregateView(results)
}

// ScenarioKey renders the canonical identity replications aggregate on
// (experiment id + scale + knob assignment); it equals Group.Key for the
// group those runs merge into, so sweep output can be indexed by the
// scenarios that were submitted. The report manifest's claims and the
// report service's cache carry these same keys.
func ScenarioKey(experimentID string, scale float64, params map[string]float64) string {
	return harness.ScenarioKey(experimentID, scale, params)
}

// ParseSeeds parses a seed list specification such as "1..10" or "1,3,9".
func ParseSeeds(spec string) ([]int64, error) {
	return harness.ParseSeeds(spec)
}

// ParseScales parses a comma-separated list of positive scale factors,
// e.g. "0.25,0.5,1".
func ParseScales(spec string) ([]float64, error) {
	return harness.ParseScales(spec)
}

// ParseParam parses one knob specification "name=v1,v2,...".
func ParseParam(spec string) (string, []float64, error) {
	return harness.ParseParam(spec)
}

// ---------------------------------------------------------------------------
// Report — the claim-traceability document tree: markdown and HTML
// renderings, SVG figures, the SHA-256 manifest with per-claim verdicts,
// and the manifest comparator behind `report -diff`.
// ---------------------------------------------------------------------------

// ReportOptions configures reproduction-report generation: experiment
// ids, replication seeds, workload scale, knob pins, layer toggles
// (HTML, Sensitivity, Resources), and harness worker count (the latter
// never affects the generated bytes).
type ReportOptions = report.Options

// ReportTree is a generated reproduction report: a deterministic document
// tree (REPORT.md, per-experiment pages, SVG figures, manifest.json with
// content hashes and per-claim verdicts) plus summary counters. Walk and
// Open stream artifacts in memory; WriteDir materializes the tree.
type ReportTree = report.Tree

// ReportFile is one artifact of a ReportTree.
type ReportFile = report.File

// Manifest is the parsed form of a report tree's manifest.json: the
// scenario identity, one verdict record per claim, and every artifact by
// content hash.
type Manifest = report.Manifest

// ManifestClaim is one scenario's verdict record within a Manifest.
type ManifestClaim = report.ManifestClaim

// ParseManifest decodes a manifest.json previously written by report
// generation.
func ParseManifest(data []byte) (*Manifest, error) {
	return report.ParseManifest(data)
}

// GenerateReport runs the selected experiments across the seed set on the
// harness worker pool and renders the reproduction report. Equal options
// produce byte-identical trees at any worker count.
func GenerateReport(opts ReportOptions) (*ReportTree, error) {
	return GenerateReportContext(context.Background(), opts)
}

// GenerateReportContext is GenerateReport with cancellation: once ctx is
// done, replications that have not started yet are skipped and generation
// returns ctx's error instead of a partial tree.
func GenerateReportContext(ctx context.Context, opts ReportOptions) (*ReportTree, error) {
	reg, err := experiments.Registry()
	if err != nil {
		return nil, err
	}
	return report.GenerateContext(ctx, reg, opts)
}

// GenerateHTML is GenerateReport with the HTML layer forced on: every
// markdown page gains a self-contained HTML sibling (index.html,
// experiments/<ID>.html — inline CSS, no JS), all manifest-indexed and
// byte-deterministic.
func GenerateHTML(opts ReportOptions) (*ReportTree, error) {
	opts.HTML = true
	return GenerateReport(opts)
}

// ReportDiff is the outcome of comparing two manifests (verdict flips,
// metric drifts, scenario set changes) or two soak drift documents
// (envelope breaches). Failing reports whether a gate should fail:
// verdict flips and envelope breaches fail; drift is informational.
type ReportDiff = report.Diff

// DiffDocs compares two serialized documents, auto-detecting their kind:
// report manifests are compared claim by claim, nightly-soak drift
// documents bound by bound. This is the comparator behind
// `decentsim report -diff`.
func DiffDocs(oldData, newData []byte) (*ReportDiff, error) {
	return report.DiffDocs(oldData, newData)
}

// ---------------------------------------------------------------------------
// Serve — the living-report service: the report tree behind an HTTP API,
// executed on demand through the harness with scenario-hash caching and
// singleflight collapse, observable through the obs telemetry layer.
// ---------------------------------------------------------------------------

// ReportServer executes report scenarios on demand and caches their trees
// by scenario hash; Handler exposes /report, /experiments/{id}, /run, and
// the /healthz and /statz probes.
type ReportServer = serve.Server

// NewServer builds a report server over the paper registry. base is the
// default scenario for /report and /experiments/{id} (HTML rendering is
// forced on); col may be nil to run without telemetry.
func NewServer(base ReportOptions, col *Collector) (*ReportServer, error) {
	reg, err := experiments.Registry()
	if err != nil {
		return nil, err
	}
	return serve.New(reg, base, col), nil
}

// Serve runs the living-report service on addr (e.g. ":8080") until the
// listener fails. It is the blocking convenience entry point; for
// graceful shutdown or a chosen listener, mount NewServer().Handler() on
// your own http.Server.
func Serve(addr string, base ReportOptions) error {
	s, err := NewServer(base, NewCollector())
	if err != nil {
		return err
	}
	return http.ListenAndServe(addr, s.Handler())
}
