// Package decent is the public API of the reproduction of "Please, do not
// decentralize the Internet with (permissionless) blockchains!" (Garcia
// Lopez, Montresor, Datta — ICDCS 2019).
//
// The paper is a position paper: its evaluation is a set of quantitative
// claims about open peer-to-peer systems, permissionless blockchains, and
// their permissioned/edge alternatives. This library rebuilds every system
// those claims rest on — Kademlia/Chord/one-hop/Gnutella overlays, gossip,
// churn and sybil attack models, a proof-of-work blockchain with its mining
// economy, PBFT/Raft and a Fabric-style permissioned stack, and an edge
// placement model — and regenerates each claim as an experiment with a shape
// verdict.
//
// Quick start:
//
//	reg, _ := decent.Experiments()
//	res, _ := reg.Run("E06", decent.Config{Seed: 1})
//	fmt.Println(res)
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results.
package decent

import (
	"repro/internal/core"
	"repro/internal/experiments"
)

// Config controls an experiment run. It is re-exported from the core
// framework: Seed pins determinism, Scale trades fidelity for speed.
type Config = core.Config

// Result is an experiment outcome: regenerated tables/figures plus shape
// checks.
type Result = core.Result

// Experiment is one reproducible paper claim.
type Experiment = core.Experiment

// Registry holds the paper's experiments.
type Registry = core.Registry

// Experiments returns the full registry (E01–E17) in paper order.
func Experiments() (*Registry, error) {
	return experiments.Registry()
}

// Run executes a single experiment by id with the given configuration.
func Run(id string, cfg Config) (*Result, error) {
	reg, err := experiments.Registry()
	if err != nil {
		return nil, err
	}
	return reg.Run(id, cfg)
}
