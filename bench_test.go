package decent

// One benchmark per experiment (E01–E19): each regenerates its paper
// claim's table/figure at a reduced scale and reports the experiment's key
// metric alongside ns/op. Run with:
//
//	go test -bench=. -benchmem
//
// The absolute wall-clock numbers describe the simulator, not the paper's
// testbeds; the reported custom metrics (tps, stale-rate, latency…) are the
// reproduced quantities.

import (
	"strconv"
	"testing"

	"repro/internal/core"
)

// benchScale keeps a full -bench=. sweep around a minute on a laptop while
// leaving every shape check meaningful.
const benchScale = 0.25

// runExperiment drives one experiment per iteration, varying the seed so
// iterations are independent, and fails the benchmark if any shape check
// regresses.
func runExperiment(b *testing.B, id string, metric func(*core.Result) (string, float64)) {
	b.Helper()
	reg, err := Experiments()
	if err != nil {
		b.Fatalf("registry: %v", err)
	}
	var last *core.Result
	for i := 0; i < b.N; i++ {
		res, err := reg.Run(id, Config{Seed: int64(i + 1), Scale: benchScale})
		if err != nil {
			b.Fatalf("run %s: %v", id, err)
		}
		last = res
	}
	if last == nil {
		return
	}
	for _, c := range last.Checks {
		if !c.OK {
			b.Fatalf("%s shape check %q failed: %s", id, c.Name, c.Detail)
		}
	}
	if metric != nil {
		name, v := metric(last)
		b.ReportMetric(v, name)
	}
}

// cell parses a numeric cell from a result table. Out-of-range coordinates
// and non-numeric cells fail the benchmark with the offending location —
// a renamed or reordered table column must not silently report a 0.0
// custom metric.
func cell(b *testing.B, r *core.Result, table, row, col int) float64 {
	b.Helper()
	if table < 0 || table >= len(r.Tables) {
		b.Fatalf("%s: table index %d out of range (result has %d tables)", r.ID, table, len(r.Tables))
	}
	t := r.Tables[table]
	if row < 0 || row >= len(t.Rows) {
		b.Fatalf("%s table %q: row %d out of range (table has %d rows)", r.ID, t.Title, row, len(t.Rows))
	}
	if col < 0 || col >= len(t.Rows[row]) {
		b.Fatalf("%s table %q row %d: col %d out of range (row has %d cells)", r.ID, t.Title, row, col, len(t.Rows[row]))
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("%s table %q row %d col %d: cell %q is not numeric: %v", r.ID, t.Title, row, col, t.Rows[row][col], err)
	}
	return v
}

func BenchmarkE01MarketConcentration(b *testing.B) {
	runExperiment(b, "E01", func(r *core.Result) (string, float64) {
		return "cdn-top3", cell(b, r, 0, 0, 3)
	})
}

func BenchmarkE02FreeRiding(b *testing.B) {
	runExperiment(b, "E02", func(r *core.Result) (string, float64) {
		return "top1pct-upload-share", cell(b, r, 0, 1, 1)
	})
}

func BenchmarkE03DHTLookupLatency(b *testing.B) {
	runExperiment(b, "E03", func(r *core.Result) (string, float64) {
		return "mdht-median-s", cell(b, r, 0, 1, 1)
	})
}

func BenchmarkE04SybilAttack(b *testing.B) {
	runExperiment(b, "E04", func(r *core.Result) (string, float64) {
		return "eclipse-rate", cell(b, r, 1, 0, 1)
	})
}

func BenchmarkE05OneHopVsMultiHop(b *testing.B) {
	runExperiment(b, "E05", func(r *core.Result) (string, float64) {
		return "chord-mean-hops", cell(b, r, 0, 0, 1)
	})
}

func BenchmarkE06ThroughputGap(b *testing.B) {
	runExperiment(b, "E06", func(r *core.Result) (string, float64) {
		return "btc-sim-tps", cell(b, r, 0, 3, 2)
	})
}

func BenchmarkE07DifficultyAdjust(b *testing.B) {
	runExperiment(b, "E07", nil)
}

func BenchmarkE08ForkRateTrilemma(b *testing.B) {
	runExperiment(b, "E08", func(r *core.Result) (string, float64) {
		return "stale-rate-12s", cell(b, r, 0, 2, 2)
	})
}

func BenchmarkE09SelfishMining(b *testing.B) {
	runExperiment(b, "E09", nil)
}

func BenchmarkE10MiningCentralization(b *testing.B) {
	runExperiment(b, "E10", func(r *core.Result) (string, float64) {
		return "top6-pool-share", cell(b, r, 1, 0, 1)
	})
}

func BenchmarkE11EnergyConsumption(b *testing.B) {
	runExperiment(b, "E11", func(r *core.Result) (string, float64) {
		return "TWh-per-year", cell(b, r, 0, 1, 2)
	})
}

func BenchmarkE12NodeResourceGrowth(b *testing.B) {
	runExperiment(b, "E12", func(r *core.Result) (string, float64) {
		return "fullnode-frac-10y", cell(b, r, 0, 0, 3)
	})
}

func BenchmarkE13PermissionedVsPoW(b *testing.B) {
	runExperiment(b, "E13", func(r *core.Result) (string, float64) {
		return "pbft4-tps", cell(b, r, 0, 0, 3)
	})
}

func BenchmarkE14EdgeVsCloud(b *testing.B) {
	runExperiment(b, "E14", func(r *core.Result) (string, float64) {
		return "edge-median-ms", cell(b, r, 0, 0, 1)
	})
}

func BenchmarkE15ChurnImpact(b *testing.B) {
	runExperiment(b, "E15", func(r *core.Result) (string, float64) {
		return "churned-median-s", cell(b, r, 0, 2, 3)
	})
}

func BenchmarkE16ChannelScaling(b *testing.B) {
	runExperiment(b, "E16", func(r *core.Result) (string, float64) {
		return "per-peer-envelopes", cell(b, r, 0, 0, 2)
	})
}

func BenchmarkE17DoubleSpend(b *testing.B) {
	runExperiment(b, "E17", nil)
}

func BenchmarkE18OffChainChannels(b *testing.B) {
	runExperiment(b, "E18", func(r *core.Result) (string, float64) {
		return "hub-top3-share", cell(b, r, 0, 0, 3)
	})
}

func BenchmarkE19GeoPartitionedPoW(b *testing.B) {
	runExperiment(b, "E19", func(r *core.Result) (string, float64) {
		return "partitioned-stale-rate", cell(b, r, 0, 1, 4)
	})
}
