// Command benchjson converts `go test -bench` text output into a stable
// JSON array so CI can archive benchmark trajectories as artifacts:
//
//	go test -run '^$' -bench Transport -benchmem ./internal/netmodel | benchjson -out BENCH_transport.json
//
// Each benchmark line becomes one object with the name exactly as printed
// (including any -GOMAXPROCS suffix, benchstat-style: stripping it can eat
// a sub-benchmark's trailing "-1000" on single-CPU runners where Go omits
// the suffix), iteration count, ns/op, and — when -benchmem is on — B/op
// and allocs/op, plus the owning package from the `pkg:` header lines.
// Results are sorted by (package, name) so the artifact is deterministic
// regardless of package ordering.
//
// With -check-allocs BASELINE.json the parsed results are also gated
// against a committed baseline: any benchmark whose baseline reports
// 0 allocs/op must still report 0 (matched by package + name with the
// machine-dependent -GOMAXPROCS suffix stripped), so allocation
// regressions on the pinned hot paths fail CI even though ns/op varies
// by runner.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Pkg is the import path from the most recent `pkg:` header line, so
	// same-named benchmarks from different packages stay distinguishable.
	Pkg      string  `json:"pkg,omitempty"`
	Name     string  `json:"name"`
	Iters    int64   `json:"iterations"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   *int64  `json:"bytes_per_op,omitempty"`
	AllocsOp *int64  `json:"allocs_per_op,omitempty"`
}

// benchLine matches `BenchmarkName-8  123  45.6 ns/op [ 7.8 MB/s ] [ 7 B/op
// 0 allocs/op ]` — the MB/s column appears when a benchmark calls
// b.SetBytes and must not detach the memory fields behind it.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+[\d.]+ MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Parse extracts benchmark results from go test output, sorted by
// (package, name).
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", sc.Text(), err)
		}
		res := Result{Pkg: pkg, Name: m[1], Iters: iters, NsPerOp: ns}
		if m[4] != "" {
			b, err := strconv.ParseInt(m[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad B/op in %q: %w", sc.Text(), err)
			}
			res.BPerOp = &b
		}
		if m[5] != "" {
			a, err := strconv.ParseInt(m[5], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad allocs/op in %q: %w", sc.Text(), err)
			}
			res.AllocsOp = &a
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// baseName strips a trailing "-<digits>" GOMAXPROCS suffix so results
// from machines with different core counts compare by benchmark
// identity. Safe here because none of the pinned benchmarks are
// sub-benchmarks with their own numeric suffix (CheckAllocs is the only
// consumer; the JSON artifact keeps full names).
func baseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// CheckAllocs enforces the allocation-regression gate: every benchmark in
// the committed baseline must still exist in the current results (a
// pinned benchmark disappearing from the measured set — renamed, deleted,
// or dropped by a narrowed -bench filter — is a hard failure, otherwise
// the gate would silently stop gating), and every benchmark whose
// baseline reports 0 allocs/op must still report 0, with -benchmem on.
// ns/op is machine-dependent and deliberately not compared. Current
// benchmarks the baseline does not know are not an error — they are
// returned (sorted, by stripped identity) so callers can surface them as
// candidates for pinning instead of silently skipping them.
func CheckAllocs(baseline, current []Result) (newEntries []string, err error) {
	cur := make(map[string]Result, len(current))
	for _, r := range current {
		key := r.Pkg + "\x00" + baseName(r.Name)
		// Two benchmarks collapsing to one key (a sub-benchmark with its
		// own trailing number, or a -cpu list) would let one silently
		// shadow the other's regression — refuse rather than guess.
		if prev, dup := cur[key]; dup {
			return nil, fmt.Errorf("benchjson: benchmarks %s and %s collapse to the same identity %s after suffix stripping; rename them or drop -cpu lists",
				prev.Name, r.Name, baseName(r.Name))
		}
		cur[key] = r
	}
	known := make(map[string]bool, len(baseline))
	var violations []string
	for _, b := range baseline {
		key := b.Pkg + "\x00" + baseName(b.Name)
		known[key] = true
		c, ok := cur[key]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"%s %s: pinned benchmark missing from the measured set", b.Pkg, baseName(b.Name)))
			continue
		}
		if b.AllocsOp == nil || *b.AllocsOp != 0 {
			continue
		}
		switch {
		case c.AllocsOp == nil:
			violations = append(violations, fmt.Sprintf(
				"%s %s: current results lack allocs/op (run with -benchmem)", b.Pkg, baseName(b.Name)))
		case *c.AllocsOp > 0:
			violations = append(violations, fmt.Sprintf(
				"%s %s: allocs/op regressed from 0 to %d", b.Pkg, baseName(b.Name), *c.AllocsOp))
		}
	}
	if len(violations) > 0 {
		return nil, fmt.Errorf("benchjson: allocation regression on the pinned hot paths:\n  %s",
			strings.Join(violations, "\n  "))
	}
	for key := range cur {
		if !known[key] {
			newEntries = append(newEntries, strings.ReplaceAll(key, "\x00", " "))
		}
	}
	sort.Strings(newEntries)
	return newEntries, nil
}

func run(in io.Reader, outPath, checkPath string) error {
	results, err := Parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found in input")
	}
	if checkPath != "" {
		data, err := os.ReadFile(checkPath)
		if err != nil {
			return fmt.Errorf("benchjson: read baseline: %w", err)
		}
		var baseline []Result
		if err := json.Unmarshal(data, &baseline); err != nil {
			return fmt.Errorf("benchjson: baseline %s: %w", checkPath, err)
		}
		newEntries, err := CheckAllocs(baseline, results)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchjson: 0-alloc paths in %s hold\n", checkPath)
		for _, name := range newEntries {
			fmt.Fprintf(os.Stderr, "benchjson: new (not in baseline): %s\n", name)
		}
		if outPath == "" {
			return nil
		}
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(outPath, enc, 0o644)
}

func main() {
	in := flag.String("in", "", "input file (default: stdin)")
	out := flag.String("out", "", "output file (default: stdout; omitted when only checking)")
	check := flag.String("check-allocs", "", "baseline JSON; fail if any benchmark with 0 baseline allocs/op now allocates")
	flag.Parse()
	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	if err := run(src, *out, *check); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
