// Command benchjson converts `go test -bench` text output into a stable
// JSON array so CI can archive benchmark trajectories as artifacts:
//
//	go test -run '^$' -bench Transport -benchmem ./internal/netmodel | benchjson -out BENCH_transport.json
//
// Each benchmark line becomes one object with the name exactly as printed
// (including any -GOMAXPROCS suffix, benchstat-style: stripping it can eat
// a sub-benchmark's trailing "-1000" on single-CPU runners where Go omits
// the suffix), iteration count, ns/op, and — when -benchmem is on — B/op
// and allocs/op, plus the owning package from the `pkg:` header lines.
// Results are sorted by (package, name) so the artifact is deterministic
// regardless of package ordering.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Pkg is the import path from the most recent `pkg:` header line, so
	// same-named benchmarks from different packages stay distinguishable.
	Pkg      string  `json:"pkg,omitempty"`
	Name     string  `json:"name"`
	Iters    int64   `json:"iterations"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   *int64  `json:"bytes_per_op,omitempty"`
	AllocsOp *int64  `json:"allocs_per_op,omitempty"`
}

// benchLine matches `BenchmarkName-8  123  45.6 ns/op [ 7.8 MB/s ] [ 7 B/op
// 0 allocs/op ]` — the MB/s column appears when a benchmark calls
// b.SetBytes and must not detach the memory fields behind it.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+[\d.]+ MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Parse extracts benchmark results from go test output, sorted by
// (package, name).
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", sc.Text(), err)
		}
		res := Result{Pkg: pkg, Name: m[1], Iters: iters, NsPerOp: ns}
		if m[4] != "" {
			b, err := strconv.ParseInt(m[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad B/op in %q: %w", sc.Text(), err)
			}
			res.BPerOp = &b
		}
		if m[5] != "" {
			a, err := strconv.ParseInt(m[5], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad allocs/op in %q: %w", sc.Text(), err)
			}
			res.AllocsOp = &a
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

func run(in io.Reader, outPath string) error {
	results, err := Parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found in input")
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(outPath, enc, 0o644)
}

func main() {
	in := flag.String("in", "", "input file (default: stdin)")
	out := flag.String("out", "", "output file (default: stdout)")
	flag.Parse()
	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	if err := run(src, *out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
