package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/netmodel
cpu: whatever
BenchmarkTransportSend-8         	 2000000	       512.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkTransportBroadcast-8    	   50000	     31000 ns/op	      16 B/op	       1 allocs/op
BenchmarkKernelAfterFuncPooled   	 3000000	       401 ns/op
PASS
ok  	repro/internal/netmodel	3.2s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	// Sorted by name; names keep the printed -GOMAXPROCS suffix
	// (benchstat-style) so a sub-benchmark's own "-1000" can never be
	// mistaken for one on single-CPU runners.
	if results[0].Name != "BenchmarkKernelAfterFuncPooled" ||
		results[1].Name != "BenchmarkTransportBroadcast-8" ||
		results[2].Name != "BenchmarkTransportSend-8" {
		t.Fatalf("order = %v, want name-sorted with suffixes kept", results)
	}
	send := results[2]
	if send.Iters != 2000000 || send.NsPerOp != 512.3 {
		t.Fatalf("send = %+v", send)
	}
	if send.Pkg != "repro/internal/netmodel" {
		t.Fatalf("pkg = %q, want the pkg: header value", send.Pkg)
	}
	if send.BPerOp == nil || *send.BPerOp != 0 || send.AllocsOp == nil || *send.AllocsOp != 0 {
		t.Fatalf("send memory stats = %+v, want 0/0", send)
	}
	// A line without -benchmem has no memory fields.
	if results[0].BPerOp != nil || results[0].AllocsOp != nil {
		t.Fatalf("kernel bench should have no memory stats: %+v", results[0])
	}
}

func TestParseSetBytesThroughputColumn(t *testing.T) {
	// b.SetBytes inserts an MB/s column between ns/op and B/op; the memory
	// fields behind it must still be captured.
	in := "BenchmarkX-8 \t 1000 \t 512 ns/op \t 45.00 MB/s \t 7 B/op \t 0 allocs/op\n"
	results, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("parsed %d results, want 1", len(results))
	}
	r := results[0]
	if r.BPerOp == nil || *r.BPerOp != 7 || r.AllocsOp == nil || *r.AllocsOp != 0 {
		t.Fatalf("memory fields lost behind MB/s column: %+v", r)
	}
}

func TestParseKeepsSubBenchmarkParams(t *testing.T) {
	// GOMAXPROCS=1 output: Go omits the CPU suffix, so a trailing -1000 is
	// part of the name and must survive.
	in := "BenchmarkTransportSend/size-1000 \t 100 \t 42 ns/op\n" +
		"BenchmarkTransportSend/size-2000 \t 100 \t 84 ns/op\n"
	results, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(results) != 2 ||
		results[0].Name != "BenchmarkTransportSend/size-1000" ||
		results[1].Name != "BenchmarkTransportSend/size-2000" {
		t.Fatalf("sub-benchmark names mangled: %+v", results)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	results, err := Parse(strings.NewReader("hello\nnothing here\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from noise, want 0", len(results))
	}
}

func TestRunWritesDeterministicJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader(sample), out, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("round-tripped %d results, want 3", len(results))
	}
	if err := run(strings.NewReader("no benchmarks"), out, ""); err == nil {
		t.Fatal("empty input should be an error, not an empty artifact")
	}
}

// allocBaseline builds a minimal baseline result for CheckAllocs tests.
func allocResult(pkg, name string, allocs int64) Result {
	return Result{Pkg: pkg, Name: name, Iters: 1, NsPerOp: 1, AllocsOp: &allocs}
}

func TestCheckAllocsHolds(t *testing.T) {
	baseline := []Result{allocResult("p", "BenchmarkTransportSend-64", 0)}
	// Different GOMAXPROCS suffix on the runner must still match.
	current := []Result{allocResult("p", "BenchmarkTransportSend-4", 0)}
	if _, err := CheckAllocs(baseline, current); err != nil {
		t.Fatalf("CheckAllocs: %v", err)
	}
}

func TestCheckAllocsRegression(t *testing.T) {
	baseline := []Result{allocResult("p", "BenchmarkTransportSend-8", 0)}
	current := []Result{allocResult("p", "BenchmarkTransportSend-8", 2)}
	_, err := CheckAllocs(baseline, current)
	if err == nil || !strings.Contains(err.Error(), "regressed from 0 to 2") {
		t.Fatalf("err = %v, want regression", err)
	}
}

func TestCheckAllocsMissingBenchmark(t *testing.T) {
	baseline := []Result{allocResult("p", "BenchmarkTransportSend-8", 0)}
	_, err := CheckAllocs(baseline, nil)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v, want missing-benchmark failure", err)
	}
}

func TestCheckAllocsIgnoresNonZeroBaselines(t *testing.T) {
	// A benchmark that already allocated in the baseline is not pinned;
	// only 0-alloc paths gate.
	baseline := []Result{allocResult("p", "BenchmarkOther-8", 3)}
	current := []Result{allocResult("p", "BenchmarkOther-8", 9)}
	if _, err := CheckAllocs(baseline, current); err != nil {
		t.Fatalf("CheckAllocs: %v", err)
	}
	// Likewise a baseline entry without memory data pins no alloc count —
	// but every baseline entry, pinned or not, must still be measured.
	noMem := []Result{{Pkg: "p", Name: "BenchmarkX-8", Iters: 1, NsPerOp: 1}}
	if _, err := CheckAllocs(noMem, noMem); err != nil {
		t.Fatalf("CheckAllocs: %v", err)
	}
}

func TestCheckAllocsMissingUnpinnedBenchmark(t *testing.T) {
	// Disappearing from the measured set fails even for baseline entries
	// that are not 0-alloc pinned: a renamed or filtered-out benchmark
	// must not silently shrink the gate.
	baseline := []Result{allocResult("p", "BenchmarkOther-8", 3)}
	_, err := CheckAllocs(baseline, []Result{allocResult("p", "BenchmarkElse-8", 0)})
	if err == nil || !strings.Contains(err.Error(), "missing from the measured set") {
		t.Fatalf("err = %v, want missing-benchmark failure", err)
	}
	_, err = CheckAllocs([]Result{{Pkg: "p", Name: "BenchmarkX-8"}}, nil)
	if err == nil || !strings.Contains(err.Error(), "missing from the measured set") {
		t.Fatalf("err = %v, want missing-benchmark failure", err)
	}
}

func TestRunCheckAllocsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	if err := run(strings.NewReader(sample), base, ""); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	// The same input passes its own baseline, with no -out required.
	if err := run(strings.NewReader(sample), "", base); err != nil {
		t.Fatalf("self-check: %v", err)
	}
	// A leaked allocation on the pinned 0-alloc path fails the gate.
	leaky := strings.Replace(sample,
		"2000000	       512.3 ns/op	       0 B/op	       0 allocs/op",
		"2000000	       512.3 ns/op	      24 B/op	       3 allocs/op", 1)
	err := run(strings.NewReader(leaky), "", base)
	if err == nil || !strings.Contains(err.Error(), "allocation regression") {
		t.Fatalf("err = %v, want allocation-regression failure", err)
	}
}

func TestCheckAllocsRejectsCollapsingNames(t *testing.T) {
	current := []Result{
		allocResult("p", "BenchmarkSend/batch-8", 0),
		allocResult("p", "BenchmarkSend/batch-64", 0),
	}
	_, err := CheckAllocs(nil, current)
	if err == nil || !strings.Contains(err.Error(), "collapse to the same identity") {
		t.Fatalf("err = %v, want collapsing-name rejection", err)
	}
}

// TestCheckAllocsReportsNewEntries pins the new-entry contract: current
// benchmarks absent from the baseline are returned as candidates instead
// of failing or vanishing silently.
func TestCheckAllocsReportsNewEntries(t *testing.T) {
	baseline := []Result{allocResult("p", "BenchmarkTransportSend-8", 0)}
	current := []Result{
		allocResult("p", "BenchmarkTransportSend-16", 0),
		allocResult("p", "BenchmarkTransportSendTelemetryOn-16", 0),
		allocResult("q", "BenchmarkKernelNew-4", 1),
	}
	newEntries, err := CheckAllocs(baseline, current)
	if err != nil {
		t.Fatalf("CheckAllocs: %v", err)
	}
	want := []string{"p BenchmarkTransportSendTelemetryOn", "q BenchmarkKernelNew"}
	if len(newEntries) != len(want) {
		t.Fatalf("newEntries = %v, want %v", newEntries, want)
	}
	for i := range want {
		if newEntries[i] != want[i] {
			t.Errorf("newEntries[%d] = %q, want %q", i, newEntries[i], want[i])
		}
	}
}
