package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	decent "repro"
)

// TestArgumentAudit is the table-driven contract for argument handling:
// unknown subcommands and mistyped or inapplicable flags are rejected
// with a nonzero exit (run returns an error) and, for command-line
// errors, the usage summary.
func TestArgumentAudit(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the returned error
	}{
		{"no command", nil, "usage: decentsim"},
		{"unknown command", []string{"frobnicate"}, "unknown command"},
		{"unknown command shows usage", []string{"frobnicate"}, "usage: decentsim"},
		{"mistyped global flag", []string{"-bogus", "run", "E01"}, "-bogus"},
		{"mistyped subcommand flag", []string{"run", "-bogus", "E01"}, "-bogus"},
		{"run rejects html", []string{"run", "-html", "E01"}, "-html does not apply"},
		{"run rejects addr", []string{"run", "-addr", ":0", "E01"}, "-addr does not apply"},
		{"sweep rejects diff", []string{"sweep", "-diff", "x.json", "E01"}, "-diff does not apply"},
		{"rep rejects against", []string{"rep", "-against", "x.json", "E01"}, "-against does not apply"},
		{"trace rejects html", []string{"trace", "-html", "E01"}, "-html does not apply"},
		{"report rejects addr", []string{"report", "-addr", ":0", "E01"}, "-addr does not apply"},
		{"serve rejects csv", []string{"serve", "-csv"}, "-csv does not apply"},
		{"serve rejects out", []string{"serve", "-out", "x"}, "-out does not apply"},
		{"serve rejects seed", []string{"serve", "-seed", "2"}, "-seed does not apply"},
		{"serve rejects diff", []string{"serve", "-diff", "x.json"}, "-diff does not apply"},
		{"serve rejects multi-value knob", []string{"serve", "-set", "e01.exploration=0.2,0.4"}, "sweep subcommand"},
		{"serve unknown id", []string{"serve", "E99"}, "unknown experiment"},
		{"against needs diff", []string{"report", "-against", "x.json", "E01"}, "-against needs -diff"},
		{"diff rejects html", []string{"report", "-diff", "x.json", "-html", "E01"}, "writes no tree"},
		{"diff rejects out", []string{"report", "-diff", "x.json", "-out", "d", "E01"}, "writes no tree"},
		{"diff with against takes no ids", []string{"report", "-diff", "a.json", "-against", "b.json", "E01"}, "takes no experiment ids"},
		{"diff missing old file", []string{"report", "-diff", "does-not-exist.json", "E01"}, "does-not-exist.json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error = %q, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestReportHTMLWritesSiblings checks `report -html` writes the HTML
// layer next to the markdown tree.
func TestReportHTMLWritesSiblings(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"report", "-html", "-seeds", "1", "-scale", "0.25", "-out", dir, "E01"}, &out)
	if err != nil {
		t.Fatalf("report -html: %v\n%s", err, out.String())
	}
	for _, want := range []string{"index.html", "REPORT.md", filepath.Join("experiments", "E01.html")} {
		data, err := os.ReadFile(filepath.Join(dir, want))
		if err != nil || len(data) == 0 {
			t.Errorf("missing artifact %s: %v", want, err)
		}
	}
}

// TestReportDiffAgainstFiles drives the pure two-file comparison: a
// verdict flip fails, identical manifests pass, and a drift-envelope
// breach fails — without running any experiments.
func TestReportDiffAgainstFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, data string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldMan := write("old.json", `{"title":"t","claims":[{"experiment":"E01","scenario":"E01|1|","title":"c","verdict":"REPRODUCED","checks_passed":1,"checks":1}],"files":[]}`)
	flipped := write("new.json", `{"title":"t","claims":[{"experiment":"E01","scenario":"E01|1|","title":"c","verdict":"NOT REPRODUCED","checks_passed":0,"checks":1}],"files":[]}`)

	var out bytes.Buffer
	err := run([]string{"report", "-diff", oldMan, "-against", flipped}, &out)
	if err == nil || !strings.Contains(err.Error(), "verdict(s) flipped") {
		t.Errorf("flip: err = %v, want verdict flip failure", err)
	}
	if !strings.Contains(out.String(), "FLIP") {
		t.Errorf("flip output = %q", out.String())
	}

	out.Reset()
	if err := run([]string{"report", "-diff", oldMan, "-against", oldMan}, &out); err != nil {
		t.Errorf("identical: err = %v", err)
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("identical output = %q", out.String())
	}

	oldDrift := write("old-drift.json", `{"seeds":100,"drift":[{"experiment":"E01","scale":1,"metric":"m","mean":1.5,"min":1.0,"max":2.0}],"runs":[]}`)
	breach := write("new-drift.json", `{"seeds":100,"drift":[{"experiment":"E01","scale":1,"metric":"m","mean":9.0,"min":8.0,"max":10.0}],"runs":[]}`)
	out.Reset()
	err = run([]string{"report", "-diff", oldDrift, "-against", breach}, &out)
	if err == nil || !strings.Contains(err.Error(), "drift envelope") {
		t.Errorf("breach: err = %v, want drift envelope failure", err)
	}
}

// TestReportDiffGeneratesAndCompares runs the generate-then-compare
// path end to end: the manifest of a fresh generation diffed against an
// identical baseline passes.
func TestReportDiffGeneratesAndCompares(t *testing.T) {
	tree, err := decent.GenerateReport(decent.ReportOptions{
		IDs: []string{"E01"}, Seeds: []int64{1}, Scale: 0.25,
	})
	if err != nil {
		t.Fatalf("GenerateReport: %v", err)
	}
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(baseline, tree.Lookup("manifest.json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"report", "-diff", baseline, "-seeds", "1", "-scale", "0.25", "E01"}, &out); err != nil {
		t.Fatalf("self-diff failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS: no changes") {
		t.Errorf("self-diff output = %q", out.String())
	}
}
