package main

import (
	"bytes"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownCommand(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"frobnicate"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("err = %v", err)
	}
}

func TestNoCommand(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("expected usage error")
	}
}

func TestRunRequiresIDs(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"run"}, &out)
	if err == nil || !strings.Contains(err.Error(), "requires experiment ids") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunUnknownID(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"run", "E99"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestSweepBadSeeds(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"sweep", "-seeds", "5..1", "E01"}, &out)
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("err = %v", err)
	}
}

func TestSweepBadKnob(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"sweep", "-set", "nonsense", "E01"}, &out)
	if err == nil || !strings.Contains(err.Error(), "knob") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownKnobRejected(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"sweep", "-set", "e03.lokups=100", "E03"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown knob") || !strings.Contains(err.Error(), "e03.lookups") {
		t.Fatalf("err = %v", err)
	}
}

func TestInapplicableFlagsRejected(t *testing.T) {
	var out bytes.Buffer
	for _, tc := range []struct{ args []string }{
		{[]string{"run", "-seeds", "1..10", "E01"}},
		{[]string{"-seeds", "1..10", "run", "E01"}},
		{[]string{"run", "-n", "5", "E01"}},
		{[]string{"run", "-scales", "0.5,1", "E01"}},
		{[]string{"sweep", "-seed", "7", "E01"}},
		{[]string{"rep", "-seed", "7", "E01"}},
		{[]string{"run", "-sensitivity", "E01"}},
		{[]string{"sweep", "-sensitivity", "E01"}},
		{[]string{"rep", "-sensitivity", "E01"}},
		{[]string{"run", "-drift", "x.json", "E01"}},
		{[]string{"sweep", "-drift", "x.json", "E01"}},
		{[]string{"report", "-drift", "x.json", "E01"}},
	} {
		err := run(tc.args, &out)
		if err == nil || !strings.Contains(err.Error(), "does not apply") {
			t.Fatalf("run(%v) err = %v, want inapplicable-flag error", tc.args, err)
		}
	}
}

func TestDuplicateIDsRejected(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"sweep", "-seeds", "1,2", "E03", "E03"}, &out)
	if err == nil || !strings.Contains(err.Error(), "duplicate experiment id") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateKnobFlagRejected(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"sweep", "-set", "e03.lookups=100", "-set", "e03.lookups=200", "E03"}, &out)
	if err == nil || !strings.Contains(err.Error(), "given twice") {
		t.Fatalf("err = %v", err)
	}
}

func TestListRejectsFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"list", "-json"}, &out)
	if err == nil || !strings.Contains(err.Error(), "takes no flags") {
		t.Fatalf("err = %v", err)
	}
}

func TestKnobForUnselectedExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"sweep", "-seeds", "1,2", "-set", "e03.lookups=100,200", "E06"}, &out)
	if err == nil || !strings.Contains(err.Error(), "not among the selected") {
		t.Fatalf("sweep err = %v", err)
	}
	err = run([]string{"run", "-set", "e03.lookups=100", "E06"}, &out)
	if err == nil || !strings.Contains(err.Error(), "not among the selected") {
		t.Fatalf("run err = %v", err)
	}
}

func TestRunJSONCarriesErrorsInBand(t *testing.T) {
	var out bytes.Buffer
	// The knob error fails E03 before any simulation runs.
	runErr := run([]string{"run", "-json", "-set", "e03.nodes=50", "E03"}, &out)
	if runErr == nil {
		t.Fatal("expected the command to report the errored run")
	}
	var doc struct {
		Results []json.RawMessage `json:"results"`
		Errors  []struct {
			Experiment string `json:"experiment"`
			Error      string `json:"error"`
		} `json:"errors"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("run -json output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Results == nil || len(doc.Errors) != 1 || doc.Errors[0].Experiment != "E03" {
		t.Fatalf("errors not in-band: %+v", doc)
	}
	if !strings.Contains(doc.Errors[0].Error, "measurement floor") {
		t.Fatalf("error text = %q", doc.Errors[0].Error)
	}
}

func TestKnobAboveMaximumRejected(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"run", "-set", "e03.nodes=1e19", "E03"}, &out)
	if err == nil || !strings.Contains(err.Error(), "above the maximum") {
		t.Fatalf("err = %v", err)
	}
}

func TestIntegerKnobRejectsFraction(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"run", "-set", "e03.nodes=1500.4", "E03"}, &out)
	if err == nil || !strings.Contains(err.Error(), "must be an integer") {
		t.Fatalf("err = %v", err)
	}
}

func TestListRejectsArguments(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"list", "E99"}, &out)
	if err == nil || !strings.Contains(err.Error(), "takes no arguments") {
		t.Fatalf("err = %v", err)
	}
}

func TestRepRejectsScalesAndMultiValueKnobs(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"rep", "-n", "3", "-scales", "0.25,0.5", "E06"}, &out)
	if err == nil || !strings.Contains(err.Error(), "does not apply") {
		t.Fatalf("rep -scales err = %v", err)
	}
	err = run([]string{"rep", "-n", "3", "-set", "e03.lookups=100,200", "E03"}, &out)
	if err == nil || !strings.Contains(err.Error(), "sweep subcommand") {
		t.Fatalf("rep multi-knob err = %v", err)
	}
}

func TestRepConflictingSeedFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"rep", "-n", "20", "-seeds", "1..3", "E06"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-n and -seeds conflict") {
		t.Fatalf("err = %v", err)
	}
}

func TestScaleMustBePositive(t *testing.T) {
	var out bytes.Buffer
	for _, scale := range []string{"0", "-1", "NaN", "Inf"} {
		err := run([]string{"sweep", "-scale", scale, "-seeds", "1..3", "E06"}, &out)
		if err == nil || !strings.Contains(err.Error(), "-scale must be a finite number > 0") {
			t.Fatalf("scale %s: err = %v", scale, err)
		}
	}
}

func TestKnobBelowMeasurementFloor(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"run", "-set", "e03.nodes=50", "E03"}, &out)
	if err == nil || !strings.Contains(err.Error(), "measurement floor") {
		t.Fatalf("err = %v", err)
	}
}

func TestKnobClampedByScaleRejected(t *testing.T) {
	var out bytes.Buffer
	// 250 passes the static floor but scales to 25 < 200.
	err := run([]string{"run", "-scale", "0.1", "-set", "e03.nodes=250", "E03"}, &out)
	if err == nil || !strings.Contains(err.Error(), "falls below the measurement floor") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunKnobNotAttachedToOtherExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	var out bytes.Buffer
	// The bad E03 knob must fail E03 only; E01 runs knob-free.
	err := run([]string{"run", "-scale", "0.1", "-set", "e03.nodes=50", "E03", "E01"}, &out)
	if err == nil || !strings.Contains(err.Error(), "E03:") {
		t.Fatalf("err = %v", err)
	}
	if strings.Contains(err.Error(), "E01:") {
		t.Fatalf("knob leaked into E01: %v", err)
	}
}

func TestScaleScalesConflict(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"sweep", "-scale", "0.5", "-scales", "0.25", "-seeds", "1,2", "E01"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-scale and -scales conflict") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsSeedBelowOne(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"run", "-seed", "0", "E01"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-seed must be >= 1") {
		t.Fatalf("err = %v", err)
	}
}

func TestJSONAndCSVConflict(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"run", "-json", "-csv", "E01"}, &out)
	if err == nil || !strings.Contains(err.Error(), "choose one of -json or -csv") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsMultiValueKnob(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"run", "-set", "e03.lookups=100,200", "E03"}, &out)
	if err == nil || !strings.Contains(err.Error(), "sweep subcommand") {
		t.Fatalf("err = %v", err)
	}
}

func TestSweepRejectsSeedZero(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"sweep", "-seeds", "0..4", "E01"}, &out)
	if err == nil || !strings.Contains(err.Error(), ">= 1") {
		t.Fatalf("err = %v", err)
	}
}

func TestRepRejectsZeroReplications(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"rep", "-n", "0", "E01"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-n must be") {
		t.Fatalf("err = %v", err)
	}
}

func TestRepRejectsHugeReplicationCount(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"rep", "-n", "2000000000", "E01"}, &out)
	if err == nil || !strings.Contains(err.Error(), "seed cap") {
		t.Fatalf("err = %v", err)
	}
}

func TestListIncludesAllExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"list"}, &out); err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, id := range []string{"E01", "E06", "E18"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("list output missing %s:\n%s", id, out.String())
		}
	}
}

func TestFlagsBeforeOrAfterSubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	var a, b bytes.Buffer
	// Ignore shape-check outcomes at tiny scale; output equality is the point.
	errA := run([]string{"-scale", "0.1", "-seed", "3", "run", "E01"}, &a)
	errB := run([]string{"run", "-scale", "0.1", "-seed", "3", "E01"}, &b)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("errors differ: %v vs %v", errA, errB)
	}
	if a.String() != b.String() || a.Len() == 0 {
		t.Fatalf("flag position changed output:\n--- before\n%s\n--- after\n%s", a.String(), b.String())
	}
}

// TestSweepJSONDeterministicAcrossParallelism is the CLI half of the
// harness determinism contract.
func TestSweepJSONDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	sweepArgs := func(parallel string) []string {
		return []string{"sweep", "-parallel", parallel, "-json", "-seeds", "1..3", "-scale", "0.1", "E01"}
	}
	var seq, par bytes.Buffer
	if err := run(sweepArgs("1"), &seq); err != nil {
		t.Fatalf("sweep -parallel 1: %v", err)
	}
	if err := run(sweepArgs("8"), &par); err != nil {
		t.Fatalf("sweep -parallel 8: %v", err)
	}
	if seq.String() != par.String() {
		t.Fatal("sweep JSON differs between -parallel 1 and -parallel 8")
	}
	var report struct {
		Groups []struct {
			Experiment   string `json:"experiment"`
			Replications int    `json:"replications"`
			Metrics      []struct {
				Name string  `json:"name"`
				N    int     `json:"n"`
				Mean float64 `json:"mean"`
			} `json:"metrics"`
		} `json:"groups"`
	}
	if err := json.Unmarshal(seq.Bytes(), &report); err != nil {
		t.Fatalf("sweep output is not valid JSON: %v", err)
	}
	if len(report.Groups) != 1 || report.Groups[0].Replications != 3 {
		t.Fatalf("unexpected report shape: %+v", report.Groups)
	}
	if len(report.Groups[0].Metrics) == 0 {
		t.Fatal("report has no aggregated metrics")
	}
}

func TestReportRejectsInapplicableFlags(t *testing.T) {
	for _, args := range [][]string{
		{"report", "-seed", "3", "E01"},
		{"report", "-n", "5", "E01"},
		{"report", "-scales", "0.5,1", "E01"},
		{"report", "-json", "E01"},
		{"report", "-csv", "E01"},
		{"report", "-set", "e01.exploration=0.5", "E01"},
	} {
		var out bytes.Buffer
		err := run(args, &out)
		if err == nil || !strings.Contains(err.Error(), "does not apply") {
			t.Errorf("run(%v) = %v, want inapplicable-flag error", args, err)
		}
	}
}

func TestGridPointsNeedsSensitivity(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"report", "-grid-points", "3", "E11"}, &out)
	if err == nil || !strings.Contains(err.Error(), "needs -sensitivity") {
		t.Fatalf("err = %v, want -grid-points gating", err)
	}
	err = run([]string{"report", "-sensitivity", "-grid-points", "0", "E11"}, &out)
	if err == nil || !strings.Contains(err.Error(), "must be >= 1") {
		t.Fatalf("err = %v, want positive grid-points", err)
	}
}

// TestReportSensitivityWritesPages drives `report -sensitivity` end to
// end on the cheap analytic E11: the tree gains per-knob figures and the
// page gains the sensitivity sections.
func TestReportSensitivityWritesPages(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"report", "-sensitivity", "-grid-points", "3", "-seeds", "1..2", "-out", dir, "E11"}, &out)
	if err != nil {
		t.Fatalf("report -sensitivity: %v\n%s", err, out.String())
	}
	page, err := os.ReadFile(filepath.Join(dir, "experiments", "E11.md"))
	if err != nil {
		t.Fatalf("read page: %v", err)
	}
	for _, want := range []string{"## Sensitivity", "### Verdict stability"} {
		if !strings.Contains(string(page), want) {
			t.Errorf("page lacks %q", want)
		}
	}
	// e11.tps sweeps keep the headline metric's name stable, so that knob
	// gets the metric-vs-knob figure (e11.price embeds the swept price in
	// the metric name and renders an explanatory note instead).
	if _, err := os.Stat(filepath.Join(dir, "figures", "E11-sens-e11.tps-1.svg")); err != nil {
		t.Errorf("missing sensitivity figure: %v", err)
	}
}

// TestRepDriftWritesBounds checks `rep -drift` exports the headline
// metric's cross-seed statistics as the soak artifact.
func TestRepDriftWritesBounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drift.json")
	var out bytes.Buffer
	if err := run([]string{"rep", "-n", "3", "-scale", "0.25", "-drift", path, "E11"}, &out); err != nil {
		t.Fatalf("rep -drift: %v\n%s", err, out.String())
	}
	var doc struct {
		Seeds int `json:"seeds"`
		Drift []struct {
			Experiment string  `json:"experiment"`
			Metric     string  `json:"metric"`
			N          int     `json:"n"`
			Mean       float64 `json:"mean"`
		} `json:"drift"`
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read drift: %v", err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("drift JSON: %v", err)
	}
	if doc.Seeds != 3 || len(doc.Drift) != 1 {
		t.Fatalf("drift doc = %+v, want 3 seeds and one E11 group", doc)
	}
	d := doc.Drift[0]
	if d.Experiment != "E11" || d.Metric == "" || d.N != 3 {
		t.Errorf("drift entry = %+v", d)
	}
}

func TestReportRejectsOutFlagOnOtherCommands(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"run", "-out", "x", "E01"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-out does not apply") {
		t.Fatalf("err = %v, want -out rejection", err)
	}
}

func TestReportRequiresIDs(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"report"}, &out)
	if err == nil || !strings.Contains(err.Error(), "requires experiment ids") {
		t.Fatalf("err = %v", err)
	}
}

// TestReportWritesDeterministicTree generates a small report twice at
// different worker counts into fresh directories and requires identical
// bytes — the CLI-level version of the CI determinism gate.
func TestReportWritesDeterministicTree(t *testing.T) {
	dirA := t.TempDir()
	dirB := t.TempDir()
	var outA, outB bytes.Buffer
	argsFor := func(dir, parallel string) []string {
		return []string{"report", "-out", dir, "-seeds", "1..2", "-scale", "0.25", "-parallel", parallel, "E01", "E12"}
	}
	if err := run(argsFor(dirA, "1"), &outA); err != nil {
		t.Fatalf("report -parallel 1: %v", err)
	}
	if err := run(argsFor(dirB, "8"), &outB); err != nil {
		t.Fatalf("report -parallel 8: %v", err)
	}
	if !strings.Contains(outA.String(), "report: wrote") {
		t.Errorf("missing summary line: %q", outA.String())
	}
	normA := strings.ReplaceAll(outA.String(), dirA, "DIR")
	normB := strings.ReplaceAll(outB.String(), dirB, "DIR")
	if normA != normB {
		t.Errorf("summary lines differ: %q vs %q", normA, normB)
	}
	var paths []string
	root := os.DirFS(dirA)
	if err := fs.WalkDir(root, ".", func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			paths = append(paths, p)
		}
		return nil
	}); err != nil {
		t.Fatalf("walk: %v", err)
	}
	if len(paths) < 4 {
		t.Fatalf("report tree too small: %v", paths)
	}
	foundManifest := false
	for _, p := range paths {
		a, err := os.ReadFile(filepath.Join(dirA, p))
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, p))
		if err != nil {
			t.Fatalf("%s missing from -parallel 8 tree: %v", p, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between -parallel 1 and -parallel 8", p)
		}
		if p == "manifest.json" {
			foundManifest = true
		}
	}
	if !foundManifest {
		t.Error("report tree lacks manifest.json")
	}
}

// TestTraceWritesChromeTrace runs the trace subcommand end to end: a
// transport-driving experiment produces a valid Chrome trace-event
// document plus a telemetry summary on stdout, and identical invocations
// produce identical bytes.
func TestTraceWritesChromeTrace(t *testing.T) {
	pathA := filepath.Join(t.TempDir(), "a.json")
	pathB := filepath.Join(t.TempDir(), "b.json")
	var outA, outB bytes.Buffer
	if err := run([]string{"trace", "-scale", "0.25", "-out", pathA, "E02"}, &outA); err != nil {
		t.Fatalf("trace: %v\n%s", err, outA.String())
	}
	if err := run([]string{"trace", "-scale", "0.25", "-out", pathB, "E02"}, &outB); err != nil {
		t.Fatalf("trace rerun: %v", err)
	}
	a, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	b, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatalf("read trace rerun: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Error("trace bytes differ between identical invocations")
	}
	normA := strings.ReplaceAll(outA.String(), pathA, "OUT")
	normB := strings.ReplaceAll(outB.String(), pathB, "OUT")
	if normA != normB {
		t.Errorf("summaries differ:\n%s\n%s", normA, normB)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("trace doc shape wrong: unit %q, %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].PID != 1 {
		t.Errorf("trace events must use pid 1, got %d", doc.TraceEvents[0].PID)
	}
	for _, want := range []string{"trace: wrote", "kernel:", "counter net.msgs_sent", "histogram net.delivery_delay_ns"} {
		if !strings.Contains(outA.String(), want) {
			t.Errorf("summary lacks %q:\n%s", want, outA.String())
		}
	}
}

func TestTraceRequiresSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"trace", "E01", "E02"}, &out)
	if err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("err = %v, want exactly-one rejection", err)
	}
}

func TestTraceRejectsInapplicableFlags(t *testing.T) {
	var out bytes.Buffer
	for _, tc := range [][]string{
		{"trace", "-seeds", "1..3", "E02"},
		{"trace", "-parallel", "4", "E02"},
		{"trace", "-json", "E02"},
		{"run", "-trace-limit", "10", "E01"},
		{"report", "-trace-limit", "10", "E01"},
		{"trace", "-resources", "E02"},
		{"run", "-resources", "E01"},
	} {
		if err := run(tc, &out); err == nil || !strings.Contains(err.Error(), "does not apply") {
			t.Errorf("%v: err = %v, want inapplicable-flag rejection", tc, err)
		}
	}
}

func TestTraceLimitCountsDrops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.json")
	var out bytes.Buffer
	if err := run([]string{"trace", "-scale", "0.25", "-trace-limit", "10", "-out", path, "E02"}, &out); err != nil {
		t.Fatalf("trace -trace-limit: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if len(doc.TraceEvents) != 10 {
		t.Errorf("trace has %d events, want the 10-event limit", len(doc.TraceEvents))
	}
	if !strings.Contains(out.String(), "dropped)") || strings.Contains(out.String(), "(10 events, 0 dropped)") {
		t.Errorf("summary should report nonzero drops:\n%s", out.String())
	}
}

// TestRepDriftIncludesHostRuns checks the soak artifact's host-resource
// rows: one per completed run, with positive wall time.
func TestRepDriftIncludesHostRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drift.json")
	var out bytes.Buffer
	if err := run([]string{"rep", "-n", "2", "-scale", "0.25", "-drift", path, "E11"}, &out); err != nil {
		t.Fatalf("rep -drift: %v", err)
	}
	var doc struct {
		Runs []struct {
			Experiment    string `json:"experiment"`
			Seed          int64  `json:"seed"`
			WallNanos     int64  `json:"wall_ns"`
			HeapLiveBytes uint64 `json:"heap_live_bytes"`
		} `json:"runs"`
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read drift: %v", err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("drift JSON: %v", err)
	}
	if len(doc.Runs) != 2 {
		t.Fatalf("drift has %d host runs, want 2: %+v", len(doc.Runs), doc.Runs)
	}
	for i, r := range doc.Runs {
		if r.Experiment != "E11" || r.Seed != int64(i+1) || r.WallNanos <= 0 {
			t.Errorf("host run %d = %+v", i, r)
		}
	}
}

// TestReportResourcesTree checks the CLI wiring of -resources: the tree
// gains Resources appendices and a volatile host.json, and -profile
// drops pprof files alongside.
func TestReportResourcesTree(t *testing.T) {
	dir := t.TempDir()
	profDir := filepath.Join(t.TempDir(), "profiles")
	var out bytes.Buffer
	args := []string{"report", "-resources", "-profile", profDir, "-out", dir,
		"-seeds", "1", "-scale", "0.25", "E02"}
	if err := run(args, &out); err != nil {
		t.Fatalf("report -resources: %v\n%s", err, out.String())
	}
	page, err := os.ReadFile(filepath.Join(dir, "experiments", "E02.md"))
	if err != nil {
		t.Fatalf("read page: %v", err)
	}
	if !bytes.Contains(page, []byte("## Resources")) {
		t.Error("page lacks the Resources appendix")
	}
	if _, err := os.Stat(filepath.Join(dir, "resources", "host.json")); err != nil {
		t.Errorf("missing host.json: %v", err)
	}
	for _, want := range []string{"E02-s1.cpu.pprof", "E02-s1.heap.pprof"} {
		if fi, err := os.Stat(filepath.Join(profDir, want)); err != nil || fi.Size() == 0 {
			t.Errorf("missing or empty profile %s: %v", want, err)
		}
	}
}
