// Command decentsim runs the paper-reproduction experiments.
//
// Usage:
//
//	decentsim list                 # show all experiments
//	decentsim run E06 E13          # run specific experiments
//	decentsim run all              # run everything
//	decentsim -seed 7 -scale 0.5 run E03
//	decentsim -csv run E06         # emit tables as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	decent "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "decentsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("decentsim", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master random seed")
	scale := fs.Float64("scale", 1, "workload scale factor (smaller = faster)")
	csv := fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("expected a command: list | run <ids|all>")
	}
	reg, err := decent.Experiments()
	if err != nil {
		return err
	}
	switch rest[0] {
	case "list":
		for _, e := range reg.All() {
			fmt.Printf("%-5s %s\n      %s\n", e.ID(), e.Title(), e.Claim())
		}
		return nil
	case "run":
		ids := rest[1:]
		if len(ids) == 0 {
			return fmt.Errorf("run requires experiment ids or 'all'")
		}
		if len(ids) == 1 && strings.EqualFold(ids[0], "all") {
			ids = ids[:0]
			for _, e := range reg.All() {
				ids = append(ids, e.ID())
			}
		}
		cfg := decent.Config{Seed: *seed, Scale: *scale}
		failures := 0
		for _, id := range ids {
			res, err := reg.Run(id, cfg)
			if err != nil {
				return fmt.Errorf("run %s: %w", id, err)
			}
			if *csv {
				for _, t := range res.Tables {
					fmt.Println(t.CSV())
				}
			} else {
				fmt.Println(res)
			}
			if !res.Reproduced() {
				failures++
			}
		}
		if failures > 0 {
			return fmt.Errorf("%d experiment(s) failed their shape checks", failures)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q (want list | run)", rest[0])
	}
}
