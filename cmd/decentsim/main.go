// Command decentsim runs the paper-reproduction experiments, singly or as
// parallel multi-seed sweeps.
//
// Usage:
//
//	decentsim list                     # show all experiments
//	decentsim run E06 E13              # run specific experiments
//	decentsim run all                  # run everything (errors collected, reported at exit)
//	decentsim -seed 7 -scale 0.5 run E03
//	decentsim run -csv E06             # emit tables as CSV
//	decentsim run -json -parallel 4 all
//	decentsim run -shards 4 E03        # sharded-kernel runs fan out across 4 workers
//	decentsim sweep -parallel 8 -json -seeds 1..10 E03 E06
//	decentsim sweep -seeds 1..5 -set e03.lookups=100,200 E03
//	decentsim sweep -seeds 1..3 -set e06.shards=16,64,256 -set e06.crossshard=0.1,0.5 E06
//	decentsim rep -n 10 E06            # replicate over seeds 1..n, aggregate
//	decentsim rep -seeds 1..100 -drift SOAK_drift.json E01 E11 E16
//	decentsim report -seeds 1..3 all   # render the reproduction report tree
//	decentsim report -out docs/report -parallel 8 E06 E08
//	decentsim report -sensitivity all  # + per-knob sensitivity pages
//	decentsim report -sensitivity -grid-points 3 -scale 0.25 -seeds 1..2 all
//	decentsim report -resources all    # + per-experiment Resources appendix
//	decentsim report -html all         # + self-contained HTML siblings (index.html, ...)
//	decentsim report -diff old-manifest.json -seeds 1..3 all   # exit nonzero on verdict flips
//	decentsim report -diff SOAK_baseline.json -against SOAK_drift.json  # trend gate, no runs
//	decentsim serve -addr :8080 -seeds 1..3 -scale 0.25 E01 E11  # living report over HTTP
//	decentsim trace E06                # run once, write trace.json (chrome://tracing)
//	decentsim trace -seed 3 -trace-limit 50000 -out e13.trace.json E13
//	decentsim rep -n 5 -profile profiles E06   # per-run CPU/heap pprof files
//
// Every experiment E01–E19 registers sweepable knobs; -set accepts any
// name listed in DESIGN.md's knob table (unknown names are rejected with
// the full list).
//
// Flags may appear before or after the subcommand. sweep and rep emit an
// aggregate report (per-metric mean/stddev/95%-CI and a majority-vote
// shape verdict per check) that is byte-identical at any -parallel value.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"maps"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	decent "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "decentsim:", err)
		os.Exit(1)
	}
}

// options holds every flag; the same set is registered globally and per
// subcommand so flags work in either position.
type options struct {
	seed     int64
	scale    float64
	csv      bool
	json     bool
	parallel int
	seeds    string
	scales   string
	reps     int
	out      string
	set      knobFlags

	sensitivity bool
	gridPoints  int
	drift       string

	resources  bool
	profile    string
	traceLimit int
	shards     int

	html    bool
	diff    string
	against string
	addr    string
}

// knobFlags collects repeatable -set name=v1,v2 knob specifications.
type knobFlags struct {
	params map[string][]float64
}

func (k *knobFlags) String() string { return "" }

func (k *knobFlags) Set(spec string) error {
	name, vals, err := decent.ParseParam(spec)
	if err != nil {
		return err
	}
	known := decent.Knobs()
	if _, ok := known[name]; !ok {
		return fmt.Errorf("unknown knob %q (known: %s)", name,
			strings.Join(slices.Sorted(maps.Keys(known)), ", "))
	}
	if k.params == nil {
		k.params = make(map[string][]float64)
	}
	if _, dup := k.params[name]; dup {
		return fmt.Errorf("knob %s given twice; list all values in one -set %s=v1,v2", name, name)
	}
	k.params[name] = vals
	return nil
}

func (o *options) register(fs *flag.FlagSet) {
	fs.Int64Var(&o.seed, "seed", o.seed, "master random seed for single runs (>= 1)")
	fs.Float64Var(&o.scale, "scale", o.scale, "workload scale factor (smaller = faster)")
	fs.BoolVar(&o.csv, "csv", o.csv, "emit CSV instead of aligned text")
	fs.BoolVar(&o.json, "json", o.json, "emit JSON instead of text")
	fs.IntVar(&o.parallel, "parallel", o.parallel, "worker goroutines (0 = GOMAXPROCS)")
	fs.StringVar(&o.seeds, "seeds", o.seeds, "sweep/rep seed list, e.g. 1..10 or 1,3,9 (default: sweep 1..5, rep 1..n)")
	fs.StringVar(&o.scales, "scales", o.scales, "sweep scale list, e.g. 0.25,0.5,1 (default: -scale)")
	fs.IntVar(&o.reps, "n", o.reps, "rep: replication count, seeds 1..n (conflicts with -seeds)")
	fs.StringVar(&o.out, "out", o.out, "report: output directory for the generated report tree")
	fs.Var(&o.set, "set", "sweep knob values, e.g. -set e03.lookups=100,200 (repeatable; every experiment has knobs — see DESIGN.md)")
	fs.BoolVar(&o.sensitivity, "sensitivity", o.sensitivity, "report: sweep every registered knob over its default grid and render per-knob sensitivity pages")
	fs.IntVar(&o.gridPoints, "grid-points", o.gridPoints, "report: swept values per knob grid (default 5; needs -sensitivity)")
	fs.StringVar(&o.drift, "drift", o.drift, "rep: also write per-scenario headline-metric drift bounds (mean/stddev/95% CI) as JSON to this file")
	fs.BoolVar(&o.resources, "resources", o.resources, "report: attach run telemetry and render a per-experiment Resources appendix plus resources/host.json")
	fs.StringVar(&o.profile, "profile", o.profile, "sweep/rep/report: write per-run CPU and heap pprof profiles into this directory")
	fs.IntVar(&o.traceLimit, "trace-limit", o.traceLimit, "trace: event buffer limit (default 100000; overflow is counted, not stored)")
	fs.IntVar(&o.shards, "shards", o.shards, "intra-run worker goroutines for experiments on the sharded kernel (results are byte-identical at any value)")
	fs.BoolVar(&o.html, "html", o.html, "report: also render every markdown page as a self-contained HTML sibling (index.html, experiments/<ID>.html)")
	fs.StringVar(&o.diff, "diff", o.diff, "report: compare verdicts against this old manifest.json (or soak drift JSON); exits nonzero on verdict flips")
	fs.StringVar(&o.against, "against", o.against, "report -diff: compare the -diff file against this file instead of generating a report")
	fs.StringVar(&o.addr, "addr", o.addr, "serve: HTTP listen address (default :8080)")
}

// usage is the command summary printed when the subcommand line itself is
// wrong (missing or unknown command); flag errors print the flag set's
// own usage instead.
const usage = `usage: decentsim [flags] <command> [flags] [ids]

commands:
  list                 show all experiments
  run <ids|all>        run experiments once
  sweep <ids|all>      multi-seed / multi-scale / multi-knob sweeps
  rep <ids|all>        replicate over seeds and aggregate
  report <ids|all>     render the reproduction report tree (-html, -diff)
  serve [ids|all]      serve the living report over HTTP (-addr)
  trace <id>           run once, write a Chrome trace

run 'decentsim <command> -h' for that command's flags`

func run(args []string, out io.Writer) error {
	opts := options{seed: 1, scale: 1, reps: 10, out: "report", shards: 1}
	global := flag.NewFlagSet("decentsim", flag.ContinueOnError)
	opts.register(global)
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("expected a command\n%s", usage)
	}
	cmd, rest := rest[0], rest[1:]
	// Subcommand flags: re-register over the already-parsed values so
	// "decentsim sweep -parallel 8 E03" works like "-parallel 8 sweep E03".
	sub := flag.NewFlagSet("decentsim "+cmd, flag.ContinueOnError)
	opts.register(sub)
	if err := sub.Parse(rest); err != nil {
		return err
	}
	ids := sub.Args()

	// Flags that don't apply to the chosen command are rejected rather
	// than silently ignored (e.g. `run -seeds 1..10` is not a sweep).
	provided := make(map[string]bool)
	global.Visit(func(f *flag.Flag) { provided[f.Name] = true })
	sub.Visit(func(f *flag.Flag) { provided[f.Name] = true })
	inapplicable := map[string]map[string]string{
		"run": {
			"seeds":       "use the sweep or rep subcommand for multi-seed runs",
			"scales":      "use the sweep subcommand to cross scales",
			"n":           "use the rep subcommand for replications",
			"out":         "only the report and trace subcommands write output files",
			"sensitivity": "only the report subcommand renders sensitivity pages",
			"grid-points": "only the report subcommand sweeps knob grids",
			"drift":       "only the rep subcommand writes drift bounds",
			"resources":   "only the report subcommand renders the resources appendix",
			"profile":     "only the sweep, rep, and report subcommands run on the profiled harness",
			"trace-limit": "only the trace subcommand buffers an event trace",
			"html":        "only the report and serve subcommands render HTML pages",
			"diff":        "only the report subcommand compares manifests",
			"against":     "only the report subcommand compares manifests",
			"addr":        "only the serve subcommand listens on an address",
		},
		"sweep": {
			"seed":        "use -seeds to choose sweep seeds",
			"n":           "use -seeds, or the rep subcommand",
			"out":         "only the report and trace subcommands write output files",
			"sensitivity": "only the report subcommand renders sensitivity pages",
			"grid-points": "only the report subcommand sweeps knob grids",
			"drift":       "only the rep subcommand writes drift bounds",
			"resources":   "only the report subcommand renders the resources appendix",
			"trace-limit": "only the trace subcommand buffers an event trace",
			"html":        "only the report and serve subcommands render HTML pages",
			"diff":        "only the report subcommand compares manifests",
			"against":     "only the report subcommand compares manifests",
			"addr":        "only the serve subcommand listens on an address",
		},
		"rep": {
			"seed":        "use -seeds or -n to choose replication seeds",
			"scales":      "rep replicates one scenario; use sweep to cross scales",
			"out":         "only the report and trace subcommands write output files",
			"sensitivity": "only the report subcommand renders sensitivity pages",
			"grid-points": "only the report subcommand sweeps knob grids",
			"resources":   "only the report subcommand renders the resources appendix",
			"trace-limit": "only the trace subcommand buffers an event trace",
			"html":        "only the report and serve subcommands render HTML pages",
			"diff":        "only the report subcommand compares manifests",
			"against":     "only the report subcommand compares manifests",
			"addr":        "only the serve subcommand listens on an address",
		},
		"report": {
			"seed":        "use -seeds to choose the replication seeds",
			"n":           "use -seeds to choose the replication seeds",
			"scales":      "the report runs one scale; use -scale",
			"csv":         "the report is a markdown/SVG/JSON directory tree",
			"json":        "the report is a markdown/SVG/JSON directory tree",
			"set":         "the report documents baseline runs; use -sensitivity for knob grids, or sweep",
			"drift":       "only the rep subcommand writes drift bounds",
			"trace-limit": "only the trace subcommand buffers an event trace",
			"addr":        "only the serve subcommand listens on an address",
		},
		"serve": {
			"seed":        "serve scenarios replicate over -seeds",
			"scales":      "the served default scenario runs one scale; use -scale",
			"n":           "use -seeds to choose the replication seeds",
			"csv":         "serve renders the HTML/markdown report tree",
			"json":        "serve renders the HTML/markdown report tree",
			"out":         "serve streams artifacts from memory; use the report subcommand to write a tree",
			"drift":       "only the rep subcommand writes drift bounds",
			"profile":     "only the sweep, rep, and report subcommands run on the profiled harness",
			"trace-limit": "only the trace subcommand buffers an event trace",
			"diff":        "only the report subcommand compares manifests",
			"against":     "only the report subcommand compares manifests",
		},
		"trace": {
			"seeds":       "trace records one run; use -seed",
			"scales":      "trace records one run; use -scale",
			"n":           "trace records one run",
			"parallel":    "trace records one run in-process",
			"csv":         "trace writes Chrome trace-event JSON",
			"json":        "trace writes Chrome trace-event JSON",
			"sensitivity": "only the report subcommand renders sensitivity pages",
			"grid-points": "only the report subcommand sweeps knob grids",
			"drift":       "only the rep subcommand writes drift bounds",
			"resources":   "only the report subcommand renders the resources appendix",
			"profile":     "only the sweep, rep, and report subcommands run on the profiled harness",
			"shards":      "sharded runs do not register the transport instruments a trace records",
			"html":        "only the report and serve subcommands render HTML pages",
			"diff":        "only the report subcommand compares manifests",
			"against":     "only the report subcommand compares manifests",
			"addr":        "only the serve subcommand listens on an address",
		},
	}
	if cmd == "list" && len(provided) > 0 {
		return errors.New("list: takes no flags")
	}
	for _, name := range slices.Sorted(maps.Keys(inapplicable[cmd])) {
		if provided[name] {
			return fmt.Errorf("%s: -%s does not apply; %s", cmd, name, inapplicable[cmd][name])
		}
	}
	if opts.json && opts.csv {
		return fmt.Errorf("%s: choose one of -json or -csv", cmd)
	}
	if cmd == "rep" && provided["n"] && provided["seeds"] {
		return errors.New("rep: -n and -seeds conflict; choose one")
	}
	if provided["scale"] && provided["scales"] {
		return fmt.Errorf("%s: -scale and -scales conflict; choose one", cmd)
	}
	if provided["grid-points"] && !opts.sensitivity {
		return errors.New("report: -grid-points needs -sensitivity")
	}
	if provided["against"] && !provided["diff"] {
		return errors.New("report: -against needs -diff")
	}
	if provided["diff"] && (provided["out"] || opts.html || opts.sensitivity || opts.resources) {
		return errors.New("report: -diff only compares verdicts; it writes no tree (drop -out/-html/-sensitivity/-resources)")
	}
	if cmd == "serve" && !provided["addr"] {
		opts.addr = ":8080"
	}
	if provided["grid-points"] && opts.gridPoints < 1 {
		return fmt.Errorf("report: -grid-points must be >= 1 (got %d)", opts.gridPoints)
	}
	if (cmd == "run" || cmd == "trace") && opts.seed < 1 {
		return fmt.Errorf("%s: -seed must be >= 1 (got %d)", cmd, opts.seed)
	}
	if provided["shards"] && opts.shards < 1 {
		return fmt.Errorf("%s: -shards must be >= 1 (got %d)", cmd, opts.shards)
	}
	if provided["trace-limit"] && opts.traceLimit < 1 {
		return fmt.Errorf("trace: -trace-limit must be >= 1 (got %d)", opts.traceLimit)
	}
	// The two file-writing commands share -out but not a sensible default:
	// report writes a tree, trace a single JSON file.
	if cmd == "trace" && !provided["out"] {
		opts.out = "trace.json"
	}
	// core.Config would silently remap scale <= 0 to 1 while reports
	// label the group with the raw value — reject up front instead.
	// !(scale > 0) also catches NaN, which compares false to everything.
	if cmd != "list" && (!(opts.scale > 0) || math.IsInf(opts.scale, 0)) {
		return fmt.Errorf("%s: -scale must be a finite number > 0 (got %g)", cmd, opts.scale)
	}

	reg, err := decent.Experiments()
	if err != nil {
		return err
	}
	switch cmd {
	case "list":
		if len(ids) > 0 {
			return fmt.Errorf("list: takes no arguments (got %s)", strings.Join(ids, " "))
		}
		for _, e := range reg.All() {
			fmt.Fprintf(out, "%-5s %s\n      %s\n", e.ID(), e.Title(), e.Claim())
		}
		return nil
	case "run":
		return runCmd(out, reg, &opts, ids)
	case "sweep":
		return sweepCmd(out, reg, &opts, ids, false)
	case "rep":
		return sweepCmd(out, reg, &opts, ids, true)
	case "report":
		return reportCmd(out, reg, &opts, ids)
	case "serve":
		return serveCmd(out, reg, &opts, ids)
	case "trace":
		return traceCmd(out, reg, &opts, ids)
	default:
		return fmt.Errorf("unknown command %q\n%s", cmd, usage)
	}
}

// expandIDs resolves "all" and validates every id against the registry,
// rejecting duplicates (a repeated id would be aggregated as extra
// replications of the same scenario).
func expandIDs(reg *decent.Registry, ids []string) ([]string, error) {
	if len(ids) == 0 {
		return nil, errors.New("requires experiment ids or 'all'")
	}
	if len(ids) == 1 && strings.EqualFold(ids[0], "all") {
		ids = ids[:0]
		for _, e := range reg.All() {
			ids = append(ids, e.ID())
		}
		return ids, nil
	}
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if _, err := reg.Get(id); err != nil {
			return nil, err
		}
		up := strings.ToUpper(id)
		if seen[up] {
			return nil, fmt.Errorf("duplicate experiment id %s", up)
		}
		seen[up] = true
	}
	return ids, nil
}

// runCmd executes each experiment once. Errors do not abort the batch:
// every experiment runs, then all errors are reported together.
func runCmd(out io.Writer, reg *decent.Registry, opts *options, ids []string) error {
	ids, err := expandIDs(reg, ids)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if err := rejectMultiValueKnobs("run", opts.set.params); err != nil {
		return err
	}
	// Expanding through Sweep reuses its knob-ownership rule: a knob
	// prefixed for one selected experiment is not attached to the others.
	grid := decent.Sweep{
		Experiments: ids,
		Seeds:       []int64{opts.seed},
		Scales:      []float64{opts.scale},
		Params:      opts.set.params,
		Shards:      opts.shards,
	}
	// Knob ownership is validated by the same rule sweeps use.
	if err := grid.Validate(); err != nil {
		return fmt.Errorf("run: %w", err)
	}
	jobs := grid.Jobs()
	// Text and CSV modes stream each result as soon as every earlier job
	// has finished, so long batches show progress; output order stays the
	// job order regardless of which worker finishes first. JSON must be a
	// single document and is emitted at the end.
	printResult := func(jr decent.JobResult) {
		if jr.Err != nil {
			return
		}
		if opts.csv {
			for _, t := range jr.Result.Tables {
				fmt.Fprintln(out, t.CSV())
			}
		} else {
			fmt.Fprintln(out, jr.Result)
		}
	}
	next := 0
	pending := make(map[int]decent.JobResult, len(jobs))
	runner := decent.Runner{Registry: reg, Workers: opts.parallel}
	if !opts.json {
		runner.OnResult = func(i int, jr decent.JobResult) {
			pending[i] = jr
			for {
				jr, ok := pending[next]
				if !ok {
					break
				}
				printResult(jr)
				delete(pending, next)
				next++
			}
		}
	}
	results := runner.Run(jobs)
	var runErrs []string
	failures := 0
	// runDoc mirrors the sweep JSON contract: errored runs stay in-band
	// rather than only on stderr. Slices are non-nil so empty sections
	// encode as [] rather than null.
	type runError struct {
		Experiment string `json:"experiment"`
		Error      string `json:"error"`
	}
	runDoc := struct {
		Results []*decent.Result `json:"results"`
		Errors  []runError       `json:"errors"`
	}{Results: []*decent.Result{}, Errors: []runError{}}
	for _, jr := range results {
		if jr.Err != nil {
			// Canonical upper-case ids, as Aggregate and the registry emit.
			id := strings.ToUpper(jr.Job.ExperimentID)
			runErrs = append(runErrs, fmt.Sprintf("%s: %v", id, jr.Err))
			runDoc.Errors = append(runDoc.Errors, runError{
				Experiment: id,
				Error:      jr.Err.Error(),
			})
			continue
		}
		if opts.json {
			runDoc.Results = append(runDoc.Results, jr.Result)
		}
		if !jr.Result.Reproduced() {
			failures++
		}
	}
	if opts.json {
		enc, err := json.MarshalIndent(runDoc, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(enc))
	}
	if len(runErrs) > 0 {
		return fmt.Errorf("%d experiment(s) errored:\n  %s", len(runErrs), strings.Join(runErrs, "\n  "))
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed their shape checks", failures)
	}
	return nil
}

// rejectMultiValueKnobs enforces that single-scenario commands (run, rep)
// take one value per knob: a multi-value knob is a sweep request, and
// silently taking the first value would drop grid points.
func rejectMultiValueKnobs(cmd string, params map[string][]float64) error {
	for _, name := range slices.Sorted(maps.Keys(params)) {
		if vals := params[name]; len(vals) > 1 {
			return fmt.Errorf("%s: knob %s has %d values; use the sweep subcommand to cross knob values", cmd, name, len(vals))
		}
	}
	return nil
}

// reportCmd generates the reproduction report: every selected experiment
// replicated across the seed set on the worker pool, rendered as a
// deterministic document tree (REPORT.md traceability matrix, one page
// per experiment, SVG figures, hash manifest) under -out. Shape-check
// outcomes live in the report; only run errors fail the command.
func reportCmd(out io.Writer, reg *decent.Registry, opts *options, ids []string) error {
	if opts.diff != "" {
		return diffCmd(out, reg, opts, ids)
	}
	ids, err := expandIDs(reg, ids)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	ropts := decent.ReportOptions{
		IDs:         ids,
		Scale:       opts.scale,
		Workers:     opts.parallel,
		Shards:      opts.shards,
		Sensitivity: opts.sensitivity,
		GridPoints:  opts.gridPoints,
		Resources:   opts.resources,
		ProfileDir:  opts.profile,
		HTML:        opts.html,
	}
	if opts.profile != "" {
		if err := os.MkdirAll(opts.profile, 0o755); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	if opts.seeds != "" {
		if ropts.Seeds, err = decent.ParseSeeds(opts.seeds); err != nil {
			return err
		}
	}
	tree, err := decent.GenerateReport(ropts)
	if err != nil {
		return err
	}
	if err := tree.WriteDir(opts.out); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	fmt.Fprintf(out, "report: wrote %d files to %s (%d/%d scenarios reproduced)\n",
		len(tree.Files), opts.out, tree.Reproduced, tree.Groups)
	if tree.RunErrors > 0 {
		return fmt.Errorf("report: %d run(s) errored (see the generated pages)", tree.RunErrors)
	}
	return nil
}

// diffCmd is `report -diff`: it compares an old manifest.json (or soak
// drift JSON) against either a second file (-against, no experiments run)
// or a freshly generated report's manifest, prints one line per verdict
// flip / metric drift / scenario change, and fails exactly when a verdict
// flipped (manifests) or a drift bound was breached (drift documents) —
// the exit code is the trend gate.
func diffCmd(out io.Writer, reg *decent.Registry, opts *options, ids []string) error {
	if opts.against != "" && len(ids) > 0 {
		return fmt.Errorf("report: -diff with -against compares two files; it takes no experiment ids (got %s)", strings.Join(ids, " "))
	}
	oldData, err := os.ReadFile(opts.diff)
	if err != nil {
		return fmt.Errorf("report: -diff: %w", err)
	}
	var newData []byte
	if opts.against != "" {
		if newData, err = os.ReadFile(opts.against); err != nil {
			return fmt.Errorf("report: -against: %w", err)
		}
	} else {
		ids, err := expandIDs(reg, ids)
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		ropts := decent.ReportOptions{
			IDs:     ids,
			Scale:   opts.scale,
			Workers: opts.parallel,
			Shards:  opts.shards,
		}
		if opts.seeds != "" {
			if ropts.Seeds, err = decent.ParseSeeds(opts.seeds); err != nil {
				return err
			}
		}
		tree, err := decent.GenerateReport(ropts)
		if err != nil {
			return err
		}
		newData = tree.Lookup("manifest.json")
	}
	d, err := decent.DiffDocs(oldData, newData)
	if err != nil {
		return err
	}
	fmt.Fprint(out, d.Render())
	if d.Failing() {
		if d.Kind == "drift" {
			return fmt.Errorf("report: %d scenario(s) breached the drift envelope", len(d.Breaches))
		}
		return fmt.Errorf("report: %d claim verdict(s) flipped", len(d.Flips))
	}
	return nil
}

// serveCmd runs the living-report service: the report tree for the
// selected scenario (default: every experiment, seeds 1..3, scale 1)
// behind an HTTP API with scenario-hash caching. It blocks until
// interrupted; SIGINT/SIGTERM drain in-flight requests before exit.
func serveCmd(out io.Writer, reg *decent.Registry, opts *options, ids []string) error {
	if len(ids) > 0 {
		var err error
		if ids, err = expandIDs(reg, ids); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	if err := rejectMultiValueKnobs("serve", opts.set.params); err != nil {
		return err
	}
	base := decent.ReportOptions{
		IDs:         ids,
		Scale:       opts.scale,
		Workers:     opts.parallel,
		Shards:      opts.shards,
		Sensitivity: opts.sensitivity,
		GridPoints:  opts.gridPoints,
		Resources:   opts.resources,
	}
	var err error
	if opts.seeds != "" {
		if base.Seeds, err = decent.ParseSeeds(opts.seeds); err != nil {
			return err
		}
	}
	for name, vals := range opts.set.params {
		if base.Params == nil {
			base.Params = make(map[string]float64, len(opts.set.params))
		}
		base.Params[name] = vals[0]
	}
	srv, err := decent.NewServer(base, decent.NewCollector())
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	// Announce the resolved address (not the flag) so -addr :0 is usable.
	fmt.Fprintf(out, "serve: listening on http://%s\n", ln.Addr())
	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		httpSrv.Shutdown(context.Background())
		close(done)
	}()
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("serve: %w", err)
	}
	<-done
	fmt.Fprintln(out, "serve: shut down")
	return nil
}

// writeDrift exports per-scenario drift bounds: the headline metric
// (first varying, else first) of every aggregate group with its
// cross-seed mean, stddev and 95% CI, plus one host-resource row per run
// (wall time and live heap — machine-dependent by nature, tracked so the
// nightly soak surfaces runtime and memory drift alongside metric
// drift). This is the compact artifact the nightly soak workflow
// publishes, so drift across large seed sets accumulates as a trajectory
// instead of a full report tree.
func writeDrift(path string, report *decent.Report, seeds []int64, results []decent.JobResult) error {
	type driftMetric struct {
		Experiment   string  `json:"experiment"`
		Scale        float64 `json:"scale"`
		Params       string  `json:"params,omitempty"`
		Replications int     `json:"replications"`
		Metric       string  `json:"metric"`
		N            int     `json:"n"`
		Mean         float64 `json:"mean"`
		Std          float64 `json:"stddev"`
		CI95         float64 `json:"ci95"`
		Min          float64 `json:"min"`
		Max          float64 `json:"max"`
	}
	type driftRun struct {
		Experiment    string  `json:"experiment"`
		Seed          int64   `json:"seed"`
		Scale         float64 `json:"scale"`
		WallNanos     int64   `json:"wall_ns"`
		HeapLiveBytes uint64  `json:"heap_live_bytes"`
	}
	doc := struct {
		Seeds int           `json:"seeds"`
		Drift []driftMetric `json:"drift"`
		Runs  []driftRun    `json:"runs"`
	}{Seeds: len(seeds), Drift: []driftMetric{}, Runs: []driftRun{}}
	for _, jr := range results {
		if jr.Err != nil {
			continue
		}
		run := driftRun{
			Experiment: strings.ToUpper(jr.Job.ExperimentID),
			Seed:       jr.Job.Config.Seed,
			Scale:      jr.Job.Config.Scale,
			WallNanos:  int64(jr.Elapsed),
		}
		if jr.Host != nil {
			run.WallNanos = jr.Host.WallNanos
			run.HeapLiveBytes = jr.Host.HeapLiveBytes
		}
		doc.Runs = append(doc.Runs, run)
	}
	for _, g := range report.Groups {
		m, ok := g.Headline()
		if !ok {
			continue
		}
		doc.Drift = append(doc.Drift, driftMetric{
			Experiment:   g.ExperimentID,
			Scale:        g.Scale,
			Params:       g.Params,
			Replications: g.Replications,
			Metric:       m.Name,
			N:            m.N,
			Mean:         m.Mean,
			Std:          m.Std,
			CI95:         m.CI95,
			Min:          m.Min,
			Max:          m.Max,
		})
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

// sweepCmd runs a multi-seed sweep (or, for rep, a pure replication) and
// emits the aggregate report. Shape-check outcomes live in the report;
// only run errors fail the command.
func sweepCmd(out io.Writer, reg *decent.Registry, opts *options, ids []string, rep bool) error {
	var err error
	name := "sweep"
	if rep {
		name = "rep"
	}
	ids, err = expandIDs(reg, ids)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	// Knob-ownership validation happens in decent.RunSweep (Sweep.Validate).
	// rep replicates one scenario: a multi-value knob is a sweep request.
	if rep {
		if err := rejectMultiValueKnobs("rep", opts.set.params); err != nil {
			return err
		}
	}
	sweep := decent.Sweep{Experiments: ids, Params: opts.set.params, Shards: opts.shards}
	switch {
	case opts.seeds != "":
		if sweep.Seeds, err = decent.ParseSeeds(opts.seeds); err != nil {
			return err
		}
	case rep:
		if opts.reps < 1 {
			return fmt.Errorf("rep: -n must be >= 1 (got %d)", opts.reps)
		}
		if opts.reps > decent.MaxSeeds {
			return fmt.Errorf("rep: -n %d exceeds the %d-seed cap", opts.reps, decent.MaxSeeds)
		}
		for s := int64(1); s <= int64(opts.reps); s++ {
			sweep.Seeds = append(sweep.Seeds, s)
		}
	default:
		sweep.Seeds = []int64{1, 2, 3, 4, 5}
	}
	if opts.scales != "" {
		if sweep.Scales, err = decent.ParseScales(opts.scales); err != nil {
			return err
		}
	} else {
		sweep.Scales = []float64{opts.scale}
	}
	if err := sweep.Validate(); err != nil {
		return err
	}
	if opts.profile != "" {
		if err := os.MkdirAll(opts.profile, 0o755); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	// Built directly (rather than through RunSweep) so the runner can
	// carry the profiling and host-sampling hooks; aggregation is the
	// same, so the report bytes are unchanged.
	runner := decent.Runner{
		Registry:   reg,
		Workers:    opts.parallel,
		ProfileDir: opts.profile,
		SampleHost: rep && opts.drift != "",
	}
	results := runner.Run(sweep.Jobs())
	report := decent.Aggregate(results)
	if rep && opts.drift != "" {
		if err := writeDrift(opts.drift, report, sweep.Seeds, results); err != nil {
			return fmt.Errorf("rep: %w", err)
		}
	}
	switch {
	case opts.json:
		enc, err := report.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(enc))
	case opts.csv:
		fmt.Fprint(out, report.CSV())
	default:
		fmt.Fprint(out, report)
	}
	errs := 0
	for _, g := range report.Groups {
		errs += len(g.Errors)
	}
	if errs > 0 {
		return fmt.Errorf("%s: %d run(s) errored (see report)", name, errs)
	}
	return nil
}

// traceCmd runs one experiment in-process with a telemetry collector and
// event trace attached, writes the trace in Chrome trace-event JSON
// (load it in chrome://tracing or Perfetto), and prints a telemetry
// summary. Single-run by construction: a trace interleaving several runs
// would be unreadable and the collector is per-run state.
func traceCmd(out io.Writer, reg *decent.Registry, opts *options, ids []string) error {
	ids, err := expandIDs(reg, ids)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if len(ids) != 1 {
		return fmt.Errorf("trace: takes exactly one experiment id (got %d)", len(ids))
	}
	if err := rejectMultiValueKnobs("trace", opts.set.params); err != nil {
		return err
	}
	// Reuse the sweep grid so knob ownership and bounds are validated by
	// the same rule every other command uses.
	grid := decent.Sweep{
		Experiments: ids,
		Seeds:       []int64{opts.seed},
		Scales:      []float64{opts.scale},
		Params:      opts.set.params,
	}
	if err := grid.Validate(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	jobs := grid.Jobs()
	limit := opts.traceLimit
	if limit <= 0 {
		limit = decent.DefaultTraceLimit
	}
	col := decent.NewCollector(decent.WithTrace(limit))
	cfg := jobs[0].Config
	cfg.Obs = col
	res, err := reg.Run(jobs[0].ExperimentID, cfg)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	f, err := os.Create(opts.out)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := col.Trace().WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	snap := col.Snapshot()
	fmt.Fprintf(out, "trace: wrote %s (%d events, %d dropped)\n", opts.out, snap.TraceEvents, snap.TraceDropped)
	fmt.Fprintf(out, "kernel: %d events fired, peak %d pending, virtual time %s\n",
		snap.Sim.Fired, snap.Sim.MaxPending, time.Duration(snap.Sim.VirtualNano))
	for _, c := range snap.Counters {
		fmt.Fprintf(out, "counter %s = %d\n", c.Name, c.Total)
	}
	for _, h := range snap.Hists {
		fmt.Fprintf(out, "histogram %s: n=%d p50=%s p99=%s\n",
			h.Name, h.Count, time.Duration(h.P50), time.Duration(h.P99))
	}
	if !res.Reproduced() {
		fmt.Fprintf(out, "note: %s failed its shape checks on this run\n", res.ID)
	}
	return nil
}
