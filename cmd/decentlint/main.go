// Command decentlint runs the repository's static-analysis suite: five
// analyzers (nondeterm, rngstream, floatfmt, knobreg, hotpath) that
// enforce the determinism, RNG-stream, knob-registry, and 0-alloc
// hot-path contracts at lint time. See internal/lint for the contracts
// and the //decentlint:allow / //decentlint:hotpath directives.
//
// Usage:
//
//	go run ./cmd/decentlint ./...
//
// Exit status is 0 when the tree is clean, 1 when findings were reported,
// and 2 on a load or internal error. Packages must compile: imports are
// resolved from `go list -export` build artifacts.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: decentlint [packages]\n\nruns the decentlint analyzer suite over the given package patterns\n(default ./...) and exits nonzero on any finding.\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "decentlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "decentlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "decentlint: clean")
}
