// Supplychain demonstrates the paper's §V-A use case: a consortium of
// mutually distrusting organizations (grower, shipper, retailer, customs)
// tracking goods provenance on a permissioned channel — no proof-of-work,
// no global broadcast, authenticated members, finality in under a second.
//
//	go run ./examples/supplychain
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/netmodel"
	"repro/internal/permissioned"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "supplychain:", err)
		os.Exit(1)
	}
}

// trackCC appends a custody event to a shipment's provenance trail.
func trackCC(stub *permissioned.Stub, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: track <shipment> <event>, got %d args", len(args))
	}
	key := "shipment:" + args[0]
	prev, err := stub.GetState(key)
	if err != nil {
		return err
	}
	trail := string(prev)
	if trail != "" {
		trail += " -> "
	}
	trail += args[1]
	return stub.PutState(key, []byte(trail))
}

func run() error {
	s := sim.New(sim.WithSeed(2026))
	nm := netmodel.New(s, netmodel.WithJitter(0.1))
	nw, err := permissioned.NewNetwork(s, nm, permissioned.Config{BlockSize: 5})
	if err != nil {
		return err
	}
	consortium := []struct {
		name   string
		region netmodel.Region
	}{
		{"grower-cl", netmodel.SouthAmerica},
		{"shipper-pa", netmodel.NorthAmerica},
		{"customs-nl", netmodel.Europe},
		{"retailer-de", netmodel.Europe},
	}
	members := make([]string, 0, len(consortium))
	for _, org := range consortium {
		if _, err := nw.AddOrg(org.name, org.region); err != nil {
			return err
		}
		members = append(members, org.name)
	}
	// Two organizations must endorse every custody event.
	if _, err := nw.CreateChannel("provenance", members, permissioned.Policy{Required: 2}); err != nil {
		return err
	}
	if err := nw.InstallChaincode("provenance", "track", trackCC); err != nil {
		return err
	}
	if err := nw.Start(); err != nil {
		return err
	}

	type step struct {
		org, event string
	}
	journey := []step{
		{"grower-cl", "harvested lot 7311 (Valparaíso)"},
		{"shipper-pa", "loaded on MV Andina, reefer 4C"},
		{"customs-nl", "cleared import, Rotterdam"},
		{"retailer-de", "received at DC Hamburg"},
	}
	fmt.Println("submitting custody events across the consortium...")
	var latencies []time.Duration
	// Space the submissions out; the Raft orderer needs a few hundred ms
	// to elect its first leader.
	for i, st := range journey {
		st := st
		s.At(time.Duration(i+2)*time.Second, func() {
			err := nw.Submit("provenance", st.org, "track", []string{"7311", st.event},
				func(res permissioned.TxResult) {
					status := "INVALID"
					if res.Valid {
						status = "committed"
					}
					latencies = append(latencies, res.Latency)
					fmt.Printf("  [%s] %-12s %-40q block=%d latency=%v\n",
						status, st.org, st.event, res.Block, res.Latency.Round(time.Millisecond))
				})
			if err != nil {
				fmt.Fprintln(os.Stderr, "submit:", err)
			}
		})
	}
	if err := s.RunUntil(30 * time.Second); err != nil {
		return err
	}

	ch, _ := nw.Channel("provenance")
	trail, _ := ch.State().Get("shipment:7311")
	fmt.Println("\nprovenance trail for lot 7311:")
	for _, hop := range strings.Split(string(trail), " -> ") {
		fmt.Println("  *", hop)
	}
	fmt.Printf("\nchannel height: %d blocks, %d committed / %d invalid transactions\n",
		ch.Height(), ch.Committed(), ch.Invalid())
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	if len(latencies) > 0 {
		fmt.Printf("mean commit latency: %v — versus ~60 minutes for 6 Bitcoin confirmations\n",
			(sum / time.Duration(len(latencies))).Round(time.Millisecond))
	}
	return nil
}
