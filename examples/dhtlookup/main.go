// Dhtlookup reproduces the Jiménez et al. measurement interactively: the
// same Kademlia protocol under eMule-KAD-like and BitTorrent-Mainline-like
// deployment parameters, showing why one resolves in seconds and the other
// in minutes.
//
//	go run ./examples/dhtlookup
package main

import (
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/overlay"
	"repro/internal/overlay/kademlia"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dhtlookup:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		nodes   = 2000
		lookups = 200
	)
	type deployment struct {
		name string
		cfg  kademlia.Config
	}
	fmt.Printf("iterative Kademlia lookups, %d nodes, %d lookups per deployment\n\n", nodes, lookups)
	for _, d := range []deployment{
		{"eMule KAD-like (responsive peers, tight timeouts)", kademlia.KADConfig()},
		{"BitTorrent MDHT-like (NATed peers, long timeouts)", kademlia.MDHTConfig()},
	} {
		s := sim.New(sim.WithSeed(99))
		nm := netmodel.New(s, netmodel.WithJitter(0.2))
		nw := kademlia.NewNetwork(s, nm, d.cfg)
		for i := 0; i < nodes; i++ {
			nw.AddNode(netmodel.Europe)
		}
		if err := nw.Bootstrap(); err != nil {
			return err
		}
		g := s.Stream("example")
		var latency, rpcs, timeouts metrics.Sample
		for i := 0; i < lookups; i++ {
			var origin *kademlia.Node
			for origin == nil || !origin.Responsive() {
				origin = nw.Nodes()[g.Intn(nodes)]
			}
			nw.Lookup(origin, overlay.RandomID(g), func(res kademlia.Result) {
				latency.AddDuration(res.Latency)
				rpcs.Add(float64(res.RPCs))
				timeouts.Add(float64(res.Timeouts))
			})
		}
		if err := s.Run(); err != nil {
			return err
		}
		fmt.Printf("%s\n", d.name)
		fmt.Printf("  unresponsive peers: %2.0f%%   rpc timeout: %v   parallelism: %d\n",
			d.cfg.UnresponsiveFrac*100, d.cfg.RPCTimeout, d.cfg.Alpha)
		fmt.Printf("  latency: median %6.1fs   p90 %6.1fs   (paper: KAD <=5s at p90, MDHT ~60s median)\n",
			latency.Median(), latency.Percentile(90))
		fmt.Printf("  cost:    %4.1f RPCs/lookup, %4.1f timeouts/lookup\n\n",
			rpcs.Mean(), timeouts.Mean())
	}
	fmt.Println("same protocol, same network — the deployment hygiene (NAT, timeout policy)")
	fmt.Println("is what made open DHTs unusable as a general-purpose substrate (paper §II).")
	return nil
}
