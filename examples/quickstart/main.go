// Quickstart: run the paper's headline experiments and print the
// regenerated tables with their shape verdicts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	decent "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// E06: the throughput gap (VISA vs Bitcoin vs Ethereum) and E13: the
	// permissioned alternative — the two poles of the paper's argument.
	for _, id := range []string{"E06", "E13"} {
		res, err := decent.Run(id, decent.Config{Seed: 1})
		if err != nil {
			return err
		}
		fmt.Println(res)
		if !res.Reproduced() {
			return fmt.Errorf("%s did not reproduce the paper's shape", id)
		}
	}
	fmt.Println("Both claims reproduced. Run `go run ./cmd/decentsim run all` for the full set.")
	return nil
}
