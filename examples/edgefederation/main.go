// Edgefederation demonstrates the paper's Figure 1: latency-sensitive
// services placed on a federation of edge nodes versus a centralized cloud,
// with a permissioned ledger as the federation's trust layer.
//
//	go run ./examples/edgefederation
package main

import (
	"fmt"
	"os"

	"repro/internal/edge"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "edgefederation:", err)
		os.Exit(1)
	}
}

func run() error {
	g := sim.NewRNG(7)
	deployment, err := edge.New(g, edge.Config{
		Clients:   5000,
		EdgeNodes: 80,
		CloudDCs:  3,
		AreaKM:    3000, // a continent
		ServiceMs: 2,
	})
	if err != nil {
		return err
	}
	const budgetMs = 20 // interactive control-loop budget
	cmp := deployment.Compare(budgetMs)

	fmt.Println("client RTT by placement (5000 clients, continental region):")
	fmt.Printf("  %-26s median %6.1f ms   p95 %6.1f ms   within %vms: %4.1f%%\n",
		"edge (80 nano-DCs):", cmp.EdgeMedianMs, cmp.EdgeP95Ms, budgetMs, cmp.WithinBudgetEdge*100)
	fmt.Printf("  %-26s median %6.1f ms   p95 %6.1f ms   within %vms: %4.1f%%\n",
		"cloud (3 regional DCs):", cmp.CloudMedianMs, cmp.CloudP95Ms, budgetMs, cmp.WithinBudgetCloud*100)
	fmt.Printf("  %-26s median %6.1f ms\n", "central (single DC):", cmp.CentralMedianMs)
	fmt.Printf("\nedge speedup over cloud: %.1fx at the median\n", cmp.MedianSpeedup)

	fmt.Println("\ndensity sweep — how many edge sites buy how much latency:")
	for _, sites := range []int{10, 40, 160, 640} {
		d, err := edge.New(g, edge.Config{
			Clients: 2000, EdgeNodes: sites, CloudDCs: 3, ServiceMs: 2,
		})
		if err != nil {
			return err
		}
		med := d.Latencies(edge.EdgePlacement).Median()
		fmt.Printf("  %4d sites: median RTT %6.1f ms (analytic nearest-site distance %5.0f km)\n",
			sites, med, edge.TheoreticalNearestDistance(3000, sites))
	}
	fmt.Println("\nthe trust layer for such a federation is the permissioned ledger —")
	fmt.Println("see examples/supplychain and experiment E14.")
	return nil
}
