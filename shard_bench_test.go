package decent

// BenchmarkShardedRun is the sharded-kernel scaling curve: the one
// experiment on the sharded executor (E03, eight logical shards) driven at
// full scale with 1, 2, 4, and 8 worker goroutines. The logical shard
// count is fixed — Config.Shards sets workers only — so every point of the
// curve produces byte-identical results and the curve isolates pure
// execution parallelism. CI exports it via cmd/benchjson as the
// BENCH_shard.json artifact; the committed copy records the reference
// numbers for the machine documented in DESIGN.md. On a single-CPU host
// the curve is flat (workers just take turns) — speedup claims only mean
// anything alongside the host's core count.

import (
	"fmt"
	"testing"
)

func BenchmarkShardedRun(b *testing.B) {
	reg, err := Experiments()
	if err != nil {
		b.Fatalf("registry: %v", err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := reg.Run("E03", Config{Seed: int64(i + 1), Scale: 1, Shards: workers})
				if err != nil {
					b.Fatalf("run E03 (shards=%d): %v", workers, err)
				}
				if !res.Reproduced() {
					b.Fatalf("E03 shape checks failed at shards=%d", workers)
				}
			}
		})
	}
}
