package decent

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func TestExperimentsRegistry(t *testing.T) {
	reg, err := Experiments()
	if err != nil {
		t.Fatalf("Experiments: %v", err)
	}
	if len(reg.All()) != 18 {
		t.Fatalf("registry size = %d, want 18", len(reg.All()))
	}
}

func TestRunByID(t *testing.T) {
	res, err := Run("E11", Config{Seed: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ID != "E11" {
		t.Fatalf("result id = %q", res.ID)
	}
	if !res.Reproduced() {
		t.Fatalf("E11 failed its shape checks:\n%s", res)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", Config{}); !errors.Is(err, core.ErrUnknownExperiment) {
		t.Fatalf("unknown id error = %v", err)
	}
}
