package decent

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestExperimentsRegistry(t *testing.T) {
	reg, err := Experiments()
	if err != nil {
		t.Fatalf("Experiments: %v", err)
	}
	if len(reg.All()) != 19 {
		t.Fatalf("registry size = %d, want 19", len(reg.All()))
	}
}

func TestRunByID(t *testing.T) {
	res, err := Run("E11", Config{Seed: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ID != "E11" {
		t.Fatalf("result id = %q", res.ID)
	}
	if !res.Reproduced() {
		t.Fatalf("E11 failed its shape checks:\n%s", res)
	}
}

func TestUnknownKnobRejectedAtLibraryLevel(t *testing.T) {
	_, err := Run("E11", Config{Seed: 1, Params: map[string]float64{"bogus.knob": 1}})
	if err == nil || !strings.Contains(err.Error(), "unknown knob") {
		t.Fatalf("err = %v", err)
	}
}

func TestForeignKnobRejectedAtLibraryLevel(t *testing.T) {
	// A knob owned by an experiment that is not running must error, not
	// silently label duplicate groups.
	_, err := Run("E11", Config{Seed: 1, Params: map[string]float64{"e03.lookups": 100}})
	if err == nil || !strings.Contains(err.Error(), "does not apply") {
		t.Fatalf("err = %v", err)
	}
	_, err = RunSweep(Sweep{
		Experiments: []string{"E11"},
		Params:      map[string][]float64{"e03.lookups": {100, 200}},
	}, 1)
	if err == nil || !strings.Contains(err.Error(), "not among the selected") {
		t.Fatalf("RunSweep err = %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", Config{}); !errors.Is(err, core.ErrUnknownExperiment) {
		t.Fatalf("unknown id error = %v", err)
	}
}

func TestTransportReExports(t *testing.T) {
	s := NewSim(7)
	nm := NewTransport(s, WithJitter(0), WithLoss(0))
	mix, err := MixPreset(1)
	if err != nil {
		t.Fatalf("MixPreset: %v", err)
	}
	ids, err := nm.BuildTopology(TransportTopology{
		Nodes: 6,
		Mix:   mix,
		Classes: []BandwidthClass{
			{Name: "fiber", UplinkBps: 100e6, DownlinkBps: 100e6, Weight: 1},
		},
	})
	if err != nil {
		t.Fatalf("BuildTopology: %v", err)
	}
	delivered := 0
	nm.Broadcast(ids[0], 1000, func(TransportNode) { delivered++ })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 5 {
		t.Fatalf("delivered = %d, want 5", delivered)
	}
	if TransportRetryDelay <= 0 || TransportPacing <= 0 || NumMixPresets < 1 {
		t.Fatal("transport defaults not exported")
	}
}

func TestGenerateReportPublicAPI(t *testing.T) {
	tree, err := GenerateReport(ReportOptions{
		IDs:   []string{"E11"},
		Seeds: []int64{1, 2},
		Scale: 0.25,
	})
	if err != nil {
		t.Fatalf("GenerateReport: %v", err)
	}
	if tree.Lookup("REPORT.md") == nil || tree.Lookup("manifest.json") == nil {
		t.Fatal("report tree lacks REPORT.md or manifest.json")
	}
	if tree.Groups != 1 {
		t.Fatalf("Groups = %d, want 1", tree.Groups)
	}
	reg, err := Experiments()
	if err != nil {
		t.Fatalf("Experiments: %v", err)
	}
	e, err := reg.Get("E11")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got := SectionOf(e); got != "§III-B" {
		t.Fatalf("SectionOf(E11) = %q, want §III-B", got)
	}
}
