package randdist

import (
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/sim"
)

func rng() *sim.RNG { return sim.NewRNG(42) }

func TestExponentialMean(t *testing.T) {
	g := rng()
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Exponential(g, 3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.1 {
		t.Fatalf("mean = %v, want ~3", mean)
	}
}

func TestExponentialBadMean(t *testing.T) {
	if Exponential(rng(), 0) != 0 || Exponential(rng(), -1) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
}

func TestParetoProperties(t *testing.T) {
	g := rng()
	const n = 50000
	var sum float64
	minSeen := math.Inf(1)
	for i := 0; i < n; i++ {
		x := Pareto(g, 2.0, 3.0)
		if x < 2.0 {
			t.Fatalf("Pareto sample %v below scale 2.0", x)
		}
		if x < minSeen {
			minSeen = x
		}
		sum += x
	}
	// E[X] = alpha*xm/(alpha-1) = 3 for xm=2, alpha=3.
	mean := sum / n
	if math.Abs(mean-3.0) > 0.15 {
		t.Fatalf("Pareto mean = %v, want ~3", mean)
	}
	if minSeen > 2.2 {
		t.Fatalf("Pareto min = %v, expected values near scale", minSeen)
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// A heavy-tail (alpha=1.1) distribution should produce a max far above
	// its median over many draws.
	g := rng()
	var max, count5x float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := Pareto(g, 1, 1.1)
		if x > max {
			max = x
		}
		if x > 5 {
			count5x++
		}
	}
	if max < 100 {
		t.Fatalf("heavy tail max = %v, expected extreme values", max)
	}
	// P(X>5) = 5^-1.1 ~ 0.17
	frac := count5x / n
	if frac < 0.12 || frac > 0.22 {
		t.Fatalf("P(X>5) = %v, want ~0.17", frac)
	}
}

func TestWeibullMean(t *testing.T) {
	g := rng()
	// k=1 reduces to exponential with mean = scale.
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Weibull(g, 1.0, 2.0)
	}
	if mean := sum / n; math.Abs(mean-2.0) > 0.1 {
		t.Fatalf("Weibull(1,2) mean = %v, want ~2", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	g := rng()
	const n = 50001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = LogNormal(g, 1.0, 0.5)
	}
	// Median of lognormal is e^mu.
	sort.Float64s(xs)
	med := xs[len(xs)/2]
	if math.Abs(med-math.E) > 0.15 {
		t.Fatalf("median = %v, want ~e", med)
	}
}

func TestZipfSkew(t *testing.T) {
	g := rng()
	z := NewZipf(g, 1.2, 1000)
	if z == nil {
		t.Fatal("NewZipf returned nil for valid params")
	}
	counts := make(map[int]int)
	const n = 100000
	for i := 0; i < n; i++ {
		r := z.Rank()
		if r < 1 || r > 1000 {
			t.Fatalf("rank %d out of [1,1000]", r)
		}
		counts[r]++
	}
	if counts[1] <= counts[10] {
		t.Fatalf("rank 1 (%d) should dominate rank 10 (%d)", counts[1], counts[10])
	}
	top10 := 0
	for r := 1; r <= 10; r++ {
		top10 += counts[r]
	}
	if frac := float64(top10) / n; frac < 0.5 {
		t.Fatalf("top-10 share = %v, want majority for s=1.2", frac)
	}
}

func TestZipfInvalid(t *testing.T) {
	if NewZipf(rng(), 0.5, 100) != nil {
		t.Fatal("s<=1 must return nil")
	}
	if NewZipf(rng(), 2, 0) != nil {
		t.Fatal("n<=0 must return nil")
	}
	var z *Zipf
	if z.Rank() != 1 {
		t.Fatal("nil Zipf Rank should degrade to 1")
	}
}

func TestDiscrete(t *testing.T) {
	g := rng()
	weights := []float64{0, 1, 3, 0, 6}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[Discrete(g, weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight indices selected: %v", counts)
	}
	f1 := float64(counts[1]) / n
	f4 := float64(counts[4]) / n
	if math.Abs(f1-0.1) > 0.01 || math.Abs(f4-0.6) > 0.01 {
		t.Fatalf("weights not respected: %v", counts)
	}
}

func TestDiscreteDegenerate(t *testing.T) {
	g := rng()
	if Discrete(g, nil) != 0 {
		t.Fatal("empty weights should return 0")
	}
	if Discrete(g, []float64{0, 0}) != 0 {
		t.Fatal("all-zero weights should return 0")
	}
}

func TestParetoDurationCap(t *testing.T) {
	g := rng()
	for i := 0; i < 1000; i++ {
		d := ParetoDuration(g, time.Second, 1.1, time.Minute)
		if d < time.Second || d > time.Minute {
			t.Fatalf("capped Pareto duration %v outside [1s,1m]", d)
		}
	}
}
