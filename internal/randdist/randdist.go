// Package randdist provides the random distributions used across the
// simulations: heavy-tailed session times (Pareto, Weibull, lognormal),
// Poisson arrivals (exponential), and Zipf popularity. All samplers draw
// from a sim.RNG stream so experiments stay deterministic.
package randdist

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Exponential returns a sample with the given mean (rate 1/mean).
func Exponential(g *sim.RNG, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.ExpFloat64() * mean
}

// Pareto returns a sample from a Pareto distribution with scale xm (minimum
// value) and shape alpha. Heavy-tailed session lengths in P2P measurement
// studies are commonly modelled with alpha in (1, 2).
func Pareto(g *sim.RNG, xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		return 0
	}
	u := g.Float64()
	for u == 0 {
		u = g.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Weibull returns a sample with the given shape k and scale lambda. Shape <1
// produces the "many short sessions, few very long" profile observed in DHT
// churn traces.
func Weibull(g *sim.RNG, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	u := g.Float64()
	for u == 0 {
		u = g.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// LogNormal returns a sample whose logarithm is normal with mean mu and
// standard deviation sigma.
func LogNormal(g *sim.RNG, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.NormFloat64())
}

// ExpDuration returns an exponentially distributed duration with the given
// mean.
func ExpDuration(g *sim.RNG, mean time.Duration) time.Duration {
	return g.ExpDuration(mean)
}

// ParetoDuration returns a Pareto-distributed duration with minimum xm and
// shape alpha, capped at max (0 = no cap) to keep simulations bounded.
func ParetoDuration(g *sim.RNG, xm time.Duration, alpha float64, max time.Duration) time.Duration {
	d := time.Duration(Pareto(g, float64(xm), alpha))
	if max > 0 && d > max {
		return max
	}
	return d
}

// Zipf generates ranks in [1, n] with probability proportional to
// 1/rank^s — the canonical model for content popularity in file-sharing
// overlays.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf constructs a Zipf sampler over n ranks with exponent s (> 1 per
// math/rand's requirement; values near 1 approximate measured catalogues).
// It returns nil if the parameters are out of range.
func NewZipf(g *sim.RNG, s float64, n int) *Zipf {
	if n <= 0 || s <= 1 {
		return nil
	}
	z := rand.NewZipf(g.Rand(), s, 1, uint64(n-1))
	if z == nil {
		return nil
	}
	return &Zipf{z: z}
}

// Rank returns a 1-based rank; 1 is the most popular item.
func (z *Zipf) Rank() int {
	if z == nil {
		return 1
	}
	return int(z.z.Uint64()) + 1
}

// Discrete samples an index in [0, len(weights)) proportionally to the
// weights. Non-positive weights are treated as zero; if all weights are
// zero it returns 0.
func Discrete(g *sim.RNG, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	target := g.Float64() * total
	var cum float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		cum += w
		if target < cum {
			return i
		}
	}
	return len(weights) - 1
}
