// Package permissioned implements a Hyperledger-Fabric-style permissioned
// blockchain: a membership service with real signature verification
// (ed25519), chaincode executed under an execute-order-validate pipeline,
// k-of-n endorsement policies, channels whose transactions are processed
// only by their member organizations, a Raft-backed ordering service, and
// MVCC read/write-set validation at commit.
//
// It is the paper's §IV/§V counter-proposal made concrete: authenticated
// members, no proof-of-work, consensus confined to the parties that care
// about a transaction (E13, E14, E16).
package permissioned

import (
	"crypto/ed25519"
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Identity is an organization's signing identity, issued by the membership
// service provider (MSP).
type Identity struct {
	// Org is the owning organization's name.
	Org string
	// Public is the verification key distributed via the MSP.
	Public ed25519.PublicKey

	private ed25519.PrivateKey
}

// rngReader adapts a sim.RNG to io.Reader for deterministic key generation.
type rngReader struct {
	g *sim.RNG
}

func (r rngReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.g.Intn(256))
	}
	return len(p), nil
}

// NewIdentity mints a deterministic identity for the organization from the
// given random stream.
func NewIdentity(g *sim.RNG, org string) (*Identity, error) {
	if org == "" {
		return nil, errors.New("permissioned: empty org name")
	}
	pub, priv, err := ed25519.GenerateKey(rngReader{g: g})
	if err != nil {
		return nil, fmt.Errorf("generate key for %q: %w", org, err)
	}
	return &Identity{Org: org, Public: pub, private: priv}, nil
}

// Sign produces a signature over msg.
func (id *Identity) Sign(msg []byte) []byte {
	return ed25519.Sign(id.private, msg)
}

// Verify checks a signature against the identity's public key.
func (id *Identity) Verify(msg, sig []byte) bool {
	return ed25519.Verify(id.Public, msg, sig)
}

// MSP is the membership service: the registry of organization identities
// that replaces permissionless self-assigned identifiers — the structural
// fix for the sybil problem.
type MSP struct {
	idents map[string]*Identity
}

// NewMSP creates an empty registry.
func NewMSP() *MSP {
	return &MSP{idents: make(map[string]*Identity)}
}

// Enroll registers an organization and returns its identity.
func (m *MSP) Enroll(g *sim.RNG, org string) (*Identity, error) {
	if _, dup := m.idents[org]; dup {
		return nil, fmt.Errorf("permissioned: org %q already enrolled", org)
	}
	id, err := NewIdentity(g, org)
	if err != nil {
		return nil, err
	}
	m.idents[org] = id
	return id, nil
}

// Lookup returns an enrolled identity.
func (m *MSP) Lookup(org string) (*Identity, bool) {
	id, ok := m.idents[org]
	return id, ok
}

// Orgs returns the enrolled organization names.
func (m *MSP) Orgs() []string {
	out := make([]string, 0, len(m.idents))
	for org := range m.idents {
		out = append(out, org)
	}
	return out
}
