package permissioned

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/ledger"
	"repro/internal/netmodel"
	"repro/internal/raft"
	"repro/internal/sim"
)

// Policy is a k-of-n endorsement policy over a channel's organizations.
type Policy struct {
	// Required is how many distinct member organizations must endorse.
	Required int
}

// Endorsement is one organization's signature over a read/write-set digest.
type Endorsement struct {
	Org string
	Sig []byte
}

// Envelope is an endorsed transaction on its way through ordering.
type Envelope struct {
	ID           int
	Channel      string
	Creator      string
	RWSet        *RWSet
	Endorsements []Endorsement
	SubmittedAt  time.Duration
}

// Size returns the modelled wire size of the envelope.
func (e *Envelope) Size() int {
	size := 128
	for _, r := range e.RWSet.Reads {
		size += len(r.Key) + 12
	}
	for _, w := range e.RWSet.Writes {
		size += len(w.Key) + len(w.Value) + 4
	}
	size += len(e.Endorsements) * 80
	return size
}

// TxResult reports a transaction's fate to its submitter.
type TxResult struct {
	// Valid is true if the transaction committed; false if it was
	// invalidated (MVCC conflict or policy failure).
	Valid bool
	// Latency is submit-to-commit time at the creator's peer.
	Latency time.Duration
	// Block is the height of the committing block.
	Block uint64
}

// Config parameterizes the network.
type Config struct {
	// BlockSize is the max envelopes per block.
	BlockSize int
	// BlockTimeout cuts a non-empty partial block.
	BlockTimeout time.Duration
	// OrdererNodes is the Raft ordering cluster size (odd, default 3).
	OrdererNodes int
	// OrdererRegion hosts the ordering service.
	OrdererRegion netmodel.Region
	// RetryDelay is the backoff before resubmitting an envelope when the
	// ordering service has no leader or a full queue (default: the shared
	// transport retry delay, netmodel.DefaultRetryDelay).
	RetryDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 50
	}
	if c.BlockTimeout <= 0 {
		c.BlockTimeout = 200 * time.Millisecond
	}
	if c.OrdererNodes <= 0 {
		c.OrdererNodes = 3
	}
	if c.OrdererRegion == 0 {
		c.OrdererRegion = netmodel.Europe
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = netmodel.DefaultRetryDelay
	}
	return c
}

// Org is one member organization with a peer node.
type Org struct {
	Name     string
	Identity *Identity
	Peer     netmodel.NodeID
	Region   netmodel.Region
}

// Channel is an isolated ledger shared by a subset of organizations — the
// Fabric mechanism that confines consensus to interested parties.
type Channel struct {
	name   string
	orgs   []string
	policy Policy
	state  *State
	chain  *ledger.Chain
	ccs    map[string]Chaincode

	batch []*Envelope

	committedTx int
	invalidTx   int
	peerWork    map[string]int64
}

// Name returns the channel name.
func (ch *Channel) Name() string { return ch.name }

// Height returns the chain height.
func (ch *Channel) Height() uint64 { return ch.chain.BestHeight() }

// Committed and Invalid return transaction counts by validation outcome.
func (ch *Channel) Committed() int { return ch.committedTx }

// Invalid returns the number of transactions invalidated at validation.
func (ch *Channel) Invalid() int { return ch.invalidTx }

// PeerWork returns envelopes validated per member organization.
func (ch *Channel) PeerWork() map[string]int64 {
	out := make(map[string]int64, len(ch.peerWork))
	for k, v := range ch.peerWork {
		out[k] = v
	}
	return out
}

// State exposes the channel's world state (for queries in examples/tests).
func (ch *Channel) State() *State { return ch.state }

// Members returns the channel's member organizations.
func (ch *Channel) Members() []string {
	out := make([]string, len(ch.orgs))
	copy(out, ch.orgs)
	return out
}

// Network is a permissioned blockchain deployment.
type Network struct {
	sim *sim.Sim
	net *netmodel.Net
	cfg Config
	msp *MSP
	rng *sim.RNG

	orgs     map[string]*Org
	channels map[string]*Channel

	orderer    *raft.Cluster
	pending    map[int]*pendingTx
	nextEnvID  int
	cutTickers []*sim.Ticker
	started    bool
}

type pendingTx struct {
	env  *Envelope
	done func(TxResult)
}

// NewNetwork creates a network with a Raft ordering service.
func NewNetwork(s *sim.Sim, nm *netmodel.Net, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	ord, err := raft.NewCluster(s, nm, cfg.OrdererNodes, cfg.OrdererRegion, raft.Config{})
	if err != nil {
		return nil, fmt.Errorf("ordering service: %w", err)
	}
	nw := &Network{
		sim:      s,
		net:      nm,
		cfg:      cfg,
		msp:      NewMSP(),
		rng:      s.Stream("permissioned"),
		orgs:     make(map[string]*Org),
		channels: make(map[string]*Channel),
		orderer:  ord,
		pending:  make(map[int]*pendingTx),
	}
	ord.OnApply(func(node, index int, req raft.Request) {
		// Only the leader's application drives block cutting.
		if leader := ord.Leader(); leader == nil || leader.ID() != node {
			return
		}
		nw.onOrdered(req.ID)
	})
	return nw, nil
}

// AddOrg enrolls an organization with a peer in the given region.
func (nw *Network) AddOrg(name string, region netmodel.Region) (*Org, error) {
	if _, dup := nw.orgs[name]; dup {
		return nil, fmt.Errorf("permissioned: org %q already exists", name)
	}
	id, err := nw.msp.Enroll(nw.rng, name)
	if err != nil {
		return nil, err
	}
	org := &Org{
		Name:     name,
		Identity: id,
		Peer:     nw.net.AddNode(region, 0),
		Region:   region,
	}
	nw.orgs[name] = org
	return org, nil
}

// CreateChannel creates a channel among member orgs with the given policy.
func (nw *Network) CreateChannel(name string, members []string, policy Policy) (*Channel, error) {
	if _, dup := nw.channels[name]; dup {
		return nil, fmt.Errorf("permissioned: channel %q already exists", name)
	}
	if len(members) < 1 {
		return nil, errors.New("permissioned: channel needs members")
	}
	for _, m := range members {
		if _, ok := nw.orgs[m]; !ok {
			return nil, fmt.Errorf("permissioned: unknown org %q", m)
		}
	}
	if policy.Required <= 0 || policy.Required > len(members) {
		return nil, fmt.Errorf("permissioned: policy requires %d of %d members", policy.Required, len(members))
	}
	genesis := ledger.NewBlock(ledger.Hash{}, nil, nw.sim.Now(), 1)
	ch := &Channel{
		name:     name,
		orgs:     append([]string(nil), members...),
		policy:   policy,
		state:    NewState(),
		chain:    ledger.NewChain(genesis),
		ccs:      make(map[string]Chaincode),
		peerWork: make(map[string]int64),
	}
	nw.channels[name] = ch
	return ch, nil
}

// InstallChaincode registers chaincode on a channel.
func (nw *Network) InstallChaincode(channel, name string, cc Chaincode) error {
	ch, ok := nw.channels[channel]
	if !ok {
		return fmt.Errorf("permissioned: unknown channel %q", channel)
	}
	if cc == nil {
		return errors.New("permissioned: nil chaincode")
	}
	ch.ccs[name] = cc
	return nil
}

// Channel returns a channel by name.
func (nw *Network) Channel(name string) (*Channel, bool) {
	ch, ok := nw.channels[name]
	return ch, ok
}

// Start launches the ordering service and block cutters. Run the simulator
// afterwards; the first leader election takes a few election timeouts.
func (nw *Network) Start() error {
	if nw.started {
		return errors.New("permissioned: already started")
	}
	nw.started = true
	nw.orderer.Start()
	// Iterate channels in sorted-name order: each Every call assigns kernel
	// sequence numbers, and same-instant block cuts tie-break by sequence,
	// so map order here would leak into the event schedule.
	names := make([]string, 0, len(nw.channels))
	for name := range nw.channels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ch := nw.channels[name]
		t, err := nw.sim.Every(nw.cfg.BlockTimeout, func() { nw.cutBlock(ch) })
		if err != nil {
			return err
		}
		nw.cutTickers = append(nw.cutTickers, t)
	}
	return nil
}

// Stop halts block cutting.
func (nw *Network) Stop() {
	for _, t := range nw.cutTickers {
		t.Stop()
	}
	nw.cutTickers = nil
}

// Submit runs the execute-order-validate pipeline for one transaction,
// invoking done exactly once with the outcome. Errors are returned for
// malformed submissions; runtime invalidation is reported via TxResult.
func (nw *Network) Submit(channel, creator, chaincode string, args []string, done func(TxResult)) error {
	ch, ok := nw.channels[channel]
	if !ok {
		return fmt.Errorf("permissioned: unknown channel %q", channel)
	}
	corg, ok := nw.orgs[creator]
	if !ok {
		return fmt.Errorf("permissioned: unknown org %q", creator)
	}
	if !contains(ch.orgs, creator) {
		return fmt.Errorf("permissioned: org %q is not a member of %q", creator, channel)
	}
	cc, ok := ch.ccs[chaincode]
	if !ok {
		return fmt.Errorf("permissioned: chaincode %q not installed on %q", chaincode, channel)
	}
	// Phase 1 — execute: endorsers simulate the chaincode against their
	// current state and sign the resulting read/write set. All honest
	// endorsers produce the same set, so it is computed once.
	rw, err := Execute(ch.state, cc, args)
	if err != nil {
		return err
	}
	env := &Envelope{
		ID:          nw.nextEnvID,
		Channel:     channel,
		Creator:     creator,
		RWSet:       rw,
		SubmittedAt: nw.sim.Now(),
	}
	nw.nextEnvID++
	digest := rw.Digest()

	endorsers := make([]*Org, 0, ch.policy.Required)
	endorsers = append(endorsers, corg)
	for _, name := range ch.orgs {
		if len(endorsers) >= ch.policy.Required {
			break
		}
		if name != creator {
			endorsers = append(endorsers, nw.orgs[name])
		}
	}
	remaining := len(endorsers)
	propSize := env.Size()
	for _, e := range endorsers {
		e := e
		// Proposal to the endorser and signed response back.
		nw.net.Send(corg.Peer, e.Peer, propSize, func() {
			sig := e.Identity.Sign(digest)
			nw.net.Send(e.Peer, corg.Peer, 80, func() {
				if !e.Identity.Verify(digest, sig) {
					return // never happens for honest endorsers
				}
				env.Endorsements = append(env.Endorsements, Endorsement{Org: e.Name, Sig: sig})
				remaining--
				if remaining == 0 {
					nw.sendToOrderer(corg, env, done)
				}
			})
		})
	}
	return nil
}

// sendToOrderer ships the endorsed envelope to the ordering service.
func (nw *Network) sendToOrderer(corg *Org, env *Envelope, done func(TxResult)) {
	leader := nw.orderer.Leader()
	if leader == nil {
		// No leader yet (election in progress): retry shortly.
		nw.sim.After(nw.cfg.RetryDelay, func() { nw.sendToOrderer(corg, env, done) })
		return
	}
	nw.pending[env.ID] = &pendingTx{env: env, done: done}
	// Model the client->orderer hop, then consensus inside the cluster.
	nw.net.Send(corg.Peer, nw.ordererAddr(), env.Size(), func() {
		if !nw.orderer.Submit(raft.Request{ID: env.ID, SubmittedAt: env.SubmittedAt}) {
			nw.sim.After(nw.cfg.RetryDelay, func() { nw.resubmit(env.ID) })
		}
	})
}

func (nw *Network) resubmit(envID int) {
	if !nw.orderer.Submit(raft.Request{ID: envID, SubmittedAt: nw.sim.Now()}) {
		nw.sim.After(nw.cfg.RetryDelay, func() { nw.resubmit(envID) })
	}
}

// ordererAddr returns a representative network address of the ordering
// service (the leader's, falling back to node 0).
func (nw *Network) ordererAddr() netmodel.NodeID {
	if l := nw.orderer.Leader(); l != nil {
		return nw.orderer.Nodes()[l.ID()].Addr()
	}
	return nw.orderer.Nodes()[0].Addr()
}

// onOrdered queues an ordered envelope for its channel's next block.
func (nw *Network) onOrdered(envID int) {
	p, ok := nw.pending[envID]
	if !ok {
		return
	}
	ch := nw.channels[p.env.Channel]
	ch.batch = append(ch.batch, p.env)
	if len(ch.batch) >= nw.cfg.BlockSize {
		nw.cutBlock(ch)
	}
}

// cutBlock validates the batch sequentially (Fabric's commit-time MVCC
// check), appends the block to the channel chain, and delivers it to every
// member peer.
func (nw *Network) cutBlock(ch *Channel) {
	if len(ch.batch) == 0 {
		return
	}
	batch := ch.batch
	ch.batch = nil

	txs := make([]*ledger.Tx, 0, len(batch))
	type outcome struct {
		env   *Envelope
		valid bool
	}
	outcomes := make([]outcome, 0, len(batch))
	blockBytes := 0
	for _, env := range batch {
		valid := nw.validate(ch, env)
		if valid {
			ch.state.apply(env.RWSet.Writes)
			ch.committedTx++
		} else {
			ch.invalidTx++
		}
		outcomes = append(outcomes, outcome{env: env, valid: valid})
		txs = append(txs, &ledger.Tx{Payload: env.RWSet.Digest()})
		blockBytes += env.Size()
	}
	block := ledger.NewBlock(ch.chain.BestHash(), txs, nw.sim.Now(), 1)
	if _, _, err := ch.chain.AddBlock(block); err != nil {
		return
	}
	height := ch.chain.BestHeight()

	// Deliver to member peers; the creator's peer delivery resolves the
	// submitter's callback.
	for _, orgName := range ch.orgs {
		org := nw.orgs[orgName]
		orgName := orgName
		nw.net.Send(nw.ordererAddr(), org.Peer, blockBytes+128, func() {
			ch.peerWork[orgName] += int64(len(batch))
			for _, oc := range outcomes {
				if oc.env.Creator != orgName {
					continue
				}
				p, ok := nw.pending[oc.env.ID]
				if !ok {
					continue
				}
				delete(nw.pending, oc.env.ID)
				if p.done != nil {
					p.done(TxResult{
						Valid:   oc.valid,
						Latency: nw.sim.Now() - oc.env.SubmittedAt,
						Block:   height,
					})
				}
			}
		})
	}
}

// validate applies Fabric's commit-time checks: the endorsement policy and
// the MVCC read-set check.
func (nw *Network) validate(ch *Channel, env *Envelope) bool {
	if len(env.Endorsements) < ch.policy.Required {
		return false
	}
	digest := env.RWSet.Digest()
	seen := make(map[string]bool, len(env.Endorsements))
	for _, e := range env.Endorsements {
		id, ok := nw.msp.Lookup(e.Org)
		if !ok || !contains(ch.orgs, e.Org) || seen[e.Org] {
			return false
		}
		if !id.Verify(digest, e.Sig) {
			return false
		}
		seen[e.Org] = true
	}
	return !ch.state.conflict(env.RWSet)
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
