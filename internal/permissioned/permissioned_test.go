package permissioned

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// counterCC increments a named counter — the canonical MVCC-sensitive
// chaincode.
func counterCC(stub *Stub, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("want 1 arg, got %d", len(args))
	}
	raw, err := stub.GetState(args[0])
	if err != nil {
		return err
	}
	n := 0
	if len(raw) > 0 {
		n, err = strconv.Atoi(string(raw))
		if err != nil {
			return err
		}
	}
	return stub.PutState(args[0], []byte(strconv.Itoa(n+1)))
}

// putCC writes key=value unconditionally (no reads, so never conflicts).
func putCC(stub *Stub, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("want 2 args, got %d", len(args))
	}
	return stub.PutState(args[0], []byte(args[1]))
}

func newNet(t *testing.T, seed int64, orgs int, cfg Config) (*sim.Sim, *Network) {
	t.Helper()
	s := sim.New(sim.WithSeed(seed))
	nm := netmodel.New(s, netmodel.WithJitter(0.1))
	nw, err := NewNetwork(s, nm, cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	for i := 0; i < orgs; i++ {
		if _, err := nw.AddOrg(fmt.Sprintf("org%d", i), netmodel.Europe); err != nil {
			t.Fatalf("AddOrg: %v", err)
		}
	}
	return s, nw
}

func orgNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("org%d", i)
	}
	return out
}

func TestIdentitySignVerify(t *testing.T) {
	g := sim.NewRNG(1)
	id, err := NewIdentity(g, "acme")
	if err != nil {
		t.Fatalf("NewIdentity: %v", err)
	}
	msg := []byte("hello")
	sig := id.Sign(msg)
	if !id.Verify(msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if id.Verify([]byte("tampered"), sig) {
		t.Fatal("signature verified over wrong message")
	}
	other, err := NewIdentity(g, "evil")
	if err != nil {
		t.Fatal(err)
	}
	if other.Verify(msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestMSPEnrollment(t *testing.T) {
	g := sim.NewRNG(2)
	msp := NewMSP()
	if _, err := msp.Enroll(g, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := msp.Enroll(g, "a"); err == nil {
		t.Fatal("duplicate enrollment should error")
	}
	if _, ok := msp.Lookup("a"); !ok {
		t.Fatal("enrolled org missing")
	}
	if _, ok := msp.Lookup("b"); ok {
		t.Fatal("phantom org found")
	}
}

func TestChaincodeExecutionRWSet(t *testing.T) {
	state := NewState()
	rw, err := Execute(state, counterCC, []string{"k"})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(rw.Reads) != 1 || rw.Reads[0].Version != 0 {
		t.Fatalf("reads = %+v, want one read at version 0", rw.Reads)
	}
	if len(rw.Writes) != 1 || string(rw.Writes[0].Value) != "1" {
		t.Fatalf("writes = %+v, want k=1", rw.Writes)
	}
	// Digest changes with content.
	rw2, err := Execute(state, putCC, []string{"k", "other"})
	if err != nil {
		t.Fatal(err)
	}
	if string(rw.Digest()) == string(rw2.Digest()) {
		t.Fatal("distinct rw-sets share a digest")
	}
}

func TestMVCCConflictDetection(t *testing.T) {
	state := NewState()
	rw1, err := Execute(state, counterCC, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	rw2, err := Execute(state, counterCC, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if state.conflict(rw1) {
		t.Fatal("first tx should not conflict")
	}
	state.apply(rw1.Writes)
	if !state.conflict(rw2) {
		t.Fatal("second tx read a stale version and must conflict")
	}
}

func TestEndToEndCommit(t *testing.T) {
	s, nw := newNet(t, 3, 4, Config{BlockSize: 1})
	if _, err := nw.CreateChannel("trade", orgNames(4), Policy{Required: 2}); err != nil {
		t.Fatalf("CreateChannel: %v", err)
	}
	if err := nw.InstallChaincode("trade", "put", putCC); err != nil {
		t.Fatalf("InstallChaincode: %v", err)
	}
	if err := nw.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	var res *TxResult
	// Let the orderer elect a leader first.
	s.After(3*time.Second, func() {
		err := nw.Submit("trade", "org0", "put", []string{"asset1", "alice"}, func(r TxResult) { res = &r })
		if err != nil {
			t.Errorf("Submit: %v", err)
		}
	})
	if err := s.RunUntil(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil {
		t.Fatal("transaction never resolved")
	}
	if !res.Valid {
		t.Fatal("transaction invalidated")
	}
	if res.Latency <= 0 || res.Latency > 5*time.Second {
		t.Fatalf("latency = %v, want sub-5s", res.Latency)
	}
	ch, _ := nw.Channel("trade")
	if ch.Committed() != 1 || ch.Height() != 1 {
		t.Fatalf("committed=%d height=%d, want 1/1", ch.Committed(), ch.Height())
	}
	val, ver := ch.State().Get("asset1")
	if string(val) != "alice" || ver != 1 {
		t.Fatalf("state = %q v%d, want alice v1", val, ver)
	}
}

func TestMVCCInvalidationEndToEnd(t *testing.T) {
	s, nw := newNet(t, 4, 3, Config{BlockSize: 10, BlockTimeout: time.Second})
	if _, err := nw.CreateChannel("c", orgNames(3), Policy{Required: 2}); err != nil {
		t.Fatal(err)
	}
	if err := nw.InstallChaincode("c", "counter", counterCC); err != nil {
		t.Fatal(err)
	}
	if err := nw.Start(); err != nil {
		t.Fatal(err)
	}
	valid, invalid := 0, 0
	s.After(3*time.Second, func() {
		// Two racing increments endorsed against the same version: the
		// second to commit must be invalidated.
		for i := 0; i < 2; i++ {
			err := nw.Submit("c", "org0", "counter", []string{"x"}, func(r TxResult) {
				if r.Valid {
					valid++
				} else {
					invalid++
				}
			})
			if err != nil {
				t.Errorf("Submit: %v", err)
			}
		}
	})
	if err := s.RunUntil(30 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if valid != 1 || invalid != 1 {
		t.Fatalf("valid=%d invalid=%d, want exactly one of each", valid, invalid)
	}
	ch, _ := nw.Channel("c")
	if v, _ := ch.State().Get("x"); string(v) != "1" {
		t.Fatalf("counter = %q, want 1 (lost update prevented)", v)
	}
}

func TestChannelIsolationOfWork(t *testing.T) {
	s, nw := newNet(t, 5, 6, Config{BlockSize: 1})
	// Channel A: orgs 0-2; channel B: orgs 3-5.
	if _, err := nw.CreateChannel("a", []string{"org0", "org1", "org2"}, Policy{Required: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.CreateChannel("b", []string{"org3", "org4", "org5"}, Policy{Required: 2}); err != nil {
		t.Fatal(err)
	}
	if err := nw.InstallChaincode("a", "put", putCC); err != nil {
		t.Fatal(err)
	}
	if err := nw.InstallChaincode("b", "put", putCC); err != nil {
		t.Fatal(err)
	}
	if err := nw.Start(); err != nil {
		t.Fatal(err)
	}
	resolved := 0
	s.After(3*time.Second, func() {
		for i := 0; i < 10; i++ {
			key := fmt.Sprintf("k%d", i)
			if err := nw.Submit("a", "org0", "put", []string{key, "v"}, func(TxResult) { resolved++ }); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}
	})
	if err := s.RunUntil(30 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resolved != 10 {
		t.Fatalf("resolved = %d, want 10", resolved)
	}
	chA, _ := nw.Channel("a")
	chB, _ := nw.Channel("b")
	workA := chA.PeerWork()
	if workA["org0"] == 0 || workA["org2"] == 0 {
		t.Fatal("channel members did no validation work")
	}
	for org, w := range chB.PeerWork() {
		if w != 0 {
			t.Fatalf("org %s in channel b did %d work for channel a's traffic", org, w)
		}
	}
	if chB.Height() != 0 {
		t.Fatal("channel b chain advanced without transactions")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, nw := newNet(t, 6, 3, Config{})
	if _, err := nw.CreateChannel("c", orgNames(2), Policy{Required: 1}); err != nil {
		t.Fatal(err)
	}
	if err := nw.InstallChaincode("c", "put", putCC); err != nil {
		t.Fatal(err)
	}
	if err := nw.Submit("nope", "org0", "put", nil, nil); err == nil {
		t.Fatal("unknown channel should error")
	}
	if err := nw.Submit("c", "nobody", "put", nil, nil); err == nil {
		t.Fatal("unknown org should error")
	}
	if err := nw.Submit("c", "org2", "put", nil, nil); err == nil {
		t.Fatal("non-member org should error")
	}
	if err := nw.Submit("c", "org0", "missing", nil, nil); err == nil {
		t.Fatal("missing chaincode should error")
	}
	if err := nw.Submit("c", "org0", "put", []string{"only-one"}, nil); err == nil {
		t.Fatal("chaincode arg error should propagate")
	}
}

func TestChannelValidation(t *testing.T) {
	_, nw := newNet(t, 7, 3, Config{})
	if _, err := nw.CreateChannel("c", []string{"ghost"}, Policy{Required: 1}); err == nil {
		t.Fatal("unknown member should error")
	}
	if _, err := nw.CreateChannel("c", orgNames(2), Policy{Required: 5}); err == nil {
		t.Fatal("unsatisfiable policy should error")
	}
	if _, err := nw.CreateChannel("c", orgNames(2), Policy{Required: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.CreateChannel("c", orgNames(2), Policy{Required: 1}); err == nil {
		t.Fatal("duplicate channel should error")
	}
	if err := nw.InstallChaincode("nope", "x", putCC); err == nil {
		t.Fatal("unknown channel should error")
	}
	if err := nw.InstallChaincode("c", "x", nil); err == nil {
		t.Fatal("nil chaincode should error")
	}
}

func TestStateZeroValueSemantics(t *testing.T) {
	st := NewState()
	v, ver := st.Get("missing")
	if v != nil || ver != 0 {
		t.Fatal("missing keys must read as nil/v0")
	}
	st.apply([]Write{{Key: "a", Value: []byte("1")}})
	st.apply([]Write{{Key: "a", Value: []byte("2")}})
	v, ver = st.Get("a")
	if string(v) != "2" || ver != 2 {
		t.Fatalf("got %q v%d, want 2 v2", v, ver)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
}
