package permissioned

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// versioned is one world-state entry.
type versioned struct {
	value   []byte
	version uint64
}

// State is a channel's world state: a versioned key-value store supporting
// the MVCC validation Fabric performs at commit time.
type State struct {
	entries map[string]versioned
}

// NewState returns an empty world state.
func NewState() *State {
	return &State{entries: make(map[string]versioned)}
}

// Get returns the value and version for key (version 0 = never written).
func (s *State) Get(key string) ([]byte, uint64) {
	e, ok := s.entries[key]
	if !ok {
		return nil, 0
	}
	out := make([]byte, len(e.value))
	copy(out, e.value)
	return out, e.version
}

// apply installs a write set, bumping versions.
func (s *State) apply(writes []Write) {
	for _, w := range writes {
		cur := s.entries[w.Key]
		val := make([]byte, len(w.Value))
		copy(val, w.Value)
		s.entries[w.Key] = versioned{value: val, version: cur.version + 1}
	}
}

// Len returns the number of keys present.
func (s *State) Len() int { return len(s.entries) }

// Read records one read with the version observed at simulation
// (endorsement) time.
type Read struct {
	Key     string
	Version uint64
}

// Write records one pending write.
type Write struct {
	Key   string
	Value []byte
}

// RWSet is the outcome of speculatively executing chaincode.
type RWSet struct {
	Reads  []Read
	Writes []Write
}

// Digest returns the canonical hash of the read/write set — the content
// that endorsers sign.
func (rw *RWSet) Digest() []byte {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[:4], uint32(len(rw.Reads)))
	binary.BigEndian.PutUint32(buf[4:], uint32(len(rw.Writes)))
	h.Write(buf[:])
	for _, r := range rw.Reads {
		h.Write([]byte(r.Key))
		h.Write([]byte{0})
		binary.BigEndian.PutUint64(buf[:], r.Version)
		h.Write(buf[:])
	}
	for _, w := range rw.Writes {
		h.Write([]byte(w.Key))
		h.Write([]byte{0})
		h.Write(w.Value)
		h.Write([]byte{0})
	}
	return h.Sum(nil)
}

// conflict reports whether the read set is stale against the current state.
func (s *State) conflict(rw *RWSet) bool {
	for _, r := range rw.Reads {
		if _, v := s.Get(r.Key); v != r.Version {
			return true
		}
	}
	return false
}

// Stub is the chaincode's interface to the world state during speculative
// execution; it accumulates the read/write set.
type Stub struct {
	state *State
	rw    RWSet
	// local view of uncommitted writes within the same execution
	pending map[string][]byte
}

func newStub(state *State) *Stub {
	return &Stub{state: state, pending: make(map[string][]byte)}
}

// GetState reads a key, recording the observed version.
func (st *Stub) GetState(key string) ([]byte, error) {
	if key == "" {
		return nil, errors.New("permissioned: empty key")
	}
	if v, ok := st.pending[key]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		return out, nil
	}
	val, ver := st.state.Get(key)
	st.rw.Reads = append(st.rw.Reads, Read{Key: key, Version: ver})
	return val, nil
}

// PutState stages a write.
func (st *Stub) PutState(key string, value []byte) error {
	if key == "" {
		return errors.New("permissioned: empty key")
	}
	v := make([]byte, len(value))
	copy(v, value)
	st.pending[key] = v
	st.rw.Writes = append(st.rw.Writes, Write{Key: key, Value: v})
	return nil
}

// Chaincode is application logic executed speculatively at endorsement.
type Chaincode func(stub *Stub, args []string) error

// Execute runs chaincode against the state and returns its read/write set.
func Execute(state *State, cc Chaincode, args []string) (*RWSet, error) {
	if cc == nil {
		return nil, errors.New("permissioned: nil chaincode")
	}
	stub := newStub(state)
	if err := cc(stub, args); err != nil {
		return nil, fmt.Errorf("chaincode: %w", err)
	}
	return &stub.rw, nil
}
