package raft

import (
	"testing"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func newCluster(t *testing.T, n int, seed int64) (*sim.Sim, *Cluster) {
	t.Helper()
	s := sim.New(sim.WithSeed(seed))
	nm := netmodel.New(s, netmodel.WithJitter(0.1))
	c, err := NewCluster(s, nm, n, netmodel.Europe, Config{})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return s, c
}

func TestValidation(t *testing.T) {
	s := sim.New()
	nm := netmodel.New(s)
	if _, err := NewCluster(s, nm, 2, netmodel.Europe, Config{}); err == nil {
		t.Fatal("even n should error")
	}
	if _, err := NewCluster(s, nm, 1, netmodel.Europe, Config{}); err == nil {
		t.Fatal("n=1 should error")
	}
}

func TestElectsSingleLeader(t *testing.T) {
	s, c := newCluster(t, 5, 1)
	c.Start()
	if err := s.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	leaders := 0
	var leaderTerm int
	for _, n := range c.Nodes() {
		if n.Role() == Leader {
			leaders++
			leaderTerm = n.Term()
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaders)
	}
	// All nodes should share the leader's term.
	for _, n := range c.Nodes() {
		if n.Term() != leaderTerm {
			t.Fatalf("node %d term %d != leader term %d", n.ID(), n.Term(), leaderTerm)
		}
	}
}

func TestReplicatesAndCommits(t *testing.T) {
	s, c := newCluster(t, 5, 2)
	c.Start()
	if err := s.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 10; i++ {
		if !c.Submit(Request{ID: i, SubmittedAt: s.Now()}) {
			t.Fatal("Submit failed with an elected leader")
		}
	}
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.Committed() != 10 {
		t.Fatalf("Committed = %d, want 10", c.Committed())
	}
	// Every live node converges to the same commit index.
	for _, n := range c.Nodes() {
		if n.CommitIndex() != 9 {
			t.Fatalf("node %d commit = %d, want 9", n.ID(), n.CommitIndex())
		}
	}
}

func TestLogConsistencyProperty(t *testing.T) {
	s, c := newCluster(t, 5, 3)
	applied := make(map[int]map[int]int) // index -> node -> req id
	c.OnApply(func(node, index int, req Request) {
		if applied[index] == nil {
			applied[index] = make(map[int]int)
		}
		applied[index][node] = req.ID
	})
	c.Start()
	if err := s.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 50; i++ {
		i := i
		s.After(time.Duration(i)*20*time.Millisecond, func() {
			c.Submit(Request{ID: i, SubmittedAt: s.Now()})
		})
	}
	if err := s.RunUntil(30 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// State-machine safety: all nodes apply the same request at each index.
	for idx, byNode := range applied {
		var want = -1
		for node, id := range byNode {
			if want == -1 {
				want = id
			} else if id != want {
				t.Fatalf("index %d applied as %d at one node and %d at node %d", idx, want, id, node)
			}
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	s, c := newCluster(t, 5, 4)
	c.Start()
	if err := s.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	old := c.Leader()
	if old == nil {
		t.Fatal("no initial leader")
	}
	c.Crash(old.ID())
	if err := s.RunUntil(15 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	replacement := c.Leader()
	if replacement == nil {
		t.Fatal("no new leader after crash")
	}
	if replacement.ID() == old.ID() {
		t.Fatal("crashed node still leader")
	}
	if !c.Submit(Request{ID: 99, SubmittedAt: s.Now()}) {
		t.Fatal("Submit after failover failed")
	}
	if err := s.RunUntil(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.Committed() == 0 {
		t.Fatal("nothing committed after failover")
	}
}

func TestMinorityCrashTolerated(t *testing.T) {
	s, c := newCluster(t, 5, 5)
	c.Start()
	if err := s.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Crash two non-leader nodes (minority).
	crashed := 0
	for _, n := range c.Nodes() {
		if n.Role() != Leader && crashed < 2 {
			c.Crash(n.ID())
			crashed++
		}
	}
	for i := 0; i < 5; i++ {
		c.Submit(Request{ID: i, SubmittedAt: s.Now()})
	}
	if err := s.RunUntil(15 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.Committed() != 5 {
		t.Fatalf("Committed = %d with minority down, want 5", c.Committed())
	}
}

func TestMajorityCrashBlocks(t *testing.T) {
	s, c := newCluster(t, 5, 6)
	c.Start()
	if err := s.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Crash three nodes including whoever is leader.
	leader := c.Leader()
	c.Crash(leader.ID())
	crashed := 1
	for _, n := range c.Nodes() {
		if n.ID() != leader.ID() && crashed < 3 {
			c.Crash(n.ID())
			crashed++
		}
	}
	if err := s.RunUntil(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.Leader() != nil {
		t.Fatal("a leader exists without a quorum")
	}
	if c.Submit(Request{ID: 1, SubmittedAt: s.Now()}) {
		t.Fatal("Submit should fail without a leader")
	}
}

func TestRecoveredNodeCatchesUp(t *testing.T) {
	s, c := newCluster(t, 3, 7)
	c.Start()
	if err := s.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var victim *Node
	for _, n := range c.Nodes() {
		if n.Role() != Leader {
			victim = n
			break
		}
	}
	c.Crash(victim.ID())
	for i := 0; i < 10; i++ {
		c.Submit(Request{ID: i, SubmittedAt: s.Now()})
	}
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	c.Recover(victim.ID())
	if err := s.RunUntil(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if victim.CommitIndex() != 9 {
		t.Fatalf("recovered node commit = %d, want 9", victim.CommitIndex())
	}
}

func TestRunLoadThroughput(t *testing.T) {
	s, c := newCluster(t, 5, 8)
	st, err := c.RunLoad(1000, 10*time.Second)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	_ = s
	if st.TPS < 800 {
		t.Fatalf("TPS = %v, want ~1000", st.TPS)
	}
	if st.MeanLatency > 500*time.Millisecond {
		t.Fatalf("mean latency = %v, want one-RTT commits", st.MeanLatency)
	}
	if st.Dropped > 50 {
		t.Fatalf("Dropped = %d, want few", st.Dropped)
	}
}

func TestRoleString(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Fatal("Role strings wrong")
	}
	if Role(0).String() != "unknown" {
		t.Fatal("zero Role should be unknown")
	}
}
