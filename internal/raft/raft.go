// Package raft implements the Raft consensus protocol (Ongaro & Ousterhout
// 2014): randomized leader election, log replication, and majority commit.
// It plays the role of the crash-fault-tolerant ordering service in the
// permissioned blockchain stack (Fabric's Raft orderer), the cheaper
// alternative to PBFT when participants are authenticated and merely
// crash-prone rather than Byzantine.
package raft

import (
	"errors"
	"sort"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Role is a node's protocol role.
type Role int

// The Raft roles.
const (
	Follower Role = iota + 1
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return "unknown"
	}
}

// Config parameterizes the cluster.
type Config struct {
	// ElectionTimeoutMin/Max bound the randomized election timeout.
	ElectionTimeoutMin, ElectionTimeoutMax time.Duration
	// HeartbeatInterval is the leader's append/heartbeat period.
	HeartbeatInterval time.Duration
	// ReqSize is the per-entry payload size in bytes.
	ReqSize int
}

func (c Config) withDefaults() Config {
	if c.ElectionTimeoutMin <= 0 {
		c.ElectionTimeoutMin = 500 * time.Millisecond
	}
	if c.ElectionTimeoutMax <= c.ElectionTimeoutMin {
		c.ElectionTimeoutMax = 2 * c.ElectionTimeoutMin
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.ElectionTimeoutMin / 5
	}
	if c.ReqSize <= 0 {
		c.ReqSize = 200
	}
	return c
}

// Request is a client command to replicate.
type Request struct {
	ID          int
	SubmittedAt time.Duration
}

type entry struct {
	term int
	req  Request
}

// Node is one Raft participant.
type Node struct {
	id   int
	addr netmodel.NodeID

	role     Role
	term     int
	votedFor int
	log      []entry
	commit   int // highest committed index (-1 none)
	applied  int // highest applied index (-1 none)

	votes      map[int]bool
	nextIndex  []int
	matchIndex []int

	electionTimer sim.Handle
	heartbeat     *sim.Ticker
	crashed       bool
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// Addr returns the node's network address.
func (n *Node) Addr() netmodel.NodeID { return n.addr }

// Role returns the node's current role.
func (n *Node) Role() Role { return n.role }

// Term returns the node's current term.
func (n *Node) Term() int { return n.term }

// CommitIndex returns the highest committed log index (-1 if none).
func (n *Node) CommitIndex() int { return n.commit }

// LogLen returns the node's log length.
func (n *Node) LogLen() int { return len(n.log) }

// Cluster is a Raft group over a simulated network.
type Cluster struct {
	sim *sim.Sim
	net *netmodel.Net
	cfg Config
	rng *sim.RNG

	nodes []*Node

	msgs      int64
	bytes     int64
	committed int
	latency   []time.Duration
	elections int

	onApply func(node, index int, req Request)
}

// NewCluster creates an n-node cluster (n must be odd and >= 3).
func NewCluster(s *sim.Sim, nm *netmodel.Net, n int, region netmodel.Region, cfg Config) (*Cluster, error) {
	if n < 3 || n%2 == 0 {
		return nil, errors.New("raft: n must be odd and >= 3")
	}
	c := &Cluster{
		sim: s,
		net: nm,
		cfg: cfg.withDefaults(),
		rng: s.Stream("raft"),
	}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, &Node{
			id:       i,
			addr:     nm.AddNode(region, 0),
			role:     Follower,
			votedFor: -1,
			commit:   -1,
			applied:  -1,
		})
	}
	return c, nil
}

// Start arms every node's election timer. Run the simulator to elect a
// leader.
func (c *Cluster) Start() {
	for _, n := range c.nodes {
		c.resetElectionTimer(n)
	}
}

// Nodes returns the nodes (shared slice; do not modify).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Leader returns the current leader with the highest term, or nil.
func (c *Cluster) Leader() *Node {
	var best *Node
	for _, n := range c.nodes {
		if n.role == Leader && !n.crashed && (best == nil || n.term > best.term) {
			best = n
		}
	}
	return best
}

// Committed returns the number of requests committed and applied at the
// leader.
func (c *Cluster) Committed() int { return c.committed }

// Messages returns total protocol messages.
func (c *Cluster) Messages() int64 { return c.msgs }

// Elections returns how many elections were started.
func (c *Cluster) Elections() int { return c.elections }

// Latencies returns submit-to-commit latencies.
func (c *Cluster) Latencies() []time.Duration { return c.latency }

// OnApply registers an observer of applied entries.
func (c *Cluster) OnApply(fn func(node, index int, req Request)) { c.onApply = fn }

// Crash fail-stops a node.
func (c *Cluster) Crash(id int) {
	if id < 0 || id >= len(c.nodes) {
		return
	}
	n := c.nodes[id]
	n.crashed = true
	c.net.SetUp(n.addr, false)
	if n.heartbeat != nil {
		n.heartbeat.Stop()
		n.heartbeat = nil
	}
	n.electionTimer.Cancel()
}

// Recover restarts a crashed node as a follower with its log intact.
func (c *Cluster) Recover(id int) {
	if id < 0 || id >= len(c.nodes) {
		return
	}
	n := c.nodes[id]
	n.crashed = false
	n.role = Follower
	c.net.SetUp(n.addr, true)
	c.resetElectionTimer(n)
}

// Submit proposes a request via the current leader. It returns false when
// no leader is known (clients retry in that case).
func (c *Cluster) Submit(req Request) bool {
	leader := c.Leader()
	if leader == nil {
		return false
	}
	leader.log = append(leader.log, entry{term: leader.term, req: req})
	leader.matchIndex[leader.id] = len(leader.log) - 1
	// Replicate eagerly (heartbeat also retries).
	for _, peer := range c.nodes {
		if peer != leader {
			c.sendAppend(leader, peer)
		}
	}
	return true
}

func (c *Cluster) resetElectionTimer(n *Node) {
	n.electionTimer.Cancel()
	span := c.cfg.ElectionTimeoutMax - c.cfg.ElectionTimeoutMin
	d := c.cfg.ElectionTimeoutMin + time.Duration(c.rng.Float64()*float64(span))
	n.electionTimer = c.sim.After(d, func() { c.startElection(n) })
}

func (c *Cluster) startElection(n *Node) {
	if n.crashed || n.role == Leader {
		return
	}
	c.elections++
	n.term++
	n.role = Candidate
	n.votedFor = n.id
	n.votes = map[int]bool{n.id: true}
	c.resetElectionTimer(n)
	lastIdx := len(n.log) - 1
	lastTerm := 0
	if lastIdx >= 0 {
		lastTerm = n.log[lastIdx].term
	}
	term := n.term
	for _, peer := range c.nodes {
		if peer == n {
			continue
		}
		peer := peer
		c.send(n, peer, 64, func() {
			c.onRequestVote(peer, n, term, lastIdx, lastTerm)
		})
	}
}

func (c *Cluster) onRequestVote(n, candidate *Node, term, lastIdx, lastTerm int) {
	if n.crashed {
		return
	}
	if term > n.term {
		c.stepDown(n, term)
	}
	grant := false
	if term == n.term && (n.votedFor == -1 || n.votedFor == candidate.id) {
		// Candidate's log must be at least as up to date.
		myLastIdx := len(n.log) - 1
		myLastTerm := 0
		if myLastIdx >= 0 {
			myLastTerm = n.log[myLastIdx].term
		}
		if lastTerm > myLastTerm || (lastTerm == myLastTerm && lastIdx >= myLastIdx) {
			grant = true
			n.votedFor = candidate.id
			c.resetElectionTimer(n)
		}
	}
	if !grant {
		return
	}
	votedTerm := term
	c.send(n, candidate, 32, func() {
		c.onVote(candidate, n.id, votedTerm)
	})
}

func (c *Cluster) onVote(n *Node, from, term int) {
	if n.crashed || n.role != Candidate || term != n.term {
		return
	}
	n.votes[from] = true
	if len(n.votes) <= len(c.nodes)/2 {
		return
	}
	// Won the election.
	n.role = Leader
	n.nextIndex = make([]int, len(c.nodes))
	n.matchIndex = make([]int, len(c.nodes))
	for i := range n.nextIndex {
		n.nextIndex[i] = len(n.log)
		n.matchIndex[i] = -1
	}
	n.matchIndex[n.id] = len(n.log) - 1
	n.electionTimer.Cancel()
	for _, peer := range c.nodes {
		if peer != n {
			c.sendAppend(n, peer)
		}
	}
	hb, err := c.sim.Every(c.cfg.HeartbeatInterval, func() {
		if n.crashed || n.role != Leader {
			if n.heartbeat != nil {
				n.heartbeat.Stop()
				n.heartbeat = nil
			}
			return
		}
		for _, peer := range c.nodes {
			if peer != n {
				c.sendAppend(n, peer)
			}
		}
	})
	if err == nil {
		n.heartbeat = hb
	}
}

func (c *Cluster) stepDown(n *Node, term int) {
	n.term = term
	n.role = Follower
	n.votedFor = -1
	if n.heartbeat != nil {
		n.heartbeat.Stop()
		n.heartbeat = nil
	}
	c.resetElectionTimer(n)
}

// sendAppend ships log entries (or a heartbeat) from leader to peer.
func (c *Cluster) sendAppend(leader, peer *Node) {
	if leader.crashed || leader.role != Leader {
		return
	}
	next := leader.nextIndex[peer.id]
	if next < 0 {
		next = 0
	}
	prevIdx := next - 1
	prevTerm := 0
	if prevIdx >= 0 && prevIdx < len(leader.log) {
		prevTerm = leader.log[prevIdx].term
	}
	entries := make([]entry, len(leader.log)-next)
	copy(entries, leader.log[next:])
	size := 64 + c.cfg.ReqSize*len(entries)
	term := leader.term
	commit := leader.commit
	c.send(leader, peer, size, func() {
		c.onAppend(peer, leader, term, prevIdx, prevTerm, entries, commit)
	})
}

func (c *Cluster) onAppend(n, leader *Node, term, prevIdx, prevTerm int, entries []entry, leaderCommit int) {
	if n.crashed {
		return
	}
	if term < n.term {
		return
	}
	if term > n.term || n.role == Candidate {
		c.stepDown(n, term)
	}
	c.resetElectionTimer(n)
	// Consistency check.
	if prevIdx >= 0 {
		if prevIdx >= len(n.log) || n.log[prevIdx].term != prevTerm {
			// Reject: leader will back off nextIndex.
			c.send(n, leader, 32, func() {
				c.onAppendReply(leader, n, term, false, -1)
			})
			return
		}
	}
	// Append/overwrite entries.
	for i, e := range entries {
		idx := prevIdx + 1 + i
		if idx < len(n.log) {
			if n.log[idx].term != e.term {
				n.log = n.log[:idx]
				n.log = append(n.log, e)
			}
		} else {
			n.log = append(n.log, e)
		}
	}
	matched := prevIdx + len(entries)
	if leaderCommit > n.commit {
		n.commit = min(leaderCommit, len(n.log)-1)
		c.apply(n)
	}
	c.send(n, leader, 32, func() {
		c.onAppendReply(leader, n, term, true, matched)
	})
}

func (c *Cluster) onAppendReply(leader, from *Node, term int, ok bool, matched int) {
	if leader.crashed || leader.role != Leader || term != leader.term {
		return
	}
	if !ok {
		if leader.nextIndex[from.id] > 0 {
			leader.nextIndex[from.id]--
		}
		c.sendAppend(leader, from)
		return
	}
	if matched > leader.matchIndex[from.id] {
		leader.matchIndex[from.id] = matched
	}
	if matched+1 > leader.nextIndex[from.id] {
		leader.nextIndex[from.id] = matched + 1
	}
	// Advance commit index: the largest N replicated on a majority with an
	// entry from the current term.
	idxs := make([]int, len(leader.matchIndex))
	copy(idxs, leader.matchIndex)
	sort.Ints(idxs)
	majority := idxs[(len(idxs)-1)/2]
	for n := majority; n > leader.commit; n-- {
		if n < len(leader.log) && leader.log[n].term == leader.term {
			leader.commit = n
			c.apply(leader)
			break
		}
	}
}

// apply runs newly committed entries; leader applications account latency.
func (c *Cluster) apply(n *Node) {
	for n.applied < n.commit {
		n.applied++
		e := n.log[n.applied]
		if c.onApply != nil {
			c.onApply(n.id, n.applied, e.req)
		}
		if n.role == Leader {
			c.committed++
			c.latency = append(c.latency, c.sim.Now()-e.req.SubmittedAt)
		}
	}
}

func (c *Cluster) send(from, to *Node, size int, deliver func()) {
	c.msgs++
	c.bytes += int64(size)
	c.net.Send(from.addr, to.addr, size, func() {
		if to.crashed {
			return
		}
		deliver()
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// LoadStats summarizes a load run.
type LoadStats struct {
	Committed   int
	TPS         float64
	MeanLatency time.Duration
	P99Latency  time.Duration
	Dropped     int
}

// RunLoad elects a leader, drives requests at the given rate for the given
// duration, and reports throughput/latency. Requests offered while no
// leader is known count as Dropped.
func (c *Cluster) RunLoad(rate float64, duration time.Duration) (LoadStats, error) {
	if rate <= 0 || duration <= 0 {
		return LoadStats{}, errors.New("raft: rate and duration must be positive")
	}
	c.Start()
	// Let the first election settle.
	if err := c.sim.RunFor(2 * c.cfg.ElectionTimeoutMax); err != nil {
		return LoadStats{}, err
	}
	rng := c.sim.Stream("raft.load")
	mean := time.Duration(float64(time.Second) / rate)
	start := c.sim.Now()
	dropped := 0
	id := 0
	var submit func()
	submit = func() {
		if c.sim.Now()-start >= duration {
			return
		}
		if !c.Submit(Request{ID: id, SubmittedAt: c.sim.Now()}) {
			dropped++
		}
		id++
		c.sim.After(rng.ExpDuration(mean), submit)
	}
	submit()
	if err := c.sim.RunUntil(start + duration + 5*time.Second); err != nil {
		return LoadStats{}, err
	}
	st := LoadStats{
		Committed: c.committed,
		TPS:       float64(c.committed) / duration.Seconds(),
		Dropped:   dropped,
	}
	if len(c.latency) > 0 {
		var sum time.Duration
		sample := make([]time.Duration, len(c.latency))
		copy(sample, c.latency)
		for _, d := range sample {
			sum += d
		}
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		st.MeanLatency = sum / time.Duration(len(sample))
		st.P99Latency = sample[(len(sample)-1)*99/100]
	}
	return st, nil
}
