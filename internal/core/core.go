// Package core is the reproduction framework — the paper's argument turned
// into checkable artifacts. Each Experiment corresponds to one quantitative
// claim from the paper, runs the relevant simulated systems, emits the
// table/figure the claim corresponds to, and issues a shape verdict: does
// the simulation reproduce who wins, by roughly what factor, and where the
// crossover lies?
package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// Config controls an experiment run.
type Config struct {
	// Seed is the master seed; equal seeds give identical results.
	Seed int64
	// Scale multiplies workload sizes (1 = the documented default;
	// smaller values run faster for smoke tests and benchmarks).
	Scale float64
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// ScaleInt scales a workload size, keeping a floor of 1.
func (c Config) ScaleInt(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		return 1
	}
	return v
}

// Check is one verified aspect of a claim's shape.
type Check struct {
	// Name describes what was checked.
	Name string
	// OK reports whether the shape held.
	OK bool
	// Detail carries the measured numbers.
	Detail string
}

// Result is an experiment's output.
type Result struct {
	// ID is the experiment identifier (e.g. "E06").
	ID string
	// Title is a short human name.
	Title string
	// Claim quotes the paper claim being reproduced.
	Claim string
	// Tables and Figures carry the regenerated artifacts.
	Tables  []*metrics.Table
	Figures []*metrics.Figure
	// Checks are the shape verdicts.
	Checks []Check
}

// AddCheck appends a shape verdict.
func (r *Result) AddCheck(ok bool, name, format string, args ...any) {
	r.Checks = append(r.Checks, Check{
		Name:   name,
		OK:     ok,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Reproduced reports whether every shape check held.
func (r *Result) Reproduced() bool {
	if len(r.Checks) == 0 {
		return false
	}
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// String renders the full result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	fmt.Fprintf(&b, "claim: %s\n\n", r.Claim)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, f := range r.Figures {
		b.WriteString(f.Render(60, 12))
		b.WriteByte('\n')
	}
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s: %s\n", mark, c.Name, c.Detail)
	}
	return b.String()
}

// Experiment reproduces one paper claim.
type Experiment interface {
	// ID returns the experiment identifier ("E01".."E17").
	ID() string
	// Title returns a short name.
	Title() string
	// Claim quotes the claim (with paper section).
	Claim() string
	// Run executes the experiment.
	Run(cfg Config) (*Result, error)
}

// ErrUnknownExperiment is returned when an id does not resolve.
var ErrUnknownExperiment = errors.New("core: unknown experiment")

// Registry holds a set of experiments in declaration order.
type Registry struct {
	exps []Experiment
	byID map[string]Experiment
}

// NewRegistry builds a registry, rejecting duplicate ids.
func NewRegistry(exps ...Experiment) (*Registry, error) {
	r := &Registry{byID: make(map[string]Experiment, len(exps))}
	for _, e := range exps {
		id := strings.ToUpper(e.ID())
		if _, dup := r.byID[id]; dup {
			return nil, fmt.Errorf("core: duplicate experiment id %q", id)
		}
		r.byID[id] = e
		r.exps = append(r.exps, e)
	}
	return r, nil
}

// All returns the experiments in declaration order.
func (r *Registry) All() []Experiment {
	out := make([]Experiment, len(r.exps))
	copy(out, r.exps)
	return out
}

// Get resolves an experiment by id (case-insensitive).
func (r *Registry) Get(id string) (Experiment, error) {
	e, ok := r.byID[strings.ToUpper(id)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
	}
	return e, nil
}

// Run executes one experiment by id.
func (r *Registry) Run(id string, cfg Config) (*Result, error) {
	e, err := r.Get(id)
	if err != nil {
		return nil, err
	}
	return e.Run(cfg.WithDefaults())
}
