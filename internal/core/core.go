package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Config controls an experiment run.
type Config struct {
	// Seed is the master seed; equal seeds give identical results.
	Seed int64 `json:"seed"`
	// Scale multiplies workload sizes (1 = the documented default;
	// smaller values run faster for smoke tests and benchmarks).
	Scale float64 `json:"scale"`
	// Params carries named per-experiment knobs set by sweep grids
	// (e.g. "e03.lookups"). Experiments read them with Param; unset
	// knobs fall back to the experiment's documented default, so a nil
	// map reproduces the baseline run exactly.
	Params map[string]float64 `json:"params,omitempty"`
	// Obs, when non-nil, is the run's telemetry collector: experiments
	// attach it to the kernels they build, and instrumented subsystems
	// record counters, histograms and (optionally) an event trace into
	// it. Nil means telemetry off — the documented zero-cost default.
	// Collectors are per-run state, never part of the configuration
	// identity, so the field is excluded from marshalled output.
	Obs *obs.Collector `json:"-"`
	// Shards is the worker count for experiments driven by a sharded
	// kernel (internal/sim.ShardedSim): how many goroutines execute the
	// experiment's fixed logical shards within each conservative window.
	// Results are identical at every value — the shard-count invisibility
	// contract (DESIGN.md, "Sharded kernel") — so like Obs it is execution
	// state, never configuration identity, and is excluded from marshalled
	// output. 0 and 1 both mean sequential execution.
	Shards int `json:"-"`
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	return c
}

// KnobOwner returns the experiment id a knob name is prefixed with
// ("e03.lookups" -> "E03"), or "" for global knobs whose prefix does not
// name an experiment. It is the single ownership rule shared by sweep
// grid expansion, CLI validation, and per-experiment knob checking.
func KnobOwner(name string) string {
	prefix, _, _ := strings.Cut(name, ".")
	if len(prefix) < 2 || (prefix[0] != 'e' && prefix[0] != 'E') {
		return ""
	}
	for i := 1; i < len(prefix); i++ {
		if prefix[i] < '0' || prefix[i] > '9' {
			return ""
		}
	}
	return strings.ToUpper(prefix)
}

// Param returns the named knob, or def when the knob is unset.
func (c Config) Param(name string, def float64) float64 {
	if v, ok := c.Params[name]; ok {
		return v
	}
	return def
}

// ParamInt returns the named knob rounded to the nearest int, clamped to
// [1, MaxInt32] — float-to-int conversion of out-of-range values is
// implementation-defined in Go, so huge knob values must not reach int()
// unchecked.
func (c Config) ParamInt(name string, def int) int {
	v := math.Round(c.Param(name, float64(def)))
	if v < 1 || math.IsNaN(v) {
		return 1
	}
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(v)
}

// ScaleInt scales a workload size, keeping a floor of 1.
func (c Config) ScaleInt(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 1 {
		return 1
	}
	return v
}

// Check is one verified aspect of a claim's shape.
type Check struct {
	// Name describes what was checked.
	Name string `json:"name"`
	// OK reports whether the shape held.
	OK bool `json:"ok"`
	// Detail carries the measured numbers.
	Detail string `json:"detail"`
}

// Metric is one named scalar an experiment records at full precision for
// cross-seed aggregation (table cells are rendered at %.4g and lose
// precision when re-parsed).
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Result is an experiment's output. It marshals to stable JSON (field
// order is fixed by the struct; empty artifact lists are omitted), so
// results double as machine-readable artifacts for the harness exporters.
type Result struct {
	// ID is the experiment identifier (e.g. "E06").
	ID string `json:"id"`
	// Title is a short human name.
	Title string `json:"title"`
	// Claim quotes the paper claim being reproduced.
	Claim string `json:"claim"`
	// Tables and Figures carry the regenerated artifacts.
	Tables  []*metrics.Table  `json:"tables,omitempty"`
	Figures []*metrics.Figure `json:"figures,omitempty"`
	// Metrics are explicit full-precision scalars for aggregation.
	Metrics []Metric `json:"metrics,omitempty"`
	// Checks are the shape verdicts.
	Checks []Check `json:"checks"`
}

// AddMetric records a named scalar at full precision.
func (r *Result) AddMetric(name string, value float64) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value})
}

// AddCheck appends a shape verdict.
func (r *Result) AddCheck(ok bool, name, format string, args ...any) {
	r.Checks = append(r.Checks, Check{
		Name:   name,
		OK:     ok,
		Detail: fmt.Sprintf(format, args...),
	})
}

// JSON renders the result as indented, deterministic JSON.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Reproduced reports whether every shape check held.
func (r *Result) Reproduced() bool {
	if len(r.Checks) == 0 {
		return false
	}
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// String renders the full result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	fmt.Fprintf(&b, "claim: %s\n\n", r.Claim)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, f := range r.Figures {
		b.WriteString(f.Render(60, 12))
		b.WriteByte('\n')
	}
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s: %s\n", mark, c.Name, c.Detail)
	}
	return b.String()
}

// Experiment reproduces one paper claim.
type Experiment interface {
	// ID returns the experiment identifier ("E01".."E18").
	ID() string
	// Title returns a short name.
	Title() string
	// Claim quotes the claim (with paper section).
	Claim() string
	// Run executes the experiment.
	Run(cfg Config) (*Result, error)
}

// Sectioned is implemented by experiments that carry a stable paper
// section tag (e.g. "§III-C P2") naming where in the paper's argument
// their claim lives. The reproduction report groups its claim-traceability
// matrix by this tag.
type Sectioned interface {
	// Section returns the paper section tag, e.g. "§II-B P1".
	Section() string
}

// SectionOf returns the paper section an experiment's claim belongs to:
// the Sectioned tag when the experiment implements it, otherwise the
// leading "§..." token of the claim text (up to the first ":"), otherwise
// "". The result is stable metadata — it depends only on the experiment
// definition, never on a run.
func SectionOf(e Experiment) string {
	if s, ok := e.(Sectioned); ok {
		if tag := s.Section(); tag != "" {
			return tag
		}
	}
	claim := e.Claim()
	if !strings.HasPrefix(claim, "§") {
		return ""
	}
	tag, _, _ := strings.Cut(claim, ":")
	return strings.TrimSpace(tag)
}

// ErrUnknownExperiment is returned when an id does not resolve.
var ErrUnknownExperiment = errors.New("core: unknown experiment")

// Registry holds a set of experiments in declaration order.
type Registry struct {
	exps []Experiment
	byID map[string]Experiment
}

// NewRegistry builds a registry, rejecting duplicate ids.
func NewRegistry(exps ...Experiment) (*Registry, error) {
	r := &Registry{byID: make(map[string]Experiment, len(exps))}
	for _, e := range exps {
		id := strings.ToUpper(e.ID())
		if _, dup := r.byID[id]; dup {
			return nil, fmt.Errorf("core: duplicate experiment id %q", id)
		}
		r.byID[id] = e
		r.exps = append(r.exps, e)
	}
	return r, nil
}

// All returns the experiments in declaration order.
func (r *Registry) All() []Experiment {
	out := make([]Experiment, len(r.exps))
	copy(out, r.exps)
	return out
}

// Get resolves an experiment by id (case-insensitive).
func (r *Registry) Get(id string) (Experiment, error) {
	e, ok := r.byID[strings.ToUpper(id)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
	}
	return e, nil
}

// Run executes one experiment by id.
func (r *Registry) Run(id string, cfg Config) (*Result, error) {
	e, err := r.Get(id)
	if err != nil {
		return nil, err
	}
	return e.Run(cfg.WithDefaults())
}
