// Package core is the reproduction framework — the paper's argument
// turned into checkable artifacts. Each Experiment corresponds to one
// quantitative claim from the paper, runs the relevant simulated systems,
// emits the table/figure the claim corresponds to, and issues a shape
// verdict: does the simulation reproduce who wins, by roughly what
// factor, and where the crossover lies?
//
// The package defines the run contract shared by every layer above it:
//
//   - Config: seed (determinism), scale (fidelity/speed trade), and the
//     named per-experiment knobs sweeps cross in;
//   - Result: regenerated tables, figures, full-precision metrics, and
//     shape checks, marshalling to stable JSON;
//   - Experiment and Registry: the claim catalogue in paper order;
//   - Sectioned / SectionOf: stable paper-section metadata, the axis the
//     reproduction report's claim-traceability matrix is grouped on.
//
// Equal seeds give identical Results; everything else in the repository
// (harness sweeps, the report generator, golden tests) builds on that
// guarantee.
package core
