package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/metrics"
)

type fakeExp struct {
	id   string
	fail bool
}

func (f *fakeExp) ID() string    { return f.id }
func (f *fakeExp) Title() string { return "fake " + f.id }
func (f *fakeExp) Claim() string { return "claim " + f.id }

func (f *fakeExp) Run(cfg Config) (*Result, error) {
	r := &Result{ID: f.id, Title: f.Title(), Claim: f.Claim()}
	t := metrics.NewTable("t", "a")
	t.AddRow("1")
	r.Tables = append(r.Tables, t)
	r.AddCheck(!f.fail, "check", "seed=%d scale=%v", cfg.Seed, cfg.Scale)
	return r, nil
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Seed != 1 || c.Scale != 1 {
		t.Fatalf("defaults = %+v, want seed=1 scale=1", c)
	}
	c = Config{Seed: 9, Scale: 0.5}.WithDefaults()
	if c.Seed != 9 || c.Scale != 0.5 {
		t.Fatalf("explicit config altered: %+v", c)
	}
}

func TestScaleInt(t *testing.T) {
	c := Config{Scale: 0.5}.WithDefaults()
	if c.ScaleInt(100) != 50 {
		t.Fatalf("ScaleInt(100) = %d, want 50", c.ScaleInt(100))
	}
	if c.ScaleInt(1) != 1 {
		t.Fatal("ScaleInt floor must be 1")
	}
}

func TestRegistry(t *testing.T) {
	reg, err := NewRegistry(&fakeExp{id: "E01"}, &fakeExp{id: "E02", fail: true})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	if len(reg.All()) != 2 {
		t.Fatalf("All = %d, want 2", len(reg.All()))
	}
	if _, err := reg.Get("e01"); err != nil {
		t.Fatalf("case-insensitive Get failed: %v", err)
	}
	if _, err := reg.Get("E99"); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("unknown id error = %v", err)
	}
	res, err := reg.Run("E01", Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Reproduced() {
		t.Fatal("passing experiment reported as not reproduced")
	}
	res2, err := reg.Run("E02", Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res2.Reproduced() {
		t.Fatal("failing experiment reported as reproduced")
	}
}

func TestRegistryDuplicate(t *testing.T) {
	if _, err := NewRegistry(&fakeExp{id: "E01"}, &fakeExp{id: "e01"}); err == nil {
		t.Fatal("duplicate ids should error")
	}
}

func TestResultString(t *testing.T) {
	r := &Result{ID: "E01", Title: "demo", Claim: "the claim"}
	tab := metrics.NewTable("numbers", "x")
	tab.AddRow("42")
	r.Tables = append(r.Tables, tab)
	fig := &metrics.Figure{Title: "figure"}
	fig.Add("s", 1, 2)
	r.Figures = append(r.Figures, fig)
	r.AddCheck(true, "good", "fine")
	r.AddCheck(false, "bad", "broken")
	out := r.String()
	for _, want := range []string{"E01", "the claim", "numbers", "42", "figure", "[PASS] good", "[FAIL] bad"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
	if r.Reproduced() {
		t.Fatal("result with a failing check cannot be reproduced")
	}
}

func TestEmptyResultNotReproduced(t *testing.T) {
	r := &Result{}
	if r.Reproduced() {
		t.Fatal("no checks should mean not reproduced")
	}
}

func TestConfigParams(t *testing.T) {
	cfg := Config{Params: map[string]float64{"knob": 2.5, "count": 7}}
	if got := cfg.Param("knob", 1); got != 2.5 {
		t.Fatalf("Param(knob) = %g", got)
	}
	if got := cfg.Param("missing", 4); got != 4 {
		t.Fatalf("Param(missing) = %g, want default", got)
	}
	if got := cfg.ParamInt("count", 1); got != 7 {
		t.Fatalf("ParamInt(count) = %d", got)
	}
	if got := cfg.ParamInt("missing", 9); got != 9 {
		t.Fatalf("ParamInt(missing) = %d, want default", got)
	}
	if got := (Config{}).ParamInt("missing", -3); got != 1 {
		t.Fatalf("ParamInt floor = %d, want 1", got)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	r := &Result{ID: "E06", Title: "demo", Claim: "the claim"}
	tab := metrics.NewTable("numbers", "x", "y")
	tab.AddRowf("a", 1.5)
	r.Tables = append(r.Tables, tab)
	r.AddCheck(true, "good", "fine")
	data, err := r.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.ID != "E06" || len(back.Tables) != 1 || len(back.Checks) != 1 || !back.Checks[0].OK {
		t.Fatalf("round trip lost data: %+v", back)
	}
	data2, err := r.JSON()
	if err != nil || !bytes.Equal(data, data2) {
		t.Fatalf("Result.JSON not deterministic")
	}
}
