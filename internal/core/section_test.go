package core

import "testing"

// secExp is a minimal Experiment without a Section method.
type secExp struct{ claim string }

func (f secExp) ID() string                  { return "EX" }
func (f secExp) Title() string               { return "fake" }
func (f secExp) Claim() string               { return f.claim }
func (f secExp) Run(Config) (*Result, error) { return &Result{}, nil }

// taggedExp adds an explicit tag.
type taggedExp struct {
	secExp
	section string
}

func (s taggedExp) Section() string { return s.section }

func TestSectionOfPrefersSectionedTag(t *testing.T) {
	e := taggedExp{secExp{claim: "§II-A: something"}, "§IV"}
	if got := SectionOf(e); got != "§IV" {
		t.Errorf("SectionOf = %q, want the explicit tag %q", got, "§IV")
	}
}

func TestSectionOfEmptyTagFallsBackToClaim(t *testing.T) {
	e := taggedExp{secExp{claim: "§II-B P1: free riding"}, ""}
	if got := SectionOf(e); got != "§II-B P1" {
		t.Errorf("SectionOf = %q, want claim-derived %q", got, "§II-B P1")
	}
}

func TestSectionOfParsesClaimPrefix(t *testing.T) {
	cases := []struct{ claim, want string }{
		{"§I: concentration", "§I"},
		{"§III-C P2: layer 2", "§III-C P2"},
		{"no section marker here", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := SectionOf(secExp{claim: c.claim}); got != c.want {
			t.Errorf("SectionOf(claim %q) = %q, want %q", c.claim, got, c.want)
		}
	}
}
