package harness

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
)

// MetricAgg summarizes one scalar metric across the replications of a
// scenario. CI95 is the half-width of the 95% confidence interval for the
// mean (Student's t), 0 with fewer than two observations.
type MetricAgg struct {
	Name string  `json:"name"`
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"stddev"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// CheckAgg is the cross-replication vote on one shape check.
type CheckAgg struct {
	Name     string  `json:"name"`
	N        int     `json:"n"`
	Passes   int     `json:"passes"`
	PassRate float64 `json:"pass_rate"`
	// Verdict is the majority vote: true when the check held in more
	// than half the replications.
	Verdict bool `json:"verdict"`
}

// Group aggregates all replications of one scenario — same experiment,
// scale and knob assignment, varying seed.
type Group struct {
	ExperimentID string      `json:"experiment"`
	Title        string      `json:"title,omitempty"`
	Scale        float64     `json:"scale"`
	Params       string      `json:"params,omitempty"`
	Seeds        []int64     `json:"seeds"`
	Replications int         `json:"replications"`
	Errors       []string    `json:"errors,omitempty"`
	Metrics      []MetricAgg `json:"metrics"`
	Checks       []CheckAgg  `json:"checks"`
	// Reproduced reports whether every shape check won its majority
	// vote (false when no replication produced checks).
	Reproduced bool `json:"reproduced"`
}

// Report is an aggregated sweep: one group per scenario, in job order.
type Report struct {
	Groups []Group `json:"groups"`
}

// metricAcc accumulates one metric across seeds in first-seen order.
type metricAcc struct {
	name string
	sum  metrics.Summary
}

type checkAcc struct {
	name   string
	n      int
	passes int
}

type groupAcc struct {
	group    Group
	metrics  []*metricAcc
	metricIx map[string]*metricAcc
	checks   []*checkAcc
	checkIx  map[string]*checkAcc
}

// Aggregate collapses job results into a Report. Results belonging to the
// same scenario (experiment id + scale + knob assignment) are merged
// across seeds; groups and their metrics appear in first-encounter order,
// so equal inputs produce byte-identical exports regardless of how the
// jobs were scheduled.
func Aggregate(results []JobResult) *Report {
	var order []*groupAcc
	index := make(map[string]*groupAcc)
	for _, jr := range results {
		key := groupKey(jr.Job)
		acc, ok := index[key]
		if !ok {
			acc = &groupAcc{
				group: Group{
					ExperimentID: strings.ToUpper(jr.Job.ExperimentID),
					Scale:        jr.Job.Config.Scale,
					Params:       ParamLabel(jr.Job.Config.Params),
				},
				metricIx: make(map[string]*metricAcc),
				checkIx:  make(map[string]*checkAcc),
			}
			index[key] = acc
			order = append(order, acc)
		}
		acc.group.Seeds = append(acc.group.Seeds, jr.Job.Config.Seed)
		acc.group.Replications++
		if jr.Err != nil {
			acc.group.Errors = append(acc.group.Errors,
				fmt.Sprintf("seed %d: %v", jr.Job.Config.Seed, jr.Err))
			continue
		}
		if acc.group.Title == "" {
			acc.group.Title = jr.Result.Title
		}
		for _, mv := range resultMetrics(jr.Result) {
			m, ok := acc.metricIx[mv.name]
			if !ok {
				m = &metricAcc{name: mv.name}
				acc.metricIx[mv.name] = m
				acc.metrics = append(acc.metrics, m)
			}
			m.sum.Add(mv.value)
		}
		for _, c := range jr.Result.Checks {
			ca, ok := acc.checkIx[c.Name]
			if !ok {
				ca = &checkAcc{name: c.Name}
				acc.checkIx[c.Name] = ca
				acc.checks = append(acc.checks, ca)
			}
			ca.n++
			if c.OK {
				ca.passes++
			}
		}
	}
	rep := &Report{Groups: make([]Group, 0, len(order))}
	for _, acc := range order {
		g := acc.group
		g.Metrics = make([]MetricAgg, 0, len(acc.metrics))
		for _, m := range acc.metrics {
			g.Metrics = append(g.Metrics, MetricAgg{
				Name: m.name,
				N:    m.sum.Count(),
				Mean: m.sum.Mean(),
				Std:  m.sum.Std(),
				CI95: ci95(m.sum.Std(), m.sum.Count()),
				Min:  m.sum.Min(),
				Max:  m.sum.Max(),
			})
		}
		g.Checks = make([]CheckAgg, 0, len(acc.checks))
		g.Reproduced = len(acc.checks) > 0
		for _, c := range acc.checks {
			verdict := 2*c.passes > c.n
			if !verdict {
				g.Reproduced = false
			}
			g.Checks = append(g.Checks, CheckAgg{
				Name:     c.name,
				N:        c.n,
				Passes:   c.passes,
				PassRate: float64(c.passes) / float64(c.n),
				Verdict:  verdict,
			})
		}
		rep.Groups = append(rep.Groups, g)
	}
	return rep
}

// key renders the scenario identity results are merged on: experiment id
// + scale + canonical knob assignment, everything but the seed. Group
// stores exactly these canonical components, so a group rebuilt from its
// exported fields keys identically to the jobs that formed it.
func (g Group) key() string {
	return fmt.Sprintf("%s|%g|%s", g.ExperimentID, g.Scale, g.Params)
}

// Key returns the group's canonical scenario identity — the same string
// ScenarioKey renders for the jobs that formed it, so callers can index
// aggregated output by the scenarios they submitted.
func (g Group) Key() string { return g.key() }

// ScenarioKey renders the canonical identity replications are merged on:
// experiment id + scale + knob assignment (everything but the seed). It
// equals Group.Key for the group those jobs aggregate into.
func ScenarioKey(experimentID string, scale float64, params map[string]float64) string {
	return Group{
		ExperimentID: strings.ToUpper(experimentID),
		Scale:        scale,
		Params:       ParamLabel(params),
	}.key()
}

// Headline returns the group's headline metric: the first aggregated
// metric that actually varies across seeds (explicit full-precision
// metrics sort first in the aggregation, so experiments that record one
// get it), falling back to the group's first metric when every metric is
// constant. ok is false when the group has no metrics. The choice
// depends only on the aggregation, so it is deterministic for equal
// inputs.
func (g Group) Headline() (m MetricAgg, ok bool) {
	if len(g.Metrics) == 0 {
		return MetricAgg{}, false
	}
	m = g.Metrics[0]
	for _, cand := range g.Metrics {
		if cand.Std > 0 {
			m = cand
			break
		}
	}
	return m, true
}

// groupKey is the job-side spelling of Group.key.
func groupKey(j Job) string {
	return Group{
		ExperimentID: strings.ToUpper(j.ExperimentID),
		Scale:        j.Config.Scale,
		Params:       ParamLabel(j.Config.Params),
	}.key()
}

type metricValue struct {
	name  string
	value float64
}

// resultMetrics collects a result's scalar metrics: explicit full-
// precision metrics first (core.Result.AddMetric), then one per numeric
// table cell, named "<table> | <row key> | <column>". The first column of
// each row serves as the row key, so every experiment's output becomes
// aggregatable without per-experiment extraction code. Repeated row keys
// within a table (e.g. the same alpha at different gammas) get a
// deterministic "#2", "#3"… suffix so distinct rows never merge into one
// accumulator. Table-derived values carry the cell's rendered precision
// (typically %.4g), so cross-seed variation below 4 significant digits
// aggregates to stddev 0 — experiments should AddMetric the scalars whose
// spread matters.
func resultMetrics(r *core.Result) []metricValue {
	var out []metricValue
	for _, m := range r.Metrics {
		out = append(out, metricValue{name: m.Name, value: m.Value})
	}
	for _, t := range r.Tables {
		assigned := make(map[string]bool, len(t.Rows))
		for _, row := range t.Rows {
			if len(row) == 0 {
				continue
			}
			// Suffix until unique so a literal "a #2" row key cannot
			// collide with a generated one.
			key := row[0]
			for n := 2; assigned[key]; n++ {
				key = fmt.Sprintf("%s #%d", row[0], n)
			}
			assigned[key] = true
			for i := 1; i < len(row) && i < len(t.Columns); i++ {
				v, err := strconv.ParseFloat(strings.TrimSpace(row[i]), 64)
				if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				out = append(out, metricValue{
					name:  t.Title + " | " + key + " | " + t.Columns[i],
					value: v,
				})
			}
		}
	}
	return out
}

// tCrit95 holds two-sided 95% Student's t critical values by degrees of
// freedom (index 1..30); larger df use the normal approximation.
var tCrit95 = [...]float64{0,
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func ci95(std float64, n int) float64 {
	if n < 2 {
		return 0
	}
	df := n - 1
	t := 1.960
	if df < len(tCrit95) {
		t = tCrit95[df]
	}
	return t * std / math.Sqrt(float64(n))
}
