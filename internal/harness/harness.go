package harness

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
)

// Job is one experiment execution: an experiment id plus the full run
// configuration (seed, scale, knobs).
type Job struct {
	ExperimentID string      `json:"experiment"`
	Config       core.Config `json:"config"`
}

// JobResult pairs a job with its outcome. Exactly one of Result and Err is
// set. Elapsed is wall-clock time for this run only; it is deliberately
// excluded from marshalled output so aggregates stay byte-reproducible.
type JobResult struct {
	Job     Job           `json:"job"`
	Result  *core.Result  `json:"result,omitempty"`
	Err     error         `json:"-"`
	Elapsed time.Duration `json:"-"`
}

// Runner executes experiment jobs on a bounded worker pool.
type Runner struct {
	// Registry resolves experiment ids to implementations.
	Registry *core.Registry
	// Workers bounds concurrency; <=0 means GOMAXPROCS.
	Workers int
	// OnResult, when set, is called once per completed job with its
	// index into the job list. Calls are serialized (never concurrent)
	// but arrive in completion order, not job order — consumers that
	// stream output should buffer until their next index is complete.
	OnResult func(i int, r JobResult)

	mu sync.Mutex
}

func (r *Runner) workers(jobs int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes all jobs and returns their results in job order, regardless
// of worker count or completion order.
func (r *Runner) Run(jobs []Job) []JobResult {
	out := make([]JobResult, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := r.workers(len(jobs)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = r.runOne(jobs[i])
				if r.OnResult != nil {
					r.mu.Lock()
					r.OnResult(i, out[i])
					r.mu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

func (r *Runner) runOne(j Job) JobResult {
	// core.Config.WithDefaults remaps seed 0 to 1 and scale <= 0 to 1;
	// letting either through would silently duplicate a replication or
	// mislabel a group, corrupting aggregate statistics — reject here
	// where every job passes. NaN/Inf scales fail the > 0 / finite test.
	if j.Config.Seed < 1 {
		return JobResult{Job: j, Err: fmt.Errorf(
			"harness: job seed %d must be >= 1 (seed 0 would silently rerun seed 1)", j.Config.Seed)}
	}
	if !(j.Config.Scale > 0) || math.IsInf(j.Config.Scale, 0) {
		return JobResult{Job: j, Err: fmt.Errorf(
			"harness: job scale %g must be a finite positive number", j.Config.Scale)}
	}
	start := time.Now()
	res, err := r.Registry.Run(j.ExperimentID, j.Config)
	return JobResult{Job: j, Result: res, Err: err, Elapsed: time.Since(start)}
}

// RunParallel runs jobs against reg with the given worker count (<=0 means
// GOMAXPROCS) and returns results in job order.
func RunParallel(reg *core.Registry, jobs []Job, workers int) []JobResult {
	r := Runner{Registry: reg, Workers: workers}
	return r.Run(jobs)
}
