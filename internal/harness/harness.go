package harness

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Job is one experiment execution: an experiment id plus the full run
// configuration (seed, scale, knobs).
type Job struct {
	ExperimentID string      `json:"experiment"`
	Config       core.Config `json:"config"`
}

// JobResult pairs a job with its outcome. Exactly one of Result and Err is
// set. Elapsed is wall-clock time for this run only; it and the Host
// sample are deliberately excluded from marshalled output so aggregates
// stay byte-reproducible — host measurements are machine facts, not run
// facts.
type JobResult struct {
	Job     Job           `json:"job"`
	Result  *core.Result  `json:"result,omitempty"`
	Err     error         `json:"-"`
	Elapsed time.Duration `json:"-"`
	// Host carries the run's host-resource sample when the Runner has
	// SampleHost set; nil otherwise.
	Host *obs.HostSample `json:"-"`
}

// Runner executes experiment jobs on a bounded worker pool.
type Runner struct {
	// Registry resolves experiment ids to implementations.
	Registry *core.Registry
	// Workers bounds concurrency; <=0 means GOMAXPROCS.
	Workers int
	// OnResult, when set, is called once per completed job with its
	// index into the job list. Calls are serialized (never concurrent)
	// but arrive in completion order, not job order — consumers that
	// stream output should buffer until their next index is complete.
	OnResult func(i int, r JobResult)
	// SampleHost, when set, attaches an obs.HostSample (wall time, live
	// heap, allocation deltas) to every JobResult. With parallel workers
	// the process-wide deltas include neighbouring runs; samples are
	// indicative, never part of deterministic output.
	SampleHost bool
	// ProfileDir, when non-empty, writes per-job CPU and heap profiles
	// (<experiment>-s<seed>.cpu.pprof / .heap.pprof) into the directory.
	// CPU profiling is process-global, so profiled jobs serialize on an
	// internal lock: use a single worker or expect reduced parallelism
	// when profiling.
	ProfileDir string

	mu sync.Mutex
}

// profileMu serializes pprof capture across all Runners in the process:
// pprof.StartCPUProfile is process-global and fails if a profile is
// already active.
var profileMu sync.Mutex

func (r *Runner) workers(jobs int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes all jobs and returns their results in job order, regardless
// of worker count or completion order. It is RunContext with a background
// context: nothing cancels the batch.
func (r *Runner) Run(jobs []Job) []JobResult {
	return r.RunContext(context.Background(), jobs)
}

// RunContext executes all jobs and returns their results in job order,
// regardless of worker count or completion order. Cancellation is checked
// between jobs: once ctx is done, jobs that have not started yet complete
// immediately with ctx's error as their JobResult.Err, while jobs already
// running finish normally (experiments are deterministic simulations with
// no cancellation points of their own). The returned slice always has one
// entry per job, so aggregation over a cancelled batch stays well formed.
func (r *Runner) RunContext(ctx context.Context, jobs []Job) []JobResult {
	out := make([]JobResult, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := r.workers(len(jobs)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					out[i] = JobResult{Job: jobs[i], Err: fmt.Errorf("harness: run cancelled: %w", err)}
				} else {
					out[i] = r.runOne(jobs[i])
				}
				if r.OnResult != nil {
					r.mu.Lock()
					r.OnResult(i, out[i])
					r.mu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

func (r *Runner) runOne(j Job) JobResult {
	// core.Config.WithDefaults remaps seed 0 to 1 and scale <= 0 to 1;
	// letting either through would silently duplicate a replication or
	// mislabel a group, corrupting aggregate statistics — reject here
	// where every job passes. NaN/Inf scales fail the > 0 / finite test.
	if j.Config.Seed < 1 {
		return JobResult{Job: j, Err: fmt.Errorf(
			"harness: job seed %d must be >= 1 (seed 0 would silently rerun seed 1)", j.Config.Seed)}
	}
	if !(j.Config.Scale > 0) || math.IsInf(j.Config.Scale, 0) {
		return JobResult{Job: j, Err: fmt.Errorf(
			"harness: job scale %g must be a finite positive number", j.Config.Scale)}
	}
	var watch *obs.HostWatch
	if r.SampleHost {
		watch = obs.StartHostWatch()
	}
	start := time.Now() //decentlint:allow nondeterm host-side wall timing rides on JobResult.Elapsed, never on deterministic output
	var res *core.Result
	var err error
	if r.ProfileDir != "" {
		res, err = r.runProfiled(j)
	} else {
		res, err = r.Registry.Run(j.ExperimentID, j.Config)
	}
	out := JobResult{Job: j, Result: res, Err: err, Elapsed: time.Since(start)} //decentlint:allow nondeterm host-side wall timing rides on JobResult.Elapsed, never on deterministic output
	if watch != nil {
		s := watch.Sample()
		out.Host = &s
	}
	return out
}

// runProfiled wraps one run in CPU and heap profile capture. Profile
// failures fail the job: a requested-but-missing profile is worse than a
// loud error.
func (r *Runner) runProfiled(j Job) (*core.Result, error) {
	profileMu.Lock()
	defer profileMu.Unlock()
	stem := filepath.Join(r.ProfileDir, fmt.Sprintf("%s-s%d", strings.ToUpper(j.ExperimentID), j.Config.Seed))
	cpuF, err := os.Create(stem + ".cpu.pprof")
	if err != nil {
		return nil, fmt.Errorf("harness: create cpu profile: %w", err)
	}
	defer cpuF.Close()
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		return nil, fmt.Errorf("harness: start cpu profile: %w", err)
	}
	res, runErr := r.Registry.Run(j.ExperimentID, j.Config)
	pprof.StopCPUProfile()
	heapF, err := os.Create(stem + ".heap.pprof")
	if err != nil {
		return nil, fmt.Errorf("harness: create heap profile: %w", err)
	}
	defer heapF.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(heapF); err != nil {
		return nil, fmt.Errorf("harness: write heap profile: %w", err)
	}
	return res, runErr
}

// RunParallel runs jobs against reg with the given worker count (<=0 means
// GOMAXPROCS) and returns results in job order.
func RunParallel(reg *core.Registry, jobs []Job, workers int) []JobResult {
	return RunParallelContext(context.Background(), reg, jobs, workers)
}

// RunParallelContext is RunParallel with cancellation: jobs not yet
// started when ctx is done complete immediately with ctx's error (see
// Runner.RunContext).
func RunParallelContext(ctx context.Context, reg *core.Registry, jobs []Job, workers int) []JobResult {
	r := Runner{Registry: reg, Workers: workers}
	return r.RunContext(ctx, jobs)
}
