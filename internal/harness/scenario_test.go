package harness

import (
	"testing"

	"repro/internal/core"
)

// TestScenarioKeyMatchesGroups checks the exported key round-trips: a
// job built from (id, scale, params) aggregates into a group whose Key
// equals ScenarioKey of the same triple, for canonical and non-canonical
// id spellings alike.
func TestScenarioKeyMatchesGroups(t *testing.T) {
	params := map[string]float64{"e03.lookups": 100}
	j := Job{ExperimentID: "e03", Config: core.Config{Seed: 2, Scale: 0.5, Params: params}}
	got := groupKey(j)
	if want := ScenarioKey("E03", 0.5, params); got != want {
		t.Errorf("groupKey = %q, ScenarioKey = %q", got, want)
	}
	g := Group{ExperimentID: "E03", Scale: 0.5, Params: ParamLabel(params)}
	if g.Key() != got {
		t.Errorf("Group.Key = %q, want %q", g.Key(), got)
	}
}

// TestHeadlinePrefersVaryingMetric pins the headline-selection rule the
// report and drift exports share: first varying metric, else the first
// metric, else none.
func TestHeadlinePrefersVaryingMetric(t *testing.T) {
	g := Group{Metrics: []MetricAgg{
		{Name: "constant", Mean: 1},
		{Name: "varying", Mean: 2, Std: 0.5},
	}}
	m, ok := g.Headline()
	if !ok || m.Name != "varying" {
		t.Errorf("Headline = %+v, %v; want the varying metric", m, ok)
	}

	g = Group{Metrics: []MetricAgg{{Name: "a"}, {Name: "b"}}}
	m, ok = g.Headline()
	if !ok || m.Name != "a" {
		t.Errorf("Headline = %+v, %v; want the first metric", m, ok)
	}

	if _, ok := (Group{}).Headline(); ok {
		t.Error("empty group should have no headline")
	}
}
