package harness

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// JSON renders the report as indented JSON. Field order is fixed by the
// struct definitions and group/metric order by the job list, so equal
// sweeps encode byte-identically regardless of worker count.
func (rep *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// CSV renders the report as one long-form CSV: a row per aggregated
// metric (kind=metric), per shape-check vote (kind=check), and per run
// error (kind=error), carrying the scenario key columns so the file
// loads directly into analysis tools and errored runs stay visible.
func (rep *Report) CSV() string {
	t := metrics.NewTable("",
		"experiment", "scale", "params", "replications", "kind", "name",
		"n", "mean", "stddev", "ci95", "min", "max", "passes", "pass_rate", "verdict")
	// CSV is the machine-readable artifact: render losslessly (unlike
	// the %.6g human text) so small cross-seed spread survives analysis.
	for _, g := range rep.Groups {
		scale := csvFloat(g.Scale)
		for _, e := range g.Errors {
			t.AddRow(g.ExperimentID, scale, g.Params,
				fmt.Sprint(g.Replications), "error", e,
				"", "", "", "", "", "", "", "", "")
		}
		for _, m := range g.Metrics {
			t.AddRow(g.ExperimentID, scale, g.Params,
				fmt.Sprint(g.Replications), "metric", m.Name,
				fmt.Sprint(m.N), csvFloat(m.Mean), csvFloat(m.Std),
				csvFloat(m.CI95), csvFloat(m.Min), csvFloat(m.Max),
				"", "", "")
		}
		for _, c := range g.Checks {
			t.AddRow(g.ExperimentID, scale, g.Params,
				fmt.Sprint(g.Replications), "check", c.Name,
				fmt.Sprint(c.N), "", "", "", "", "",
				fmt.Sprint(c.Passes), csvFloat(c.PassRate), fmt.Sprint(c.Verdict))
		}
	}
	return t.CSV()
}

// csvFloat renders a float losslessly and canonically for CSV export.
func csvFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// String renders the report as human-readable text: one block per
// scenario with its replication count, metric summaries and check votes.
func (rep *Report) String() string {
	var b strings.Builder
	for i, g := range rep.Groups {
		if i > 0 {
			b.WriteByte('\n')
		}
		head := fmt.Sprintf("=== %s scale=%s", g.ExperimentID, formatFloat(g.Scale))
		if g.Params != "" {
			head += " " + g.Params
		}
		fmt.Fprintf(&b, "%s (%d replications) ===\n", head, g.Replications)
		if g.Title != "" {
			fmt.Fprintf(&b, "%s\n", g.Title)
		}
		for _, e := range g.Errors {
			fmt.Fprintf(&b, "ERROR %s\n", e)
		}
		t := metrics.NewTable("", "metric", "n", "mean", "stddev", "ci95", "min", "max")
		for _, m := range g.Metrics {
			t.AddRow(m.Name, fmt.Sprint(m.N), formatFloat(m.Mean),
				formatFloat(m.Std), formatFloat(m.CI95),
				formatFloat(m.Min), formatFloat(m.Max))
		}
		if len(g.Metrics) > 0 {
			b.WriteString(t.String())
		}
		for _, c := range g.Checks {
			mark := "PASS"
			if !c.Verdict {
				mark = "FAIL"
			}
			fmt.Fprintf(&b, "[%s] %s: %d/%d seeds\n", mark, c.Name, c.Passes, c.N)
		}
		verdict := "NOT REPRODUCED"
		if g.Reproduced {
			verdict = "REPRODUCED"
		}
		// Votes only count runs that completed; say so when some errored.
		voted := g.Replications - len(g.Errors)
		if len(g.Errors) > 0 {
			fmt.Fprintf(&b, "verdict: %s (majority vote over %d of %d seeds; %d errored)\n",
				verdict, voted, g.Replications, len(g.Errors))
		} else {
			fmt.Fprintf(&b, "verdict: %s (majority vote over %d seeds)\n", verdict, voted)
		}
	}
	return b.String()
}

// formatFloat renders a float compactly for human-readable text output.
func formatFloat(v float64) string {
	return fmt.Sprintf("%.6g", v)
}
