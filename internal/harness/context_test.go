package harness

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestRunContextCancelled pins the cancellation contract: once the
// context is done, unstarted jobs complete immediately with the context
// error, and the result slice still has one entry per job so aggregation
// stays well formed.
func TestRunContextCancelled(t *testing.T) {
	reg, _ := core.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []Job{
		{ExperimentID: "E01", Config: core.Config{Seed: 1, Scale: 1}},
		{ExperimentID: "E01", Config: core.Config{Seed: 2, Scale: 1}},
	}
	r := Runner{Registry: reg, Workers: 2}
	out := r.RunContext(ctx, jobs)
	if len(out) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(out), len(jobs))
	}
	for i, jr := range out {
		if jr.Err == nil || !strings.Contains(jr.Err.Error(), "cancelled") {
			t.Errorf("job %d: err = %v, want cancellation", i, jr.Err)
		}
		if jr.Job.Config.Seed != jobs[i].Config.Seed {
			t.Errorf("job %d: result out of order", i)
		}
	}
	// Cancelled runs aggregate as errored replications, not a panic.
	rep := Aggregate(out)
	errs := 0
	for _, g := range rep.Groups {
		errs += len(g.Errors)
	}
	if errs != len(jobs) {
		t.Errorf("aggregate holds %d errors, want %d", errs, len(jobs))
	}
}

// TestRunParallelContextBackground checks the wrapper equivalence: Run
// and RunContext(background) produce identical outcomes.
func TestRunParallelContextBackground(t *testing.T) {
	reg, _ := core.NewRegistry()
	jobs := []Job{{ExperimentID: "E01", Config: core.Config{Seed: 0, Scale: 1}}}
	a := RunParallel(reg, jobs, 1)
	b := RunParallelContext(context.Background(), reg, jobs, 1)
	if (a[0].Err == nil) != (b[0].Err == nil) {
		t.Errorf("Run and RunContext disagree: %v vs %v", a[0].Err, b[0].Err)
	}
}
