package harness

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

// fakeExp is a deterministic experiment for harness-level tests: its one
// metric is seed*k (k a knob), its one check passes on odd seeds, and it
// can be told to error on a specific seed.
type fakeExp struct {
	id      string
	errSeed int64
}

func (f *fakeExp) ID() string    { return f.id }
func (f *fakeExp) Title() string { return "fake " + f.id }
func (f *fakeExp) Claim() string { return "claim for " + f.id }

func (f *fakeExp) Run(cfg core.Config) (*core.Result, error) {
	if f.errSeed != 0 && cfg.Seed == f.errSeed {
		return nil, fmt.Errorf("boom at seed %d", cfg.Seed)
	}
	r := &core.Result{ID: f.id, Title: f.Title(), Claim: f.Claim()}
	t := metrics.NewTable("tab", "row", "value", "note")
	t.AddRowf("a", float64(cfg.Seed)*cfg.Param("k", 1), "not a number")
	r.Tables = append(r.Tables, t)
	r.AddCheck(cfg.Seed%2 == 1, "odd-seed", "seed %d", cfg.Seed)
	return r, nil
}

func fakeRegistry(t *testing.T, exps ...core.Experiment) *core.Registry {
	t.Helper()
	reg, err := core.NewRegistry(exps...)
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	return reg
}

func TestSweepJobsOrder(t *testing.T) {
	s := Sweep{
		Experiments: []string{"X1", "X2"},
		Seeds:       []int64{1, 2},
		Scales:      []float64{0.5, 1},
		Params:      map[string][]float64{"k": {10, 20}},
	}
	jobs := s.Jobs()
	if len(jobs) != 2*2*2*2 {
		t.Fatalf("len(jobs) = %d, want 16", len(jobs))
	}
	// Seeds vary innermost; experiments outermost.
	if jobs[0].ExperimentID != "X1" || jobs[0].Config.Seed != 1 || jobs[1].Config.Seed != 2 {
		t.Fatalf("unexpected leading jobs: %+v", jobs[:2])
	}
	if jobs[0].Config.Params["k"] != 10 || jobs[2].Config.Params["k"] != 20 {
		t.Fatalf("knob crossing wrong: %+v", jobs[:4])
	}
	if jobs[8].ExperimentID != "X2" {
		t.Fatalf("experiment should be outermost, job 8 = %+v", jobs[8])
	}
}

func TestSweepKnobAppliesOnlyToItsExperiment(t *testing.T) {
	s := Sweep{
		Experiments: []string{"E03", "E06"},
		Seeds:       []int64{1, 2},
		Params:      map[string][]float64{"e03.lookups": {100, 200}},
	}
	jobs := s.Jobs()
	// E03 crosses the knob (2 values x 2 seeds); E06 gets the bare grid.
	if len(jobs) != 4+2 {
		t.Fatalf("len(jobs) = %d, want 6", len(jobs))
	}
	for _, j := range jobs {
		hasKnob := j.Config.Params != nil
		if j.ExperimentID == "E06" && hasKnob {
			t.Fatalf("E06 job should not carry e03 knob: %+v", j)
		}
		if j.ExperimentID == "E03" && !hasKnob {
			t.Fatalf("E03 job should carry the knob: %+v", j)
		}
	}
}

func TestParseSeedsRangeCap(t *testing.T) {
	// The cap applies to ranges, and to single entries past a full range.
	for _, bad := range []string{"1..9223372036854775807", "1..2000000", "1..1048576,9999999"} {
		if _, err := ParseSeeds(bad); err == nil {
			t.Errorf("ParseSeeds(%q) should hit the cap", bad)
		}
	}
}

func TestSweepJobsDefaults(t *testing.T) {
	jobs := Sweep{Experiments: []string{"X1"}}.Jobs()
	if len(jobs) != 1 || jobs[0].Config.Seed != 1 || jobs[0].Config.Scale != 1 {
		t.Fatalf("default expansion wrong: %+v", jobs)
	}
}

func TestParseSeeds(t *testing.T) {
	got, err := ParseSeeds("1..4")
	if err != nil || !reflect.DeepEqual(got, []int64{1, 2, 3, 4}) {
		t.Fatalf("ParseSeeds(1..4) = %v, %v", got, err)
	}
	got, err = ParseSeeds("3,7..9, 42")
	if err != nil || !reflect.DeepEqual(got, []int64{3, 7, 8, 9, 42}) {
		t.Fatalf("ParseSeeds mixed = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "5..1", "1..x", ",", "1,,2", "0", "0..2", "-1", "1,1..5", "2,2"} {
		if _, err := ParseSeeds(bad); err == nil {
			t.Errorf("ParseSeeds(%q) should fail", bad)
		}
	}
}

func TestParseScales(t *testing.T) {
	got, err := ParseScales("0.25, 0.5,1")
	if err != nil || !reflect.DeepEqual(got, []float64{0.25, 0.5, 1}) {
		t.Fatalf("ParseScales = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-1", "x", "1,", "0.5,0.5", "NaN", "Inf", "-Inf"} {
		if _, err := ParseScales(bad); err == nil {
			t.Errorf("ParseScales(%q) should fail", bad)
		}
	}
}

func TestParseParam(t *testing.T) {
	name, vals, err := ParseParam("e03.lookups=100, 200")
	if err != nil || name != "e03.lookups" || !reflect.DeepEqual(vals, []float64{100, 200}) {
		t.Fatalf("ParseParam = %q, %v, %v", name, vals, err)
	}
	for _, bad := range []string{"", "=1", "k", "k=", "k=a", "k=1,1", "k=NaN", "k=Inf", "k=NaN,NaN"} {
		if _, _, err := ParseParam(bad); err == nil {
			t.Errorf("ParseParam(%q) should fail", bad)
		}
	}
}

func TestParamLabelCanonical(t *testing.T) {
	label := ParamLabel(map[string]float64{"b": 2, "a": 0.5})
	if label != "a=0.5,b=2" {
		t.Fatalf("ParamLabel = %q", label)
	}
	if ParamLabel(nil) != "" {
		t.Fatalf("ParamLabel(nil) should be empty")
	}
}

func TestRunnerPreservesJobOrder(t *testing.T) {
	reg := fakeRegistry(t, &fakeExp{id: "X1"}, &fakeExp{id: "X2"})
	jobs := Sweep{Experiments: []string{"X1", "X2"}, Seeds: []int64{1, 2, 3, 4, 5}}.Jobs()
	results := RunParallel(reg, jobs, 4)
	if len(results) != len(jobs) {
		t.Fatalf("len(results) = %d, want %d", len(results), len(jobs))
	}
	for i, jr := range results {
		if jr.Job.ExperimentID != jobs[i].ExperimentID {
			t.Fatalf("result %d out of order: %+v", i, jr.Job)
		}
		if jr.Job.Config.Seed != jobs[i].Config.Seed {
			t.Fatalf("result %d has seed %d, want %d", i, jr.Job.Config.Seed, jobs[i].Config.Seed)
		}
	}
}

// TestDeterminismAcrossParallelism is the harness contract: the same sweep
// aggregates byte-identically at any worker count.
func TestDeterminismAcrossParallelism(t *testing.T) {
	reg := fakeRegistry(t, &fakeExp{id: "X1"}, &fakeExp{id: "X2"})
	sweep := Sweep{
		Experiments: []string{"X1", "X2"},
		Seeds:       []int64{1, 2, 3, 4, 5, 6, 7, 8},
		Scales:      []float64{0.5, 1},
		Params:      map[string][]float64{"k": {1, 3}},
	}
	var want []byte
	for _, workers := range []int{1, 2, 8, 32} {
		rep := Aggregate(RunParallel(reg, sweep.Jobs(), workers))
		got, err := rep.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d aggregate differs from workers=1", workers)
		}
	}
}

// TestRealRegistryDeterminism drives the production registry through the
// runner at two worker counts and requires byte-identical aggregates.
func TestRealRegistryDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("real experiments are slow; skipped with -short")
	}
	reg, err := experiments.Registry()
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	sweep := Sweep{
		Experiments: []string{"E01", "E11"},
		Seeds:       []int64{1, 2, 3},
		Scales:      []float64{0.2},
	}
	seq, err := Aggregate(RunParallel(reg, sweep.Jobs(), 1)).JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	par, err := Aggregate(RunParallel(reg, sweep.Jobs(), 8)).JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel aggregate differs from sequential")
	}
}

func TestAggregateMath(t *testing.T) {
	reg := fakeRegistry(t, &fakeExp{id: "X1"})
	jobs := Sweep{Experiments: []string{"X1"}, Seeds: []int64{1, 2, 3, 4}}.Jobs()
	rep := Aggregate(RunParallel(reg, jobs, 2))
	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(rep.Groups))
	}
	g := rep.Groups[0]
	if g.Replications != 4 || len(g.Metrics) != 1 {
		t.Fatalf("group shape wrong: %+v", g)
	}
	m := g.Metrics[0]
	if m.Name != "tab | a | value" {
		t.Fatalf("metric name = %q", m.Name)
	}
	// Values are the seeds 1,2,3,4.
	if m.N != 4 || m.Mean != 2.5 || m.Min != 1 || m.Max != 4 {
		t.Fatalf("metric stats wrong: %+v", m)
	}
	wantStd := math.Sqrt(5.0 / 3.0)
	if math.Abs(m.Std-wantStd) > 1e-12 {
		t.Fatalf("stddev = %g, want %g", m.Std, wantStd)
	}
	wantCI := 3.182 * wantStd / 2 // t(df=3) * std / sqrt(4)
	if math.Abs(m.CI95-wantCI) > 1e-9 {
		t.Fatalf("ci95 = %g, want %g", m.CI95, wantCI)
	}
}

func TestAggregateMajorityVote(t *testing.T) {
	reg := fakeRegistry(t, &fakeExp{id: "X1"})
	// Seeds 1,2,3: odd-seed passes 2/3 -> majority verdict true.
	rep := Aggregate(RunParallel(reg, Sweep{Experiments: []string{"X1"}, Seeds: []int64{1, 2, 3}}.Jobs(), 2))
	c := rep.Groups[0].Checks[0]
	if c.Passes != 2 || c.N != 3 || !c.Verdict || !rep.Groups[0].Reproduced {
		t.Fatalf("majority vote wrong: %+v", c)
	}
	// Seeds 1..4: passes 2/4 is not a strict majority -> verdict false.
	rep = Aggregate(RunParallel(reg, Sweep{Experiments: []string{"X1"}, Seeds: []int64{1, 2, 3, 4}}.Jobs(), 2))
	c = rep.Groups[0].Checks[0]
	if c.Passes != 2 || c.N != 4 || c.Verdict || rep.Groups[0].Reproduced {
		t.Fatalf("tie should fail the vote: %+v", c)
	}
}

// metricExp records an explicit full-precision metric whose cross-seed
// spread is far below table-rendering precision (%.4g).
type metricExp struct{}

func (metricExp) ID() string    { return "XM" }
func (metricExp) Title() string { return "explicit metrics" }
func (metricExp) Claim() string { return "claim" }

func (metricExp) Run(cfg core.Config) (*core.Result, error) {
	r := &core.Result{ID: "XM", Title: "explicit metrics"}
	v := 123456 + float64(cfg.Seed)*1e-3
	t := metrics.NewTable("tab", "row", "value")
	t.AddRowf("a", v)
	r.Tables = append(r.Tables, t)
	r.AddMetric("exact", v)
	r.AddCheck(true, "ok", "fine")
	return r, nil
}

func TestExplicitMetricsKeepFullPrecision(t *testing.T) {
	reg := fakeRegistry(t, metricExp{})
	rep := Aggregate(RunParallel(reg, Sweep{Experiments: []string{"XM"}, Seeds: []int64{1, 2, 3}}.Jobs(), 2))
	g := rep.Groups[0]
	// Explicit metric first, then the table-derived one.
	if len(g.Metrics) != 2 || g.Metrics[0].Name != "exact" {
		t.Fatalf("metrics = %+v", g.Metrics)
	}
	if g.Metrics[0].Std == 0 {
		t.Fatal("explicit metric lost its cross-seed spread")
	}
	// The %.4g-rendered table cell collapses the same spread to zero —
	// the documented reason explicit metrics exist.
	if g.Metrics[1].Std != 0 {
		t.Fatalf("expected table-derived metric to quantize to stddev 0, got %g", g.Metrics[1].Std)
	}
	// CSV export must keep the full precision (not %.6g).
	if csv := rep.CSV(); !strings.Contains(csv, "123456.002") {
		t.Fatalf("csv lost metric precision:\n%s", csv)
	}
}

// dupRowExp emits a table whose first column repeats across rows (as E09
// does with alpha at different gammas); distinct rows must not merge.
type dupRowExp struct{}

func (dupRowExp) ID() string    { return "XD" }
func (dupRowExp) Title() string { return "dup rows" }
func (dupRowExp) Claim() string { return "claim" }

func (dupRowExp) Run(cfg core.Config) (*core.Result, error) {
	r := &core.Result{ID: "XD", Title: "dup rows"}
	t := metrics.NewTable("tab", "alpha", "revenue")
	t.AddRowf("0.3", 1.0)
	t.AddRowf("0.3", 100.0)
	r.Tables = append(r.Tables, t)
	r.AddCheck(true, "ok", "fine")
	return r, nil
}

func TestAggregateKeepsDuplicateRowKeysApart(t *testing.T) {
	reg := fakeRegistry(t, dupRowExp{})
	rep := Aggregate(RunParallel(reg, Sweep{Experiments: []string{"XD"}, Seeds: []int64{1, 2}}.Jobs(), 2))
	g := rep.Groups[0]
	if len(g.Metrics) != 2 {
		t.Fatalf("metrics = %d, want 2 (rows merged?): %+v", len(g.Metrics), g.Metrics)
	}
	first, second := g.Metrics[0], g.Metrics[1]
	if first.Name != "tab | 0.3 | revenue" || second.Name != "tab | 0.3 #2 | revenue" {
		t.Fatalf("metric names = %q, %q", first.Name, second.Name)
	}
	if first.N != 2 || first.Mean != 1 || second.N != 2 || second.Mean != 100 {
		t.Fatalf("per-row stats wrong: %+v", g.Metrics)
	}
}

func TestRunnerRejectsSeedZero(t *testing.T) {
	reg := fakeRegistry(t, &fakeExp{id: "X1"})
	results := RunParallel(reg, []Job{{ExperimentID: "X1", Config: core.Config{Seed: 0, Scale: 1}}}, 1)
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "seed 0") {
		t.Fatalf("seed 0 job should error, got %+v", results[0])
	}
	if results[0].Result != nil {
		t.Fatal("seed 0 job should not produce a result")
	}
}

func TestRunnerRejectsBadScale(t *testing.T) {
	reg := fakeRegistry(t, &fakeExp{id: "X1"})
	for _, scale := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		results := RunParallel(reg, []Job{{ExperimentID: "X1", Config: core.Config{Seed: 1, Scale: scale}}}, 1)
		if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "finite positive") {
			t.Fatalf("scale %g job should error, got %+v", scale, results[0])
		}
	}
}

func TestAggregateCollectsErrors(t *testing.T) {
	reg := fakeRegistry(t, &fakeExp{id: "X1", errSeed: 2})
	rep := Aggregate(RunParallel(reg, Sweep{Experiments: []string{"X1"}, Seeds: []int64{1, 2, 3}}.Jobs(), 3))
	g := rep.Groups[0]
	if g.Replications != 3 || len(g.Errors) != 1 {
		t.Fatalf("error collection wrong: %+v", g)
	}
	if !strings.Contains(g.Errors[0], "seed 2") || !strings.Contains(g.Errors[0], "boom") {
		t.Fatalf("error text = %q", g.Errors[0])
	}
	if g.Metrics[0].N != 2 {
		t.Fatalf("failed run leaked into metrics: %+v", g.Metrics[0])
	}
	// The verdict line must not claim errored seeds voted.
	if text := rep.String(); !strings.Contains(text, "majority vote over 2 of 3 seeds; 1 errored") {
		t.Fatalf("verdict line misstates the vote:\n%s", text)
	}
}

func TestReportCSV(t *testing.T) {
	reg := fakeRegistry(t, &fakeExp{id: "X1"})
	rep := Aggregate(RunParallel(reg, Sweep{Experiments: []string{"X1"}, Seeds: []int64{1, 2, 3}}.Jobs(), 1))
	csv := rep.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// Header + 1 metric row + 1 check row.
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "experiment,scale,params,replications,kind,name") {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.Contains(csv, "metric") || !strings.Contains(csv, "check") {
		t.Fatalf("csv missing kinds:\n%s", csv)
	}
}

func TestReportCSVIncludesErrors(t *testing.T) {
	reg := fakeRegistry(t, &fakeExp{id: "X1", errSeed: 2})
	rep := Aggregate(RunParallel(reg, Sweep{Experiments: []string{"X1"}, Seeds: []int64{1, 2}}.Jobs(), 1))
	csv := rep.CSV()
	if !strings.Contains(csv, "error") || !strings.Contains(csv, "boom") {
		t.Fatalf("csv must carry errored runs:\n%s", csv)
	}
}
