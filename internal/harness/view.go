package harness

import "repro/internal/core"

// GroupView is the report-oriented aggregation view of one scenario: the
// cross-seed statistics of Group plus the full artifacts (tables, figures,
// checks with measured detail) of one representative replication. The
// representative is the successful run with the lowest seed, a choice that
// depends only on the job list — never on worker count or completion
// order — so report rendering stays byte-deterministic.
type GroupView struct {
	Group
	// Representative is the lowest-seed successful result, or nil when
	// every replication errored.
	Representative *core.Result
	// RepresentativeSeed is the seed Representative was produced by
	// (0 when Representative is nil).
	RepresentativeSeed int64
}

// AggregateView collapses job results into report-oriented group views:
// the same grouping and ordering as Aggregate, with each group carrying
// its representative result for artifact rendering.
func AggregateView(results []JobResult) []GroupView {
	rep := Aggregate(results)
	type pick struct {
		res  *core.Result
		seed int64
	}
	picks := make(map[string]pick)
	for _, jr := range results {
		if jr.Err != nil || jr.Result == nil {
			continue
		}
		key := groupKey(jr.Job)
		if cur, ok := picks[key]; !ok || jr.Job.Config.Seed < cur.seed {
			picks[key] = pick{res: jr.Result, seed: jr.Job.Config.Seed}
		}
	}
	views := make([]GroupView, 0, len(rep.Groups))
	for _, g := range rep.Groups {
		v := GroupView{Group: g}
		if p, ok := picks[g.key()]; ok {
			v.Representative = p.res
			v.RepresentativeSeed = p.seed
		}
		views = append(views, v)
	}
	return views
}
