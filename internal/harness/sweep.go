package harness

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Sweep describes a grid of experiment runs: the cartesian product of
// experiment ids × scales × knob combinations × seeds. Zero-value fields
// take the single-run defaults (seeds {1}, scales {1}, no knobs), so a
// Sweep with only Experiments set reproduces today's `run` behavior.
type Sweep struct {
	// Experiments are the ids to run (e.g. "E03", "E06").
	Experiments []string
	// Seeds are the replication seeds per scenario.
	Seeds []int64
	// Scales are the workload scale factors to cross in.
	Scales []float64
	// Params maps knob names to the values to cross in (e.g.
	// "e03.lookups" -> {100, 200}). Experiments read knobs via
	// core.Config.Param; unset knobs keep their documented defaults.
	Params map[string][]float64
	// Shards is the intra-run worker count threaded into every job's
	// config. It is an execution knob like the runner's Workers — results
	// are identical at every value — so it is never crossed into the grid
	// (sweeping it would emit distinct groups with identical results).
	Shards int
}

// Jobs expands the grid into a deterministic job list: experiments
// outermost, then scales, then knob combinations (names sorted), then
// seeds innermost — so consecutive jobs replicate one scenario across
// seeds and aggregate groups come out in grid order.
//
// A knob whose prefix (the part before the first ".") names one of the
// sweep's experiments applies only to that experiment: crossing
// "e03.lookups" into E06's grid would just duplicate E06's scenario into
// identical groups. Knobs whose prefix matches no swept experiment are
// treated as global and crossed into every experiment's grid.
func (s Sweep) Jobs() []Job {
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	scales := s.Scales
	if len(scales) == 0 {
		scales = []float64{1}
	}
	var jobs []Job
	for _, id := range s.Experiments {
		combos := paramCombos(s.paramsFor(id))
		for _, scale := range scales {
			for _, params := range combos {
				for _, seed := range seeds {
					jobs = append(jobs, Job{
						ExperimentID: id,
						Config: core.Config{
							Seed:   seed,
							Scale:  scale,
							Params: params,
							Shards: s.Shards,
						},
					})
				}
			}
		}
	}
	return jobs
}

// KnobAppliesTo reports whether a knob name is owned by the given
// experiment id ("e03.lookups" applies to "E03"). Ownership is intrinsic
// to the name (core.KnobOwner), not to which experiments a sweep happens
// to include.
func KnobAppliesTo(name, id string) bool {
	return strings.EqualFold(core.KnobOwner(name), id)
}

// paramsFor filters the sweep's knobs down to those applicable to one
// experiment: its own knobs plus global (unowned) knobs. Knobs owned by
// other experiments are excluded; RunSweep-level validation rejects
// sweeps whose knobs' owners are not swept at all.
func (s Sweep) paramsFor(id string) map[string][]float64 {
	if len(s.Params) == 0 {
		return nil
	}
	out := make(map[string][]float64, len(s.Params))
	for name, vals := range s.Params {
		if core.KnobOwner(name) == "" || KnobAppliesTo(name, id) {
			out[name] = vals
		}
	}
	return out
}

// Validate rejects sweeps whose knobs are owned by an experiment the
// sweep does not include: such a knob would either silently vanish from
// the grid or silently duplicate scenarios, depending on expansion rules.
func (s Sweep) Validate() error {
	names := make([]string, 0, len(s.Params))
	for name := range s.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		owner := core.KnobOwner(name)
		if owner == "" {
			continue
		}
		swept := false
		for _, id := range s.Experiments {
			if strings.EqualFold(owner, id) {
				swept = true
				break
			}
		}
		if !swept {
			return fmt.Errorf("harness: knob %s applies to experiment %s, which is not among the selected experiments", name, owner)
		}
	}
	return nil
}

// paramCombos crosses the knob value lists into concrete assignments, in
// deterministic order (knob names sorted, values in declaration order). An
// empty map yields the single nil assignment.
func paramCombos(params map[string][]float64) []map[string]float64 {
	names := make([]string, 0, len(params))
	for name, vals := range params {
		if len(vals) > 0 {
			names = append(names, name) //decentlint:allow nondeterm names are sorted below before any order-sensitive use
		}
	}
	if len(names) == 0 {
		return []map[string]float64{nil}
	}
	sort.Strings(names)
	combos := []map[string]float64{{}}
	for _, name := range names {
		next := make([]map[string]float64, 0, len(combos)*len(params[name]))
		for _, base := range combos {
			for _, v := range params[name] {
				m := make(map[string]float64, len(base)+1)
				for k, bv := range base {
					m[k] = bv
				}
				m[name] = v
				next = append(next, m)
			}
		}
		combos = next
	}
	return combos
}

// ParamLabel renders a knob assignment canonically: names sorted, values
// in minimal notation, pairs joined by ",". Empty assignments render "".
func ParamLabel(params map[string]float64) string {
	if len(params) == 0 {
		return ""
	}
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, name+"="+strconv.FormatFloat(params[name], 'g', -1, 64))
	}
	return strings.Join(parts, ",")
}

// MaxSeeds bounds how many seeds one specification may expand to; a
// larger request is almost certainly a typo (e.g. "1..1000000000") and
// would allocate gigabytes before the first job ran.
const MaxSeeds = 1 << 20

// ParseSeeds parses a seed specification: comma-separated entries, each a
// single integer or an inclusive ascending range "lo..hi". Examples:
// "1..10", "3", "1,2,5..7". Seeds below 1 are rejected: core.Config maps
// seed 0 to 1, which would silently duplicate a replication. The expanded
// list is capped at MaxSeeds.
func ParseSeeds(spec string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("harness: empty seed entry in %q", spec)
		}
		lo, hi, isRange, err := parseRange(part)
		if err != nil {
			return nil, err
		}
		if lo < 1 {
			return nil, fmt.Errorf("harness: seed %d in %q must be >= 1", lo, part)
		}
		if !isRange {
			if len(out) >= MaxSeeds {
				return nil, fmt.Errorf("harness: seed spec expands past the %d-seed cap", MaxSeeds)
			}
			out = append(out, lo)
			continue
		}
		if hi < lo {
			return nil, fmt.Errorf("harness: descending seed range %q", part)
		}
		// lo >= 1 is already enforced, so hi-lo cannot overflow; this
		// also prevents the s++ wraparound a range ending at MaxInt64
		// would hit.
		if hi-lo >= MaxSeeds-int64(len(out)) {
			return nil, fmt.Errorf("harness: seed spec %q expands past the %d-seed cap", spec, MaxSeeds)
		}
		for s := lo; s <= hi; s++ {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("harness: no seeds in %q", spec)
	}
	// Duplicate seeds would be aggregated as independent replications,
	// biasing stddev/CI toward 0 — reject rather than silently dedup.
	seen := make(map[int64]bool, len(out))
	for _, s := range out {
		if seen[s] {
			return nil, fmt.Errorf("harness: duplicate seed %d in %q", s, spec)
		}
		seen[s] = true
	}
	return out, nil
}

func parseRange(part string) (lo, hi int64, isRange bool, err error) {
	if i := strings.Index(part, ".."); i >= 0 {
		lo, err = strconv.ParseInt(part[:i], 10, 64)
		if err != nil {
			return 0, 0, false, fmt.Errorf("harness: bad seed range %q", part)
		}
		hi, err = strconv.ParseInt(part[i+2:], 10, 64)
		if err != nil {
			return 0, 0, false, fmt.Errorf("harness: bad seed range %q", part)
		}
		return lo, hi, true, nil
	}
	lo, err = strconv.ParseInt(part, 10, 64)
	if err != nil {
		return 0, 0, false, fmt.Errorf("harness: bad seed %q", part)
	}
	return lo, 0, false, nil
}

// ParseScales parses a comma-separated list of positive scale factors,
// e.g. "0.25,0.5,1". Duplicates are rejected: repeated grid points merge
// into one aggregate group and double-count every seed.
func ParseScales(spec string) ([]float64, error) {
	var out []float64
	seen := make(map[float64]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return nil, fmt.Errorf("harness: bad scale %q", part)
		}
		if seen[v] {
			return nil, fmt.Errorf("harness: duplicate scale %q", part)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}

// ParseParam parses one knob specification "name=v1,v2,...", as accepted
// by decentsim's repeatable -set flag.
func ParseParam(spec string) (string, []float64, error) {
	name, vals, ok := strings.Cut(spec, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return "", nil, fmt.Errorf("harness: bad knob %q (want name=v1,v2)", spec)
	}
	var out []float64
	seen := make(map[float64]bool)
	for _, part := range strings.Split(vals, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		// NaN would also defeat the map-based duplicate check below
		// (NaN map keys never compare equal).
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return "", nil, fmt.Errorf("harness: bad knob value %q in %q", part, spec)
		}
		if seen[v] {
			return "", nil, fmt.Errorf("harness: duplicate knob value %q in %q", part, spec)
		}
		seen[v] = true
		out = append(out, v)
	}
	return name, out, nil
}
