package harness

import "testing"

func TestAggregateViewRepresentativeIsLowestSeed(t *testing.T) {
	reg := fakeRegistry(t, &fakeExp{id: "X1"})
	s := Sweep{
		Experiments: []string{"X1"},
		Seeds:       []int64{3, 1, 2},
		Params:      map[string][]float64{"k": {10, 20}},
	}
	views := AggregateView(RunParallel(reg, s.Jobs(), 4))
	if len(views) != 2 {
		t.Fatalf("len(views) = %d, want one view per knob value", len(views))
	}
	for _, v := range views {
		if v.Representative == nil {
			t.Fatalf("group %s %s has no representative", v.ExperimentID, v.Params)
		}
		if v.RepresentativeSeed != 1 {
			t.Errorf("group %s representative seed = %d, want lowest seed 1",
				v.Params, v.RepresentativeSeed)
		}
	}
	// fakeExp's table cell is seed*k: the representative must really be
	// the seed-1 run, not whichever replication finished first.
	if views[0].Representative.Tables[0].Rows[0][1] != "10" {
		t.Errorf("k=10 representative cell = %q, want seed-1 value \"10\"",
			views[0].Representative.Tables[0].Rows[0][1])
	}
	if views[1].Representative.Tables[0].Rows[0][1] != "20" {
		t.Errorf("k=20 representative cell = %q, want seed-1 value \"20\"",
			views[1].Representative.Tables[0].Rows[0][1])
	}
}

func TestAggregateViewAllErrored(t *testing.T) {
	reg := fakeRegistry(t, &fakeExp{id: "X1", errSeed: 5})
	s := Sweep{Experiments: []string{"X1"}, Seeds: []int64{5}}
	views := AggregateView(RunParallel(reg, s.Jobs(), 1))
	if len(views) != 1 {
		t.Fatalf("len(views) = %d, want 1", len(views))
	}
	if views[0].Representative != nil {
		t.Error("fully-errored group should have a nil representative")
	}
	if len(views[0].Errors) != 1 {
		t.Errorf("errors = %v, want the seed-5 failure", views[0].Errors)
	}
}

func TestAggregateViewSkipsErroredSeedForRepresentative(t *testing.T) {
	reg := fakeRegistry(t, &fakeExp{id: "X1", errSeed: 1})
	s := Sweep{Experiments: []string{"X1"}, Seeds: []int64{1, 2, 3}}
	views := AggregateView(RunParallel(reg, s.Jobs(), 2))
	if views[0].Representative == nil || views[0].RepresentativeSeed != 2 {
		t.Fatalf("representative seed = %d, want 2 (lowest successful)",
			views[0].RepresentativeSeed)
	}
}

// TestAggregateViewDeterministic shuffles completion order via worker
// counts and requires identical views.
func TestAggregateViewDeterministic(t *testing.T) {
	reg := fakeRegistry(t, &fakeExp{id: "X1"}, &fakeExp{id: "X2"})
	s := Sweep{Experiments: []string{"X1", "X2"}, Seeds: []int64{1, 2, 3, 4, 5}}
	base := AggregateView(RunParallel(reg, s.Jobs(), 1))
	for _, workers := range []int{2, 8} {
		got := AggregateView(RunParallel(reg, s.Jobs(), workers))
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d views, want %d", workers, len(got), len(base))
		}
		for i := range got {
			if got[i].RepresentativeSeed != base[i].RepresentativeSeed {
				t.Errorf("workers=%d view %d: representative seed %d != %d",
					workers, i, got[i].RepresentativeSeed, base[i].RepresentativeSeed)
			}
		}
	}
}
