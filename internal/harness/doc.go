// Package harness orchestrates experiment runs at parameter-sweep scale.
//
// The reproduction's experiments are deterministic and fully isolated —
// each run builds its own sim.Sim from the config seed — so replications
// and sweep points are trivially parallelizable. This package supplies the
// machinery the single-run core deliberately omits:
//
//   - Runner: a worker pool that fans a job list out across GOMAXPROCS
//     goroutines and returns results in job order, independent of
//     scheduling;
//   - Sweep: a grid type crossing experiment ids × seeds × scales × named
//     per-experiment knobs into a deterministic job list;
//   - Aggregate: collapses multi-seed replications of a scenario into
//     mean/stddev/95%-CI per metric and a majority-vote shape verdict;
//   - AggregateView: the report-oriented view of the same aggregation,
//     pairing each scenario's statistics with the artifacts (tables,
//     figures, check detail) of its lowest-seed replication so the report
//     generator can embed concrete output next to cross-seed votes;
//   - Report exporters: deterministic JSON and CSV, so sweep output is a
//     machine-readable artifact rather than a terminal transcript;
//   - ScenarioKey / Group.Key: the canonical scenario identity
//     (experiment + scale + knob assignment), so callers — the report's
//     sensitivity layer — can index aggregated output by the grid points
//     they submitted instead of collapsing knob values together;
//   - Group.Headline: the headline-metric selection rule (first varying
//     metric, else first) shared by the report matrix and the soak drift
//     export.
//
// Determinism contract: the same Sweep over the same registry yields a
// byte-identical Report.JSON() — and the same AggregateView — regardless
// of worker count.
package harness
