package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// BlockHeader is the hash-chained portion of a block.
type BlockHeader struct {
	// PrevHash links to the parent block (zero for genesis).
	PrevHash Hash
	// MerkleRoot commits to the block's transactions.
	MerkleRoot Hash
	// Time is the block's virtual timestamp.
	Time time.Duration
	// Difficulty is the expected number of hash evaluations to find this
	// block; cumulative difficulty ("work") selects the best chain.
	Difficulty float64
	// Nonce is the proof-of-work witness (abstract in simulation).
	Nonce uint64
}

// Hash returns the header's content hash.
func (h *BlockHeader) Hash() Hash {
	hash := sha256.New()
	hash.Write(h.PrevHash[:])
	hash.Write(h.MerkleRoot[:])
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(h.Time))
	binary.BigEndian.PutUint64(buf[8:16], uint64(h.Difficulty))
	binary.BigEndian.PutUint64(buf[16:], h.Nonce)
	hash.Write(buf[:])
	var out Hash
	copy(out[:], hash.Sum(nil))
	return out
}

// Block is a header plus its transactions.
type Block struct {
	Header BlockHeader
	Txs    []*Tx
}

// Hash returns the block's identity (the header hash).
func (b *Block) Hash() Hash { return b.Header.Hash() }

// Size returns the modelled wire size in bytes.
func (b *Block) Size() int {
	size := 88 // header + counts
	for _, tx := range b.Txs {
		size += tx.Size()
	}
	return size
}

// NewBlock assembles a block over the given parent with a correct Merkle
// root.
func NewBlock(prev Hash, txs []*Tx, at time.Duration, difficulty float64) *Block {
	ids := make([]TxID, len(txs))
	for i, tx := range txs {
		ids[i] = tx.ID()
	}
	return &Block{
		Header: BlockHeader{
			PrevHash:   prev,
			MerkleRoot: MerkleRoot(ids),
			Time:       at,
			Difficulty: difficulty,
		},
		Txs: txs,
	}
}

// CheckMerkle verifies the header's Merkle commitment matches the body.
func (b *Block) CheckMerkle() error {
	ids := make([]TxID, len(b.Txs))
	for i, tx := range b.Txs {
		ids[i] = tx.ID()
	}
	if MerkleRoot(ids) != b.Header.MerkleRoot {
		return errors.New("ledger: merkle root mismatch")
	}
	return nil
}

// blockNode is Chain's bookkeeping for one block.
type blockNode struct {
	block  *Block
	parent *blockNode
	height uint64
	work   float64 // cumulative difficulty
}

// Chain is a block tree with most-work tip selection. It tracks every fork
// and reports reorgs when a side chain overtakes the best chain.
type Chain struct {
	nodes   map[Hash]*blockNode
	genesis Hash
	best    *blockNode
	stale   int
}

// Chain errors.
var (
	ErrUnknownParent = errors.New("ledger: unknown parent block")
	ErrDuplicate     = errors.New("ledger: duplicate block")
)

// NewChain creates a chain rooted at the given genesis block.
func NewChain(genesis *Block) *Chain {
	n := &blockNode{block: genesis, work: genesis.Header.Difficulty}
	c := &Chain{nodes: make(map[Hash]*blockNode), genesis: genesis.Hash(), best: n}
	c.nodes[c.genesis] = n
	return c
}

// Genesis returns the genesis hash.
func (c *Chain) Genesis() Hash { return c.genesis }

// BestHash returns the current best tip.
func (c *Chain) BestHash() Hash { return c.best.block.Hash() }

// BestHeight returns the height of the best tip (genesis = 0).
func (c *Chain) BestHeight() uint64 { return c.best.height }

// BestWork returns the cumulative difficulty of the best chain.
func (c *Chain) BestWork() float64 { return c.best.work }

// Len returns the number of blocks stored (all forks included).
func (c *Chain) Len() int { return len(c.nodes) }

// StaleCount returns how many stored blocks are not on the best chain.
func (c *Chain) StaleCount() int {
	onBest := make(map[Hash]bool)
	for n := c.best; n != nil; n = n.parent {
		onBest[n.block.Hash()] = true
	}
	stale := 0
	for h := range c.nodes {
		if !onBest[h] {
			stale++
		}
	}
	return stale
}

// Contains reports whether the block is stored.
func (c *Chain) Contains(h Hash) bool {
	_, ok := c.nodes[h]
	return ok
}

// HeightOf returns a stored block's height.
func (c *Chain) HeightOf(h Hash) (uint64, bool) {
	n, ok := c.nodes[h]
	if !ok {
		return 0, false
	}
	return n.height, true
}

// Block returns a stored block.
func (c *Chain) Block(h Hash) (*Block, bool) {
	n, ok := c.nodes[h]
	if !ok {
		return nil, false
	}
	return n.block, true
}

// AddBlock attaches a block to the tree. It returns whether the best tip
// changed and whether that change was a reorg (the previous tip is no longer
// an ancestor of the new tip).
func (c *Chain) AddBlock(b *Block) (newBest, reorg bool, err error) {
	h := b.Hash()
	if _, dup := c.nodes[h]; dup {
		return false, false, fmt.Errorf("%w: %v", ErrDuplicate, h)
	}
	parent, ok := c.nodes[b.Header.PrevHash]
	if !ok {
		return false, false, fmt.Errorf("%w: %v", ErrUnknownParent, b.Header.PrevHash)
	}
	if err := b.CheckMerkle(); err != nil {
		return false, false, err
	}
	n := &blockNode{
		block:  b,
		parent: parent,
		height: parent.height + 1,
		work:   parent.work + b.Header.Difficulty,
	}
	c.nodes[h] = n
	if n.work > c.best.work {
		prev := c.best
		c.best = n
		return true, !c.isAncestor(prev, n), nil
	}
	return false, false, nil
}

// isAncestor reports whether a is an ancestor of (or equal to) b.
func (c *Chain) isAncestor(a, b *blockNode) bool {
	for n := b; n != nil; n = n.parent {
		if n == a {
			return true
		}
	}
	return false
}

// BestPath returns the best chain's block hashes from genesis to tip.
func (c *Chain) BestPath() []Hash {
	var rev []Hash
	for n := c.best; n != nil; n = n.parent {
		rev = append(rev, n.block.Hash())
	}
	out := make([]Hash, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Confirmations returns how many blocks deep h is under the best tip
// (tip = 1), or 0 if h is not on the best chain.
func (c *Chain) Confirmations(h Hash) uint64 {
	target, ok := c.nodes[h]
	if !ok {
		return 0
	}
	for n := c.best; n != nil; n = n.parent {
		if n == target {
			return c.best.height - target.height + 1
		}
	}
	return 0
}
