package ledger

import (
	"crypto/sha256"
	"errors"
)

// MerkleRoot computes the Merkle root of the given transaction ids using the
// Bitcoin convention (odd levels duplicate the last node). An empty input
// yields the zero hash.
func MerkleRoot(ids []TxID) Hash {
	if len(ids) == 0 {
		return Hash{}
	}
	level := make([]Hash, len(ids))
	copy(level, ids)
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		next := make([]Hash, 0, len(level)/2)
		for i := 0; i < len(level); i += 2 {
			next = append(next, hashPair(level[i], level[i+1]))
		}
		level = next
	}
	return level[0]
}

func hashPair(a, b Hash) Hash {
	h := sha256.New()
	h.Write(a[:])
	h.Write(b[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// MerkleProof is an inclusion proof: the sibling hashes from leaf to root
// and, per level, whether the sibling sits on the left.
type MerkleProof struct {
	Siblings []Hash
	Left     []bool
}

// Prove builds an inclusion proof for ids[index].
func Prove(ids []TxID, index int) (*MerkleProof, error) {
	if index < 0 || index >= len(ids) {
		return nil, errors.New("ledger: merkle proof index out of range")
	}
	proof := &MerkleProof{}
	level := make([]Hash, len(ids))
	copy(level, ids)
	pos := index
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		sib := pos ^ 1
		proof.Siblings = append(proof.Siblings, level[sib])
		proof.Left = append(proof.Left, sib < pos)
		next := make([]Hash, 0, len(level)/2)
		for i := 0; i < len(level); i += 2 {
			next = append(next, hashPair(level[i], level[i+1]))
		}
		level = next
		pos /= 2
	}
	return proof, nil
}

// Verify checks that id is included under root according to the proof.
func (p *MerkleProof) Verify(root Hash, id TxID) bool {
	if p == nil || len(p.Siblings) != len(p.Left) {
		return false
	}
	cur := Hash(id)
	for i, sib := range p.Siblings {
		if p.Left[i] {
			cur = hashPair(sib, cur)
		} else {
			cur = hashPair(cur, sib)
		}
	}
	return cur == root
}
