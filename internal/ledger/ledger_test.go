package ledger

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func coinbase(owner string, value uint64, salt byte) *Tx {
	return &Tx{
		Outs:    []TxOut{{Value: value, Owner: owner}},
		Payload: []byte{salt},
	}
}

func TestTxIDDeterministicAndDistinct(t *testing.T) {
	a := coinbase("alice", 50, 1)
	b := coinbase("alice", 50, 1)
	c := coinbase("alice", 50, 2)
	if a.ID() != b.ID() {
		t.Fatal("identical txs must share an id")
	}
	if a.ID() == c.ID() {
		t.Fatal("distinct txs collided")
	}
}

func TestUTXOLifecycle(t *testing.T) {
	u := NewUTXOSet()
	cb := coinbase("alice", 50, 1)
	if err := u.ApplyCoinbase(cb, 50, 0); err != nil {
		t.Fatalf("ApplyCoinbase: %v", err)
	}
	if got := u.Balance("alice"); got != 50 {
		t.Fatalf("alice balance = %d, want 50", got)
	}
	spend := &Tx{
		Ins:  []TxIn{{Prev: Outpoint{Tx: cb.ID(), Index: 0}}},
		Outs: []TxOut{{Value: 30, Owner: "bob"}, {Value: 18, Owner: "alice"}},
	}
	fee, err := u.ApplyTx(spend)
	if err != nil {
		t.Fatalf("ApplyTx: %v", err)
	}
	if fee != 2 {
		t.Fatalf("fee = %d, want 2", fee)
	}
	if u.Balance("bob") != 30 || u.Balance("alice") != 18 {
		t.Fatalf("balances wrong: bob=%d alice=%d", u.Balance("bob"), u.Balance("alice"))
	}
	// Double spend must fail.
	if _, err := u.ApplyTx(spend); !errors.Is(err, ErrMissingInput) {
		t.Fatalf("double spend error = %v, want ErrMissingInput", err)
	}
}

func TestUTXOOverspend(t *testing.T) {
	u := NewUTXOSet()
	cb := coinbase("alice", 50, 1)
	if err := u.ApplyCoinbase(cb, 50, 0); err != nil {
		t.Fatalf("ApplyCoinbase: %v", err)
	}
	over := &Tx{
		Ins:  []TxIn{{Prev: Outpoint{Tx: cb.ID(), Index: 0}}},
		Outs: []TxOut{{Value: 51, Owner: "bob"}},
	}
	if _, err := u.ApplyTx(over); !errors.Is(err, ErrOverspend) {
		t.Fatalf("overspend error = %v, want ErrOverspend", err)
	}
}

func TestUTXODuplicateInput(t *testing.T) {
	u := NewUTXOSet()
	cb := coinbase("alice", 50, 1)
	if err := u.ApplyCoinbase(cb, 50, 0); err != nil {
		t.Fatalf("ApplyCoinbase: %v", err)
	}
	dup := &Tx{
		Ins: []TxIn{
			{Prev: Outpoint{Tx: cb.ID(), Index: 0}},
			{Prev: Outpoint{Tx: cb.ID(), Index: 0}},
		},
		Outs: []TxOut{{Value: 100, Owner: "bob"}},
	}
	if _, err := u.ApplyTx(dup); err == nil {
		t.Fatal("duplicate input within one tx must fail")
	}
}

func TestCoinbaseSubsidyCap(t *testing.T) {
	u := NewUTXOSet()
	greedy := coinbase("miner", 100, 1)
	if err := u.ApplyCoinbase(greedy, 50, 10); !errors.Is(err, ErrOverspend) {
		t.Fatalf("excess coinbase error = %v, want ErrOverspend", err)
	}
	if err := u.ApplyCoinbase(coinbase("miner", 60, 2), 50, 10); err != nil {
		t.Fatalf("subsidy+fees coinbase rejected: %v", err)
	}
	if _, err := u.ApplyTx(coinbase("miner", 1, 3)); err == nil {
		t.Fatal("ApplyTx must reject coinbase")
	}
	if err := u.ApplyCoinbase(&Tx{Ins: []TxIn{{}}, Outs: []TxOut{{Value: 1, Owner: "x"}}}, 50, 0); err == nil {
		t.Fatal("ApplyCoinbase must reject non-coinbase")
	}
}

func TestUTXOConservationProperty(t *testing.T) {
	// Property: total value never increases except via coinbase subsidy.
	f := func(splits []uint8) bool {
		u := NewUTXOSet()
		cb := coinbase("w", 1000, 9)
		if err := u.ApplyCoinbase(cb, 1000, 0); err != nil {
			return false
		}
		cur := Outpoint{Tx: cb.ID(), Index: 0}
		curVal := uint64(1000)
		for i, s := range splits {
			keep := curVal * uint64(s) / 512 // spend part, fee part
			tx := &Tx{
				Ins:     []TxIn{{Prev: cur}},
				Outs:    []TxOut{{Value: keep, Owner: "w"}},
				Payload: []byte{byte(i)},
			}
			if _, err := u.ApplyTx(tx); err != nil {
				return false
			}
			cur = Outpoint{Tx: tx.ID(), Index: 0}
			curVal = keep
			if u.TotalValue() > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUTXOClone(t *testing.T) {
	u := NewUTXOSet()
	if err := u.ApplyCoinbase(coinbase("a", 10, 1), 10, 0); err != nil {
		t.Fatalf("ApplyCoinbase: %v", err)
	}
	cp := u.Clone()
	if err := cp.ApplyCoinbase(coinbase("b", 5, 2), 5, 0); err != nil {
		t.Fatalf("ApplyCoinbase on clone: %v", err)
	}
	if u.Len() == cp.Len() {
		t.Fatal("clone is not independent")
	}
}

func TestMerkleRootKnownShapes(t *testing.T) {
	if !MerkleRoot(nil).IsZero() {
		t.Fatal("empty merkle root should be zero")
	}
	one := []TxID{coinbase("a", 1, 1).ID()}
	if MerkleRoot(one) != one[0] {
		t.Fatal("single-leaf root must equal the leaf")
	}
}

func TestMerkleProofs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13} {
		ids := make([]TxID, n)
		for i := range ids {
			ids[i] = coinbase("x", uint64(i+1), byte(i)).ID()
		}
		root := MerkleRoot(ids)
		for i := 0; i < n; i++ {
			proof, err := Prove(ids, i)
			if err != nil {
				t.Fatalf("Prove(n=%d, i=%d): %v", n, i, err)
			}
			if !proof.Verify(root, ids[i]) {
				t.Fatalf("proof failed for n=%d i=%d", n, i)
			}
			// A proof must not verify a different leaf.
			other := coinbase("y", 999, 99).ID()
			if proof.Verify(root, other) {
				t.Fatalf("proof verified wrong leaf for n=%d i=%d", n, i)
			}
		}
	}
	if _, err := Prove(nil, 0); err == nil {
		t.Fatal("Prove on empty set should error")
	}
}

// Property: Merkle proofs verify for every leaf of any tree.
func TestPropertyMerkle(t *testing.T) {
	f := func(seed uint32, size uint8) bool {
		n := int(size%32) + 1
		ids := make([]TxID, n)
		for i := range ids {
			ids[i] = (&Tx{Payload: []byte{byte(seed), byte(seed >> 8), byte(i)}}).ID()
		}
		root := MerkleRoot(ids)
		idx := int(seed) % n
		proof, err := Prove(ids, idx)
		if err != nil {
			return false
		}
		return proof.Verify(root, ids[idx])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func newTestChain(t *testing.T) (*Chain, *Block) {
	t.Helper()
	genesis := NewBlock(Hash{}, []*Tx{coinbase("satoshi", 50, 0)}, 0, 1)
	return NewChain(genesis), genesis
}

func TestChainLinearGrowth(t *testing.T) {
	c, genesis := newTestChain(t)
	prev := genesis.Hash()
	for i := 1; i <= 5; i++ {
		b := NewBlock(prev, []*Tx{coinbase("m", 50, byte(i))}, time.Duration(i)*time.Minute, 1)
		newBest, reorg, err := c.AddBlock(b)
		if err != nil {
			t.Fatalf("AddBlock %d: %v", i, err)
		}
		if !newBest || reorg {
			t.Fatalf("linear growth should extend best without reorg (i=%d)", i)
		}
		prev = b.Hash()
	}
	if c.BestHeight() != 5 {
		t.Fatalf("BestHeight = %d, want 5", c.BestHeight())
	}
	if got := len(c.BestPath()); got != 6 {
		t.Fatalf("BestPath length = %d, want 6", got)
	}
	if c.StaleCount() != 0 {
		t.Fatalf("StaleCount = %d, want 0", c.StaleCount())
	}
}

func TestChainForkAndReorg(t *testing.T) {
	c, genesis := newTestChain(t)
	a1 := NewBlock(genesis.Hash(), []*Tx{coinbase("a", 50, 1)}, time.Minute, 1)
	if _, _, err := c.AddBlock(a1); err != nil {
		t.Fatalf("a1: %v", err)
	}
	// Competing fork from genesis: same height, no best change (ties keep
	// first).
	b1 := NewBlock(genesis.Hash(), []*Tx{coinbase("b", 50, 2)}, time.Minute, 1)
	newBest, _, err := c.AddBlock(b1)
	if err != nil {
		t.Fatalf("b1: %v", err)
	}
	if newBest {
		t.Fatal("equal-work fork must not displace the current best")
	}
	if c.BestHash() != a1.Hash() {
		t.Fatal("best should remain a1")
	}
	// Extend the fork: now it has more work, triggering a reorg.
	b2 := NewBlock(b1.Hash(), []*Tx{coinbase("b", 50, 3)}, 2*time.Minute, 1)
	newBest, reorg, err := c.AddBlock(b2)
	if err != nil {
		t.Fatalf("b2: %v", err)
	}
	if !newBest || !reorg {
		t.Fatalf("fork overtake must reorg: newBest=%v reorg=%v", newBest, reorg)
	}
	if c.BestHash() != b2.Hash() {
		t.Fatal("best should be b2 after reorg")
	}
	if c.StaleCount() != 1 {
		t.Fatalf("StaleCount = %d, want 1 (a1)", c.StaleCount())
	}
	if got := c.Confirmations(b1.Hash()); got != 2 {
		t.Fatalf("Confirmations(b1) = %d, want 2", got)
	}
	if got := c.Confirmations(a1.Hash()); got != 0 {
		t.Fatalf("Confirmations(a1) = %d, want 0 (off best chain)", got)
	}
}

func TestChainHeavierWorkWinsOverHeight(t *testing.T) {
	c, genesis := newTestChain(t)
	// Low-difficulty chain of length 3.
	prev := genesis.Hash()
	for i := 0; i < 3; i++ {
		b := NewBlock(prev, []*Tx{coinbase("l", 50, byte(i))}, time.Minute, 1)
		if _, _, err := c.AddBlock(b); err != nil {
			t.Fatalf("low-diff block: %v", err)
		}
		prev = b.Hash()
	}
	// Single high-difficulty block outweighs all three.
	heavy := NewBlock(genesis.Hash(), []*Tx{coinbase("h", 50, 9)}, time.Minute, 10)
	newBest, reorg, err := c.AddBlock(heavy)
	if err != nil {
		t.Fatalf("heavy: %v", err)
	}
	if !newBest || !reorg {
		t.Fatal("most-work rule must prefer the heavy block")
	}
	if c.BestHeight() != 1 {
		t.Fatalf("BestHeight = %d, want 1", c.BestHeight())
	}
}

func TestChainErrors(t *testing.T) {
	c, genesis := newTestChain(t)
	orphan := NewBlock(Hash{1, 2, 3}, nil, time.Minute, 1)
	if _, _, err := c.AddBlock(orphan); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("orphan error = %v, want ErrUnknownParent", err)
	}
	dup := NewBlock(genesis.Hash(), []*Tx{coinbase("d", 50, 1)}, time.Minute, 1)
	if _, _, err := c.AddBlock(dup); err != nil {
		t.Fatalf("dup first add: %v", err)
	}
	if _, _, err := c.AddBlock(dup); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate error = %v, want ErrDuplicate", err)
	}
	bad := NewBlock(genesis.Hash(), []*Tx{coinbase("x", 50, 2)}, time.Minute, 1)
	bad.Txs = append(bad.Txs, coinbase("tamper", 1, 3)) // body no longer matches root
	if _, _, err := c.AddBlock(bad); err == nil {
		t.Fatal("merkle mismatch must be rejected")
	}
}

func TestBlockSizeGrowsWithTxs(t *testing.T) {
	small := NewBlock(Hash{}, []*Tx{coinbase("a", 1, 1)}, 0, 1)
	big := NewBlock(Hash{}, []*Tx{
		coinbase("a", 1, 1), coinbase("b", 2, 2), coinbase("c", 3, 3),
	}, 0, 1)
	if big.Size() <= small.Size() {
		t.Fatal("block size must grow with tx count")
	}
}

func TestConfirmationsUnknown(t *testing.T) {
	c, _ := newTestChain(t)
	if c.Confirmations(Hash{9}) != 0 {
		t.Fatal("unknown block must have 0 confirmations")
	}
}
