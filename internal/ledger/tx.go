// Package ledger provides the data structures shared by every blockchain in
// this repository: transactions with UTXO semantics, Merkle trees with
// inclusion proofs, hash-chained blocks, a UTXO set with conservation
// checking, and a block tree with most-work chain selection and reorgs.
//
// Both the permissionless PoW simulator and the permissioned
// (Fabric-like) stack build on these types.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// Hash is a 256-bit content hash.
type Hash [32]byte

// String returns a short hex prefix for logs.
func (h Hash) String() string { return hex.EncodeToString(h[:6]) }

// IsZero reports whether the hash is all zeros.
func (h Hash) IsZero() bool { return h == Hash{} }

// TxID identifies a transaction by its content hash.
type TxID = Hash

// Outpoint references one output of a prior transaction.
type Outpoint struct {
	Tx    TxID
	Index uint32
}

// TxIn spends a previous output. Ownership verification is modelled by an
// owner string carried on outputs rather than signatures: the simulation
// concerns consensus and propagation behaviour, not cryptography.
type TxIn struct {
	Prev Outpoint
}

// TxOut creates value assigned to an owner.
type TxOut struct {
	Value uint64
	Owner string
}

// Tx is a transaction: it consumes inputs and creates outputs. A coinbase
// transaction has no inputs and mints the block subsidy.
type Tx struct {
	Ins  []TxIn
	Outs []TxOut
	// Payload carries application bytes (used by the permissioned stack
	// for chaincode write sets); it contributes to the ID.
	Payload []byte
}

// Coinbase reports whether the transaction mints new value.
func (tx *Tx) Coinbase() bool { return len(tx.Ins) == 0 }

// OutValue returns the total value created.
func (tx *Tx) OutValue() uint64 {
	var sum uint64
	for _, o := range tx.Outs {
		sum += o.Value
	}
	return sum
}

// ID returns the transaction's content hash.
func (tx *Tx) ID() TxID {
	h := sha256.New()
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[:4], uint32(len(tx.Ins)))
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(tx.Outs)))
	binary.BigEndian.PutUint32(buf[8:], uint32(len(tx.Payload)))
	h.Write(buf[:])
	for _, in := range tx.Ins {
		h.Write(in.Prev.Tx[:])
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], in.Prev.Index)
		h.Write(idx[:])
	}
	for _, out := range tx.Outs {
		var v [8]byte
		binary.BigEndian.PutUint64(v[:], out.Value)
		h.Write(v[:])
		h.Write([]byte(out.Owner))
		h.Write([]byte{0})
	}
	h.Write(tx.Payload)
	var id TxID
	copy(id[:], h.Sum(nil))
	return id
}

// Size returns the modelled wire size of the transaction in bytes.
func (tx *Tx) Size() int {
	size := 10 // version, counts
	size += len(tx.Ins) * 36
	for _, o := range tx.Outs {
		size += 9 + len(o.Owner)
	}
	size += len(tx.Payload)
	return size
}

// UTXOSet tracks unspent outputs and enforces conservation of value.
type UTXOSet struct {
	entries map[Outpoint]TxOut
}

// NewUTXOSet returns an empty set.
func NewUTXOSet() *UTXOSet {
	return &UTXOSet{entries: make(map[Outpoint]TxOut)}
}

// Errors returned by UTXO validation.
var (
	ErrMissingInput = errors.New("ledger: input not in UTXO set")
	ErrOverspend    = errors.New("ledger: outputs exceed inputs")
)

// Len returns the number of unspent outputs.
func (u *UTXOSet) Len() int { return len(u.entries) }

// Lookup returns the output referenced by op.
func (u *UTXOSet) Lookup(op Outpoint) (TxOut, bool) {
	out, ok := u.entries[op]
	return out, ok
}

// Balance sums the unspent value assigned to owner.
func (u *UTXOSet) Balance(owner string) uint64 {
	var sum uint64
	for _, out := range u.entries {
		if out.Owner == owner {
			sum += out.Value
		}
	}
	return sum
}

// TotalValue sums all unspent value.
func (u *UTXOSet) TotalValue() uint64 {
	var sum uint64
	for _, out := range u.entries {
		sum += out.Value
	}
	return sum
}

// Fee returns the fee a transaction would pay (inputs minus outputs), or an
// error if it is invalid against the current set. Coinbase transactions have
// no fee.
func (u *UTXOSet) Fee(tx *Tx) (uint64, error) {
	if tx.Coinbase() {
		return 0, nil
	}
	var in uint64
	seen := make(map[Outpoint]bool, len(tx.Ins))
	for _, txin := range tx.Ins {
		if seen[txin.Prev] {
			return 0, fmt.Errorf("%w: duplicate input %v", ErrMissingInput, txin.Prev.Tx)
		}
		seen[txin.Prev] = true
		out, ok := u.entries[txin.Prev]
		if !ok {
			return 0, fmt.Errorf("%w: %v[%d]", ErrMissingInput, txin.Prev.Tx, txin.Prev.Index)
		}
		in += out.Value
	}
	outVal := tx.OutValue()
	if outVal > in {
		return 0, fmt.Errorf("%w: in=%d out=%d", ErrOverspend, in, outVal)
	}
	return in - outVal, nil
}

// ApplyTx validates and applies a non-coinbase transaction, returning its
// fee. For coinbase transactions use ApplyCoinbase so the subsidy cap is
// enforced.
func (u *UTXOSet) ApplyTx(tx *Tx) (uint64, error) {
	if tx.Coinbase() {
		return 0, errors.New("ledger: ApplyTx on coinbase; use ApplyCoinbase")
	}
	fee, err := u.Fee(tx)
	if err != nil {
		return 0, err
	}
	for _, txin := range tx.Ins {
		delete(u.entries, txin.Prev)
	}
	u.addOutputs(tx)
	return fee, nil
}

// ApplyCoinbase applies a coinbase transaction, enforcing that it mints at
// most subsidy+fees.
func (u *UTXOSet) ApplyCoinbase(tx *Tx, subsidy, fees uint64) error {
	if !tx.Coinbase() {
		return errors.New("ledger: ApplyCoinbase on regular transaction")
	}
	if tx.OutValue() > subsidy+fees {
		return fmt.Errorf("%w: coinbase mints %d > %d", ErrOverspend, tx.OutValue(), subsidy+fees)
	}
	u.addOutputs(tx)
	return nil
}

func (u *UTXOSet) addOutputs(tx *Tx) {
	id := tx.ID()
	for i, out := range tx.Outs {
		u.entries[Outpoint{Tx: id, Index: uint32(i)}] = out
	}
}

// Clone returns an independent copy (used to validate candidate chains).
func (u *UTXOSet) Clone() *UTXOSet {
	cp := &UTXOSet{entries: make(map[Outpoint]TxOut, len(u.entries))}
	for k, v := range u.entries {
		cp.entries[k] = v
	}
	return cp
}
