package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func manifestJSON(t *testing.T, claims []ManifestClaim) []byte {
	t.Helper()
	data, err := json.Marshal(Manifest{
		Title:  "t",
		Claims: claims,
		Files:  []ManifestFile{{Path: "REPORT.md"}},
	})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

func TestDiffIdenticalManifests(t *testing.T) {
	m := manifestJSON(t, []ManifestClaim{
		{Scenario: "E01|1|", Verdict: "REPRODUCED", Metric: "m", Mean: 1.5},
	})
	d, err := DiffDocs(m, m)
	if err != nil {
		t.Fatalf("DiffDocs: %v", err)
	}
	if d.Failing() || len(d.Flips)+len(d.Drifts)+len(d.Added)+len(d.Removed) != 0 {
		t.Errorf("identical manifests should produce an empty passing diff: %+v", d)
	}
	if !strings.Contains(d.Render(), "PASS: no changes") {
		t.Errorf("Render = %q", d.Render())
	}
}

func TestDiffVerdictFlip(t *testing.T) {
	old := manifestJSON(t, []ManifestClaim{
		{Scenario: "E01|1|", Title: "c", Verdict: "REPRODUCED", Metric: "m", Mean: 1.5},
	})
	now := manifestJSON(t, []ManifestClaim{
		{Scenario: "E01|1|", Title: "c", Verdict: "NOT REPRODUCED", Metric: "m", Mean: 2.5},
	})
	d, err := DiffDocs(old, now)
	if err != nil {
		t.Fatalf("DiffDocs: %v", err)
	}
	if !d.Failing() || len(d.Flips) != 1 || len(d.Drifts) != 0 {
		t.Fatalf("want exactly one failing flip: %+v", d)
	}
	f := d.Flips[0]
	if f.OldVerdict != "REPRODUCED" || f.NewVerdict != "NOT REPRODUCED" || !f.Flipped() {
		t.Errorf("flip record wrong: %+v", f)
	}
	out := d.Render()
	if !strings.Contains(out, "FLIP") || !strings.Contains(out, "FAIL: 1 verdict flip") {
		t.Errorf("Render = %q", out)
	}
}

func TestDiffMetricOnlyDrift(t *testing.T) {
	old := manifestJSON(t, []ManifestClaim{
		{Scenario: "E01|1|", Verdict: "REPRODUCED", Metric: "m", Mean: 1.5},
	})
	now := manifestJSON(t, []ManifestClaim{
		{Scenario: "E01|1|", Verdict: "REPRODUCED", Metric: "m", Mean: 1.75},
	})
	d, err := DiffDocs(old, now)
	if err != nil {
		t.Fatalf("DiffDocs: %v", err)
	}
	if d.Failing() {
		t.Errorf("metric-only drift must not fail the gate: %+v", d)
	}
	if len(d.Drifts) != 1 || d.Drifts[0].OldMean != 1.5 || d.Drifts[0].NewMean != 1.75 {
		t.Errorf("drift record wrong: %+v", d.Drifts)
	}
	if !strings.Contains(d.Render(), "DRIFT") || !strings.Contains(d.Render(), "PASS") {
		t.Errorf("Render = %q", d.Render())
	}
}

func TestDiffAddedRemoved(t *testing.T) {
	old := manifestJSON(t, []ManifestClaim{
		{Scenario: "E01|1|", Verdict: "REPRODUCED"},
		{Scenario: "E02|1|", Verdict: "REPRODUCED"},
	})
	now := manifestJSON(t, []ManifestClaim{
		{Scenario: "E01|1|", Verdict: "REPRODUCED"},
		{Scenario: "E03|1|", Verdict: "NOT REPRODUCED"},
	})
	d, err := DiffDocs(old, now)
	if err != nil {
		t.Fatalf("DiffDocs: %v", err)
	}
	if d.Failing() {
		t.Errorf("scenario set changes must not fail the gate: %+v", d)
	}
	if len(d.Added) != 1 || d.Added[0] != "E03|1|" || len(d.Removed) != 1 || d.Removed[0] != "E02|1|" {
		t.Errorf("added/removed wrong: %+v / %+v", d.Added, d.Removed)
	}
}

func driftJSON(mean, min, max float64) []byte {
	return []byte(`{"seeds":100,"drift":[{"experiment":"E01","scale":1,"metric":"m",` +
		`"mean":` + jsonNum(mean) + `,"min":` + jsonNum(min) + `,"max":` + jsonNum(max) + `}],"runs":[]}`)
}

func jsonNum(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

func TestDiffDriftWithinEnvelope(t *testing.T) {
	d, err := DiffDocs(driftJSON(1.5, 1.0, 2.0), driftJSON(1.9, 1.7, 2.1))
	if err != nil {
		t.Fatalf("DiffDocs: %v", err)
	}
	if d.Kind != "drift" || d.Failing() || len(d.Breaches) != 0 {
		t.Errorf("in-envelope drift should pass: %+v", d)
	}
}

func TestDiffDriftBreach(t *testing.T) {
	d, err := DiffDocs(driftJSON(1.5, 1.0, 2.0), driftJSON(2.5, 2.4, 2.6))
	if err != nil {
		t.Fatalf("DiffDocs: %v", err)
	}
	if !d.Failing() || len(d.Breaches) != 1 {
		t.Fatalf("want one failing breach: %+v", d)
	}
	br := d.Breaches[0]
	if br.NewMean != 2.5 || br.OldMin != 1.0 || br.OldMax != 2.0 {
		t.Errorf("breach record wrong: %+v", br)
	}
	if !strings.Contains(d.Render(), "BREACH") || !strings.Contains(d.Render(), "FAIL") {
		t.Errorf("Render = %q", d.Render())
	}
}

func TestDiffKindMismatch(t *testing.T) {
	man := manifestJSON(t, nil)
	if _, err := DiffDocs(man, driftJSON(1, 0, 2)); err == nil ||
		!strings.Contains(err.Error(), "kinds differ") {
		t.Errorf("mixed document kinds must error, got %v", err)
	}
}

func TestDiffMalformed(t *testing.T) {
	if _, err := DiffDocs([]byte("{"), []byte("{}")); err == nil {
		t.Errorf("malformed old document must error")
	}
}

// TestDiffRealManifests runs the comparator end to end over two
// generated manifests whose options differ only by seed set, checking
// scenario keys line up.
func TestDiffRealManifests(t *testing.T) {
	gen := func(seeds []int64) []byte {
		tree, err := Generate(registry(t), Options{IDs: []string{"E01"}, Seeds: seeds, Scale: 0.25})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		return tree.Lookup("manifest.json")
	}
	a, b := gen([]int64{1, 2}), gen([]int64{2, 3})
	d, err := DiffDocs(a, b)
	if err != nil {
		t.Fatalf("DiffDocs: %v", err)
	}
	if d.Kind != "manifest" {
		t.Errorf("Kind = %q", d.Kind)
	}
	if len(d.Added)+len(d.Removed) != 0 {
		t.Errorf("same scenario should match across manifests: %+v", d)
	}
	if d2, _ := DiffDocs(a, a); d2.Failing() {
		t.Errorf("self-diff fails: %+v", d2)
	}
}
