package report

import (
	"encoding/json"
	"fmt"
	"strings"
)

// diff.go is the verdict comparator behind `decentsim report -diff`: it
// answers "which claims moved" between two manifests — the interesting
// question across commits, per Kwon et al., being which verdicts
// flipped, not what the tree says today. The same comparator reads the
// nightly soak's drift document and turns its bounds into a failing
// trend gate. Rendering is deterministic: rows follow document order
// (new-document order for changes, old-document order for removals),
// never map iteration.

// ClaimChange records one scenario whose verdict or headline metric
// moved between the old and new manifest.
type ClaimChange struct {
	Scenario   string
	Title      string
	OldVerdict string
	NewVerdict string
	// Metric carries the new manifest's headline metric name (or the old
	// one when the new claim has none); the means are the cross-seed
	// headline means on each side.
	Metric  string
	OldMean float64
	NewMean float64
	OldCI95 float64
	NewCI95 float64
}

// Flipped reports whether the scenario's verdict changed (the failing
// condition); a false value means only the headline metric drifted.
func (c ClaimChange) Flipped() bool { return c.OldVerdict != c.NewVerdict }

// TrendBreach records one soak scenario whose new headline mean left the
// old document's observed [min, max] envelope.
type TrendBreach struct {
	Scenario string
	Metric   string
	OldMin   float64
	OldMax   float64
	NewMean  float64
}

// Diff is the outcome of comparing two manifests or two drift documents.
type Diff struct {
	// Kind is "manifest" or "drift", matching the detected document type.
	Kind string
	// Flips are claims whose verdict changed — each one fails the gate.
	Flips []ClaimChange
	// Drifts are claims whose verdict held but whose headline metric
	// moved; informational, never failing.
	Drifts []ClaimChange
	// Added and Removed are scenario keys present on only one side.
	Added   []string
	Removed []string
	// Breaches are drift-document scenarios outside the old envelope —
	// each one fails the gate.
	Breaches []TrendBreach
}

// Failing reports whether the diff should fail a gate: any verdict flip
// (manifests) or envelope breach (drift documents). Metric-only drift
// and scenario set changes are reported but never failing.
func (d *Diff) Failing() bool {
	return len(d.Flips) > 0 || len(d.Breaches) > 0
}

// DiffManifests compares the claims of two parsed manifests, matching
// scenarios by their canonical harness keys.
func DiffManifests(old, now *Manifest) *Diff {
	d := &Diff{Kind: "manifest"}
	oldBy := make(map[string]ManifestClaim, len(old.Claims))
	for _, c := range old.Claims {
		oldBy[c.Scenario] = c
	}
	newKeys := make(map[string]bool, len(now.Claims))
	for _, nc := range now.Claims {
		newKeys[nc.Scenario] = true
		oc, ok := oldBy[nc.Scenario]
		if !ok {
			d.Added = append(d.Added, nc.Scenario)
			continue
		}
		ch := ClaimChange{
			Scenario:   nc.Scenario,
			Title:      nc.Title,
			OldVerdict: oc.Verdict,
			NewVerdict: nc.Verdict,
			Metric:     nc.Metric,
			OldMean:    oc.Mean,
			NewMean:    nc.Mean,
			OldCI95:    oc.CI95,
			NewCI95:    nc.CI95,
		}
		if ch.Metric == "" {
			ch.Metric = oc.Metric
		}
		switch {
		case ch.Flipped():
			d.Flips = append(d.Flips, ch)
		case oc.Metric != nc.Metric || oc.Mean != nc.Mean:
			d.Drifts = append(d.Drifts, ch)
		}
	}
	for _, oc := range old.Claims {
		if !newKeys[oc.Scenario] {
			d.Removed = append(d.Removed, oc.Scenario)
		}
	}
	return d
}

// driftDoc mirrors the JSON the soak run writes with -drift: per-scenario
// headline bounds over a large seed set. Host-resource rows (runs) are
// machine facts and take no part in the comparison.
type driftDoc struct {
	Seeds int `json:"seeds"`
	Drift []struct {
		Experiment string  `json:"experiment"`
		Scale      float64 `json:"scale"`
		Params     string  `json:"params,omitempty"`
		Metric     string  `json:"metric"`
		Mean       float64 `json:"mean"`
		Min        float64 `json:"min"`
		Max        float64 `json:"max"`
	} `json:"drift"`
}

func (doc *driftDoc) key(i int) string {
	r := doc.Drift[i]
	return fmt.Sprintf("%s|%.6g|%s|%s", r.Experiment, r.Scale, r.Params, r.Metric)
}

// diffDrift compares two drift documents: a scenario breaches when its
// new mean falls outside the old document's observed [min, max].
func diffDrift(old, now *driftDoc) *Diff {
	d := &Diff{Kind: "drift"}
	oldBy := make(map[string]int, len(old.Drift))
	for i := range old.Drift {
		oldBy[old.key(i)] = i
	}
	newKeys := make(map[string]bool, len(now.Drift))
	for i := range now.Drift {
		k := now.key(i)
		newKeys[k] = true
		oi, ok := oldBy[k]
		if !ok {
			d.Added = append(d.Added, k)
			continue
		}
		or, nr := old.Drift[oi], now.Drift[i]
		if nr.Mean < or.Min || nr.Mean > or.Max {
			d.Breaches = append(d.Breaches, TrendBreach{
				Scenario: k,
				Metric:   nr.Metric,
				OldMin:   or.Min,
				OldMax:   or.Max,
				NewMean:  nr.Mean,
			})
		}
	}
	for i := range old.Drift {
		if !newKeys[old.key(i)] {
			d.Removed = append(d.Removed, old.key(i))
		}
	}
	return d
}

// DiffDocs compares two serialized documents, auto-detecting their kind:
// report manifests (a "claims"/"files" object) are compared claim by
// claim, soak drift documents (a "drift" array) bound by bound. Both
// sides must be the same kind.
func DiffDocs(oldData, newData []byte) (*Diff, error) {
	oldDrift, newDrift := isDriftDoc(oldData), isDriftDoc(newData)
	if oldDrift != newDrift {
		return nil, fmt.Errorf("report: diff: document kinds differ (one manifest, one drift document)")
	}
	if oldDrift {
		var od, nd driftDoc
		if err := json.Unmarshal(oldData, &od); err != nil {
			return nil, fmt.Errorf("report: diff: parse old drift document: %w", err)
		}
		if err := json.Unmarshal(newData, &nd); err != nil {
			return nil, fmt.Errorf("report: diff: parse new drift document: %w", err)
		}
		return diffDrift(&od, &nd), nil
	}
	om, err := ParseManifest(oldData)
	if err != nil {
		return nil, fmt.Errorf("report: diff: old manifest: %w", err)
	}
	nm, err := ParseManifest(newData)
	if err != nil {
		return nil, fmt.Errorf("report: diff: new manifest: %w", err)
	}
	return DiffManifests(om, nm), nil
}

// isDriftDoc probes the document's top-level keys: a drift document has
// a "drift" array and no "files" index.
func isDriftDoc(data []byte) bool {
	var probe struct {
		Drift json.RawMessage `json:"drift"`
		Files json.RawMessage `json:"files"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.Drift != nil && probe.Files == nil
}

// Render prints the diff as a deterministic human-readable summary, one
// line per change, ending with a PASS/FAIL verdict line.
func (d *Diff) Render() string {
	var b strings.Builder
	for _, c := range d.Flips {
		fmt.Fprintf(&b, "FLIP  %s: %s -> %s", c.Scenario, c.OldVerdict, c.NewVerdict)
		if c.Metric != "" {
			fmt.Fprintf(&b, " (%s %.6g -> %.6g)", c.Metric, c.OldMean, c.NewMean)
		}
		b.WriteString("\n")
	}
	for _, c := range d.Drifts {
		fmt.Fprintf(&b, "DRIFT %s: %s %.6g -> %.6g (verdict %s holds)\n",
			c.Scenario, c.Metric, c.OldMean, c.NewMean, c.NewVerdict)
	}
	for _, t := range d.Breaches {
		fmt.Fprintf(&b, "BREACH %s: mean %.6g outside old envelope [%.6g, %.6g]\n",
			t.Scenario, t.NewMean, t.OldMin, t.OldMax)
	}
	for _, s := range d.Added {
		fmt.Fprintf(&b, "ADDED %s\n", s)
	}
	for _, s := range d.Removed {
		fmt.Fprintf(&b, "REMOVED %s\n", s)
	}
	switch {
	case d.Failing() && d.Kind == "drift":
		fmt.Fprintf(&b, "FAIL: %d scenario(s) breached the drift envelope\n", len(d.Breaches))
	case d.Failing():
		fmt.Fprintf(&b, "FAIL: %d verdict flip(s)\n", len(d.Flips))
	case len(d.Flips)+len(d.Drifts)+len(d.Breaches)+len(d.Added)+len(d.Removed) == 0:
		b.WriteString("PASS: no changes\n")
	default:
		fmt.Fprintf(&b, "PASS: no verdict flips (%d drift(s), %d added, %d removed)\n",
			len(d.Drifts), len(d.Added), len(d.Removed))
	}
	return b.String()
}
