package report

import (
	"fmt"
	"html"
	"path"
	"strings"
)

// html.go is the report tree's second render target: every generated
// markdown page gains a self-contained HTML sibling (inline CSS, the
// existing SVG figures by reference, no JavaScript). The converter
// handles exactly the markdown subset the renderers in this package
// emit — ATX headings, **bold**, *em*, whole-line _em_, `code`, links,
// images, pipe tables, "- " lists, and --- rules — and is a pure
// function of the page bytes, so the HTML layer inherits the markdown
// tree's byte-determinism and rides the same manifest hashes.

// pageCSS is the fixed inline stylesheet of every HTML page; its bytes
// are part of the determinism contract.
const pageCSS = `:root { color-scheme: light; }
body { margin: 0; background: #f6f7f9; color: #1f2430;
  font: 16px/1.55 system-ui, -apple-system, "Segoe UI", sans-serif; }
main { max-width: 72rem; margin: 0 auto; padding: 2rem 1.5rem 4rem;
  background: #ffffff; min-height: 100vh; box-sizing: border-box; }
h1 { font-size: 1.6rem; line-height: 1.3; border-bottom: 2px solid #e3e6eb;
  padding-bottom: .5rem; }
h2 { font-size: 1.25rem; margin-top: 2rem; }
h3 { font-size: 1.05rem; margin-top: 1.5rem; }
a { color: #0b5cad; text-decoration: none; }
a:hover { text-decoration: underline; }
code { background: #eef1f5; border-radius: 3px; padding: .1em .35em;
  font: .92em ui-monospace, "SF Mono", Consolas, monospace; }
table { border-collapse: collapse; margin: 1rem 0; display: block;
  overflow-x: auto; max-width: 100%; }
th, td { border: 1px solid #d6dae2; padding: .35rem .6rem;
  text-align: left; white-space: nowrap; }
th { background: #eef1f5; }
tr:nth-child(even) td { background: #fafbfc; }
img { max-width: 100%; height: auto; border: 1px solid #e3e6eb;
  border-radius: 4px; margin: .5rem 0; }
hr { border: none; border-top: 1px solid #e3e6eb; margin: 2rem 0; }
ul { padding-left: 1.4rem; }
`

// htmlFiles renders the HTML sibling of every markdown file in the tree:
// REPORT.md becomes index.html, experiments/<ID>.md becomes
// experiments/<ID>.html. Call it before the manifest is computed so the
// HTML artifacts are content-hashed like everything else.
func htmlFiles(files []File) []File {
	var out []File
	for _, f := range files {
		if !strings.HasSuffix(f.Path, ".md") {
			continue
		}
		out = append(out, File{
			Path: htmlPath(f.Path),
			Data: []byte(renderHTMLPage(string(f.Data))),
		})
	}
	return out
}

// htmlPath maps a markdown artifact path to its HTML sibling. The index
// page takes the conventional name browsers and servers default to.
func htmlPath(mdPath string) string {
	dir, base := path.Split(mdPath)
	if base == "REPORT.md" {
		return dir + "index.html"
	}
	return strings.TrimSuffix(mdPath, ".md") + ".html"
}

// rewriteHref retargets intra-tree markdown links at their HTML siblings
// so the rendered pages navigate within the HTML layer. External links
// and non-markdown artifacts (manifest.json, figures) pass through.
func rewriteHref(href string) string {
	if strings.Contains(href, "://") || !strings.HasSuffix(href, ".md") {
		return href
	}
	return htmlPath(href)
}

// renderHTMLPage wraps a converted markdown document in the fixed page
// skeleton: charset and viewport metas, the page's first heading as the
// title, and the inline stylesheet.
func renderHTMLPage(md string) string {
	body, title := mdBody(md)
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html lang=\"en\">\n<head>\n")
	b.WriteString("<meta charset=\"utf-8\">\n")
	b.WriteString("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString("<style>\n" + pageCSS + "</style>\n</head>\n<body>\n<main>\n")
	b.WriteString(body)
	b.WriteString("</main>\n</body>\n</html>\n")
	return b.String()
}

// mdBody converts the supported markdown subset to HTML block by block
// and extracts the document title from the first level-1 heading.
func mdBody(md string) (body, title string) {
	lines := strings.Split(md, "\n")
	var b strings.Builder
	title = "decentsim report"
	sawTitle := false
	for i := 0; i < len(lines); {
		line := strings.TrimRight(lines[i], " \t")
		switch {
		case line == "":
			i++
		case line == "---":
			b.WriteString("<hr>\n")
			i++
		case strings.HasPrefix(line, "#"):
			level := 0
			for level < len(line) && line[level] == '#' && level < 6 {
				level++
			}
			text := strings.TrimSpace(line[level:])
			if level == 1 && !sawTitle {
				title = plainText(text)
				sawTitle = true
			}
			fmt.Fprintf(&b, "<h%d>%s</h%d>\n", level, renderInline(html.EscapeString(text)), level)
			i++
		case strings.HasPrefix(line, "|"):
			i = renderTable(&b, lines, i)
		case strings.HasPrefix(line, "- "):
			b.WriteString("<ul>\n")
			for i < len(lines) && strings.HasPrefix(lines[i], "- ") {
				fmt.Fprintf(&b, "<li>%s</li>\n", renderInline(html.EscapeString(lines[i][2:])))
				i++
			}
			b.WriteString("</ul>\n")
		case len(line) > 2 && strings.HasPrefix(line, "_") && strings.HasSuffix(line, "_"):
			// Whole-line underscore emphasis; underscores are never
			// emphasis inline (metric names like delivery_delay_ns
			// contain them as literals).
			fmt.Fprintf(&b, "<p><em>%s</em></p>\n", renderInline(html.EscapeString(line[1:len(line)-1])))
			i++
		default:
			var para []string
			for i < len(lines) {
				l := strings.TrimRight(lines[i], " \t")
				if l == "" || l == "---" || strings.HasPrefix(l, "#") ||
					strings.HasPrefix(l, "|") || strings.HasPrefix(l, "- ") {
					break
				}
				para = append(para, renderInline(html.EscapeString(l)))
				i++
			}
			fmt.Fprintf(&b, "<p>%s</p>\n", strings.Join(para, "\n"))
		}
	}
	return b.String(), title
}

// renderTable converts a run of consecutive pipe-table lines starting at
// lines[start] and returns the index of the first line after the table.
// The second row is the header separator when it is all dashes.
func renderTable(b *strings.Builder, lines []string, start int) int {
	i := start
	var rows [][]string
	for i < len(lines) && strings.HasPrefix(strings.TrimRight(lines[i], " \t"), "|") {
		rows = append(rows, splitTableRow(strings.TrimRight(lines[i], " \t")))
		i++
	}
	header := len(rows) >= 2 && isSeparatorRow(rows[1])
	b.WriteString("<table>\n")
	for ri, row := range rows {
		if header && ri == 1 {
			continue
		}
		tag := "td"
		if header && ri == 0 {
			tag = "th"
		}
		b.WriteString("<tr>")
		for _, cell := range row {
			fmt.Fprintf(b, "<%s>%s</%s>", tag, renderInline(html.EscapeString(cell)), tag)
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
	return i
}

// splitTableRow splits one "| a | b |" line into trimmed cells,
// honouring the \| escape mdCell emits for literal pipes.
func splitTableRow(line string) []string {
	line = strings.Trim(line, "|")
	var cells []string
	var cur strings.Builder
	for j := 0; j < len(line); j++ {
		switch {
		case line[j] == '\\' && j+1 < len(line) && line[j+1] == '|':
			cur.WriteByte('|')
			j++
		case line[j] == '|':
			cells = append(cells, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(line[j])
		}
	}
	cells = append(cells, strings.TrimSpace(cur.String()))
	return cells
}

// isSeparatorRow reports whether every cell is a markdown header
// separator (dashes with optional alignment colons).
func isSeparatorRow(cells []string) bool {
	for _, c := range cells {
		if c == "" {
			return false
		}
		for _, r := range strings.TrimSuffix(strings.TrimPrefix(c, ":"), ":") {
			if r != '-' {
				return false
			}
		}
	}
	return true
}

// renderInline converts inline markdown (images, links, **bold**, *em*,
// `code`) inside already-HTML-escaped text. Escaping first is safe: the
// escape never produces marker characters, and the markers themselves
// are ASCII the escape leaves alone.
func renderInline(esc string) string {
	var b strings.Builder
	for i := 0; i < len(esc); {
		switch {
		case strings.HasPrefix(esc[i:], "!["):
			if text, target, n, ok := parseLink(esc[i+1:]); ok {
				fmt.Fprintf(&b, "<img src=%q alt=%q>", rewriteHref(target), text)
				i += 1 + n
				continue
			}
			b.WriteByte(esc[i])
			i++
		case esc[i] == '[':
			if text, target, n, ok := parseLink(esc[i:]); ok {
				fmt.Fprintf(&b, "<a href=%q>%s</a>", rewriteHref(target), renderInline(text))
				i += n
				continue
			}
			b.WriteByte(esc[i])
			i++
		case strings.HasPrefix(esc[i:], "**"):
			if j := strings.Index(esc[i+2:], "**"); j >= 0 {
				fmt.Fprintf(&b, "<strong>%s</strong>", renderInline(esc[i+2:i+2+j]))
				i += j + 4
				continue
			}
			b.WriteString("**")
			i += 2
		case esc[i] == '*':
			if j := strings.IndexByte(esc[i+1:], '*'); j > 0 {
				fmt.Fprintf(&b, "<em>%s</em>", renderInline(esc[i+1:i+1+j]))
				i += j + 2
				continue
			}
			b.WriteByte(esc[i])
			i++
		case esc[i] == '`':
			if j := strings.IndexByte(esc[i+1:], '`'); j >= 0 {
				fmt.Fprintf(&b, "<code>%s</code>", esc[i+1:i+1+j])
				i += j + 2
				continue
			}
			b.WriteByte(esc[i])
			i++
		default:
			b.WriteByte(esc[i])
			i++
		}
	}
	return b.String()
}

// parseLink parses "[text](target)" at the start of s, returning the
// consumed byte count. Targets our renderers emit never contain
// parentheses or brackets, so first-match scanning is exact.
func parseLink(s string) (text, target string, n int, ok bool) {
	if len(s) == 0 || s[0] != '[' {
		return "", "", 0, false
	}
	close := strings.IndexByte(s, ']')
	if close < 0 || close+1 >= len(s) || s[close+1] != '(' {
		return "", "", 0, false
	}
	end := strings.IndexByte(s[close+2:], ')')
	if end < 0 {
		return "", "", 0, false
	}
	return s[1:close], s[close+2 : close+2+end], close + 2 + end + 1, true
}

// plainText strips inline markers for use in contexts that take no
// markup (the <title> element).
func plainText(s string) string {
	return strings.NewReplacer("**", "", "*", "", "`", "", "_", " ").Replace(s)
}
