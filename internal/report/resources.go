package report

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// The resources layer attaches one obs.Collector to every baseline run and
// renders a per-experiment Resources appendix from the representative
// replication. Everything on the pages is sim-derived (event counts,
// virtual time, transport counters, latency quantiles) and therefore part
// of the byte-determinism contract; host-side measurements (wall time,
// heap) are machine facts and are quarantined in resources/host.json,
// which the manifest indexes as volatile — present, but never hashed.

// hostFile is the tree path of the volatile host-measurement file.
const hostFile = "resources/host.json"

// resourcesLayer carries the per-run collectors and host samples gathered
// when Options.Resources is set.
type resourcesLayer struct {
	// collectors maps resKey(experiment, seed) to the collector attached
	// to that baseline run.
	collectors map[string]*obs.Collector
	hosts      []hostEntry
}

// hostEntry is one run's host-side measurements in resources/host.json.
type hostEntry struct {
	Experiment    string  `json:"experiment"`
	Seed          int64   `json:"seed"`
	Scale         float64 `json:"scale"`
	WallNanos     int64   `json:"wall_ns"`
	HeapLiveBytes uint64  `json:"heap_live_bytes"`
	AllocBytes    uint64  `json:"alloc_bytes"`
	Allocs        uint64  `json:"allocs"`
	GCCycles      uint64  `json:"gc_cycles"`
}

func resKey(experimentID string, seed int64) string {
	return fmt.Sprintf("%s|%d", strings.ToUpper(experimentID), seed)
}

// attach gives every baseline job its own collector. One collector per
// run keeps workers from sharing counters, which is what makes the
// rendered appendix independent of the worker count.
func (r *resourcesLayer) attach(jobs []harness.Job) {
	for i := range jobs {
		col := obs.NewCollector()
		jobs[i].Config.Obs = col
		r.collectors[resKey(jobs[i].ExperimentID, jobs[i].Config.Seed)] = col
	}
}

// record captures the host samples of the completed baseline runs.
func (r *resourcesLayer) record(results []harness.JobResult) {
	for _, jr := range results {
		e := hostEntry{
			Experiment: strings.ToUpper(jr.Job.ExperimentID),
			Seed:       jr.Job.Config.Seed,
			Scale:      jr.Job.Config.Scale,
			WallNanos:  int64(jr.Elapsed),
		}
		if jr.Host != nil {
			e.WallNanos = jr.Host.WallNanos
			e.HeapLiveBytes = jr.Host.HeapLiveBytes
			e.AllocBytes = jr.Host.AllocBytes
			e.Allocs = jr.Host.Allocs
			e.GCCycles = jr.Host.GCCycles
		}
		r.hosts = append(r.hosts, e)
	}
	sort.Slice(r.hosts, func(i, j int) bool {
		if r.hosts[i].Experiment != r.hosts[j].Experiment {
			return r.hosts[i].Experiment < r.hosts[j].Experiment
		}
		return r.hosts[i].Seed < r.hosts[j].Seed
	})
}

// hostJSON renders resources/host.json.
func (r *resourcesLayer) hostJSON() []byte {
	doc := struct {
		Note string      `json:"note"`
		Runs []hostEntry `json:"runs"`
	}{
		Note: "host-side measurements; machine-dependent, excluded from manifest hashing",
		Runs: r.hosts,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// hostEntry has no unmarshalable fields; this cannot fail.
		panic(err)
	}
	return append(enc, '\n')
}

// renderResourcesSection builds the Resources appendix of one experiment
// page from the representative replication's collector, plus any latency
// CDF figures. Returns "" when the experiment had no completed runs.
func renderResourcesSection(e core.Experiment, v *harness.GroupView, res *resourcesLayer) (string, []File) {
	var b strings.Builder
	b.WriteString("## Resources\n\n")
	if v == nil || v.Representative == nil {
		b.WriteString("_No completed runs; no telemetry was recorded._\n\n")
		return b.String(), nil
	}
	col := res.collectors[resKey(e.ID(), v.RepresentativeSeed)]
	if col == nil {
		b.WriteString("_No collector was attached to the representative run._\n\n")
		return b.String(), nil
	}
	snap := col.Snapshot()
	fmt.Fprintf(&b, "Run telemetry from the representative replication (seed %d). Everything below is sim-derived and byte-deterministic; host-side wall time and heap samples for all seeds live in [%s](../%s), which is excluded from manifest hashing.\n\n",
		v.RepresentativeSeed, hostFile, hostFile)

	b.WriteString("| Kernel | Value |\n|---|---|\n")
	fmt.Fprintf(&b, "| events fired | %d |\n", snap.Sim.Fired)
	fmt.Fprintf(&b, "| peak pending events | %d |\n", snap.Sim.MaxPending)
	fmt.Fprintf(&b, "| virtual time | %s |\n\n", time.Duration(snap.Sim.VirtualNano))

	if len(snap.Counters) > 0 {
		b.WriteString("### Counters\n\n")
		b.WriteString("| Counter | Total | Lanes (nodes × region) |\n|---|---|---|\n")
		for _, c := range snap.Counters {
			fmt.Fprintf(&b, "| %s | %d | %s |\n", mdCell(c.Name), c.Total, mdCell(laneCell(c.Lanes)))
		}
		b.WriteString("\n")
	}
	if len(snap.Gauges) > 0 {
		b.WriteString("### Gauges\n\n")
		b.WriteString("| Gauge | Last | High-water |\n|---|---|---|\n")
		for _, g := range snap.Gauges {
			fmt.Fprintf(&b, "| %s | %d | %d |\n", mdCell(g.Name), g.Value, g.Max)
		}
		b.WriteString("\n")
	}

	var figures []File
	if len(snap.Hists) > 0 {
		b.WriteString("### Histograms\n\n")
		b.WriteString("| Histogram | Count | Mean | Min | p50 | p90 | p99 | Max |\n|---|---|---|---|---|---|---|---|\n")
		for _, h := range snap.Hists {
			mean := int64(0)
			if h.Count > 0 {
				mean = h.Sum / int64(h.Count)
			}
			fmt.Fprintf(&b, "| %s | %d | %s | %s | %s | %s | %s | %s |\n",
				mdCell(h.Name), h.Count, histVal(h.Name, mean), histVal(h.Name, h.Min),
				histVal(h.Name, h.P50), histVal(h.Name, h.P90), histVal(h.Name, h.P99),
				histVal(h.Name, h.Max))
		}
		b.WriteString("\n")
		for i, h := range col.Histograms() {
			if h.Count() == 0 {
				continue
			}
			path := fmt.Sprintf("figures/%s-res-%d.svg", e.ID(), i+1)
			figures = append(figures, File{
				Path: path,
				Data: []byte(histCDF(h).SVG(figureW, figureH)),
			})
			fmt.Fprintf(&b, "![%s CDF](../%s)\n\n", mdCell(h.Name()), path)
		}
	}
	if len(snap.Counters) == 0 && len(snap.Gauges) == 0 && len(snap.Hists) == 0 {
		b.WriteString("_This experiment drives no instrumented subsystem; only kernel statistics were recorded._\n\n")
	}
	return b.String(), figures
}

// laneCell renders a counter's lane breakdown compactly: "0–3×EU: 10;
// 4–7×AS: 2", or "—" when the counter never recorded a located value.
func laneCell(lanes []obs.CounterLane) string {
	if len(lanes) == 0 {
		return "—"
	}
	parts := make([]string, len(lanes))
	for i, l := range lanes {
		parts[i] = fmt.Sprintf("%s×%s: %d", l.Nodes, l.Region, l.Value)
	}
	return strings.Join(parts, "; ")
}

// histVal formats a histogram value, rendering *_ns instruments as
// durations so latency quantiles read naturally.
func histVal(name string, v int64) string {
	if strings.HasSuffix(name, "_ns") {
		return time.Duration(v).String()
	}
	return fmt.Sprint(v)
}

// histCDF builds a cumulative-distribution figure from a histogram's
// interpolated quantiles. The x axis is milliseconds for *_ns instruments,
// raw values otherwise.
func histCDF(h *obs.Histogram) *metrics.Figure {
	nanos := strings.HasSuffix(h.Name(), "_ns")
	xlabel := "value"
	if nanos {
		xlabel = "latency (ms)"
	}
	f := &metrics.Figure{
		Title:  h.Name() + " CDF",
		XLabel: xlabel,
		YLabel: "fraction of samples ≤ x",
	}
	for i := 0; i <= 50; i++ {
		q := float64(i) / 50
		x := float64(h.Quantile(q))
		if nanos {
			x /= 1e6
		}
		f.Add(h.Name(), x, q)
	}
	return f
}
