package report

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

// updateGolden rewrites the golden report baselines:
//
//	go test ./internal/report -run Golden -update
//
// Only do this for an intentional rendering change; the files are the
// byte-level contract that report generation is deterministic.
var updateGolden = flag.Bool("update", false, "rewrite golden report artifacts")

func registry(t *testing.T) *core.Registry {
	t.Helper()
	reg, err := experiments.Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	return reg
}

func TestGenerateUnknownID(t *testing.T) {
	_, err := Generate(registry(t), Options{IDs: []string{"E99"}})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown experiment", err)
	}
}

func TestGenerateDuplicateID(t *testing.T) {
	_, err := Generate(registry(t), Options{IDs: []string{"E01", "e01"}})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate id", err)
	}
}

// TestGenerateTreeShape checks the documented tree layout: REPORT.md, one
// page per experiment, figure SVGs for experiments that emit figures, and
// a manifest indexing everything else.
func TestGenerateTreeShape(t *testing.T) {
	tree, err := Generate(registry(t), Options{
		IDs:   []string{"E01", "E12"},
		Seeds: []int64{1, 2},
		Scale: 0.25,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, want := range []string{"REPORT.md", "experiments/E01.md", "experiments/E12.md", "manifest.json", "figures/E12-1.svg"} {
		if tree.Lookup(want) == nil {
			paths := make([]string, len(tree.Files))
			for i, f := range tree.Files {
				paths[i] = f.Path
			}
			t.Fatalf("missing %s in tree %v", want, paths)
		}
	}
	report := string(tree.Lookup("REPORT.md"))
	if !strings.Contains(report, "| §I |") || !strings.Contains(report, "[E01](experiments/E01.md)") {
		t.Errorf("REPORT.md matrix lacks the §I E01 row:\n%s", report)
	}
	page := string(tree.Lookup("experiments/E12.md"))
	if !strings.Contains(page, "../figures/E12-1.svg") {
		t.Errorf("E12 page does not reference its figure:\n%s", page)
	}
	svg := string(tree.Lookup("figures/E12-1.svg"))
	if !strings.HasPrefix(svg, "<svg ") || strings.Contains(svg, "NaN") {
		t.Errorf("E12 figure is not clean SVG")
	}
}

// TestGenerateDeterministicAcrossWorkers is the acceptance gate: the full
// registry renders byte-identically at worker counts 1 and 8.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry determinism check skipped in -short mode")
	}
	opts := Options{Seeds: []int64{1, 2}, Scale: 0.25}
	opts.Workers = 1
	a, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate workers=1: %v", err)
	}
	opts.Workers = 8
	b, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate workers=8: %v", err)
	}
	if len(a.Files) != len(b.Files) {
		t.Fatalf("tree sizes differ: %d vs %d files", len(a.Files), len(b.Files))
	}
	for i := range a.Files {
		if a.Files[i].Path != b.Files[i].Path {
			t.Fatalf("file %d path differs: %s vs %s", i, a.Files[i].Path, b.Files[i].Path)
		}
		if !bytes.Equal(a.Files[i].Data, b.Files[i].Data) {
			t.Errorf("%s differs between worker counts", a.Files[i].Path)
		}
	}
	// Every experiment gets a page and a matrix row.
	reg := registry(t)
	report := string(a.Lookup("REPORT.md"))
	for _, e := range reg.All() {
		if a.Lookup("experiments/"+e.ID()+".md") == nil {
			t.Errorf("missing page for %s", e.ID())
		}
		if !strings.Contains(report, "["+e.ID()+"](experiments/"+e.ID()+".md)") {
			t.Errorf("REPORT.md lacks a matrix row for %s", e.ID())
		}
	}
	// Figure-emitting experiments get an SVG.
	for _, id := range []string{"E04", "E08", "E09", "E12", "E15"} {
		if a.Lookup("figures/"+id+"-1.svg") == nil {
			t.Errorf("missing SVG figure for %s", id)
		}
	}
}

// TestManifestHashes recomputes every hash in manifest.json.
func TestManifestHashes(t *testing.T) {
	tree, err := Generate(registry(t), Options{
		IDs:   []string{"E01", "E11"},
		Seeds: []int64{1, 2},
		Scale: 0.25,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var man struct {
		Seeds []int64 `json:"seeds"`
		Scale float64 `json:"scale"`
		Files []struct {
			Path   string `json:"path"`
			SHA256 string `json:"sha256"`
			Bytes  int    `json:"bytes"`
		} `json:"files"`
	}
	if err := json.Unmarshal(tree.Lookup("manifest.json"), &man); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if man.Scale != 0.25 || len(man.Seeds) != 2 {
		t.Errorf("manifest config wrong: %+v", man)
	}
	if len(man.Files) != len(tree.Files)-1 {
		t.Errorf("manifest lists %d files, want %d (everything but itself)",
			len(man.Files), len(tree.Files)-1)
	}
	for _, mf := range man.Files {
		data := tree.Lookup(mf.Path)
		if data == nil {
			t.Errorf("manifest references missing file %s", mf.Path)
			continue
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != mf.SHA256 {
			t.Errorf("%s hash mismatch: manifest %s, actual %s", mf.Path, mf.SHA256, got)
		}
		if mf.Bytes != len(data) {
			t.Errorf("%s size mismatch: manifest %d, actual %d", mf.Path, mf.Bytes, len(data))
		}
	}
}

func TestWriteDirRoundTrips(t *testing.T) {
	tree, err := Generate(registry(t), Options{
		IDs:   []string{"E11"},
		Seeds: []int64{1},
		Scale: 0.25,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	dir := t.TempDir()
	if err := tree.WriteDir(dir); err != nil {
		t.Fatalf("WriteDir: %v", err)
	}
	for _, f := range tree.Files {
		got, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(f.Path)))
		if err != nil {
			t.Fatalf("read back %s: %v", f.Path, err)
		}
		if !bytes.Equal(got, f.Data) {
			t.Errorf("%s differs on disk", f.Path)
		}
	}
}

// TestGoldenReport pins REPORT.md and manifest.json bytes for a fixed
// configuration — the regression contract for report determinism across
// commits that do not intend to change rendering.
func TestGoldenReport(t *testing.T) {
	tree, err := Generate(registry(t), Options{
		IDs:   []string{"E01", "E12"},
		Seeds: []int64{1, 2, 3},
		Scale: 0.25,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, name := range []string{"REPORT.md", "manifest.json", "experiments/E12.md", "figures/E12-1.svg"} {
		data := tree.Lookup(name)
		if data == nil {
			t.Fatalf("missing %s", name)
		}
		path := filepath.Join("testdata", "golden", filepath.FromSlash(name))
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatalf("mkdir: %v", err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatalf("update golden: %v", err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read golden (run with -update to create): %v", err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("%s diverges from golden %s; run with -update only if the rendering change is intentional", name, path)
		}
	}
}
