package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sensOpts is the cheap fixed configuration the sensitivity tests share:
// E11 is analytic (no simulation loop), so its full default grid runs in
// milliseconds.
func sensOpts() Options {
	return Options{
		IDs:         []string{"E11"},
		Seeds:       []int64{1, 2},
		Scale:       1,
		Sensitivity: true,
	}
}

// TestSensitivityTreeShape checks the sensitivity layer's documented
// artifacts: per-knob figures, the page's Sensitivity and Verdict
// stability sections, the matrix stability column, and the manifest's
// sensitivity summary.
func TestSensitivityTreeShape(t *testing.T) {
	tree, err := Generate(registry(t), sensOpts())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if tree.Lookup("figures/E11-sens-e11.tps-1.svg") == nil {
		paths := make([]string, len(tree.Files))
		for i, f := range tree.Files {
			paths[i] = f.Path
		}
		t.Fatalf("missing figures/E11-sens-e11.tps-1.svg in tree %v", paths)
	}
	// The tps figure must plot the metric the knob actually moves (kWh
	// per transaction), not the tps-independent network-power column that
	// happens to sort first.
	if svg := string(tree.Lookup("figures/E11-sens-e11.tps-1.svg")); !strings.Contains(svg, "kWh per transaction") {
		t.Error("e11.tps figure should plot the knob-responsive metric")
	}
	page := string(tree.Lookup("experiments/E11.md"))
	for _, want := range []string{
		"## Sensitivity",
		"### `e11.price`",
		"### `e11.tps`",
		"### Verdict stability",
		"(baseline)",
		"../figures/E11-sens-e11.tps-1.svg",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("E11 page lacks %q:\n%s", want, page)
		}
	}
	report := string(tree.Lookup("REPORT.md"))
	if !strings.Contains(report, "| Stability |") {
		t.Errorf("REPORT.md matrix lacks the Stability column:\n%s", report)
	}
	man := string(tree.Lookup("manifest.json"))
	for _, want := range []string{`"sensitivity"`, `"grid_points": 5`, `"e11.price"`} {
		if !strings.Contains(man, want) {
			t.Errorf("manifest lacks %s:\n%s", want, man)
		}
	}
	svg := string(tree.Lookup("figures/E11-sens-e11.tps-1.svg"))
	if !strings.HasPrefix(svg, "<svg ") || strings.Contains(svg, "NaN") {
		t.Error("sensitivity figure is not clean SVG")
	}
	if !strings.Contains(svg, "<polygon") {
		t.Error("sensitivity figure lacks the ±CI band polygon")
	}
}

// TestSensitivityOffUnchanged pins that a sensitivity-free generation
// emits no sensitivity artifacts — the existing golden trees stay the
// byte-level contract.
func TestSensitivityOffUnchanged(t *testing.T) {
	opts := sensOpts()
	opts.Sensitivity = false
	tree, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, f := range tree.Files {
		if strings.Contains(f.Path, "-sens-") {
			t.Errorf("sensitivity figure %s generated without Sensitivity", f.Path)
		}
	}
	if strings.Contains(string(tree.Lookup("experiments/E11.md")), "## Sensitivity") {
		t.Error("page has a Sensitivity section without Sensitivity")
	}
	if strings.Contains(string(tree.Lookup("REPORT.md")), "| Stability |") {
		t.Error("matrix has a Stability column without Sensitivity")
	}
	if strings.Contains(string(tree.Lookup("manifest.json")), `"sensitivity"`) {
		t.Error("manifest has a sensitivity block without Sensitivity")
	}
}

// TestSensitivityDeterministicAcrossWorkers is the acceptance gate for
// the new pages: equal options render byte-identical sensitivity trees
// at worker counts 1 and 8.
func TestSensitivityDeterministicAcrossWorkers(t *testing.T) {
	opts := sensOpts()
	opts.IDs = []string{"E11", "E16"}
	opts.Scale = 0.25
	opts.GridPoints = 3
	opts.Workers = 1
	a, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate workers=1: %v", err)
	}
	opts.Workers = 8
	b, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate workers=8: %v", err)
	}
	if len(a.Files) != len(b.Files) {
		t.Fatalf("tree sizes differ: %d vs %d files", len(a.Files), len(b.Files))
	}
	for i := range a.Files {
		if a.Files[i].Path != b.Files[i].Path {
			t.Fatalf("file %d path differs: %s vs %s", i, a.Files[i].Path, b.Files[i].Path)
		}
		if !bytes.Equal(a.Files[i].Data, b.Files[i].Data) {
			t.Errorf("%s differs between worker counts", a.Files[i].Path)
		}
	}
}

// TestSensitivityCustomSinglePointGrid drives the layer with an explicit
// one-value grid at the knob's floor: only that knob is swept, its
// single point renders, and the other registered knob is absent.
func TestSensitivityCustomSinglePointGrid(t *testing.T) {
	opts := sensOpts()
	opts.Grids = map[string][]float64{"e11.tps": {0.1}}
	tree, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	page := string(tree.Lookup("experiments/E11.md"))
	if !strings.Contains(page, "### `e11.tps`") || !strings.Contains(page, "| 0.1 |") {
		t.Errorf("single-point grid row missing:\n%s", page)
	}
	if strings.Contains(page, "### `e11.price`") {
		t.Error("custom grid should not sweep e11.price")
	}
	if tree.Lookup("figures/E11-sens-e11.tps-1.svg") == nil {
		t.Error("missing the single-point figure")
	}
}

// TestSensitivityCategoricalKnob sweeps E16's selector knob
// e16.endorsers (domain 1..3): the grid enumerates the non-default
// values and both rows land in the verdict table.
func TestSensitivityCategoricalKnob(t *testing.T) {
	opts := Options{
		IDs:         []string{"E16"},
		Seeds:       []int64{1, 2},
		Scale:       0.25,
		Sensitivity: true,
		Grids:       map[string][]float64{"e16.endorsers": {1, 3}},
	}
	tree, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	page := string(tree.Lookup("experiments/E16.md"))
	for _, want := range []string{"### `e16.endorsers`", "| 1 |", "| 3 |", "| 2 (baseline) |"} {
		if !strings.Contains(page, want) {
			t.Errorf("categorical sweep lacks %q:\n%s", want, page)
		}
	}
}

// TestSensitivityDuplicateGridValues checks duplicate values collapse to
// one scenario instead of double-counting seeds.
func TestSensitivityDuplicateGridValues(t *testing.T) {
	opts := sensOpts()
	opts.Grids = map[string][]float64{"e11.tps": {0.1, 0.1, 8}}
	tree, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	page := string(tree.Lookup("experiments/E11.md"))
	if got := strings.Count(page, "| 0.1 |"); got != 1 {
		t.Errorf("duplicate grid value rendered %d rows, want 1:\n%s", got, page)
	}
	if !strings.Contains(string(tree.Lookup("manifest.json")), `"scenarios": 2`) {
		t.Error("manifest should count 2 deduplicated scenarios")
	}
}

// TestSensitivityNoSharedMetricNote pins the degenerate-figure guard: a
// grid whose views share no metric name with the baseline (E11's table
// rows are keyed by the swept price) renders an explanatory note, never
// a baseline-only plot.
func TestSensitivityNoSharedMetricNote(t *testing.T) {
	opts := sensOpts()
	opts.Grids = map[string][]float64{"e11.price": {100}}
	tree, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	page := string(tree.Lookup("experiments/E11.md"))
	if !strings.Contains(page, "series across this knob's grid") {
		t.Errorf("page lacks the no-shared-metric note:\n%s", page)
	}
	for _, f := range tree.Files {
		if strings.Contains(f.Path, "-sens-") {
			t.Errorf("no figure should be emitted, got %s", f.Path)
		}
	}
}

// TestSensitivityAllErrored pins the zero-evidence rendering: a grid
// whose every replication errors (value below the knob floor) must say
// so on the page and show ERROR in the matrix — never "stable".
func TestSensitivityAllErrored(t *testing.T) {
	opts := sensOpts()
	opts.Grids = map[string][]float64{"e11.tps": {0.01}} // floor is 0.1
	tree, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if tree.RunErrors == 0 {
		t.Fatal("below-floor grid value should produce run errors")
	}
	page := string(tree.Lookup("experiments/E11.md"))
	if !strings.Contains(page, "no completed grid runs") {
		t.Errorf("page should report zero completed grid runs:\n%s", page)
	}
	if strings.Contains(page, "**Stability: stable**") {
		t.Error("zero evidence must not render as stable")
	}
	report := string(tree.Lookup("REPORT.md"))
	if !strings.Contains(report, "| ERROR |") {
		t.Error("matrix stability cell should be ERROR")
	}
	// The summary must count the broken sweep, not silently drop it.
	if !strings.Contains(report, "sweep errored: E11") {
		t.Errorf("summary should name the errored sweep:\n%s", report)
	}
}

// TestGoldenSensitivityReport pins the sensitivity rendering bytes for a
// fixed configuration — the regression contract that the new pages stay
// deterministic across commits that do not intend to change them.
func TestGoldenSensitivityReport(t *testing.T) {
	tree, err := Generate(registry(t), sensOpts())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, name := range []string{"REPORT.md", "manifest.json", "experiments/E11.md", "figures/E11-sens-e11.tps-1.svg"} {
		data := tree.Lookup(name)
		if data == nil {
			t.Fatalf("missing %s", name)
		}
		path := filepath.Join("testdata", "golden_sens", filepath.FromSlash(name))
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatalf("mkdir: %v", err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatalf("update golden: %v", err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read golden (run with -update to create): %v", err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("%s diverges from golden %s; run with -update only if the rendering change is intentional", name, path)
		}
	}
}
