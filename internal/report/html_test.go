package report

import (
	"bytes"
	"strings"
	"testing"
)

// TestHTMLTreeShape checks the HTML layer: every markdown page gains an
// HTML sibling, the siblings are manifest-indexed, and the markdown tree
// itself is unchanged by enabling it.
func TestHTMLTreeShape(t *testing.T) {
	opts := Options{IDs: []string{"E01", "E12"}, Seeds: []int64{1, 2}, Scale: 0.25}
	plain, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	opts.HTML = true
	tree, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate with HTML: %v", err)
	}
	for _, want := range []string{"index.html", "experiments/E01.html", "experiments/E12.html"} {
		if tree.Lookup(want) == nil {
			t.Errorf("missing %s in HTML tree", want)
		}
	}
	for _, f := range plain.Files {
		if f.Path == "manifest.json" {
			continue // gains the html rows
		}
		if !bytes.Equal(tree.Lookup(f.Path), f.Data) {
			t.Errorf("%s changed when HTML rendering was enabled", f.Path)
		}
	}
	man, err := ParseManifest(tree.Lookup("manifest.json"))
	if err != nil {
		t.Fatalf("ParseManifest: %v", err)
	}
	indexed := map[string]bool{}
	for _, mf := range man.Files {
		indexed[mf.Path] = mf.SHA256 != ""
	}
	for _, want := range []string{"index.html", "experiments/E01.html"} {
		if !indexed[want] {
			t.Errorf("manifest does not content-hash %s", want)
		}
	}
}

// TestHTMLDeterminism pins the byte contract: the HTML layer is a pure
// function of the markdown pages, so two generations at different worker
// counts agree byte for byte.
func TestHTMLDeterminism(t *testing.T) {
	gen := func(workers int) *Tree {
		tree, err := Generate(registry(t), Options{
			IDs: []string{"E01", "E12"}, Seeds: []int64{1, 2}, Scale: 0.25,
			HTML: true, Workers: workers,
		})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		return tree
	}
	a, b := gen(1), gen(4)
	if len(a.Files) != len(b.Files) {
		t.Fatalf("file counts differ: %d vs %d", len(a.Files), len(b.Files))
	}
	for i := range a.Files {
		if a.Files[i].Path != b.Files[i].Path || !bytes.Equal(a.Files[i].Data, b.Files[i].Data) {
			t.Errorf("tree diverges at %s", a.Files[i].Path)
		}
	}
}

// TestHTMLPageContent checks the converted pages: self-contained
// skeleton, rewritten intra-tree links, preserved figure references, and
// no JS.
func TestHTMLPageContent(t *testing.T) {
	tree, err := Generate(registry(t), Options{
		IDs: []string{"E01", "E12"}, Seeds: []int64{1, 2}, Scale: 0.25, HTML: true,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	index := string(tree.Lookup("index.html"))
	for _, want := range []string{
		"<!doctype html>", "<style>", "<table>", "<th>",
		`<a href="experiments/E01.html">`,
	} {
		if !strings.Contains(index, want) {
			t.Errorf("index.html lacks %q", want)
		}
	}
	if strings.Contains(index, "<script") {
		t.Errorf("index.html contains script tags; pages must be JS-free")
	}
	if strings.Contains(index, ".md)") || strings.Contains(index, `href="REPORT.md"`) {
		t.Errorf("index.html still links markdown artifacts")
	}
	page := string(tree.Lookup("experiments/E12.html"))
	if !strings.Contains(page, `<img src="../figures/E12-1.svg"`) {
		t.Errorf("E12.html lost its figure reference:\n%.400s", page)
	}
	if !strings.Contains(page, `<a href="../index.html">`) {
		t.Errorf("E12.html back-link does not target index.html")
	}
}

// TestMDBodyConversion pins the converter on the exact markdown subset
// the renderers emit.
func TestMDBodyConversion(t *testing.T) {
	cases := []struct {
		name, md, want string
	}{
		{"heading", "## Verdicts\n", "<h2>Verdicts</h2>"},
		{"heading code", "### `e01.churn`\n", "<h3><code>e01.churn</code></h3>"},
		{"bold", "**Stability: fragile**", "<strong>Stability: fragile</strong>"},
		{"star em", "a claim is *stable* when", "a claim is <em>stable</em> when"},
		{"whole line underscore em", "_No runs recorded._", "<p><em>No runs recorded.</em></p>"},
		{"inline underscores literal", "mean delivery_delay_ns over", "mean delivery_delay_ns over"},
		{"code", "the `-shards` knob", "the <code>-shards</code> knob"},
		{"link rewrite", "[E01](experiments/E01.md)", `<a href="experiments/E01.html">E01</a>`},
		{"report link rewrite", "[Back](../REPORT.md)", `<a href="../index.html">Back</a>`},
		{"non-md link kept", "[manifest](manifest.json)", `<a href="manifest.json">manifest</a>`},
		{"external link kept", "[p](https://x.test/a.md)", `<a href="https://x.test/a.md">p</a>`},
		{"image", "![E12 figure 1](../figures/E12-1.svg)", `<img src="../figures/E12-1.svg" alt="E12 figure 1">`},
		{"hr", "---\n", "<hr>"},
		{"list", "- **run error:** seed 3\n", "<ul>\n<li><strong>run error:</strong> seed 3</li>\n</ul>"},
		{"escaping", "a < b & c\n", "a &lt; b &amp; c"},
		{"table", "| a | b |\n|---|---|\n| 1 | 2 |\n",
			"<table>\n<tr><th>a</th><th>b</th></tr>\n<tr><td>1</td><td>2</td></tr>\n</table>"},
		{"escaped pipe cell", "| x \\| y |\n", "<td>x | y</td>"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, _ := mdBody(tc.md)
			if !strings.Contains(body, tc.want) {
				t.Errorf("mdBody(%q) = %q, want substring %q", tc.md, body, tc.want)
			}
		})
	}
}

// TestHTMLTitle checks the <title> comes from the first heading with
// markers stripped.
func TestHTMLTitle(t *testing.T) {
	page := renderHTMLPage("# Report — `decentsim` verdicts\n\nbody\n")
	if !strings.Contains(page, "<title>Report — decentsim verdicts</title>") {
		t.Errorf("title not extracted from first heading:\n%.300s", page)
	}
}

// TestTreeWalkOpen covers the in-memory artifact API serve streams from.
func TestTreeWalkOpen(t *testing.T) {
	tree := &Tree{Files: []File{
		{Path: "REPORT.md", Data: []byte("a")},
		{Path: "manifest.json", Data: []byte("{}")},
	}}
	var walked []string
	if err := tree.Walk(func(f File) error {
		walked = append(walked, f.Path)
		return nil
	}); err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if strings.Join(walked, ",") != "REPORT.md,manifest.json" {
		t.Errorf("Walk order = %v", walked)
	}
	rd, ok := tree.Open("manifest.json")
	if !ok {
		t.Fatalf("Open(manifest.json) missing")
	}
	var buf bytes.Buffer
	buf.ReadFrom(rd)
	if buf.String() != "{}" {
		t.Errorf("Open read %q", buf.String())
	}
	if _, ok := tree.Open("nope"); ok {
		t.Errorf("Open(nope) should report absence")
	}
}
