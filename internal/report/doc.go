// Package report assembles the paper's argument back together: it runs
// any set of experiments across a seed set on the harness worker pool and
// renders the aggregated evidence as a deterministic document tree — the
// publishable counterpart of the per-run terminal output.
//
// The tree contains:
//
//   - REPORT.md — the claim-traceability matrix: paper section →
//     experiment → majority-vote verdict, with a headline metric carrying
//     its 95% confidence half-width, grouped and ordered by the paper's
//     section structure (core.SectionOf);
//   - experiments/<ID>.md — one page per experiment: claim, per-check
//     seed votes with representative detail, aggregated metrics
//     (mean/stddev/95% CI/min/max), the representative run's tables as
//     markdown, and its figures as embedded SVG;
//   - figures/<ID>-<n>.svg — self-contained vector plots rendered by
//     metrics.Figure.SVG;
//   - manifest.json — every artifact indexed by path, SHA-256 content
//     hash, and size, plus the generation parameters.
//
// With Options.Sensitivity, every selected experiment's registered knobs
// are additionally swept over per-knob grids (KnobSpec.Grid: floor →
// default → stretch, companions from KnobSpec.Requires applied), and the
// tree gains a sensitivity layer: metric-vs-knob figures with ±95% CI
// bands (figures/<ID>-sens-<knob>-<n>.svg), per-knob verdict tables, a
// verdict-stability table per page, and a stable/fragile column in the
// traceability matrix.
//
// Determinism is the core contract: Generate consumes only the harness
// aggregation view (itself schedule-independent) and renders with fixed
// formatting, so equal registries, ids, seeds, and scales produce
// byte-identical trees at any worker count. CI regenerates the report at
// two worker counts and fails on any byte difference.
package report
