package report

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/metrics"
)

// maxHeadlines bounds how many headline metrics get a figure per knob —
// experiments recording many explicit metrics would otherwise multiply
// the figure count without adding narrative.
const maxHeadlines = 4

// sensitivity carries one generation's knob-sweep layer: the grids that
// were run, the aggregated view of every grid scenario, and the
// per-experiment stability verdicts derived from them.
type sensitivity struct {
	gridPoints int
	// knobs maps experiment id -> its swept knob names, sorted.
	knobs map[string][]string
	// grids maps knob name -> swept values (deduplicated, in submission
	// order — ascending for the default grids).
	grids map[string][]float64
	// requires maps knob name -> companion assignments merged into every
	// scenario of that knob's grid.
	requires map[string]map[string]float64
	// defaults maps knob name -> spec default, the baseline x position.
	defaults map[string]float64
	// hasDefault marks knobs whose grid includes the default value, so
	// figures skip the duplicate baseline injection at that x.
	hasDefault map[string]bool
	// views indexes the aggregated grid scenarios by harness.ScenarioKey.
	views map[string]harness.GroupView
	// scenarios counts the distinct grid scenarios run.
	scenarios int
	// runErrors counts individual errored replications in the sweep.
	runErrors int
	// stability accumulates per-experiment verdict stability while pages
	// render, then feeds the matrix column (pages render first).
	stability map[string]*expStability
}

// expStability is one experiment's verdict-stability summary.
type expStability struct {
	swept  int // knobs swept
	points int // grid scenarios with at least one completed run
	errors int // grid scenarios where every replication errored
	// flips maps check name -> knob=value labels whose majority vote
	// differs from the baseline, in knob-then-value order.
	flips map[string][]string
	// fragile lists knob names with at least one flip, sorted.
	fragile []string
}

func (st *expStability) fragileLabel() string {
	switch {
	case st == nil || st.swept == 0:
		return "—"
	case st.points == 0:
		return "ERROR"
	case len(st.fragile) == 0:
		return "stable"
	default:
		return "fragile (" + strings.Join(st.fragile, ", ") + ")"
	}
}

// buildSensitivity resolves the grid spec for the selected experiments:
// the caller-supplied Options.Grids, or the default KnobSpec grids at
// the generation's scale. Knobs not owned by a selected experiment are
// dropped; duplicate grid values are deduplicated (they would aggregate
// into one group and double-count every seed).
func buildSensitivity(exps []core.Experiment, scale float64, opts Options) *sensitivity {
	points := opts.GridPoints
	if points < 1 {
		points = experiments.DefaultGridPoints
	}
	grids := opts.Grids
	if grids == nil {
		grids = experiments.SensitivityGrids(points, scale)
	}
	specs := experiments.KnobSpecs()
	s := &sensitivity{
		gridPoints: points,
		knobs:      make(map[string][]string, len(exps)),
		grids:      make(map[string][]float64, len(grids)),
		requires:   make(map[string]map[string]float64),
		defaults:   make(map[string]float64),
		hasDefault: make(map[string]bool),
		stability:  make(map[string]*expStability, len(exps)),
	}
	names := make([]string, 0, len(grids))
	for name := range grids {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, e := range exps {
		for _, name := range names {
			if !harness.KnobAppliesTo(name, e.ID()) {
				continue
			}
			var vals []float64
			seen := make(map[float64]bool, len(grids[name]))
			for _, v := range grids[name] {
				if seen[v] {
					continue
				}
				seen[v] = true
				vals = append(vals, v)
			}
			if len(vals) == 0 {
				continue
			}
			s.knobs[e.ID()] = append(s.knobs[e.ID()], name)
			s.grids[name] = vals
			if spec, ok := specs[name]; ok {
				s.defaults[name] = spec.Default
				s.hasDefault[name] = seen[spec.Default]
				if len(spec.Requires) > 0 {
					s.requires[name] = spec.Requires
				}
			}
			s.scenarios += len(vals)
		}
	}
	// Caller-supplied grids are not bounded by GridPoints; report the
	// real maximum so the page text and manifest describe what ran.
	if opts.Grids != nil {
		s.gridPoints = 0
		for _, vals := range s.grids {
			if len(vals) > s.gridPoints {
				s.gridPoints = len(vals)
			}
		}
	}
	return s
}

// params builds the scenario assignment for one grid point: the swept
// knob plus its companions.
func (s *sensitivity) params(knob string, v float64) map[string]float64 {
	p := map[string]float64{knob: v}
	for rn, rv := range s.requires[knob] {
		p[rn] = rv
	}
	return p
}

// jobs expands the grids into the deterministic sweep job list:
// experiments in page order, knobs sorted, values in grid order, seeds
// innermost — mirroring harness.Sweep expansion so aggregate groups come
// out in render order.
func (s *sensitivity) jobs(exps []core.Experiment, seeds []int64, scale float64) []harness.Job {
	var jobs []harness.Job
	for _, e := range exps {
		for _, knob := range s.knobs[e.ID()] {
			for _, v := range s.grids[knob] {
				for _, seed := range seeds {
					jobs = append(jobs, harness.Job{
						ExperimentID: e.ID(),
						Config: core.Config{
							Seed:   seed,
							Scale:  scale,
							Params: s.params(knob, v),
						},
					})
				}
			}
		}
	}
	return jobs
}

// view returns the aggregated group for one grid point, if it ran.
func (s *sensitivity) view(id, knob string, v float64, scale float64) (harness.GroupView, bool) {
	gv, ok := s.views[harness.ScenarioKey(id, scale, s.params(knob, v))]
	return gv, ok
}

// sweptKnobs returns every swept knob name across all experiments,
// sorted — the manifest's grid index.
func (s *sensitivity) sweptKnobs() []string {
	names := make([]string, 0, len(s.grids))
	for name := range s.grids {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// fmtKnobValue renders a grid value exactly as harness.ParamLabel does,
// so table rows and flip labels match the scenario labels in exports.
func fmtKnobValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sensHeadlines picks the metrics that get a metric-vs-knob figure: the
// experiment's explicit full-precision metrics (core.Result.AddMetric),
// capped at maxHeadlines. explicit is false when the experiment records
// none — the caller then selects a knob-responsive table-derived metric
// per knob instead.
func sensHeadlines(baseline harness.GroupView) (names []string, explicit bool) {
	if baseline.Representative != nil {
		seen := make(map[string]bool)
		for _, m := range baseline.Representative.Metrics {
			if len(names) >= maxHeadlines {
				break
			}
			if seen[m.Name] {
				continue
			}
			seen[m.Name] = true
			names = append(names, m.Name)
		}
	}
	if len(names) > 0 {
		return names, true
	}
	if m, ok := baseline.Headline(); ok {
		return []string{m.Name}, false
	}
	return nil, false
}

// knobResponsiveMetric picks the table-derived metric to plot against one
// knob: the first baseline metric (in aggregation order) that a grid
// view carries with a mean differing from the baseline's or varying
// across the grid — cross-seed variance says nothing about knob
// response, so a flat-but-present metric must not shadow the one the
// knob actually moves. ok is false when no baseline metric responds
// (e.g. the metric names themselves embed the swept knob's value).
func knobResponsiveMetric(baseline harness.GroupView, views []harness.GroupView) (string, bool) {
	for _, bm := range baseline.Metrics {
		responds := false
		for _, v := range views {
			m, ok := metricAgg(v, bm.Name)
			if !ok {
				continue
			}
			if m.Mean != bm.Mean {
				responds = true
				break
			}
		}
		if responds {
			return bm.Name, true
		}
	}
	// Nothing responds: a present-but-flat metric still makes an honest
	// (insensitive) figure, so fall back to the first one a grid view
	// carries at all.
	for _, bm := range baseline.Metrics {
		for _, v := range views {
			if _, ok := metricAgg(v, bm.Name); ok {
				return bm.Name, true
			}
		}
	}
	return "", false
}

// metricAgg finds one named aggregated metric in a group view.
func metricAgg(v harness.GroupView, name string) (harness.MetricAgg, bool) {
	for _, m := range v.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return harness.MetricAgg{}, false
}

// checkAgg finds one named check vote in a group view.
func checkAgg(v harness.GroupView, name string) (harness.CheckAgg, bool) {
	for _, c := range v.Checks {
		if c.Name == name {
			return c, true
		}
	}
	return harness.CheckAgg{}, false
}

// renderSensitivitySection renders one experiment's sensitivity layer:
// per-knob metric-vs-knob figures with ±95% CI bands, per-knob verdict
// tables, and the experiment's verdict-stability table. It records the
// experiment's stability summary on sens for the matrix column.
func renderSensitivitySection(e core.Experiment, baseline *harness.GroupView, sens *sensitivity, gen genContext) (string, []File) {
	knobs := sens.knobs[e.ID()]
	st := &expStability{swept: len(knobs), flips: make(map[string][]string)}
	sens.stability[e.ID()] = st
	if len(knobs) == 0 {
		return "", nil
	}
	specs := experiments.KnobSpecs()

	var b strings.Builder
	var figures []File
	b.WriteString("## Sensitivity\n\n")
	fmt.Fprintf(&b, "Each registered knob swept over up to %d grid values (floor → default → stretch; see DESIGN.md) × seeds {%s} at scale %.4g. ",
		sens.gridPoints, gen.seedsLabel(), gen.scale)
	b.WriteString("Figures plot each headline metric's cross-seed mean with a shaded ±95% CI band; the baseline (default) point reuses the replications above. The stability table lists the knob values that flip a check's majority vote.\n\n")

	var headlines []string
	explicitHeadlines := false
	if baseline != nil {
		headlines, explicitHeadlines = sensHeadlines(*baseline)
	}

	fragile := make(map[string]bool)
	for _, knob := range knobs {
		fmt.Fprintf(&b, "### `%s`\n\n", knob)
		if spec, ok := specs[knob]; ok {
			fmt.Fprintf(&b, "%s\n\n", mdCell(spec.Desc))
		}
		if req := sens.requires[knob]; len(req) > 0 {
			b.WriteString("Every grid point of this knob also sets " + mdCell(harness.ParamLabel(req)) + "; its verdicts are compared against the unmodified baseline.\n\n")
		}

		// Collect the knob's grid points that actually aggregated.
		type gridPoint struct {
			value float64
			view  harness.GroupView
		}
		var pts []gridPoint
		for _, v := range sens.grids[knob] {
			gv, ok := sens.view(e.ID(), knob, v, gen.scale)
			if !ok {
				continue
			}
			pts = append(pts, gridPoint{value: v, view: gv})
		}
		sort.SliceStable(pts, func(i, j int) bool { return pts[i].value < pts[j].value })

		// Figures: one per headline metric, points in ascending knob order,
		// baseline injected at the default unless the grid covers it.
		// Experiments without explicit metrics plot the table-derived
		// metric this knob actually moves (cross-seed variance says
		// nothing about knob response). A metric no grid point carries
		// (table-derived names can embed the swept knob's value, e.g.
		// E08's "(6s propagation)" table title) would render a misleading
		// baseline-only plot — emit a note instead; the verdict table
		// below still covers the knob.
		knobMetrics := headlines
		if !explicitHeadlines && baseline != nil && len(pts) > 0 {
			gridViews := make([]harness.GroupView, 0, len(pts))
			for _, p := range pts {
				gridViews = append(gridViews, p.view)
			}
			if name, ok := knobResponsiveMetric(*baseline, gridViews); ok {
				knobMetrics = []string{name}
			}
		}
		for mi, metric := range knobMetrics {
			fig := &sensFigure{metric: metric, knob: knob}
			gridPts, votedPts := 0, 0
			for _, p := range pts {
				if voted := p.view.Replications - len(p.view.Errors); voted == 0 {
					continue
				}
				votedPts++
				if m, ok := metricAgg(p.view, metric); ok {
					fig.add(p.value, m)
					gridPts++
				}
			}
			if gridPts == 0 {
				if votedPts == 0 {
					fmt.Fprintf(&b, "_No figure: every grid replication of this knob errored; see the verdict table below._\n\n")
				} else {
					fmt.Fprintf(&b, "_No `%s` series across this knob's grid — the metric's name varies with the knob value; see the verdict table below._\n\n", mdCell(metric))
				}
				continue
			}
			if baseline != nil && !sens.hasDefault[knob] {
				if def, ok := sens.defaults[knob]; ok {
					if m, ok := metricAgg(*baseline, metric); ok {
						fig.addBaseline(def, m)
					}
				}
			}
			path := fmt.Sprintf("figures/%s-sens-%s-%d.svg", e.ID(), knob, mi+1)
			figures = append(figures, File{Path: path, Data: []byte(fig.svg())})
			fmt.Fprintf(&b, "![%s](../%s)\n\n", mdCell(metric+" vs "+knob), path)
		}

		// Per-knob verdict table: every grid value plus the baseline row,
		// ascending by value (baseline after a same-valued grid row).
		type row struct {
			value    float64
			baseline bool
			cells    string
		}
		var rows []row
		for _, p := range pts {
			voted := p.view.Replications - len(p.view.Errors)
			passes := 0
			for _, c := range p.view.Checks {
				if c.Verdict {
					passes++
				}
			}
			verdict := "NOT REPRODUCED"
			if p.view.Reproduced {
				verdict = "REPRODUCED"
			}
			if voted == 0 {
				verdict = "ERROR"
				st.errors++
				rows = append(rows, row{value: p.value,
					cells: fmt.Sprintf("| %s | — | ERROR |", fmtKnobValue(p.value))})
				continue
			}
			st.points++
			rows = append(rows, row{value: p.value,
				cells: fmt.Sprintf("| %s | %d/%d | %s |", fmtKnobValue(p.value), passes, len(p.view.Checks), verdict)})
		}
		if baseline != nil {
			if def, ok := sens.defaults[knob]; ok {
				passes := 0
				for _, c := range baseline.Checks {
					if c.Verdict {
						passes++
					}
				}
				verdict := "NOT REPRODUCED"
				if baseline.Reproduced {
					verdict = "REPRODUCED"
				}
				rows = append(rows, row{value: def, baseline: true,
					cells: fmt.Sprintf("| %s (baseline) | %d/%d | %s |", fmtKnobValue(def), passes, len(baseline.Checks), verdict)})
			}
		}
		sort.SliceStable(rows, func(i, j int) bool {
			if rows[i].value != rows[j].value {
				return rows[i].value < rows[j].value
			}
			return !rows[i].baseline && rows[j].baseline
		})
		if len(rows) > 0 {
			fmt.Fprintf(&b, "| `%s` | Checks (majority-pass) | Verdict |\n|---|---|---|\n", knob)
			for _, r := range rows {
				b.WriteString(r.cells + "\n")
			}
			b.WriteString("\n")
		}

		// Flip detection against the baseline votes.
		if baseline != nil {
			for _, bc := range baseline.Checks {
				for _, p := range pts {
					if p.view.Replications-len(p.view.Errors) == 0 {
						continue
					}
					if c, ok := checkAgg(p.view, bc.Name); ok && c.Verdict != bc.Verdict {
						label := knob + "=" + fmtKnobValue(p.value)
						st.flips[bc.Name] = append(st.flips[bc.Name], label)
						fragile[knob] = true
					}
				}
			}
		}
	}

	st.fragile = make([]string, 0, len(fragile))
	for knob := range fragile {
		st.fragile = append(st.fragile, knob)
	}
	sort.Strings(st.fragile)

	// The experiment-level stability table: every baseline check with the
	// knob values that flip its majority vote.
	b.WriteString("### Verdict stability\n\n")
	if baseline == nil || len(baseline.Checks) == 0 {
		b.WriteString("_No baseline checks to compare against._\n\n")
		return b.String(), figures
	}
	totalFlips := 0
	b.WriteString("| Check | Baseline | Flips at |\n|---|---|---|\n")
	for _, bc := range baseline.Checks {
		vote := "FAIL"
		if bc.Verdict {
			vote = "PASS"
		}
		at := "—"
		if fl := st.flips[bc.Name]; len(fl) > 0 {
			at = strings.Join(fl, ", ")
			totalFlips += len(fl)
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n", mdCell(bc.Name), vote, mdCell(at))
	}
	switch {
	case st.points == 0:
		// Matches the matrix's ERROR cell: zero completed grid runs is
		// absence of evidence, not stability.
		b.WriteString("\n**Stability: no completed grid runs** — every swept scenario errored.\n\n")
	case totalFlips == 0:
		fmt.Fprintf(&b, "\n**Stability: stable** — every check keeps its baseline majority vote across all %d completed grid points.\n\n", st.points)
	default:
		fmt.Fprintf(&b, "\n**Stability: fragile** — %d flip(s) across %s.\n\n",
			totalFlips, strings.Join(st.fragile, ", "))
	}
	return b.String(), figures
}

// sensFigure accumulates one metric-vs-knob figure: the grid means with
// their ±95% CI envelope, plus the baseline (default) marker point.
type sensFigure struct {
	metric string
	knob   string
	points []sensPoint
}

type sensPoint struct {
	x        float64
	m        harness.MetricAgg
	baseline bool
}

func (f *sensFigure) add(x float64, m harness.MetricAgg) {
	f.points = append(f.points, sensPoint{x: x, m: m})
}

func (f *sensFigure) addBaseline(x float64, m harness.MetricAgg) {
	f.points = append(f.points, sensPoint{x: x, m: m, baseline: true})
}

// svg renders the figure: the "mean" polyline over every point (grid and
// baseline alike, ascending x) wrapped in its mean±CI band, with the
// baseline point repeated as its own marker series.
func (f *sensFigure) svg() string {
	sort.SliceStable(f.points, func(i, j int) bool { return f.points[i].x < f.points[j].x })
	fig := &metrics.Figure{
		Title:  f.metric + " vs " + f.knob,
		XLabel: f.knob,
		YLabel: f.metric,
	}
	for _, p := range f.points {
		fig.Add("mean", p.x, p.m.Mean)
		fig.AddBand("mean", p.x, p.m.Mean-p.m.CI95, p.m.Mean+p.m.CI95)
	}
	for _, p := range f.points {
		if p.baseline {
			fig.Add("default", p.x, p.m.Mean)
		}
	}
	return fig.SVG(figureW, figureH)
}
