package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestResourcesAppendix checks the resources layer end to end: pages gain
// a Resources appendix fed by per-run collectors, transport-driving
// experiments get counter tables and a latency CDF figure, and the
// host-side samples land in resources/host.json, indexed as volatile.
func TestResourcesAppendix(t *testing.T) {
	tree, err := Generate(registry(t), Options{
		IDs:       []string{"E02", "E11"},
		Seeds:     []int64{1, 2},
		Scale:     0.25,
		Resources: true,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}

	// E02 drives the instrumented transport: counters, a delivery-delay
	// histogram, and its CDF figure.
	page := string(tree.Lookup("experiments/E02.md"))
	for _, want := range []string{
		"## Resources", "| events fired |", "net.msgs_sent",
		"net.delivery_delay_ns", "../figures/E02-res-1.svg",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("E02 page lacks %q:\n%s", want, page)
		}
	}
	svg := tree.Lookup("figures/E02-res-1.svg")
	if svg == nil || !bytes.HasPrefix(svg, []byte("<svg ")) || bytes.Contains(svg, []byte("NaN")) {
		t.Error("E02 resources CDF figure missing or not clean SVG")
	}

	// E11 is a closed-form economic model with no instrumented subsystem:
	// the appendix must still render, saying so.
	page = string(tree.Lookup("experiments/E11.md"))
	if !strings.Contains(page, "## Resources") {
		t.Errorf("E11 page lacks a Resources appendix:\n%s", page)
	}

	// Host samples: one entry per (experiment, seed), sorted, with real
	// wall times.
	var host struct {
		Runs []hostEntry `json:"runs"`
	}
	if err := json.Unmarshal(tree.Lookup(hostFile), &host); err != nil {
		t.Fatalf("host.json: %v", err)
	}
	if len(host.Runs) != 4 {
		t.Fatalf("host.json has %d runs, want 4: %+v", len(host.Runs), host.Runs)
	}
	for i, r := range host.Runs {
		if r.WallNanos <= 0 {
			t.Errorf("run %d (%s seed %d) wall_ns = %d, want > 0", i, r.Experiment, r.Seed, r.WallNanos)
		}
		if i > 0 {
			prev := host.Runs[i-1]
			if r.Experiment < prev.Experiment || (r.Experiment == prev.Experiment && r.Seed < prev.Seed) {
				t.Errorf("host runs not sorted at %d: %+v", i, host.Runs)
			}
		}
	}

	// Manifest: resources flag set, host.json volatile and unhashed,
	// everything else hashed.
	var man struct {
		Resources bool           `json:"resources"`
		Files     []ManifestFile `json:"files"`
	}
	if err := json.Unmarshal(tree.Lookup("manifest.json"), &man); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if !man.Resources {
		t.Error("manifest lacks resources: true")
	}
	found := false
	for _, f := range man.Files {
		if f.Path == hostFile {
			found = true
			if !f.Volatile || f.SHA256 != "" || f.Bytes != 0 {
				t.Errorf("host.json manifest entry must be volatile and unhashed: %+v", f)
			}
		} else if f.Volatile || f.SHA256 == "" {
			t.Errorf("non-host file %s must carry a hash and no volatile flag: %+v", f.Path, f)
		}
	}
	if !found {
		t.Error("manifest does not index host.json")
	}
}

// TestResourcesDeterministicAcrossWorkers is the acceptance gate for the
// telemetry layer: with Resources on, every artifact except the volatile
// host.json is byte-identical at worker counts 1 and 8.
func TestResourcesDeterministicAcrossWorkers(t *testing.T) {
	opts := Options{
		IDs:       []string{"E01", "E02", "E13"},
		Seeds:     []int64{1, 2},
		Scale:     0.25,
		Resources: true,
	}
	opts.Workers = 1
	a, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate workers=1: %v", err)
	}
	opts.Workers = 8
	b, err := Generate(registry(t), opts)
	if err != nil {
		t.Fatalf("Generate workers=8: %v", err)
	}
	if len(a.Files) != len(b.Files) {
		t.Fatalf("tree sizes differ: %d vs %d files", len(a.Files), len(b.Files))
	}
	for i := range a.Files {
		if a.Files[i].Path != b.Files[i].Path {
			t.Fatalf("file %d path differs: %s vs %s", i, a.Files[i].Path, b.Files[i].Path)
		}
		if a.Files[i].Path == hostFile {
			continue
		}
		if !bytes.Equal(a.Files[i].Data, b.Files[i].Data) {
			t.Errorf("%s differs between worker counts", a.Files[i].Path)
		}
	}
}
