package sim

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// fireRec is one observed event execution.
type fireRec struct {
	shard int
	at    time.Duration
	id    int64
}

// chaosCtx drives a self-expanding workload over a ShardedSim: every fired
// event appends to its shard's log and may reschedule locally, post across
// shards (always at least one window out), or schedule-and-maybe-cancel a
// closure event. All decisions draw from per-shard streams in per-shard
// event order, so the whole trajectory is a pure function of (seed, shards,
// window, budget) — never of the worker count.
type chaosCtx struct {
	ss        *ShardedSim
	window    time.Duration
	logs      [][]fireRec
	rngs      []*RNG
	remaining []int // per-shard respawn budget, bounds the run
}

func newChaos(t testing.TB, shards int, seed int64, window time.Duration, budget int) *chaosCtx {
	t.Helper()
	ss, err := NewSharded(shards, window, WithShardSeed(seed))
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	c := &chaosCtx{
		ss:        ss,
		window:    window,
		logs:      make([][]fireRec, shards),
		rngs:      make([]*RNG, shards),
		remaining: make([]int, shards),
	}
	for i := 0; i < shards; i++ {
		c.rngs[i] = ss.Shard(i).Stream("chaos")
		c.remaining[i] = budget
		// Root events: a small spread per shard inside the first window.
		for j := 0; j < 3; j++ {
			at := time.Duration(j) * window / 3
			ss.Shard(i).AtFunc(at, chaosFire, Payload{Ctx: c, A: int64(i), B: int64(i*1000 + j)})
		}
	}
	return c
}

func chaosFire(p Payload) {
	c := p.Ctx.(*chaosCtx)
	shard := int(p.A)
	sh := c.ss.Shard(shard)
	c.logs[shard] = append(c.logs[shard], fireRec{shard: shard, at: sh.Now(), id: p.B})
	if c.remaining[shard] <= 0 {
		return
	}
	c.remaining[shard]--
	g := c.rngs[shard]
	switch g.Intn(4) {
	case 0: // local handler reschedule
		d := time.Duration(g.Intn(int(3 * c.window)))
		sh.AfterFunc(d, chaosFire, Payload{Ctx: c, A: p.A, B: p.B*31 + 1})
	case 1: // cross-shard post, one window (plus slack) out
		to := g.Intn(len(c.logs))
		at := sh.Now() + c.window + time.Duration(g.Intn(int(c.window)))
		c.ss.Post(shard, to, at, chaosFire, Payload{Ctx: c, A: int64(to), B: p.B*31 + 2})
	case 2: // closure event, sometimes canceled immediately
		id := p.B*31 + 3
		h := sh.After(c.window/2, func() {
			c.logs[shard] = append(c.logs[shard], fireRec{shard: shard, at: sh.Now(), id: id})
		})
		if g.Bool(0.5) {
			h.Cancel()
		}
	case 3: // same-instant burst: two events racing on (at, seq) order
		at := sh.Now() + c.window/4
		sh.AtFunc(at, chaosFire, Payload{Ctx: c, A: p.A, B: p.B*31 + 4})
		sh.AtFunc(at, chaosFire, Payload{Ctx: c, A: p.A, B: p.B*31 + 5})
	}
}

func runChaos(t testing.TB, shards, workers int, seed int64, budget int) [][]fireRec {
	t.Helper()
	window := 10 * time.Millisecond
	c := newChaos(t, shards, seed, window, budget)
	WithShardWorkers(workers)(c.ss)
	if c.ss.workers > shards {
		c.ss.workers = shards
	}
	if err := c.ss.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return c.logs
}

func diffLogs(a, b [][]fireRec) string {
	if len(a) != len(b) {
		return fmt.Sprintf("shard count %d vs %d", len(a), len(b))
	}
	for s := range a {
		if len(a[s]) != len(b[s]) {
			return fmt.Sprintf("shard %d fired %d vs %d events", s, len(a[s]), len(b[s]))
		}
		for i := range a[s] {
			if a[s][i] != b[s][i] {
				return fmt.Sprintf("shard %d event %d: %+v vs %+v", s, i, a[s][i], b[s][i])
			}
		}
	}
	return ""
}

// TestShardedWorkerCountInvisible is the core determinism contract: the same
// sharded workload must produce identical per-shard fire logs at every
// worker count and every GOMAXPROCS setting.
func TestShardedWorkerCountInvisible(t *testing.T) {
	const shards = 5
	base := runChaos(t, shards, 1, 42, 200)
	total := 0
	for _, l := range base {
		total += len(l)
	}
	if total < 100 {
		t.Fatalf("workload too small to be meaningful: %d events", total)
	}
	for _, procs := range []int{1, 2, 8} {
		for _, workers := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("procs=%d/workers=%d", procs, workers), func(t *testing.T) {
				old := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(old)
				got := runChaos(t, shards, workers, 42, 200)
				if d := diffLogs(base, got); d != "" {
					t.Fatalf("fire log diverged from workers=1: %s", d)
				}
			})
		}
	}
}

// TestShardedSeedSensitivity guards against the chaos harness being a
// constant: different seeds must produce different trajectories.
func TestShardedSeedSensitivity(t *testing.T) {
	a := runChaos(t, 4, 1, 1, 150)
	b := runChaos(t, 4, 1, 2, 150)
	if diffLogs(a, b) == "" {
		t.Fatal("seeds 1 and 2 produced identical trajectories; harness draws no randomness")
	}
}

// TestShardedSingleShardMatchesPlainSim pins the degenerate case: one shard
// with purely local scheduling is bit-identical to a plain Sim run with the
// shard's derived seed.
func TestShardedSingleShardMatchesPlainSim(t *testing.T) {
	type rec struct {
		at time.Duration
		id int64
	}
	build := func(schedule func(at time.Duration, id int64), g *RNG) {
		for i := 0; i < 500; i++ {
			schedule(time.Duration(g.Intn(int(time.Second))), int64(i))
		}
	}
	runPlain := func() []rec {
		s := New(WithSeed(deriveSeed(7, "shard:0")))
		var log []rec
		h := func(p Payload) { log = append(log, rec{s.Now(), p.B}) }
		build(func(at time.Duration, id int64) { s.AtFunc(at, h, Payload{B: id}) }, s.Stream("gen"))
		if err := s.Run(); err != nil {
			t.Fatalf("plain Run: %v", err)
		}
		return log
	}
	runSharded := func() []rec {
		ss, err := NewSharded(1, 10*time.Millisecond, WithShardSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		sh := ss.Shard(0)
		var log []rec
		h := func(p Payload) { log = append(log, rec{sh.Now(), p.B}) }
		build(func(at time.Duration, id int64) { sh.AtFunc(at, h, Payload{B: id}) }, sh.Stream("gen"))
		if err := ss.Run(); err != nil {
			t.Fatalf("sharded Run: %v", err)
		}
		return log
	}
	plain, sharded := runPlain(), runSharded()
	if len(plain) != len(sharded) {
		t.Fatalf("fired %d vs %d events", len(plain), len(sharded))
	}
	for i := range plain {
		if plain[i] != sharded[i] {
			t.Fatalf("event %d: plain %+v vs sharded %+v", i, plain[i], sharded[i])
		}
	}
}

// TestShardedMailboxMergeOrder pins the barrier merge rule: cross-shard
// events landing on one destination at the same instant fire in (time, seq,
// source shard) order regardless of posting order across shards.
func TestShardedMailboxMergeOrder(t *testing.T) {
	ss, err := NewSharded(4, 10*time.Millisecond, WithShardSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	h := func(p Payload) { got = append(got, p.B) }
	at := 50 * time.Millisecond
	// Post from shards in reverse order; seq is per-source, so every post
	// here has seq 1 and the shard index must break the tie: 1, 2, 3.
	for from := 3; from >= 1; from-- {
		ss.Post(from, 0, at, h, Payload{B: int64(from)})
	}
	// A second wave from shard 1 gets seq 2 and sorts after all seq-1
	// posts at the same instant.
	ss.Post(1, 0, at, h, Payload{B: 100})
	if err := ss.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 100}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge order %v, want %v", got, want)
		}
	}
}

// TestShardedWindowViolation verifies the conservative rule is enforced: a
// cross-shard post due inside the posting shard's own window fails the run
// with a diagnostic naming the shard.
func TestShardedWindowViolation(t *testing.T) {
	ss, err := NewSharded(2, 10*time.Millisecond, WithShardSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ss.Shard(0).AtFunc(0, func(p Payload) {
		ss.Post(0, 1, 1*time.Millisecond, func(Payload) {}, Payload{})
	}, Payload{})
	err = ss.Run()
	if err == nil {
		t.Fatal("window violation went undetected")
	}
	if !strings.Contains(err.Error(), "shard 0") {
		t.Fatalf("violation error does not name the offending shard: %v", err)
	}
}

// TestShardedStopAtBarrier verifies Stop semantics: the driver stops at a
// window barrier, the stop is consumed, and a pre-run Stop short-circuits.
func TestShardedStopAtBarrier(t *testing.T) {
	ss, err := NewSharded(2, 10*time.Millisecond, WithShardSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	ss.Shard(0).AtFunc(0, func(Payload) { fired++; ss.Stop() }, Payload{})
	ss.Shard(1).AtFunc(time.Second, func(Payload) { fired++ }, Payload{})
	if err := ss.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run after Stop: %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Fatalf("fired %d events before stop, want 1", fired)
	}
	if err := ss.Run(); err != nil {
		t.Fatalf("stop not consumed: %v", err)
	}
	if fired != 2 {
		t.Fatalf("resumed run fired %d total, want 2", fired)
	}
	ss.Stop()
	if err := ss.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("pre-run Stop: %v, want ErrStopped", err)
	}
}

// TestShardedRunUntilChunks is the window-barrier metamorphic test at the
// driver level: driving the same workload in k RunFor chunks must equal one
// RunUntil over the whole horizon, for every worker count.
func TestShardedRunUntilChunks(t *testing.T) {
	const horizon = 400 * time.Millisecond
	run := func(workers int, chunks int) [][]fireRec {
		c := newChaos(t, 3, 9, 10*time.Millisecond, 120)
		WithShardWorkers(workers)(c.ss)
		if chunks <= 1 {
			if err := c.ss.RunUntil(horizon); err != nil {
				t.Fatalf("RunUntil: %v", err)
			}
		} else {
			per := horizon / time.Duration(chunks)
			for i := 0; i < chunks; i++ {
				if err := c.ss.RunFor(per); err != nil {
					t.Fatalf("RunFor chunk %d: %v", i, err)
				}
			}
			if rest := horizon - per*time.Duration(chunks); rest > 0 {
				if err := c.ss.RunFor(rest); err != nil {
					t.Fatalf("RunFor remainder: %v", err)
				}
			}
		}
		if got := c.ss.Now(); got != horizon {
			t.Fatalf("clock at %v after horizon %v", got, horizon)
		}
		return c.logs
	}
	base := run(1, 1)
	for _, workers := range []int{1, 3} {
		for _, chunks := range []int{2, 3, 7} {
			if d := diffLogs(base, run(workers, chunks)); d != "" {
				t.Fatalf("workers=%d chunks=%d diverged: %s", workers, chunks, d)
			}
		}
	}
}

// TestShardedStress hammers the driver with a large cross-shard ping-pong
// under every GOMAXPROCS the CI race matrix uses; the assertions are the
// determinism contract plus exact conservation of fired events. The race
// detector (CI runs this file under -race) checks the memory model side.
func TestShardedStress(t *testing.T) {
	budget := 800
	if testing.Short() {
		budget = 150
	}
	base := runChaos(t, 8, 1, 1234, budget)
	for _, procs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("GOMAXPROCS=%d", procs), func(t *testing.T) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			got := runChaos(t, 8, 8, 1234, budget)
			if d := diffLogs(base, got); d != "" {
				t.Fatalf("stress run diverged: %s", d)
			}
		})
	}
}

// TestShardedAccounting checks the aggregate accessors sum across shards
// and mailboxes.
func TestShardedAccounting(t *testing.T) {
	ss, err := NewSharded(3, 10*time.Millisecond, WithShardSeed(1), WithShardWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Workers() != 2 || ss.ShardCount() != 3 || ss.Window() != 10*time.Millisecond {
		t.Fatalf("accessors: workers=%d shards=%d window=%v", ss.Workers(), ss.ShardCount(), ss.Window())
	}
	h := func(Payload) {}
	ss.Shard(0).AtFunc(time.Millisecond, func(p Payload) {}, Payload{})
	ss.Post(0, 2, 20*time.Millisecond, h, Payload{})
	if got := ss.Pending(); got != 2 {
		t.Fatalf("Pending %d, want 2 (one scheduled, one parked)", got)
	}
	if err := ss.Run(); err != nil {
		t.Fatal(err)
	}
	if got := ss.Fired(); got != 2 {
		t.Fatalf("Fired %d, want 2", got)
	}
	if got := ss.Pending(); got != 0 {
		t.Fatalf("Pending %d after run, want 0", got)
	}
	if got := ss.Now(); got != 20*time.Millisecond {
		t.Fatalf("Now %v, want 20ms", got)
	}
}

// TestNewShardedRejects pins constructor validation.
func TestNewShardedRejects(t *testing.T) {
	if _, err := NewSharded(0, time.Millisecond); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewSharded(2, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	ss, err := NewSharded(2, time.Millisecond, WithShardWorkers(99))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Workers() != 2 {
		t.Fatalf("workers not capped at shard count: %d", ss.Workers())
	}
	if ss.Post(-1, 0, 0, func(Payload) {}, Payload{}) || ss.Post(0, 5, 0, func(Payload) {}, Payload{}) ||
		ss.Post(0, 1, -time.Second, func(Payload) {}, Payload{}) || ss.Post(0, 1, 0, nil, Payload{}) {
		t.Fatal("invalid Post accepted")
	}
}
