// Package sim provides a deterministic discrete-event simulation kernel.
//
// All simulated systems in this repository (overlays, blockchains, consensus
// protocols, edge topologies) are driven by a single Sim instance: events are
// callbacks scheduled at virtual timestamps, executed strictly in (time,
// sequence) order from a binary heap. There is no wall-clock dependence and no
// concurrency inside a run, so a (seed, configuration) pair always reproduces
// the same trajectory bit-for-bit.
//
// Cancellation is eager: Handle.Cancel (and Ticker.Stop) removes the event
// from the heap immediately and recycles it, so canceled timers do not
// linger until their fire time, Pending reports the exact live-event count,
// and a stopped Ticker's closure is collectable at once. Removal preserves
// (time, sequence) order of the remaining events, so canceling never
// perturbs determinism.
//
// Every event — closure (At/After/Every) and handler (AtFunc/AfterFunc)
// alike — is drawn from a per-Sim free list and recycled the moment it
// fires or is canceled, so steady-state scheduling allocates nothing on
// either path. Because recycled events are reused, callers never hold
// *event pointers: scheduling returns a by-value Handle carrying the
// event's generation number, which makes a stale Cancel (after the event
// fired, was canceled, or its slot was reused) a safe no-op.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
)

// ErrStopped is returned by Run variants when the simulation was halted by an
// explicit call to Stop rather than by reaching its natural end.
var ErrStopped = errors.New("sim: stopped")

// event is a scheduled callback slot. Slots live on a per-Sim free list and
// are reused across schedules; gen counts reuses so stale Handles can detect
// that "their" event is gone.
//
// Events come in two flavours. Closure events (At/After/Every) carry a
// fresh fn closure and hand the caller a Handle for cancellation. Handler
// events (AtFunc/AfterFunc) carry a shared Handler plus an inline Payload
// instead of a closure and return no handle — the hot-path contract is
// fire-and-forget.
type event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	h        Handler
	p        Payload
	owner    *Sim
	index    int    // position in the heap, -1 once popped or recycled
	gen      uint64 // bumped on every recycle; Handles snapshot it
	nextFree *event // free-list link for recycled events
}

// Handle refers to a scheduled closure event. It is a small by-value pair
// (slot pointer + generation), so handles can be stored, copied and kept
// past the event's lifetime freely: once the event fires, is canceled, or
// its slot is reused, the generation no longer matches and the handle is
// inert. The zero Handle is valid and refers to nothing.
type Handle struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. The event is removed from the
// schedule eagerly and its slot recycled, so canceling is O(log n) now
// rather than a deferred skip at fire time: a canceled long-horizon timer
// neither pins its closure nor inflates Pending, and its slot is
// immediately reusable — a schedule/cancel loop allocates nothing.
// Canceling an event that already fired (or was already canceled), or a
// zero Handle, is a no-op.
//
//decentlint:hotpath
func (h Handle) Cancel() {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.index < 0 {
		return
	}
	s := ev.owner
	heap.Remove(&s.queue, ev.index)
	s.releaseEvent(ev)
}

// Scheduled reports whether the event is still pending: not yet fired and
// not canceled. The zero Handle reports false.
func (h Handle) Scheduled() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.index >= 0
}

// IsZero reports whether the handle never referred to an event — i.e. it is
// the zero Handle, as returned for rejected schedules. A fired or canceled
// handle is not zero: IsZero distinguishes "nothing was ever scheduled"
// from "the event ran its course".
func (h Handle) IsZero() bool { return h.ev == nil }

// At returns the virtual time the event is scheduled to fire, or 0 if the
// handle is no longer live.
func (h Handle) At() time.Duration {
	if !h.Scheduled() {
		return 0
	}
	return h.ev.at
}

// Payload is the inline argument block of a handler event. Ctx and Aux hold
// pointer-shaped values (pointers, funcs, maps, channels), which convert to
// interface values without allocating; A, B and C carry scalar operands
// (ids, sizes, or float64 bits via math.Float64bits). Together they let a
// hot path schedule delivery work with zero per-event allocations.
type Payload struct {
	// Ctx is the scheduling subsystem's context (e.g. a *netmodel.Net).
	Ctx any
	// Aux is a secondary reference, typically a caller-supplied callback.
	Aux any
	// A, B, C are scalar operands whose meaning the Handler defines.
	A, B, C int64
}

// Handler consumes a handler event's payload at fire time. Handlers should
// be package-level functions (or otherwise long-lived func values): the
// whole point of the handler path is that scheduling one does not allocate
// a closure per event.
type Handler func(p Payload)

// Sim is a discrete-event simulator. The zero value is not usable; construct
// instances with New.
type Sim struct {
	queue      eventQueue
	now        time.Duration
	seq        uint64
	fired      uint64
	maxPending int
	stopped    bool
	seed       int64
	streams    map[string]*RNG
	free       *event // recycled event slots
	observer   *obs.Collector
}

// Option configures a Sim created by New.
type Option func(*Sim)

// WithSeed sets the master seed from which all named RNG streams are derived.
// Runs with equal seeds and equal event orderings are identical.
func WithSeed(seed int64) Option {
	return func(s *Sim) { s.seed = seed }
}

// WithObserver attaches a telemetry collector. Subsystems built on the Sim
// (the netmodel transport in particular) discover it via Observer and
// register their instruments against it; the Sim itself registers its
// kernel statistics (events fired, peak pending, virtual time) with the
// collector's snapshot. A nil collector leaves telemetry off.
func WithObserver(c *obs.Collector) Option {
	return func(s *Sim) {
		s.observer = c
		c.AttachSim(s)
	}
}

// New constructs an empty simulator positioned at virtual time zero.
func New(opts ...Option) *Sim {
	s := &Sim{
		seed:    1,
		streams: make(map[string]*RNG),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Now returns the current virtual time, measured from the start of the run.
func (s *Sim) Now() time.Duration { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the exact number of live events currently scheduled;
// canceled events are removed from the schedule immediately and never
// counted.
func (s *Sim) Pending() int { return len(s.queue) }

// PeekTime returns the timestamp of the earliest pending event. ok is
// false when nothing is scheduled. The sharded driver uses it to skip
// windows with no work (the lookahead jump is worker-count invariant).
func (s *Sim) PeekTime() (t time.Duration, ok bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// MaxPending returns the high-water mark of the pending-event count — the
// peak schedule depth the run reached.
func (s *Sim) MaxPending() int { return s.maxPending }

// Seed returns the master seed the simulator was created with.
func (s *Sim) Seed() int64 { return s.seed }

// Observer returns the telemetry collector attached via WithObserver, or
// nil when telemetry is off.
func (s *Sim) Observer() *obs.Collector { return s.observer }

// push enqueues an event slot and tracks the schedule's high-water mark.
//
//decentlint:hotpath
func (s *Sim) push(ev *event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.queue, ev)
	if len(s.queue) > s.maxPending {
		s.maxPending = len(s.queue)
	}
}

// At schedules fn to run at absolute virtual time t and returns a Handle
// for cancellation. Scheduling in the past is an error surfaced by
// returning the zero Handle and scheduling nothing; the simulator
// deliberately never panics on behalf of library callers. The event slot
// comes from the free list and is recycled when it fires or is canceled,
// so steady-state closure scheduling allocates nothing beyond the
// closure itself.
func (s *Sim) At(t time.Duration, fn func()) Handle {
	if t < s.now || fn == nil {
		return Handle{}
	}
	ev := s.takeEvent()
	ev.at, ev.fn = t, fn
	s.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current virtual time. Negative delays
// are clamped to zero so the event fires "immediately" (after already-queued
// events at the current instant).
func (s *Sim) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtFunc schedules h to run with payload p at absolute virtual time t. It is
// the handle-free counterpart of At for per-message hot paths: no Handle is
// returned and the event cannot be canceled; use At when you need
// cancellation. Scheduling in the past or with a nil handler is a no-op
// returning false.
//
//decentlint:hotpath
func (s *Sim) AtFunc(t time.Duration, h Handler, p Payload) bool {
	if t < s.now || h == nil {
		return false
	}
	ev := s.takeEvent()
	ev.at, ev.h, ev.p = t, h, p
	s.push(ev)
	return true
}

// AfterFunc schedules h to run with payload p after delay d — the pooled,
// closure-free variant of After. Negative delays clamp to zero. See AtFunc
// for the recycling contract.
//
//decentlint:hotpath
func (s *Sim) AfterFunc(d time.Duration, h Handler, p Payload) bool {
	if d < 0 {
		d = 0
	}
	return s.AtFunc(s.now+d, h, p)
}

// takeEvent pops a recycled event slot or allocates a fresh one; the
// allocation happens only on pool miss, so steady state stays at zero.
//
//decentlint:hotpath
func (s *Sim) takeEvent() *event {
	if ev := s.free; ev != nil {
		s.free = ev.nextFree
		ev.nextFree = nil
		return ev
	}
	return &event{owner: s}
}

// releaseEvent clears a fired or canceled event, bumps its generation so
// outstanding Handles go inert, and pushes it on the free list.
//
//decentlint:hotpath
func (s *Sim) releaseEvent(ev *event) {
	gen := ev.gen + 1
	*ev = event{owner: s, gen: gen, index: -1, nextFree: s.free}
	s.free = ev
}

// Ticker repeatedly schedules a callback at a fixed period until stopped.
type Ticker struct {
	sim     *Sim
	period  time.Duration
	fn      func()
	next    Handle
	stopped bool
}

// Every starts a ticker whose callback first fires after one period and then
// every period thereafter. It returns an error for non-positive periods.
func (s *Sim) Every(period time.Duration, fn func()) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: ticker period %v is not positive", period)
	}
	if fn == nil {
		return nil, errors.New("sim: ticker callback is nil")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.schedule()
	return t, nil
}

func (t *Ticker) schedule() {
	t.next = t.sim.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop halts the ticker. It is safe to call multiple times.
func (t *Ticker) Stop() {
	if t == nil || t.stopped {
		return
	}
	t.stopped = true
	t.next.Cancel()
}

// Stop halts the simulation: the current Run call returns ErrStopped after
// the in-flight event completes. Calling Stop while no Run variant is in
// flight is not lost — the next Run variant returns ErrStopped immediately,
// before executing any event.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// nil on natural exhaustion and ErrStopped otherwise.
func (s *Sim) Run() error {
	return s.RunUntil(time.Duration(math.MaxInt64))
}

// RunFor executes events for d of virtual time from now, then returns. The
// clock is advanced to now+d even if the queue empties earlier, so subsequent
// scheduling is relative to the horizon.
func (s *Sim) RunFor(d time.Duration) error {
	if d < 0 {
		d = 0
	}
	return s.RunUntil(s.now + d)
}

// RunUntil executes events with timestamps <= horizon, then sets the clock to
// horizon. It returns ErrStopped if Stop was called, nil otherwise. A Stop
// issued before the call (with no Run in flight) makes it return ErrStopped
// immediately without executing anything; the stop is consumed either way, so
// the following Run variant proceeds normally.
func (s *Sim) RunUntil(horizon time.Duration) error {
	err := s.drain(horizon, true)
	if err == nil && horizon > s.now && horizon != time.Duration(math.MaxInt64) {
		s.now = horizon
	}
	return err
}

// runBefore executes events with timestamps strictly below end and leaves the
// clock at the last fired event. It is the window primitive of the sharded
// driver (sharded.go): the exclusive bound keeps an event at exactly the
// window end for the next window, after the barrier has merged any
// cross-shard arrivals landing at that same instant.
func (s *Sim) runBefore(end time.Duration) error {
	return s.drain(end, false)
}

// drain is the execution core shared by RunUntil and runBefore: it pops and
// fires events while the head timestamp is within the bound (inclusive or
// exclusive). The clock is left at the last fired event.
func (s *Sim) drain(bound time.Duration, inclusive bool) error {
	if s.stopped {
		s.stopped = false
		return ErrStopped
	}
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > bound || (!inclusive && next.at == bound) {
			break
		}
		heap.Pop(&s.queue)
		// Cancel removes events from the heap eagerly, so a popped event
		// is always live.
		s.now = next.at
		s.fired++
		// Recycle before invoking so the callback's own scheduling can
		// reuse the slot — the steady-state fast path for both flavours.
		// The release bumps the generation, so a Handle to this event is
		// already inert inside its own callback.
		if next.h != nil {
			h, p := next.h, next.p
			s.releaseEvent(next)
			h(p)
		} else {
			fn := next.fn
			s.releaseEvent(next)
			fn()
		}
		if s.stopped {
			s.stopped = false
			return ErrStopped
		}
	}
	return nil
}

// eventQueue is a binary min-heap ordered by (at, seq); seq breaks ties so
// that same-instant events fire in scheduling order, keeping runs
// deterministic.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

//decentlint:hotpath
func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev) //decentlint:allow hotpath backing-array growth is amortized; slots recycle through the free list in steady state
}

//decentlint:hotpath
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
