// Package sim provides a deterministic discrete-event simulation kernel.
//
// All simulated systems in this repository (overlays, blockchains, consensus
// protocols, edge topologies) are driven by a single Sim instance: events are
// callbacks scheduled at virtual timestamps, executed strictly in (time,
// sequence) order from a binary heap. There is no wall-clock dependence and no
// concurrency inside a run, so a (seed, configuration) pair always reproduces
// the same trajectory bit-for-bit.
//
// Cancellation is eager: Event.Cancel (and Ticker.Stop) removes the event
// from the heap immediately and releases its callback, so canceled timers do
// not linger until their fire time, Pending reports the exact live-event
// count, and a stopped Ticker's closure is collectable at once. Removal
// preserves (time, sequence) order of the remaining events, so canceling
// never perturbs determinism.
//
// For per-message hot paths (the netmodel transport delivers millions of
// events per run) the kernel offers a pooled fast path: AtFunc/AfterFunc
// schedule a shared Handler with an inline Payload instead of a fresh
// closure, drawing the Event from a free list and recycling it at fire
// time, so steady-state scheduling allocates nothing.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrStopped is returned by Run variants when the simulation was halted by an
// explicit call to Stop rather than by reaching its natural end.
var ErrStopped = errors.New("sim: stopped")

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it before it fires.
//
// Events come in two flavours. Closure events (At/After/Every) carry a fresh
// fn closure and are handed back to the caller for cancellation. Handler
// events (AtFunc/AfterFunc) carry a shared Handler plus an inline Payload
// instead of a closure; they are drawn from a per-Sim free list, recycled
// the moment they fire, and deliberately not returned to callers — a
// recycled pointer must never be cancelable from stale references.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	h        Handler
	p        Payload
	q        *eventQueue
	index    int // position in the heap, -1 once popped or canceled
	canceled bool
	nextFree *Event // free-list link for recycled handler events
}

// Payload is the inline argument block of a handler event. Ctx and Aux hold
// pointer-shaped values (pointers, funcs, maps, channels), which convert to
// interface values without allocating; A, B and C carry scalar operands
// (ids, sizes, or float64 bits via math.Float64bits). Together they let a
// hot path schedule delivery work with zero per-event allocations.
type Payload struct {
	// Ctx is the scheduling subsystem's context (e.g. a *netmodel.Net).
	Ctx any
	// Aux is a secondary reference, typically a caller-supplied callback.
	Aux any
	// A, B, C are scalar operands whose meaning the Handler defines.
	A, B, C int64
}

// Handler consumes a handler event's payload at fire time. Handlers should
// be package-level functions (or otherwise long-lived func values): the
// whole point of the handler path is that scheduling one does not allocate
// a closure per event.
type Handler func(p Payload)

// Cancel prevents the event from firing. The event is removed from the
// schedule eagerly and its callback released, so canceling is O(log n) now
// rather than a deferred skip at fire time: a canceled long-horizon timer
// neither pins its closure nor inflates Pending. Canceling an event that has
// already fired (or was already canceled) is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.q != nil && e.index >= 0 {
		heap.Remove(e.q, e.index)
	}
	e.fn = nil
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// At returns the virtual time the event is scheduled to fire.
func (e *Event) At() time.Duration { return e.at }

// Sim is a discrete-event simulator. The zero value is not usable; construct
// instances with New.
type Sim struct {
	queue   eventQueue
	now     time.Duration
	seq     uint64
	fired   uint64
	stopped bool
	seed    int64
	streams map[string]*RNG
	free    *Event // recycled handler events (AtFunc/AfterFunc)
}

// Option configures a Sim created by New.
type Option func(*Sim)

// WithSeed sets the master seed from which all named RNG streams are derived.
// Runs with equal seeds and equal event orderings are identical.
func WithSeed(seed int64) Option {
	return func(s *Sim) { s.seed = seed }
}

// New constructs an empty simulator positioned at virtual time zero.
func New(opts ...Option) *Sim {
	s := &Sim{
		seed:    1,
		streams: make(map[string]*RNG),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Now returns the current virtual time, measured from the start of the run.
func (s *Sim) Now() time.Duration { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the exact number of live events currently scheduled;
// canceled events are removed from the schedule immediately and never
// counted.
func (s *Sim) Pending() int { return len(s.queue) }

// Seed returns the master seed the simulator was created with.
func (s *Sim) Seed() int64 { return s.seed }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is an error surfaced by returning a nil event and scheduling nothing; the
// simulator deliberately never panics on behalf of library callers.
func (s *Sim) At(t time.Duration, fn func()) *Event {
	if t < s.now || fn == nil {
		return nil
	}
	ev := &Event{at: t, seq: s.seq, fn: fn, q: &s.queue}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time. Negative delays
// are clamped to zero so the event fires "immediately" (after already-queued
// events at the current instant).
func (s *Sim) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtFunc schedules h to run with payload p at absolute virtual time t. It is
// the allocation-free counterpart of At: the event comes from a per-Sim free
// list and is recycled the moment it fires, so a steady-state schedule/fire
// loop performs zero allocations. Because the event is recycled, AtFunc
// returns no handle and the event cannot be canceled; use At when you need
// cancellation. Scheduling in the past or with a nil handler is a no-op
// returning false.
func (s *Sim) AtFunc(t time.Duration, h Handler, p Payload) bool {
	if t < s.now || h == nil {
		return false
	}
	ev := s.takeEvent()
	ev.at, ev.seq, ev.h, ev.p, ev.q = t, s.seq, h, p, &s.queue
	s.seq++
	heap.Push(&s.queue, ev)
	return true
}

// AfterFunc schedules h to run with payload p after delay d — the pooled,
// closure-free variant of After. Negative delays clamp to zero. See AtFunc
// for the recycling contract.
func (s *Sim) AfterFunc(d time.Duration, h Handler, p Payload) bool {
	if d < 0 {
		d = 0
	}
	return s.AtFunc(s.now+d, h, p)
}

// takeEvent pops a recycled event or allocates a fresh one.
func (s *Sim) takeEvent() *Event {
	if ev := s.free; ev != nil {
		s.free = ev.nextFree
		ev.nextFree = nil
		return ev
	}
	return &Event{}
}

// releaseEvent clears a fired handler event and pushes it on the free list.
func (s *Sim) releaseEvent(ev *Event) {
	*ev = Event{index: -1, nextFree: s.free}
	s.free = ev
}

// Ticker repeatedly schedules a callback at a fixed period until stopped.
type Ticker struct {
	sim     *Sim
	period  time.Duration
	fn      func()
	next    *Event
	stopped bool
}

// Every starts a ticker whose callback first fires after one period and then
// every period thereafter. It returns an error for non-positive periods.
func (s *Sim) Every(period time.Duration, fn func()) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: ticker period %v is not positive", period)
	}
	if fn == nil {
		return nil, errors.New("sim: ticker callback is nil")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.schedule()
	return t, nil
}

func (t *Ticker) schedule() {
	t.next = t.sim.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop halts the ticker. It is safe to call multiple times.
func (t *Ticker) Stop() {
	if t == nil || t.stopped {
		return
	}
	t.stopped = true
	t.next.Cancel()
}

// Stop halts the simulation: the current Run call returns ErrStopped after
// the in-flight event completes. Calling Stop while no Run variant is in
// flight is not lost — the next Run variant returns ErrStopped immediately,
// before executing any event.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// nil on natural exhaustion and ErrStopped otherwise.
func (s *Sim) Run() error {
	return s.RunUntil(time.Duration(math.MaxInt64))
}

// RunFor executes events for d of virtual time from now, then returns. The
// clock is advanced to now+d even if the queue empties earlier, so subsequent
// scheduling is relative to the horizon.
func (s *Sim) RunFor(d time.Duration) error {
	if d < 0 {
		d = 0
	}
	return s.RunUntil(s.now + d)
}

// RunUntil executes events with timestamps <= horizon, then sets the clock to
// horizon. It returns ErrStopped if Stop was called, nil otherwise. A Stop
// issued before the call (with no Run in flight) makes it return ErrStopped
// immediately without executing anything; the stop is consumed either way, so
// the following Run variant proceeds normally.
func (s *Sim) RunUntil(horizon time.Duration) error {
	if s.stopped {
		s.stopped = false
		return ErrStopped
	}
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&s.queue)
		// Cancel removes events from the heap eagerly, so a popped event
		// is always live.
		s.now = next.at
		s.fired++
		if next.h != nil {
			// Handler event: recycle before invoking so the handler's own
			// scheduling can reuse the slot — the steady-state fast path.
			h, p := next.h, next.p
			s.releaseEvent(next)
			h(p)
		} else {
			next.fn()
		}
		if s.stopped {
			s.stopped = false
			return ErrStopped
		}
	}
	if horizon > s.now && horizon != time.Duration(math.MaxInt64) {
		s.now = horizon
	}
	return nil
}

// eventQueue is a binary min-heap ordered by (at, seq); seq breaks ties so
// that same-instant events fire in scheduling order, keeping runs
// deterministic.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
