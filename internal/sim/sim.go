// Package sim provides a deterministic discrete-event simulation kernel.
//
// All simulated systems in this repository (overlays, blockchains, consensus
// protocols, edge topologies) are driven by a single Sim instance: events are
// callbacks scheduled at virtual timestamps, executed strictly in (time,
// sequence) order from a binary heap. There is no wall-clock dependence and no
// concurrency inside a run, so a (seed, configuration) pair always reproduces
// the same trajectory bit-for-bit.
//
// Cancellation is eager: Event.Cancel (and Ticker.Stop) removes the event
// from the heap immediately and releases its callback, so canceled timers do
// not linger until their fire time, Pending reports the exact live-event
// count, and a stopped Ticker's closure is collectable at once. Removal
// preserves (time, sequence) order of the remaining events, so canceling
// never perturbs determinism.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrStopped is returned by Run variants when the simulation was halted by an
// explicit call to Stop rather than by reaching its natural end.
var ErrStopped = errors.New("sim: stopped")

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it before it fires.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	q        *eventQueue
	index    int // position in the heap, -1 once popped or canceled
	canceled bool
}

// Cancel prevents the event from firing. The event is removed from the
// schedule eagerly and its callback released, so canceling is O(log n) now
// rather than a deferred skip at fire time: a canceled long-horizon timer
// neither pins its closure nor inflates Pending. Canceling an event that has
// already fired (or was already canceled) is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.q != nil && e.index >= 0 {
		heap.Remove(e.q, e.index)
	}
	e.fn = nil
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// At returns the virtual time the event is scheduled to fire.
func (e *Event) At() time.Duration { return e.at }

// Sim is a discrete-event simulator. The zero value is not usable; construct
// instances with New.
type Sim struct {
	queue   eventQueue
	now     time.Duration
	seq     uint64
	fired   uint64
	stopped bool
	seed    int64
	streams map[string]*RNG
}

// Option configures a Sim created by New.
type Option func(*Sim)

// WithSeed sets the master seed from which all named RNG streams are derived.
// Runs with equal seeds and equal event orderings are identical.
func WithSeed(seed int64) Option {
	return func(s *Sim) { s.seed = seed }
}

// New constructs an empty simulator positioned at virtual time zero.
func New(opts ...Option) *Sim {
	s := &Sim{
		seed:    1,
		streams: make(map[string]*RNG),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Now returns the current virtual time, measured from the start of the run.
func (s *Sim) Now() time.Duration { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the exact number of live events currently scheduled;
// canceled events are removed from the schedule immediately and never
// counted.
func (s *Sim) Pending() int { return len(s.queue) }

// Seed returns the master seed the simulator was created with.
func (s *Sim) Seed() int64 { return s.seed }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is an error surfaced by returning a nil event and scheduling nothing; the
// simulator deliberately never panics on behalf of library callers.
func (s *Sim) At(t time.Duration, fn func()) *Event {
	if t < s.now || fn == nil {
		return nil
	}
	ev := &Event{at: t, seq: s.seq, fn: fn, q: &s.queue}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time. Negative delays
// are clamped to zero so the event fires "immediately" (after already-queued
// events at the current instant).
func (s *Sim) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Ticker repeatedly schedules a callback at a fixed period until stopped.
type Ticker struct {
	sim     *Sim
	period  time.Duration
	fn      func()
	next    *Event
	stopped bool
}

// Every starts a ticker whose callback first fires after one period and then
// every period thereafter. It returns an error for non-positive periods.
func (s *Sim) Every(period time.Duration, fn func()) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: ticker period %v is not positive", period)
	}
	if fn == nil {
		return nil, errors.New("sim: ticker callback is nil")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.schedule()
	return t, nil
}

func (t *Ticker) schedule() {
	t.next = t.sim.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop halts the ticker. It is safe to call multiple times.
func (t *Ticker) Stop() {
	if t == nil || t.stopped {
		return
	}
	t.stopped = true
	t.next.Cancel()
}

// Stop halts the simulation: the current Run call returns ErrStopped after
// the in-flight event completes. Calling Stop while no Run variant is in
// flight is not lost — the next Run variant returns ErrStopped immediately,
// before executing any event.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// nil on natural exhaustion and ErrStopped otherwise.
func (s *Sim) Run() error {
	return s.RunUntil(time.Duration(math.MaxInt64))
}

// RunFor executes events for d of virtual time from now, then returns. The
// clock is advanced to now+d even if the queue empties earlier, so subsequent
// scheduling is relative to the horizon.
func (s *Sim) RunFor(d time.Duration) error {
	if d < 0 {
		d = 0
	}
	return s.RunUntil(s.now + d)
}

// RunUntil executes events with timestamps <= horizon, then sets the clock to
// horizon. It returns ErrStopped if Stop was called, nil otherwise. A Stop
// issued before the call (with no Run in flight) makes it return ErrStopped
// immediately without executing anything; the stop is consumed either way, so
// the following Run variant proceeds normally.
func (s *Sim) RunUntil(horizon time.Duration) error {
	if s.stopped {
		s.stopped = false
		return ErrStopped
	}
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&s.queue)
		// Cancel removes events from the heap eagerly, so a popped event
		// is always live.
		s.now = next.at
		s.fired++
		next.fn()
		if s.stopped {
			s.stopped = false
			return ErrStopped
		}
	}
	if horizon > s.now && horizon != time.Duration(math.MaxInt64) {
		s.now = horizon
	}
	return nil
}

// eventQueue is a binary min-heap ordered by (at, seq); seq breaks ties so
// that same-instant events fire in scheduling order, keeping runs
// deterministic.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
