package sim

// Conservative-window sharded driver. A ShardedSim partitions one simulation
// into S independent Sim kernels ("logical shards") and advances them through
// conservative time windows: within a window every shard executes its own
// events with no interleaving guarantees against the others, which is sound
// exactly when no event can affect another shard before the window ends. The
// caller picks the window from the model's cross-shard delay floor (see
// netmodel.DelayFloor); the driver enforces the rule at run time and fails
// loudly on violations instead of silently diverging.
//
// Determinism is the contract: the number of worker goroutines (the -shards
// knob) only sets how many logical shards execute concurrently, never which
// events exist or in what per-shard order they fire. Cross-shard events park
// in per-source outboxes during a window and are merged at the barrier in
// (time, seq, source shard) order — a total order independent of worker
// scheduling — so a run is bit-identical at any worker count, including the
// inline workers=1 path. DESIGN.md ("Sharded kernel") states the full
// invisibility contract.

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

const maxDuration = time.Duration(math.MaxInt64)

// crossEvent is one cross-shard handler event parked in its source shard's
// outbox until the next window barrier.
type crossEvent struct {
	at   time.Duration
	seq  uint64 // per-source-shard outbox sequence
	from int32
	to   int32
	h    Handler
	p    Payload
}

// mailboxOrder sorts the barrier merge scratch in (time, seq, source shard)
// order. Methods sit on the pointer so the sort.Interface conversion in
// drainOutboxes stays allocation-free.
type mailboxOrder []crossEvent

func (m *mailboxOrder) Len() int { return len(*m) }

func (m *mailboxOrder) Less(i, j int) bool {
	s := *m
	if s[i].at != s[j].at {
		return s[i].at < s[j].at
	}
	if s[i].seq != s[j].seq {
		return s[i].seq < s[j].seq
	}
	return s[i].from < s[j].from
}

func (m *mailboxOrder) Swap(i, j int) {
	s := *m
	s[i], s[j] = s[j], s[i]
}

// violation records the first window-rule breach observed by a source shard:
// a cross-shard post due before the posting shard's own window ended.
type violation struct {
	bad bool
	at  time.Duration
	end time.Duration
}

// ShardedSim drives a fixed set of Sim kernels through conservative windows.
// Construct with NewSharded; populate shards via Shard (setup is sequential,
// exactly like a single kernel); run with Run/RunUntil/RunFor.
type ShardedSim struct {
	shards  []*Sim
	window  time.Duration
	workers int
	seed    int64

	outbox  [][]crossEvent // per-source-shard mailboxes, drained at barriers
	outSeq  []uint64       // per-source-shard mailbox sequence counters
	violate []violation    // per-source-shard window-rule breaches
	errs    []error        // per-shard window results, reused across windows
	merged  mailboxOrder   // reusable barrier merge scratch

	// curEnd is the exclusive end of the window being executed, 0 at
	// barriers. Workers read it after receiving a shard index on the work
	// channel, which orders the coordinator's write before the read.
	curEnd   time.Duration
	stopped  atomic.Bool
	observer *obs.Collector
}

// ShardedOption configures a ShardedSim created by NewSharded.
type ShardedOption func(*ShardedSim)

// WithShardSeed sets the master seed. Each shard kernel derives its own seed
// (and therefore its own named RNG streams) from it, so shard i's randomness
// is stable regardless of what the other shards consume.
func WithShardSeed(seed int64) ShardedOption {
	return func(ss *ShardedSim) { ss.seed = seed }
}

// WithShardWorkers sets how many goroutines execute logical shards within a
// window. Values below 1 clamp to 1 (inline, no goroutines); values above
// the shard count are capped at it. The results of a run are identical at
// every setting — workers are pure execution parallelism.
func WithShardWorkers(n int) ShardedOption {
	return func(ss *ShardedSim) { ss.workers = n }
}

// WithShardObserver attaches a telemetry collector to every shard kernel;
// kernel statistics (events fired, peak pending, virtual time) sum across
// shards in the collector's snapshot.
func WithShardObserver(c *obs.Collector) ShardedOption {
	return func(ss *ShardedSim) { ss.observer = c }
}

// NewSharded constructs a driver with the given logical shard count and
// conservative window. The shard count is a structural property of the
// simulation (how state is partitioned) and must not depend on available
// parallelism; the window must not exceed the minimum time a shard needs to
// affect another. It errors on a non-positive shard count or window rather
// than producing a driver that cannot uphold its determinism contract.
func NewSharded(shards int, window time.Duration, opts ...ShardedOption) (*ShardedSim, error) {
	if shards < 1 {
		return nil, fmt.Errorf("sim: sharded driver needs at least one shard, got %d", shards)
	}
	if window <= 0 {
		return nil, fmt.Errorf("sim: sharded window %v is not positive", window)
	}
	ss := &ShardedSim{
		window:  window,
		workers: 1,
		seed:    1,
		outbox:  make([][]crossEvent, shards),
		outSeq:  make([]uint64, shards),
		violate: make([]violation, shards),
		errs:    make([]error, shards),
	}
	for _, opt := range opts {
		opt(ss)
	}
	ss.shards = make([]*Sim, shards)
	for i := range ss.shards {
		ss.shards[i] = New(WithSeed(deriveSeed(ss.seed, "shard:"+strconv.Itoa(i))))
		if ss.observer != nil {
			ss.shards[i].observer = ss.observer
			ss.observer.AttachSim(ss.shards[i])
		}
	}
	if ss.workers < 1 {
		ss.workers = 1
	}
	if ss.workers > shards {
		ss.workers = shards
	}
	return ss, nil
}

// ShardCount returns the number of logical shards.
func (ss *ShardedSim) ShardCount() int { return len(ss.shards) }

// Workers returns the effective worker count.
func (ss *ShardedSim) Workers() int { return ss.workers }

// Window returns the conservative window length.
func (ss *ShardedSim) Window() time.Duration { return ss.window }

// Seed returns the master seed.
func (ss *ShardedSim) Seed() int64 { return ss.seed }

// Shard returns the i-th shard kernel. Scheduling directly on a shard is the
// setup-time API (and the intra-shard hot path during a run); events that
// cross shards during a run must go through Post.
func (ss *ShardedSim) Shard(i int) *Sim { return ss.shards[i] }

// Now returns the driver's virtual time: the maximum across shard clocks.
// After RunUntil/RunFor all shard clocks agree on the horizon.
func (ss *ShardedSim) Now() time.Duration {
	var now time.Duration
	for _, sh := range ss.shards {
		if sh.now > now {
			now = sh.now
		}
	}
	return now
}

// Fired sums events executed across shards.
func (ss *ShardedSim) Fired() uint64 {
	var n uint64
	for _, sh := range ss.shards {
		n += sh.fired
	}
	return n
}

// Pending counts live events across shard schedules and parked mailboxes.
func (ss *ShardedSim) Pending() int {
	n := 0
	for _, sh := range ss.shards {
		n += sh.Pending()
	}
	for i := range ss.outbox {
		n += len(ss.outbox[i])
	}
	return n
}

// Stop halts the run at the next window barrier: in-flight windows complete
// (keeping shard state consistent at a window boundary), then the Run
// variant returns ErrStopped. Safe to call from any shard's callback; a Stop
// with no run in flight makes the next Run variant return ErrStopped
// immediately, mirroring Sim.Stop.
func (ss *ShardedSim) Stop() { ss.stopped.Store(true) }

// Post parks a handler event for another shard's kernel; it is delivered at
// the next window barrier and scheduled there in (time, seq, source shard)
// order. Posting with a fire time inside the source shard's current window
// breaks the conservative contract: the post is recorded and the run fails
// at the barrier. Invalid shard indexes, nil handlers and negative times are
// rejected by returning false, like AtFunc. Only the owning shard's worker
// may post from a given source index during a run, which is what makes the
// per-source outboxes lock-free.
//
//decentlint:hotpath
func (ss *ShardedSim) Post(from, to int, at time.Duration, h Handler, p Payload) bool {
	if from < 0 || from >= len(ss.shards) || to < 0 || to >= len(ss.shards) || h == nil || at < 0 {
		return false
	}
	if end := ss.curEnd; end != 0 && at < end && !ss.violate[from].bad {
		ss.violate[from] = violation{bad: true, at: at, end: end}
	}
	ss.outSeq[from]++
	ss.outbox[from] = append(ss.outbox[from], crossEvent{ //decentlint:allow hotpath outbox backing arrays are reused across barriers; growth is amortized warm-up only
		at: at, seq: ss.outSeq[from], from: int32(from), to: int32(to), h: h, p: p,
	})
	return true
}

// drainOutboxes merges every parked cross-shard event into its destination
// kernel in (time, seq, source shard) order. The merge order is a total
// order over posts that depends only on simulation structure — never on
// worker interleaving — so destination kernels assign the same local event
// sequence numbers at any worker count.
//
//decentlint:hotpath
func (ss *ShardedSim) drainOutboxes() {
	ss.merged = ss.merged[:0]
	for i := range ss.outbox {
		ss.merged = append(ss.merged, ss.outbox[i]...) //decentlint:allow hotpath merge scratch is reused across barriers; growth is amortized warm-up only
		ss.outbox[i] = ss.outbox[i][:0]
	}
	if len(ss.merged) > 1 {
		sort.Sort(&ss.merged)
	}
	for i := range ss.merged {
		ev := &ss.merged[i]
		ss.shards[ev.to].AtFunc(ev.at, ev.h, ev.p)
		// Drop payload references so the reused scratch does not pin
		// closures or contexts past the barrier.
		ev.h, ev.p = nil, Payload{}
	}
}

// nextTime returns the earliest pending event time across all shards.
// Outboxes are empty when it is called (barriers drain first), so shard
// heads are the complete frontier. The result is worker-count invariant,
// which makes the window lookahead skip deterministic.
func (ss *ShardedSim) nextTime() (time.Duration, bool) {
	best, any := maxDuration, false
	for _, sh := range ss.shards {
		if t, ok := sh.PeekTime(); ok && (!any || t < best) {
			best, any = t, true
		}
	}
	return best, any
}

// checkViolations surfaces the first window-rule breach recorded during the
// last window, identifying the source shard and the offending fire time.
func (ss *ShardedSim) checkViolations() error {
	for i := range ss.violate {
		if v := ss.violate[i]; v.bad {
			return fmt.Errorf(
				"sim: conservative window violated: shard %d posted a cross-shard event due at %v inside its own window ending at %v (window %v exceeds the model's cross-shard delay floor)",
				i, v.at, v.end, ss.window)
		}
	}
	return nil
}

// runWindow executes one window on every shard that has work before end.
// With one worker shards run inline in index order; otherwise shard indexes
// are dispatched to the worker pool and the call blocks until all acks
// arrive — the barrier. Per-shard execution is identical either way.
func (ss *ShardedSim) runWindow(end time.Duration, work chan int, ack chan struct{}) error {
	ss.curEnd = end
	stopped := false
	if work == nil {
		for _, sh := range ss.shards {
			if t, ok := sh.PeekTime(); !ok || t >= end {
				continue
			}
			if err := sh.runBefore(end); errors.Is(err, ErrStopped) {
				stopped = true
			}
		}
	} else {
		for i := range ss.errs {
			ss.errs[i] = nil
		}
		dispatched := 0
		for i, sh := range ss.shards {
			if t, ok := sh.PeekTime(); !ok || t >= end {
				continue
			}
			work <- i
			dispatched++
		}
		for k := 0; k < dispatched; k++ {
			<-ack
		}
		for _, err := range ss.errs {
			if errors.Is(err, ErrStopped) {
				stopped = true
			}
		}
	}
	ss.curEnd = 0
	if stopped {
		return ErrStopped
	}
	return nil
}

// Run executes windows until every shard schedule and mailbox is empty, or
// Stop is called. It returns nil on natural exhaustion and ErrStopped
// otherwise.
func (ss *ShardedSim) Run() error {
	return ss.RunUntil(maxDuration)
}

// RunFor executes windows for d of virtual time from Now, then returns with
// every shard clock at the horizon, so chunked driving composes exactly like
// Sim.RunFor.
func (ss *ShardedSim) RunFor(d time.Duration) error {
	if d < 0 {
		d = 0
	}
	return ss.RunUntil(ss.Now() + d)
}

// RunUntil executes windows while events at or before horizon remain, then
// sets every shard clock to horizon. Windows start at the global earliest
// pending event (skipping idle stretches in one jump) and end one
// conservative window later, clipped to the horizon. Cross-shard mailboxes
// drain at every barrier. It returns ErrStopped when Stop cut the run short
// and a window-rule error when a shard posted inside its own window; both
// leave the driver at a consistent barrier.
func (ss *ShardedSim) RunUntil(horizon time.Duration) error {
	if ss.stopped.CompareAndSwap(true, false) {
		return ErrStopped
	}
	// Merge setup-time cross-shard posts before the first window.
	ss.drainOutboxes()

	var work chan int
	var ack chan struct{}
	if ss.workers > 1 {
		// Both channels are buffered to the shard count so the
		// coordinator can dispatch a full window without blocking on
		// busy workers, and workers never block acking.
		work = make(chan int, len(ss.shards))
		ack = make(chan struct{}, len(ss.shards))
		for w := 0; w < ss.workers; w++ {
			go func() {
				for idx := range work {
					ss.errs[idx] = ss.shards[idx].runBefore(ss.curEnd)
					ack <- struct{}{}
				}
			}()
		}
		defer close(work)
	}

	for {
		t0, ok := ss.nextTime()
		if !ok || t0 > horizon {
			break
		}
		end := t0 + ss.window
		if end < t0 {
			end = maxDuration // overflow clamp near the time axis end
		}
		// RunUntil is horizon-inclusive while windows are end-exclusive:
		// the final window's bound is horizon+1 so events at exactly the
		// horizon still fire.
		if horizon != maxDuration && end > horizon+1 {
			end = horizon + 1
		}
		err := ss.runWindow(end, work, ack)
		if verr := ss.checkViolations(); verr != nil {
			return verr
		}
		if err != nil {
			return err
		}
		ss.drainOutboxes()
		if ss.stopped.CompareAndSwap(true, false) {
			return ErrStopped
		}
	}
	if horizon != maxDuration {
		for _, sh := range ss.shards {
			if horizon > sh.now {
				sh.now = horizon
			}
		}
	}
	return nil
}
