package sim

import (
	"errors"
	"sort"
	"testing"
	"time"
)

// FuzzScheduleCancel interprets the fuzz input as a program of kernel
// operations — At, AfterFunc, Cancel, Stop, RunFor — and checks the kernel
// against an exact shadow model after every step:
//
//   - heap invariants: every queued event's index field matches its slot,
//     and each node is (at, seq)-ordered no earlier than its parent;
//   - Pending() equals the shadow model's live-event count exactly
//     (cancellation is eager, so canceled events never linger);
//   - each RunFor fires precisely the predicted events, in (at, seq)
//     order, with monotone non-decreasing timestamps, and leaves the
//     clock and the Stop error exactly where the model says.
//
// The shadow model can be exact because the kernel's contract is total
// determinism: seq is one counter bumped per schedule, so the fire order
// of any schedule/cancel/stop interleaving is a pure function of the
// program. Any divergence is a kernel bug by definition.
func FuzzScheduleCancel(f *testing.F) {
	f.Add([]byte{0x00, 0x05, 0x01, 0x03, 0x03, 0x40})
	f.Add([]byte{0x00, 0x07, 0x02, 0x00, 0x03, 0x20, 0x04, 0x03, 0x10})
	f.Add([]byte{0x05, 0x02, 0x00, 0x02, 0x01, 0x02, 0x03, 0x7f, 0x03, 0x7f})
	f.Add([]byte{0x01, 0x00, 0x01, 0x00, 0x03, 0x00, 0x00, 0x0c, 0x02, 0x01, 0x03, 0x30})
	f.Fuzz(func(t *testing.T, data []byte) {
		type shadow struct {
			at      time.Duration
			seq     uint64
			id      int64
			live    bool
			stopper bool
			closure bool
			h       Handle
		}
		type firing struct {
			at time.Duration
			id int64
		}
		s := New(WithSeed(1))
		var (
			evs         []shadow
			got         []firing // appended by callbacks, reset per run
			stopPending bool
			clock       time.Duration
			nextSeq     uint64
			nextID      int64
		)
		record := func(p Payload) { got = append(got, firing{s.Now(), p.B}) }

		checkState := func(step int) {
			for i, ev := range s.queue {
				if ev.index != i {
					t.Fatalf("step %d: queue[%d].index = %d", step, i, ev.index)
				}
				if i > 0 {
					p := s.queue[(i-1)/2]
					if p.at > ev.at || (p.at == ev.at && p.seq > ev.seq) {
						t.Fatalf("step %d: heap order violated at slot %d: parent (%v, %d) > child (%v, %d)",
							step, i, p.at, p.seq, ev.at, ev.seq)
					}
				}
			}
			live := 0
			for i := range evs {
				if evs[i].live {
					live++
				}
				if evs[i].closure && evs[i].h.Scheduled() != evs[i].live {
					t.Fatalf("step %d: handle %d Scheduled()=%v, model live=%v",
						step, i, evs[i].h.Scheduled(), evs[i].live)
				}
			}
			if s.Pending() != live {
				t.Fatalf("step %d: Pending()=%d, model has %d live events", step, s.Pending(), live)
			}
			if s.Now() != clock {
				t.Fatalf("step %d: Now()=%v, model clock %v", step, s.Now(), clock)
			}
		}

		pos := 0
		next := func() (byte, bool) {
			if pos >= len(data) {
				return 0, false
			}
			b := data[pos]
			pos++
			return b, true
		}
		for step := 0; step < 300; step++ {
			op, ok := next()
			if !ok {
				break
			}
			arg, _ := next()
			// Small modulus so distinct schedules frequently collide on the
			// same instant and exercise the seq tiebreak.
			d := time.Duration(arg%13) * time.Millisecond
			switch op % 6 {
			case 0: // closure event
				id := nextID
				nextID++
				h := s.At(clock+d, func() { got = append(got, firing{s.Now(), id}) })
				evs = append(evs, shadow{at: clock + d, seq: nextSeq, id: id, live: true, closure: true, h: h})
				nextSeq++
			case 1: // handler event (no handle, cannot be canceled)
				id := nextID
				nextID++
				s.AfterFunc(d, record, Payload{B: id})
				evs = append(evs, shadow{at: clock + d, seq: nextSeq, id: id, live: true})
				nextSeq++
			case 2: // cancel an arbitrary prior closure event (stale picks are no-ops)
				if len(evs) == 0 {
					continue
				}
				k := int(arg) % len(evs)
				if !evs[k].closure {
					continue
				}
				evs[k].h.Cancel()
				evs[k].live = false
			case 3: // RunFor: predict the exact firing sequence
				horizon := clock + d
				var want []firing
				var wantErr error
				if stopPending {
					stopPending = false
					wantErr = ErrStopped
				} else {
					idx := make([]int, 0, len(evs))
					for i := range evs {
						if evs[i].live && evs[i].at <= horizon {
							idx = append(idx, i)
						}
					}
					sort.Slice(idx, func(a, b int) bool {
						ea, eb := &evs[idx[a]], &evs[idx[b]]
						if ea.at != eb.at {
							return ea.at < eb.at
						}
						return ea.seq < eb.seq
					})
					clock = horizon
					for _, i := range idx {
						evs[i].live = false
						want = append(want, firing{evs[i].at, evs[i].id})
						if evs[i].stopper {
							// drain returns after the stopping event; the
							// clock stays at its timestamp and later events
							// survive to the next run.
							clock = evs[i].at
							wantErr = ErrStopped
							break
						}
					}
				}
				got = got[:0]
				err := s.RunFor(d)
				if !errors.Is(err, wantErr) && !(err == nil && wantErr == nil) {
					t.Fatalf("step %d: RunFor(%v) err=%v, model wants %v", step, d, err, wantErr)
				}
				if len(got) != len(want) {
					t.Fatalf("step %d: fired %d events, model predicts %d\n got=%v\nwant=%v",
						step, len(got), len(want), got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("step %d: firing %d = %+v, model predicts %+v", step, i, got[i], want[i])
					}
					if i > 0 && got[i].at < got[i-1].at {
						t.Fatalf("step %d: fire times went backwards: %v after %v", step, got[i].at, got[i-1].at)
					}
				}
			case 4: // Stop with no run in flight: consumed by the next run
				s.Stop()
				stopPending = true
			case 5: // stopper: a closure that halts the run from inside
				id := nextID
				nextID++
				h := s.At(clock+d, func() {
					got = append(got, firing{s.Now(), id})
					s.Stop()
				})
				evs = append(evs, shadow{at: clock + d, seq: nextSeq, id: id, live: true, closure: true, stopper: true, h: h})
				nextSeq++
			}
			checkState(step)
		}
		// Drain whatever survived so the final accounting is checked too:
		// every remaining live event fires exactly once.
		live := 0
		for i := range evs {
			if evs[i].live {
				live++
			}
		}
		got = got[:0]
		err := s.Run()
		if stopPending {
			if !errors.Is(err, ErrStopped) {
				t.Fatalf("final Run with pending stop: err=%v", err)
			}
		} else if err != nil {
			// Stoppers may halt the drain partway; anything else is a bug.
			if !errors.Is(err, ErrStopped) {
				t.Fatalf("final Run: %v", err)
			}
		} else if len(got) != live {
			t.Fatalf("final Run fired %d events, model had %d live", len(got), live)
		}
	})
}

// FuzzShardedFireOrder drives the chaos workload (sharded_test.go) at a
// fuzzed (shard count, seed, budget) and cross-checks the parallel
// executor's per-shard fire logs against the sequential driver: workers=1
// runs every window inline on one goroutine, workers=shards fans the same
// windows out across the pool. The logs must be identical — the shard-count
// invisibility contract says the worker count may never reach any observable
// byte. One shard is a valid draw, pinning the degenerate case the
// equivalence suite covers at experiment level.
func FuzzShardedFireOrder(f *testing.F) {
	f.Add([]byte{0x02, 0x2a, 0x30})
	f.Add([]byte{0x00, 0x01, 0x10})
	f.Add([]byte{0x01, 0xff, 0x55})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		shards := 1 + int(data[0])%3
		seed := int64(data[1]) + 1
		budget := 20 + int(data[2])%80
		base := runChaos(t, shards, 1, seed, budget)
		par := runChaos(t, shards, shards, seed, budget)
		if d := diffLogs(base, par); d != "" {
			t.Fatalf("shards=%d seed=%d budget=%d: parallel run diverged from sequential: %s",
				shards, seed, budget, d)
		}
	})
}
