package sim

import (
	"testing"
	"time"
)

// collectPayloads is a package-level handler so scheduling it never
// allocates a closure; it appends the payload's A field to the slice the
// Ctx points at.
func collectPayloads(p Payload) {
	dst := p.Ctx.(*[]int64)
	*dst = append(*dst, p.A)
}

func TestAfterFuncDelivers(t *testing.T) {
	s := New()
	var got []int64
	if !s.AfterFunc(time.Second, collectPayloads, Payload{Ctx: &got, A: 7}) {
		t.Fatal("AfterFunc refused a valid schedule")
	}
	if !s.AtFunc(2*time.Second, collectPayloads, Payload{Ctx: &got, A: 9}) {
		t.Fatal("AtFunc refused a valid schedule")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("payloads = %v, want [7 9]", got)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", s.Now())
	}
}

func TestAfterFuncOrderInterleavesWithClosures(t *testing.T) {
	s := New()
	var order []int64
	s.After(time.Millisecond, func() { order = append(order, 1) })
	s.AfterFunc(time.Millisecond, collectPayloads, Payload{Ctx: &order, A: 2})
	s.After(time.Millisecond, func() { order = append(order, 3) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("same-instant order = %v, want [1 2 3]", order)
	}
}

func TestAfterFuncRejectsBadSchedules(t *testing.T) {
	s := New()
	if s.AfterFunc(time.Second, nil, Payload{}) {
		t.Fatal("nil handler accepted")
	}
	s.After(time.Second, func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.AtFunc(0, collectPayloads, Payload{}) {
		t.Fatal("past schedule accepted")
	}
	var got []int64
	if !s.AfterFunc(-time.Second, collectPayloads, Payload{Ctx: &got, A: 1}) {
		t.Fatal("negative delay should clamp to now, not fail")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("clamped event did not fire: %v", got)
	}
}

func TestHandlerEventsRecycled(t *testing.T) {
	s := New()
	var sink []int64
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			s.AfterFunc(time.Duration(i), collectPayloads, Payload{Ctx: &sink, A: int64(i)})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	if len(sink) != 12 {
		t.Fatalf("fired %d events, want 12", len(sink))
	}
	// After draining, the free list must hold the recycled events: the next
	// batch reuses them rather than allocating.
	free := 0
	for ev := s.free; ev != nil; ev = ev.nextFree {
		free++
	}
	if free != 4 {
		t.Fatalf("free list holds %d events, want 4", free)
	}
}

// reschedule is a self-perpetuating handler: each firing schedules the next
// until the counter in Ctx reaches B.
func reschedule(p Payload) {
	n := p.Ctx.(*int64)
	*n++
	if *n < p.B {
		p.Aux.(*Sim).AfterFunc(time.Millisecond, reschedule, p)
	}
}

func TestAfterFuncSteadyStateZeroAllocs(t *testing.T) {
	s := New()
	var sink []int64
	// Warm the free list and the heap's backing array.
	for i := 0; i < 64; i++ {
		s.AfterFunc(time.Duration(i), collectPayloads, Payload{Ctx: &sink})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			s.AfterFunc(time.Duration(i), collectPayloads, Payload{Ctx: &sink})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		sink = sink[:0]
	})
	if avg != 0 {
		t.Fatalf("pooled schedule/fire loop allocates %.1f per run, want 0", avg)
	}
}

func TestRescheduleChainZeroAllocs(t *testing.T) {
	s := New()
	var n int64
	s.AfterFunc(time.Millisecond, reschedule, Payload{Ctx: &n, Aux: s, B: 4})
	if err := s.Run(); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	avg := testing.AllocsPerRun(100, func() {
		n = 0
		s.AfterFunc(time.Millisecond, reschedule, Payload{Ctx: &n, Aux: s, B: 16})
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("rescheduling handler chain allocates %.1f per run, want 0", avg)
	}
	if n != 16 {
		t.Fatalf("chain fired %d times, want 16", n)
	}
}

func BenchmarkKernelAfterFuncPooled(b *testing.B) {
	s := New()
	var sink []int64
	for i := 0; i < 64; i++ {
		s.AfterFunc(time.Duration(i), collectPayloads, Payload{Ctx: &sink})
	}
	if err := s.Run(); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AfterFunc(time.Microsecond, collectPayloads, Payload{Ctx: &sink})
		if err := s.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
		sink = sink[:0]
	}
}

func BenchmarkKernelClosureAfter(b *testing.B) {
	s := New()
	var fired int
	// The closure is hoisted so the benchmark measures the kernel's
	// schedule/fire cycle, not Go's closure capture: the event slot itself
	// comes from the free list and the loop allocates nothing.
	fn := func() { fired++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, fn)
		if err := s.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
}

func BenchmarkKernelScheduleCancel(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := s.After(time.Hour, fn)
		ev.Cancel()
	}
}
