package sim

import (
	"fmt"
	"testing"
	"time"
)

// This file is the metamorphic chunking suite for the sequential kernel:
// driving any workload with RunFor in k chunks must be indistinguishable
// from one RunUntil over the same horizon — identical fire log, identical
// final clock, identical Pending. The property is what lets the harness,
// the report runner, and the sharded driver (which is itself a RunFor loop
// over windows) compose runs freely. Each workload mirrors the scheduling
// shape of a family of experiments rather than reusing their full stacks,
// so a failure localizes to the kernel.

// metaRec is one observed firing: timestamp plus workload-assigned id.
type metaRec struct {
	at time.Duration
	id int64
}

// metaWorkload seeds a Sim with a self-sustaining workload whose firings
// append to the returned log. The trajectory must be a pure function of
// the Sim's seed.
type metaWorkload struct {
	name    string
	horizon time.Duration
	seed    func(s *Sim) *[]metaRec
}

// burstWorkload mirrors E01-style fan-outs: waves of same-instant events
// (ties resolved by seq) each scheduling the next wave after a random gap.
func burstWorkload() metaWorkload {
	return metaWorkload{
		name:    "burst",
		horizon: 2 * time.Second,
		seed: func(s *Sim) *[]metaRec {
			log := &[]metaRec{}
			g := s.Stream("burst")
			spawned := int64(0)
			var wave func(id int64)
			wave = func(id int64) {
				*log = append(*log, metaRec{s.Now(), id})
				if spawned >= 3000 {
					return
				}
				gap := time.Duration(g.Intn(int(40 * time.Millisecond)))
				n := 1 + g.Intn(4)
				for i := 0; i < n; i++ {
					spawned++
					next := spawned
					s.After(gap, func() { wave(next) })
				}
			}
			s.At(0, func() { wave(0) })
			return log
		},
	}
}

// pingPongWorkload mirrors E03-style lookup chains: request/response pairs
// via handler events, each response spawning the next request, with a
// tail of long timers that mostly get out-raced.
func pingPongWorkload() metaWorkload {
	return metaWorkload{
		name:    "pingpong",
		horizon: 3 * time.Second,
		seed: func(s *Sim) *[]metaRec {
			log := &[]metaRec{}
			g := s.Stream("rpc")
			var respond, request Handler
			respond = func(p Payload) {
				*log = append(*log, metaRec{s.Now(), p.B})
				if p.A > 0 {
					s.AfterFunc(time.Duration(g.Intn(int(25*time.Millisecond))), request,
						Payload{A: p.A - 1, B: p.B + 1})
				}
			}
			request = func(p Payload) {
				*log = append(*log, metaRec{s.Now(), -p.B})
				s.AfterFunc(time.Duration(g.Intn(int(25*time.Millisecond))), respond, p)
			}
			for i := 0; i < 40; i++ {
				s.AfterFunc(time.Duration(g.Intn(int(100*time.Millisecond))), request,
					Payload{A: 30, B: int64(i) * 1000})
				// Straggler timers that usually land beyond the horizon.
				s.After(time.Duration(g.Intn(int(5*time.Second))), func() {
					*log = append(*log, metaRec{s.Now(), 999999})
				})
			}
			return log
		},
	}
}

// churnWorkload mirrors E15-style churn: sessions arrive on a ticker, each
// arming a departure timer that a renewal sometimes cancels and re-arms —
// a steady stream of Cancel traffic against live timers.
func churnWorkload() metaWorkload {
	return metaWorkload{
		name:    "churn",
		horizon: 4 * time.Second,
		seed: func(s *Sim) *[]metaRec {
			log := &[]metaRec{}
			g := s.Stream("churn")
			id := int64(0)
			var arrive func()
			arrive = func() {
				id++
				self := id
				*log = append(*log, metaRec{s.Now(), self})
				depart := s.After(time.Duration(g.Intn(int(800*time.Millisecond))), func() {
					*log = append(*log, metaRec{s.Now(), -self})
				})
				if g.Bool(0.4) { // renewal: cancel the departure, re-arm later
					s.After(time.Duration(g.Intn(int(400*time.Millisecond))), func() {
						if depart.Scheduled() {
							depart.Cancel()
							s.After(time.Duration(g.Intn(int(800*time.Millisecond))), func() {
								*log = append(*log, metaRec{s.Now(), -self})
							})
						}
					})
				}
				if id < 3000 {
					s.After(time.Duration(g.Intn(int(30*time.Millisecond))), arrive)
				}
			}
			s.At(0, func() { arrive() })
			return log
		},
	}
}

// runChunked seeds the workload and drives it to its horizon in k RunFor
// chunks (k=1 degenerates to one RunUntil), returning the fire log and the
// final pending count.
func runChunked(t *testing.T, w metaWorkload, chunks int) ([]metaRec, int) {
	t.Helper()
	s := New(WithSeed(11))
	log := w.seed(s)
	if chunks <= 1 {
		if err := s.RunUntil(w.horizon); err != nil {
			t.Fatalf("%s: RunUntil: %v", w.name, err)
		}
	} else {
		per := w.horizon / time.Duration(chunks)
		for i := 0; i < chunks; i++ {
			if err := s.RunFor(per); err != nil {
				t.Fatalf("%s: RunFor chunk %d: %v", w.name, i, err)
			}
		}
		if rest := w.horizon - per*time.Duration(chunks); rest > 0 {
			if err := s.RunFor(rest); err != nil {
				t.Fatalf("%s: RunFor remainder: %v", w.name, err)
			}
		}
	}
	if got := s.Now(); got != w.horizon {
		t.Fatalf("%s: clock at %v after horizon %v", w.name, got, w.horizon)
	}
	return *log, s.Pending()
}

// TestRunForChunksEquivalence is the metamorphic property itself, across
// the three workload shapes and a spread of chunk counts (including ones
// that do not divide the horizon evenly, so chunk boundaries land at
// arbitrary instants between and exactly on event timestamps).
func TestRunForChunksEquivalence(t *testing.T) {
	for _, w := range []metaWorkload{burstWorkload(), pingPongWorkload(), churnWorkload()} {
		w := w
		t.Run(w.name, func(t *testing.T) {
			base, basePending := runChunked(t, w, 1)
			if len(base) < 200 {
				t.Fatalf("workload fired only %d events; too small to be meaningful", len(base))
			}
			for _, chunks := range []int{2, 3, 7, 16, 61} {
				t.Run(fmt.Sprintf("chunks=%d", chunks), func(t *testing.T) {
					got, gotPending := runChunked(t, w, chunks)
					if gotPending != basePending {
						t.Fatalf("pending after horizon: %d vs %d", gotPending, basePending)
					}
					if len(got) != len(base) {
						t.Fatalf("fired %d events vs %d", len(got), len(base))
					}
					for i := range base {
						if got[i] != base[i] {
							t.Fatalf("firing %d: %+v vs %+v", i, got[i], base[i])
						}
					}
				})
			}
		})
	}
}
