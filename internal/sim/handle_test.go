package sim

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestStaleHandleIsInert is the safety contract of the pooled closure path:
// a handle kept past its event's life must never affect the slot's next
// tenant.
func TestStaleHandleIsInert(t *testing.T) {
	s := New()
	fired := 0
	h1 := s.After(time.Second, func() { fired++ })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// h1's slot is now on the free list; the next schedule reuses it.
	h2 := s.After(time.Second, func() { fired++ })
	h1.Cancel() // stale: must not cancel h2
	if h1.Scheduled() {
		t.Fatal("fired handle reports Scheduled")
	}
	if !h2.Scheduled() {
		t.Fatal("stale Cancel killed the slot's new tenant")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// TestHandleInertInsideOwnCallback: by the time a closure runs, its slot is
// recycled, so self-cancel inside the callback is a no-op.
func TestHandleInertInsideOwnCallback(t *testing.T) {
	s := New()
	var h Handle
	ran := false
	h = s.After(time.Second, func() {
		ran = true
		if h.Scheduled() {
			t.Error("handle still Scheduled inside its own callback")
		}
		h.Cancel() // must not disturb anything
	})
	s.After(2*time.Second, func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran || s.Fired() != 2 {
		t.Fatalf("ran=%v fired=%d, want true/2", ran, s.Fired())
	}
}

func TestHandleAt(t *testing.T) {
	s := New()
	h := s.After(3*time.Second, func() {})
	if h.At() != 3*time.Second {
		t.Fatalf("At = %v, want 3s", h.At())
	}
	h.Cancel()
	if h.At() != 0 {
		t.Fatalf("At on dead handle = %v, want 0", h.At())
	}
}

// TestClosureSteadyStateZeroAllocs pins the satellite contract: the closure
// schedule/fire loop rides the same free list as the handler path, so with
// a hoisted closure it allocates nothing.
func TestClosureSteadyStateZeroAllocs(t *testing.T) {
	s := New()
	fired := 0
	fn := func() { fired++ }
	// Warm the free list and the heap's backing array.
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i), fn)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			s.After(time.Duration(i), fn)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("closure schedule/fire loop allocates %.1f per run, want 0", avg)
	}
}

// TestScheduleCancelZeroAllocs pins the other satellite contract: Cancel
// recycles the slot, so a schedule/cancel loop reuses one event forever.
func TestScheduleCancelZeroAllocs(t *testing.T) {
	s := New()
	fn := func() {}
	s.After(time.Hour, fn).Cancel() // warm the free list
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			s.After(time.Hour, fn).Cancel()
		}
	})
	if avg != 0 {
		t.Fatalf("schedule/cancel loop allocates %.1f per run, want 0", avg)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after cancel loop, want 0", s.Pending())
	}
}

func TestMaxPendingHighWater(t *testing.T) {
	s := New()
	fn := func() {}
	for i := 1; i <= 5; i++ {
		s.After(time.Duration(i)*time.Second, fn)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s.After(time.Second, fn)
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.MaxPending() != 5 {
		t.Fatalf("MaxPending = %d, want 5", s.MaxPending())
	}
}

func TestWithObserverAttachesKernelStats(t *testing.T) {
	col := obs.NewCollector()
	s := New(WithSeed(3), WithObserver(col))
	if s.Observer() != col {
		t.Fatal("Observer() did not return the attached collector")
	}
	for i := 1; i <= 4; i++ {
		s.After(time.Duration(i)*time.Second, func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap := col.Snapshot()
	if snap.Sim.Fired != 4 || snap.Sim.MaxPending != 4 {
		t.Fatalf("sim snapshot = %+v, want fired=4 maxPending=4", snap.Sim)
	}
	if snap.Sim.VirtualNano != int64(4*time.Second) {
		t.Fatalf("virtual time = %d, want 4s", snap.Sim.VirtualNano)
	}
	// No observer: nil collector everywhere.
	if New().Observer() != nil {
		t.Fatal("detached sim must report a nil observer")
	}
}
