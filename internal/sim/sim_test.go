package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(3*time.Second, func() { got = append(got, 3) })
	s.At(1*time.Second, func() { got = append(got, 1) })
	s.At(2*time.Second, func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of scheduling order: %v", got)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New()
	var at time.Duration
	s.After(5*time.Second, func() {
		at = s.Now()
		s.After(2*time.Second, func() { at = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 7*time.Second {
		t.Fatalf("Now at final event = %v, want 7s", at)
	}
}

func TestSchedulePastReturnsZeroHandle(t *testing.T) {
	s := New()
	s.After(time.Second, func() {
		ev := s.At(0, func() {})
		if !ev.IsZero() || ev.Scheduled() {
			t.Error("scheduling in the past should return the zero handle")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	ev := s.After(time.Second, func() { fired = true })
	if !ev.Scheduled() {
		t.Fatal("Scheduled() = false before Cancel")
	}
	ev.Cancel()
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	if ev.Scheduled() {
		t.Fatal("Scheduled() = true after Cancel")
	}
	if ev.IsZero() {
		t.Fatal("a canceled handle is spent, not zero")
	}
}

// TestCancelEager verifies cancellation removes the event from the schedule
// immediately: Pending drops at Cancel time, not at the event's fire time.
func TestCancelEager(t *testing.T) {
	s := New()
	s.At(time.Second, func() {})
	ev := s.At(time.Hour, func() { t.Error("canceled event fired") })
	s.At(2*time.Second, func() {})
	if s.Pending() != 3 {
		t.Fatalf("Pending = %d before cancel, want 3", s.Pending())
	}
	ev.Cancel()
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d after cancel, want 2 (eager removal)", s.Pending())
	}
	ev.Cancel() // second cancel is a no-op
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d after double cancel, want 2", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", s.Fired())
	}
}

// TestCancelPreservesOrder cancels interleaved events and checks the
// survivors still fire in (time, sequence) order.
func TestCancelPreservesOrder(t *testing.T) {
	s := New()
	var got []int
	var evs []Handle
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, s.At(time.Duration(i)*time.Second, func() { got = append(got, i) }))
	}
	for i := 1; i < 10; i += 2 {
		evs[i].Cancel()
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{0, 2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestCancelAfterFire verifies canceling an already-fired event is a no-op
// and does not disturb the remaining schedule.
func TestCancelAfterFire(t *testing.T) {
	s := New()
	fired := 0
	ev := s.At(time.Second, func() { fired++ })
	s.At(2*time.Second, func() { fired++ })
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	ev.Cancel()
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// TestTickerStopUnschedules verifies a stopped ticker's pending tick leaves
// the heap immediately instead of lingering to its fire time.
func TestTickerStopUnschedules(t *testing.T) {
	s := New()
	tk, err := s.Every(time.Hour, func() {})
	if err != nil {
		t.Fatalf("Every: %v", err)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d after Every, want 1", s.Pending())
	}
	tk.Stop()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after Ticker.Stop, want 0 (eager removal)", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", s.Fired())
	}
}

// TestStopBeforeRun verifies a Stop issued while no Run is in flight is not
// erased: the next Run variant returns ErrStopped immediately, and the stop
// is consumed so the run after that proceeds.
func TestStopBeforeRun(t *testing.T) {
	s := New()
	count := 0
	s.At(time.Second, func() { count++ })
	s.Stop()
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("Run after idle Stop = %v, want ErrStopped", err)
	}
	if count != 0 {
		t.Fatalf("executed %d events despite pre-run Stop, want 0", count)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run after consumed Stop: %v", err)
	}
	if count != 1 {
		t.Fatalf("executed %d events, want 1", count)
	}
}

// TestStopConsumedByRunVariants checks each Run variant honors and consumes
// a pre-run Stop.
func TestStopConsumedByRunVariants(t *testing.T) {
	s := New()
	s.Stop()
	if err := s.RunUntil(time.Minute); err != ErrStopped {
		t.Fatalf("RunUntil after idle Stop = %v, want ErrStopped", err)
	}
	s.Stop()
	if err := s.RunFor(time.Minute); err != ErrStopped {
		t.Fatalf("RunFor after idle Stop = %v, want ErrStopped", err)
	}
	if err := s.RunFor(time.Minute); err != nil {
		t.Fatalf("RunFor after consumed Stop: %v", err)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		s.At(d, func() { fired = append(fired, d) })
	}
	if err := s.RunUntil(3 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now = %v after RunUntil(3s), want 3s", s.Now())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
}

func TestRunForAdvancesEvenWhenEmpty(t *testing.T) {
	s := New()
	if err := s.RunFor(time.Minute); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if s.Now() != time.Minute {
		t.Fatalf("Now = %v, want 1m", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.At(time.Second, func() { count++; s.Stop() })
	s.At(2*time.Second, func() { count++ })
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Fatalf("executed %d events after Stop, want 1", count)
	}
}

func TestTicker(t *testing.T) {
	s := New()
	ticks := 0
	tk, err := s.Every(time.Second, func() { ticks++ })
	if err != nil {
		t.Fatalf("Every: %v", err)
	}
	if err := s.RunUntil(5500 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	tk.Stop()
	if err := s.RunUntil(time.Minute); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if ticks != 5 {
		t.Fatalf("ticker fired after Stop: ticks = %d", ticks)
	}
}

func TestTickerBadPeriod(t *testing.T) {
	s := New()
	if _, err := s.Every(0, func() {}); err == nil {
		t.Fatal("Every(0) should error")
	}
	if _, err := s.Every(time.Second, nil); err == nil {
		t.Fatal("Every(nil fn) should error")
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := New(WithSeed(42)).Stream("net")
	b := New(WithSeed(42)).Stream("net")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds and stream names must produce equal streams")
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	s := New(WithSeed(42))
	a, b := s.Stream("a"), s.Stream("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 'a' and 'b' coincide %d/64 times; expected independence", same)
	}
	if s.Stream("a") != a {
		t.Fatal("Stream must return the same object for the same name")
	}
}

func TestRNGBoolEdges(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 10; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGIntnNonPositive(t *testing.T) {
	g := NewRNG(1)
	if g.Intn(0) != 0 || g.Intn(-5) != 0 {
		t.Fatal("Intn with non-positive bound should return 0")
	}
}

func TestExpDurationMean(t *testing.T) {
	g := NewRNG(7)
	const n = 20000
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += g.ExpDuration(time.Second)
	}
	mean := float64(sum) / n
	if mean < 0.9*float64(time.Second) || mean > 1.1*float64(time.Second) {
		t.Fatalf("empirical mean %v, want ~1s", time.Duration(mean))
	}
}

func TestJitterBounds(t *testing.T) {
	g := NewRNG(3)
	base := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		d := g.Jitter(base, 0.2)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered %v outside [80ms,120ms]", d)
		}
	}
	if g.Jitter(base, 0) != base {
		t.Fatal("zero jitter must be identity")
	}
}

// Property: for any schedule of non-negative delays, events fire in
// non-decreasing time order and the count matches.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var times []time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Millisecond
			s.At(at, func() { times = append(times, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFiredCount(t *testing.T) {
	s := New()
	for i := 0; i < 25; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Fired() != 25 {
		t.Fatalf("Fired = %d, want 25", s.Fired())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}
