package sim

import (
	"testing"
	"time"
)

// BenchmarkKernelShardMailbox measures the sharded driver's steady-state
// cross-shard cycle: Post into per-source outboxes, barrier merge
// (drainOutboxes sorts and schedules into destination kernels), and the
// destination windows firing the delivered events so every slot recycles.
// The whole cycle is pinned at 0 allocs/op by BENCH_baseline.json: outbox
// and merge scratch reuse their backing arrays, the sort goes through the
// pointer-receiver mailboxOrder (no interface boxing), and delivered
// events come from the kernels' free lists.
func BenchmarkKernelShardMailbox(b *testing.B) {
	const shards = 4
	ss, err := NewSharded(shards, time.Millisecond, WithShardSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	h := func(Payload) {}
	var at time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += time.Millisecond
		for from := 0; from < shards; from++ {
			ss.Post(from, (from+1)%shards, at, h, Payload{A: int64(i)})
		}
		ss.drainOutboxes()
		for s := 0; s < shards; s++ {
			if err := ss.shards[s].runBefore(at + time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
	}
}
