package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"math/rand"
	"time"
)

// RNG is a deterministic random stream. Every stream is derived from the
// simulator's master seed and a stream name, so adding a new consumer of
// randomness does not perturb existing streams (a common source of accidental
// irreproducibility in simulators that share one generator).
type RNG struct {
	r *rand.Rand
}

// Stream returns the named random stream, creating it on first use. Streams
// are stable across runs for a fixed master seed.
func (s *Sim) Stream(name string) *RNG {
	if g, ok := s.streams[name]; ok {
		return g
	}
	g := NewRNG(deriveSeed(s.seed, name))
	s.streams[name] = g
	return g
}

// NewRNG returns a stand-alone deterministic stream; useful in tests and in
// analytic code that runs outside a Sim.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

func deriveSeed(master int64, name string) int64 {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(master))
	h.Write(buf[:])
	h.Write([]byte(name))
	sum := h.Sum(nil)
	return int64(binary.BigEndian.Uint64(sum[:8]))
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n). It returns 0 when n <= 0 rather
// than panicking, so callers can feed it workload-derived counts safely.
func (g *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return g.r.Intn(n)
}

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with mean 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int {
	if n <= 0 {
		return nil
	}
	return g.r.Perm(n)
}

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) {
	if n > 1 {
		g.r.Shuffle(n, swap)
	}
}

// Bool returns true with probability p (clamped to [0, 1]).
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// ExpDuration returns an exponentially distributed duration with the given
// mean; it is the inter-arrival distribution of a Poisson process.
func (g *RNG) ExpDuration(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := g.r.ExpFloat64() * float64(mean)
	if d > math.MaxInt64/2 {
		d = math.MaxInt64 / 2
	}
	return time.Duration(d)
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f]; f is clamped to
// [0, 1]. It models symmetric link-latency noise.
func (g *RNG) Jitter(d time.Duration, f float64) time.Duration {
	if f <= 0 || d <= 0 {
		return d
	}
	if f > 1 {
		f = 1
	}
	scale := 1 + f*(2*g.r.Float64()-1)
	return time.Duration(float64(d) * scale)
}

// Rand exposes the underlying math/rand generator for adapters (e.g.
// rand.Zipf) that require the concrete type.
func (g *RNG) Rand() *rand.Rand { return g.r }
