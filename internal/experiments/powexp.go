package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cloudbase"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/pow"
	"repro/internal/sim"
)

// e06Throughput reproduces §III-C Problem 2: VISA 24,000 tps vs Bitcoin
// 3.3–7 tps vs Ethereum ~15 tps.
func e06Throughput() core.Experiment {
	return &exp{
		id:      "E06",
		section: "§III-C P2",
		title:   "Throughput: permissionless chains vs partitioned cloud",
		claim:   "§III-C P2: while VISA processes 24,000 transactions per second, Bitcoin can process between 3.3 and 7, and Ethereum around 15 — the consequence of a broadcast network where all nodes validate all transactions.",
		run: func(cfg core.Config, r *core.Result) error {
			tab := metrics.NewTable("sustained throughput (tps)",
				"system", "mechanism", "tps", "paper reference")
			btcLow := pow.BitcoinParams(500)
			btcHigh := pow.BitcoinParams(240)
			eth := pow.EthereumParams()
			tab.AddRowf("bitcoin (500B txs)", "1MB blocks / 600s, global broadcast", btcLow.TPS(), "3.3")
			tab.AddRowf("bitcoin (240B txs)", "1MB blocks / 600s, global broadcast", btcHigh.TPS(), "7")
			tab.AddRowf("ethereum", "8M gas / 14s, global broadcast", eth.TPS(), "~15")

			// Measured: an actual PoW mining run with Bitcoin parameters.
			s := newSim(cfg)
			nw, err := pow.NewNetwork(s, pow.Params{
				BlockInterval:     10 * time.Minute,
				BlockSize:         1_000_000,
				AvgTxSize:         knobInt(cfg, "e06.txbytes"),
				InitialDifficulty: 600,
			}, []float64{0.3, 0.25, 0.2, 0.15, 0.1})
			if err != nil {
				return err
			}
			nw.Start()
			blocks, err := scaledSize(cfg, "e06.blocks")
			if err != nil {
				return err
			}
			if err := s.RunUntil(time.Duration(blocks) * 10 * time.Minute); err != nil {
				return err
			}
			nw.Stop()
			st := nw.Finalize()
			tab.AddRowf("bitcoin (simulated)", "event-driven mining network", st.TPS, "3.3-7")

			// Cloud baseline: a sharded cluster absorbing VISA's load.
			shards := knobInt(cfg, "e06.shards")
			s2 := newSim(cfg)
			cluster, err := cloudbase.NewCluster(s2, cloudbase.Config{
				Shards:         shards,
				ServiceTime:    time.Millisecond,
				CrossShardFrac: knobFloat(cfg, "e06.crossshard"),
			})
			if err != nil {
				return err
			}
			dur := time.Duration(cfg.ScaleInt(10)) * time.Second
			if dur < 2*time.Second {
				dur = 2 * time.Second
			}
			cst, err := cluster.Run(pow.VisaReferenceTPS, dur)
			if err != nil {
				return err
			}
			tab.AddRowf("cloud OLTP (simulated)", fmt.Sprintf("%d shards, partitioned, trusted", shards), cst.TPS, "24000 (VISA)")
			tab.AddNote("p99 latency on the cloud baseline: %v at full VISA load", cst.P99)
			r.Tables = append(r.Tables, tab)

			gap := cst.TPS / st.TPS
			r.AddCheck(st.TPS >= 2 && st.TPS <= 9, "bitcoin-tps-range",
				"simulated bitcoin %.1f tps (paper 3.3-7)", st.TPS)
			r.AddCheck(eth.TPS() >= 12 && eth.TPS() <= 18, "ethereum-tps",
				"ethereum model %.1f tps (paper ~15)", eth.TPS())
			r.AddCheck(gap >= 1000, "cloud-gap-three-orders",
				"cloud/bitcoin gap %.0fx (>=1000x)", gap)
			return nil
		},
	}
}

// e07Difficulty reproduces §III-A: the difficulty target is periodically
// adjusted so a block appears every ~10 minutes regardless of hashpower.
func e07Difficulty() core.Experiment {
	return &exp{
		id:      "E07",
		section: "§III-A",
		title:   "Difficulty retargeting under exponential hashpower growth",
		claim:   "§III-A: the difficulty target is periodically adjusted in such a way that a new block is generated every 10 minutes.",
		run: func(cfg core.Config, r *core.Result) error {
			s := newSim(cfg)
			const target = 10 * time.Minute
			// The retarget window scales with the run so adjustment lag
			// stays proportional at reduced scales.
			window, err := scaledSize(cfg, "e07.window")
			if err != nil {
				return err
			}
			nw, err := pow.NewNetwork(s, pow.Params{
				BlockInterval:     target,
				InitialDifficulty: 600 * 1, // hashrate 1 => on-target at start
				RetargetWindow:    window,
			}, []float64{1})
			if err != nil {
				return err
			}
			nw.Start()
			epochs := knobInt(cfg, "e07.epochs")
			epochBlocks, err := scaledSize(cfg, "e07.epochblocks")
			if err != nil {
				return err
			}
			epochLen := time.Duration(epochBlocks) * target
			for e := 1; e <= epochs; e++ {
				e := e
				s.At(time.Duration(e)*epochLen, func() {
					nw.SetHashrate(0, math.Pow(2, float64(e)))
				})
			}
			horizon := time.Duration(epochs+3) * epochLen
			// Sample the interval per epoch.
			tab := metrics.NewTable("difficulty tracking (simulated)",
				"epoch", "hashrate", "difficulty", "blocks so far")
			for e := 0; e <= epochs; e++ {
				e := e
				s.At(time.Duration(e)*epochLen+epochLen-1, func() {
					tab.AddRowf(e, nw.TotalHashrate(), nw.Difficulty(), nw.Chain().BestHeight())
				})
			}
			if err := s.RunUntil(horizon); err != nil {
				return err
			}
			nw.Stop()
			st := nw.Finalize()
			r.Tables = append(r.Tables, tab)

			ideal := math.Pow(2, float64(epochs)) * target.Seconds()
			ratio := nw.Difficulty() / ideal
			r.AddCheck(ratio > 0.4 && ratio < 2.5, "difficulty-tracks-hashrate",
				"final difficulty %.0f vs ideal %.0f (ratio %.2f) after %.0fx growth",
				nw.Difficulty(), ideal, ratio, math.Pow(2, float64(epochs)))
			meanErr := math.Abs(st.MeanInterval.Seconds()-target.Seconds()) / target.Seconds()
			r.AddCheck(meanErr < 0.35, "interval-near-target",
				"overall mean interval %.0fs vs 600s target (adjustment lag included)", st.MeanInterval.Seconds())
			return nil
		},
	}
}

// e08ForkRate reproduces the §III-C trilemma mechanics: pushing throughput
// up (shorter intervals / bigger blocks) raises the stale rate and erodes
// security.
func e08ForkRate() core.Experiment {
	return &exp{
		id:      "E08",
		section: "§III-C P2",
		title:   "Fork rate vs block interval — the trilemma's mechanics",
		claim:   "§III-C P2: a completely open network of thousands of heterogeneous nodes is a serious burden for performance (Buterin's scalability trilemma: scalability, decentralization, security — pick two).",
		run: func(cfg core.Config, r *core.Result) error {
			blocks, err := scaledSize(cfg, "e08.blocks")
			if err != nil {
				return err
			}
			// ~1MB over a global gossip mesh by default.
			propagation := time.Duration(knobFloat(cfg, "e08.propagation") * float64(time.Second))
			mixIdx := knobIndex(cfg, "e08.mix")
			loss := knobFloat(cfg, "e08.loss")
			if loss > 0 && mixIdx == 0 {
				return fmt.Errorf("e08.loss=%g needs a WAN relay: set e08.mix to 1..%d", loss, netmodel.NumMixPresets)
			}
			hashrates := []float64{0.25, 0.25, 0.2, 0.15, 0.15}
			tab := metrics.NewTable(fmt.Sprintf("stale rate vs block interval (%s propagation, simulated)", propagation),
				"interval", "throughput gain", "stale rate (sim)", "stale rate (model)", "honest share needed to attack")
			fig := &metrics.Figure{Title: "stale rate", XLabel: "propagation/interval", YLabel: "stale rate"}
			var rates []float64
			for _, interval := range []time.Duration{600 * time.Second, 60 * time.Second, 12 * time.Second} {
				s := newSim(cfg)
				params := pow.Params{
					BlockInterval:     interval,
					BlockSize:         1_000_000,
					InitialDifficulty: interval.Seconds(), // total hashrate 1
					Propagation: func(g *sim.RNG, size int) time.Duration {
						return g.Jitter(propagation, 0.4)
					},
				}
				var nw *pow.Network
				if mixIdx > 0 {
					// WAN-backed relay: miners sit on a regional topology
					// with loss/partition semantics. Copies serialize on
					// the uplink, so the k-th of the m other miners waits
					// k transfers; sizing the per-copy time at
					// 2*propagation/(m+1) puts the MEAN receiver delay at
					// ~propagation, the abstract model's timescale.
					mix, err := netmodel.MixPreset(mixIdx)
					if err != nil {
						return err
					}
					nm := netmodel.New(s, netmodel.WithJitter(0.4), netmodel.WithLoss(loss))
					upBps := float64(4*params.BlockSize*len(hashrates)) / propagation.Seconds()
					addrs, err := nm.BuildTopology(netmodel.TopologySpec{
						Nodes: len(hashrates),
						Mix:   mix,
						Classes: []netmodel.BandwidthClass{
							{Name: "miner", UplinkBps: upBps, Weight: 1},
						},
					})
					if err != nil {
						return err
					}
					nw, err = pow.NewNetworkOverNet(s, nm, addrs, params, hashrates)
					if err != nil {
						return err
					}
				} else {
					nw, err = pow.NewNetwork(s, params, hashrates)
					if err != nil {
						return err
					}
				}
				nw.Start()
				if err := s.RunUntil(time.Duration(blocks) * interval); err != nil {
					return err
				}
				nw.Stop()
				st := nw.Finalize()
				model := pow.StaleRateModel(propagation, interval)
				tab.AddRowf(interval.String(),
					600*time.Second/interval,
					st.StaleRate, model,
					pow.EffectiveSecurityShare(st.StaleRate))
				fig.Add("sim", propagation.Seconds()/interval.Seconds(), st.StaleRate)
				fig.Add("1-exp(-d/i)", propagation.Seconds()/interval.Seconds(), model)
				rates = append(rates, st.StaleRate)
			}
			r.Tables = append(r.Tables, tab)
			r.Figures = append(r.Figures, fig)
			// Message loss adds a near-interval-independent stale floor (a
			// miner that misses a block mines blind until the next one
			// arrives), so with loss enabled the low-stale bound shifts by
			// the loss rate and the growth check compares absolute growth
			// above the floor instead of the lossless 5x ratio. At the
			// lossless default the bounds are exactly the historical ones.
			r.AddCheck(rates[0] < 0.03+loss, "bitcoin-params-low-stale",
				"stale rate %.3f at 600s intervals", rates[0])
			worst := rates[len(rates)-1]
			growthOK := worst > 5*rates[0]
			if loss > 0 {
				growthOK = worst >= rates[0]+0.03
			}
			r.AddCheck(growthOK, "throughput-costs-consistency",
				"stale rate %.3f -> %.3f as interval shrinks 50x", rates[0], worst)
			// 1-e^(-d/i) assumes the whole network mines blind for the full
			// delay; with per-receiver delays and the finder switching
			// instantly it is an upper bound the simulation should approach
			// from below.
			model := pow.StaleRateModel(propagation, 12*time.Second)
			r.AddCheck(worst <= model*1.15+loss && worst >= model*0.45, "bounded-by-analytic-model",
				"sim %.3f vs upper-bound model %.3f at 12s intervals", worst, model)
			return nil
		},
	}
}

// e09Selfish reproduces §III-C Problem 1 (Eyal & Sirer): a colluding
// minority pool earns more than its fair share.
func e09Selfish() core.Experiment {
	return &exp{
		id:      "E09",
		section: "§III-C P1",
		title:   "Selfish mining: majority is not enough",
		claim:   "§III-C P1: the incentive mechanism of Bitcoin is flawed — a minority colluding pool can obtain more revenue than the pool's fair share (Eyal & Sirer).",
		run: func(cfg core.Config, r *core.Result) error {
			g := sim.NewRNG(cfg.Seed)
			blocks, err := scaledSize(cfg, "e09.blocks")
			if err != nil {
				return err
			}
			tab := metrics.NewTable("selfish mining revenue share (simulated vs closed form)",
				"alpha", "gamma", "revenue (sim)", "revenue (Eyal-Sirer eq.8)", "fair share", "profitable")
			fig := &metrics.Figure{Title: "selfish mining", XLabel: "alpha", YLabel: "revenue share"}
			var maxDelta float64
			var profitableBelow, unprofitableAbove bool
			gamma2 := knobFloat(cfg, "e09.gamma")
			for _, gamma := range []float64{0, gamma2} {
				for _, alpha := range []float64{0.15, 0.25, 0.3, 0.35, 0.4, 0.45} {
					out, err := pow.SimulateSelfishMining(g, alpha, gamma, blocks)
					if err != nil {
						return err
					}
					closed := pow.SelfishRevenueClosedForm(alpha, gamma)
					delta := math.Abs(out.RevenueShare - closed)
					if delta > maxDelta {
						maxDelta = delta
					}
					tab.AddRowf(alpha, gamma, out.RevenueShare, closed, alpha, out.Profitable())
					if gamma == 0 {
						fig.Add("sim γ=0", alpha, out.RevenueShare)
						fig.Add("fair", alpha, alpha)
						threshold := pow.SelfishThreshold(gamma)
						if alpha < threshold && out.Profitable() {
							profitableBelow = true
						}
						if alpha > threshold+0.02 && !out.Profitable() {
							unprofitableAbove = true
						}
					}
				}
			}
			if gamma2 == 0.5 {
				tab.AddNote("threshold (gamma=0) = 1/3; (gamma=0.5) = 1/4")
			} else {
				tab.AddNote("threshold (gamma=0) = 1/3; (gamma=%g) = %.4g", gamma2, pow.SelfishThreshold(gamma2))
			}
			r.Tables = append(r.Tables, tab)
			r.Figures = append(r.Figures, fig)
			r.AddCheck(maxDelta < 0.015, "matches-closed-form",
				"max |sim - closed form| = %.4f", maxDelta)
			r.AddCheck(!profitableBelow && !unprofitableAbove, "one-third-threshold",
				"profitability flips exactly at alpha = 1/3 for gamma = 0")
			return nil
		},
	}
}

// e17DoubleSpend reproduces Nakamoto's §11 arithmetic as referenced by the
// paper's §III-A immutability discussion.
func e17DoubleSpend() core.Experiment {
	return &exp{
		id:      "E17",
		section: "§III-A",
		title:   "Double-spend probability vs confirmations",
		claim:   "§III-A: modifying the chain requires redoing the proof-of-work for the block and all that follow — a feat possible only with more than half the computing power (Nakamoto's confirmation analysis).",
		run: func(cfg core.Config, r *core.Result) error {
			g := sim.NewRNG(cfg.Seed)
			trials, err := scaledSize(cfg, "e17.trials")
			if err != nil {
				return err
			}
			risk := knobFloat(cfg, "e17.risk")
			tab := metrics.NewTable("double-spend success probability",
				"attacker share q", "z", "Nakamoto closed form", "exact race", "monte carlo")
			var maxDelta float64
			for _, q := range []float64{0.1, 0.3, 0.45} {
				for _, z := range []int{1, 2, 6, 10} {
					nak := pow.DoubleSpendProbability(q, z)
					exact := pow.DoubleSpendProbabilityExact(q, z)
					mc, err := pow.SimulateDoubleSpend(g, q, z, trials)
					if err != nil {
						return err
					}
					if d := math.Abs(mc - exact); d > maxDelta {
						maxDelta = d
					}
					tab.AddRowf(q, z, nak, exact, mc)
				}
			}
			tab.AddNote("confirmations needed for <%g%% risk: q=0.1 -> %d, q=0.3 -> %d, q=0.45 -> %d",
				risk*100,
				pow.ConfirmationsForRisk(0.1, risk, 1000),
				pow.ConfirmationsForRisk(0.3, risk, 1000),
				pow.ConfirmationsForRisk(0.45, risk, 1000))
			r.Tables = append(r.Tables, tab)
			r.AddCheck(maxDelta < 0.02, "monte-carlo-matches-exact",
				"max |mc - exact| = %.4f", maxDelta)
			r.AddCheck(pow.ConfirmationsForRisk(0.1, 0.001, 100) == 5, "nakamoto-z5",
				"q=0.1 needs 5 confirmations for <0.1%% (Nakamoto's table)")
			r.AddCheck(pow.DoubleSpendProbability(0.5, 100) == 1, "majority-always-wins",
				"q>=0.5 succeeds with probability 1 at any depth")
			return nil
		},
	}
}
