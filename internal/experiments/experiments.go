// Package experiments implements one runner per paper claim (E01–E19),
// composing the substrate packages into the tables and figures listed in
// DESIGN.md. Each runner returns a core.Result whose checks encode the
// claim's expected shape.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// newSim builds the run's kernel: seeded from the config and, when the
// config carries a telemetry collector, observed by it — every subsystem
// constructed on the kernel (the netmodel transport in particular) then
// discovers the collector via sim.Observer and registers its instruments.
// Runners must create kernels through this helper (or newSimSeed) so
// telemetry threads through every experiment uniformly.
func newSim(cfg core.Config) *sim.Sim {
	return newSimSeed(cfg, cfg.Seed)
}

// newSimSeed is newSim with an explicit seed, for runners that derive
// secondary kernels (e.g. a control run at seed+1).
func newSimSeed(cfg core.Config, seed int64) *sim.Sim {
	if cfg.Obs == nil {
		return sim.New(sim.WithSeed(seed))
	}
	return sim.New(sim.WithSeed(seed), sim.WithObserver(cfg.Obs))
}

// newShardedSim is newSim's counterpart for runners on the sharded kernel:
// the runner supplies its fixed logical shard structure (count and
// conservative window, both structural constants derived from the model,
// never from available parallelism), while the -shards execution knob in
// the config only sets how many workers drive those shards. Results are
// identical at every worker count. The transport's shared instruments stay
// off in sharded mode, but kernel statistics still reach the collector.
func newShardedSim(cfg core.Config, shards int, window time.Duration) (*sim.ShardedSim, error) {
	opts := []sim.ShardedOption{sim.WithShardSeed(cfg.Seed), sim.WithShardWorkers(cfg.Shards)}
	if cfg.Obs != nil {
		opts = append(opts, sim.WithShardObserver(cfg.Obs))
	}
	return sim.NewSharded(shards, window, opts...)
}

// exp is the shared experiment scaffold. section is the stable paper
// section tag (core.Sectioned) the reproduction report groups claims by;
// every runner sets it explicitly and TestSections pins it against the
// claim's "§..." prefix so the two can never drift apart.
type exp struct {
	id      string
	title   string
	claim   string
	section string
	run     func(cfg core.Config, r *core.Result) error
}

func (e *exp) ID() string      { return e.id }
func (e *exp) Title() string   { return e.title }
func (e *exp) Claim() string   { return e.claim }
func (e *exp) Section() string { return e.section }

func (e *exp) Run(cfg core.Config) (*core.Result, error) {
	cfg = cfg.WithDefaults()
	if err := validateKnobs(e.id, cfg); err != nil {
		return nil, err
	}
	r := &core.Result{ID: e.id, Title: e.title, Claim: e.claim}
	if err := e.run(cfg, r); err != nil {
		return nil, err
	}
	return r, nil
}

// KnobSpec describes one sweepable per-experiment knob: its default, the
// measurement floor below which an explicit value is a run error, the
// maximum the simulator will accept, whether values must be whole
// numbers, and a human description. Scaled marks knobs the experiment
// multiplies by -scale (resolved through scaledSize), whose explicit
// values must therefore survive the post-scaling floor/max checks.
// Requires carries companion knob assignments merged into every
// sensitivity-grid scenario (e.g. e08.loss needs a WAN relay, so its
// grid sets e08.mix=1). GridValues overrides the computed default grid
// for knobs whose valid values the linear floor→stretch interpolation
// cannot know (e.g. e13.raftnodes must be odd).
type KnobSpec struct {
	Default    float64
	Min        float64
	Max        float64
	Integer    bool
	Scaled     bool
	Requires   map[string]float64
	GridValues []float64
	Desc       string
}

// DefaultGridPoints is the default number of swept values per knob in a
// sensitivity grid.
const DefaultGridPoints = 5

// Grid returns the knob's default sensitivity grid: up to points values
// spanning the floor → default → stretch range (stretch is twice the
// default, capped at Max; when the default sits at the floor the whole
// range is spanned instead). Values are valid explicit settings at the
// given workload scale: for Scaled knobs the low end rises to
// ceil(Min/scale) so every value survives the post-scaling floor check,
// and at scale > 1 the high end drops to floor(Max/scale). Small integer
// domains (categorical selector knobs such as mix presets) enumerate
// every value. The default itself is excluded — the baseline replication
// already measures it — unless the knob Requires companions, in which
// case the grid scenario differs from the baseline even at the default
// value. May return fewer than points values, or none when the scale
// leaves no valid range.
func (s KnobSpec) Grid(points int, scale float64) []float64 {
	if points < 1 {
		points = DefaultGridPoints
	}
	if scale <= 0 {
		scale = 1
	}
	keepDefault := len(s.Requires) > 0
	if len(s.GridValues) > 0 {
		// Hand-picked grid: take up to points values, skipping the
		// default unless companions make it a distinct scenario.
		var out []float64
		for _, v := range s.GridValues {
			if len(out) >= points {
				break
			}
			if v == s.Default && !keepDefault {
				continue
			}
			out = append(out, v)
		}
		return out
	}
	lo, hi := s.Min, s.Max
	if s.Scaled && scale < 1 {
		lo = math.Ceil(s.Min / scale)
		// Guard against float rounding: the value the experiment sees is
		// int(lo*scale), which must not dip below the floor.
		for int(lo*scale) < int(s.Min) && lo <= hi {
			lo++
		}
	}
	if s.Scaled && scale > 1 {
		hi = math.Floor(s.Max / scale)
		for hi >= lo && float64(int(hi*scale)) > s.Max {
			hi--
		}
	}
	if lo > hi {
		return nil
	}
	if s.Integer && hi-lo < float64(points) {
		// Categorical / tiny domain: enumerate every value.
		var out []float64
		for v := lo; v <= hi; v++ {
			if v == s.Default && !keepDefault {
				continue
			}
			out = append(out, v)
		}
		return out
	}
	stretch := 2 * s.Default
	switch {
	case stretch > hi:
		stretch = hi
	case stretch <= lo:
		// The default sits at or below the (scale-adjusted) floor: span a
		// modest band above the floor instead — 4× the floor, or the whole
		// range when the floor is 0.
		if lo > 0 {
			stretch = math.Min(hi, 4*lo)
		} else {
			stretch = hi
		}
	}
	out := make([]float64, 0, points)
	for i := 0; i < points; i++ {
		v := lo
		if points > 1 {
			v = lo + float64(i)*(stretch-lo)/float64(points-1)
		}
		if s.Integer {
			v = math.Round(v)
		} else {
			// Round to 4 significant digits so grid labels stay readable
			// (0.7425, not 0.7424999999999999); clamp in case the rounding
			// crossed a bound.
			if r, err := strconv.ParseFloat(strconv.FormatFloat(v, 'g', 4, 64), 64); err == nil {
				v = math.Min(math.Max(r, lo), stretch)
			}
		}
		if v == s.Default && !keepDefault {
			continue
		}
		if len(out) > 0 && v == out[len(out)-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}

// SensitivityGrids builds the default sensitivity grid for every
// registered knob: name -> swept values from KnobSpec.Grid at the given
// grid size and workload scale. Knobs whose scale-adjusted range is
// empty are omitted.
func SensitivityGrids(points int, scale float64) map[string][]float64 {
	out := make(map[string][]float64, len(knobSpecs))
	for name, s := range knobSpecs {
		if g := s.Grid(points, scale); len(g) > 0 {
			out[name] = g
		}
	}
	return out
}

// KnobSpecs is the registry of sweepable knobs. Experiments read knobs
// via knobInt/knobFloat (which apply the spec default), the shared run
// scaffold enforces Min/Max centrally, and decentsim's -set flag accepts
// only names registered here. Every experiment E01–E19 registers its
// load-bearing parameters; defaults equal the documented baseline
// literals, so knob-free runs are byte-identical to the baseline. New
// knobs must be added here and in DESIGN.md.
func KnobSpecs() map[string]KnobSpec {
	out := make(map[string]KnobSpec, len(knobSpecs))
	for name, s := range knobSpecs {
		out[name] = s
	}
	return out
}

// knobSpecs is the shared registry instance; exported callers get a copy
// from KnobSpecs, internal readers (called several times per experiment
// run) use this map directly.
var knobSpecs = map[string]KnobSpec{
	// E01 — market concentration.
	"e01.customers":      {Default: 100_000, Min: 1000, Max: 10_000_000, Integer: true, Scaled: true, Desc: "E01: customers choosing providers, before scaling"},
	"e01.cdnproviders":   {Default: 20, Min: 3, Max: 500, Integer: true, Desc: "E01: providers in the CDN market"},
	"e01.cloudproviders": {Default: 50, Min: 5, Max: 500, Integer: true, Desc: "E01: providers in the cloud market"},
	"e01.exploration":    {Default: 0.35, Min: 0.01, Max: 1, Desc: "E01: probability a customer ignores popularity and explores"},

	// E02 — free riding.
	"e02.peers":           {Default: 500, Min: 50, Max: 50_000, Integer: true, Scaled: true, Desc: "E02: Gnutella overlay size before scaling"},
	"e02.freeriders":      {Default: 0.66, Min: 0, Max: 0.99, Desc: "E02: fraction of Gnutella peers sharing nothing"},
	"e02.swarmfreeriders": {Default: 0.3, Min: 0, Max: 0.9, Desc: "E02: free-rider fraction in the tit-for-tat swarm"},
	"e02.queries":         {Default: 200, Min: 30, Max: 100_000, Integer: true, Scaled: true, Desc: "E02: flooded queries measured, before scaling"},
	"e02.swarmpeers":      {Default: 100, Min: 30, Max: 10_000, Integer: true, Scaled: true, Desc: "E02: BitTorrent swarm size before scaling"},

	// E03 — DHT lookup latency.
	"e03.nodes":   {Default: 1500, Min: 200, Max: 100_000, Integer: true, Scaled: true, Desc: "E03: DHT network size before scaling"},
	"e03.lookups": {Default: 150, Min: 30, Max: 100_000, Integer: true, Scaled: true, Desc: "E03: lookups measured per deployment"},

	// E04 — sybil/eclipse attacks.
	"e04.honest":    {Default: 800, Min: 150, Max: 20_000, Integer: true, Scaled: true, Desc: "E04: honest DHT population before scaling"},
	"e04.lookups":   {Default: 60, Min: 20, Max: 10_000, Integer: true, Scaled: true, Desc: "E04: lookups measured per attack size, before scaling"},
	"e04.targetids": {Default: 16, Min: 2, Max: 512, Integer: true, Desc: "E04: sybil identities in the targeted-eclipse attack"},

	// E05 — one-hop vs multi-hop.
	"e05.nodes":       {Default: 1024, Min: 128, Max: 65_536, Integer: true, Scaled: true, Desc: "E05: overlay size before scaling"},
	"e05.lookups":     {Default: 100, Min: 20, Max: 100_000, Integer: true, Scaled: true, Desc: "E05: lookups measured per overlay, before scaling"},
	"e05.sessionmins": {Default: 60, Min: 5, Max: 1440, Integer: true, Desc: "E05: mean session and gap (minutes) in the maintenance model"},

	// E06 — throughput gap.
	"e06.blocks":     {Default: 300, Min: 50, Max: 100_000, Integer: true, Scaled: true, Desc: "E06: mined blocks in the Bitcoin run, before scaling"},
	"e06.shards":     {Default: 64, Min: 1, Max: 4096, Integer: true, Desc: "E06: shards in the cloud OLTP baseline"},
	"e06.txbytes":    {Default: 400, Min: 100, Max: 10_000, Integer: true, Desc: "E06: mean transaction size (bytes) in the mining run"},
	"e06.crossshard": {Default: 0.1, Min: 0, Max: 1, Desc: "E06: fraction of cloud transactions crossing shards"},

	// E07 — difficulty retargeting.
	"e07.window":      {Default: 50, Min: 10, Max: 10_000, Integer: true, Scaled: true, Desc: "E07: retarget window (blocks), before scaling"},
	"e07.epochs":      {Default: 6, Min: 2, Max: 16, Integer: true, Desc: "E07: hashpower-doubling epochs"},
	"e07.epochblocks": {Default: 100, Min: 20, Max: 10_000, Integer: true, Scaled: true, Desc: "E07: target intervals per epoch, before scaling"},

	// E08 — fork rate vs interval.
	"e08.blocks":      {Default: 1500, Min: 200, Max: 1_000_000, Integer: true, Scaled: true, Desc: "E08: blocks mined per interval setting, before scaling"},
	"e08.propagation": {Default: 6, Min: 0.5, Max: 120, Desc: "E08: mean block propagation delay (seconds)"},
	"e08.mix":         {Default: 0, Min: 0, Max: netmodel.NumMixPresets, Integer: true, Desc: "E08: miner region mix preset for WAN-backed relay (0 = abstract propagation)"},
	"e08.loss":        {Default: 0, Min: 0, Max: 0.5, Requires: map[string]float64{"e08.mix": 1}, Desc: "E08: per-message loss probability on the WAN relay (needs e08.mix > 0)"},

	// E09 — selfish mining. The gamma floor keeps the contested
	// scenario distinct from the fixed gamma=0 pass: 0 would silently
	// duplicate it.
	"e09.blocks": {Default: 300_000, Min: 50_000, Max: 10_000_000, Integer: true, Scaled: true, Desc: "E09: state-machine steps per (alpha, gamma) point, before scaling"},
	"e09.gamma":  {Default: 0.5, Min: 0.01, Max: 1, Desc: "E09: honest split toward the attacker in the contested scenario"},

	// E10 — mining centralization.
	"e10.epochs":    {Default: 24, Min: 6, Max: 240, Integer: true, Desc: "E10: arms-race epochs (months)"},
	"e10.hobbyists": {Default: 500, Min: 50, Max: 100_000, Integer: true, Scaled: true, Desc: "E10: hobbyist miners before scaling"},
	"e10.farms":     {Default: 20, Min: 2, Max: 1000, Integer: true, Scaled: true, Desc: "E10: industrial farms before scaling"},
	"e10.miners":    {Default: 10_000, Min: 100, Max: 1_000_000, Integer: true, Scaled: true, Desc: "E10: miners choosing pools, before scaling"},

	// E11 — energy at equilibrium.
	"e11.price": {Default: 7500, Min: 100, Max: 1_000_000, Desc: "E11: mid coin price (USD); the table spans half to double"},
	"e11.tps":   {Default: 4, Min: 0.1, Max: 100_000, Desc: "E11: throughput used for the per-transaction energy figure"},

	// E12 — node resource growth.
	"e12.nodes":   {Default: 10_000, Min: 1000, Max: 1_000_000, Integer: true, Scaled: true, Desc: "E12: node population before scaling"},
	"e12.txbytes": {Default: 400, Min: 50, Max: 100_000, Integer: true, Desc: "E12: mean transaction size (bytes)"},
	"e12.years":   {Default: 10, Min: 2, Max: 100, Integer: true, Desc: "E12: years of chain growth simulated"},
	"e12.diskgb":  {Default: 320, Min: 10, Max: 1_000_000, Desc: "E12: median node disk capacity (GB)"},

	// E13 — permissioned vs PoW.
	"e13.rate":     {Default: 2000, Min: 10, Max: 1_000_000, Desc: "E13: offered load (requests/second)"},
	"e13.duration": {Default: 10, Min: 3, Max: 3600, Integer: true, Scaled: true, Desc: "E13: load duration (seconds), before scaling"},
	"e13.batch":    {Default: 200, Min: 1, Max: 10_000, Integer: true, Desc: "E13: PBFT batch size"},
	// Raft requires an odd cluster size, so the grid is hand-picked
	// (the computed floor→stretch interpolation would land on even n).
	"e13.raftnodes": {Default: 5, Min: 3, Max: 101, Integer: true, GridValues: []float64{3, 7, 9, 11, 21}, Desc: "E13: Raft cluster size"},

	// E14 — edge vs cloud.
	"e14.clients":   {Default: 2000, Min: 100, Max: 1_000_000, Integer: true, Scaled: true, Desc: "E14: simulated clients before scaling"},
	"e14.edgenodes": {Default: 50, Min: 5, Max: 10_000, Integer: true, Desc: "E14: edge nano-datacenters"},
	"e14.clouddcs":  {Default: 3, Min: 1, Max: 100, Integer: true, Desc: "E14: regional cloud datacenters"},
	"e14.budgetms":  {Default: 20, Min: 1, Max: 1000, Desc: "E14: interactive latency budget (ms)"},
	"e14.records":   {Default: 50, Min: 10, Max: 100_000, Integer: true, Scaled: true, Desc: "E14: audit records submitted, before scaling"},

	// E15 — churn.
	"e15.nodes":   {Default: 600, Min: 120, Max: 50_000, Integer: true, Scaled: true, Desc: "E15: overlay size before scaling"},
	"e15.lookups": {Default: 120, Min: 30, Max: 100_000, Integer: true, Scaled: true, Desc: "E15: lookups measured per churn level, before scaling"},
	// minsession's cap keeps it strictly below the fixed 30m ladder
	// level: 30+ would reorder or duplicate the churn levels and fail
	// the degradation checks by construction.
	"e15.minsession": {Default: 8, Min: 1, Max: 29, Integer: true, Desc: "E15: shortest mean session length (minutes) tried"},

	// E16 — channels.
	"e16.txs":       {Default: 40, Min: 10, Max: 100_000, Integer: true, Scaled: true, Desc: "E16: transactions per channel before scaling"},
	"e16.blocksize": {Default: 10, Min: 1, Max: 1000, Integer: true, Desc: "E16: envelopes per block"},
	"e16.endorsers": {Default: 2, Min: 1, Max: 3, Integer: true, Desc: "E16: endorsements required per transaction"},

	// E17 — double spend.
	"e17.trials": {Default: 20_000, Min: 2000, Max: 10_000_000, Integer: true, Scaled: true, Desc: "E17: monte-carlo trials per (q, z) point, before scaling"},
	"e17.risk":   {Default: 0.001, Min: 0.000_01, Max: 0.5, Desc: "E17: acceptable double-spend probability in the confirmation note"},

	// E18 — off-chain channels.
	"e18.nodes":      {Default: 60, Min: 10, Max: 10_000, Integer: true, Desc: "E18: payment-network size"},
	"e18.payments":   {Default: 20_000, Min: 2000, Max: 10_000_000, Integer: true, Scaled: true, Desc: "E18: payments attempted, before scaling"},
	"e18.hubs":       {Default: 3, Min: 1, Max: 20, Integer: true, Desc: "E18: hubs in the hub-and-spoke topology"},
	"e18.meshdegree": {Default: 6, Min: 2, Max: 30, Integer: true, Desc: "E18: channel degree in the mesh topology"},
	"e18.capital":    {Default: 600_000, Min: 1000, Max: 1_000_000_000, Desc: "E18: total locked capital shared by both topologies"},
	"e18.mix":        {Default: 0, Min: 0, Max: netmodel.NumMixPresets, Integer: true, Desc: "E18: node region mix preset for WAN HTLC latency accounting (0 = off)"},

	// E19 — geo-partitioned PoW.
	"e19.miners":    {Default: 12, Min: 4, Max: 500, Integer: true, Desc: "E19: miners on the WAN topology"},
	"e19.blocks":    {Default: 600, Min: 100, Max: 1_000_000, Integer: true, Scaled: true, Desc: "E19: target block intervals simulated, before scaling"},
	"e19.mix":       {Default: 1, Min: 1, Max: netmodel.NumMixPresets, Integer: true, Desc: "E19: miner region mix preset"},
	"e19.loss":      {Default: 0, Min: 0, Max: 0.5, Desc: "E19: per-message loss probability on the WAN relay"},
	"e19.partstart": {Default: 0.3, Min: 0.05, Max: 0.7, Desc: "E19: partition window start as a fraction of the run"},
	"e19.partdur":   {Default: 0.3, Min: 0.05, Max: 0.5, Desc: "E19: partition window length as a fraction of the run"},
}

// Knobs lists the sweepable knobs as name -> rendered description.
func Knobs() map[string]string {
	out := make(map[string]string)
	for name, s := range knobSpecs {
		out[name] = fmt.Sprintf("%s (default %g, min %g, max %g)", s.Desc, s.Default, s.Min, s.Max)
	}
	return out
}

// knobInt reads a registered knob with its spec default.
func knobInt(cfg core.Config, name string) int {
	return cfg.ParamInt(name, int(knobSpecs[name].Default))
}

// knobFloat reads a registered non-integer knob with its spec default.
func knobFloat(cfg core.Config, name string) float64 {
	return cfg.Param(name, knobSpecs[name].Default)
}

// knobIndex reads a registered integer selector knob whose valid range
// includes 0 (an "off" value). ParamInt floors its result at 1, so routing
// such knobs through knobInt would silently turn the feature on in
// knob-free runs; the raw Param value is what the spec validated.
func knobIndex(cfg core.Config, name string) int {
	return int(knobFloat(cfg, name))
}

// scaledSize resolves a workload knob the experiment multiplies by -scale:
// it scales the knob, clamps implicit (default) values to the measurement
// floor, and rejects explicitly-set knobs the scaling pushes outside
// [Min, Max] — clamping those would emit distinct sweep groups with
// identical results. Implicit (default) values above Max are left alone:
// a large -scale on a knob-free run keeps its pre-knob behavior.
func scaledSize(cfg core.Config, knob string) (int, error) {
	spec := knobSpecs[knob]
	v := cfg.ScaleInt(knobInt(cfg, knob))
	_, set := cfg.Params[knob]
	if min := int(spec.Min); v < min {
		if set {
			return 0, fmt.Errorf("%s=%d (scaled to %d at scale %g) falls below the measurement floor %d; raise the knob or -scale",
				knob, knobInt(cfg, knob), v, cfg.Scale, min)
		}
		v = min
	}
	if set && spec.Max > 0 && float64(v) > spec.Max {
		return 0, fmt.Errorf("%s=%d (scaled to %d at scale %g) exceeds the maximum %g; lower the knob or -scale",
			knob, knobInt(cfg, knob), v, cfg.Scale, spec.Max)
	}
	return v, nil
}

// validateKnobs rejects unregistered knob names — a typo'd knob the
// experiment never reads would silently multiply a sweep into duplicate
// identical groups — knobs owned by a different experiment, and
// explicitly-set values below their spec floor, which clamping would
// likewise collapse into identical groups. The CLI and harness also
// validate at parse/expansion time; this check covers hand-built job
// lists and direct Registry.Run calls.
func validateKnobs(id string, cfg core.Config) error {
	specs := knobSpecs
	names := make([]string, 0, len(cfg.Params))
	for name := range cfg.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := cfg.Params[name]
		spec, ok := specs[name]
		if !ok {
			return fmt.Errorf("experiments: unknown knob %q", name)
		}
		if owner := core.KnobOwner(name); owner != "" && !strings.EqualFold(owner, id) {
			return fmt.Errorf("experiments: knob %s does not apply to experiment %s", name, id)
		}
		if v < spec.Min {
			return fmt.Errorf("experiments: knob %s=%g is below the measurement floor %g", name, v, spec.Min)
		}
		if spec.Max > 0 && v > spec.Max {
			return fmt.Errorf("experiments: knob %s=%g is above the maximum %g", name, v, spec.Max)
		}
		// Fractional values for integer knobs would round to the same
		// workload and silently duplicate sweep groups.
		if spec.Integer && v != math.Trunc(v) {
			return fmt.Errorf("experiments: knob %s=%g must be an integer", name, v)
		}
	}
	return nil
}

// Registry returns the full experiment registry in paper order.
func Registry() (*core.Registry, error) {
	return core.NewRegistry(
		e01Market(),
		e02FreeRiding(),
		e03DHTLookup(),
		e04Sybil(),
		e05OneHop(),
		e06Throughput(),
		e07Difficulty(),
		e08ForkRate(),
		e09Selfish(),
		e10MiningCentralization(),
		e11Energy(),
		e12NodeCost(),
		e13PermissionedVsPoW(),
		e14EdgeVsCloud(),
		e15Churn(),
		e16Channels(),
		e17DoubleSpend(),
		e18OffChain(),
		e19GeoPartitionedPoW(),
	)
}
