// Package experiments implements one runner per paper claim (E01–E17),
// composing the substrate packages into the tables and figures listed in
// DESIGN.md. Each runner returns a core.Result whose checks encode the
// claim's expected shape.
package experiments

import (
	"repro/internal/core"
)

// exp is the shared experiment scaffold.
type exp struct {
	id    string
	title string
	claim string
	run   func(cfg core.Config, r *core.Result) error
}

func (e *exp) ID() string    { return e.id }
func (e *exp) Title() string { return e.title }
func (e *exp) Claim() string { return e.claim }

func (e *exp) Run(cfg core.Config) (*core.Result, error) {
	cfg = cfg.WithDefaults()
	r := &core.Result{ID: e.id, Title: e.title, Claim: e.claim}
	if err := e.run(cfg, r); err != nil {
		return nil, err
	}
	return r, nil
}

// Registry returns the full experiment registry in paper order.
func Registry() (*core.Registry, error) {
	return core.NewRegistry(
		e01Market(),
		e02FreeRiding(),
		e03DHTLookup(),
		e04Sybil(),
		e05OneHop(),
		e06Throughput(),
		e07Difficulty(),
		e08ForkRate(),
		e09Selfish(),
		e10MiningCentralization(),
		e11Energy(),
		e12NodeCost(),
		e13PermissionedVsPoW(),
		e14EdgeVsCloud(),
		e15Churn(),
		e16Channels(),
		e17DoubleSpend(),
		e18OffChain(),
	)
}
