// Package experiments implements one runner per paper claim (E01–E18),
// composing the substrate packages into the tables and figures listed in
// DESIGN.md. Each runner returns a core.Result whose checks encode the
// claim's expected shape.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
)

// exp is the shared experiment scaffold.
type exp struct {
	id    string
	title string
	claim string
	run   func(cfg core.Config, r *core.Result) error
}

func (e *exp) ID() string    { return e.id }
func (e *exp) Title() string { return e.title }
func (e *exp) Claim() string { return e.claim }

func (e *exp) Run(cfg core.Config) (*core.Result, error) {
	cfg = cfg.WithDefaults()
	if err := validateKnobs(e.id, cfg); err != nil {
		return nil, err
	}
	r := &core.Result{ID: e.id, Title: e.title, Claim: e.claim}
	if err := e.run(cfg, r); err != nil {
		return nil, err
	}
	return r, nil
}

// KnobSpec describes one sweepable per-experiment knob: its default, the
// measurement floor below which an explicit value is a run error, the
// maximum the simulator will accept, whether values must be whole
// numbers, and a human description.
type KnobSpec struct {
	Default float64
	Min     float64
	Max     float64
	Integer bool
	Desc    string
}

// KnobSpecs is the registry of sweepable knobs. Experiments read knobs
// via knobInt (which applies the spec default), the shared run scaffold
// enforces Min centrally, and decentsim's -set flag accepts only names
// registered here. New knobs must be added here and in DESIGN.md.
func KnobSpecs() map[string]KnobSpec {
	return map[string]KnobSpec{
		"e03.nodes":   {Default: 1500, Min: 200, Max: 100000, Integer: true, Desc: "E03: DHT network size before scaling"},
		"e03.lookups": {Default: 150, Min: 30, Max: 100000, Integer: true, Desc: "E03: lookups measured per deployment"},
	}
}

// Knobs lists the sweepable knobs as name -> rendered description.
func Knobs() map[string]string {
	out := make(map[string]string)
	for name, s := range KnobSpecs() {
		out[name] = fmt.Sprintf("%s (default %g, min %g, max %g)", s.Desc, s.Default, s.Min, s.Max)
	}
	return out
}

// knobInt reads a registered knob with its spec default.
func knobInt(cfg core.Config, name string) int {
	return cfg.ParamInt(name, int(KnobSpecs()[name].Default))
}

// validateKnobs rejects unregistered knob names — a typo'd knob the
// experiment never reads would silently multiply a sweep into duplicate
// identical groups — knobs owned by a different experiment, and
// explicitly-set values below their spec floor, which clamping would
// likewise collapse into identical groups. The CLI and harness also
// validate at parse/expansion time; this check covers hand-built job
// lists and direct Registry.Run calls.
func validateKnobs(id string, cfg core.Config) error {
	specs := KnobSpecs()
	names := make([]string, 0, len(cfg.Params))
	for name := range cfg.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := cfg.Params[name]
		spec, ok := specs[name]
		if !ok {
			return fmt.Errorf("experiments: unknown knob %q", name)
		}
		if owner := core.KnobOwner(name); owner != "" && !strings.EqualFold(owner, id) {
			return fmt.Errorf("experiments: knob %s does not apply to experiment %s", name, id)
		}
		if v < spec.Min {
			return fmt.Errorf("experiments: knob %s=%g is below the measurement floor %g", name, v, spec.Min)
		}
		if spec.Max > 0 && v > spec.Max {
			return fmt.Errorf("experiments: knob %s=%g is above the maximum %g", name, v, spec.Max)
		}
		// Fractional values for integer knobs would round to the same
		// workload and silently duplicate sweep groups.
		if spec.Integer && v != math.Trunc(v) {
			return fmt.Errorf("experiments: knob %s=%g must be an integer", name, v)
		}
	}
	return nil
}

// Registry returns the full experiment registry in paper order.
func Registry() (*core.Registry, error) {
	return core.NewRegistry(
		e01Market(),
		e02FreeRiding(),
		e03DHTLookup(),
		e04Sybil(),
		e05OneHop(),
		e06Throughput(),
		e07Difficulty(),
		e08ForkRate(),
		e09Selfish(),
		e10MiningCentralization(),
		e11Energy(),
		e12NodeCost(),
		e13PermissionedVsPoW(),
		e14EdgeVsCloud(),
		e15Churn(),
		e16Channels(),
		e17DoubleSpend(),
		e18OffChain(),
	)
}
