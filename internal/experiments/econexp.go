package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/econ"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// e10MiningCentralization reproduces §III-C Problem 1: the mining arms race
// concentrates hashpower into industrial farms and a handful of pools.
func e10MiningCentralization() core.Experiment {
	return &exp{
		id:      "E10",
		section: "§III-C P1",
		title:   "Mining centralization: farms and pools take over",
		claim:   "§III-C P1: in 2013 six mining pools controlled 75% of overall Bitcoin hashing power; nowadays it is almost impossible for a normal user to mine with a desktop computer.",
		run: func(cfg core.Config, r *core.Result) error {
			g := sim.NewRNG(cfg.Seed)
			hobbyists, err := scaledSize(cfg, "e10.hobbyists")
			if err != nil {
				return err
			}
			farms, err := scaledSize(cfg, "e10.farms")
			if err != nil {
				return err
			}
			res, err := econ.RunMiningEconomy(g, econ.MiningEconConfig{
				Epochs:            knobInt(cfg, "e10.epochs"),
				RewardUSDPerEpoch: 5_000_000,
				Hobbyists:         hobbyists,
				Farms:             farms,
			})
			if err != nil {
				return err
			}
			tab := metrics.NewTable("mining arms race (simulated, 1 epoch = 1 month)",
				"epoch", "network hashrate", "hobbyists active", "hobbyist profit ($/mo)", "farm share")
			for _, e := range res.Epochs {
				if e.Epoch%4 == 0 || e.Epoch == len(res.Epochs)-1 {
					tab.AddRowf(e.Epoch, e.NetworkHash, e.HobbyistsActive, e.HobbyistProfit, e.FarmShare)
				}
			}
			r.Tables = append(r.Tables, tab)

			miners, err := scaledSize(cfg, "e10.miners")
			if err != nil {
				return err
			}
			pool, err := econ.RunPoolFormation(g, econ.PoolConfig{
				Pools:     20,
				Miners:    miners,
				SizeBias:  1.3,
				FeeSpread: 0.3,
			})
			if err != nil {
				return err
			}
			tab2 := metrics.NewTable("pool concentration (simulated)",
				"metric", "value", "paper reference")
			tab2.AddRowf("top-6 pool share", pool.Top6, "0.75 (2013)")
			tab2.AddRowf("HHI", pool.HHI, ">0.25 = highly concentrated")
			r.Tables = append(r.Tables, tab2)

			first := res.Epochs[0]
			last := res.Epochs[len(res.Epochs)-1]
			r.AddCheck(last.HobbyistsActive < first.HobbyistsActive/4, "desktops-priced-out",
				"hobbyists %d -> %d after ASIC epochs", first.HobbyistsActive, last.HobbyistsActive)
			r.AddCheck(res.FinalFarmShare > 0.95, "industrial-dominance",
				"farm hashrate share %.3f", res.FinalFarmShare)
			r.AddCheck(pool.Top6 >= 0.6, "six-pools-dominate",
				"top-6 pools hold %.0f%% (paper: 75%%)", pool.Top6*100)
			return nil
		},
	}
}

// e11Energy reproduces §III-B: Bitcoin's energy consumption peaked around
// 70 TWh/yr — a country's worth.
func e11Energy() core.Experiment {
	return &exp{
		id:      "E11",
		section: "§III-B",
		title:   "Proof-of-work energy at economic equilibrium",
		claim:   "§III-B: Bitcoin energy consumption peaked at 70 TWh in 2018, roughly what a country like Austria consumes.",
		run: func(cfg core.Config, r *core.Result) error {
			tab := metrics.NewTable("equilibrium energy model",
				"coin price ($)", "network power (GW)", "annual energy (TWh)", "kWh per transaction")
			base := econ.Bitcoin2018Energy()
			midPrice := knobFloat(cfg, "e11.price")
			tps := knobFloat(cfg, "e11.tps")
			var baselineTWh float64
			for _, price := range []float64{midPrice / 2, midPrice, midPrice * 2} {
				p := base
				p.CoinPriceUSD = price
				gw, err := p.NetworkPowerGW()
				if err != nil {
					return err
				}
				twh, err := p.AnnualTWh()
				if err != nil {
					return err
				}
				perTx, err := p.PerTxKWh(tps)
				if err != nil {
					return err
				}
				if price == midPrice {
					baselineTWh = twh
				}
				tab.AddRowf(price, gw, twh, perTx)
			}
			tab.AddNote("Austria's annual electricity consumption: ~70 TWh (the paper's comparison)")
			r.Tables = append(r.Tables, tab)
			r.AddCheck(baselineTWh >= 40 && baselineTWh <= 100, "austria-scale",
				"2018-like parameters give %.0f TWh/yr (paper: ~70)", baselineTWh)
			perTx, err := base.PerTxKWh(tps)
			if err != nil {
				return err
			}
			r.AddCheck(perTx > 100, "absurd-per-tx-energy",
				"%.0f kWh per transaction — weeks of household consumption", perTx)
			return nil
		},
	}
}

// e12NodeCost reproduces §III-C Problem 1: each node needs ever more
// storage/bandwidth, so networks retag members as light clients while the
// validating core shrinks.
func e12NodeCost() core.Experiment {
	return &exp{
		id:      "E12",
		section: "§III-C P1",
		title:   "Node resource growth erodes the validating population",
		claim:   "§III-C P1: as the history of transactions grows, each node requires more bandwidth, storage and computing power; networks retag nodes as light nodes but still count them in the global network size metrics.",
		run: func(cfg core.Config, r *core.Result) error {
			g := sim.NewRNG(cfg.Seed)
			nodes, err := scaledSize(cfg, "e12.nodes")
			if err != nil {
				return err
			}
			txBytes := knobInt(cfg, "e12.txbytes")
			years := knobInt(cfg, "e12.years")
			tab := metrics.NewTable("full-node fraction over ten years (simulated)",
				"throughput", "chain growth (GB/yr)", "full frac year 0", fmt.Sprintf("full frac year %d", years))
			fig := &metrics.Figure{Title: "full-node erosion", XLabel: "year", YLabel: "full-node fraction"}
			var bitcoinEnd, scaledEnd float64
			for _, tps := range []float64{4, 100, 4000} {
				res, err := econ.RunNodeCostModel(g, econ.NodeCostParams{
					TPS:            tps,
					TxBytes:        txBytes,
					Years:          years,
					Nodes:          nodes,
					DiskGBMedian:   knobFloat(cfg, "e12.diskgb"),
					InitialChainGB: 150,
				})
				if err != nil {
					return err
				}
				p := econ.NodeCostParams{TPS: tps, TxBytes: txBytes}
				tab.AddRowf(tps, p.ChainGrowthGBPerYear(), res.FullFracStart, res.FullFracEnd)
				for _, y := range res.Years {
					if tps == 4 || tps == 4000 {
						name := "bitcoin-scale"
						if tps == 4000 {
							name = "visa-scale"
						}
						fig.Add(name, float64(y.Year), y.FullFrac)
					}
				}
				switch tps {
				case 4:
					bitcoinEnd = res.FullFracEnd
				case 4000:
					scaledEnd = res.FullFracEnd
				}
			}
			r.Tables = append(r.Tables, tab)
			r.Figures = append(r.Figures, fig)
			r.AddCheck(bitcoinEnd < 0.9, "erosion-at-bitcoin-scale",
				"full-node fraction falls to %.2f after %dy even at 4 tps", bitcoinEnd, years)
			r.AddCheck(scaledEnd < 0.05, "collapse-at-visa-scale",
				"at VISA-scale throughput only %.1f%% can validate — scaling by shrinking decentralization", scaledEnd*100)
			return nil
		},
	}
}
