package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/pow"
)

// e19GeoPartitionedPoW stresses the assumption every permissionless claim
// rests on: that the wide-area network delivers blocks to everyone in time.
// Miners are placed on a regional topology and relay blocks over the shared
// WAN transport; a scheduled partition cuts the Americas off mid-run, both
// sides keep mining their own chains, and at heal the losing side's work is
// discarded as stale blocks.
func e19GeoPartitionedPoW() core.Experiment {
	return &exp{
		id:      "E19",
		section: "§III-A",
		title:   "Geo-partitioned proof-of-work mining",
		claim:   "§III-A: a block is broadcast to the network so that other nodes can verify it — permissionless consensus presumes timely global broadcast among thousands of heterogeneous nodes, so a wide-area partition splinters the single chain into competing forks and the weaker region's proof-of-work is discarded.",
		run: func(cfg core.Config, r *core.Result) error {
			miners := knobInt(cfg, "e19.miners")
			blocks, err := scaledSize(cfg, "e19.blocks")
			if err != nil {
				return err
			}
			mixIdx := knobInt(cfg, "e19.mix")
			loss := knobFloat(cfg, "e19.loss")
			startFrac := knobFloat(cfg, "e19.partstart")
			durFrac := knobFloat(cfg, "e19.partdur")
			if startFrac+durFrac > 0.9 {
				return fmt.Errorf("e19.partstart=%g + e19.partdur=%g leaves no room to heal (must be <= 0.9)", startFrac, durFrac)
			}
			mix, err := netmodel.MixPreset(mixIdx)
			if err != nil {
				return err
			}
			const interval = 10 * time.Minute
			horizon := time.Duration(blocks) * interval
			winStart := time.Duration(startFrac * float64(horizon))
			winEnd := winStart + time.Duration(durFrac*float64(horizon))
			hashrates := make([]float64, miners)
			for i := range hashrates {
				hashrates[i] = 1.0 / float64(miners)
			}

			type outcome struct {
				st            pow.Stats
				minorityShare float64
				heightAtHeal  uint64
			}
			run := func(partition bool) (outcome, error) {
				var out outcome
				s := newSim(cfg)
				nm := netmodel.New(s, netmodel.WithJitter(0.1), netmodel.WithLoss(loss))
				addrs, err := nm.BuildTopology(netmodel.TopologySpec{Nodes: miners, Mix: mix})
				if err != nil {
					return out, err
				}
				nw, err := pow.NewNetworkOverNet(s, nm, addrs, pow.Params{
					BlockInterval:     interval,
					InitialDifficulty: interval.Seconds(), // total hashrate 1 -> on-target
				}, hashrates)
				if err != nil {
					return out, err
				}
				// The Atlantic cut: the Americas against the rest of the
				// world. Every mix preset populates both sides.
				groups := make(map[netmodel.NodeID]int, len(addrs))
				cut := 0
				for _, addr := range addrs {
					region := nm.Region(addr)
					if region == netmodel.NorthAmerica || region == netmodel.SouthAmerica {
						groups[addr] = 1
						cut++
					}
				}
				out.minorityShare = float64(cut) / float64(miners)
				if out.minorityShare > 0.5 {
					out.minorityShare = 1 - out.minorityShare
				}
				if partition {
					if err := nm.SchedulePartitionWindow(winStart, winEnd, groups); err != nil {
						return out, err
					}
				}
				s.At(winEnd, func() { out.heightAtHeal = nw.Chain().BestHeight() })
				nw.Start()
				if err := s.RunUntil(horizon); err != nil {
					return out, err
				}
				nw.Stop()
				out.st = nw.Finalize()
				return out, nil
			}

			base, err := run(false)
			if err != nil {
				return err
			}
			part, err := run(true)
			if err != nil {
				return err
			}

			tab := metrics.NewTable(
				fmt.Sprintf("geo-partitioned mining (%d miners, mix %d, %.0f%%–%.0f%% partition window, simulated)",
					miners, mixIdx, startFrac*100, (startFrac+durFrac)*100),
				"scenario", "blocks found", "best height", "stale blocks", "stale rate")
			tab.AddRowf("connected WAN", base.st.BlocksFound, base.st.BestHeight, base.st.StaleBlocks, base.st.StaleRate)
			tab.AddRowf("partitioned window", part.st.BlocksFound, part.st.BestHeight, part.st.StaleBlocks, part.st.StaleRate)
			tab.AddNote("Atlantic cut isolates %.0f%% of hashrate for %.0f%% of the run; loss %.1f%%",
				part.minorityShare*100, durFrac*100, loss*100)
			r.Tables = append(r.Tables, tab)
			r.AddMetric("stale-rate-baseline", base.st.StaleRate)
			r.AddMetric("stale-rate-partitioned", part.st.StaleRate)
			r.AddMetric("minority-share", part.minorityShare)

			windowBlocks := durFrac * float64(blocks)
			expectedMinority := part.minorityShare * windowBlocks
			extraStale := part.st.StaleBlocks - base.st.StaleBlocks
			// Without retransmission a miner misses each block with
			// probability ~loss and forks until the next one reaches it,
			// so the convergence bound scales with the loss knob.
			convergeBound := 0.05 + loss
			r.AddCheck(base.st.StaleRate < convergeBound, "connected-wan-converges",
				"stale rate %.4f (bound %.2f at %.0f%% loss) with ms-scale relay and %v intervals",
				base.st.StaleRate, convergeBound, loss*100, interval)
			r.AddCheck(float64(extraStale) >= 0.25*expectedMinority, "partition-forks-the-chain",
				"partition adds %d stale blocks (expected ~%.0f: the losing side's window output)",
				extraStale, expectedMinority)
			r.AddCheck(part.st.BestHeight < base.st.BestHeight, "partition-costs-throughput",
				"best height %d partitioned vs %d connected — orphaned work is lost capacity",
				part.st.BestHeight, base.st.BestHeight)
			postWindow := (1 - startFrac - durFrac) * float64(blocks)
			healGrowth := float64(part.st.BestHeight) - float64(part.heightAtHeal)
			r.AddCheck(healGrowth >= 0.5*postWindow, "chain-heals-after-window",
				"best chain grew %d blocks after heal (expected ~%.0f)", int(healGrowth), postWindow)
			return nil
		},
	}
}
