package experiments

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
)

// TestGridSpansFloorDefaultStretch checks the default grid shape on a
// representative scaled workload knob: it starts at the measurement
// floor, excludes the default (the baseline replication covers it), and
// stretches to twice the default.
func TestGridSpansFloorDefaultStretch(t *testing.T) {
	s := knobSpecs["e03.nodes"] // Default 1500, Min 200, Max 100000
	g := s.Grid(5, 1)
	if len(g) == 0 {
		t.Fatal("empty grid")
	}
	if g[0] != s.Min {
		t.Errorf("grid starts at %g, want floor %g", g[0], s.Min)
	}
	if got := g[len(g)-1]; got != 2*s.Default {
		t.Errorf("grid ends at %g, want stretch %g", got, 2*s.Default)
	}
	if !sort.Float64sAreSorted(g) {
		t.Errorf("grid not ascending: %v", g)
	}
	for _, v := range g {
		if v == s.Default {
			t.Errorf("grid contains the default %g: %v", s.Default, g)
		}
		if v < s.Min || v > s.Max {
			t.Errorf("grid value %g outside [%g, %g]", v, s.Min, s.Max)
		}
	}
}

// TestGridSinglePoint pins the degenerate one-point grid: the knob at
// its floor.
func TestGridSinglePoint(t *testing.T) {
	s := knobSpecs["e03.nodes"]
	g := s.Grid(1, 1)
	if len(g) != 1 || g[0] != s.Min {
		t.Fatalf("Grid(1, 1) = %v, want [%g]", g, s.Min)
	}
}

// TestGridCategoricalEnumerates checks knobIndex-style selector knobs
// (small integer domains) enumerate every value instead of interpolating.
func TestGridCategoricalEnumerates(t *testing.T) {
	cases := []struct {
		knob string
		want []float64
	}{
		// Default 0 excluded; presets 1..4 enumerated.
		{"e08.mix", []float64{1, 2, 3, 4}},
		// Default 1 excluded.
		{"e19.mix", []float64{2, 3, 4}},
		// Default 2 excluded.
		{"e16.endorsers", []float64{1, 3}},
	}
	for _, c := range cases {
		got := knobSpecs[c.knob].Grid(5, 1)
		if len(got) != len(c.want) {
			t.Errorf("%s grid = %v, want %v", c.knob, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s grid = %v, want %v", c.knob, got, c.want)
				break
			}
		}
	}
}

// TestGridScaledFloorSurvivesScaling checks that at -scale < 1 the low
// grid point of a scaled knob rises so the post-scaling value stays at
// or above the measurement floor, and that the value actually runs.
func TestGridScaledFloorSurvivesScaling(t *testing.T) {
	s := knobSpecs["e03.nodes"]
	const scale = 0.25
	g := s.Grid(5, scale)
	if len(g) == 0 {
		t.Fatal("empty grid")
	}
	if want := math.Ceil(s.Min / scale); g[0] != want {
		t.Errorf("scaled grid starts at %g, want ceil(Min/scale) = %g", g[0], want)
	}
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	if _, err := reg.Run("E03", core.Config{
		Seed: 1, Scale: scale,
		Params: map[string]float64{"e03.nodes": g[0]},
	}); err != nil {
		t.Errorf("floor grid point %g errored at scale %g: %v", g[0], scale, err)
	}
}

// TestGridRequiresKeepsDefault checks that a knob with companion
// requirements keeps its default value in the grid: the scenario (with
// companions applied) differs from the baseline even at the default.
func TestGridRequiresKeepsDefault(t *testing.T) {
	s := knobSpecs["e08.loss"]
	if len(s.Requires) == 0 {
		t.Fatal("e08.loss should require a companion mix knob")
	}
	g := s.Grid(5, 1)
	if len(g) == 0 || g[0] != s.Default {
		t.Fatalf("grid %v should keep the default %g as its anchor", g, s.Default)
	}
}

// TestSensitivityGridsValid validates every default-grid value against
// the same rules a run enforces: raw bounds, integrality, ownership of
// companions, and — for scaled knobs — the post-scaling floor. This is
// the contract that `report -sensitivity` never submits a job that can
// only fail validation.
func TestSensitivityGridsValid(t *testing.T) {
	for _, scale := range []float64{1, 0.25} {
		grids := SensitivityGrids(0, scale)
		for _, name := range sortedKnobNames(t) {
			s := knobSpecs[name]
			g, ok := grids[name]
			if !ok {
				t.Errorf("scale %g: knob %s has no grid", scale, name)
				continue
			}
			for _, v := range g {
				params := map[string]float64{name: v}
				for rn, rv := range s.Requires {
					params[rn] = rv
				}
				cfg := core.Config{Seed: 1, Scale: scale, Params: params}
				if err := validateKnobs(core.KnobOwner(name), cfg); err != nil {
					t.Errorf("scale %g: %s=%g fails validation: %v", scale, name, v, err)
				}
				if s.Scaled {
					if scaled := cfg.ScaleInt(int(v)); float64(scaled) < s.Min || float64(scaled) > s.Max {
						t.Errorf("scale %g: %s=%g scales to %d outside [%g, %g]",
							scale, name, v, scaled, s.Min, s.Max)
					}
				}
			}
		}
	}
}

// TestSensitivityGridsCoverEveryKnob checks that at scale 1 every
// registered knob gets a non-empty default grid — the acceptance
// criterion that every experiment page gains at least one sensitivity
// figure.
func TestSensitivityGridsCoverEveryKnob(t *testing.T) {
	grids := SensitivityGrids(0, 1)
	if len(grids) != len(knobSpecs) {
		t.Errorf("grids cover %d of %d knobs", len(grids), len(knobSpecs))
	}
	for name, g := range grids {
		if len(g) == 0 {
			t.Errorf("knob %s has an empty grid", name)
		}
		if len(g) > DefaultGridPoints {
			t.Errorf("knob %s grid has %d values, cap is %d: %v", name, len(g), DefaultGridPoints, g)
		}
	}
}

// TestKnobGridValuesWellFormed checks hand-picked grids stay inside the
// spec's range, respect integrality, and actually run (e13.raftnodes'
// odd-cluster constraint is exactly why the override exists).
func TestKnobGridValuesWellFormed(t *testing.T) {
	for _, name := range sortedKnobNames(t) {
		s := knobSpecs[name]
		for _, v := range s.GridValues {
			if v < s.Min || v > s.Max {
				t.Errorf("knob %s GridValues entry %g outside [%g, %g]", name, v, s.Min, s.Max)
			}
			if s.Integer && v != math.Trunc(v) {
				t.Errorf("integer knob %s has fractional grid value %g", name, v)
			}
		}
	}
}

// TestRaftNodesGridRuns pins the override's purpose: every grid value of
// e13.raftnodes is a legal (odd) cluster size.
func TestRaftNodesGridRuns(t *testing.T) {
	for _, v := range knobSpecs["e13.raftnodes"].Grid(0, 1) {
		if int(v)%2 == 0 {
			t.Errorf("e13.raftnodes grid value %g is even; raft requires odd n", v)
		}
	}
}

// TestKnobRequiresWellFormed checks companion assignments reference
// registered knobs of the same experiment with in-range values.
func TestKnobRequiresWellFormed(t *testing.T) {
	for _, name := range sortedKnobNames(t) {
		s := knobSpecs[name]
		for rn, rv := range s.Requires {
			rs, ok := knobSpecs[rn]
			if !ok {
				t.Errorf("knob %s requires unregistered knob %s", name, rn)
				continue
			}
			if core.KnobOwner(rn) != core.KnobOwner(name) {
				t.Errorf("knob %s requires %s owned by a different experiment", name, rn)
			}
			if rv < rs.Min || rv > rs.Max {
				t.Errorf("knob %s requires %s=%g outside [%g, %g]", name, rn, rv, rs.Min, rs.Max)
			}
		}
	}
}
