package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRegistryComplete(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	all := reg.All()
	if len(all) != 19 {
		t.Fatalf("experiments = %d, want 19", len(all))
	}
	for _, e := range all {
		if !strings.HasPrefix(e.ID(), "E") {
			t.Fatalf("bad id %q", e.ID())
		}
		if e.Title() == "" || e.Claim() == "" {
			t.Fatalf("%s missing title or claim", e.ID())
		}
		if !strings.Contains(e.Claim(), "§") {
			t.Fatalf("%s claim does not cite a paper section: %q", e.ID(), e.Claim())
		}
	}
}

// TestAllExperimentsReproduce runs the whole suite at reduced scale and
// requires every shape check to pass — the repository's headline assertion.
func TestAllExperimentsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	for _, e := range reg.All() {
		e := e
		t.Run(e.ID(), func(t *testing.T) {
			res, err := e.Run(core.Config{Seed: 1, Scale: 1})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(res.Tables) == 0 {
				t.Fatal("experiment produced no tables")
			}
			for _, c := range res.Checks {
				if !c.OK {
					t.Errorf("check %s failed: %s", c.Name, c.Detail)
				}
			}
		})
	}
}

// TestExperimentsDeterministic verifies equal seeds give identical tables.
func TestExperimentsDeterministic(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	for _, id := range []string{"E01", "E09", "E11", "E17"} {
		a, err := reg.Run(id, core.Config{Seed: 5, Scale: 0.2})
		if err != nil {
			t.Fatalf("%s run 1: %v", id, err)
		}
		b, err := reg.Run(id, core.Config{Seed: 5, Scale: 0.2})
		if err != nil {
			t.Fatalf("%s run 2: %v", id, err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s not deterministic for equal seeds", id)
		}
	}
}

// TestExperimentsScaleDown ensures the scale knob keeps experiments valid at
// benchmark-friendly sizes.
func TestExperimentsScaleDown(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	for _, id := range []string{"E01", "E06", "E11", "E17"} {
		res, err := reg.Run(id, core.Config{Seed: 2, Scale: 0.1})
		if err != nil {
			t.Fatalf("%s at scale 0.1: %v", id, err)
		}
		if len(res.Checks) == 0 {
			t.Fatalf("%s produced no checks at small scale", id)
		}
	}
}
