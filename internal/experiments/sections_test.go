package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestSections pins the stable section metadata the reproduction report
// groups claims by: every runner carries an explicit tag, the tag leads
// its claim text (so the two cannot drift apart), and core.SectionOf
// resolves to the explicit tag.
func TestSections(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	for _, e := range reg.All() {
		sec, ok := e.(core.Sectioned)
		if !ok {
			t.Errorf("%s does not implement core.Sectioned", e.ID())
			continue
		}
		tag := sec.Section()
		if tag == "" {
			t.Errorf("%s has an empty section tag", e.ID())
			continue
		}
		if !strings.HasPrefix(tag, "§") {
			t.Errorf("%s section %q does not start with §", e.ID(), tag)
		}
		if !strings.HasPrefix(e.Claim(), tag) {
			t.Errorf("%s claim does not start with its section tag %q: %q",
				e.ID(), tag, e.Claim())
		}
		if got := core.SectionOf(e); got != tag {
			t.Errorf("core.SectionOf(%s) = %q, want %q", e.ID(), got, tag)
		}
	}
}
