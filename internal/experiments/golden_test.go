package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/core"
)

// updateGolden rewrites the golden baselines from the current code:
//
//	go test ./internal/experiments -run Golden -update
//
// Only do this for an intentional baseline change; the files are the
// byte-level contract that knob-free runs reproduce the pre-knob outputs.
var updateGolden = flag.Bool("update", false, "rewrite golden experiment outputs")

// goldenRun runs one experiment knob-free and compares (or rewrites) its
// golden JSON artifact.
func goldenRun(t *testing.T, e core.Experiment, scale float64, dir string) {
	t.Helper()
	res, err := e.Run(core.Config{Seed: 1, Scale: scale})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	enc, err := res.JSON()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	enc = append(enc, '\n')
	path := filepath.Join("testdata", dir, e.ID()+".json")
	if *updateGolden {
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(enc, want) {
		t.Errorf("%s output at scale %g is not byte-identical to %s;\nrun with -update only if the baseline change is intentional\ngot  %d bytes\nwant %d bytes",
			e.ID(), scale, path, len(enc), len(want))
	}
}

// TestGoldenKnobFreeRuns is the knob-regression contract: with no knobs
// set, every experiment's seed-1 output is byte-identical to the baseline
// captured before the knob registry existed. Any knob whose default drifts
// from the original literal breaks this test.
func TestGoldenKnobFreeRuns(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	for _, e := range reg.All() {
		e := e
		t.Run(e.ID(), func(t *testing.T) {
			goldenRun(t, e, 0.25, "golden")
			if testing.Short() {
				return
			}
			goldenRun(t, e, 1, "golden_scale1")
		})
	}
}

// TestGoldenExplicitDefaultKnobs runs every experiment with each of its
// knobs explicitly set to its spec default and requires the same golden
// bytes: proving that the knob is actually read by its owner (owner
// routing accepts it) and that the registered default equals the literal
// it replaced.
func TestGoldenExplicitDefaultKnobs(t *testing.T) {
	if testing.Short() {
		t.Skip("explicit-default golden sweep skipped in -short mode")
	}
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	specs := KnobSpecs()
	byOwner := make(map[string]map[string]float64)
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		owner := core.KnobOwner(name)
		if byOwner[owner] == nil {
			byOwner[owner] = make(map[string]float64)
		}
		byOwner[owner][name] = specs[name].Default
	}
	for _, e := range reg.All() {
		e := e
		params := byOwner[e.ID()]
		if len(params) == 0 {
			t.Errorf("%s has no registered knobs", e.ID())
			continue
		}
		t.Run(e.ID(), func(t *testing.T) {
			res, err := e.Run(core.Config{Seed: 1, Scale: 1, Params: params})
			if err != nil {
				t.Fatalf("run with explicit defaults %v: %v", params, err)
			}
			enc, err := res.JSON()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden_scale1", e.ID()+".json"))
			if err != nil {
				t.Fatalf("read golden: %v", err)
			}
			if !bytes.Equal(append(enc, '\n'), want) {
				t.Errorf("%s with explicit default knobs diverges from the knob-free baseline", e.ID())
			}
		})
	}
}
