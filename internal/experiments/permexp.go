package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/pbft"
	"repro/internal/permissioned"
	"repro/internal/pow"
	"repro/internal/raft"
	"repro/internal/sim"
)

// e13PermissionedVsPoW reproduces §IV: permissioned BFT/CFT consensus
// avoids proof-of-work entirely and delivers orders of magnitude more
// throughput with immediate finality.
func e13PermissionedVsPoW() core.Experiment {
	return &exp{
		id:      "E13",
		section: "§IV",
		title:   "Permissioned consensus vs permissionless proof-of-work",
		claim:   "§IV: permissioned blockchains avoid costly proof-of-work by using CFT or BFT consensus (BFT-SMaRt); consensus can be configured between a subset of nodes, unlike broadcast networks where all nodes participate in all transactions.",
		run: func(cfg core.Config, r *core.Result) error {
			durSecs, err := scaledSize(cfg, "e13.duration")
			if err != nil {
				return err
			}
			dur := time.Duration(durSecs) * time.Second
			rate := knobFloat(cfg, "e13.rate")
			tab := metrics.NewTable("consensus comparison (simulated)",
				"system", "n", "fault model", "tps", "finality (mean)", "finality (p99)", "msgs/req")

			var pbft4TPS, pbft4Mean float64
			var pbftMeanLat time.Duration
			for _, n := range []int{4, 16} {
				s := newSim(cfg)
				nm := netmodel.New(s, netmodel.WithJitter(0.1))
				cl, err := pbft.NewCluster(s, nm, n, netmodel.Europe, pbft.Config{
					BatchSize:    knobInt(cfg, "e13.batch"),
					BatchTimeout: 20 * time.Millisecond,
				})
				if err != nil {
					return err
				}
				st, err := cl.RunLoad(rate, dur)
				if err != nil {
					return err
				}
				tab.AddRowf(fmt.Sprintf("pbft (f=%d byzantine)", cl.F()), n, "byzantine",
					st.TPS, st.MeanLatency.Seconds(), st.P99Latency.Seconds(), st.MsgsPerReq)
				if n == 4 {
					pbft4TPS = st.TPS
					pbft4Mean = st.MeanLatency.Seconds()
					pbftMeanLat = st.MeanLatency
				}
			}
			var raftTPS float64
			{
				raftN := knobInt(cfg, "e13.raftnodes")
				s := newSim(cfg)
				nm := netmodel.New(s, netmodel.WithJitter(0.1))
				cl, err := raft.NewCluster(s, nm, raftN, netmodel.Europe, raft.Config{})
				if err != nil {
					return err
				}
				st, err := cl.RunLoad(rate, dur)
				if err != nil {
					return err
				}
				raftTPS = st.TPS
				tab.AddRowf("raft (CFT orderer)", raftN, "crash",
					st.TPS, st.MeanLatency.Seconds(), st.P99Latency.Seconds(), 0)
			}
			// PoW reference: throughput from E06 params, finality = 6
			// confirmations.
			btc := pow.BitcoinParams(400)
			finality := 6 * btc.Interval
			tab.AddRowf("bitcoin PoW", "~10000", "byzantine (open)",
				btc.TPS(), finality.Seconds(), finality.Seconds(), "gossip")
			tab.AddNote("PoW finality uses the 6-confirmation convention; PBFT/Raft finality is absolute")
			r.Tables = append(r.Tables, tab)

			r.AddCheck(pbft4TPS/btc.TPS() >= 100, "pbft-throughput-gap",
				"pbft n=4 runs %.0fx bitcoin's throughput", pbft4TPS/btc.TPS())
			r.AddCheck(pbftMeanLat < time.Second, "subsecond-finality",
				"pbft mean finality %.3fs vs bitcoin's %.0fs", pbft4Mean, finality.Seconds())
			r.AddCheck(raftTPS >= pbft4TPS*0.5, "cft-cheaper-than-bft",
				"raft tps %.0f vs pbft %.0f (CFT avoids the O(n^2) phases)", raftTPS, pbft4TPS)
			return nil
		},
	}
}

// e14EdgeVsCloud reproduces §V / Figure 1: edge placement plus permissioned
// trust versus the centralized cloud.
func e14EdgeVsCloud() core.Experiment {
	return &exp{
		id:      "E14",
		section: "§V",
		title:   "Edge-centric placement with permissioned trust",
		claim:   "§V / Fig.1: modern services are data-intensive and latency-sensitive, making a centralized cloud a poor match; permissioned blockchains provide the decentralized trust that edge federations need (authorization and auditing).",
		run: func(cfg core.Config, r *core.Result) error {
			g := sim.NewRNG(cfg.Seed)
			edgeNodes := knobInt(cfg, "e14.edgenodes")
			cloudDCs := knobInt(cfg, "e14.clouddcs")
			clients, err := scaledSize(cfg, "e14.clients")
			if err != nil {
				return err
			}
			d, err := edge.New(g, edge.Config{
				Clients:   clients,
				EdgeNodes: edgeNodes,
				CloudDCs:  cloudDCs,
				ServiceMs: 2,
			})
			if err != nil {
				return err
			}
			budgetMs := knobFloat(cfg, "e14.budgetms")
			cmp := d.Compare(budgetMs)
			tab := metrics.NewTable("client RTT by placement (ms, simulated geography)",
				"placement", "median", "p95", fmt.Sprintf("%% within %gms budget", budgetMs))
			tab.AddRowf(fmt.Sprintf("edge (%d nano-DCs)", edgeNodes), cmp.EdgeMedianMs, cmp.EdgeP95Ms, cmp.WithinBudgetEdge*100)
			tab.AddRowf(fmt.Sprintf("cloud (%d regional DCs)", cloudDCs), cmp.CloudMedianMs, cmp.CloudP95Ms, cmp.WithinBudgetCloud*100)
			tab.AddRowf("central (1 DC)", cmp.CentralMedianMs, "", "")
			r.Tables = append(r.Tables, tab)

			// The trust layer: a permissioned audit channel among edge
			// operators; measure commit latency of audit records.
			s := newSim(cfg)
			nm := netmodel.New(s, netmodel.WithJitter(0.1))
			nw, err := permissioned.NewNetwork(s, nm, permissioned.Config{BlockSize: 20})
			if err != nil {
				return err
			}
			operators := []string{"op-north", "op-south", "op-east", "op-west"}
			for _, op := range operators {
				if _, err := nw.AddOrg(op, netmodel.Europe); err != nil {
					return err
				}
			}
			if _, err := nw.CreateChannel("audit", operators, permissioned.Policy{Required: 2}); err != nil {
				return err
			}
			auditCC := func(stub *permissioned.Stub, args []string) error {
				return stub.PutState("audit:"+args[0], []byte(args[1]))
			}
			if err := nw.InstallChaincode("audit", "audit", auditCC); err != nil {
				return err
			}
			if err := nw.Start(); err != nil {
				return err
			}
			var lat metrics.Sample
			records, err := scaledSize(cfg, "e14.records")
			if err != nil {
				return err
			}
			s.After(3*time.Second, func() {
				for i := 0; i < records; i++ {
					key := fmt.Sprintf("rec%d", i)
					op := operators[i%len(operators)]
					err := nw.Submit("audit", op, "audit", []string{key, "served"}, func(res permissioned.TxResult) {
						if res.Valid {
							lat.AddDuration(res.Latency)
						}
					})
					if err != nil {
						return
					}
				}
			})
			if err := s.RunUntil(60 * time.Second); err != nil {
				return err
			}
			ch, _ := nw.Channel("audit")
			tab2 := metrics.NewTable("permissioned audit trail among edge operators",
				"metric", "value")
			tab2.AddRowf("audit records committed", ch.Committed())
			tab2.AddRowf("commit latency median (s)", lat.Median())
			tab2.AddRowf("chain height", ch.Height())
			r.Tables = append(r.Tables, tab2)

			r.AddCheck(cmp.MedianSpeedup >= 2, "edge-speedup",
				"edge median %.1fms vs cloud %.1fms (%.1fx)", cmp.EdgeMedianMs, cmp.CloudMedianMs, cmp.MedianSpeedup)
			r.AddCheck(cmp.WithinBudgetEdge > cmp.WithinBudgetCloud+0.2, "interactive-budget",
				"%.0f%% of clients within %gms at the edge vs %.0f%% from the cloud",
				cmp.WithinBudgetEdge*100, budgetMs, cmp.WithinBudgetCloud*100)
			r.AddCheck(ch.Committed() >= records*9/10 && lat.Median() < 3, "audit-trail-works",
				"%d/%d audit records committed, median %.2fs — trust without a third party",
				ch.Committed(), records, lat.Median())
			return nil
		},
	}
}

// e16Channels reproduces §IV: Fabric-style channels confine consensus and
// validation to the interested subset, unlike global-broadcast chains.
func e16Channels() core.Experiment {
	return &exp{
		id:      "E16",
		section: "§IV",
		title:   "Channels: consensus among subsets beats global broadcast",
		claim:   "§IV: one distinguishing aspect of Hyperledger Fabric is that consensus can be configured between a subset of the nodes of the network, unlike traditional broadcast networks where all nodes must participate in all transactions.",
		run: func(cfg core.Config, r *core.Result) error {
			const orgs = 12
			txPerChannel, err := scaledSize(cfg, "e16.txs")
			if err != nil {
				return err
			}
			blockSize := knobInt(cfg, "e16.blocksize")
			endorsers := knobInt(cfg, "e16.endorsers")
			put := func(stub *permissioned.Stub, args []string) error {
				return stub.PutState(args[0], []byte(args[1]))
			}
			names := make([]string, orgs)
			for i := range names {
				names[i] = fmt.Sprintf("org%d", i)
			}

			// Scenario A: four 3-org channels, each carrying its own load.
			run := func(channels int) (perPeerMean float64, total int, err error) {
				s := newSim(cfg)
				nm := netmodel.New(s, netmodel.WithJitter(0.1))
				nw, err := permissioned.NewNetwork(s, nm, permissioned.Config{BlockSize: blockSize})
				if err != nil {
					return 0, 0, err
				}
				for _, n := range names {
					if _, err := nw.AddOrg(n, netmodel.Europe); err != nil {
						return 0, 0, err
					}
				}
				per := orgs / channels
				chNames := make([]string, channels)
				for c := 0; c < channels; c++ {
					members := names[c*per : (c+1)*per]
					chNames[c] = fmt.Sprintf("ch%d", c)
					if _, err := nw.CreateChannel(chNames[c], members, permissioned.Policy{Required: endorsers}); err != nil {
						return 0, 0, err
					}
					if err := nw.InstallChaincode(chNames[c], "put", put); err != nil {
						return 0, 0, err
					}
				}
				if err := nw.Start(); err != nil {
					return 0, 0, err
				}
				resolved := 0
				s.After(3*time.Second, func() {
					for c := 0; c < channels; c++ {
						creator := names[c*per]
						for i := 0; i < txPerChannel*4/channels; i++ {
							key := fmt.Sprintf("k%d-%d", c, i)
							_ = nw.Submit(chNames[c], creator, "put", []string{key, "v"},
								func(permissioned.TxResult) { resolved++ })
						}
					}
				})
				if err := s.RunUntil(2 * time.Minute); err != nil {
					return 0, 0, err
				}
				var work int64
				for c := 0; c < channels; c++ {
					ch, _ := nw.Channel(chNames[c])
					for _, w := range ch.PeerWork() {
						work += w
					}
				}
				return float64(work) / float64(orgs), resolved, nil
			}
			isolatedWork, isolatedResolved, err := run(4)
			if err != nil {
				return err
			}
			globalWork, globalResolved, err := run(1)
			if err != nil {
				return err
			}
			tab := metrics.NewTable("validation work per peer (same total offered load)",
				"topology", "tx resolved", "mean envelopes validated per peer")
			tab.AddRowf("4 channels x 3 orgs", isolatedResolved, isolatedWork)
			tab.AddRowf("1 global channel x 12 orgs", globalResolved, globalWork)
			tab.AddNote("a Bitcoin-style broadcast network is the global-channel case at planetary size")
			r.Tables = append(r.Tables, tab)

			ratio := globalWork / isolatedWork
			r.AddCheck(isolatedResolved >= txPerChannel*3 && globalResolved >= txPerChannel*3,
				"both-topologies-work", "resolved %d vs %d transactions", isolatedResolved, globalResolved)
			r.AddCheck(ratio > 2.5, "channels-cut-per-peer-load",
				"global broadcast costs %.1fx the per-peer validation of 4-way channels (ideal 4x)", ratio)
			return nil
		},
	}
}
