package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
)

// runJSON executes one experiment and returns its exported bytes.
func runJSON(t *testing.T, e core.Experiment, cfg core.Config) []byte {
	t.Helper()
	res, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("run %s (shards=%d): %v", e.ID(), cfg.Shards, err)
	}
	enc, err := res.JSON()
	if err != nil {
		t.Fatalf("encode %s: %v", e.ID(), err)
	}
	return enc
}

// TestShardWorkerEquivalence is the metamorphic equivalence suite for the
// sharded kernel: every experiment in the registry must export byte-identical
// results at shards=1 and shards=4. For sequential runners the knob is inert
// by construction; for sharded runners (E03) this is the shard-count
// invisibility contract — the worker count must never leak into any exported
// byte. CI runs this suite on every push, and the report determinism gate
// re-checks the same property across whole report trees with -shards 4.
func TestShardWorkerEquivalence(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	for _, e := range reg.All() {
		e := e
		t.Run(e.ID(), func(t *testing.T) {
			seq := runJSON(t, e, core.Config{Seed: 1, Scale: 0.25, Shards: 1})
			par := runJSON(t, e, core.Config{Seed: 1, Scale: 0.25, Shards: 4})
			if !bytes.Equal(seq, par) {
				t.Errorf("%s exports differ between shards=1 (%d bytes) and shards=4 (%d bytes); the worker count leaked into results",
					e.ID(), len(seq), len(par))
			}
		})
	}
}

// TestShardedRunnerGOMAXPROCSMatrix drives the sharded runner (E03) across
// the same GOMAXPROCS matrix the CI race job uses, at full worker fan-out,
// and requires byte-identical exports: scheduler pressure must not perturb
// the merge order either.
func TestShardedRunnerGOMAXPROCSMatrix(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	e, err := reg.Get("E03")
	if err != nil {
		t.Fatalf("Get E03: %v", err)
	}
	base := runJSON(t, e, core.Config{Seed: 1, Scale: 0.25, Shards: 1})
	for _, procs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("GOMAXPROCS=%d", procs), func(t *testing.T) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			got := runJSON(t, e, core.Config{Seed: 1, Scale: 0.25, Shards: 8})
			if !bytes.Equal(base, got) {
				t.Errorf("E03 at shards=8, GOMAXPROCS=%d diverged from the sequential run", procs)
			}
		})
	}
}
