package experiments

import (
	"fmt"
	"time"

	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/econ"
	"repro/internal/incentive"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/overlay"
	"repro/internal/overlay/chord"
	"repro/internal/overlay/gnutella"
	"repro/internal/overlay/kademlia"
	"repro/internal/overlay/onehop"
	"repro/internal/randdist"
	"repro/internal/sybil"
	"repro/internal/workload"
)

// e01Market reproduces §I: market concentration from preferential
// attachment (top-3 CDN ≈ 75%, top-1 cloud ≈ 33%).
func e01Market() core.Experiment {
	return &exp{
		id:      "E01",
		section: "§I",
		title:   "Market concentration under preferential attachment",
		claim:   "§I: >75% of the CDN market is controlled by three providers; five cloud providers hold ~60%; Amazon alone ~33% — a natural effect of preferential attachment.",
		run: func(cfg core.Config, r *core.Result) error {
			s := newSim(cfg)
			tab := metrics.NewTable("market concentration (simulated)",
				"market", "providers", "top1", "top3", "top5", "HHI", "gini")
			type scenario struct {
				name      string
				providers int
				sigma     float64
			}
			customers, err := scaledSize(cfg, "e01.customers")
			if err != nil {
				return err
			}
			var cdnTop3, cloudTop1, cloudTop5 float64
			for _, sc := range []scenario{
				{name: "cdn", providers: knobInt(cfg, "e01.cdnproviders"), sigma: 0.9},
				{name: "cloud", providers: knobInt(cfg, "e01.cloudproviders"), sigma: 0.8},
			} {
				res, err := econ.RunMarket(s.Stream("e01."+sc.name), econ.MarketConfig{
					Providers:    sc.providers,
					Customers:    customers,
					FitnessSigma: sc.sigma,
					Exploration:  knobFloat(cfg, "e01.exploration"),
				})
				if err != nil {
					return err
				}
				tab.AddRowf(sc.name, sc.providers, res.Top1, res.Top3, res.Top5, res.HHI, res.Gini)
				if sc.name == "cdn" {
					cdnTop3 = res.Top3
				} else {
					cloudTop1 = res.Top1
					cloudTop5 = res.Top5
				}
			}
			r.Tables = append(r.Tables, tab)
			r.AddCheck(cdnTop3 >= 0.6, "cdn-top3-majority",
				"top-3 CDN share %.2f (paper: ~0.75)", cdnTop3)
			r.AddCheck(cloudTop1 >= 0.15 && cloudTop1 <= 0.8, "cloud-dominant-player",
				"top-1 cloud share %.2f (paper: ~0.33; shape: one dominant player, not a monopoly)", cloudTop1)
			r.AddCheck(cloudTop5 >= 0.5, "cloud-top5-majority",
				"top-5 cloud share %.2f (paper: ~0.60)", cloudTop5)
			return nil
		},
	}
}

// e02FreeRiding reproduces §II-B Problem 1: free riding dominates without
// incentives; tit-for-tat penalizes it but only during downloads.
func e02FreeRiding() core.Experiment {
	return &exp{
		id:      "E02",
		section: "§II-B P1",
		title:   "Free riding in unstructured overlays and the tit-for-tat fix",
		claim:   "§II-B P1: free riding was extensively reported on Gnutella (most peers share nothing; a tiny minority serves most requests); BitTorrent's tit-for-tat enforces reciprocity, but only during the download.",
		run: func(cfg core.Config, r *core.Result) error {
			s := newSim(cfg)
			nm := netmodel.New(s, netmodel.WithJitter(0.1))
			n, err := scaledSize(cfg, "e02.peers")
			if err != nil {
				return err
			}
			nw, err := gnutella.NewNetwork(s, nm, n, gnutella.Config{TTL: 6})
			if err != nil {
				return err
			}
			g := s.Stream("e02")
			cat, err := workload.NewCatalogue(g, 300, 1.2, 1_000_000, 10_000_000)
			if err != nil {
				return err
			}
			// 66% free riders by default (Adar & Huberman's ~2/3); sharers'
			// library sizes are heavy-tailed — a few peers host huge
			// collections, which is what concentrates upload load on them.
			freeRiderFrac := knobFloat(cfg, "e02.freeriders")
			sharers := 0
			for i := 0; i < n; i++ {
				if g.Bool(freeRiderFrac) {
					continue
				}
				sharers++
				items := int(randdist.Pareto(g, 3, 1.0))
				if items > 200 {
					items = 200
				}
				for j := 0; j < items; j++ {
					nw.Share(i, cat.Pick())
				}
			}
			queries, err := scaledSize(cfg, "e02.queries")
			if err != nil {
				return err
			}
			found, msgs := 0, 0
			for q := 0; q < queries; q++ {
				origin := g.Intn(n)
				item := cat.Pick()
				nw.Query(origin, item, func(res gnutella.QueryResult) {
					msgs += res.Messages
					if res.Found {
						found++
						provider := res.Providers[g.Intn(len(res.Providers))]
						nw.RecordDownload(provider)
					}
				})
			}
			if err := s.Run(); err != nil {
				return err
			}
			uploads := nw.UploadCounts()
			top1pct := metrics.TopShare(uploads, n/100+1)
			gini := metrics.Gini(uploads)

			tab := metrics.NewTable("gnutella free riding (simulated)",
				"metric", "value", "paper reference")
			tab.AddRowf("free-rider fraction", 1-float64(sharers)/float64(n), "~2/3 share nothing")
			tab.AddRowf("top-1% peers' upload share", top1pct, "tiny minority serves most")
			tab.AddRowf("upload gini", gini, "extreme inequality")
			tab.AddRowf("query success rate", float64(found)/float64(queries), "best effort")
			tab.AddRowf("messages per query", float64(msgs)/float64(queries), "flooding cost")
			r.Tables = append(r.Tables, tab)

			// Tit-for-tat swarm: selfish universe (everyone leaves at
			// completion, the paper's point about incentives not outlasting
			// the download).
			swarmPeers, err := scaledSize(cfg, "e02.swarmpeers")
			if err != nil {
				return err
			}
			swarmCfg := incentive.SwarmConfig{
				Peers:         swarmPeers,
				Seeds:         3,
				FreeRiderFrac: knobFloat(cfg, "e02.swarmfreeriders"),
				Pieces:        50,
			}
			g2 := s.Stream("e02.swarm")
			base, err := incentive.RunSwarm(g2, swarmCfg, 5000)
			if err != nil {
				return err
			}
			swarmCfg.TitForTat = true
			tft, err := incentive.RunSwarm(g2, swarmCfg, 5000)
			if err != nil {
				return err
			}
			tab2 := metrics.NewTable("bittorrent tit-for-tat (simulated swarm)",
				"protocol", "coop mean rounds", "free-rider mean rounds", "slowdown")
			tab2.AddRowf("no incentives", base.CooperatorRounds.Mean(), base.FreeRiderRounds.Mean(), base.SlowdownFactor())
			tab2.AddRowf("tit-for-tat", tft.CooperatorRounds.Mean(), tft.FreeRiderRounds.Mean(), tft.SlowdownFactor())
			r.Tables = append(r.Tables, tab2)

			// Shape: the top 1% of peers carry a grossly disproportionate
			// share of uploads (>=10x their population share).
			r.AddCheck(top1pct >= 0.10, "upload-concentration",
				"top-1%% of peers serve %.0f%% of uploads (%.0fx their population share)",
				top1pct*100, top1pct/0.01)
			r.AddCheck(base.SlowdownFactor() < 1.3, "free-riding-is-free-without-incentives",
				"baseline slowdown %.2f", base.SlowdownFactor())
			r.AddCheck(tft.SlowdownFactor() > 1.5 && tft.SlowdownFactor() > 1.4*base.SlowdownFactor(),
				"tit-for-tat-penalizes",
				"tit-for-tat slowdown %.2f vs baseline %.2f", tft.SlowdownFactor(), base.SlowdownFactor())
			return nil
		},
	}
}

// e03Shards is E03's fixed logical shard count. It is a structural constant
// of the runner — NOT the -shards knob, which only sets how many workers
// execute these logical shards — so the run's event structure, and with it
// every exported byte, is identical at any worker count.
const e03Shards = 8

// e03DHTLookup reproduces §II-A (Jiménez et al.): KAD lookups within 5 s at
// the 90th percentile vs ~1 minute medians on the BitTorrent Mainline DHT.
// It is the first runner on the sharded kernel: nodes partition round-robin
// across e03Shards logical shards, each lookup's state lives on its origin's
// shard, and windows are bounded by the all-Europe delay floor.
func e03DHTLookup() core.Experiment {
	return &exp{
		id:      "E03",
		section: "§II-A",
		title:   "DHT lookup latency: KAD vs BitTorrent Mainline parameterizations",
		claim:   "§II-A: lookups were performed within 5 seconds 90% of the time in eMule's KAD, but the median lookup time was around a minute in both BitTorrent DHTs (Jiménez et al.).",
		run: func(cfg core.Config, r *core.Result) error {
			// Sweepable knobs; the spec defaults reproduce the documented
			// run and the shared scaffold enforces the measurement floors
			// for explicit values. The floors here clamp small -scale
			// values, whose purpose is a fast approximate run — but an
			// explicitly swept knob that still lands below the floor
			// after scaling is an error: clamping it would emit distinct
			// sweep groups with identical results.
			n, err := scaledSize(cfg, "e03.nodes")
			if err != nil {
				return err
			}
			lookups, err := scaledSize(cfg, "e03.lookups")
			if err != nil {
				return err
			}
			measure := func(kcfg kademlia.Config, name string) (*metrics.Sample, float64, error) {
				// The conservative window: every message in this all-Europe
				// topology takes at least the jittered intra-EU floor, so no
				// shard can affect another inside a window of that length.
				const jitter = 0.2
				ss, err := newShardedSim(cfg, e03Shards, netmodel.DelayFloor(jitter, netmodel.Europe))
				if err != nil {
					return nil, 0, err
				}
				nm := netmodel.NewSharded(ss, netmodel.WithJitter(jitter))
				nw := kademlia.NewShardedNetwork(ss, nm, kcfg)
				for i := 0; i < n; i++ {
					nw.AddNode(netmodel.Europe)
				}
				if err := nw.Bootstrap(); err != nil {
					return nil, 0, err
				}
				// Lookup callbacks fire on the origin's shard, so results
				// accumulate in shard-owned slots and merge in shard order
				// after the run — identical at any worker count.
				var samples [e03Shards]metrics.Sample
				var converged [e03Shards]int
				g := ss.Shard(0).Stream("e03." + name)
				for i := 0; i < lookups; i++ {
					// Origins must be responsive participants (measurement
					// studies instrument live clients).
					var origin *kademlia.Node
					for origin == nil || !origin.Responsive() {
						origin = nw.Nodes()[g.Intn(n)]
					}
					shard := nm.ShardOf(origin.Addr)
					nw.Lookup(origin, overlay.RandomID(g), func(res kademlia.Result) {
						samples[shard].AddDuration(res.Latency)
						if res.Converged {
							converged[shard]++
						}
					})
				}
				if err := ss.Run(); err != nil {
					return nil, 0, err
				}
				var sample metrics.Sample
				ok := 0
				for s := range samples {
					for _, v := range samples[s].Values() {
						sample.Add(v)
					}
					ok += converged[s]
				}
				return &sample, float64(ok) / float64(lookups), nil
			}
			kad, kadOK, err := measure(kademlia.KADConfig(), "kad")
			if err != nil {
				return err
			}
			mdht, mdhtOK, err := measure(kademlia.MDHTConfig(), "mdht")
			if err != nil {
				return err
			}
			tab := metrics.NewTable("DHT lookup latency (seconds, simulated)",
				"deployment", "median", "p90", "converged", "paper reference")
			tab.AddRowf("KAD-like", kad.Median(), kad.Percentile(90), kadOK, "<=5s at p90")
			tab.AddRowf("MDHT-like", mdht.Median(), mdht.Percentile(90), mdhtOK, "median ~60s")
			r.Tables = append(r.Tables, tab)
			// Full-precision scalars for multi-seed aggregation.
			r.AddMetric("kad.median.s", kad.Median())
			r.AddMetric("kad.p90.s", kad.Percentile(90))
			r.AddMetric("mdht.median.s", mdht.Median())
			r.AddMetric("mdht.p90.s", mdht.Percentile(90))

			r.AddCheck(kad.Percentile(90) <= 5, "kad-p90-under-5s",
				"KAD p90 %.2fs", kad.Percentile(90))
			r.AddCheck(mdht.Median() >= 20, "mdht-median-tens-of-seconds",
				"MDHT median %.1fs (paper ~60s)", mdht.Median())
			ratio := mdht.Median() / kad.Median()
			r.AddCheck(ratio >= 10, "mdht-kad-gap",
				"median ratio %.0fx (same protocol, different deployment hygiene)", ratio)
			return nil
		},
	}
}

// e04Sybil reproduces §II-B Problem 3: open identifier assignment lets an
// attacker intercept lookups and eclipse keys.
func e04Sybil() core.Experiment {
	return &exp{
		id:      "E04",
		section: "§II-B P3",
		title:   "Sybil and eclipse attacks on an open DHT",
		claim:   "§II-B P3: open networks where peers assign their own identities are prone to sybil attacks; massive identity problems were reported in eMule KAD and the BitTorrent DHTs.",
		run: func(cfg core.Config, r *core.Result) error {
			honest, err := scaledSize(cfg, "e04.honest")
			if err != nil {
				return err
			}
			lookups, err := scaledSize(cfg, "e04.lookups")
			if err != nil {
				return err
			}
			tab := metrics.NewTable("sybil interception vs identity count (simulated)",
				"sybil identities", "% of network", "mean attacker frac in results", "majority-poisoned rate")
			fig := &metrics.Figure{Title: "sybil interception", XLabel: "sybil fraction", YLabel: "attacker frac"}
			var fracs []float64
			for _, pct := range []float64{0.05, 0.2, 0.5} {
				ids := int(pct * float64(honest))
				s := newSim(cfg)
				nm := netmodel.New(s, netmodel.WithJitter(0.1))
				nw := kademlia.NewNetwork(s, nm, kademlia.Config{K: 8, Alpha: 3, UnresponsiveFrac: 0})
				for i := 0; i < honest; i++ {
					nw.AddNode(netmodel.Europe)
				}
				if err := nw.Bootstrap(); err != nil {
					return err
				}
				atk, err := sybil.Launch(s, nw, sybil.AttackConfig{Identities: ids})
				if err != nil {
					return err
				}
				if err := s.Run(); err != nil {
					return err
				}
				var stats sybil.EclipseStats
				g := s.Stream("e04")
				for i := 0; i < lookups; i++ {
					origin := nw.Nodes()[g.Intn(honest)]
					nw.Lookup(origin, overlay.RandomID(g), func(res kademlia.Result) {
						stats.Record(atk, res)
					})
				}
				if err := s.Run(); err != nil {
					return err
				}
				tab.AddRowf(ids, pct*100, stats.MeanAttackerFrac(), stats.MajorityRate())
				fig.Add("uniform sybil", pct, stats.MeanAttackerFrac())
				fracs = append(fracs, stats.MeanAttackerFrac())
			}
			r.Tables = append(r.Tables, tab)
			r.Figures = append(r.Figures, fig)

			// Targeted eclipse with a handful of identities.
			s := newSimSeed(cfg, cfg.Seed+1)
			nm := netmodel.New(s, netmodel.WithJitter(0.1))
			nw := kademlia.NewNetwork(s, nm, kademlia.Config{K: 8, Alpha: 3, UnresponsiveFrac: 0})
			for i := 0; i < honest; i++ {
				nw.AddNode(netmodel.Europe)
			}
			if err := nw.Bootstrap(); err != nil {
				return err
			}
			targetIDs := knobInt(cfg, "e04.targetids")
			target := overlay.KeyID([]byte("victim"))
			atk, err := sybil.Launch(s, nw, sybil.AttackConfig{
				Identities: targetIDs, Targeted: true, Target: target,
			})
			if err != nil {
				return err
			}
			if err := s.Run(); err != nil {
				return err
			}
			var eclipse sybil.EclipseStats
			g := s.Stream("e04t")
			for i := 0; i < lookups; i++ {
				origin := nw.Nodes()[g.Intn(honest)]
				nw.Lookup(origin, target, func(res kademlia.Result) { eclipse.Record(atk, res) })
			}
			if err := s.Run(); err != nil {
				return err
			}
			tab2 := metrics.NewTable(fmt.Sprintf("targeted eclipse of one key (%d identities)", targetIDs),
				"metric", "value")
			tab2.AddRowf("closest-is-attacker rate", eclipse.ClosestRate())
			tab2.AddRowf("majority-poisoned rate", eclipse.MajorityRate())
			r.Tables = append(r.Tables, tab2)

			r.AddCheck(fracs[len(fracs)-1] > fracs[0], "interception-grows",
				"attacker fraction %.2f -> %.2f as identities grow", fracs[0], fracs[len(fracs)-1])
			r.AddCheck(eclipse.ClosestRate() >= 0.7, "targeted-eclipse",
				"%d identities eclipse the key in %.0f%% of lookups", targetIDs, eclipse.ClosestRate()*100)
			return nil
		},
	}
}

// e05OneHop reproduces §II-B (Gupta et al.): full-membership one-hop
// routing is feasible at 10k–100k nodes and beats multi-hop DHTs when the
// network is reasonably stable.
func e05OneHop() core.Experiment {
	return &exp{
		id:      "E05",
		section: "§II-B",
		title:   "One-hop overlays vs multi-hop DHTs",
		claim:   "§II-B: for networks between 10K and 100K nodes it is possible to keep full membership and route in one hop (Gupta et al.); if the overlay is relatively stable, O(1) routing is the right decision.",
		run: func(cfg core.Config, r *core.Result) error {
			n, err := scaledSize(cfg, "e05.nodes")
			if err != nil {
				return err
			}
			lookups, err := scaledSize(cfg, "e05.lookups")
			if err != nil {
				return err
			}
			// Chord: hops and latency.
			s := newSim(cfg)
			nm := netmodel.New(s, netmodel.WithJitter(0.1))
			cnw := chord.NewNetwork(s, nm, chord.Config{})
			for i := 0; i < n; i++ {
				cnw.AddNode(netmodel.Europe)
			}
			if err := cnw.Build(); err != nil {
				return err
			}
			var chordHops metrics.Sample
			var chordLat metrics.Sample
			g := s.Stream("e05")
			for i := 0; i < lookups; i++ {
				origin := cnw.Nodes()[g.Intn(n)]
				cnw.Lookup(origin, g.Uint64(), func(res chord.Result) {
					if res.OK {
						chordHops.Add(float64(res.Hops))
						chordLat.AddDuration(res.Latency)
					}
				})
			}
			if err := s.Run(); err != nil {
				return err
			}
			// One-hop: attempts and latency.
			s2 := newSim(cfg)
			nm2 := netmodel.New(s2, netmodel.WithJitter(0.1))
			onw := onehop.NewNetwork(s2, nm2, onehop.Config{})
			for i := 0; i < n; i++ {
				onw.AddNode(netmodel.Europe)
			}
			if err := onw.Build(); err != nil {
				return err
			}
			var ohAttempts, ohLat metrics.Sample
			g2 := s2.Stream("e05")
			for i := 0; i < lookups; i++ {
				origin := onw.Nodes()[g2.Intn(n)]
				onw.Lookup(origin, g2.Uint64(), func(res onehop.Result) {
					if res.OK {
						ohAttempts.Add(float64(res.Attempts))
						ohLat.AddDuration(res.Latency)
					}
				})
			}
			if err := s2.Run(); err != nil {
				return err
			}
			tab := metrics.NewTable(fmt.Sprintf("lookup cost at n=%d (simulated)", n),
				"overlay", "mean hops", "median latency (s)")
			tab.AddRowf("chord (multi-hop)", chordHops.Mean(), chordLat.Median())
			tab.AddRowf("one-hop", ohAttempts.Mean(), ohLat.Median())
			r.Tables = append(r.Tables, tab)

			// Maintenance bandwidth: analytic one-hop model at the paper's
			// scales, with one-hour mean sessions by default (a "relatively
			// stable" corporate-style network).
			session := time.Duration(knobInt(cfg, "e05.sessionmins")) * time.Minute
			tab2 := metrics.NewTable(fmt.Sprintf("one-hop maintenance bandwidth (analytic, %s sessions)", sessionLabel(session)),
				"n", "ordinary node (kbit/s)", "unit leader (kbit/s)", "slice leader (kbit/s)")
			var ordinary100k float64
			for _, size := range []int{10_000, 100_000} {
				p := onehop.MaintenanceParams{
					N: size, MeanSession: session, MeanGap: session,
				}
				ord := p.OrdinaryBps() / 1000
				if size == 100_000 {
					ordinary100k = ord
				}
				tab2.AddRowf(size, ord, p.UnitLeaderBps()/1000, p.SliceLeaderBps()/1000)
			}
			r.Tables = append(r.Tables, tab2)

			r.AddCheck(ohAttempts.Mean() < 1.2, "one-hop-is-one-hop",
				"mean attempts %.2f", ohAttempts.Mean())
			r.AddCheck(chordHops.Mean() >= 3, "chord-multi-hop",
				"chord mean hops %.1f (O(log n))", chordHops.Mean())
			r.AddCheck(ohLat.Median() < chordLat.Median(), "one-hop-latency-wins",
				"one-hop median %.3fs vs chord %.3fs", ohLat.Median(), chordLat.Median())
			r.AddCheck(ordinary100k < 50, "feasible-at-100k",
				"ordinary-node maintenance %.1f kbit/s at n=100k — broadband-feasible (Gupta et al.)", ordinary100k)
			return nil
		},
	}
}

// sessionLabel renders a mean-session duration compactly for table titles
// ("1h", "90m").
func sessionLabel(d time.Duration) string {
	if d%time.Hour == 0 {
		return fmt.Sprintf("%dh", int(d/time.Hour))
	}
	return fmt.Sprintf("%dm", int(d/time.Minute))
}

// e15Churn reproduces §II-B Problem 2: open-overlay performance degrades
// with churn.
func e15Churn() core.Experiment {
	return &exp{
		id:      "E15",
		section: "§II-B P2",
		title:   "Churn degrades open-overlay lookups",
		claim:   "§II-B P2: P2P networks show high churn; fault-tolerant self-adjustment causes performance problems and latency — stable cloud servers have no rival when guaranteed quality of service is needed.",
		run: func(cfg core.Config, r *core.Result) error {
			n, err := scaledSize(cfg, "e15.nodes")
			if err != nil {
				return err
			}
			lookups, err := scaledSize(cfg, "e15.lookups")
			if err != nil {
				return err
			}
			minSession := time.Duration(knobInt(cfg, "e15.minsession")) * time.Minute
			tab := metrics.NewTable("kademlia under churn (simulated)",
				"mean session", "availability", "lookup success", "median latency (s)", "timeouts/lookup")
			fig := &metrics.Figure{Title: "churn impact", XLabel: "mean session (min)", YLabel: "median latency (s)"}
			var successes, latencies, touts []float64
			for _, session := range []time.Duration{2 * time.Hour, 30 * time.Minute, minSession} {
				s := newSim(cfg)
				nm := netmodel.New(s, netmodel.WithJitter(0.1))
				nw := kademlia.NewNetwork(s, nm, kademlia.Config{
					K: 8, Alpha: 3, RPCTimeout: 2 * time.Second, UnresponsiveFrac: 0,
				})
				for i := 0; i < n; i++ {
					nw.AddNode(netmodel.Europe)
				}
				gap := session / 2
				proc, err := churn.New(s, n, churn.Config{
					Session:       churn.Exponential(session),
					Gap:           churn.Exponential(gap),
					InitialOnline: churn.ExpectedAvailability(session, gap),
				}, func(node int) {
					nw.Rejoin(nw.Nodes()[node], nil)
				}, func(node int) {
					nw.SetOnline(nw.Nodes()[node], false)
				})
				if err != nil {
					return err
				}
				// Start churn, align overlay state with it, then bootstrap
				// the converged tables over the online population only.
				proc.Start()
				for i, node := range nw.Nodes() {
					if !proc.Online(i) {
						nw.SetOnline(node, false)
					}
				}
				if err := nw.Bootstrap(); err != nil {
					return err
				}
				// Warm up, then measure lookups spread over an hour.
				if err := s.RunUntil(10 * time.Minute); err != nil {
					return err
				}
				g := s.Stream("e15")
				success := 0
				var lat metrics.Sample
				var timeouts metrics.Summary
				done := 0
				for i := 0; i < lookups; i++ {
					at := s.Now() + time.Duration(g.Float64()*float64(time.Hour))
					s.At(at, func() {
						var origin *kademlia.Node
						for tries := 0; tries < 100; tries++ {
							cand := nw.Nodes()[g.Intn(n)]
							if cand.Online() {
								origin = cand
								break
							}
						}
						if origin == nil {
							done++
							return
						}
						target := overlay.RandomID(g)
						nw.Lookup(origin, target, func(res kademlia.Result) {
							done++
							lat.AddDuration(res.Latency)
							timeouts.Add(float64(res.Timeouts))
							truth := nw.ClosestOnline(target, 3)
							for _, c := range res.Closest {
								for _, tn := range truth {
									if c.ID == tn.ID {
										success++
										return
									}
								}
							}
						})
					})
				}
				if err := s.RunUntil(2 * time.Hour); err != nil {
					return err
				}
				avail := float64(proc.OnlineCount()) / float64(n)
				rate := float64(success) / float64(lookups)
				successes = append(successes, rate)
				latencies = append(latencies, lat.Median())
				touts = append(touts, timeouts.Mean())
				tab.AddRowf(session.String(), avail, rate, lat.Median(), timeouts.Mean())
				fig.Add("median latency", session.Minutes(), lat.Median())
			}
			r.Tables = append(r.Tables, tab)
			r.Figures = append(r.Figures, fig)
			last := len(successes) - 1
			r.AddCheck(successes[0] >= 0.9 && latencies[0] < 3, "stable-network-works",
				"success %.2f, median %.1fs with 2h sessions", successes[0], latencies[0])
			// Kademlia's alpha-parallelism masks failures by paying
			// latency: the paper's "fault-tolerant and self-adjusting, but
			// this causes performance problems and latency".
			r.AddCheck(latencies[last] >= 1.5*latencies[0], "churn-costs-latency",
				"median latency %.1fs (2h sessions) -> %.1fs (%s sessions)", latencies[0], latencies[last], sessionLabel(minSession))
			r.AddCheck(touts[last] > touts[0], "churn-costs-timeouts",
				"timeouts/lookup %.1f -> %.1f as sessions shrink", touts[0], touts[last])
			return nil
		},
	}
}
