package experiments

import (
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

// sortedKnobNames returns every registered knob name in deterministic order.
func sortedKnobNames(t *testing.T) []string {
	t.Helper()
	specs := KnobSpecs()
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TestKnobSpecsWellFormed checks the registry's internal consistency: every
// knob names a real experiment, its default sits inside [Min, Max], integer
// knobs have whole defaults, and the description leads with the owner id.
func TestKnobSpecsWellFormed(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	specs := KnobSpecs()
	for _, name := range sortedKnobNames(t) {
		s := specs[name]
		owner := core.KnobOwner(name)
		if owner == "" {
			t.Errorf("knob %s has no experiment prefix", name)
			continue
		}
		if _, err := reg.Get(owner); err != nil {
			t.Errorf("knob %s names unknown experiment %s", name, owner)
		}
		if s.Desc == "" || !strings.HasPrefix(s.Desc, owner+":") {
			t.Errorf("knob %s description %q should start with %q", name, s.Desc, owner+":")
		}
		if s.Max <= s.Min {
			t.Errorf("knob %s has Max %g <= Min %g", name, s.Max, s.Min)
		}
		if s.Default < s.Min || s.Default > s.Max {
			t.Errorf("knob %s default %g outside [%g, %g]", name, s.Default, s.Min, s.Max)
		}
		if s.Integer && s.Default != math.Trunc(s.Default) {
			t.Errorf("integer knob %s has fractional default %g", name, s.Default)
		}
	}
}

// TestEveryExperimentHasKnobs is the sweepability criterion: each of
// E01–E19 must register at least one knob.
func TestEveryExperimentHasKnobs(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	owned := make(map[string]int)
	for _, name := range sortedKnobNames(t) {
		owned[core.KnobOwner(name)]++
	}
	for _, e := range reg.All() {
		if owned[e.ID()] == 0 {
			t.Errorf("%s has no registered knobs; every experiment must be sweepable", e.ID())
		}
	}
}

// TestKnobFloorRejected runs each knob's owner with a value just below the
// spec floor and requires a run error — floors reject rather than clamp
// explicit values, so a sweep cannot silently collapse grid points.
func TestKnobFloorRejected(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	specs := KnobSpecs()
	for _, name := range sortedKnobNames(t) {
		s := specs[name]
		below := s.Min - 1
		if !s.Integer {
			below = s.Min - math.Max(s.Min/2, 0.125)
		}
		_, err := reg.Run(core.KnobOwner(name), core.Config{
			Seed: 1, Scale: 1, Params: map[string]float64{name: below},
		})
		if err == nil || !strings.Contains(err.Error(), "below the measurement floor") {
			t.Errorf("%s=%g: error = %v, want measurement-floor rejection", name, below, err)
		}
	}
}

// TestKnobMaxRejected runs each knob's owner with a value just above the
// spec maximum and requires a run error.
func TestKnobMaxRejected(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	specs := KnobSpecs()
	for _, name := range sortedKnobNames(t) {
		s := specs[name]
		_, err := reg.Run(core.KnobOwner(name), core.Config{
			Seed: 1, Scale: 1, Params: map[string]float64{name: s.Max + 1},
		})
		if err == nil || !strings.Contains(err.Error(), "above the maximum") {
			t.Errorf("%s=%g: error = %v, want above-maximum rejection", name, s.Max+1, err)
		}
	}
}

// TestIntegerKnobRejectsFraction checks fractional values of integer knobs
// are rejected rather than rounded into duplicate sweep groups.
func TestIntegerKnobRejectsFraction(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	specs := KnobSpecs()
	for _, name := range sortedKnobNames(t) {
		s := specs[name]
		if !s.Integer {
			continue
		}
		_, err := reg.Run(core.KnobOwner(name), core.Config{
			Seed: 1, Scale: 1, Params: map[string]float64{name: s.Default + 0.5},
		})
		if err == nil || !strings.Contains(err.Error(), "must be an integer") {
			t.Errorf("%s=%g: error = %v, want integer rejection", name, s.Default+0.5, err)
		}
	}
}

// TestScaledKnobBelowFloorAfterScaling checks the shared scaledSize rule:
// an explicitly-set workload knob that a small -scale pushes below the
// measurement floor is an error, not a silent clamp.
func TestScaledKnobBelowFloorAfterScaling(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	// e03.nodes has floor 200; 300 * 0.5 = 150 < 200.
	_, err = reg.Run("E03", core.Config{
		Seed: 1, Scale: 0.5, Params: map[string]float64{"e03.nodes": 300},
	})
	if err == nil || !strings.Contains(err.Error(), "falls below the measurement floor") {
		t.Fatalf("error = %v, want post-scaling floor rejection", err)
	}
}

// TestScaledKnobAboveMaxAfterScaling checks the mirrored rule: an
// explicitly-set workload knob that a large -scale pushes past the spec
// maximum is also an error.
func TestScaledKnobAboveMaxAfterScaling(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	// e03.nodes has max 100000; 90000 * 2 = 180000 > 100000.
	_, err = reg.Run("E03", core.Config{
		Seed: 1, Scale: 2, Params: map[string]float64{"e03.nodes": 90_000},
	})
	if err == nil || !strings.Contains(err.Error(), "exceeds the maximum") {
		t.Fatalf("error = %v, want post-scaling maximum rejection", err)
	}
}

// TestKnobsRejectForeignOwner checks a knob cannot be smuggled into a
// different experiment's run.
func TestKnobsRejectForeignOwner(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	_, err = reg.Run("E06", core.Config{
		Seed: 1, Scale: 1, Params: map[string]float64{"e03.nodes": 1500},
	})
	if err == nil || !strings.Contains(err.Error(), "does not apply") {
		t.Fatalf("error = %v, want ownership rejection", err)
	}
}
