package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/offchain"
	"repro/internal/sim"
)

// e18OffChain reproduces §III-C Problem 2's observation about layer 2: the
// throughput fix works precisely by re-centralizing processing onto a small
// set of peers.
func e18OffChain() core.Experiment {
	return &exp{
		id:      "E18",
		section: "§III-C P2",
		title:   "Layer-2 channels: throughput bought with re-centralization",
		claim:   "§III-C P2: the so-called layer 2 or off-chain solutions like Lightning (Bitcoin), Plasma (Ethereum) or EOS follow this trend [toward centralization]: transactions are processed by a much smaller set of peers to increase performance.",
		run: func(cfg core.Config, r *core.Result) error {
			g := sim.NewRNG(cfg.Seed)
			nodes := knobInt(cfg, "e18.nodes")
			hubs := knobInt(cfg, "e18.hubs")
			degree := knobInt(cfg, "e18.meshdegree")
			if hubs >= nodes {
				return fmt.Errorf("e18.hubs=%d must be below e18.nodes=%d", hubs, nodes)
			}
			if degree >= nodes {
				return fmt.Errorf("e18.meshdegree=%d must be below e18.nodes=%d", degree, nodes)
			}
			payments, err := scaledSize(cfg, "e18.payments")
			if err != nil {
				return err
			}
			// Equal total locked capital in both topologies.
			totalCapital := knobFloat(cfg, "e18.capital")
			mixIdx := knobIndex(cfg, "e18.mix")

			build := func(hub bool) (*offchain.Network, error) {
				nw, err := offchain.NewNetwork(nodes)
				if err != nil {
					return nil, err
				}
				if mixIdx > 0 {
					// Ride the shared WAN transport: HTLC hops are charged
					// on a regional topology and payment latency sampled.
					mix, err := netmodel.MixPreset(mixIdx)
					if err != nil {
						return nil, err
					}
					s := newSim(cfg)
					nm := netmodel.New(s, netmodel.WithJitter(0.1))
					addrs, err := nm.BuildTopology(netmodel.TopologySpec{Nodes: nodes, Mix: mix})
					if err != nil {
						return nil, err
					}
					if err := nw.AttachTransport(nm, addrs); err != nil {
						return nil, err
					}
				}
				if hub {
					// Fully-connected hubs + one channel per leaf: each
					// hub-hub channel carries 4x a leaf channel's capital
					// (3*4 + 57 shares with the documented defaults).
					hubChannels := hubs * (hubs - 1) / 2
					perChannel := totalCapital / float64(hubChannels*4+(nodes-hubs))
					return nw, offchain.BuildHubTopology(nw, hubs, perChannel)
				}
				// Mesh: degree 6 → ~180 channels with the defaults.
				perChannel := totalCapital / float64(nodes*degree/2)
				return nw, offchain.BuildMeshTopology(g, nw, degree, perChannel)
			}
			type outcome struct {
				success   float64
				top3      float64
				gini      float64
				mult      float64
				latMedian float64
				latP95    float64
			}
			measure := func(hub bool) (outcome, error) {
				nw, err := build(hub)
				if err != nil {
					return outcome{}, err
				}
				attempts := 0
				for i := 0; i < payments; i++ {
					src, dst := g.Intn(nodes), g.Intn(nodes)
					if src == dst {
						continue
					}
					attempts++
					nw.Pay(src, dst, 1+g.Float64()*20)
				}
				top3, gini := nw.HubConcentration(3)
				ok := float64(nw.Payments()) / float64(attempts)
				nw.CloseAll()
				out := outcome{
					success: ok,
					top3:    top3,
					gini:    gini,
					mult:    nw.EffectiveTPSMultiplier(),
				}
				if lat := nw.PaymentLatencies(); lat.Count() > 0 {
					out.latMedian = lat.Median()
					out.latP95 = lat.Percentile(95)
				}
				return out, nil
			}
			hub, err := measure(true)
			if err != nil {
				return err
			}
			mesh, err := measure(false)
			if err != nil {
				return err
			}
			tab := metrics.NewTable("payment-channel topologies at equal locked capital (simulated)",
				"topology", "payment success", "payments per on-chain tx", "top-3 forwarding share", "forwarding gini")
			tab.AddRowf(fmt.Sprintf("%d hubs + leaves", hubs), hub.success, hub.mult, hub.top3, hub.gini)
			tab.AddRowf(fmt.Sprintf("degree-%d mesh", degree), mesh.success, mesh.mult, mesh.top3, mesh.gini)
			tab.AddNote("hubs win on reliability and efficiency — which is why traffic gravitates to them")
			r.Tables = append(r.Tables, tab)
			if mixIdx > 0 {
				lt := metrics.NewTable(fmt.Sprintf("HTLC payment latency over the WAN (mix preset %d)", mixIdx),
					"topology", "median (s)", "p95 (s)")
				lt.AddRowf(fmt.Sprintf("%d hubs + leaves", hubs), hub.latMedian, hub.latP95)
				lt.AddRowf(fmt.Sprintf("degree-%d mesh", degree), mesh.latMedian, mesh.latP95)
				lt.AddNote("per-hop forward+settle messages charged on the shared transport")
				r.Tables = append(r.Tables, lt)
			}

			r.AddCheck(hub.mult > 20, "layer2-multiplies-throughput",
				"%.0f payments settled per on-chain transaction", hub.mult)
			r.AddCheck(hub.top3 >= 0.9, "hubs-process-everything",
				"top-3 nodes forward %.0f%% of hub-topology payments", hub.top3*100)
			r.AddCheck(hub.success >= mesh.success, "economics-favour-hubs",
				"hub success %.2f >= mesh success %.2f at equal capital — users rationally pick hubs",
				hub.success, mesh.success)
			return nil
		},
	}
}
