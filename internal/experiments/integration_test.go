package experiments

import (
	"testing"
	"time"

	"repro/internal/gossip"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/pow"
	"repro/internal/sim"
)

// TestGossipCalibratedForkRate closes the loop between the message-level
// gossip substrate and the PoW fork model: it measures real block
// propagation over a bandwidth-constrained global gossip mesh, feeds the
// empirical delay distribution into the mining simulation, and checks the
// resulting stale rate against the analytic bound. This is the full-fidelity
// version of E08's parametric propagation model.
func TestGossipCalibratedForkRate(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	// Phase 1: calibrate 1MB block propagation on a 300-node global mesh
	// with 10 Mbit/s uplinks.
	s := sim.New(sim.WithSeed(11))
	nm := netmodel.New(s, netmodel.WithJitter(0.2))
	gnw, err := gossip.NewNetwork(s, nm, 300, 10e6, nil, gossip.Config{})
	if err != nil {
		t.Fatalf("gossip network: %v", err)
	}
	var delays *metrics.Sample
	gnw.MeasurePropagation(5, 1_000_000, func(sample *metrics.Sample) { delays = sample })
	if err := s.Run(); err != nil {
		t.Fatalf("calibration run: %v", err)
	}
	if delays == nil || delays.Count() == 0 {
		t.Fatal("no propagation sample collected")
	}
	median := time.Duration(delays.Median() * float64(time.Second))
	t.Logf("calibrated 1MB propagation: median %v, p90 %v",
		median, time.Duration(delays.Percentile(90)*float64(time.Second)))
	if median < 500*time.Millisecond || median > 60*time.Second {
		t.Fatalf("calibrated median %v outside plausible range", median)
	}

	// Phase 2: mine with the empirical delay distribution at an interval
	// chosen to stress forking (interval ~= 4x median delay).
	interval := 4 * median
	values := delays.Values()
	s2 := sim.New(sim.WithSeed(12))
	mnw, err := pow.NewNetwork(s2, pow.Params{
		BlockInterval:     interval,
		InitialDifficulty: interval.Seconds(),
		Propagation: func(g *sim.RNG, size int) time.Duration {
			return time.Duration(values[g.Intn(len(values))] * float64(time.Second))
		},
	}, []float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatalf("mining network: %v", err)
	}
	mnw.Start()
	if err := s2.RunUntil(1200 * interval); err != nil {
		t.Fatalf("mining run: %v", err)
	}
	mnw.Stop()
	st := mnw.Finalize()
	bound := pow.StaleRateModel(median, interval)
	t.Logf("stale rate %v with empirical delays (analytic bound from median: %v)", st.StaleRate, bound)
	if st.StaleRate <= 0 {
		t.Fatal("expected forks when interval ~ 4x propagation delay")
	}
	// The empirical distribution has a heavy tail (slow receivers), so the
	// simulated rate can exceed the median-based bound, but not wildly.
	if st.StaleRate > 3*bound+0.1 {
		t.Fatalf("stale rate %v implausibly above bound %v", st.StaleRate, bound)
	}
}

// TestPermissionlessVsPermissionedSameLedger verifies the two stacks share
// ledger semantics: a reorg on the PoW side and MVCC invalidation on the
// permissioned side both preserve the no-double-commit invariant the paper
// takes for granted when comparing them.
func TestPermissionlessVsPermissionedSameLedger(t *testing.T) {
	// The PoW chain and the permissioned channel chain are both
	// ledger.Chain instances; this is checked structurally in their own
	// package tests. Here we assert the experiment registry exposes both
	// sides so the comparison (E13) is apples-to-apples.
	reg, err := Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	for _, id := range []string{"E06", "E13", "E16"} {
		if _, err := reg.Get(id); err != nil {
			t.Fatalf("missing experiment %s: %v", id, err)
		}
	}
}
