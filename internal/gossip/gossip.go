// Package gossip implements epidemic broadcast over a random peer graph —
// the dissemination layer of both permissionless blockchains (transaction
// and block relay in Bitcoin/Ethereum) and permissioned ones (Fabric's
// gossip component).
//
// Its central output for the reproduction is the block-propagation delay
// distribution: the fork-rate experiments (E8) feed on the time a block of a
// given size takes to reach the rest of the mining power.
package gossip

import (
	"errors"
	"time"

	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Config parameterizes the gossip overlay.
type Config struct {
	// Degree is the number of links per node (default 8, Bitcoin's default
	// outbound connection count).
	Degree int
	// Fanout is how many neighbours a node relays a fresh message to
	// (0 = all neighbours, i.e. flooding, which is what Bitcoin does for
	// blocks).
	Fanout int
	// BroadcastTimeout bounds how long a broadcast is tracked.
	BroadcastTimeout time.Duration
	// RoundPacing spaces out MeasurePropagation's broadcast rounds so they
	// do not overlap in flight (default: the shared transport pacing,
	// netmodel.DefaultPacing).
	RoundPacing time.Duration
}

func (c Config) withDefaults() Config {
	if c.Degree <= 0 {
		c.Degree = 8
	}
	if c.BroadcastTimeout <= 0 {
		c.BroadcastTimeout = 5 * time.Minute
	}
	if c.RoundPacing <= 0 {
		c.RoundPacing = netmodel.DefaultPacing
	}
	return c
}

// Spread reports the outcome of one broadcast.
type Spread struct {
	// Delivered is the number of nodes reached (including the origin).
	Delivered int
	// Messages is the number of point-to-point transmissions used.
	Messages int
	// DeliveryTimes holds per-node delivery latencies from the broadcast
	// start (origin excluded).
	DeliveryTimes []time.Duration
}

// Coverage returns the fraction of the network reached.
func (sp *Spread) Coverage(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(sp.Delivered) / float64(n)
}

// Percentile returns the given delivery-time percentile.
func (sp *Spread) Percentile(p float64) time.Duration {
	if len(sp.DeliveryTimes) == 0 {
		return 0
	}
	var sample metrics.Sample
	for _, d := range sp.DeliveryTimes {
		sample.Add(float64(d))
	}
	return time.Duration(sample.Percentile(p))
}

// Network is a gossip overlay over a netmodel.Net.
type Network struct {
	sim *sim.Sim
	net *netmodel.Net
	cfg Config
	rng *sim.RNG

	addrs []netmodel.NodeID
	adj   [][]int
}

// NewNetwork creates a gossip overlay of n nodes spread round-robin over the
// given regions (defaulting to a globally distributed population), each with
// the given uplink bandwidth in bits/second (0 = unconstrained).
func NewNetwork(s *sim.Sim, nm *netmodel.Net, n int, uplinkBps float64, regions []netmodel.Region, cfg Config) (*Network, error) {
	if n < 3 {
		return nil, errors.New("gossip: need at least three nodes")
	}
	if len(regions) == 0 {
		regions = []netmodel.Region{
			netmodel.NorthAmerica, netmodel.Europe, netmodel.Asia,
			netmodel.Europe, netmodel.NorthAmerica, netmodel.Asia,
			netmodel.SouthAmerica, netmodel.Oceania,
		}
	}
	nw := &Network{
		sim: s,
		net: nm,
		cfg: cfg.withDefaults(),
		rng: s.Stream("gossip"),
	}
	nw.addrs = make([]netmodel.NodeID, n)
	nw.adj = make([][]int, n)
	for i := 0; i < n; i++ {
		nw.addrs[i] = nm.AddNode(regions[i%len(regions)], uplinkBps)
	}
	// Connected random graph: ring + random chords up to Degree.
	link := func(a, b int) {
		if a == b {
			return
		}
		for _, x := range nw.adj[a] {
			if x == b {
				return
			}
		}
		nw.adj[a] = append(nw.adj[a], b)
		nw.adj[b] = append(nw.adj[b], a)
	}
	for i := 0; i < n; i++ {
		link(i, (i+1)%n)
	}
	extra := (nw.cfg.Degree - 2) * n / 2
	for e := 0; e < extra; e++ {
		link(nw.rng.Intn(n), nw.rng.Intn(n))
	}
	return nw, nil
}

// Size returns the node count.
func (nw *Network) Size() int { return len(nw.addrs) }

// Degree returns node i's neighbour count.
func (nw *Network) Degree(i int) int {
	if i < 0 || i >= len(nw.adj) {
		return 0
	}
	return len(nw.adj[i])
}

// Broadcast floods a message of the given size from origin and invokes done
// exactly once when the epidemic dies out (or the safety timeout fires).
func (nw *Network) Broadcast(origin, size int, done func(*Spread)) {
	if origin < 0 || origin >= len(nw.addrs) {
		if done != nil {
			done(&Spread{})
		}
		return
	}
	b := &broadcast{
		nw:    nw,
		size:  size,
		seen:  make([]bool, len(nw.addrs)),
		start: nw.sim.Now(),
		done:  done,
	}
	b.timeout = nw.sim.After(nw.cfg.BroadcastTimeout, b.finish)
	b.visit(origin)
	b.settle()
}

type broadcast struct {
	nw       *Network
	size     int
	seen     []bool
	spread   Spread
	pending  int
	start    time.Duration
	done     func(*Spread)
	finished bool
	timeout  sim.Handle
}

func (b *broadcast) visit(node int) {
	if b.seen[node] {
		return
	}
	b.seen[node] = true
	b.spread.Delivered++
	if b.spread.Delivered > 1 {
		b.spread.DeliveryTimes = append(b.spread.DeliveryTimes, b.nw.sim.Now()-b.start)
	}
	targets := b.nw.adj[node]
	if f := b.nw.cfg.Fanout; f > 0 && f < len(targets) {
		perm := b.nw.rng.Perm(len(targets))
		chosen := make([]int, 0, f)
		for _, p := range perm[:f] {
			chosen = append(chosen, targets[p])
		}
		targets = chosen
	}
	for _, nb := range targets {
		if b.seen[nb] {
			continue
		}
		b.spread.Messages++
		b.pending++
		nb := nb
		ok := b.nw.net.Send(b.nw.addrs[node], b.nw.addrs[nb], b.size, func() {
			b.pending--
			b.visit(nb)
			b.settle()
		})
		if !ok {
			b.pending--
		}
	}
}

func (b *broadcast) settle() {
	if !b.finished && b.pending == 0 {
		b.finish()
	}
}

func (b *broadcast) finish() {
	if b.finished {
		return
	}
	b.finished = true
	b.timeout.Cancel()
	if b.done != nil {
		b.done(&b.spread)
	}
}

// MeasurePropagation runs rounds broadcasts of the given size from random
// origins and invokes done with the pooled delivery-time sample (seconds).
// It is the calibration step feeding the PoW fork model.
func (nw *Network) MeasurePropagation(rounds, size int, done func(sample *metrics.Sample)) {
	sample := &metrics.Sample{}
	remaining := rounds
	var runOne func()
	runOne = func() {
		origin := nw.rng.Intn(len(nw.addrs))
		nw.Broadcast(origin, size, func(sp *Spread) {
			for _, d := range sp.DeliveryTimes {
				sample.AddDuration(d)
			}
			remaining--
			if remaining > 0 {
				// Space rounds out so broadcasts do not overlap.
				nw.sim.After(nw.cfg.RoundPacing, runOne)
				return
			}
			if done != nil {
				done(sample)
			}
		})
	}
	if rounds <= 0 {
		done(sample)
		return
	}
	runOne()
}
