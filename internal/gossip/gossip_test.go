package gossip

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

func newGossip(t *testing.T, n int, seed int64, uplink float64, cfg Config) (*sim.Sim, *Network) {
	t.Helper()
	s := sim.New(sim.WithSeed(seed))
	nm := netmodel.New(s, netmodel.WithJitter(0.1))
	nw, err := NewNetwork(s, nm, n, uplink, nil, cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return s, nw
}

func TestValidation(t *testing.T) {
	s := sim.New()
	if _, err := NewNetwork(s, netmodel.New(s), 2, 0, nil, Config{}); err == nil {
		t.Fatal("n<3 should error")
	}
}

func TestFloodReachesEveryone(t *testing.T) {
	s, nw := newGossip(t, 500, 1, 0, Config{})
	var sp *Spread
	nw.Broadcast(0, 1000, func(x *Spread) { sp = x })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sp == nil {
		t.Fatal("broadcast never completed")
	}
	if sp.Coverage(nw.Size()) != 1.0 {
		t.Fatalf("coverage = %v, want 1.0 for flooding on a connected graph", sp.Coverage(nw.Size()))
	}
	if len(sp.DeliveryTimes) != 499 {
		t.Fatalf("delivery times = %d, want 499", len(sp.DeliveryTimes))
	}
}

func TestFanoutGossipHighCoverage(t *testing.T) {
	s, nw := newGossip(t, 500, 2, 0, Config{Degree: 10, Fanout: 4})
	var sp *Spread
	nw.Broadcast(0, 1000, func(x *Spread) { sp = x })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sp.Coverage(nw.Size()) < 0.95 {
		t.Fatalf("fanout-4 gossip coverage = %v, want >= 0.95", sp.Coverage(nw.Size()))
	}
	// Fanout gossip uses fewer messages than flooding the whole edge set.
	sF, nwF := newGossip(t, 500, 2, 0, Config{Degree: 10})
	var spF *Spread
	nwF.Broadcast(0, 1000, func(x *Spread) { spF = x })
	if err := sF.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sp.Messages >= spF.Messages {
		t.Fatalf("fanout messages (%d) should be below flooding (%d)", sp.Messages, spF.Messages)
	}
}

func TestLargerBlocksPropagateSlower(t *testing.T) {
	// With constrained uplinks, serialization delay makes big blocks slow —
	// the physics behind the fork-rate/throughput trade-off.
	run := func(size int) time.Duration {
		s, nw := newGossip(t, 300, 3, 10e6 /* 10 Mbit/s */, Config{})
		var sp *Spread
		nw.Broadcast(0, size, func(x *Spread) { sp = x })
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sp.Percentile(50)
	}
	small := run(10_000)    // 10 kB
	large := run(1_000_000) // 1 MB
	if large < 3*small {
		t.Fatalf("1MB median propagation (%v) should be far above 10kB (%v)", large, small)
	}
}

func TestPropagationMedianRealistic(t *testing.T) {
	// 1 MB blocks on 10 Mbit/s uplinks across a global graph: median
	// should land in the single-digit seconds, the Decker-Wattenhofer
	// measurement regime.
	s, nw := newGossip(t, 400, 4, 10e6, Config{})
	var sp *Spread
	nw.Broadcast(0, 1_000_000, func(x *Spread) { sp = x })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	med := sp.Percentile(50)
	if med < 500*time.Millisecond || med > 30*time.Second {
		t.Fatalf("median 1MB propagation = %v, want seconds-scale", med)
	}
}

func TestMeasurePropagationPooledSample(t *testing.T) {
	s, nw := newGossip(t, 200, 5, 0, Config{})
	var count int
	nw.MeasurePropagation(3, 50_000, func(sample *metrics.Sample) {
		count = sample.Count()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 3*199 {
		t.Fatalf("pooled sample count = %d, want 597", count)
	}
}

func TestBroadcastInvalidOrigin(t *testing.T) {
	s, nw := newGossip(t, 10, 6, 0, Config{})
	var sp *Spread
	nw.Broadcast(-1, 100, func(x *Spread) { sp = x })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sp == nil || sp.Delivered != 0 {
		t.Fatal("invalid origin should produce an empty spread")
	}
}

func TestDegree(t *testing.T) {
	_, nw := newGossip(t, 100, 7, 0, Config{Degree: 8})
	var total int
	for i := 0; i < nw.Size(); i++ {
		total += nw.Degree(i)
	}
	mean := float64(total) / float64(nw.Size())
	if mean < 6 || mean > 10 {
		t.Fatalf("mean degree = %v, want ~8", mean)
	}
	if nw.Degree(-1) != 0 || nw.Degree(100) != 0 {
		t.Fatal("out-of-range Degree should be 0")
	}
}
