// Package churn drives node arrival and departure in simulated overlays.
//
// Every node alternates between online sessions and offline gaps whose
// durations are drawn from configurable distributions. Measurement studies of
// open overlays (KAD, BitTorrent MDHT) consistently report heavy-tailed
// session times; the package therefore ships both exponential and Pareto
// session models. This is the mechanism behind the paper's Problem 2
// ("performance problems due to instability, heterogeneity and churn").
package churn

import (
	"errors"
	"time"

	"repro/internal/randdist"
	"repro/internal/sim"
)

// Dist produces a random duration; used for session and gap lengths.
type Dist func(*sim.RNG) time.Duration

// Exponential returns a Dist with exponentially distributed durations of the
// given mean.
func Exponential(mean time.Duration) Dist {
	return func(g *sim.RNG) time.Duration { return g.ExpDuration(mean) }
}

// Pareto returns a heavy-tailed Dist with minimum xm, shape alpha, capped at
// max (0 = uncapped).
func Pareto(xm time.Duration, alpha float64, max time.Duration) Dist {
	return func(g *sim.RNG) time.Duration {
		return randdist.ParetoDuration(g, xm, alpha, max)
	}
}

// Fixed returns a Dist that always yields d (useful in tests).
func Fixed(d time.Duration) Dist {
	return func(*sim.RNG) time.Duration { return d }
}

// Config describes the churn behaviour of a node population.
type Config struct {
	// Session is the online-duration distribution (required).
	Session Dist
	// Gap is the offline-duration distribution (required).
	Gap Dist
	// InitialOnline is the fraction of nodes online at time zero.
	InitialOnline float64
}

// Process drives joins and leaves for n nodes. Create with New, then Start.
type Process struct {
	sim     *sim.Sim
	rng     *sim.RNG
	cfg     Config
	online  []bool
	onJoin  func(node int)
	onLeave func(node int)
	stopped bool

	joins, leaves int
}

// New creates a churn process over nodes [0, n). onJoin/onLeave may be nil.
func New(s *sim.Sim, n int, cfg Config, onJoin, onLeave func(node int)) (*Process, error) {
	if n <= 0 {
		return nil, errors.New("churn: node count must be positive")
	}
	if cfg.Session == nil || cfg.Gap == nil {
		return nil, errors.New("churn: Session and Gap distributions are required")
	}
	if cfg.InitialOnline < 0 {
		cfg.InitialOnline = 0
	}
	if cfg.InitialOnline > 1 {
		cfg.InitialOnline = 1
	}
	return &Process{
		sim:     s,
		rng:     s.Stream("churn"),
		cfg:     cfg,
		online:  make([]bool, n),
		onJoin:  onJoin,
		onLeave: onLeave,
	}, nil
}

// Start sets the initial online population (invoking onJoin for each
// initially-online node) and schedules the alternating session/gap cycle for
// every node.
func (p *Process) Start() {
	for i := range p.online {
		i := i
		if p.rng.Bool(p.cfg.InitialOnline) {
			p.join(i)
			p.scheduleLeave(i)
		} else {
			p.scheduleJoin(i)
		}
	}
}

// Stop halts all future churn transitions; current states are frozen.
func (p *Process) Stop() { p.stopped = true }

func (p *Process) scheduleLeave(node int) {
	d := p.cfg.Session(p.rng)
	p.sim.After(d, func() {
		if p.stopped || !p.online[node] {
			return
		}
		p.leave(node)
		p.scheduleJoin(node)
	})
}

func (p *Process) scheduleJoin(node int) {
	d := p.cfg.Gap(p.rng)
	p.sim.After(d, func() {
		if p.stopped || p.online[node] {
			return
		}
		p.join(node)
		p.scheduleLeave(node)
	})
}

func (p *Process) join(node int) {
	p.online[node] = true
	p.joins++
	if p.onJoin != nil {
		p.onJoin(node)
	}
}

func (p *Process) leave(node int) {
	p.online[node] = false
	p.leaves++
	if p.onLeave != nil {
		p.onLeave(node)
	}
}

// Online reports whether the node is currently online.
func (p *Process) Online(node int) bool {
	if node < 0 || node >= len(p.online) {
		return false
	}
	return p.online[node]
}

// OnlineCount returns the number of currently online nodes.
func (p *Process) OnlineCount() int {
	n := 0
	for _, up := range p.online {
		if up {
			n++
		}
	}
	return n
}

// Joins returns the cumulative number of join transitions.
func (p *Process) Joins() int { return p.joins }

// Leaves returns the cumulative number of leave transitions.
func (p *Process) Leaves() int { return p.leaves }

// ExpectedAvailability returns the steady-state fraction of time a node is
// online for mean session s and mean gap g: s/(s+g).
func ExpectedAvailability(session, gap time.Duration) float64 {
	if session <= 0 {
		return 0
	}
	return float64(session) / float64(session+gap)
}
