package churn

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestValidation(t *testing.T) {
	s := sim.New()
	if _, err := New(s, 0, Config{Session: Fixed(time.Second), Gap: Fixed(time.Second)}, nil, nil); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := New(s, 5, Config{}, nil, nil); err == nil {
		t.Fatal("missing distributions should error")
	}
}

func TestDeterministicCycle(t *testing.T) {
	s := sim.New(sim.WithSeed(1))
	var events []string
	p, err := New(s, 1, Config{
		Session:       Fixed(10 * time.Second),
		Gap:           Fixed(5 * time.Second),
		InitialOnline: 1,
	},
		func(n int) { events = append(events, "join") },
		func(n int) { events = append(events, "leave") })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p.Start()
	if err := s.RunUntil(31 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// t=0 join, t=10 leave, t=15 join, t=25 leave, t=30 join
	want := []string{"join", "leave", "join", "leave", "join"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
	if !p.Online(0) {
		t.Fatal("node should be online at t=31s")
	}
	if p.Joins() != 3 || p.Leaves() != 2 {
		t.Fatalf("joins/leaves = %d/%d, want 3/2", p.Joins(), p.Leaves())
	}
}

func TestSteadyStateAvailability(t *testing.T) {
	s := sim.New(sim.WithSeed(99))
	session, gap := 10*time.Minute, 5*time.Minute
	const n = 2000
	p, err := New(s, n, Config{
		Session:       Exponential(session),
		Gap:           Exponential(gap),
		InitialOnline: ExpectedAvailability(session, gap),
	}, nil, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p.Start()
	if err := s.RunUntil(2 * time.Hour); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := float64(p.OnlineCount()) / n
	want := ExpectedAvailability(session, gap) // 2/3
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("steady-state availability = %v, want ~%v", got, want)
	}
}

func TestStopFreezesState(t *testing.T) {
	s := sim.New(sim.WithSeed(2))
	p, err := New(s, 50, Config{
		Session:       Exponential(time.Minute),
		Gap:           Exponential(time.Minute),
		InitialOnline: 0.5,
	}, nil, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p.Start()
	if err := s.RunUntil(10 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p.Stop()
	before := p.OnlineCount()
	joins := p.Joins()
	if err := s.RunUntil(time.Hour); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p.OnlineCount() != before || p.Joins() != joins {
		t.Fatal("churn transitions occurred after Stop")
	}
}

func TestOnlineOutOfRange(t *testing.T) {
	s := sim.New()
	p, err := New(s, 3, Config{Session: Fixed(time.Second), Gap: Fixed(time.Second)}, nil, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if p.Online(-1) || p.Online(3) {
		t.Fatal("out-of-range nodes must report offline")
	}
}

func TestExpectedAvailability(t *testing.T) {
	tests := []struct {
		session, gap time.Duration
		want         float64
	}{
		{time.Minute, time.Minute, 0.5},
		{2 * time.Minute, time.Minute, 2.0 / 3.0},
		{0, time.Minute, 0},
	}
	for _, tt := range tests {
		if got := ExpectedAvailability(tt.session, tt.gap); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("ExpectedAvailability(%v,%v) = %v, want %v", tt.session, tt.gap, got, tt.want)
		}
	}
}

func TestInitialOnlineClamped(t *testing.T) {
	s := sim.New(sim.WithSeed(3))
	p, err := New(s, 100, Config{
		Session:       Fixed(time.Hour),
		Gap:           Fixed(time.Hour),
		InitialOnline: 2.5, // clamped to 1
	}, nil, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p.Start()
	if p.OnlineCount() != 100 {
		t.Fatalf("OnlineCount = %d, want 100 with clamped InitialOnline", p.OnlineCount())
	}
}
