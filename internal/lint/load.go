package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package loading. decentlint type-checks the packages it lints from
// source (analyzers need the AST) and resolves their imports from compiler
// export data produced by `go list -export`, which works offline and reuses
// the build cache — the same strategy go/packages uses, without the
// external module. A package must therefore compile before it can be
// linted; CI orders the lint job after `go build ./...` for exactly that
// reason.

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` over patterns in dir and
// decodes the package stream.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the Export files `go list -export`
// reported, via the standard gc export-data reader.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// newTypesInfo allocates the full set of type-checker fact maps the
// analyzers read.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// checkDir parses and type-checks the named Go files of one directory as
// the package importPath, resolving imports through imp.
func checkDir(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: package %s has no Go files", importPath)
	}
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// Load resolves patterns (e.g. "./...") relative to dir, builds export
// data for every dependency, and returns the matched packages
// type-checked from source, sorted by import path. Test files are not
// loaded: the determinism contracts govern the code experiments run, and
// tests legitimately use wall clocks and ad-hoc RNGs.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := checkDir(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
