package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// RNGConstructorPkgs are the only packages allowed to construct raw
// math/rand generators: sim derives them from the master seed per named
// stream, and randdist wraps those streams in distributions. Everywhere
// else a raw constructor bypasses the stream-naming discipline that keeps
// new randomness consumers from perturbing existing streams.
var RNGConstructorPkgs = []string{
	"internal/sim",
	"internal/randdist",
}

// RNGStream requires every RNG to originate from a named sim stream.
var RNGStream = &analysis.Analyzer{
	Name: "rngstream",
	Doc: "flags math/rand generator construction (rand.New, rand.NewSource, " +
		"and the math/rand/v2 equivalents) outside internal/sim and " +
		"internal/randdist; all other code must draw from named sim.Stream RNGs",
	Run: runRNGStream,
}

// rngCtorNames are the generator/source constructors per rand package.
// NewZipf is excluded: it wraps an existing *rand.Rand, so its determinism
// is the wrapped stream's, and randdist feeds it named streams.
var rngCtorNames = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runRNGStream(pass *analysis.Pass) (any, error) {
	if pathInSet(pass.Pkg.Path(), RNGConstructorPkgs) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !rngCtorNames[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch funcPkgPath(fn) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(call.Pos(), "rand.%s constructs an unnamed RNG; derive one from a named sim.Stream (or add it to internal/randdist)", fn.Name())
			}
			return true
		})
	}
	return nil, nil
}
