package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// DeterministicPkgs is the deterministic package set: everything an
// experiment run executes between reading its seed and emitting bytes.
// Wall clocks, ambient RNG streams, environment reads, and order-dependent
// map iteration in these packages can silently break the byte-identical
// golden baselines, so the nondeterm analyzer bans them statically.
var DeterministicPkgs = []string{
	"internal/sim",
	"internal/netmodel",
	"internal/experiments",
	"internal/core",
	"internal/metrics",
	"internal/report",
	"internal/harness",
	"internal/obs",
	// Substrates: every protocol/economy layer the experiments drive.
	"internal/churn",
	"internal/cloudbase",
	"internal/econ",
	"internal/edge",
	"internal/gossip",
	"internal/incentive",
	"internal/ledger",
	"internal/offchain",
	"internal/overlay",
	"internal/pbft",
	"internal/permissioned",
	"internal/pow",
	"internal/raft",
	"internal/randdist",
	"internal/sybil",
	"internal/workload",
}

// WallclockAllowedPkgs may read the wall clock: the harness times jobs
// (Elapsed is measurement metadata, not experiment output) and obs samples
// host resources into the documented-volatile host.json. Audited call
// sites there additionally carry //decentlint:allow annotations as the
// review trail. Every other nondeterm check still applies to them.
var WallclockAllowedPkgs = []string{
	"internal/harness",
	"internal/obs",
}

// NonDeterm bans nondeterminism sources inside the deterministic package
// set.
var NonDeterm = &analysis.Analyzer{
	Name: "nondeterm",
	Doc: "bans wall clocks (time.Now/Since/Until), ambient randomness " +
		"(global math/rand functions), environment reads (os.Getenv), and " +
		"map iteration with order-dependent writes inside the deterministic " +
		"package set",
	Run: runNonDeterm,
}

func runNonDeterm(pass *analysis.Pass) (any, error) {
	pkgPath := pass.Pkg.Path()
	if !pathInSet(pkgPath, DeterministicPkgs) {
		return nil, nil
	}
	wallOK := pathInSet(pkgPath, WallclockAllowedPkgs)
	seen := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !seen[pos] {
			seen[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNonDetCall(pass, n, wallOK, report)
			case *ast.RangeStmt:
				checkMapRange(pass, n, report)
			}
			return true
		})
	}
	return nil, nil
}

// checkNonDetCall flags a single call of a banned package-level function.
func checkNonDetCall(pass *analysis.Pass, call *ast.CallExpr, wallOK bool, report func(token.Pos, string, ...any)) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return
	}
	name := fn.Name()
	switch funcPkgPath(fn) {
	case "time":
		if wallOK {
			return
		}
		switch name {
		case "Now", "Since", "Until":
			report(call.Pos(), "time.%s reads the wall clock; deterministic code must use sim virtual time", name)
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			report(call.Pos(), "os.%s makes output depend on the environment; thread configuration through knobs instead", name)
		}
	case "math/rand", "math/rand/v2":
		if randConstructors[name] {
			return // rngstream's domain: constructors are legal only in sim/randdist.
		}
		report(call.Pos(), "global math/rand.%s draws from the shared process stream; use a named sim.Stream RNG", name)
	}
}

// randConstructors are the math/rand(/v2) entry points that take or build
// an explicit source; the rngstream analyzer owns their placement.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// writeMethods are io.Writer-ish method names whose invocation inside a
// map-range body makes the output order-dependent.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// fmtOutputFuncs are the fmt functions that emit to a writer. The pure
// Sprint/Sprintf/Errorf family is deliberately exempt: building a string
// per map entry is order-independent unless it is written somewhere, and
// the write is what the other checks flag.
var fmtOutputFuncs = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

// scheduleMethods are sim-kernel and transport entry points that assign
// event sequence numbers. Calling them while iterating a map makes
// same-instant event tie-breaking (which is by sequence) depend on map
// order — a determinism hazard even though nothing is written yet.
var scheduleMethods = map[string]bool{
	"At": true, "After": true, "AtFunc": true, "AfterFunc": true,
	"Every": true, "Send": true, "Broadcast": true,
}

// checkMapRange flags map iteration whose body performs order-dependent
// writes: appends to outer slices, fmt printing, io.Writer-style method
// calls, or string concatenation into outer variables. The one exempt
// shape is the key-collection idiom — a body that only appends the range
// key to a slice (`keys = append(keys, k)`), which callers sort before
// using; golden-baseline diffs remain the dynamic backstop for an
// unsorted copy of that slice.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, report func(token.Pos, string, ...any)) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if isKeyCollect(pass, rng) {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(pass.TypesInfo, n, "append") && len(n.Args) > 0 {
				if declaredOutside(pass, n.Args[0], rng) {
					report(n.Pos(), "append to outer slice inside map iteration is order-dependent; sort the keys first")
				}
				return true
			}
			if fn := calleeFunc(pass.TypesInfo, n); fn != nil {
				sig, _ := fn.Type().(*types.Signature)
				switch {
				case funcPkgPath(fn) == "fmt" && sig != nil && sig.Recv() == nil && fmtOutputFuncs[fn.Name()]:
					report(n.Pos(), "fmt.%s inside map iteration emits output in map order; sort the keys first", fn.Name())
				case sig != nil && sig.Recv() != nil && writeMethods[fn.Name()]:
					report(n.Pos(), "%s call inside map iteration writes output in map order; sort the keys first", fn.Name())
				case sig != nil && sig.Recv() != nil && scheduleMethods[fn.Name()]:
					report(n.Pos(), "%s call inside map iteration schedules events in map order (sequence-number tie-breaking becomes nondeterministic); sort the keys first", fn.Name())
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				lt := pass.TypesInfo.Types[n.Lhs[0]].Type
				if lt != nil {
					if b, ok := lt.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 && declaredOutside(pass, n.Lhs[0], rng) {
						report(n.Pos(), "string concatenation into outer variable inside map iteration is order-dependent; sort the keys first")
					}
				}
			}
		}
		return true
	})
}

// isKeyCollect reports whether rng's body is exactly `s = append(s, k)`
// where k is the range key.
func isKeyCollect(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	if rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(pass.TypesInfo, call, "append") || len(call.Args) != 2 {
		return false
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[arg] == pass.TypesInfo.Defs[key]
}

// declaredOutside reports whether expr is (rooted at) a variable declared
// before the range statement — i.e. outside its body.
func declaredOutside(pass *analysis.Pass, expr ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			return obj != nil && obj.Pos() < rng.Pos()
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}
