// Package lint implements decentlint, the repository's static-analysis
// suite. Five analyzers turn the reproduction's dynamic determinism and
// performance contracts — byte-identical golden baselines, named RNG
// streams, registered knobs, 0-alloc hot paths — into lint-time failures:
//
//	nondeterm  no wall clock, ambient RNG, env reads, or order-dependent
//	           map iteration inside the deterministic package set
//	rngstream  RNGs are constructed only in internal/sim and
//	           internal/randdist; everyone else uses named streams
//	floatfmt   no value-width-dependent float formatting in render paths
//	knobreg    every knob-reader string literal is a registered knob
//	hotpath    //decentlint:hotpath functions stay allocation-free
//
// Audited exceptions carry `//decentlint:allow <check> <reason>`; the
// reason is mandatory. Run the suite with `go run ./cmd/decentlint ./...`.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"repro/internal/lint/analysis"
)

// Analyzers returns the decentlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{NonDeterm, RNGStream, FloatFmt, KnobReg, HotPath}
}

// Finding is one unsuppressed diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// RunAnalyzers applies the analyzers to one loaded package, filters
// findings through the package's //decentlint:allow directives, and
// returns the survivors sorted by position. Malformed directives (missing
// check name or reason) are findings themselves, attributed to the
// pseudo-check "directive".
func RunAnalyzers(pkg *Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	dirs := collectDirectives(pkg)
	var findings []Finding
	for _, d := range dirs.malformed {
		findings = append(findings, Finding{
			Analyzer: "directive",
			Pos:      pkg.Fset.Position(d.pos),
			Message:  "malformed //decentlint:allow: need a check name and a non-empty reason",
		})
	}
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if dirs.allows(a.Name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Run loads the packages matched by patterns relative to dir and applies
// the full suite, returning all findings ordered by package, file, line.
func Run(dir string, patterns ...string) ([]Finding, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	suite := Analyzers()
	var all []Finding
	for _, pkg := range pkgs {
		fs, err := RunAnalyzers(pkg, suite)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	return all, nil
}
