package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// FloatFmtPkgs are the byte-determinism-critical render paths: every byte
// they emit is hashed into manifest.json and diffed against golden
// baselines, so float formatting must pin an explicit precision. A bare
// %v/%g (or fmt.Sprint) renders the shortest representation, whose WIDTH
// depends on the value — one knob nudge turns "0.25" into
// "0.2500000000000001" and shifts every table column after it.
var FloatFmtPkgs = []string{
	"internal/report",
	"internal/metrics",
}

// FloatFmt bans width-unstable float formatting in render paths.
var FloatFmt = &analysis.Analyzer{
	Name: "floatfmt",
	Doc: "flags %v and precision-less %g/%G applied to floating-point " +
		"operands, and fmt.Sprint-style calls with float operands, in the " +
		"report/metrics render paths; use an explicit precision (%.6g, " +
		"strconv.FormatFloat) so output width is value-independent",
	Run: runFloatFmt,
}

// fmtFormatFuncs maps fmt formatting functions to the index of their
// format-string argument.
var fmtFormatFuncs = map[string]int{
	"Sprintf": 0, "Printf": 0, "Errorf": 0,
	"Fprintf": 1, "Appendf": 1,
}

// fmtPlainFuncs maps fmt concatenation functions to the index of their
// first operand argument.
var fmtPlainFuncs = map[string]int{
	"Sprint": 0, "Sprintln": 0, "Print": 0, "Println": 0,
	"Fprint": 1, "Fprintln": 1, "Append": 1, "Appendln": 1,
}

func runFloatFmt(pass *analysis.Pass) (any, error) {
	if !pathInSet(pass.Pkg.Path(), FloatFmtPkgs) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || funcPkgPath(fn) != "fmt" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if idx, ok := fmtFormatFuncs[fn.Name()]; ok {
				checkFormatCall(pass, call, fn.Name(), idx)
			} else if idx, ok := fmtPlainFuncs[fn.Name()]; ok {
				for _, arg := range call.Args[min(idx, len(call.Args)):] {
					if t := pass.TypesInfo.Types[arg].Type; t != nil && isFloaty(t) {
						pass.Reportf(arg.Pos(), "fmt.%s renders %s with value-dependent width; use an explicit precision (e.g. strconv.FormatFloat or %%.6g)", fn.Name(), t)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkFormatCall matches the format literal's verbs against operand types
// and flags %v and precision-less %g/%G on floats. Non-constant format
// strings and parses the scanner cannot follow are skipped: the dynamic
// golden gates still cover them.
func checkFormatCall(pass *analysis.Pass, call *ast.CallExpr, fname string, fmtIdx int) {
	if len(call.Args) <= fmtIdx {
		return
	}
	tv := pass.TypesInfo.Types[call.Args[fmtIdx]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	operands := call.Args[fmtIdx+1:]
	for _, v := range parseVerbs(constant.StringVal(tv.Value)) {
		if v.argIndex < 0 || v.argIndex >= len(operands) {
			continue
		}
		bad := v.verb == 'v' || ((v.verb == 'g' || v.verb == 'G') && !v.hasPrecision)
		if !bad {
			continue
		}
		arg := operands[v.argIndex]
		if t := pass.TypesInfo.Types[arg].Type; t != nil && isFloaty(t) {
			pass.Reportf(arg.Pos(), "%%%s%c in fmt.%s renders %s with value-dependent width; pin a precision (e.g. %%.6g)", v.flags, v.verb, fname, t)
		}
	}
}

// verb is one parsed conversion in a format string.
type verb struct {
	verb         rune
	flags        string
	hasPrecision bool
	argIndex     int
}

// parseVerbs scans a fmt format string and assigns each verb its operand
// index, accounting for '*' width/precision operands and explicit [n]
// argument indexes. It returns nil when it loses track.
func parseVerbs(format string) []verb {
	var out []verb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			return out
		}
		if format[i] == '%' {
			continue
		}
		v := verb{argIndex: -1}
		// Flags.
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			v.flags += string(format[i])
			i++
		}
		// Width.
		if i < len(format) && format[i] == '*' {
			arg++
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i < len(format) && format[i] == '.' {
			v.hasPrecision = true
			i++
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		// Explicit argument index [n].
		if i < len(format) && format[i] == '[' {
			j := strings.IndexByte(format[i:], ']')
			if j < 0 {
				return out
			}
			n := 0
			for _, c := range format[i+1 : i+j] {
				if c < '0' || c > '9' {
					return out
				}
				n = n*10 + int(c-'0')
			}
			arg = n - 1
			i += j + 1
		}
		if i >= len(format) {
			return out
		}
		v.verb = rune(format[i])
		v.argIndex = arg
		arg++
		out = append(out, v)
	}
	return out
}
