// Package analysis is a minimal, dependency-free core of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check, a Pass
// hands it one type-checked package, and Report surfaces findings.
//
// The build environment for this repository is hermetic (no module proxy,
// no vendored third-party code), so the real x/tools module cannot be
// fetched; this package mirrors the subset of its API the decentlint suite
// needs — Analyzer{Name, Doc, Run}, Pass, Diagnostic, Reportf — with
// identical field names and semantics, so switching to the upstream module
// later is a mechanical import swap. Facts, SSA, and dependency results are
// deliberately out of scope: every decentlint analyzer is a single-package
// syntax+types walk.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the check in diagnostics and in
	// //decentlint:allow directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph contract the check enforces.
	Doc string
	// Run applies the check to one package. The result value is unused by
	// the decentlint driver but kept for upstream API compatibility.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer invocation with a single type-checked
// package and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver installs a collector
	// that applies //decentlint:allow suppression afterwards.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
