package lint

import (
	"reflect"
	"testing"
)

func TestPathInSet(t *testing.T) {
	set := []string{"internal/sim", "internal/overlay", "internal/obs"}
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/sim", true},
		{"internal/sim", true},
		{"repro/internal/sim/hpfix", true},
		{"repro/internal/overlay/chord", true},
		{"repro/internal/obs", true},
		{"repro/internal/obsolete", false},
		{"repro/internal/simulator", false},
		{"repro/cmd/decentsim", false},
		{"repro", false},
	}
	for _, c := range cases {
		if got := pathInSet(c.path, set); got != c.want {
			t.Errorf("pathInSet(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestParseVerbs(t *testing.T) {
	type v struct {
		verb rune
		prec bool
		arg  int
	}
	cases := []struct {
		format string
		want   []v
	}{
		{"plain", nil},
		{"%d", []v{{'d', false, 0}}},
		{"%v %g", []v{{'v', false, 0}, {'g', false, 1}}},
		{"%.6g", []v{{'g', true, 0}}},
		{"%8.3f", []v{{'f', true, 0}}},
		{"100%% %s", []v{{'s', false, 0}}},
		{"%*d %v", []v{{'d', false, 1}, {'v', false, 2}}},
		{"%.*f %v", []v{{'f', true, 1}, {'v', false, 2}}},
		{"%[2]v %[1]s", []v{{'v', false, 1}, {'s', false, 0}}},
		{"%+0v", []v{{'v', false, 0}}},
		{"%", nil},
	}
	for _, c := range cases {
		got := parseVerbs(c.format)
		var flat []v
		for _, g := range got {
			flat = append(flat, v{g.verb, g.hasPrecision, g.argIndex})
		}
		if !reflect.DeepEqual(flat, c.want) {
			t.Errorf("parseVerbs(%q) = %+v, want %+v", c.format, flat, c.want)
		}
	}
}

// TestAnalyzersWellFormed pins the suite composition: five analyzers,
// unique identifier names, docs present — the properties the directive
// parser and the CI lint job rely on.
func TestAnalyzersWellFormed(t *testing.T) {
	as := Analyzers()
	if len(as) != 5 {
		t.Fatalf("want 5 analyzers, got %d", len(as))
	}
	want := map[string]bool{"nondeterm": true, "rngstream": true, "floatfmt": true, "knobreg": true, "hotpath": true}
	seen := map[string]bool{}
	for _, a := range as {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q lacks doc or run function", a.Name)
		}
	}
}
