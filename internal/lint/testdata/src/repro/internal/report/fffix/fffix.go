// Package fffix is a decentlint analysistest fixture: floatfmt findings
// in a render-path package, precision-pinned negatives, and suppression.
package fffix

import (
	"fmt"
	"strings"
)

type temp float64

func formats(f float64, i int, s string, fs []float64, n temp, b *strings.Builder) {
	_ = fmt.Sprintf("%v", f)       // want `%v in fmt\.Sprintf renders float64`
	_ = fmt.Sprintf("%g", f)       // want `%g in fmt\.Sprintf renders float64`
	_ = fmt.Sprintf("%v", fs)      // want `%v in fmt\.Sprintf renders \[\]float64`
	_ = fmt.Sprintf("%v", n)       // want `%v in fmt\.Sprintf renders .*temp`
	_ = fmt.Sprint(f)              // want `fmt\.Sprint renders float64`
	fmt.Fprintf(b, "%v", f)        // want `%v in fmt\.Fprintf renders float64`
	_ = fmt.Sprintf("%s %v", s, f) // want `%v in fmt\.Sprintf renders float64`
	_ = fmt.Sprintf("%.6g", f)
	_ = fmt.Sprintf("%8.3f", f)
	_ = fmt.Sprintf("%d", i)
	_ = fmt.Sprintf("%v", s)
	_ = fmt.Sprintf("%v", i)
	_ = fmt.Sprintf("%v", f) //decentlint:allow floatfmt fixture audited exception
}
