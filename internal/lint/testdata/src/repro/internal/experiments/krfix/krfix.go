// Package krfix is a decentlint analysistest fixture for the knobreg
// analyzer: it mirrors the real registry shape (a package-level knobSpecs
// map literal plus knobInt/knobFloat/knobIndex/scaledSize readers).
package krfix

// KnobSpec mirrors the registry entry shape.
type KnobSpec struct {
	Default float64
	Desc    string
}

// Config mirrors the config the readers take.
type Config struct{ Params map[string]float64 }

var knobSpecs = map[string]KnobSpec{
	"kr.alpha": {Default: 1, Desc: "fixture knob"},
	"kr.beta":  {Default: 2, Desc: "fixture knob"},
}

func knobInt(cfg Config, name string) int       { return int(knobSpecs[name].Default) }
func knobFloat(cfg Config, name string) float64 { return knobSpecs[name].Default }
func knobIndex(cfg Config, name string) int     { return int(knobFloat(cfg, name)) }
func scaledSize(cfg Config, name string) int    { return knobInt(cfg, name) }

func reads(cfg Config, dyn string) {
	_ = knobInt(cfg, "kr.alpha")
	_ = knobFloat(cfg, "kr.beta")
	_ = knobInt(cfg, "kr.gamma")   // want `knob "kr\.gamma" is not registered in knobSpecs`
	_ = knobIndex(cfg, "kr.delta") // want `knob "kr\.delta" is not registered in knobSpecs`
	_ = scaledSize(cfg, "kr.eps")  // want `knob "kr\.eps" is not registered in knobSpecs`
	_ = knobInt(cfg, dyn)          // want `knobInt knob name is not a constant string`
	_ = knobFloat(cfg, "kr.zeta")  //decentlint:allow knobreg fixture audited exception
}
