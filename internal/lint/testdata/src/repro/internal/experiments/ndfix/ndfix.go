// Package ndfix is a decentlint analysistest fixture: positive nondeterm
// findings, the exempt key-collection idiom, and directive suppression.
package ndfix

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"
)

func clocks() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func env() string {
	return os.Getenv("HOME") // want `os\.Getenv makes output depend on the environment`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn draws from the shared process stream`
}

func mapWrites(m map[string]int, w *strings.Builder) []string {
	var out []string
	for k := range m {
		out = append(out, k+"!") // want `append to outer slice inside map iteration`
	}
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside map iteration`
	}
	for k := range m {
		w.WriteString(k) // want `WriteString call inside map iteration`
	}
	var s string
	for k := range m {
		s += k // want `string concatenation into outer variable inside map iteration`
	}
	out = append(out, s)
	return out
}

// keyCollect is the exempt idiom: collect keys, sort, then iterate.
func keyCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// describe builds strings per entry into another map: order-independent.
func describe(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = fmt.Sprintf("%d", v)
	}
	return out
}

type sched struct{}

func (sched) After(d time.Duration, fn func()) {}

func schedule(m map[string]int, s sched) {
	for range m {
		s.After(time.Second, nil) // want `After call inside map iteration schedules events in map order`
	}
}

func audited() time.Time {
	return time.Now() //decentlint:allow nondeterm fixture audited exception
}
