// Package hpfix is a decentlint analysistest fixture: hotpath findings in
// annotated functions, allocation-free negatives, and the same shapes in
// an unannotated function producing nothing.
package hpfix

import "fmt"

type payload struct {
	Ctx any
	A   int64
}

type point struct{ x, y int }

type state struct {
	buf  []int
	sink any
}

//decentlint:hotpath
func hotClosure() func() {
	return func() {} // want `closure allocation in hot path hotClosure`
}

//decentlint:hotpath
func hotFmt(n int) {
	fmt.Println(n) // want `fmt\.Println call in hot path hotFmt allocates`
}

//decentlint:hotpath
func hotAppend(s *state, v int) {
	s.buf = append(s.buf, v) // want `append without locally preallocated capacity in hot path hotAppend`
}

//decentlint:hotpath
func hotPrealloc(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

//decentlint:hotpath
func hotIface(s *state, p point) {
	s.sink = p // want `conversion of non-pointer-shaped .*point to interface in hot path hotIface`
}

//decentlint:hotpath
func hotIfaceField(p point) payload {
	return payload{Ctx: p, A: 1} // want `conversion of non-pointer-shaped .*point to interface in hot path hotIfaceField`
}

//decentlint:hotpath
func hotIfaceOK(s *state, p *point, v int64, fn func()) payload {
	s.sink = p
	s.sink = fn
	return payload{Ctx: p, A: v}
}

//decentlint:hotpath
func hotConstOK(s *state) {
	s.sink = 42
	s.sink = "literal"
	s.sink = nil
}

//decentlint:hotpath
func hotAudited(s *state, v int) {
	s.buf = append(s.buf, v) //decentlint:allow hotpath fixture audited exception
}

//decentlint:hotpath
func hotMapRange(m map[int]int) int {
	sum := 0
	for _, v := range m { // want `map iteration in hot path hotMapRange has randomized order`
		sum += v
	}
	return sum
}

//decentlint:hotpath
func hotMapRangeAudited(m map[int]int, out []int) []int {
	for k := range m { //decentlint:allow hotpath fixture audited exception
		out = append(out, k) //decentlint:allow hotpath fixture audited exception
	}
	return out
}

//decentlint:hotpath
func hotSliceRangeOK(s []int) int {
	sum := 0
	for _, v := range s {
		sum += v
	}
	return sum
}

func coldEverything(s *state, p point, n int, m map[int]int) func() {
	s.sink = p
	s.buf = append(s.buf, n)
	fmt.Println(n)
	for range m {
	}
	return func() {}
}
