// Package rsok is a decentlint analysistest fixture: internal/sim is an
// RNG-constructor package, so raw rand construction is allowed here (and
// the constructors are likewise exempt from nondeterm's global-stream ban).
package rsok

import "math/rand"

// NewRaw is legal: sim owns RNG construction.
func NewRaw(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
