// Package wallfix is a decentlint analysistest fixture: internal/harness
// is on the wall-clock allowlist (job timing is measurement metadata, not
// experiment output), but every other nondeterm check still applies.
package wallfix

import (
	"math/rand"
	"time"
)

// timeJob is legal here: the harness times jobs by design.
func timeJob() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func draw() int {
	return rand.Intn(6) // want `global math/rand\.Intn draws from the shared process stream`
}
