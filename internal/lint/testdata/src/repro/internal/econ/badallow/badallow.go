// Package badallow is a decentlint analysistest fixture: a malformed
// //decentlint:allow (missing reason) must not suppress anything and is
// itself a finding.
package badallow

import "os"

func read() string {
	//decentlint:allow nondeterm
	return os.Getenv("HOME")
}
