// Package rsfix is a decentlint analysistest fixture: rngstream findings
// outside the RNG-constructor packages, plus directive suppression.
package rsfix

import "math/rand"

func newRNG(seed int64) *rand.Rand {
	src := rand.NewSource(seed) // want `rand\.NewSource constructs an unnamed RNG`
	return rand.New(src)        // want `rand\.New constructs an unnamed RNG`
}

func audited(seed int64) *rand.Rand {
	//decentlint:allow rngstream fixture audited exception
	return rand.New(rand.NewSource(seed))
}
