// Package main (oosfix) is a decentlint analysistest fixture: cmd
// packages are outside the deterministic set, so wall clocks and
// map-order output are not findings here.
package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now())
	m := map[string]int{"a": 1}
	for k, v := range m {
		fmt.Println(k, v)
	}
}
