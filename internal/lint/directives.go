package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directives. Two comment forms steer the suite:
//
//	//decentlint:allow <check> <reason…>
//	    Suppresses findings of the named check on the directive's own line
//	    and on the line directly below it (so it can trail a statement or
//	    sit on its own line above one). The reason is mandatory: an allow
//	    without a written justification is itself a finding.
//
//	//decentlint:hotpath
//	    On a function declaration's doc comment, opts the function into
//	    the hotpath analyzer's allocation-free contract.
//
// Directives are comments, so they survive gofmt and show up in review
// diffs next to the code they excuse.

const (
	allowPrefix   = "//decentlint:allow"
	hotpathMarker = "//decentlint:hotpath"
)

// allowDirective is one parsed //decentlint:allow comment.
type allowDirective struct {
	check  string
	reason string
	pos    token.Pos
	line   int
}

// directiveSet indexes a package's allow directives by file and line.
type directiveSet struct {
	// byLine maps filename -> line -> checks allowed on that line.
	byLine map[string]map[int]map[string]bool
	// malformed collects directives missing a check name or a reason;
	// the driver surfaces them as findings so an empty excuse cannot
	// silently disable a contract.
	malformed []allowDirective
}

// collectDirectives parses every //decentlint:allow comment in the package.
func collectDirectives(pkg *Package) *directiveSet {
	set := &directiveSet{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				// Require a separator so "//decentlint:allowance" never parses.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				d := allowDirective{pos: c.Pos(), line: pos.Line}
				if len(fields) >= 1 {
					d.check = fields[0]
				}
				if len(fields) >= 2 {
					d.reason = strings.Join(fields[1:], " ")
				}
				if d.check == "" || d.reason == "" {
					set.malformed = append(set.malformed, d)
					continue
				}
				file := set.byLine[pos.Filename]
				if file == nil {
					file = make(map[int]map[string]bool)
					set.byLine[pos.Filename] = file
				}
				// The directive covers its own line (trailing form) and
				// the next line (standalone form above a statement).
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if file[line] == nil {
						file[line] = make(map[string]bool)
					}
					file[line][d.check] = true
				}
			}
		}
	}
	return set
}

// allows reports whether a finding of check at position is suppressed.
func (s *directiveSet) allows(check string, pos token.Position) bool {
	return s.byLine[pos.Filename][pos.Line][check]
}

// hasHotpathDirective reports whether fn's doc comment carries the
// //decentlint:hotpath marker.
func hasHotpathDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := c.Text
		if text == hotpathMarker || strings.HasPrefix(text, hotpathMarker+" ") {
			return true
		}
	}
	return false
}
