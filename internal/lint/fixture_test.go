package lint

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
)

// The fixture runner is a minimal analysistest: fixture packages live
// under testdata/src/<import-path>/ and annotate expected findings with
// trailing `// want `+"`regexp`"+` comments (one backquoted regexp per
// expected finding on that line). Directive-suppressed lines carry no
// want; the sibling positive lines prove the analyzer would have fired.

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("lint test: no go.mod above working directory")
		}
		dir = parent
	}
}

// stdExports builds export data for the stdlib packages fixtures import.
func stdExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		listed, err := goList(moduleRoot(t), []string{"fmt", "math/rand", "os", "sort", "strings", "time"})
		if err != nil {
			exportsErr = err
			return
		}
		exportsMap = make(map[string]string, len(listed))
		for _, p := range listed {
			if p.Export != "" {
				exportsMap[p.ImportPath] = p.Export
			}
		}
	})
	if exportsErr != nil {
		t.Fatalf("building fixture export data: %v", exportsErr)
	}
	return exportsMap
}

// loadFixture type-checks testdata/src/<importPath> as importPath.
func loadFixture(t *testing.T, importPath string) *Package {
	t.Helper()
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	fset := token.NewFileSet()
	pkg, err := checkDir(fset, exportImporter(fset, stdExports(t)), importPath, dir, goFiles)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	return pkg
}

var wantRe = regexp.MustCompile("`([^`]*)`")

// fixtureWants parses `// want` comments, keyed by file:line.
func fixtureWants(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	seen := make(map[string]bool)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if seen[name] {
			continue
		}
		seen[name] = true
		fh, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(fh)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			idx := strings.Index(text, "// want ")
			if idx < 0 {
				continue
			}
			key := fmt.Sprintf("%s:%d", name, line)
			for _, m := range wantRe.FindAllStringSubmatch(text[idx:], -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
				}
				wants[key] = append(wants[key], re)
			}
			if len(wants[key]) == 0 {
				t.Fatalf("%s: `// want` comment without a backquoted regexp", key)
			}
		}
		fh.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return wants
}

// runFixture applies analyzers to the fixture package and matches the
// findings against its want comments, failing on any mismatch in either
// direction.
func runFixture(t *testing.T, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg := loadFixture(t, importPath)
	findings, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := fixtureWants(t, pkg)
	got := make(map[string][]Finding)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		got[key] = append(got[key], f)
	}
	for key, res := range wants {
		fs := got[key]
		if len(fs) != len(res) {
			t.Errorf("%s: want %d finding(s), got %d: %v", key, len(res), len(fs), fs)
			continue
		}
		matched := make([]bool, len(fs))
		for _, re := range res {
			ok := false
			for i, f := range fs {
				if !matched[i] && re.MatchString(f.Message) {
					matched[i] = true
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%s: no finding matches %q among %v", key, re, fs)
			}
		}
	}
	for key, fs := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected finding(s): %v", key, fs)
		}
	}
}

func TestNonDetermFixture(t *testing.T) {
	runFixture(t, "repro/internal/experiments/ndfix", NonDeterm)
}

func TestRNGStreamFixture(t *testing.T) {
	runFixture(t, "repro/internal/econ/rsfix", RNGStream)
}

// TestRNGStreamAllowedPackage: sim owns RNG construction, and the
// constructors are equally exempt from nondeterm's global-stream ban.
func TestRNGStreamAllowedPackage(t *testing.T) {
	runFixture(t, "repro/internal/sim/rsok", RNGStream, NonDeterm)
}

func TestFloatFmtFixture(t *testing.T) {
	runFixture(t, "repro/internal/report/fffix", FloatFmt)
}

func TestKnobRegFixture(t *testing.T) {
	runFixture(t, "repro/internal/experiments/krfix", KnobReg)
}

func TestHotPathFixture(t *testing.T) {
	runFixture(t, "repro/internal/sim/hpfix", HotPath)
}

// TestWallclockAllowlist: harness may read the wall clock, but ambient
// RNG there is still a finding.
func TestWallclockAllowlist(t *testing.T) {
	runFixture(t, "repro/internal/harness/wallfix", NonDeterm)
}

// TestOutOfScopePackage: cmd packages are outside the deterministic set.
func TestOutOfScopePackage(t *testing.T) {
	runFixture(t, "repro/cmd/oosfix", NonDeterm, FloatFmt, KnobReg, HotPath)
}

// TestMalformedDirective: an allow without a reason suppresses nothing and
// is itself reported.
func TestMalformedDirective(t *testing.T) {
	pkg := loadFixture(t, "repro/internal/econ/badallow")
	findings, err := RunAnalyzers(pkg, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (malformed directive + unsuppressed Getenv), got %d: %v", len(findings), findings)
	}
	var haveDirective, haveGetenv bool
	for _, f := range findings {
		switch f.Analyzer {
		case "directive":
			haveDirective = strings.Contains(f.Message, "malformed")
		case "nondeterm":
			haveGetenv = strings.Contains(f.Message, "os.Getenv")
		}
	}
	if !haveDirective || !haveGetenv {
		t.Fatalf("missing expected findings: %v", findings)
	}
}

// TestLintClean runs the full suite over the real repository and asserts
// zero findings — the same gate CI's lint job enforces via
// `go run ./cmd/decentlint ./...`.
func TestLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data for the whole module")
	}
	findings, err := Run(moduleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
