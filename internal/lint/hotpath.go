package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// HotPath enforces the 0-alloc contract on functions annotated
// //decentlint:hotpath. BENCH_baseline.json pins those paths dynamically
// (allocs/op must stay 0); this analyzer catches the same regressions at
// lint time, before a benchmark run: closure allocations, fmt calls,
// interface conversions of non-pointer-shaped values, and appends to
// slices without locally visible preallocated capacity. Hot paths are
// also on the determinism-critical spine (the kernel schedule loop and
// the sharded mailbox/merge path in particular), so map iteration —
// whose order Go randomizes per run — is flagged as well: a map-order-
// dependent write there would leak scheduler randomness into results.
var HotPath = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //decentlint:hotpath must not allocate: no " +
		"func literals, no fmt calls, no interface conversions of " +
		"non-pointer-shaped non-constant values, and no append to a slice " +
		"that was not locally made with explicit capacity; they must also " +
		"not range over maps (iteration order is randomized)",
	Run: runHotPath,
}

func runHotPath(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpathDirective(fd) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil, nil
}

func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	prealloc := preallocatedSlices(pass, fd.Body)
	var results *types.Tuple
	if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		results = obj.Type().(*types.Signature).Results()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocation in hot path %s; use a package-level func with AtFunc/AfterFunc payloads", fd.Name.Name)
			return false // the closure's own body is not on the hot path
		case *ast.CallExpr:
			checkHotCall(pass, fd, n, prealloc)
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					lt := pass.TypesInfo.Types[n.Lhs[i]].Type
					checkIfaceConv(pass, fd, lt, n.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			if results != nil && len(n.Results) == results.Len() {
				for i, r := range n.Results {
					checkIfaceConv(pass, fd, results.At(i).Type(), r)
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration in hot path %s has randomized order; iterate a slice (sorted once, off the hot path) instead", fd.Name.Name)
				}
			}
		case *ast.CompositeLit:
			checkHotComposite(pass, fd, n)
		}
		return true
	})
}

// checkHotCall flags fmt calls, unpreallocated appends, conversions to
// interface types, and interface-typed parameters receiving allocating
// operands.
func checkHotCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, prealloc map[types.Object]bool) {
	if isBuiltin(pass.TypesInfo, call, "append") && len(call.Args) > 0 {
		if !isPreallocated(pass, call.Args[0], prealloc) {
			pass.Reportf(call.Pos(), "append without locally preallocated capacity in hot path %s; make the slice with explicit cap or pool it", fd.Name.Name)
		}
		return
	}
	if fn := calleeFunc(pass.TypesInfo, call); fn != nil && funcPkgPath(fn) == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s call in hot path %s allocates; format outside the hot path", fn.Name(), fd.Name.Name)
		return
	}
	// Conversion expression T(x) where T is an interface type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkIfaceConv(pass, fd, tv.Type, call.Args[0])
		}
		return
	}
	// Ordinary call: match operands against interface-typed parameters.
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		checkIfaceConv(pass, fd, pt, arg)
	}
}

// checkHotComposite matches composite-literal elements against interface-
// typed struct fields or element types.
func checkHotComposite(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.CompositeLit) {
	t := pass.TypesInfo.Types[lit].Type
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		fields := make(map[string]types.Type, u.NumFields())
		for i := 0; i < u.NumFields(); i++ {
			fields[u.Field(i).Name()] = u.Field(i).Type()
		}
		for i, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					checkIfaceConv(pass, fd, fields[id.Name], kv.Value)
				}
			} else if i < u.NumFields() {
				checkIfaceConv(pass, fd, u.Field(i).Type(), elt)
			}
		}
	case *types.Slice:
		for _, elt := range lit.Elts {
			checkIfaceConv(pass, fd, u.Elem(), eltValue(elt))
		}
	case *types.Array:
		for _, elt := range lit.Elts {
			checkIfaceConv(pass, fd, u.Elem(), eltValue(elt))
		}
	case *types.Map:
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				checkIfaceConv(pass, fd, u.Elem(), kv.Value)
			}
		}
	}
}

func eltValue(elt ast.Expr) ast.Expr {
	if kv, ok := elt.(*ast.KeyValueExpr); ok {
		return kv.Value
	}
	return elt
}

// checkIfaceConv reports an implicit or explicit conversion of expr to the
// interface type target when the operand's representation forces an
// allocation: not already an interface, not pointer-shaped, and not a
// compile-time constant (constants are interned in read-only data).
func checkIfaceConv(pass *analysis.Pass, fd *ast.FuncDecl, target types.Type, expr ast.Expr) {
	if target == nil || !isInterface(target) {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil {
		return
	}
	if isInterface(tv.Type) || pointerShaped(tv.Type) {
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	pass.Reportf(expr.Pos(), "conversion of non-pointer-shaped %s to interface in hot path %s allocates; pass a pointer or pack scalars into the payload", tv.Type, fd.Name.Name)
}

// preallocatedSlices collects variables assigned from make(T, len, cap)
// within body: appends to them reuse capacity in steady state.
func preallocatedSlices(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltin(pass.TypesInfo, call, "make") || len(call.Args) < 3 {
			return
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range n.Names {
				if i < len(n.Values) {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// isPreallocated reports whether the append target is a variable the
// function made with explicit capacity.
func isPreallocated(pass *analysis.Pass, target ast.Expr, prealloc map[types.Object]bool) bool {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	return obj != nil && prealloc[obj]
}
