package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/lint/analysis"
)

// KnobReg cross-checks knob-reader call sites against the KnobSpecs
// registry. knobInt/knobFloat/knobIndex/scaledSize silently apply the
// spec's default when the name is absent from the registry map — so a
// typo'd knob string compiles, runs, and sweeps a knob the experiment
// never reads. This analyzer turns that into a lint failure: every knob
// name passed to a reader must be a constant string present as a key of
// the package's `knobSpecs` map literal.
var KnobReg = &analysis.Analyzer{
	Name: "knobreg",
	Doc: "verifies every knobInt/knobFloat/knobIndex/scaledSize knob-name " +
		"literal appears as a key of the knobSpecs registry map in the same " +
		"package, and that knob names are constant strings at all",
	Run: runKnobReg,
}

// knobReaderArg maps knob-reader function names to the index of their
// knob-name argument.
var knobReaderArg = map[string]int{
	"knobInt":    1,
	"knobFloat":  1,
	"knobIndex":  1,
	"scaledSize": 1,
}

func runKnobReg(pass *analysis.Pass) (any, error) {
	registry := collectKnobRegistry(pass)
	if registry == nil {
		// No knobSpecs map literal in this package: nothing to check
		// against. The readers live beside the registry by construction.
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			// The reader implementations themselves thread the knob name
			// through as a variable (knobIndex delegates to knobFloat,
			// scaledSize to knobInt); their bodies are exempt.
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if _, isReader := knobReaderArg[fd.Name.Name]; isReader && fd.Recv == nil {
					continue
				}
			}
			checkKnobCalls(pass, decl, registry)
		}
	}
	return nil, nil
}

// checkKnobCalls flags unregistered or non-constant knob names in reader
// calls under root.
func checkKnobCalls(pass *analysis.Pass, root ast.Node, registry map[string]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() != pass.Pkg {
			return true
		}
		idx, ok := knobReaderArg[fn.Name()]
		if !ok || len(call.Args) <= idx {
			return true
		}
		arg := call.Args[idx]
		tv := pass.TypesInfo.Types[arg]
		if tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(arg.Pos(), "%s knob name is not a constant string; the registry cross-check needs a literal", fn.Name())
			return true
		}
		name := constant.StringVal(tv.Value)
		if !registry[name] {
			pass.Reportf(arg.Pos(), "knob %q is not registered in knobSpecs; %s would silently fall back to a zero default", name, fn.Name())
		}
		return true
	})
}

// collectKnobRegistry returns the key set of the package-level `knobSpecs`
// map composite literal, or nil if the package declares none.
func collectKnobRegistry(pass *analysis.Pass) map[string]bool {
	var registry map[string]bool
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "knobSpecs" || i >= len(vs.Values) {
						continue
					}
					lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit)
					if !ok {
						continue
					}
					if t := pass.TypesInfo.Types[lit].Type; t == nil {
						continue
					} else if _, isMap := t.Underlying().(*types.Map); !isMap {
						continue
					}
					if registry == nil {
						registry = make(map[string]bool, len(lit.Elts))
					}
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						ktv := pass.TypesInfo.Types[kv.Key]
						if ktv.Value != nil && ktv.Value.Kind() == constant.String {
							registry[constant.StringVal(ktv.Value)] = true
						}
					}
				}
			}
		}
	}
	return registry
}
