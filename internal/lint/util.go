package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Package-set membership is decided by path segments, not exact strings,
// so "repro/internal/overlay/chord" matches the "internal/overlay" entry
// and analysistest fixtures under testdata/src/repro/internal/… land in
// the same scope as the real tree without the analyzers knowing the
// module path.

// pathInSet reports whether pkgPath contains one of the entries as a
// consecutive, "/"-delimited segment run.
func pathInSet(pkgPath string, set []string) bool {
	for _, entry := range set {
		if pkgPath == entry ||
			strings.HasPrefix(pkgPath, entry+"/") ||
			strings.HasSuffix(pkgPath, "/"+entry) ||
			strings.Contains(pkgPath, "/"+entry+"/") {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called function or method of a call expression,
// or nil for conversions, builtins, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package declaring fn, or ""
// for builtins and universe functions.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (methods never match).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || funcPkgPath(fn) != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isBuiltin reports whether the call invokes the named universe builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isFloaty reports whether t is a floating-point type or a slice/array/map
// carrying one — the operand shapes whose default formatting width varies
// with the value.
func isFloaty(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Slice:
		return isFloaty(u.Elem())
	case *types.Array:
		return isFloaty(u.Elem())
	case *types.Map:
		return isFloaty(u.Elem())
	case *types.Pointer:
		return isFloaty(u.Elem())
	}
	return false
}

// pointerShaped reports whether values of t convert to an interface
// without allocating: the runtime stores single-pointer-word values
// (pointers, funcs, maps, channels, unsafe pointers) directly.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Map, *types.Chan:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}
