package offchain

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func TestValidation(t *testing.T) {
	if _, err := NewNetwork(1); err == nil {
		t.Fatal("n<2 should error")
	}
	nw, err := NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.OpenChannel(0, 0, 10); err == nil {
		t.Fatal("self-channel should error")
	}
	if _, err := nw.OpenChannel(0, 9, 10); err == nil {
		t.Fatal("out-of-range endpoint should error")
	}
	if _, err := nw.OpenChannel(0, 1, 0); err == nil {
		t.Fatal("zero capacity should error")
	}
}

func TestDirectPayment(t *testing.T) {
	nw, err := NewNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := nw.OpenChannel(0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Pay(0, 1, 30) {
		t.Fatal("direct payment failed")
	}
	if ch.BalanceA != 20 || ch.BalanceB != 80 {
		t.Fatalf("balances = %v/%v, want 20/80", ch.BalanceA, ch.BalanceB)
	}
	if ch.Capacity() != 100 {
		t.Fatal("capacity must be conserved")
	}
	// Liquidity exhausted in one direction.
	if nw.Pay(0, 1, 30) {
		t.Fatal("payment should fail without liquidity")
	}
	// But flows fine the other way.
	if !nw.Pay(1, 0, 50) {
		t.Fatal("reverse payment should succeed")
	}
}

func TestMultiHopRoutingAndHubLoad(t *testing.T) {
	nw, err := NewNetwork(5)
	if err != nil {
		t.Fatal(err)
	}
	// Star around node 2.
	for _, leaf := range []int{0, 1, 3, 4} {
		if _, err := nw.OpenChannel(leaf, 2, 100); err != nil {
			t.Fatal(err)
		}
	}
	if !nw.Pay(0, 4, 10) {
		t.Fatal("two-hop payment failed")
	}
	shares := nw.HubShares()
	if shares[2] != 1.0 {
		t.Fatalf("hub share = %v, want all forwarding through node 2", shares[2])
	}
	if nw.Payments() != 1 {
		t.Fatalf("Payments = %d", nw.Payments())
	}
}

func TestNoRouteFails(t *testing.T) {
	nw, err := NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.OpenChannel(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if nw.Pay(0, 3, 1) {
		t.Fatal("payment across disconnected nodes should fail")
	}
	if nw.Failed() != 1 {
		t.Fatalf("Failed = %d", nw.Failed())
	}
}

func TestValueConservation(t *testing.T) {
	g := sim.NewRNG(5)
	nw, err := NewNetwork(30)
	if err != nil {
		t.Fatal(err)
	}
	if err := BuildMeshTopology(g, nw, 4, 100); err != nil {
		t.Fatal(err)
	}
	var before float64
	for _, ch := range nw.channels {
		before += ch.Capacity()
	}
	for i := 0; i < 500; i++ {
		nw.Pay(g.Intn(30), g.Intn(30), 1+g.Float64()*5)
	}
	var after float64
	for _, ch := range nw.channels {
		after += ch.Capacity()
	}
	if before != after {
		t.Fatalf("channel value not conserved: %v -> %v", before, after)
	}
}

func TestThroughputMultiplier(t *testing.T) {
	// The layer-2 pitch: thousands of payments per on-chain transaction.
	g := sim.NewRNG(6)
	nw, err := NewNetwork(50)
	if err != nil {
		t.Fatal(err)
	}
	if err := BuildHubTopology(nw, 3, 1_000_000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		src, dst := g.Intn(50), g.Intn(50)
		if src != dst {
			nw.Pay(src, dst, 1)
		}
	}
	opens := nw.OnChainTxs()
	nw.CloseAll()
	mult := nw.EffectiveTPSMultiplier()
	if mult < 50 {
		t.Fatalf("multiplier = %v, want payments >> on-chain txs (opens=%d)", mult, opens)
	}
}

func TestHubTopologyRecentralizes(t *testing.T) {
	// The paper's warning: layer-2 performance comes from routing through a
	// small set of peers.
	g := sim.NewRNG(7)

	hub, err := NewNetwork(60)
	if err != nil {
		t.Fatal(err)
	}
	if err := BuildHubTopology(hub, 3, 1_000_000); err != nil {
		t.Fatal(err)
	}
	mesh, err := NewNetwork(60)
	if err != nil {
		t.Fatal(err)
	}
	if err := BuildMeshTopology(g, mesh, 6, 1_000_000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5_000; i++ {
		src, dst := g.Intn(60), g.Intn(60)
		if src == dst {
			continue
		}
		hub.Pay(src, dst, 1)
		mesh.Pay(src, dst, 1)
	}
	hubTop3, hubGini := hub.HubConcentration(3)
	meshTop3, meshGini := mesh.HubConcentration(3)
	if hubTop3 < 0.95 {
		t.Fatalf("hub topology top-3 forwarding share = %v, want ~1", hubTop3)
	}
	if meshTop3 >= hubTop3 {
		t.Fatalf("mesh should be less concentrated: mesh %v vs hub %v", meshTop3, hubTop3)
	}
	if meshGini >= hubGini {
		t.Fatalf("mesh gini %v should be below hub gini %v", meshGini, hubGini)
	}
}

func TestHubTopologyValidation(t *testing.T) {
	nw, err := NewNetwork(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := BuildHubTopology(nw, 0, 10); err == nil {
		t.Fatal("0 hubs should error")
	}
	if err := BuildHubTopology(nw, 5, 10); err == nil {
		t.Fatal("hubs >= n should error")
	}
	if err := BuildMeshTopology(sim.NewRNG(1), nw, 1, 10); err == nil {
		t.Fatal("degree < 2 should error")
	}
}

func TestAttachTransportLatencyAccounting(t *testing.T) {
	s := sim.New(sim.WithSeed(9))
	nm := netmodel.New(s, netmodel.WithJitter(0))
	nw, err := NewNetwork(3)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	addrs := []netmodel.NodeID{
		nm.AddNode(netmodel.NorthAmerica, 0), // 45ms to EU
		nm.AddNode(netmodel.Europe, 0),       // 80ms to AS
		nm.AddNode(netmodel.Asia, 0),
	}
	if err := nw.AttachTransport(nil, addrs); err == nil {
		t.Fatal("nil transport accepted")
	}
	if err := nw.AttachTransport(nm, addrs[:2]); err == nil {
		t.Fatal("short address list accepted")
	}
	if err := nw.AttachTransport(nm, addrs); err != nil {
		t.Fatalf("AttachTransport: %v", err)
	}
	// Line topology 0-1-2 forces the NA->EU->AS route.
	if _, err := nw.OpenChannel(0, 1, 100); err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if _, err := nw.OpenChannel(1, 2, 100); err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if !nw.Pay(0, 2, 5) {
		t.Fatal("payment failed")
	}
	lat := nw.PaymentLatencies()
	if lat.Count() != 1 {
		t.Fatalf("latency samples = %d, want 1", lat.Count())
	}
	// Two hops, forward + settle each: 2*(45ms + 80ms) = 250ms.
	if got := lat.Mean(); got < 0.249 || got > 0.251 {
		t.Fatalf("payment latency = %.3fs, want 0.250s", got)
	}
	if nm.TotalBytesSent() != 4*1400 {
		t.Fatalf("HTLC traffic = %d bytes, want 4 messages x 1400", nm.TotalBytesSent())
	}
}

func TestPayWithoutTransportSamplesNothing(t *testing.T) {
	nw, err := NewNetwork(2)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if _, err := nw.OpenChannel(0, 1, 100); err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	if !nw.Pay(0, 1, 1) {
		t.Fatal("payment failed")
	}
	if nw.PaymentLatencies().Count() != 0 {
		t.Fatal("latency sampled without a transport attached")
	}
}

func TestLossyTransportNeverSpeedsPayments(t *testing.T) {
	measure := func(loss float64) (count int, mean float64) {
		s := sim.New(sim.WithSeed(3))
		nm := netmodel.New(s, netmodel.WithJitter(0), netmodel.WithLoss(loss))
		nw, err := NewNetwork(3)
		if err != nil {
			t.Fatalf("NewNetwork: %v", err)
		}
		addrs := []netmodel.NodeID{
			nm.AddNode(netmodel.NorthAmerica, 0),
			nm.AddNode(netmodel.Europe, 0),
			nm.AddNode(netmodel.Asia, 0),
		}
		if err := nw.AttachTransport(nm, addrs); err != nil {
			t.Fatalf("AttachTransport: %v", err)
		}
		for _, pair := range [][2]int{{0, 1}, {1, 2}} {
			if _, err := nw.OpenChannel(pair[0], pair[1], 1000); err != nil {
				t.Fatalf("OpenChannel: %v", err)
			}
		}
		for i := 0; i < 30; i++ {
			if !nw.Pay(0, 2, 1) {
				t.Fatal("payment failed")
			}
		}
		lat := nw.PaymentLatencies()
		return lat.Count(), lat.Mean()
	}
	losslessN, losslessMean := measure(0)
	if losslessN != 30 {
		t.Fatalf("lossless samples = %d, want 30", losslessN)
	}
	lossyN, lossyMean := measure(0.3)
	if lossyN == 0 {
		t.Fatal("moderate loss should still complete payments within the retry cap")
	}
	// Retransmission penalties mean a lossier WAN is never faster.
	if lossyMean <= losslessMean {
		t.Fatalf("loss sped up payments: %.3fs <= %.3fs", lossyMean, losslessMean)
	}
	// Total loss: every message exhausts the retry cap and no sample is
	// recorded, rather than a misleading near-zero latency.
	blackholeN, _ := measure(1)
	if blackholeN != 0 {
		t.Fatalf("samples under 100%% loss = %d, want 0", blackholeN)
	}
}

func TestAttachTransportRejectsForeignAddrs(t *testing.T) {
	s := sim.New(sim.WithSeed(1))
	nm := netmodel.New(s)
	nw, err := NewNetwork(2)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	a := nm.AddNode(netmodel.Europe, 0)
	if err := nw.AttachTransport(nm, []netmodel.NodeID{a, netmodel.NodeID(7)}); err == nil {
		t.Fatal("unattached address accepted")
	}
	if err := nw.AttachTransport(nm, []netmodel.NodeID{a, a}); err == nil {
		t.Fatal("duplicate address accepted")
	}
	b := nm.AddNode(netmodel.Europe, 0)
	if err := nw.AttachTransport(nm, []netmodel.NodeID{a, b}); err != nil {
		t.Fatalf("valid attach failed: %v", err)
	}
}
