// Package offchain models layer-2 payment-channel networks (Lightning-style),
// the scaling response the paper discusses in §III-C Problem 2: "the
// so-called layer 2 or off-chain solutions … follow this trend [toward more
// centralized designs]: transactions are processed by a much smaller set of
// peers to increase performance."
//
// The model captures both halves of that sentence: payment channels multiply
// effective throughput (only opens, closes and disputes touch the chain),
// and economically-routed payments concentrate onto a small set of
// well-capitalized hubs, re-centralizing the topology.
package offchain

import (
	"container/heap"
	"errors"
	"math"
	"time"

	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Channel is one bidirectional payment channel.
type Channel struct {
	// A and B are the endpoints; BalanceA/BalanceB their current sides of
	// the channel capacity.
	A, B               int
	BalanceA, BalanceB float64
}

// Capacity returns the channel's total locked funds.
func (c *Channel) Capacity() float64 { return c.BalanceA + c.BalanceB }

// balance returns node's side of the channel (0 if node is not a member).
func (c *Channel) balance(node int) float64 {
	switch node {
	case c.A:
		return c.BalanceA
	case c.B:
		return c.BalanceB
	default:
		return 0
	}
}

// shift moves amt from `from`'s side to the other side.
func (c *Channel) shift(from int, amt float64) {
	if from == c.A {
		c.BalanceA -= amt
		c.BalanceB += amt
	} else {
		c.BalanceB -= amt
		c.BalanceA += amt
	}
}

// other returns the counterparty of node.
func (c *Channel) other(node int) int {
	if node == c.A {
		return c.B
	}
	return c.A
}

// Network is a payment-channel network.
type Network struct {
	n        int
	channels []*Channel
	adj      [][]int // node -> channel indices

	// on-chain accounting: opens and closes are layer-1 transactions.
	chainTxs int
	payments int
	failed   int
	// routedVia counts payments forwarded through each node (hub load).
	routedVia []int64

	// WAN transport (AttachTransport): HTLC messages are charged on the
	// shared netmodel and end-to-end payment latency is sampled.
	net     *netmodel.Net
	addrs   []netmodel.NodeID
	latency metrics.Sample
}

// htlcMsgSize is the modelled wire size of one HTLC message (an
// update_add_htlc with its routing onion is ~1.4 KB in Lightning).
const htlcMsgSize = 1400

// AttachTransport routes payment traffic over the shared WAN transport:
// node i maps to addrs[i]. Subsequent Pay calls charge each hop's forward
// and settle HTLC messages on the Net (traffic accounting, loss and
// partitions included) and record the resulting end-to-end latency,
// retrievable via PaymentLatencies.
func (nw *Network) AttachTransport(nm *netmodel.Net, addrs []netmodel.NodeID) error {
	if nm == nil {
		return errors.New("offchain: nil transport")
	}
	if len(addrs) != nw.n {
		return errors.New("offchain: need one address per node")
	}
	seen := make(map[netmodel.NodeID]bool, len(addrs))
	for _, a := range addrs {
		if a < 0 || int(a) >= nm.Size() {
			return errors.New("offchain: address not attached to the transport")
		}
		if seen[a] {
			return errors.New("offchain: duplicate node address")
		}
		seen[a] = true
	}
	nw.net = nm
	nw.addrs = append([]netmodel.NodeID(nil), addrs...)
	return nil
}

// PaymentLatencies returns the sample of end-to-end payment latencies in
// seconds, populated only when a transport is attached.
func (nw *Network) PaymentLatencies() *metrics.Sample { return &nw.latency }

// htlcRetryCap bounds per-message retransmissions when the transport drops
// an HTLC message; payments whose messages never get through within the
// cap are excluded from the latency sample rather than recorded with a
// misleadingly small delay.
const htlcRetryCap = 10

// chargeHops accounts a completed payment's HTLC traffic on the transport:
// a forward message per hop along the path and a settle message per hop
// back, the sum being the payment's end-to-end latency. A message the
// transport drops (loss) is retried after the shared retry delay — channel
// state is already final by the time this runs; Lightning retransmits the
// message, it does not unwind the HTLC — so a lossier WAN makes payments
// slower, never faster. If a message exhausts the retry cap (a partition,
// or extreme loss), no latency sample is recorded for the payment.
func (nw *Network) chargeHops(src int, path []int) {
	var total time.Duration
	msg := func(a, b int) bool {
		for try := 0; try < htlcRetryCap; try++ {
			if d, ok := nw.net.Transfer(nw.addrs[a], nw.addrs[b], htlcMsgSize); ok {
				total += d
				return true
			}
			total += netmodel.DefaultRetryDelay
		}
		return false
	}
	cur := src
	for _, chIdx := range path {
		next := nw.channels[chIdx].other(cur)
		if !msg(cur, next) || !msg(next, cur) {
			return
		}
		cur = next
	}
	nw.latency.Add(total.Seconds())
}

// NewNetwork creates an empty network over n nodes.
func NewNetwork(n int) (*Network, error) {
	if n < 2 {
		return nil, errors.New("offchain: need at least two nodes")
	}
	return &Network{
		n:         n,
		adj:       make([][]int, n),
		routedVia: make([]int64, n),
	}, nil
}

// N returns the node count.
func (nw *Network) N() int { return nw.n }

// OpenChannel locks capacity/2 on each side between a and b; it costs one
// on-chain transaction.
func (nw *Network) OpenChannel(a, b int, capacity float64) (*Channel, error) {
	if a == b || a < 0 || b < 0 || a >= nw.n || b >= nw.n {
		return nil, errors.New("offchain: invalid endpoints")
	}
	if capacity <= 0 {
		return nil, errors.New("offchain: capacity must be positive")
	}
	c := &Channel{A: a, B: b, BalanceA: capacity / 2, BalanceB: capacity / 2}
	idx := len(nw.channels)
	nw.channels = append(nw.channels, c)
	nw.adj[a] = append(nw.adj[a], idx)
	nw.adj[b] = append(nw.adj[b], idx)
	nw.chainTxs++
	return c, nil
}

// CloseAll settles every channel on-chain (one transaction each) and
// returns the number of on-chain transactions the network consumed in
// total.
func (nw *Network) CloseAll() int {
	nw.chainTxs += len(nw.channels)
	nw.channels = nil
	for i := range nw.adj {
		nw.adj[i] = nil
	}
	return nw.chainTxs
}

// OnChainTxs returns layer-1 transactions consumed so far (opens + closes).
func (nw *Network) OnChainTxs() int { return nw.chainTxs }

// Payments returns successful off-chain payments routed.
func (nw *Network) Payments() int { return nw.payments }

// Failed returns payments that found no feasible route.
func (nw *Network) Failed() int { return nw.failed }

// HubShares returns each node's share of total forwarding events — the
// re-centralization metric.
func (nw *Network) HubShares() []float64 {
	out := make([]float64, nw.n)
	var total float64
	for _, v := range nw.routedVia {
		total += float64(v)
	}
	if total == 0 {
		return out
	}
	for i, v := range nw.routedVia {
		out[i] = float64(v) / total
	}
	return out
}

// HubConcentration summarizes routing centralization: the share of
// forwarding handled by the top-k intermediaries and the Gini coefficient.
func (nw *Network) HubConcentration(k int) (topK, gini float64) {
	shares := make([]float64, len(nw.routedVia))
	for i, v := range nw.routedVia {
		shares[i] = float64(v)
	}
	return metrics.TopShare(shares, k), metrics.Gini(shares)
}

// Pay routes amt from src to dst through the cheapest feasible path
// (Dijkstra over hop count; each hop must have amt of directed liquidity).
// On success it updates channel balances and forwarding counters.
func (nw *Network) Pay(src, dst int, amt float64) bool {
	if src == dst || src < 0 || dst < 0 || src >= nw.n || dst >= nw.n || amt <= 0 {
		nw.failed++
		return false
	}
	path := nw.route(src, dst, amt)
	if path == nil {
		nw.failed++
		return false
	}
	cur := src
	for _, chIdx := range path {
		ch := nw.channels[chIdx]
		ch.shift(cur, amt)
		next := ch.other(cur)
		if next != dst {
			nw.routedVia[next]++
		}
		cur = next
	}
	nw.payments++
	if nw.net != nil {
		nw.chargeHops(src, path)
	}
	return true
}

// route finds a min-hop path with per-hop liquidity >= amt.
type pqItem struct {
	node int
	dist int
}

type priorityQueue []pqItem

func (p priorityQueue) Len() int           { return len(p) }
func (p priorityQueue) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p priorityQueue) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *priorityQueue) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *priorityQueue) Pop() any {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

func (nw *Network) route(src, dst int, amt float64) []int {
	const inf = math.MaxInt32
	dist := make([]int, nw.n)
	prevCh := make([]int, nw.n)
	for i := range dist {
		dist[i] = inf
		prevCh[i] = -1
	}
	dist[src] = 0
	pq := &priorityQueue{{node: src}}
	for pq.Len() > 0 {
		it, ok := heap.Pop(pq).(pqItem)
		if !ok {
			break
		}
		if it.dist > dist[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		for _, chIdx := range nw.adj[it.node] {
			ch := nw.channels[chIdx]
			if ch.balance(it.node) < amt {
				continue // not enough directed liquidity
			}
			next := ch.other(it.node)
			if d := it.dist + 1; d < dist[next] {
				dist[next] = d
				prevCh[next] = chIdx
				heap.Push(pq, pqItem{node: next, dist: d})
			}
		}
	}
	if dist[dst] == inf {
		return nil
	}
	// Rebuild the path channel list from dst back to src.
	var rev []int
	for cur := dst; cur != src; {
		chIdx := prevCh[cur]
		if chIdx < 0 {
			return nil
		}
		rev = append(rev, chIdx)
		cur = nw.channels[chIdx].other(cur)
	}
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Topology builders for the two deployment shapes the paper contrasts.

// BuildHubTopology wires everyone to k hubs with large capacity — the shape
// economically-routed networks converge to.
func BuildHubTopology(nw *Network, hubs int, hubCapacity float64) error {
	if hubs < 1 || hubs >= nw.n {
		return errors.New("offchain: invalid hub count")
	}
	// Hubs interconnect fully.
	for i := 0; i < hubs; i++ {
		for j := i + 1; j < hubs; j++ {
			if _, err := nw.OpenChannel(i, j, hubCapacity*4); err != nil {
				return err
			}
		}
	}
	for i := hubs; i < nw.n; i++ {
		if _, err := nw.OpenChannel(i, i%hubs, hubCapacity); err != nil {
			return err
		}
	}
	return nil
}

// BuildMeshTopology wires a ring plus random chords with uniform capacity —
// the decentralized ideal.
func BuildMeshTopology(g *sim.RNG, nw *Network, degree int, capacity float64) error {
	if degree < 2 {
		return errors.New("offchain: degree must be >= 2")
	}
	for i := 0; i < nw.n; i++ {
		if _, err := nw.OpenChannel(i, (i+1)%nw.n, capacity); err != nil {
			return err
		}
	}
	extra := (degree - 2) * nw.n / 2
	for e := 0; e < extra; e++ {
		a, b := g.Intn(nw.n), g.Intn(nw.n)
		if a != b {
			// Duplicate channels are allowed; they just add liquidity.
			if _, err := nw.OpenChannel(a, b, capacity); err != nil {
				return err
			}
		}
	}
	return nil
}

// EffectiveTPSMultiplier returns how many payments the network settled per
// on-chain transaction consumed — the layer-2 throughput story.
func (nw *Network) EffectiveTPSMultiplier() float64 {
	if nw.chainTxs == 0 {
		return 0
	}
	return float64(nw.payments) / float64(nw.chainTxs)
}
