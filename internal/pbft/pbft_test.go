package pbft

import (
	"testing"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func newCluster(t *testing.T, n int, seed int64, cfg Config) (*sim.Sim, *Cluster) {
	t.Helper()
	s := sim.New(sim.WithSeed(seed))
	nm := netmodel.New(s, netmodel.WithJitter(0.1))
	c, err := NewCluster(s, nm, n, netmodel.Europe, cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return s, c
}

func TestValidation(t *testing.T) {
	s := sim.New()
	nm := netmodel.New(s)
	if _, err := NewCluster(s, nm, 3, netmodel.Europe, Config{}); err == nil {
		t.Fatal("n=3 should error (not 3f+1)")
	}
	if _, err := NewCluster(s, nm, 5, netmodel.Europe, Config{}); err == nil {
		t.Fatal("n=5 should error (not 3f+1)")
	}
	if _, err := NewCluster(s, nm, 4, netmodel.Europe, Config{}); err != nil {
		t.Fatalf("n=4 should work: %v", err)
	}
}

func TestBasicCommit(t *testing.T) {
	s, c := newCluster(t, 4, 1, Config{BatchSize: 1})
	c.Submit(Request{ID: 1, SubmittedAt: s.Now()})
	if err := s.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.Committed() != 1 {
		t.Fatalf("Committed = %d, want 1", c.Committed())
	}
	// All live replicas execute the same sequence.
	for _, r := range c.Replicas() {
		if r.LastExecuted() != 0 {
			t.Fatalf("replica %d LastExecuted = %d, want 0", r.ID(), r.LastExecuted())
		}
	}
}

func TestBatchingAmortizesMessages(t *testing.T) {
	run := func(batch int) float64 {
		s, c := newCluster(t, 4, 2, Config{BatchSize: batch, BatchTimeout: 10 * time.Millisecond})
		st, err := c.RunLoad(500, 10*time.Second)
		if err != nil {
			t.Fatalf("RunLoad: %v", err)
		}
		_ = s
		return st.MsgsPerReq
	}
	single := run(1)
	batched := run(100)
	if batched*5 > single {
		t.Fatalf("batching should slash per-request messages: batch1=%v batch100=%v", single, batched)
	}
}

func TestThroughputFarAboveBitcoin(t *testing.T) {
	s, c := newCluster(t, 4, 3, Config{BatchSize: 200, BatchTimeout: 20 * time.Millisecond})
	st, err := c.RunLoad(2000, 20*time.Second)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	_ = s
	if st.TPS < 1500 {
		t.Fatalf("TPS = %v, want ~2000 (hundreds of times Bitcoin's 7)", st.TPS)
	}
	if st.MeanLatency > time.Second {
		t.Fatalf("mean latency = %v, want sub-second finality", st.MeanLatency)
	}
}

func TestSubSecondFinality(t *testing.T) {
	s, c := newCluster(t, 7, 4, Config{BatchSize: 10, BatchTimeout: 10 * time.Millisecond})
	st, err := c.RunLoad(100, 10*time.Second)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	_ = s
	if st.P99Latency > time.Second {
		t.Fatalf("P99 latency = %v, want < 1s", st.P99Latency)
	}
}

func TestSurvivesFBackupCrashes(t *testing.T) {
	s, c := newCluster(t, 7, 5, Config{BatchSize: 1}) // f = 2
	c.Crash(3)
	c.Crash(5)
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Duration(i)*100*time.Millisecond, func() {
			c.Submit(Request{ID: i, SubmittedAt: s.Now()})
		})
	}
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.Committed() != 10 {
		t.Fatalf("Committed = %d with f crashes, want 10", c.Committed())
	}
}

func TestPrimaryCrashTriggersViewChange(t *testing.T) {
	s, c := newCluster(t, 4, 6, Config{BatchSize: 1, ViewChangeTimeout: 500 * time.Millisecond})
	c.Crash(0) // primary of view 0
	c.Submit(Request{ID: 1, SubmittedAt: s.Now()})
	// Resubmit after the view change, as real clients do.
	s.After(3*time.Second, func() {
		c.Submit(Request{ID: 2, SubmittedAt: s.Now()})
	})
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.ViewChanges() == 0 {
		t.Fatal("no view change despite crashed primary")
	}
	live := c.Replicas()[1]
	if live.View() == 0 {
		t.Fatal("replicas did not move past view 0")
	}
	if c.Committed() == 0 {
		t.Fatal("no commits after failover")
	}
}

func TestEquivocatingPrimaryCannotSplitState(t *testing.T) {
	s, c := newCluster(t, 4, 7, Config{BatchSize: 1, ViewChangeTimeout: time.Hour})
	c.MakeEquivocating(0)
	var executions []struct {
		replica, seq int
		digest       int
	}
	c.OnExecute(func(replica, seq int, batch []Request) {
		d := -1
		if len(batch) > 0 {
			d = batch[0].ID
		}
		executions = append(executions, struct {
			replica, seq int
			digest       int
		}{replica, seq, d})
	})
	c.Submit(Request{ID: 42, SubmittedAt: s.Now()})
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Safety: no two replicas may execute different requests at the same
	// sequence number. (Liveness may be lost — that is what view changes
	// are for.)
	bySeq := make(map[int]int)
	for _, e := range executions {
		if prev, ok := bySeq[e.seq]; ok && prev != e.digest {
			t.Fatalf("safety violation: seq %d executed both %d and %d", e.seq, prev, e.digest)
		}
		bySeq[e.seq] = e.digest
	}
}

func TestMessageComplexityQuadratic(t *testing.T) {
	msgs := func(n int) float64 {
		s, c := newCluster(t, n, 8, Config{BatchSize: 1})
		c.Submit(Request{ID: 1, SubmittedAt: s.Now()})
		if err := s.RunUntil(5 * time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if c.Committed() != 1 {
			t.Fatalf("n=%d: Committed = %d", n, c.Committed())
		}
		return float64(c.Messages())
	}
	small := msgs(4)
	big := msgs(16)
	// 16/4 = 4x replicas should cost ~16x messages (O(n^2)).
	ratio := big / small
	if ratio < 8 {
		t.Fatalf("message growth ratio = %v, want quadratic (~16x for 4x nodes)", ratio)
	}
}

func TestRecoverRejoins(t *testing.T) {
	s, c := newCluster(t, 4, 9, Config{BatchSize: 1})
	c.Crash(2)
	c.Submit(Request{ID: 1, SubmittedAt: s.Now()})
	s.After(2*time.Second, func() {
		c.Recover(2)
		c.Submit(Request{ID: 2, SubmittedAt: s.Now()})
	})
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.Committed() != 2 {
		t.Fatalf("Committed = %d, want 2", c.Committed())
	}
	// The recovered replica participates in the second slot.
	if c.Replicas()[2].LastExecuted() < 0 {
		t.Fatal("recovered replica executed nothing")
	}
}

func TestRunLoadValidation(t *testing.T) {
	_, c := newCluster(t, 4, 10, Config{})
	if _, err := c.RunLoad(0, time.Second); err == nil {
		t.Fatal("zero rate should error")
	}
}
