// Package pbft implements Practical Byzantine Fault Tolerance (Castro &
// Liskov 1999) with request batching in the style of BFT-SMaRt — the
// consensus core of permissioned blockchains like Hyperledger Fabric's BFT
// ordering service.
//
// n = 3f+1 replicas tolerate f Byzantine failures. The three-phase protocol
// (pre-prepare, prepare, commit) costs O(n²) messages per batch, which is
// exactly why permissioned deployments keep n in the tens — and why, at
// that scale, they outrun permissionless PoW by orders of magnitude (E13).
package pbft

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Config parameterizes the replica group.
type Config struct {
	// BatchSize is the number of client requests ordered per consensus
	// instance (BFT-SMaRt-style batching).
	BatchSize int
	// BatchTimeout flushes a non-empty partial batch.
	BatchTimeout time.Duration
	// ViewChangeTimeout is how long a replica waits for progress on a
	// pending request before demanding a new primary.
	ViewChangeTimeout time.Duration
	// ReqSize is the client-request payload size; protocol messages add
	// fixed overhead.
	ReqSize int
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 50 * time.Millisecond
	}
	if c.ViewChangeTimeout <= 0 {
		c.ViewChangeTimeout = 2 * time.Second
	}
	if c.ReqSize <= 0 {
		c.ReqSize = 200
	}
	return c
}

// instance is one consensus slot at one replica. Votes may arrive before
// the pre-prepare (a "shell" instance); flags keep every transition
// idempotent.
type instance struct {
	view        int
	digest      uint64
	batch       []Request
	preprepared bool
	sentPrepare bool
	sentCommit  bool
	committed   bool
	executed    bool
	prepares    map[int]bool
	commits     map[int]bool
}

// Request is a client request being ordered.
type Request struct {
	ID          int
	SubmittedAt time.Duration
}

// Replica is one PBFT participant.
type Replica struct {
	id      int
	addr    netmodel.NodeID
	view    int
	nextSeq int // primary only
	log     map[int]*instance
	lastExe int

	pending      []Request // primary's batch buffer
	batchTimer   sim.Handle
	progressT    sim.Handle
	vcVotes      map[int]map[int]bool // view -> voters
	crashed      bool
	byzantineMut bool // equivocating primary behaviour
}

// ID returns the replica id.
func (r *Replica) ID() int { return r.id }

// View returns the replica's current view number.
func (r *Replica) View() int { return r.view }

// LastExecuted returns the highest contiguously executed sequence number.
func (r *Replica) LastExecuted() int { return r.lastExe }

// Cluster is a PBFT replica group over a simulated network.
type Cluster struct {
	sim *sim.Sim
	net *netmodel.Net
	cfg Config
	f   int

	replicas []*Replica

	// execution observation
	onExecute func(replica int, seq int, batch []Request)

	committed     int
	commitLatency []time.Duration
	msgs          int64
	bytes         int64
	viewChanges   int
}

// NewCluster creates n = 3f+1 replicas in the given region. n must satisfy
// n >= 4 and n ≡ 1 (mod 3).
func NewCluster(s *sim.Sim, nm *netmodel.Net, n int, region netmodel.Region, cfg Config) (*Cluster, error) {
	if n < 4 || (n-1)%3 != 0 {
		return nil, fmt.Errorf("pbft: n must be 3f+1 with f >= 1, got %d", n)
	}
	c := &Cluster{
		sim: s,
		net: nm,
		cfg: cfg.withDefaults(),
		f:   (n - 1) / 3,
	}
	for i := 0; i < n; i++ {
		c.replicas = append(c.replicas, &Replica{
			id:      i,
			addr:    nm.AddNode(region, 0),
			log:     make(map[int]*instance),
			lastExe: -1,
			vcVotes: make(map[int]map[int]bool),
		})
	}
	return c, nil
}

// N returns the replica count.
func (c *Cluster) N() int { return len(c.replicas) }

// F returns the fault tolerance.
func (c *Cluster) F() int { return c.f }

// Replicas returns the replicas (shared slice; do not modify).
func (c *Cluster) Replicas() []*Replica { return c.replicas }

// Committed returns the number of requests executed by the primary's view
// of the log (counted once per request at first execution anywhere).
func (c *Cluster) Committed() int { return c.committed }

// Messages returns total protocol messages sent.
func (c *Cluster) Messages() int64 { return c.msgs }

// Bytes returns total protocol bytes sent.
func (c *Cluster) Bytes() int64 { return c.bytes }

// ViewChanges returns how many view changes completed.
func (c *Cluster) ViewChanges() int { return c.viewChanges }

// CommitLatencies returns per-request submit-to-execute latencies.
func (c *Cluster) CommitLatencies() []time.Duration { return c.commitLatency }

// OnExecute registers an observer of batch executions.
func (c *Cluster) OnExecute(fn func(replica, seq int, batch []Request)) { c.onExecute = fn }

// Crash stops a replica (fail-silent).
func (c *Cluster) Crash(id int) {
	if id >= 0 && id < len(c.replicas) {
		c.replicas[id].crashed = true
		c.net.SetUp(c.replicas[id].addr, false)
	}
}

// Recover restarts a crashed replica: it rejoins with its log intact and
// fetches missed committed state from the most advanced live peer (the
// checkpoint/state-transfer mechanism, modelled as one bulk fetch).
func (c *Cluster) Recover(id int) {
	if id < 0 || id >= len(c.replicas) {
		return
	}
	r := c.replicas[id]
	r.crashed = false
	c.net.SetUp(r.addr, true)
	var donor *Replica
	for _, peer := range c.replicas {
		if peer == r || peer.crashed {
			continue
		}
		if donor == nil || peer.lastExe > donor.lastExe {
			donor = peer
		}
	}
	if donor == nil || donor.lastExe <= r.lastExe {
		return
	}
	size := 0
	for seq := r.lastExe + 1; seq <= donor.lastExe; seq++ {
		if inst, ok := donor.log[seq]; ok {
			size += c.cfg.ReqSize*len(inst.batch) + 64
		}
	}
	from := donor
	c.send(from, r, size, func() {
		for seq := r.lastExe + 1; seq <= from.lastExe; seq++ {
			src, ok := from.log[seq]
			if !ok || !src.executed {
				continue
			}
			inst := c.ensureInstance(r, seq, src.view, src.digest)
			inst.preprepared = true
			inst.batch = src.batch
			inst.committed = true
		}
		if r.view < from.view {
			r.view = from.view
		}
		c.tryExecute(r)
	})
}

// MakeEquivocating marks a replica so that, as primary, it sends different
// batches to different replicas — the classic Byzantine primary. PBFT's
// prepare phase must prevent conflicting commits.
func (c *Cluster) MakeEquivocating(id int) {
	if id >= 0 && id < len(c.replicas) {
		c.replicas[id].byzantineMut = true
	}
}

// primary returns the primary for a view.
func (c *Cluster) primary(view int) *Replica {
	return c.replicas[view%len(c.replicas)]
}

// Submit hands a client request to the current primary.
func (c *Cluster) Submit(req Request) {
	p := c.primary(c.replicas[0].view) // clients track the lowest view
	// Use the view of a quorum instead: take the median view.
	p = c.primary(c.medianView())
	if p.crashed {
		// Client broadcasts to all on suspicion; replicas forward to the
		// primary and start progress timers (simplified: start timers).
		for _, r := range c.replicas {
			c.ensureProgressTimer(r)
		}
		return
	}
	p.pending = append(p.pending, req)
	for _, r := range c.replicas {
		c.ensureProgressTimer(r)
	}
	if len(p.pending) >= c.cfg.BatchSize {
		c.flushBatch(p)
		return
	}
	if !p.batchTimer.Scheduled() {
		p.batchTimer = c.sim.After(c.cfg.BatchTimeout, func() { c.flushBatch(p) })
	}
}

func (c *Cluster) medianView() int {
	views := make([]int, 0, len(c.replicas))
	for _, r := range c.replicas {
		views = append(views, r.view)
	}
	for i := 1; i < len(views); i++ {
		for j := i; j > 0 && views[j] < views[j-1]; j-- {
			views[j], views[j-1] = views[j-1], views[j]
		}
	}
	return views[len(views)/2]
}

// flushBatch starts consensus on the primary's pending batch.
func (c *Cluster) flushBatch(p *Replica) {
	p.batchTimer.Cancel()
	if p.crashed || len(p.pending) == 0 || c.primary(p.view) != p {
		return
	}
	batch := p.pending
	p.pending = nil
	seq := p.nextSeq
	p.nextSeq++
	digest := batchDigest(p.view, seq, batch, 0)
	size := c.cfg.ReqSize*len(batch) + 64
	for _, r := range c.replicas {
		if r == p {
			continue
		}
		r := r
		d := digest
		b := batch
		if p.byzantineMut && r.id%2 == 1 {
			// Equivocate: odd replicas get a different batch.
			d = batchDigest(p.view, seq, batch, 1)
			b = nil
		}
		view := p.view
		c.send(p, r, size, func() { c.onPrePrepare(r, view, seq, d, b) })
	}
	// The primary pre-prepares locally; its prepare vote is implicit in
	// the pre-prepare.
	c.onPrePrepare(p, p.view, seq, digest, batch)
}

func batchDigest(view, seq int, batch []Request, variant int) uint64 {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mix(uint64(view))
	mix(uint64(seq))
	mix(uint64(variant))
	for _, r := range batch {
		mix(uint64(r.ID))
	}
	return h
}

func (c *Cluster) ensureInstance(r *Replica, seq int, view int, digest uint64) *instance {
	inst, ok := r.log[seq]
	if !ok {
		inst = &instance{
			view:     view,
			digest:   digest,
			prepares: make(map[int]bool),
			commits:  make(map[int]bool),
		}
		r.log[seq] = inst
	}
	return inst
}

// send transmits one protocol message with accounting.
func (c *Cluster) send(from, to *Replica, size int, deliver func()) {
	c.msgs++
	c.bytes += int64(size)
	c.net.Send(from.addr, to.addr, size, func() {
		if to.crashed {
			return
		}
		deliver()
	})
}

// onPrePrepare handles the primary's proposal (including the primary's own
// local acceptance).
func (c *Cluster) onPrePrepare(r *Replica, view, seq int, digest uint64, batch []Request) {
	if r.crashed || view < r.view {
		return
	}
	inst, ok := r.log[seq]
	if ok && inst.preprepared && inst.digest != digest {
		// Conflicting proposal for an accepted slot: ignore (and in full
		// PBFT, report). The first accepted pre-prepare wins this
		// replica's prepare vote.
		return
	}
	if ok && inst.digest != digest {
		// Shell instance built from early votes of a different digest:
		// discard those votes and adopt the primary's proposal.
		inst.digest = digest
		inst.prepares = make(map[int]bool)
		inst.commits = make(map[int]bool)
	}
	inst = c.ensureInstance(r, seq, view, digest)
	inst.preprepared = true
	inst.batch = batch
	c.advance(r, view, seq, inst)
}

// advance fires any protocol transition the instance is now eligible for.
func (c *Cluster) advance(r *Replica, view, seq int, inst *instance) {
	if inst.preprepared && !inst.sentPrepare {
		inst.sentPrepare = true
		c.broadcastPhase(r, view, seq, inst.digest, "prepare")
	}
	// prepared: pre-prepare + 2f matching prepares (own vote included).
	if inst.preprepared && inst.sentPrepare && !inst.sentCommit && len(inst.prepares) >= 2*c.f {
		inst.sentCommit = true
		c.broadcastPhase(r, view, seq, inst.digest, "commit")
	}
	// committed-local: prepared + 2f+1 commits.
	if inst.sentCommit && !inst.committed && len(inst.commits) >= 2*c.f+1 {
		inst.committed = true
		c.tryExecute(r)
	}
}

// broadcastPhase sends PREPARE or COMMIT votes to all peers (including a
// self-delivery, applied synchronously).
func (c *Cluster) broadcastPhase(r *Replica, view, seq int, digest uint64, kind string) {
	const voteSize = 96
	for _, peer := range c.replicas {
		peer := peer
		if peer == r {
			c.onVote(r, r.id, view, seq, digest, kind)
			continue
		}
		c.send(r, peer, voteSize, func() { c.onVote(peer, r.id, view, seq, digest, kind) })
	}
}

// onVote processes a PREPARE or COMMIT vote at a replica.
func (c *Cluster) onVote(r *Replica, from, view, seq int, digest uint64, kind string) {
	if r.crashed || view < r.view {
		return
	}
	// Votes arriving before the pre-prepare create a shell instance bound
	// to the digest; onPrePrepare upgrades it later.
	inst := c.ensureInstance(r, seq, view, digest)
	if inst.digest != digest {
		return
	}
	switch kind {
	case "prepare":
		inst.prepares[from] = true
	case "commit":
		inst.commits[from] = true
	}
	c.advance(r, view, seq, inst)
}

// tryExecute runs committed instances in sequence order.
func (c *Cluster) tryExecute(r *Replica) {
	for {
		inst, ok := r.log[r.lastExe+1]
		if !ok || !inst.committed || inst.executed {
			return
		}
		inst.executed = true
		r.lastExe++
		r.progressT.Cancel()
		r.progressT = sim.Handle{}
		if c.onExecute != nil {
			c.onExecute(r.id, r.lastExe, inst.batch)
		}
		// Count each request once, at its first execution anywhere.
		if r.id == c.firstExecutor(r.lastExe) {
			now := c.sim.Now()
			for _, req := range inst.batch {
				c.committed++
				c.commitLatency = append(c.commitLatency, now-req.SubmittedAt)
			}
		}
	}
}

// firstExecutor returns the replica designated to account a sequence
// number's requests (the lowest-id live replica).
func (c *Cluster) firstExecutor(seq int) int {
	for _, r := range c.replicas {
		if !r.crashed {
			return r.id
		}
	}
	return 0
}

// ensureProgressTimer arms the view-change timer if not already pending.
func (c *Cluster) ensureProgressTimer(r *Replica) {
	if r.crashed || !r.progressT.IsZero() {
		return
	}
	r.progressT = c.sim.After(c.cfg.ViewChangeTimeout, func() { c.startViewChange(r) })
}

// startViewChange broadcasts a VIEW-CHANGE vote for the next view.
func (c *Cluster) startViewChange(r *Replica) {
	if r.crashed {
		return
	}
	next := r.view + 1
	const vcSize = 256
	for _, peer := range c.replicas {
		peer := peer
		if peer == r {
			c.onViewChange(r, r.id, next)
			continue
		}
		c.send(r, peer, vcSize, func() { c.onViewChange(peer, r.id, next) })
	}
}

// onViewChange tallies votes; 2f+1 votes move the replica into the new view.
func (c *Cluster) onViewChange(r *Replica, from, view int) {
	if r.crashed || view <= r.view {
		return
	}
	votes, ok := r.vcVotes[view]
	if !ok {
		votes = make(map[int]bool)
		r.vcVotes[view] = votes
	}
	votes[from] = true
	if len(votes) >= 2*c.f+1 {
		r.view = view
		r.progressT = sim.Handle{}
		c.viewChanges++
		if c.primary(view) == r {
			// New primary resumes: adopt the highest sequence it knows and
			// re-propose nothing (pending requests are resubmitted by
			// clients in this model).
			max := -1
			for seq := range r.log {
				if seq > max {
					max = seq
				}
			}
			r.nextSeq = max + 1
		}
	}
}

// Errors for the throughput harness.
var errNotRun = errors.New("pbft: load run produced no commits")

// LoadStats summarizes a load run.
type LoadStats struct {
	Committed   int
	TPS         float64
	MeanLatency time.Duration
	P99Latency  time.Duration
	MsgsPerReq  float64
	ViewChanges int
}

// RunLoad drives the cluster with requests at the given rate for the given
// duration and reports throughput and latency.
func (c *Cluster) RunLoad(rate float64, duration time.Duration) (LoadStats, error) {
	if rate <= 0 || duration <= 0 {
		return LoadStats{}, errors.New("pbft: rate and duration must be positive")
	}
	rng := c.sim.Stream("pbft.load")
	mean := time.Duration(float64(time.Second) / rate)
	id := 0
	var submit func()
	submit = func() {
		if c.sim.Now() >= duration {
			return
		}
		c.Submit(Request{ID: id, SubmittedAt: c.sim.Now()})
		id++
		c.sim.After(rng.ExpDuration(mean), submit)
	}
	submit()
	if err := c.sim.RunUntil(duration + 10*time.Second); err != nil {
		return LoadStats{}, err
	}
	if c.committed == 0 {
		return LoadStats{}, errNotRun
	}
	var sum time.Duration
	sample := make([]time.Duration, len(c.commitLatency))
	copy(sample, c.commitLatency)
	for _, d := range sample {
		sum += d
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	st := LoadStats{
		Committed:   c.committed,
		TPS:         float64(c.committed) / duration.Seconds(),
		MeanLatency: sum / time.Duration(len(sample)),
		P99Latency:  sample[(len(sample)-1)*99/100],
		ViewChanges: c.viewChanges,
	}
	if id > 0 {
		st.MsgsPerReq = float64(c.msgs) / float64(id)
	}
	return st, nil
}
