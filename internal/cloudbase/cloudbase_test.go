package cloudbase

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestValidation(t *testing.T) {
	s := sim.New()
	if _, err := NewCluster(s, Config{Shards: 0}); err == nil {
		t.Fatal("zero shards should error")
	}
	if _, err := NewCluster(s, Config{Shards: 4, CrossShardFrac: 2}); err == nil {
		t.Fatal("bad cross-shard fraction should error")
	}
	c, err := NewCluster(s, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(0, time.Second); err == nil {
		t.Fatal("zero rate should error")
	}
}

func TestCapacityScalesWithShards(t *testing.T) {
	small := Config{Shards: 4, ServiceTime: time.Millisecond}
	big := Config{Shards: 64, ServiceTime: time.Millisecond}
	if big.CapacityTPS() != 16*small.CapacityTPS() {
		t.Fatalf("capacity should scale linearly: %v vs %v", small.CapacityTPS(), big.CapacityTPS())
	}
	// 64 shards at 1ms service: 64k tps ceiling, comfortably above VISA's
	// 24k — the cloud side of E6.
	if big.CapacityTPS() < 24_000 {
		t.Fatalf("64-shard capacity = %v, want >= 24000", big.CapacityTPS())
	}
}

func TestUnderloadLowLatency(t *testing.T) {
	s := sim.New(sim.WithSeed(1))
	c, err := NewCluster(s, Config{Shards: 64, ServiceTime: time.Millisecond, CrossShardFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run(24_000, 10*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if float64(st.Completed) < 0.99*float64(st.Offered) {
		t.Fatalf("completed %d of %d offered", st.Completed, st.Offered)
	}
	if st.TPS < 20_000 {
		t.Fatalf("TPS = %v, want ~24000", st.TPS)
	}
	if st.P99 > 100*time.Millisecond {
		t.Fatalf("P99 = %v, want low-latency under 50%% load", st.P99)
	}
}

func TestOverloadSaturates(t *testing.T) {
	s := sim.New(sim.WithSeed(2))
	cfg := Config{Shards: 8, ServiceTime: time.Millisecond, CrossShardFrac: 0.1}
	c, err := NewCluster(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Offer 3x capacity.
	st, err := c.Run(3*cfg.CapacityTPS(), 5*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Throughput is pinned near capacity and latency blows up.
	if st.TPS > 1.3*cfg.CapacityTPS() {
		t.Fatalf("TPS %v exceeds capacity %v", st.TPS, cfg.CapacityTPS())
	}
	if st.P99 < 100*time.Millisecond {
		t.Fatalf("P99 = %v, want queueing blow-up under overload", st.P99)
	}
	if st.MeanQueue < 10 {
		t.Fatalf("MeanQueue = %v, want a deep backlog", st.MeanQueue)
	}
}

func TestCrossShardCostsCapacity(t *testing.T) {
	none := Config{Shards: 16, ServiceTime: time.Millisecond, CrossShardFrac: 0}
	half := Config{Shards: 16, ServiceTime: time.Millisecond, CrossShardFrac: 0.5}
	if none.CapacityTPS() <= half.CapacityTPS() {
		t.Fatal("cross-shard transactions must reduce capacity")
	}
}

func TestSingleShardDegenerate(t *testing.T) {
	s := sim.New(sim.WithSeed(3))
	c, err := NewCluster(s, Config{Shards: 1, ServiceTime: time.Millisecond, CrossShardFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run(100, time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Completed == 0 {
		t.Fatal("single-shard cluster processed nothing")
	}
}
