// Package cloudbase models the system the paper holds up as the
// permissionless blockchain's foil: a trusted, shared-nothing, partitioned
// transaction processor (the VISA-style cloud OLTP cluster). Each shard is a
// server that processes transactions serially; keys are hash-partitioned;
// cross-shard transactions occupy two shards plus a commit round trip.
//
// Because shards only process their own partition — instead of every node
// validating every transaction as in a broadcast blockchain — capacity
// scales linearly with the shard count. That contrast is experiment E6.
package cloudbase

import (
	"errors"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config parameterizes the cluster.
type Config struct {
	// Shards is the number of partitions.
	Shards int
	// ServiceTime is the per-transaction processing time at one shard.
	ServiceTime time.Duration
	// CrossShardFrac is the fraction of transactions touching two shards.
	CrossShardFrac float64
	// CommitRTT is the extra coordination latency for cross-shard commits.
	CommitRTT time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards <= 0 {
		return c, errors.New("cloudbase: need at least one shard")
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = time.Millisecond
	}
	if c.CrossShardFrac < 0 || c.CrossShardFrac > 1 {
		return c, errors.New("cloudbase: CrossShardFrac must be in [0,1]")
	}
	if c.CommitRTT <= 0 {
		c.CommitRTT = 2 * time.Millisecond
	}
	return c, nil
}

// CapacityTPS returns the theoretical throughput ceiling: each cross-shard
// transaction consumes two shard-slots.
func (c Config) CapacityTPS() float64 {
	cfg, err := c.withDefaults()
	if err != nil {
		return 0
	}
	perShard := 1 / cfg.ServiceTime.Seconds()
	return float64(cfg.Shards) * perShard / (1 + cfg.CrossShardFrac)
}

// Stats reports a load run.
type Stats struct {
	// Offered and Completed count transactions submitted and finished.
	Offered, Completed int
	// TPS is completed transactions per second of simulated time.
	TPS float64
	// P50 and P99 are latency percentiles.
	P50, P99 time.Duration
	// MeanQueue is the average backlog observed at submission.
	MeanQueue float64
}

// Cluster is a simulated sharded transaction processor.
type Cluster struct {
	sim *sim.Sim
	cfg Config
	rng *sim.RNG

	// nextFree is each shard's earliest idle time.
	nextFree []time.Duration

	offered   int
	completed int
	inWindow  int
	horizon   time.Duration
	latency   metrics.Sample
	queueObs  metrics.Summary
}

// NewCluster creates an idle cluster.
func NewCluster(s *sim.Sim, cfg Config) (*Cluster, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Cluster{
		sim:      s,
		cfg:      cfg,
		rng:      s.Stream("cloudbase"),
		nextFree: make([]time.Duration, cfg.Shards),
	}, nil
}

// Submit enqueues one transaction for the shard owning key. It returns the
// predicted completion time.
func (c *Cluster) Submit(key uint64) time.Duration {
	c.offered++
	now := c.sim.Now()
	shard := int(key % uint64(c.cfg.Shards))
	cross := c.rng.Bool(c.cfg.CrossShardFrac)

	// Queue depth proxy: how far ahead of now the shard is booked.
	backlog := float64(c.nextFree[shard]-now) / float64(c.cfg.ServiceTime)
	if backlog < 0 {
		backlog = 0
	}
	c.queueObs.Add(backlog)

	// Each shard serves its sub-transaction independently; a cross-shard
	// transaction completes when both halves have and the commit round
	// trip is paid. Shards are not held across the commit (early lock
	// release), so no convoy forms.
	serve := func(sh int) time.Duration {
		done := maxDur(now, c.nextFree[sh]) + c.cfg.ServiceTime
		c.nextFree[sh] = done
		return done
	}
	done := serve(shard)
	if cross {
		other := shard
		if c.cfg.Shards > 1 {
			other = (shard + 1 + c.rng.Intn(c.cfg.Shards-1)) % c.cfg.Shards
		}
		done = maxDur(done, serve(other)) + c.cfg.CommitRTT
	}
	c.sim.At(done, func() {
		c.completed++
		if c.horizon <= 0 || done <= c.horizon {
			c.inWindow++
		}
		c.latency.AddDuration(done - now)
	})
	return done
}

// Run offers load at the given rate for the given duration and returns the
// measured statistics after the queues drain.
func (c *Cluster) Run(offeredTPS float64, duration time.Duration) (Stats, error) {
	if offeredTPS <= 0 || duration <= 0 {
		return Stats{}, errors.New("cloudbase: offered rate and duration must be positive")
	}
	c.horizon = duration
	mean := time.Duration(float64(time.Second) / offeredTPS)
	var submit func()
	submit = func() {
		if c.sim.Now() >= duration {
			return
		}
		c.Submit(c.rng.Uint64())
		c.sim.After(c.rng.ExpDuration(mean), submit)
	}
	submit()
	if err := c.sim.Run(); err != nil {
		return Stats{}, err
	}
	st := Stats{
		Offered:   c.offered,
		Completed: c.completed,
		P50:       time.Duration(c.latency.Percentile(50) * float64(time.Second)),
		P99:       time.Duration(c.latency.Percentile(99) * float64(time.Second)),
		MeanQueue: c.queueObs.Mean(),
	}
	if d := duration.Seconds(); d > 0 {
		// Throughput counts only completions inside the measurement
		// window, excluding the post-horizon queue drain.
		st.TPS = float64(c.inWindow) / d
	}
	return st, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
