package obs

import "math/bits"

// numBuckets bounds the bucket array: 8 exact buckets for values 0..7 plus
// 4 sub-buckets per power of two up to 2^63.
const numBuckets = 8 + 61*4

// Histogram is a constant-memory streaming histogram over non-negative
// int64 samples (latencies in nanoseconds, queue depths, sizes).
//
// Bucketing is log-scaled with 4 sub-buckets per octave — about ±12 %
// relative error on quantiles — and is computed with pure integer bit
// arithmetic (bits.Len64), never floating-point logarithms, so two runs
// observing the same samples always fill exactly the same buckets on every
// platform. Values 0..7 get exact unit buckets; negative samples clamp
// to 0.
type Histogram struct {
	name    string
	count   uint64
	sum     int64
	min     int64
	max     int64
	buckets [numBuckets]uint64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	u := uint64(v)
	if u < 8 {
		return int(u)
	}
	l := bits.Len64(u)                   // 4..64 here
	sub := int((u >> (uint(l) - 3)) & 3) // the two bits after the leading one
	return 8 + (l-4)*4 + sub
}

// bucketBounds returns the half-open value range [lo, hi) of a bucket.
func bucketBounds(b int) (lo, hi int64) {
	if b < 8 {
		return int64(b), int64(b) + 1
	}
	l := (b-8)/4 + 4
	sub := (b - 8) % 4
	lo = int64(4+sub) << (uint(l) - 3)
	hi = lo + (int64(1) << (uint(l) - 3))
	return lo, hi
}

// Observe records one sample. Nil-safe; zero allocations.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile returns the q-th quantile (q in [0,1]) by linear interpolation
// inside the containing bucket, clamped to the observed min/max so the
// tails never report values outside the population.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// rank is the 1-based index of the sample we want.
	rank := uint64(q*float64(h.count-1)) + 1
	var seen uint64
	for b := 0; b < numBuckets; b++ {
		n := h.buckets[b]
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo, hi := bucketBounds(b)
			// Position of the wanted sample inside this bucket, in (0,1].
			frac := float64(rank-seen) / float64(n)
			v := lo + int64(frac*float64(hi-lo))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		seen += n
	}
	return h.max
}
