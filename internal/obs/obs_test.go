package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	ctr := c.Counter("x")
	g := c.Gauge("y")
	h := c.Histogram("z")
	tr := c.Trace()
	if ctr != nil || g != nil || h != nil || tr != nil {
		t.Fatal("nil collector must hand out nil instruments")
	}
	// Every recording call must be a safe no-op and allocate nothing.
	avg := testing.AllocsPerRun(100, func() {
		ctr.Add(3, 1, 1)
		g.Set(7)
		g.Add(1)
		h.Observe(42)
		tr.Emit(TraceEvent{Name: "e"})
		tr.Span("s", "c", 0, 10, 1, "a", 1, "", 0)
		tr.Instant("i", "c", 5, 2, "k", 9)
	})
	if avg != 0 {
		t.Fatalf("nil-instrument recording allocates %.1f per run, want 0", avg)
	}
	if s := c.Snapshot(); s.Sim.Fired != 0 || len(s.Counters) != 0 {
		t.Fatalf("nil snapshot not zero: %+v", s)
	}
	c.SetNodeSpace(10)
	c.SetRegions([]string{"a"})
	c.AttachSim(nil)
}

func TestCounterLanes(t *testing.T) {
	c := NewCollector(WithRegions("all", "NA", "EU"))
	c.SetNodeSpace(8)
	sent := c.Counter("sent")
	sent.Add(0, 1, 2)  // range n0-1, NA
	sent.Add(7, 2, 5)  // range n6-7, EU
	sent.Add(7, 99, 1) // out-of-range region clamps to 0 ("all")
	if got := sent.Total(); got != 8 {
		t.Fatalf("total = %d, want 8", got)
	}
	snap := c.Snapshot()
	if len(snap.Counters) != 1 {
		t.Fatalf("counters = %d, want 1", len(snap.Counters))
	}
	lanes := snap.Counters[0].Lanes
	want := map[string]uint64{"n0-1/NA": 2, "n6-7/EU": 5, "n6-7/all": 1}
	if len(lanes) != len(want) {
		t.Fatalf("lanes = %+v, want %v", lanes, want)
	}
	for _, l := range lanes {
		if want[l.Nodes+"/"+l.Region] != l.Value {
			t.Fatalf("lane %s/%s = %d, want %d", l.Nodes, l.Region, l.Value, want[l.Nodes+"/"+l.Region])
		}
	}
}

func TestCounterSealLocksGeometry(t *testing.T) {
	c := NewCollector()
	c.SetNodeSpace(100)
	ctr := c.Counter("x")
	ctr.Add(99, 0, 1) // seals at node space 100
	c.SetNodeSpace(1000)
	ctr.Add(99, 0, 1)
	snap := c.Snapshot()
	if len(snap.Counters[0].Lanes) != 1 || snap.Counters[0].Lanes[0].Nodes != "n75-99" {
		t.Fatalf("lanes = %+v, want single n75-99 lane", snap.Counters[0].Lanes)
	}
}

func TestCounterRecordingZeroAllocs(t *testing.T) {
	c := NewCollector(WithRegions("a", "b"))
	c.SetNodeSpace(64)
	ctr := c.Counter("x")
	h := c.Histogram("h")
	ctr.Add(0, 0, 1) // seal outside the measured loop
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			ctr.Add(i, i&1, 1)
			h.Observe(int64(i) * 1000)
		}
	})
	if avg != 0 {
		t.Fatalf("live recording allocates %.1f per run, want 0", avg)
	}
}

func TestRegisterIsIdempotent(t *testing.T) {
	c := NewCollector()
	if c.Counter("x") != c.Counter("x") {
		t.Fatal("same-name counters differ")
	}
	if c.Gauge("g") != c.Gauge("g") {
		t.Fatal("same-name gauges differ")
	}
	if c.Histogram("h") != c.Histogram("h") {
		t.Fatal("same-name histograms differ")
	}
}

func TestGaugeHighWater(t *testing.T) {
	c := NewCollector()
	g := c.Gauge("depth")
	g.Set(5)
	g.Add(10)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 15 {
		t.Fatalf("value/max = %d/%d, want 2/15", g.Value(), g.Max())
	}
}

func TestBucketBoundsRoundTrip(t *testing.T) {
	// Every sample must land in a bucket whose bounds contain it.
	vals := []int64{0, 1, 2, 7, 8, 9, 15, 16, 17, 1000, 123456789, 1 << 40, (1 << 62) + 12345}
	for _, v := range vals {
		b := bucketOf(v)
		lo, hi := bucketBounds(b)
		if v < lo || v >= hi {
			t.Fatalf("value %d -> bucket %d bounds [%d,%d) do not contain it", v, b, lo, hi)
		}
	}
	if bucketOf(-5) != 0 {
		t.Fatal("negative values must clamp to bucket 0")
	}
	if b := bucketOf(1<<63 - 1); b >= numBuckets {
		t.Fatalf("max int64 bucket %d out of range", b)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	c := NewCollector()
	h := c.Histogram("lat")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000) // 1µs .. 1ms in ns
	}
	if h.Count() != 1000 || h.Min() != 1000 || h.Max() != 1000000 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	// Log-bucketed with 4 sub-buckets per octave: ±~15 % relative error.
	checks := []struct {
		q    float64
		want int64
	}{{0.5, 500000}, {0.9, 900000}, {0.99, 990000}}
	for _, ck := range checks {
		got := h.Quantile(ck.q)
		lo, hi := ck.want*82/100, ck.want*118/100
		if got < lo || got > hi {
			t.Fatalf("q%.2f = %d, want within [%d, %d]", ck.q, got, lo, hi)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatal("quantile endpoints must be min/max")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h *Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("nil histogram must read as zero")
	}
	h2 := NewCollector().Histogram("e")
	if h2.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestTraceLimitAndDrop(t *testing.T) {
	c := NewCollector(WithTrace(3))
	tr := c.Trace()
	for i := 0; i < 5; i++ {
		tr.Instant("e", "c", int64(i), 0, "", 0)
	}
	if tr.Len() != 3 || tr.Dropped() != 2 {
		t.Fatalf("len/dropped = %d/%d, want 3/2", tr.Len(), tr.Dropped())
	}
	snap := c.Snapshot()
	if snap.TraceEvents != 3 || snap.TraceDropped != 2 {
		t.Fatalf("snapshot trace counts = %d/%d", snap.TraceEvents, snap.TraceDropped)
	}
}

func TestTraceJSONIsValidAndDeterministic(t *testing.T) {
	build := func() *Trace {
		c := NewCollector(WithTrace(100))
		tr := c.Trace()
		tr.Span("send", "net", 1500, 2500, 7, "from", 1, "to", 2)
		tr.Instant("drop", "net", 4001, 3, "to", 9)
		tr.Emit(TraceEvent{Name: "plain", Cat: "x", Ph: 'i', TS: -250})
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical traces rendered different bytes")
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			TS   float64          `json:"ts"`
			Dur  float64          `json:"dur"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, a.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "send" || ev.Ph != "X" || ev.TS != 1.5 || ev.Dur != 2.5 {
		t.Fatalf("span mangled: %+v", ev)
	}
	if ev.Args["from"] != 1 || ev.Args["to"] != 2 {
		t.Fatalf("span args mangled: %+v", ev.Args)
	}
	if doc.TraceEvents[2].TS != -0.25 {
		t.Fatalf("negative ts = %v, want -0.25", doc.TraceEvents[2].TS)
	}
	// Nil trace still writes a loadable empty document.
	var empty bytes.Buffer
	var nilTrace *Trace
	if err := nilTrace.WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(empty.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}

type fakeSim struct {
	fired uint64
	pend  int
	now   time.Duration
}

func (f fakeSim) Fired() uint64      { return f.fired }
func (f fakeSim) MaxPending() int    { return f.pend }
func (f fakeSim) Now() time.Duration { return f.now }

func TestSnapshotSumsSims(t *testing.T) {
	c := NewCollector()
	c.AttachSim(fakeSim{fired: 10, pend: 3, now: time.Second})
	c.AttachSim(fakeSim{fired: 5, pend: 7, now: 2 * time.Second})
	s := c.Snapshot()
	if s.Sim.Fired != 15 || s.Sim.MaxPending != 7 || s.Sim.VirtualNano != int64(3*time.Second) {
		t.Fatalf("sim snap = %+v", s.Sim)
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	c := NewCollector()
	c.Counter("zz").Add(0, 0, 1)
	c.Counter("aa").Add(0, 0, 1)
	c.Histogram("z").Observe(1)
	c.Histogram("a").Observe(1)
	s := c.Snapshot()
	if s.Counters[0].Name != "aa" || s.Counters[1].Name != "zz" {
		t.Fatalf("counters unsorted: %+v", s.Counters)
	}
	if s.Hists[0].Name != "a" || s.Hists[1].Name != "z" {
		t.Fatalf("histograms unsorted: %+v", s.Hists)
	}
}

func TestHostWatchSample(t *testing.T) {
	w := StartHostWatch()
	buf := make([]byte, 1<<20)
	_ = buf
	s := w.Sample()
	if s.WallNanos <= 0 {
		t.Fatalf("wall time %d, want > 0", s.WallNanos)
	}
	if s.HeapLiveBytes == 0 {
		t.Fatal("heap live bytes should be nonzero in a running process")
	}
	var nilWatch *HostWatch
	if nilWatch.Sample() != (HostSample{}) {
		t.Fatal("nil watch must sample zero")
	}
}
