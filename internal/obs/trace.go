package obs

import (
	"bufio"
	"io"
	"strconv"
)

// TraceEvent is one entry of the event trace. Timestamps and durations are
// virtual nanoseconds; Ph is the Chrome trace-event phase ('X' for a
// complete span, 'i' for an instant). AKey/BKey name up to two integer
// arguments ("" omits the slot), which keeps Emit allocation-free — no
// maps, no boxing.
type TraceEvent struct {
	Name string
	Cat  string
	Ph   byte
	TS   int64
	Dur  int64
	TID  int64
	AKey string
	AVal int64
	BKey string
	BVal int64
}

// Trace is a bounded in-memory event buffer. Events past the limit are
// dropped and counted, so a long run cannot grow memory without bound. All
// methods are nil-safe so instrumentation sites never guard.
type Trace struct {
	limit   int
	events  []TraceEvent
	dropped uint64
}

// DefaultTraceLimit bounds the trace buffer when callers pass no explicit
// limit (100k events ≈ 10 MB).
const DefaultTraceLimit = 100_000

func newTrace(limit int) *Trace {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	pre := limit
	if pre > 4096 {
		pre = 4096
	}
	return &Trace{limit: limit, events: make([]TraceEvent, 0, pre)}
}

// Emit records one event, or counts it as dropped once the buffer is full.
// Nil-safe; allocation-free once the buffer's backing array has grown to
// the limit.
func (t *Trace) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Span records a complete ('X') event covering [start, start+dur).
func (t *Trace) Span(name, cat string, start, dur, tid int64, aKey string, aVal int64, bKey string, bVal int64) {
	t.Emit(TraceEvent{Name: name, Cat: cat, Ph: 'X', TS: start, Dur: dur, TID: tid,
		AKey: aKey, AVal: aVal, BKey: bKey, BVal: bVal})
}

// Instant records an instant ('i') event at ts.
func (t *Trace) Instant(name, cat string, ts, tid int64, aKey string, aVal int64) {
	t.Emit(TraceEvent{Name: name, Cat: cat, Ph: 'i', TS: ts, TID: tid, AKey: aKey, AVal: aVal})
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns the number of events dropped at the buffer limit.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// writeMicros formats virtual nanoseconds as microseconds with a fixed
// 3-digit fraction ("1234.500"), using only integer arithmetic so the
// bytes are identical on every platform.
func writeMicros(w *bufio.Writer, ns int64) {
	neg := ns < 0
	if neg {
		ns = -ns
		w.WriteByte('-')
	}
	var buf [20]byte
	w.Write(strconv.AppendInt(buf[:0], ns/1000, 10))
	w.WriteByte('.')
	frac := ns % 1000
	w.WriteByte(byte('0' + frac/100))
	w.WriteByte(byte('0' + frac/10%10))
	w.WriteByte(byte('0' + frac%10))
}

// WriteJSON emits the buffer in Chrome trace-event format (the JSON object
// form chrome://tracing and Perfetto load directly). Events appear in
// emission order; timestamps are virtual time, so the output is a pure
// function of the run. Nil-safe: a nil trace writes an empty trace object.
func (t *Trace) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	if t != nil {
		var buf [20]byte
		for i := range t.events {
			ev := &t.events[i]
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString("\n{\"name\":")
			bw.Write(strconv.AppendQuote(buf[:0], ev.Name))
			bw.WriteString(`,"cat":`)
			bw.Write(strconv.AppendQuote(buf[:0], ev.Cat))
			bw.WriteString(`,"ph":"`)
			bw.WriteByte(ev.Ph)
			bw.WriteString(`","ts":`)
			writeMicros(bw, ev.TS)
			if ev.Ph == 'X' {
				bw.WriteString(`,"dur":`)
				writeMicros(bw, ev.Dur)
			}
			bw.WriteString(`,"pid":1,"tid":`)
			bw.Write(strconv.AppendInt(buf[:0], ev.TID, 10))
			if ev.AKey != "" || ev.BKey != "" {
				bw.WriteString(`,"args":{`)
				if ev.AKey != "" {
					bw.Write(strconv.AppendQuote(buf[:0], ev.AKey))
					bw.WriteByte(':')
					bw.Write(strconv.AppendInt(buf[:0], ev.AVal, 10))
				}
				if ev.BKey != "" {
					if ev.AKey != "" {
						bw.WriteByte(',')
					}
					bw.Write(strconv.AppendQuote(buf[:0], ev.BKey))
					bw.WriteByte(':')
					bw.Write(strconv.AppendInt(buf[:0], ev.BVal, 10))
				}
				bw.WriteByte('}')
			}
			bw.WriteByte('}')
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
