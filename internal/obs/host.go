package obs

import (
	"runtime/metrics"
	"time"
)

// Host sampling is the one part of the telemetry layer that is NOT
// deterministic: wall time, heap occupancy and allocation counts depend on
// the machine, the Go version, and whatever else shares the process.
// Samples therefore never enter Snapshot or any hashed artifact — the
// report writes them to a separate volatile file, and the soak harness
// tracks them as drift indicators only.

const (
	metricHeapLive   = "/memory/classes/heap/objects:bytes"
	metricAllocBytes = "/gc/heap/allocs:bytes"
	metricAllocCount = "/gc/heap/allocs:objects"
	metricGCCycles   = "/gc/cycles/total:gc-cycles"
)

// HostSample is a host-resource delta over a watched interval, plus the
// live heap size at sample time. With parallel workers the process-wide
// allocation deltas include neighbouring runs — treat them as indicative,
// not attributed.
type HostSample struct {
	// WallNanos is elapsed wall-clock time.
	WallNanos int64 `json:"wall_ns"`
	// HeapLiveBytes is the live heap (surviving objects) at sample time,
	// the closest cheap proxy for peak per-run heap the runtime exposes.
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	// AllocBytes and Allocs are cumulative allocation deltas since the
	// watch started.
	AllocBytes uint64 `json:"alloc_bytes"`
	Allocs     uint64 `json:"allocs"`
	// GCCycles is completed GC cycles during the interval.
	GCCycles uint64 `json:"gc_cycles"`
}

// HostWatch captures a baseline for delta sampling.
type HostWatch struct {
	start      time.Time
	allocBytes uint64
	allocs     uint64
	gcCycles   uint64
}

func readHost() (heapLive, allocBytes, allocs, gcCycles uint64) {
	samples := [4]metrics.Sample{
		{Name: metricHeapLive},
		{Name: metricAllocBytes},
		{Name: metricAllocCount},
		{Name: metricGCCycles},
	}
	metrics.Read(samples[:])
	vals := [4]uint64{}
	for i, s := range samples {
		if s.Value.Kind() == metrics.KindUint64 {
			vals[i] = s.Value.Uint64()
		}
	}
	return vals[0], vals[1], vals[2], vals[3]
}

// StartHostWatch records the current wall clock and cumulative runtime
// metrics as the baseline for a later Sample.
func StartHostWatch() *HostWatch {
	_, ab, ac, gc := readHost()
	return &HostWatch{start: time.Now(), allocBytes: ab, allocs: ac, gcCycles: gc} //decentlint:allow nondeterm HostWatch measures machine facts; samples are quarantined as volatile
}

// Sample reads the host metrics again and returns the delta since the
// watch started. Nil-safe: a nil watch yields the zero sample.
func (w *HostWatch) Sample() HostSample {
	if w == nil {
		return HostSample{}
	}
	live, ab, ac, gc := readHost()
	return HostSample{
		//decentlint:allow nondeterm HostWatch measures machine facts; samples are quarantined as volatile
		WallNanos:     time.Since(w.start).Nanoseconds(),
		HeapLiveBytes: live,
		AllocBytes:    ab - w.allocBytes,
		Allocs:        ac - w.allocs,
		GCCycles:      gc - w.gcCycles,
	}
}
