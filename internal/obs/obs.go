// Package obs is the run-telemetry layer: named counters and gauges with
// (node-range × region) lanes, constant-memory streaming histograms, an
// optional Chrome trace-event buffer, and host resource sampling.
//
// The package is a leaf — it imports only the standard library — so every
// layer of the simulator (kernel, transport, harness, report, CLI) can
// depend on it without cycles.
//
// Two disciplines govern the design:
//
// Zero cost when off. Telemetry is represented by a *Collector; nil means
// "off". Every recording method (Counter.Add, Histogram.Observe,
// Trace.Emit, Gauge.Set, ...) is a method with a nil-receiver no-op, so an
// instrumented hot path pays one predictable branch and zero allocations
// when telemetry is disabled. Instrumentation sites therefore never need
// their own guards.
//
// Determinism when on. A Collector is owned by exactly one run (one
// simulation, one goroutine). Nothing in this package reads the wall clock
// or global state on the recording path; counters, histogram buckets and
// trace timestamps are all derived from virtual time and integer
// arithmetic, so the snapshot and trace emitted by a run are byte-identical
// regardless of how many runs execute in parallel around it. The only
// wall-clock-dependent piece is host sampling (host.go), which is kept out
// of the deterministic snapshot entirely.
package obs

import (
	"sort"
	"time"
)

// maxNodeRanges bounds the node-id dimension of counter lanes: node ids are
// partitioned into at most this many contiguous ranges (quartiles of the
// largest node space seen before the first recording).
const maxNodeRanges = 4

// Collector is the telemetry sink for one run. The zero value is not
// usable; construct with NewCollector. A nil *Collector disables telemetry:
// all methods on it (and on the nil instruments it hands out) are no-ops.
type Collector struct {
	regions   []string
	bounds    []int // ascending node-range upper bounds (exclusive); last is the node space
	nodeSpace int   // largest node count announced via SetNodeSpace
	sealed    bool  // lane geometry locked by the first recording
	counters  []*Counter
	counterBy map[string]*Counter
	gauges    []*Gauge
	gaugeBy   map[string]*Gauge
	hists     []*Histogram
	histBy    map[string]*Histogram
	trace     *Trace
	sims      []SimStats
}

// Option configures a Collector.
type Option func(*Collector)

// WithTrace enables the event trace with the given buffer limit (events
// beyond the limit are dropped and counted, keeping memory bounded).
func WithTrace(limit int) Option {
	return func(c *Collector) { c.trace = newTrace(limit) }
}

// WithRegions sets the region-dimension labels. Recording sites pass a
// region index into this slice; out-of-range indices clamp to 0.
func WithRegions(names ...string) Option {
	return func(c *Collector) { c.regions = append([]string(nil), names...) }
}

// WithNodeRanges pins explicit node-range upper bounds (exclusive,
// ascending), overriding the automatic quartile split.
func WithNodeRanges(bounds ...int) Option {
	return func(c *Collector) {
		c.bounds = append([]int(nil), bounds...)
		sort.Ints(c.bounds)
	}
}

// NewCollector builds an empty collector. With no options it has a single
// region ("all") and a single node range, so lane machinery costs nothing
// until a caller configures dimensions.
func NewCollector(opts ...Option) *Collector {
	c := &Collector{
		counterBy: make(map[string]*Counter),
		gaugeBy:   make(map[string]*Gauge),
		histBy:    make(map[string]*Histogram),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// SetRegions installs region labels if none are set yet; it is a nil-safe
// no-op once lanes are sealed. Subsystems that know their region space
// (e.g. the WAN transport) call it before traffic flows.
func (c *Collector) SetRegions(names []string) {
	if c == nil || c.sealed || len(c.regions) > 0 {
		return
	}
	c.regions = append([]string(nil), names...)
}

// SetNodeSpace announces the number of node ids in play. Until the first
// recording seals lane geometry, the largest announced space defines the
// automatic quartile node ranges. Nil-safe and cheap, so attachment sites
// (AddNode loops) may call it unconditionally.
func (c *Collector) SetNodeSpace(n int) {
	if c == nil || c.sealed || n <= c.nodeSpace {
		return
	}
	c.nodeSpace = n
}

// seal locks lane geometry and sizes every instrument's lane array. Called
// by the first recording on any counter.
func (c *Collector) seal() {
	if c.sealed {
		return
	}
	c.sealed = true
	if len(c.regions) == 0 {
		c.regions = []string{"all"}
	}
	if len(c.bounds) == 0 {
		n := c.nodeSpace
		if n <= 0 {
			n = 1
		}
		if n <= maxNodeRanges {
			c.bounds = []int{n}
		} else {
			c.bounds = make([]int, maxNodeRanges)
			for i := 1; i <= maxNodeRanges; i++ {
				c.bounds[i-1] = (n*i + maxNodeRanges - 1) / maxNodeRanges
			}
		}
	}
	lanes := len(c.bounds) * len(c.regions)
	for _, ctr := range c.counters {
		ctr.lanes = make([]uint64, lanes)
	}
}

// laneIndex maps (node, region) to a lane. Linear scan: bounds has at most
// maxNodeRanges entries.
func (c *Collector) laneIndex(node, region int) int {
	ri := 0
	if region >= 0 && region < len(c.regions) {
		ri = region
	}
	bi := len(c.bounds) - 1
	for i, b := range c.bounds {
		if node < b {
			bi = i
			break
		}
	}
	return bi*len(c.regions) + ri
}

// Counter registers (or returns the existing) named counter.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	if ctr, ok := c.counterBy[name]; ok {
		return ctr
	}
	ctr := &Counter{col: c, name: name}
	if c.sealed {
		ctr.lanes = make([]uint64, len(c.bounds)*len(c.regions))
	}
	c.counters = append(c.counters, ctr)
	c.counterBy[name] = ctr
	return ctr
}

// Gauge registers (or returns the existing) named gauge.
func (c *Collector) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	if g, ok := c.gaugeBy[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	c.gauges = append(c.gauges, g)
	c.gaugeBy[name] = g
	return g
}

// Histogram registers (or returns the existing) named histogram.
func (c *Collector) Histogram(name string) *Histogram {
	if c == nil {
		return nil
	}
	if h, ok := c.histBy[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	c.hists = append(c.hists, h)
	c.histBy[name] = h
	return h
}

// Trace returns the event trace, or nil when tracing is off (or the
// collector itself is nil). All Trace methods are nil-safe.
func (c *Collector) Trace() *Trace {
	if c == nil {
		return nil
	}
	return c.trace
}

// SimStats is the slice of a simulation kernel the collector reads at
// snapshot time: events executed, high-water pending count, and the
// virtual clock.
type SimStats interface {
	Fired() uint64
	MaxPending() int
	Now() time.Duration
}

// AttachSim registers a kernel whose run statistics the snapshot should
// include. Experiments may create several kernels sequentially; stats sum
// across all of them. Nil-safe.
func (c *Collector) AttachSim(s SimStats) {
	if c == nil || s == nil {
		return
	}
	c.sims = append(c.sims, s)
}

// Counter is a named monotonic counter with (node-range × region) lanes.
type Counter struct {
	col   *Collector
	name  string
	total uint64
	lanes []uint64
}

// Add records v against the lane holding (node, region). Nil-safe: the
// instrumented hot path calls it unconditionally and pays one branch when
// telemetry is off.
func (c *Counter) Add(node, region int, v uint64) {
	if c == nil {
		return
	}
	if c.lanes == nil {
		c.col.seal()
	}
	c.total += v
	c.lanes[c.col.laneIndex(node, region)] += v
}

// Total returns the counter's sum over all lanes.
func (c *Counter) Total() uint64 {
	if c == nil {
		return 0
	}
	return c.total
}

// Gauge is a named level with high-water tracking.
type Gauge struct {
	name string
	v    int64
	max  int64
}

// Set records the current level. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add shifts the current level by d. Nil-safe.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.Set(g.v + d)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// CounterLane is one nonzero lane of a counter snapshot.
type CounterLane struct {
	Nodes  string `json:"nodes"`
	Region string `json:"region"`
	Value  uint64 `json:"value"`
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string        `json:"name"`
	Total uint64        `json:"total"`
	Lanes []CounterLane `json:"lanes,omitempty"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// HistSnap summarizes one histogram: population moments plus interpolated
// quantiles (see hist.go for the bucketing scheme).
type HistSnap struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
}

// SimSnap sums kernel statistics over all attached kernels.
type SimSnap struct {
	Fired       uint64 `json:"events_fired"`
	MaxPending  int    `json:"max_pending"`
	VirtualNano int64  `json:"virtual_ns"`
}

// Snapshot is the deterministic end-of-run summary: everything here is a
// pure function of the run trajectory, never of the host machine.
type Snapshot struct {
	Sim          SimSnap       `json:"sim"`
	Counters     []CounterSnap `json:"counters,omitempty"`
	Gauges       []GaugeSnap   `json:"gauges,omitempty"`
	Hists        []HistSnap    `json:"histograms,omitempty"`
	TraceEvents  int           `json:"trace_events,omitempty"`
	TraceDropped uint64        `json:"trace_dropped,omitempty"`
}

// rangeLabel renders the node range ending at bound index i.
func (c *Collector) rangeLabel(i int) string {
	lo := 0
	if i > 0 {
		lo = c.bounds[i-1]
	}
	hi := c.bounds[i] - 1
	if lo >= hi {
		return "n" + itoa(lo)
	}
	return "n" + itoa(lo) + "-" + itoa(hi)
}

// itoa is a minimal strconv.Itoa for non-negative ints, avoiding an import
// dance in label rendering.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Snapshot renders the deterministic run summary, instruments sorted by
// name. Nil-safe: a nil collector yields the zero snapshot.
func (c *Collector) Snapshot() Snapshot {
	var s Snapshot
	if c == nil {
		return s
	}
	for _, sim := range c.sims {
		s.Sim.Fired += sim.Fired()
		if mp := sim.MaxPending(); mp > s.Sim.MaxPending {
			s.Sim.MaxPending = mp
		}
		s.Sim.VirtualNano += int64(sim.Now())
	}
	for _, ctr := range c.counters {
		snap := CounterSnap{Name: ctr.name, Total: ctr.total}
		for li, v := range ctr.lanes {
			if v == 0 {
				continue
			}
			snap.Lanes = append(snap.Lanes, CounterLane{
				Nodes:  c.rangeLabel(li / len(c.regions)),
				Region: c.regions[li%len(c.regions)],
				Value:  v,
			})
		}
		s.Counters = append(s.Counters, snap)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for _, g := range c.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Value: g.v, Max: g.max})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	for _, h := range c.hists {
		s.Hists = append(s.Hists, HistSnap{
			Name: h.name, Count: h.count, Sum: h.sum, Min: h.Min(), Max: h.max,
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		})
	}
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	if c.trace != nil {
		s.TraceEvents = len(c.trace.events)
		s.TraceDropped = c.trace.dropped
	}
	return s
}

// Histograms returns the registered histograms sorted by name, for callers
// (the report renderer) that plot full quantile curves rather than the
// snapshot's three summary points.
func (c *Collector) Histograms() []*Histogram {
	if c == nil {
		return nil
	}
	out := append([]*Histogram(nil), c.hists...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
