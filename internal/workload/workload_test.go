package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestPoissonRate(t *testing.T) {
	s := sim.New(sim.WithSeed(11))
	count := 0
	stream, err := StartPoisson(s, "test", 10, func(seq int) { count++ })
	if err != nil {
		t.Fatalf("StartPoisson: %v", err)
	}
	if err := s.RunUntil(1000 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Expect ~10000 events; Poisson sd is 100, allow 5 sigma.
	if math.Abs(float64(count)-10000) > 500 {
		t.Fatalf("count = %d, want ~10000", count)
	}
	if stream.Count() != count {
		t.Fatalf("Count() = %d, want %d", stream.Count(), count)
	}
}

func TestPoissonSeqMonotone(t *testing.T) {
	s := sim.New(sim.WithSeed(5))
	last := -1
	_, err := StartPoisson(s, "test", 100, func(seq int) {
		if seq != last+1 {
			t.Fatalf("seq %d after %d", seq, last)
		}
		last = seq
	})
	if err != nil {
		t.Fatalf("StartPoisson: %v", err)
	}
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if last < 0 {
		t.Fatal("no arrivals in 1s at rate 100/s")
	}
}

func TestPoissonStop(t *testing.T) {
	s := sim.New(sim.WithSeed(5))
	var stream *PoissonStream
	count := 0
	stream, err := StartPoisson(s, "test", 100, func(seq int) {
		count++
		if count == 5 {
			stream.Stop()
		}
	})
	if err != nil {
		t.Fatalf("StartPoisson: %v", err)
	}
	if err := s.RunUntil(time.Hour); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 5 {
		t.Fatalf("count = %d after Stop at 5", count)
	}
}

func TestPoissonValidation(t *testing.T) {
	s := sim.New()
	if _, err := StartPoisson(s, "t", 0, func(int) {}); err == nil {
		t.Fatal("rate 0 should error")
	}
	if _, err := StartPoisson(s, "t", 1, nil); err == nil {
		t.Fatal("nil callback should error")
	}
}

func TestCatalogue(t *testing.T) {
	g := sim.NewRNG(3)
	c, err := NewCatalogue(g, 500, 1.1, 100, 200)
	if err != nil {
		t.Fatalf("NewCatalogue: %v", err)
	}
	if c.Len() != 500 {
		t.Fatalf("Len = %d, want 500", c.Len())
	}
	counts := make([]int, 500)
	for i := 0; i < 50000; i++ {
		idx := c.Pick()
		if idx < 0 || idx >= 500 {
			t.Fatalf("Pick out of range: %d", idx)
		}
		counts[idx]++
		size := c.Size(idx)
		if size < 100 || size > 200 {
			t.Fatalf("Size(%d) = %d outside [100,200]", idx, size)
		}
	}
	if counts[0] <= counts[100] {
		t.Fatalf("popularity not skewed: rank0=%d rank100=%d", counts[0], counts[100])
	}
	if c.Size(-1) != 0 || c.Size(500) != 0 {
		t.Fatal("out-of-range Size should be 0")
	}
}

func TestCatalogueValidation(t *testing.T) {
	g := sim.NewRNG(3)
	if _, err := NewCatalogue(g, 0, 1.1, 1, 2); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := NewCatalogue(g, 10, 1.1, 0, 2); err == nil {
		t.Fatal("minSize=0 should error")
	}
	if _, err := NewCatalogue(g, 10, 0.9, 1, 2); err == nil {
		t.Fatal("zipf s<=1 should error")
	}
}

func TestTxSource(t *testing.T) {
	s := sim.New(sim.WithSeed(17))
	var txs []Tx
	src, err := StartTxSource(s, 50, 250, 500, func(tx Tx) { txs = append(txs, tx) })
	if err != nil {
		t.Fatalf("StartTxSource: %v", err)
	}
	if err := s.RunUntil(100 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(txs) < 4000 || len(txs) > 6000 {
		t.Fatalf("tx count = %d, want ~5000", len(txs))
	}
	for _, tx := range txs[:100] {
		if tx.Size < 250 || tx.Size > 500 {
			t.Fatalf("tx size %d outside [250,500]", tx.Size)
		}
	}
	src.Stop()
	n := len(txs)
	if err := s.RunUntil(200 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(txs) != n {
		t.Fatal("transactions emitted after Stop")
	}
}

func TestTxSourceValidation(t *testing.T) {
	s := sim.New()
	if _, err := StartTxSource(s, 1, 0, 10, func(Tx) {}); err == nil {
		t.Fatal("bad size range should error")
	}
	if _, err := StartTxSource(s, 1, 10, 20, nil); err == nil {
		t.Fatal("nil submit should error")
	}
	if _, err := StartTxSource(s, 0, 10, 20, func(Tx) {}); err == nil {
		t.Fatal("zero rate should error")
	}
}
