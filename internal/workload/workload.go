// Package workload generates the load offered to simulated systems: Poisson
// request/transaction arrivals and Zipf-popular content catalogues. Both the
// overlay experiments (lookups for popular keys) and the blockchain
// experiments (transaction submission) draw from here.
package workload

import (
	"errors"
	"time"

	"repro/internal/randdist"
	"repro/internal/sim"
)

// PoissonStream emits events with exponentially distributed inter-arrival
// times (a Poisson process) until stopped.
type PoissonStream struct {
	sim     *sim.Sim
	rng     *sim.RNG
	mean    time.Duration
	fn      func(seq int)
	seq     int
	stopped bool
}

// StartPoisson begins a Poisson process with the given rate in events per
// second, invoking fn(seq) for each arrival. It returns an error for
// non-positive rates or a nil callback.
func StartPoisson(s *sim.Sim, stream string, rate float64, fn func(seq int)) (*PoissonStream, error) {
	if rate <= 0 {
		return nil, errors.New("workload: rate must be positive")
	}
	if fn == nil {
		return nil, errors.New("workload: callback is nil")
	}
	p := &PoissonStream{
		sim:  s,
		rng:  s.Stream(stream),
		mean: time.Duration(float64(time.Second) / rate),
		fn:   fn,
	}
	p.next()
	return p, nil
}

func (p *PoissonStream) next() {
	p.sim.After(p.rng.ExpDuration(p.mean), func() {
		if p.stopped {
			return
		}
		seq := p.seq
		p.seq++
		p.fn(seq)
		if !p.stopped {
			p.next()
		}
	})
}

// Stop halts the stream; no further arrivals fire.
func (p *PoissonStream) Stop() { p.stopped = true }

// Count returns the number of arrivals emitted so far.
func (p *PoissonStream) Count() int { return p.seq }

// Catalogue is a set of content items with Zipf-distributed popularity, the
// canonical model for file-sharing workloads.
type Catalogue struct {
	sizes []int
	zipf  *randdist.Zipf
	rng   *sim.RNG
}

// NewCatalogue builds a catalogue of n items with popularity exponent s
// (> 1) and item sizes uniform in [minSize, maxSize] bytes.
func NewCatalogue(g *sim.RNG, n int, s float64, minSize, maxSize int) (*Catalogue, error) {
	if n <= 0 {
		return nil, errors.New("workload: catalogue size must be positive")
	}
	if minSize <= 0 || maxSize < minSize {
		return nil, errors.New("workload: invalid size range")
	}
	z := randdist.NewZipf(g, s, n)
	if z == nil {
		return nil, errors.New("workload: invalid zipf exponent (must be > 1)")
	}
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = minSize + g.Intn(maxSize-minSize+1)
	}
	return &Catalogue{sizes: sizes, zipf: z, rng: g}, nil
}

// Len returns the number of items.
func (c *Catalogue) Len() int { return len(c.sizes) }

// Pick returns a popularity-weighted item index in [0, Len()).
func (c *Catalogue) Pick() int { return c.zipf.Rank() - 1 }

// Size returns the size in bytes of item i (0 for out-of-range).
func (c *Catalogue) Size(i int) int {
	if i < 0 || i >= len(c.sizes) {
		return 0
	}
	return c.sizes[i]
}

// Tx is an abstract transaction offered to a ledger system.
type Tx struct {
	ID   int
	Size int // bytes on the wire and in a block
	At   time.Duration
}

// TxSource produces transactions at a Poisson rate with a fixed size
// distribution (uniform between MinSize and MaxSize).
type TxSource struct {
	stream  *PoissonStream
	rng     *sim.RNG
	minSize int
	maxSize int
}

// StartTxSource emits transactions at rate per second with sizes uniform in
// [minSize, maxSize] bytes, calling submit for each.
func StartTxSource(s *sim.Sim, rate float64, minSize, maxSize int, submit func(Tx)) (*TxSource, error) {
	if minSize <= 0 || maxSize < minSize {
		return nil, errors.New("workload: invalid tx size range")
	}
	if submit == nil {
		return nil, errors.New("workload: submit callback is nil")
	}
	src := &TxSource{
		rng:     s.Stream("workload.txsize"),
		minSize: minSize,
		maxSize: maxSize,
	}
	stream, err := StartPoisson(s, "workload.txarrival", rate, func(seq int) {
		submit(Tx{
			ID:   seq,
			Size: src.minSize + src.rng.Intn(src.maxSize-src.minSize+1),
			At:   s.Now(),
		})
	})
	if err != nil {
		return nil, err
	}
	src.stream = stream
	return src, nil
}

// Stop halts transaction production.
func (t *TxSource) Stop() { t.stream.Stop() }

// Count returns the number of transactions produced.
func (t *TxSource) Count() int { return t.stream.Count() }
