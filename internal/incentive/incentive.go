// Package incentive models peer cooperation strategies in file-sharing
// swarms: the free-riding equilibrium of incentive-less overlays (Gnutella)
// versus BitTorrent's tit-for-tat choking, which enforces reciprocity during
// downloads.
//
// The model is a deterministic round game (one round = one choke interval).
// It supports the paper's Problem 1 claim: without incentives free riders do
// as well as contributors (so rational peers stop contributing); with
// tit-for-tat free riders are throttled to the optimistic-unchoke trickle —
// but, as the paper notes, cooperation is only enforced *during* the
// download, which is why nobody maintains open infrastructure afterwards.
package incentive

import (
	"errors"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Strategy is a peer's contribution behaviour.
type Strategy int

// The supported strategies.
const (
	// Cooperator uploads according to protocol rules and seeds briefly
	// after completing.
	Cooperator Strategy = iota + 1
	// FreeRider downloads but never uploads and leaves on completion.
	FreeRider
)

func (s Strategy) String() string {
	switch s {
	case Cooperator:
		return "cooperator"
	case FreeRider:
		return "free-rider"
	default:
		return "unknown"
	}
}

// SwarmConfig parameterizes a swarm run.
type SwarmConfig struct {
	// Peers is the number of downloading peers.
	Peers int
	// Seeds is the number of initial seeders (full copies).
	Seeds int
	// FreeRiderFrac is the fraction of peers that never upload.
	FreeRiderFrac float64
	// Pieces is the number of pieces constituting the file.
	Pieces int
	// UploadSlots is the number of reciprocity-based unchoke slots
	// (default 3, as in mainline BitTorrent).
	UploadSlots int
	// OptimisticSlots is the number of random unchoke slots (default 1).
	OptimisticSlots int
	// PiecesPerSlot is the upload capacity per slot per round.
	PiecesPerSlot int
	// SeedRounds is how long a finished cooperator keeps seeding.
	SeedRounds int
	// TitForTat enables reciprocity-based unchoking; when false all slots
	// are filled randomly (the incentive-less baseline).
	TitForTat bool
}

func (c SwarmConfig) withDefaults() (SwarmConfig, error) {
	if c.Peers <= 1 {
		return c, errors.New("incentive: need at least two peers")
	}
	if c.Seeds <= 0 {
		return c, errors.New("incentive: need at least one seed")
	}
	if c.Pieces <= 0 {
		c.Pieces = 100
	}
	if c.UploadSlots <= 0 {
		c.UploadSlots = 3
	}
	if c.OptimisticSlots <= 0 {
		c.OptimisticSlots = 1
	}
	if c.PiecesPerSlot <= 0 {
		c.PiecesPerSlot = 1
	}
	if c.SeedRounds < 0 {
		c.SeedRounds = 0
	}
	if c.FreeRiderFrac < 0 {
		c.FreeRiderFrac = 0
	}
	if c.FreeRiderFrac > 1 {
		c.FreeRiderFrac = 1
	}
	return c, nil
}

// SwarmResult summarizes a swarm run.
type SwarmResult struct {
	// CooperatorRounds and FreeRiderRounds sample the completion round of
	// each finished peer by class.
	CooperatorRounds metrics.Sample
	FreeRiderRounds  metrics.Sample
	// CooperatorsDone and FreeRidersDone count completions within the
	// horizon; Cooperators and FreeRiders are the class sizes.
	Cooperators, CooperatorsDone int
	FreeRiders, FreeRidersDone   int
	// Rounds is the number of rounds simulated.
	Rounds int
	// TotalUploads counts piece transfers by class.
	CooperatorUploads, SeedUploads int
}

// SlowdownFactor returns mean free-rider completion divided by mean
// cooperator completion (1 = no penalty). Unfinished peers are excluded;
// call UnfinishedFreeRiderFrac to see how many never finished.
func (r *SwarmResult) SlowdownFactor() float64 {
	if r.CooperatorRounds.Count() == 0 || r.FreeRiderRounds.Count() == 0 {
		return 0
	}
	return r.FreeRiderRounds.Mean() / r.CooperatorRounds.Mean()
}

// UnfinishedFreeRiderFrac returns the fraction of free riders that never
// completed within the horizon.
func (r *SwarmResult) UnfinishedFreeRiderFrac() float64 {
	if r.FreeRiders == 0 {
		return 0
	}
	return 1 - float64(r.FreeRidersDone)/float64(r.FreeRiders)
}

type peer struct {
	strategy  Strategy
	pieces    int
	doneRound int // -1 while downloading
	seedLeft  int
	recvFrom  []int // pieces received from each peer last round
	recvNow   []int
}

// RunSwarm simulates the swarm for at most maxRounds rounds.
func RunSwarm(g *sim.RNG, cfg SwarmConfig, maxRounds int) (*SwarmResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if maxRounds <= 0 {
		maxRounds = 10 * cfg.Pieces
	}
	total := cfg.Peers + cfg.Seeds
	peers := make([]*peer, total)
	res := &SwarmResult{}
	for i := 0; i < total; i++ {
		p := &peer{
			doneRound: -1,
			recvFrom:  make([]int, total),
			recvNow:   make([]int, total),
		}
		switch {
		case i < cfg.Seeds:
			p.strategy = Cooperator
			p.pieces = cfg.Pieces
			p.seedLeft = maxRounds // initial seeds stay
			p.doneRound = 0
		case g.Float64() < cfg.FreeRiderFrac:
			p.strategy = FreeRider
			res.FreeRiders++
		default:
			p.strategy = Cooperator
			res.Cooperators++
		}
		peers[i] = p
	}

	interested := func(p *peer) bool { return p.pieces < cfg.Pieces }
	uploading := func(i int) bool {
		p := peers[i]
		if p.strategy == FreeRider {
			return false
		}
		if interested(p) {
			return p.pieces > 0 // has something to share
		}
		return p.seedLeft > 0 // finished: seeds for a while
	}

	for round := 1; round <= maxRounds; round++ {
		res.Rounds = round
		anyInterested := false
		for _, p := range peers {
			if interested(p) {
				anyInterested = true
				break
			}
		}
		if !anyInterested {
			break
		}
		// Each uploading peer fills its slots.
		for i, p := range peers {
			if !uploading(i) {
				continue
			}
			// Candidate receivers: interested peers other than self.
			var cands []int
			for j, q := range peers {
				if j != i && interested(q) {
					cands = append(cands, j)
				}
			}
			if len(cands) == 0 {
				continue
			}
			slots := cfg.UploadSlots + cfg.OptimisticSlots
			chosen := make(map[int]bool, slots)
			randomSlots := slots
			if cfg.TitForTat && interested(p) {
				// Reciprocity: regular slots go to peers that sent us the
				// most last round; slots with no reciprocator stay choked.
				// Only the optimistic slots are filled randomly — this is
				// the mechanism that starves free riders.
				sort.SliceStable(cands, func(a, b int) bool {
					return p.recvFrom[cands[a]] > p.recvFrom[cands[b]]
				})
				for _, j := range cands {
					if len(chosen) >= cfg.UploadSlots {
						break
					}
					if p.recvFrom[j] > 0 {
						chosen[j] = true
					}
				}
				randomSlots = len(chosen) + cfg.OptimisticSlots
			}
			if randomSlots > slots {
				randomSlots = slots
			}
			for attempts := 0; len(chosen) < randomSlots && attempts < 4*slots; attempts++ {
				j := cands[g.Intn(len(cands))]
				chosen[j] = true
			}
			for j := range chosen {
				q := peers[j]
				n := cfg.PiecesPerSlot
				if q.pieces+n > cfg.Pieces {
					n = cfg.Pieces - q.pieces
				}
				if n <= 0 {
					continue
				}
				q.pieces += n
				q.recvNow[i] += n
				if p.doneRound == 0 && i < cfg.Seeds {
					res.SeedUploads += n
				} else {
					res.CooperatorUploads += n
				}
				if q.pieces >= cfg.Pieces && q.doneRound < 0 {
					q.doneRound = round
					switch q.strategy {
					case FreeRider:
						res.FreeRidersDone++
						res.FreeRiderRounds.Add(float64(round))
						// Free riders leave immediately (seedLeft stays 0).
					case Cooperator:
						res.CooperatorsDone++
						res.CooperatorRounds.Add(float64(round))
						q.seedLeft = cfg.SeedRounds
					}
				}
			}
		}
		// Round bookkeeping: rotate reciprocity counters, decay seeding.
		for _, p := range peers {
			p.recvFrom, p.recvNow = p.recvNow, p.recvFrom
			for j := range p.recvNow {
				p.recvNow[j] = 0
			}
			if p.doneRound >= 0 && p.seedLeft > 0 && !interested(p) {
				p.seedLeft--
			}
		}
	}
	return res, nil
}
