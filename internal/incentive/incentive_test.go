package incentive

import (
	"testing"

	"repro/internal/sim"
)

// baseConfig models the paper's "selfish universe": peers leave as soon as
// their download completes (SeedRounds 0) — precisely the Problem-1
// observation that collaboration is only enforced during the download.
func baseConfig() SwarmConfig {
	return SwarmConfig{
		Peers:         100,
		Seeds:         3,
		FreeRiderFrac: 0.3,
		Pieces:        50,
		SeedRounds:    0,
	}
}

func TestValidation(t *testing.T) {
	g := sim.NewRNG(1)
	if _, err := RunSwarm(g, SwarmConfig{Peers: 1, Seeds: 1}, 10); err == nil {
		t.Fatal("Peers<2 should error")
	}
	if _, err := RunSwarm(g, SwarmConfig{Peers: 10, Seeds: 0}, 10); err == nil {
		t.Fatal("Seeds=0 should error")
	}
}

func TestTitForTatPenalizesFreeRiders(t *testing.T) {
	g := sim.NewRNG(42)
	cfg := baseConfig()
	cfg.TitForTat = true
	res, err := RunSwarm(g, cfg, 3000)
	if err != nil {
		t.Fatalf("RunSwarm: %v", err)
	}
	if res.CooperatorsDone < res.Cooperators*9/10 {
		t.Fatalf("only %d/%d cooperators finished", res.CooperatorsDone, res.Cooperators)
	}
	slow := res.SlowdownFactor()
	if slow < 2.0 {
		t.Fatalf("tit-for-tat slowdown = %v, want free riders clearly penalized (>2x)", slow)
	}
}

func TestNoIncentiveFreeRidersRideFree(t *testing.T) {
	g := sim.NewRNG(42)
	cfg := baseConfig()
	cfg.TitForTat = false
	res, err := RunSwarm(g, cfg, 3000)
	if err != nil {
		t.Fatalf("RunSwarm: %v", err)
	}
	slow := res.SlowdownFactor()
	if slow == 0 {
		t.Fatalf("no free riders finished in baseline: %+v", res)
	}
	// Without reciprocity, free riders finish about as fast as cooperators.
	if slow > 1.25 {
		t.Fatalf("baseline slowdown = %v, want ~1 (free riding is free)", slow)
	}
}

func TestTitForTatWorseThanBaselineForFreeRiders(t *testing.T) {
	run := func(tft bool) float64 {
		g := sim.NewRNG(7)
		cfg := baseConfig()
		cfg.TitForTat = tft
		res, err := RunSwarm(g, cfg, 3000)
		if err != nil {
			t.Fatalf("RunSwarm: %v", err)
		}
		if res.FreeRiderRounds.Count() == 0 {
			return float64(res.Rounds) * 2 // never finished: worst case
		}
		return res.FreeRiderRounds.Mean()
	}
	baseline := run(false)
	tft := run(true)
	if tft <= baseline {
		t.Fatalf("free riders under TFT (%v rounds) should finish later than baseline (%v rounds)", tft, baseline)
	}
}

func TestAllCooperatorsSwarmCompletes(t *testing.T) {
	g := sim.NewRNG(3)
	cfg := baseConfig()
	cfg.FreeRiderFrac = 0
	cfg.TitForTat = true
	res, err := RunSwarm(g, cfg, 3000)
	if err != nil {
		t.Fatalf("RunSwarm: %v", err)
	}
	if res.FreeRiders != 0 {
		t.Fatalf("FreeRiders = %d with frac 0", res.FreeRiders)
	}
	if res.CooperatorsDone != res.Cooperators {
		t.Fatalf("%d/%d cooperators finished", res.CooperatorsDone, res.Cooperators)
	}
	if res.SeedUploads == 0 || res.CooperatorUploads == 0 {
		t.Fatal("upload accounting empty")
	}
}

func TestStrategyString(t *testing.T) {
	if Cooperator.String() != "cooperator" || FreeRider.String() != "free-rider" {
		t.Fatal("Strategy String() wrong")
	}
	if Strategy(0).String() != "unknown" {
		t.Fatal("zero Strategy should be unknown")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		g := sim.NewRNG(99)
		cfg := baseConfig()
		cfg.TitForTat = true
		res, err := RunSwarm(g, cfg, 2000)
		if err != nil {
			t.Fatalf("RunSwarm: %v", err)
		}
		return res.CooperatorRounds.Mean()
	}
	if run() != run() {
		t.Fatal("equal seeds must produce identical swarms")
	}
}
