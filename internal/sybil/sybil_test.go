package sybil

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/overlay"
	"repro/internal/overlay/kademlia"
	"repro/internal/sim"
)

func honestNetwork(t *testing.T, n int, seed int64) (*sim.Sim, *kademlia.Network) {
	t.Helper()
	s := sim.New(sim.WithSeed(seed))
	nm := netmodel.New(s, netmodel.WithJitter(0.1))
	nw := kademlia.NewNetwork(s, nm, kademlia.Config{K: 8, Alpha: 3, UnresponsiveFrac: 0})
	for i := 0; i < n; i++ {
		nw.AddNode(netmodel.Europe)
	}
	if err := nw.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	return s, nw
}

func TestLaunchValidation(t *testing.T) {
	s, nw := honestNetwork(t, 50, 1)
	if _, err := Launch(s, nw, AttackConfig{Identities: 0}); err == nil {
		t.Fatal("zero identities should error")
	}
}

func TestTargetedEclipse(t *testing.T) {
	s, nw := honestNetwork(t, 400, 2)
	target := overlay.KeyID([]byte("victim-key"))
	atk, err := Launch(s, nw, AttackConfig{
		Identities: 16,
		Targeted:   true,
		Target:     target,
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run announce: %v", err)
	}
	var stats EclipseStats
	for i := 0; i < 30; i++ {
		origin := nw.Nodes()[s.Stream("o").Intn(400)]
		if origin.Malicious() {
			continue
		}
		nw.Lookup(origin, target, func(r kademlia.Result) { stats.Record(atk, r) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run lookups: %v", err)
	}
	if stats.Lookups == 0 {
		t.Fatal("no lookups measured")
	}
	// With 16 sybils adjacent to the key, eclipse should dominate.
	if stats.ClosestRate() < 0.8 {
		t.Fatalf("ClosestRate = %v, want >= 0.8 (eclipse should own the key)", stats.ClosestRate())
	}
	if stats.MajorityRate() < 0.5 {
		t.Fatalf("MajorityRate = %v, want >= 0.5", stats.MajorityRate())
	}
}

func TestUniformSybilInterceptionGrowsWithIdentities(t *testing.T) {
	measure := func(identities int) float64 {
		s, nw := honestNetwork(t, 300, 3)
		atk, err := Launch(s, nw, AttackConfig{Identities: identities})
		if err != nil {
			t.Fatalf("Launch: %v", err)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run announce: %v", err)
		}
		var stats EclipseStats
		for i := 0; i < 40; i++ {
			origin := nw.Nodes()[s.Stream("o").Intn(300)]
			if origin.Malicious() {
				continue
			}
			target := overlay.RandomID(s.Stream("t"))
			nw.Lookup(origin, target, func(r kademlia.Result) { stats.Record(atk, r) })
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run lookups: %v", err)
		}
		return stats.MeanAttackerFrac()
	}
	small := measure(15)  // 5% of network
	large := measure(300) // 50% of network
	if large <= small {
		t.Fatalf("attacker fraction should grow with identities: 15 ids -> %v, 300 ids -> %v", small, large)
	}
	if large < 0.3 {
		t.Fatalf("50%% sybil population intercepts only %v of result entries", large)
	}
}

func TestCountAttacker(t *testing.T) {
	s, nw := honestNetwork(t, 50, 4)
	atk, err := Launch(s, nw, AttackConfig{Identities: 5})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	contacts := []kademlia.Contact{
		{ID: atk.Nodes()[0].ID},
		{ID: nw.Nodes()[0].ID},
	}
	if got := atk.CountAttacker(contacts); got != 1 {
		t.Fatalf("CountAttacker = %d, want 1", got)
	}
	if !atk.IsAttacker(atk.Nodes()[2].ID) {
		t.Fatal("IsAttacker false for attacker id")
	}
	_ = s
}

func TestEclipseStatsEmpty(t *testing.T) {
	var st EclipseStats
	if st.MajorityRate() != 0 || st.ClosestRate() != 0 || st.MeanAttackerFrac() != 0 {
		t.Fatal("empty stats must report zeros")
	}
}
