// Package sybil implements sybil and eclipse attacks on the Kademlia DHT
// (Douceur 2002; Steiner et al.'s KAD measurements): an attacker mints many
// identities from a few hosts, announces them into honest routing tables via
// ordinary lookups, and — when targeting a key — answers queries with
// fabricated contacts so that honest lookups terminate inside the attacker's
// identity cloud.
//
// It supports the paper's Problem 3 claim: open identifier assignment makes
// open overlays structurally attackable.
package sybil

import (
	"errors"
	"sort"

	"repro/internal/netmodel"
	"repro/internal/overlay"
	"repro/internal/overlay/kademlia"
	"repro/internal/sim"
)

// AttackConfig parameterizes an attack.
type AttackConfig struct {
	// Identities is the number of sybil identities minted.
	Identities int
	// Targeted aims all identities at Target's neighbourhood (an eclipse
	// attack); otherwise identities are spread uniformly.
	Targeted bool
	// Target is the victim key for targeted attacks.
	Target overlay.ID
	// Region is where the attacker's hosts sit.
	Region netmodel.Region
	// AnnounceLookups is how many announcement lookups each identity
	// performs (default 1).
	AnnounceLookups int
}

// Attack is a launched sybil attack.
type Attack struct {
	cfg      AttackConfig
	nodes    []*kademlia.Node
	contacts []kademlia.Contact
	isAtk    map[overlay.ID]bool
}

// Launch mints the identities, wires their poisoned response behaviour, and
// schedules the announcement lookups. Run the simulator afterwards to let
// announcements spread, then measure with Measure*.
func Launch(s *sim.Sim, nw *kademlia.Network, cfg AttackConfig) (*Attack, error) {
	if cfg.Identities <= 0 {
		return nil, errors.New("sybil: need at least one identity")
	}
	if cfg.AnnounceLookups <= 0 {
		cfg.AnnounceLookups = 1
	}
	if cfg.Region == 0 {
		cfg.Region = netmodel.Europe
	}
	rng := s.Stream("sybil")
	a := &Attack{
		cfg:   cfg,
		isAtk: make(map[overlay.ID]bool, cfg.Identities),
	}
	honest := make([]*kademlia.Node, 0, len(nw.Nodes()))
	for _, n := range nw.Nodes() {
		if !n.Malicious() {
			honest = append(honest, n)
		}
	}
	if len(honest) == 0 {
		return nil, errors.New("sybil: no honest nodes to attack")
	}
	for i := 0; i < cfg.Identities; i++ {
		var id overlay.ID
		if cfg.Targeted {
			// Identities adjacent to the target: flip only low-order bits so
			// every sybil is closer to the victim key than any honest node.
			id = cfg.Target
			id[overlay.IDBytes-1] ^= byte(i + 1)
			id[overlay.IDBytes-2] ^= byte(i >> 8)
		} else {
			id = overlay.RandomID(rng)
		}
		node := nw.AddMaliciousNode(cfg.Region, id, a.poison)
		a.nodes = append(a.nodes, node)
		a.contacts = append(a.contacts, kademlia.Contact{ID: node.ID, Addr: node.Addr})
		a.isAtk[node.ID] = true
	}
	// Announcement: each sybil seeds its table with honest contacts and
	// looks up either the victim key (targeted) or its own id (uniform),
	// planting itself in honest routing tables via sender learning.
	for _, node := range a.nodes {
		node := node
		for j := 0; j < 3; j++ {
			h := honest[rng.Intn(len(honest))]
			node.Table().Add(kademlia.Contact{ID: h.ID, Addr: h.Addr})
		}
		for j := 0; j < cfg.AnnounceLookups; j++ {
			target := node.ID
			if cfg.Targeted {
				target = cfg.Target
			}
			s.After(rng.ExpDuration(500_000_000), func() { // spread over ~0.5s mean
				nw.Lookup(node, target, nil)
			})
		}
	}
	return a, nil
}

// poison fabricates FIND_NODE replies: the sybils closest to the queried
// target, cross-referencing the identity cloud so honest lookups spiral
// inward and never escape.
func (a *Attack) poison(target overlay.ID) []kademlia.Contact {
	out := make([]kademlia.Contact, len(a.contacts))
	copy(out, a.contacts)
	sort.Slice(out, func(i, j int) bool {
		return overlay.CloserXOR(target, out[i].ID, out[j].ID)
	})
	if len(out) > 16 {
		out = out[:16]
	}
	return out
}

// Nodes returns the attacker's nodes.
func (a *Attack) Nodes() []*kademlia.Node { return a.nodes }

// IsAttacker reports whether an identifier belongs to the attack.
func (a *Attack) IsAttacker(id overlay.ID) bool { return a.isAtk[id] }

// CountAttacker returns how many of the given contacts are attacker
// identities.
func (a *Attack) CountAttacker(contacts []kademlia.Contact) int {
	n := 0
	for _, c := range contacts {
		if a.isAtk[c.ID] {
			n++
		}
	}
	return n
}

// EclipseStats aggregates lookup-poisoning measurements.
type EclipseStats struct {
	// Lookups is the number of measured honest lookups.
	Lookups int
	// MajorityPoisoned counts result sets where attacker identities hold
	// the majority.
	MajorityPoisoned int
	// ClosestPoisoned counts result sets whose closest entry is an
	// attacker identity.
	ClosestPoisoned int
	// AttackerFracSum accumulates the attacker fraction per result set
	// (divide by Lookups for the mean).
	AttackerFracSum float64
}

// MajorityRate returns the fraction of lookups whose result set was
// majority-attacker.
func (e *EclipseStats) MajorityRate() float64 {
	if e.Lookups == 0 {
		return 0
	}
	return float64(e.MajorityPoisoned) / float64(e.Lookups)
}

// ClosestRate returns the fraction of lookups that resolved to an attacker
// as the closest node.
func (e *EclipseStats) ClosestRate() float64 {
	if e.Lookups == 0 {
		return 0
	}
	return float64(e.ClosestPoisoned) / float64(e.Lookups)
}

// MeanAttackerFrac returns the mean attacker share of result sets.
func (e *EclipseStats) MeanAttackerFrac() float64 {
	if e.Lookups == 0 {
		return 0
	}
	return e.AttackerFracSum / float64(e.Lookups)
}

// Record classifies one lookup result into the stats.
func (e *EclipseStats) Record(a *Attack, r kademlia.Result) {
	e.Lookups++
	if len(r.Closest) == 0 {
		return
	}
	atk := a.CountAttacker(r.Closest)
	e.AttackerFracSum += float64(atk) / float64(len(r.Closest))
	if 2*atk > len(r.Closest) {
		e.MajorityPoisoned++
	}
	if a.IsAttacker(r.Closest[0].ID) {
		e.ClosestPoisoned++
	}
}
