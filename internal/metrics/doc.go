// Package metrics provides the statistics and reporting primitives used
// by every experiment: streaming summaries (Welford mean/variance with
// min/max), exact percentile samples, concentration indices (Gini, HHI,
// top-k share), and the artifact types experiments publish results
// through — Table (aligned ASCII and CSV rendering) and Figure (named
// series over a shared x-axis).
//
// A Figure renders three ways, all deterministic for equal inputs:
//
//   - Render draws a coarse ASCII plot for terminal output;
//   - Table flattens the series into a grid for CSV export and
//     cross-seed aggregation;
//   - SVG draws a self-contained vector line plot (axes, tick labels,
//     fixed series palette, legend, and shaded Band polygons for
//     confidence envelopes) for the generated reproduction report.
//
// Determinism is a package contract: no renderer consults the clock,
// random state, or map iteration order, so every artifact is
// byte-identical across runs and safe to hash into a report manifest.
package metrics
