package metrics

import (
	"math"
	"sort"
	"time"
)

// Summary accumulates count, mean, variance, min and max using Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddDuration records a duration observation in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Count returns the number of observations.
func (s *Summary) Count() int { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 with none.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with none.
func (s *Summary) Max() float64 { return s.max }

// Sum returns mean*count, the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Sample retains every observation for exact quantile queries. The zero
// value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDuration records a duration observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. It returns 0 with no observations.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Fraction returns the share of observations satisfying pred.
func (s *Sample) Fraction(pred func(float64) bool) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	k := 0
	for _, x := range s.xs {
		if pred(x) {
			k++
		}
	}
	return float64(k) / float64(len(s.xs))
}

// CDF returns up to points (x, F(x)) pairs summarizing the empirical CDF.
func (s *Sample) CDF(points int) []Point {
	if len(s.xs) == 0 || points <= 0 {
		return nil
	}
	s.sort()
	if points > len(s.xs) {
		points = len(s.xs)
	}
	out := make([]Point, 0, points)
	for i := 0; i < points; i++ {
		idx := i * (len(s.xs) - 1) / max(points-1, 1)
		out = append(out, Point{
			X: s.xs[idx],
			Y: float64(idx+1) / float64(len(s.xs)),
		})
	}
	return out
}

// Values returns a copy of the observations (sorted ascending).
func (s *Sample) Values() []float64 {
	s.sort()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Gini returns the Gini coefficient of xs (0 = perfect equality, →1 =
// maximal concentration). Negative inputs are treated as zero; an empty or
// all-zero input yields 0.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	vals := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		vals = append(vals, x)
	}
	sort.Float64s(vals)
	var cum, total float64
	for i, x := range vals {
		cum += x * float64(i+1)
		total += x
	}
	if total == 0 {
		return 0
	}
	n := float64(len(vals))
	return (2*cum)/(n*total) - (n+1)/n
}

// HHI returns the Herfindahl–Hirschman index of the shares implied by xs:
// the sum of squared market shares, in [1/n, 1]. Values above 0.25 are
// conventionally "highly concentrated".
func HHI(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		if x > 0 {
			total += x
		}
	}
	if total == 0 {
		return 0
	}
	var hhi float64
	for _, x := range xs {
		if x > 0 {
			share := x / total
			hhi += share * share
		}
	}
	return hhi
}

// TopShare returns the combined share of the k largest values of xs.
func TopShare(xs []float64, k int) float64 {
	if len(xs) == 0 || k <= 0 {
		return 0
	}
	vals := make([]float64, len(xs))
	copy(vals, xs)
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	if k > len(vals) {
		k = len(vals)
	}
	var top, total float64
	for i, x := range vals {
		if x < 0 {
			continue
		}
		total += x
		if i < k {
			top += x
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
