package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSVGEmptyFigure(t *testing.T) {
	f := &Figure{Title: "empty", XLabel: "x", YLabel: "y"}
	out := f.SVG(400, 240)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty figure should render a 'no data' placeholder:\n%s", out)
	}
	assertCleanSVG(t, out)
}

func TestSVGSinglePoint(t *testing.T) {
	f := &Figure{Title: "one", XLabel: "x", YLabel: "y"}
	f.Add("s", 3, 7)
	out := f.SVG(400, 240)
	if !strings.Contains(out, "<circle") {
		t.Errorf("single point should render a marker:\n%s", out)
	}
	if strings.Contains(out, "<polyline") {
		t.Errorf("single point must not emit a polyline:\n%s", out)
	}
	assertCleanSVG(t, out)
}

func TestSVGSkipsNonFinitePoints(t *testing.T) {
	f := &Figure{Title: "mixed"}
	f.Add("s", 1, 1)
	f.Add("s", 2, math.NaN())
	f.Add("s", 3, math.Inf(1))
	f.Add("s", 4, 4)
	out := f.SVG(400, 240)
	if got := strings.Count(out, "<circle"); got != 2 {
		t.Errorf("want 2 markers for the 2 finite points, got %d", got)
	}
	assertCleanSVG(t, out)
}

func TestSVGAllNonFinite(t *testing.T) {
	f := &Figure{Title: "void"}
	f.Add("s", math.NaN(), math.NaN())
	out := f.SVG(400, 240)
	if !strings.Contains(out, "no data") {
		t.Errorf("all-non-finite figure should degrade to 'no data':\n%s", out)
	}
	assertCleanSVG(t, out)
}

func TestSVGDeterministicAndEscaped(t *testing.T) {
	build := func() *Figure {
		f := &Figure{Title: `a<b & "c"`, XLabel: "x>", YLabel: "<y"}
		f.Add("first & last", 0, 0)
		f.Add("first & last", 1, 2)
		f.Add("other", 0, 1)
		f.Add("other", 1, 1)
		return f
	}
	a, b := build().SVG(480, 300), build().SVG(480, 300)
	if a != b {
		t.Error("SVG output is not deterministic for equal figures")
	}
	for _, raw := range []string{`a<b`, `"c"`, "x>", "<y", "first & last"} {
		if strings.Contains(a, raw) {
			t.Errorf("unescaped text %q leaked into SVG", raw)
		}
	}
	if !strings.Contains(a, "first &amp; last") {
		t.Error("series name should appear XML-escaped in the legend")
	}
	assertCleanSVG(t, a)
}

func TestSVGClampsTinyDimensions(t *testing.T) {
	f := &Figure{}
	f.Add("s", 1, 1)
	f.Add("s", 2, 2)
	out := f.SVG(1, 1)
	if !strings.Contains(out, `width="160" height="120"`) {
		t.Errorf("tiny dimensions should clamp to 160x120:\n%s", out[:120])
	}
	assertCleanSVG(t, out)
}

// assertCleanSVG checks the shared output contract: well-delimited SVG with
// no NaN/Inf coordinates anywhere.
func assertCleanSVG(t *testing.T, out string) {
	t.Helper()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(out, "</svg>\n") {
		t.Errorf("output is not a well-delimited SVG document")
	}
	for _, bad := range []string{"NaN", "Inf", "+Inf", "-Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("SVG contains non-finite token %q:\n%s", bad, out)
		}
	}
}
