package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSVGEmptyFigure(t *testing.T) {
	f := &Figure{Title: "empty", XLabel: "x", YLabel: "y"}
	out := f.SVG(400, 240)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty figure should render a 'no data' placeholder:\n%s", out)
	}
	assertCleanSVG(t, out)
}

func TestSVGSinglePoint(t *testing.T) {
	f := &Figure{Title: "one", XLabel: "x", YLabel: "y"}
	f.Add("s", 3, 7)
	out := f.SVG(400, 240)
	if !strings.Contains(out, "<circle") {
		t.Errorf("single point should render a marker:\n%s", out)
	}
	if strings.Contains(out, "<polyline") {
		t.Errorf("single point must not emit a polyline:\n%s", out)
	}
	assertCleanSVG(t, out)
}

func TestSVGSkipsNonFinitePoints(t *testing.T) {
	f := &Figure{Title: "mixed"}
	f.Add("s", 1, 1)
	f.Add("s", 2, math.NaN())
	f.Add("s", 3, math.Inf(1))
	f.Add("s", 4, 4)
	out := f.SVG(400, 240)
	if got := strings.Count(out, "<circle"); got != 2 {
		t.Errorf("want 2 markers for the 2 finite points, got %d", got)
	}
	assertCleanSVG(t, out)
}

func TestSVGAllNonFinite(t *testing.T) {
	f := &Figure{Title: "void"}
	f.Add("s", math.NaN(), math.NaN())
	out := f.SVG(400, 240)
	if !strings.Contains(out, "no data") {
		t.Errorf("all-non-finite figure should degrade to 'no data':\n%s", out)
	}
	assertCleanSVG(t, out)
}

func TestSVGDeterministicAndEscaped(t *testing.T) {
	build := func() *Figure {
		f := &Figure{Title: `a<b & "c"`, XLabel: "x>", YLabel: "<y"}
		f.Add("first & last", 0, 0)
		f.Add("first & last", 1, 2)
		f.Add("other", 0, 1)
		f.Add("other", 1, 1)
		return f
	}
	a, b := build().SVG(480, 300), build().SVG(480, 300)
	if a != b {
		t.Error("SVG output is not deterministic for equal figures")
	}
	for _, raw := range []string{`a<b`, `"c"`, "x>", "<y", "first & last"} {
		if strings.Contains(a, raw) {
			t.Errorf("unescaped text %q leaked into SVG", raw)
		}
	}
	if !strings.Contains(a, "first &amp; last") {
		t.Error("series name should appear XML-escaped in the legend")
	}
	assertCleanSVG(t, a)
}

func TestSVGClampsTinyDimensions(t *testing.T) {
	f := &Figure{}
	f.Add("s", 1, 1)
	f.Add("s", 2, 2)
	out := f.SVG(1, 1)
	if !strings.Contains(out, `width="160" height="120"`) {
		t.Errorf("tiny dimensions should clamp to 160x120:\n%s", out[:120])
	}
	assertCleanSVG(t, out)
}

func TestSVGBandPolygon(t *testing.T) {
	f := &Figure{Title: "band", XLabel: "x", YLabel: "y"}
	f.Add("mean", 1, 10)
	f.Add("mean", 2, 12)
	f.AddBand("mean", 1, 9, 11)
	f.AddBand("mean", 2, 10, 14)
	out := f.SVG(400, 240)
	if !strings.Contains(out, "<polygon") {
		t.Errorf("band should render a polygon:\n%s", out)
	}
	// The band shares its same-named series' color and sits behind it.
	if !strings.Contains(out, `fill="`+svgPalette[0]+`" fill-opacity="0.15"`) {
		t.Errorf("band should reuse the matching series color at low opacity:\n%s", out)
	}
	if strings.Index(out, "<polygon") > strings.Index(out, "<polyline") {
		t.Error("band polygon should be drawn before (behind) the series polyline")
	}
	assertCleanSVG(t, out)
}

// TestSVGBandExtendsRange checks band intervals widen the y axis: a Hi
// above every series point must still sit inside the plot frame.
func TestSVGBandExtendsRange(t *testing.T) {
	f := &Figure{}
	f.Add("mean", 1, 10)
	f.Add("mean", 2, 10)
	f.AddBand("mean", 1, 0, 100)
	f.AddBand("mean", 2, 0, 100)
	out := f.SVG(400, 240)
	// With the band counted, the y axis spans 0..100; its top tick label
	// must appear.
	if !strings.Contains(out, ">100<") {
		t.Errorf("y axis should stretch to the band's Hi=100:\n%s", out)
	}
	assertCleanSVG(t, out)
}

func TestSVGBandSkipsNonFinite(t *testing.T) {
	f := &Figure{}
	f.Add("mean", 1, 1)
	f.Add("mean", 2, 2)
	f.AddBand("mean", 1, 0.5, 1.5)
	f.AddBand("mean", 2, math.NaN(), 2.5)
	out := f.SVG(400, 240)
	// Only one finite band point remains — not enough for a polygon.
	if strings.Contains(out, "<polygon") {
		t.Errorf("a band with <2 finite points must not render:\n%s", out)
	}
	assertCleanSVG(t, out)
}

// TestSVGNoBandsUnchanged pins that a band-free figure renders without
// any polygon — the byte-level contract that adding Band support did not
// disturb existing figures.
func TestSVGNoBandsUnchanged(t *testing.T) {
	f := &Figure{}
	f.Add("s", 1, 1)
	f.Add("s", 2, 2)
	if out := f.SVG(400, 240); strings.Contains(out, "<polygon") {
		t.Errorf("figure without bands must not emit polygons:\n%s", out)
	}
}

// assertCleanSVG checks the shared output contract: well-delimited SVG with
// no NaN/Inf coordinates anywhere.
func assertCleanSVG(t *testing.T, out string) {
	t.Helper()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(out, "</svg>\n") {
		t.Errorf("output is not a well-delimited SVG document")
	}
	for _, bad := range []string{"NaN", "Inf", "+Inf", "-Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("SVG contains non-finite token %q:\n%s", bad, out)
		}
	}
}
