package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := s.Std(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if got := s.Sum(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("Sum = %v, want 40", got)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.Count() != 0 {
		t.Fatal("zero-value Summary must report zeros")
	}
}

func TestSummaryDuration(t *testing.T) {
	var s Summary
	s.AddDuration(1500 * time.Millisecond)
	if got := s.Mean(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Mean = %v, want 1.5", got)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{50, 50.5},
		{90, 90.1},
		{100, 100},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Median = %v, want 50.5", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 {
		t.Fatal("empty Sample must report zeros")
	}
	if s.CDF(10) != nil {
		t.Fatal("empty Sample CDF must be nil")
	}
}

func TestSampleFraction(t *testing.T) {
	var s Sample
	for i := 0; i < 10; i++ {
		s.Add(float64(i))
	}
	got := s.Fraction(func(x float64) bool { return x < 5 })
	if got != 0.5 {
		t.Fatalf("Fraction = %v, want 0.5", got)
	}
}

func TestSampleCDFMonotone(t *testing.T) {
	var s Sample
	for i := 0; i < 57; i++ {
		s.Add(float64(57 - i))
	}
	cdf := s.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("CDF len = %d, want 10", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X < cdf[i-1].X || cdf[i].Y < cdf[i-1].Y {
			t.Fatalf("CDF not monotone at %d: %+v", i, cdf)
		}
	}
	if cdf[len(cdf)-1].Y != 1 {
		t.Fatalf("CDF must end at 1, got %v", cdf[len(cdf)-1].Y)
	}
}

func TestGini(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
		tol  float64
	}{
		{"equal", []float64{1, 1, 1, 1}, 0, 1e-12},
		{"empty", nil, 0, 0},
		{"all zero", []float64{0, 0}, 0, 0},
		{"one holds all", append(make([]float64, 99), 100), 0.99, 0.001},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Gini(tt.xs); math.Abs(got-tt.want) > tt.tol {
				t.Fatalf("Gini = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestHHI(t *testing.T) {
	if got := HHI([]float64{1, 1, 1, 1}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("HHI(4 equal) = %v, want 0.25", got)
	}
	if got := HHI([]float64{1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("HHI(monopoly) = %v, want 1", got)
	}
	if got := HHI(nil); got != 0 {
		t.Fatalf("HHI(nil) = %v, want 0", got)
	}
}

func TestTopShare(t *testing.T) {
	xs := []float64{50, 30, 10, 5, 5}
	if got := TopShare(xs, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("TopShare k=1 = %v, want 0.5", got)
	}
	if got := TopShare(xs, 3); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("TopShare k=3 = %v, want 0.9", got)
	}
	if got := TopShare(xs, 100); math.Abs(got-1) > 1e-12 {
		t.Fatalf("TopShare k>n = %v, want 1", got)
	}
	if got := TopShare(nil, 2); got != 0 {
		t.Fatalf("TopShare(nil) = %v, want 0", got)
	}
}

// Property: Gini is scale-invariant and bounded by [0, 1).
func TestPropertyGini(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			scaled[i] = float64(v) * 7.5
		}
		g1, g2 := Gini(xs), Gini(scaled)
		if g1 < -1e-9 || g1 >= 1 {
			return false
		}
		return math.Abs(g1-g2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: HHI lies in [1/n, 1] for any non-trivial share vector.
func TestPropertyHHI(t *testing.T) {
	f := func(raw []uint8) bool {
		var pos int
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			if v > 0 {
				pos++
			}
		}
		h := HHI(xs)
		if pos == 0 {
			return h == 0
		}
		return h >= 1/float64(pos)-1e-9 && h <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "system", "tps")
	tab.AddRow("bitcoin", "3.7")
	tab.AddRowf("ethereum", 15.2)
	tab.AddNote("shape only")
	out := tab.String()
	for _, want := range []string{"demo", "system", "bitcoin", "15.2", "note: shape only"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow("1")
	tab.AddRow("1", "2", "3")
	if len(tab.Rows[0]) != 2 {
		t.Fatalf("short row not padded: %v", tab.Rows[0])
	}
	if len(tab.Columns) != 3 {
		t.Fatalf("long row did not extend columns: %v", tab.Columns)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow(`say "hi"`, "x,y")
	csv := tab.CSV()
	if !strings.Contains(csv, `"say ""hi"""`) || !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("CSV quoting wrong:\n%s", csv)
	}
}

func TestFigure(t *testing.T) {
	var f Figure
	f.Title = "fork rate"
	f.XLabel = "interval"
	f.YLabel = "stale"
	f.Add("sim", 1, 0.5)
	f.Add("sim", 2, 0.25)
	f.Add("model", 1, 0.52)
	if len(f.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(f.Series))
	}
	tab := f.Table()
	if len(tab.Rows) != 2 {
		t.Fatalf("figure table rows = %d, want 2", len(tab.Rows))
	}
	plot := f.Render(40, 10)
	if !strings.Contains(plot, "fork rate") || !strings.Contains(plot, "sim") {
		t.Fatalf("plot missing title/legend:\n%s", plot)
	}
}

func TestFigureEmpty(t *testing.T) {
	var f Figure
	f.Title = "empty"
	if got := f.Render(40, 10); !strings.Contains(got, "no data") {
		t.Fatalf("empty figure should say 'no data', got %q", got)
	}
}

func TestTableAndFigureJSON(t *testing.T) {
	tab := NewTable("tbl", "k", "v")
	tab.AddRowf("a", 3.25)
	tab.AddNote("a note")
	data, err := tab.JSON()
	if err != nil {
		t.Fatalf("Table.JSON: %v", err)
	}
	var backT Table
	if err := json.Unmarshal(data, &backT); err != nil {
		t.Fatalf("table unmarshal: %v", err)
	}
	if backT.Title != "tbl" || len(backT.Rows) != 1 || backT.Rows[0][1] != "3.25" {
		t.Fatalf("table round trip lost data: %+v", backT)
	}
	var f Figure
	f.Title = "fig"
	f.XLabel = "x"
	f.Add("s", 1, 2)
	data, err = f.JSON()
	if err != nil {
		t.Fatalf("Figure.JSON: %v", err)
	}
	var backF Figure
	if err := json.Unmarshal(data, &backF); err != nil {
		t.Fatalf("figure unmarshal: %v", err)
	}
	if backF.Title != "fig" || len(backF.Series) != 1 || backF.Series[0].Points[0].Y != 2 {
		t.Fatalf("figure round trip lost data: %+v", backF)
	}
}

// TestSampleSingleObservation pins percentile behavior at n=1: every
// percentile, the median included, is the lone observation.
func TestSampleSingleObservation(t *testing.T) {
	var s Sample
	s.Add(42)
	for _, p := range []float64{0, 1, 50, 90, 99, 100} {
		if got := s.Percentile(p); got != 42 {
			t.Fatalf("Percentile(%g) = %g with one observation, want 42", p, got)
		}
	}
	if s.Median() != 42 {
		t.Fatalf("Median = %g, want 42", s.Median())
	}
}

// TestSampleCDFOnePoint pins the points=1 edge: a single summary point at
// the sample minimum with its empirical rank, not a division by zero.
func TestSampleCDFOnePoint(t *testing.T) {
	var s Sample
	for _, x := range []float64{3, 1, 2, 4} {
		s.Add(x)
	}
	pts := s.CDF(1)
	if len(pts) != 1 {
		t.Fatalf("CDF(1) returned %d points, want 1", len(pts))
	}
	if pts[0].X != 1 || pts[0].Y != 0.25 {
		t.Fatalf("CDF(1) = {%g, %g}, want {1, 0.25}", pts[0].X, pts[0].Y)
	}

	var one Sample
	one.Add(7)
	pts = one.CDF(1)
	if len(pts) != 1 || pts[0].X != 7 || pts[0].Y != 1 {
		t.Fatalf("CDF(1) on a single observation = %v, want [{7, 1}]", pts)
	}
}

// TestGiniNegativeInputs pins the documented clamp: negative values count
// as zero, and an all-negative (hence all-zero) input yields 0.
func TestGiniNegativeInputs(t *testing.T) {
	if got, want := Gini([]float64{-1, 1}), Gini([]float64{0, 1}); got != want {
		t.Fatalf("Gini([-1,1]) = %g, want %g (negatives clamp to zero)", got, want)
	}
	if got := Gini([]float64{-3, -2, -1}); got != 0 {
		t.Fatalf("Gini(all-negative) = %g, want 0", got)
	}
	if got := Gini([]float64{-5, 10, 10}); got != Gini([]float64{0, 10, 10}) {
		t.Fatalf("Gini with a negative entry diverges from the clamped equivalent")
	}
}
