package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a rendered experiment result: a titled grid of cells matching a
// table (or the data behind a figure) from the paper's argument.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells, long rows
// extend the column set with blank headers so nothing is silently dropped.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	for len(t.Columns) < len(cells) {
		t.Columns = append(t.Columns, "")
	}
	row := make([]string, len(cells))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row formatting each value with %v, using %.4g for floats
// to keep tables compact.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, 0, len(values))
	for _, v := range values {
		switch x := v.(type) {
		case float64:
			cells = append(cells, fmt.Sprintf("%.4g", x))
		case float32:
			cells = append(cells, fmt.Sprintf("%.4g", x))
		default:
			cells = append(cells, fmt.Sprintf("%v", x))
		}
	}
	t.AddRow(cells...)
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	total += 2 * (len(widths) - 1)
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Point is a single (x, y) datum of a figure series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is one named line of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// BandPoint is one x position of a band: the shaded [Lo, Hi] interval at
// that x.
type BandPoint struct {
	X  float64 `json:"x"`
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Band is a shaded x-interval envelope, e.g. the mean±95%-CI region
// around an aggregate series. A band whose Name matches a series is
// drawn in that series' color (at low opacity, behind the lines).
type Band struct {
	Name   string      `json:"name"`
	Points []BandPoint `json:"points"`
}

// Figure is plottable experiment output: one or more series over a shared
// x-axis, optionally wrapped in shaded bands (confidence envelopes).
// Render produces a coarse ASCII plot of the series; the SVG renderer
// also draws the bands; the underlying series data can be exported via
// Table.
type Figure struct {
	Title  string   `json:"title"`
	XLabel string   `json:"xlabel"`
	YLabel string   `json:"ylabel"`
	Series []Series `json:"series"`
	Bands  []Band   `json:"bands,omitempty"`
}

// Add appends a point to the named series, creating it if necessary.
func (f *Figure) Add(series string, x, y float64) {
	for i := range f.Series {
		if f.Series[i].Name == series {
			f.Series[i].Points = append(f.Series[i].Points, Point{X: x, Y: y})
			return
		}
	}
	f.Series = append(f.Series, Series{Name: series, Points: []Point{{X: x, Y: y}}})
}

// AddBand appends an interval point to the named band, creating it if
// necessary.
func (f *Figure) AddBand(band string, x, lo, hi float64) {
	for i := range f.Bands {
		if f.Bands[i].Name == band {
			f.Bands[i].Points = append(f.Bands[i].Points, BandPoint{X: x, Lo: lo, Hi: hi})
			return
		}
	}
	f.Bands = append(f.Bands, Band{Name: band, Points: []BandPoint{{X: x, Lo: lo, Hi: hi}}})
}

// Table flattens the figure into a table with one row per x value and one
// column per series (series are aligned by point index when x values match,
// otherwise by x).
func (f *Figure) Table() *Table {
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, f.XLabel)
	xs := make(map[float64]bool)
	for _, s := range f.Series {
		cols = append(cols, s.Name)
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	t := NewTable(f.Title, cols...)
	for _, x := range sorted {
		row := make([]string, 0, len(cols))
		row = append(row, fmt.Sprintf("%.4g", x))
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.4g", p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}

// Render draws a coarse ASCII plot of all series on a width×height grid.
// Each series uses a distinct marker; a legend follows the plot.
func (f *Figure) Render(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range f.Series {
		for _, p := range s.Points {
			n++
			minX, maxX = minf(minX, p.X), maxf(maxX, p.X)
			minY, maxY = minf(minY, p.Y), maxf(maxY, p.Y)
		}
	}
	if n == 0 {
		return f.Title + " (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	for si, s := range f.Series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			col := int((p.X - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((p.Y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = m
		}
	}
	var b strings.Builder
	if f.Title != "" {
		b.WriteString(f.Title)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%s (y: %.4g..%.4g)\n", f.YLabel, minY, maxY)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s (x: %.4g..%.4g)\n", f.XLabel, minX, maxX)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
