package metrics

import (
	"fmt"
	"math"
	"strings"
)

// svgPalette is the fixed series color cycle for SVG figures. Colors are
// part of the deterministic-output contract: the same figure renders to
// byte-identical SVG on every run.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#17becf", "#8c564b", "#7f7f7f",
}

// SVG renders the figure as a self-contained SVG line plot: axes with
// tick labels, shaded band polygons (confidence envelopes) behind the
// data, one polyline plus point markers per series, and a legend.
// It is the vector sibling of the ASCII Render and shares its conventions:
// output is deterministic (fixed palette, fixed decimal formatting, no
// timestamps or random ids), degenerate ranges are widened so coordinates
// stay finite, and non-finite points are skipped, so the output never
// contains NaN or Inf. Width and height are clamped to sane minimums.
func (f *Figure) SVG(width, height int) string {
	if width < 160 {
		width = 160
	}
	if height < 120 {
		height = 120
	}
	const (
		marginL = 64
		marginR = 16
		marginT = 28
		marginB = 44
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !finite(p.X) || !finite(p.Y) {
				continue
			}
			n++
			minX, maxX = minf(minX, p.X), maxf(maxX, p.X)
			minY, maxY = minf(minY, p.Y), maxf(maxY, p.Y)
		}
	}
	for _, bd := range f.Bands {
		for _, p := range bd.Points {
			if !finite(p.X) || !finite(p.Lo) || !finite(p.Hi) {
				continue
			}
			n++
			minX, maxX = minf(minX, p.X), maxf(maxX, p.X)
			minY, maxY = minf(minY, p.Lo), maxf(maxY, p.Hi)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if f.Title != "" {
		fmt.Fprintf(&b, `<text x="%s" y="16" text-anchor="middle" font-size="13">%s</text>`+"\n",
			svgNum(float64(width)/2), svgEsc(f.Title))
	}
	if n == 0 {
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="middle" fill="#888">no data</text>`+"\n",
			svgNum(float64(width)/2), svgNum(float64(height)/2))
		b.WriteString("</svg>\n")
		return b.String()
	}
	// Widen degenerate ranges (single x or single y value) exactly like
	// Render, so scale factors below stay finite.
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return marginT + plotH - (y-minY)/(maxY-minY)*plotH }

	// Frame and ticks: 5 evenly spaced ticks per axis, labeled at the
	// same %.4g precision the ASCII renderer and tables use.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%s" height="%s" fill="none" stroke="#ccc"/>`+"\n",
		marginL, marginT, svgNum(plotW), svgNum(plotH))
	const ticks = 5
	for i := 0; i < ticks; i++ {
		frac := float64(i) / float64(ticks-1)
		xv := minX + frac*(maxX-minX)
		yv := minY + frac*(maxY-minY)
		tx := px(xv)
		ty := py(yv)
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#eee"/>`+"\n",
			svgNum(tx), svgNum(float64(marginT)), svgNum(tx), svgNum(float64(marginT)+plotH))
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#eee"/>`+"\n",
			svgNum(float64(marginL)), svgNum(ty), svgNum(float64(marginL)+plotW), svgNum(ty))
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="middle">%s</text>`+"\n",
			svgNum(tx), svgNum(float64(marginT)+plotH+14), svgEsc(fmt.Sprintf("%.4g", xv)))
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="end">%s</text>`+"\n",
			svgNum(float64(marginL)-6), svgNum(ty+4), svgEsc(fmt.Sprintf("%.4g", yv)))
	}
	if f.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="middle">%s</text>`+"\n",
			svgNum(marginL+plotW/2), svgNum(float64(height)-8), svgEsc(f.XLabel))
	}
	if f.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%s" text-anchor="middle" transform="rotate(-90 14 %s)">%s</text>`+"\n",
			svgNum(marginT+plotH/2), svgNum(marginT+plotH/2), svgEsc(f.YLabel))
	}
	// Bands first, behind the lines: each renders as a closed polygon —
	// the Hi edge left to right, then the Lo edge back. A band whose name
	// matches a series shares that series' color.
	for bi, bd := range f.Bands {
		color := svgPalette[(len(f.Series)+bi)%len(svgPalette)]
		for si, s := range f.Series {
			if s.Name == bd.Name {
				color = svgPalette[si%len(svgPalette)]
				break
			}
		}
		pts := make([]BandPoint, 0, len(bd.Points))
		for _, p := range bd.Points {
			if finite(p.X) && finite(p.Lo) && finite(p.Hi) {
				pts = append(pts, p)
			}
		}
		if len(pts) < 2 {
			continue
		}
		var poly strings.Builder
		for i, p := range pts {
			if i > 0 {
				poly.WriteByte(' ')
			}
			poly.WriteString(svgNum(px(p.X)))
			poly.WriteByte(',')
			poly.WriteString(svgNum(py(p.Hi)))
		}
		for i := len(pts) - 1; i >= 0; i-- {
			poly.WriteByte(' ')
			poly.WriteString(svgNum(px(pts[i].X)))
			poly.WriteByte(',')
			poly.WriteString(svgNum(py(pts[i].Lo)))
		}
		fmt.Fprintf(&b, `<polygon points="%s" fill="%s" fill-opacity="0.15" stroke="none"/>`+"\n",
			poly.String(), color)
	}
	for si, s := range f.Series {
		color := svgPalette[si%len(svgPalette)]
		var path strings.Builder
		segN := 0
		for _, p := range s.Points {
			if !finite(p.X) || !finite(p.Y) {
				continue
			}
			if segN > 0 {
				path.WriteByte(' ')
			}
			path.WriteString(svgNum(px(p.X)))
			path.WriteByte(',')
			path.WriteString(svgNum(py(p.Y)))
			segN++
		}
		if segN > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				path.String(), color)
		}
		for _, p := range s.Points {
			if !finite(p.X) || !finite(p.Y) {
				continue
			}
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.5" fill="%s"/>`+"\n",
				svgNum(px(p.X)), svgNum(py(p.Y)), color)
		}
	}
	// Legend: top-right inside the plot, one swatch + name per series.
	for si, s := range f.Series {
		color := svgPalette[si%len(svgPalette)]
		ly := float64(marginT) + 14 + 14*float64(si)
		lx := float64(marginL) + plotW - 12
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="10" height="10" fill="%s"/>`+"\n",
			svgNum(lx), svgNum(ly-9), color)
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="end">%s</text>`+"\n",
			svgNum(lx-4), svgNum(ly), svgEsc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// svgNum formats a coordinate with fixed two-decimal precision: enough for
// sub-pixel placement, few enough digits that float noise cannot leak into
// the byte-level determinism contract.
func svgNum(v float64) string {
	return fmt.Sprintf("%.2f", v)
}

// svgEscaper escapes text for SVG/XML content and attribute values.
var svgEscaper = strings.NewReplacer(
	"&", "&amp;",
	"<", "&lt;",
	">", "&gt;",
	`"`, "&quot;",
)

func svgEsc(s string) string {
	return svgEscaper.Replace(s)
}
