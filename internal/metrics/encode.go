package metrics

import "encoding/json"

// JSON renders the table as indented, deterministic JSON. Field order is
// fixed by the struct definition, so equal tables encode byte-identically.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// JSON renders the figure as indented, deterministic JSON.
func (f *Figure) JSON() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}
