package econ

import "errors"

// EnergyParams models proof-of-work energy at economic equilibrium: miners
// add power until the marginal electricity cost approaches marginal revenue,
// so network consumption is pinned by coin price and reward schedule rather
// than by transaction load — the mechanism behind "Bitcoin consumes as much
// as Austria".
type EnergyParams struct {
	// CoinPriceUSD is the exchange rate.
	CoinPriceUSD float64
	// BlockRewardCoins is the subsidy per block; FeesPerBlockCoins the
	// average fee take.
	BlockRewardCoins, FeesPerBlockCoins float64
	// BlocksPerDay is the block production rate (Bitcoin: 144).
	BlocksPerDay float64
	// ElecUSDPerKWh is the marginal miner's electricity price.
	ElecUSDPerKWh float64
	// CostShare is the fraction of revenue spent on electricity at
	// equilibrium (the rest covers hardware and margin), typically
	// 0.6–0.9.
	CostShare float64
}

// Bitcoin2018Energy returns parameters matching late-2018 Bitcoin: ~$7.5k
// per coin, 12.5 BTC subsidy, wholesale electricity.
func Bitcoin2018Energy() EnergyParams {
	return EnergyParams{
		CoinPriceUSD:      7500,
		BlockRewardCoins:  12.5,
		FeesPerBlockCoins: 0.3,
		BlocksPerDay:      144,
		ElecUSDPerKWh:     0.05,
		CostShare:         0.75,
	}
}

// DailyRevenueUSD returns the network's total daily mining revenue.
func (p EnergyParams) DailyRevenueUSD() float64 {
	return p.CoinPriceUSD * (p.BlockRewardCoins + p.FeesPerBlockCoins) * p.BlocksPerDay
}

// NetworkPowerGW returns the equilibrium power draw in gigawatts.
func (p EnergyParams) NetworkPowerGW() (float64, error) {
	if p.ElecUSDPerKWh <= 0 {
		return 0, errors.New("econ: electricity price must be positive")
	}
	if p.CostShare <= 0 || p.CostShare > 1 {
		return 0, errors.New("econ: CostShare must be in (0,1]")
	}
	dailyKWh := p.DailyRevenueUSD() * p.CostShare / p.ElecUSDPerKWh
	return dailyKWh / 24 / 1e6, nil
}

// AnnualTWh returns the equilibrium annual energy consumption in
// terawatt-hours.
func (p EnergyParams) AnnualTWh() (float64, error) {
	gw, err := p.NetworkPowerGW()
	if err != nil {
		return 0, err
	}
	return gw * 24 * 365 / 1000, nil
}

// PerTxKWh returns the energy cost of a single transaction at the given
// throughput (transactions per second).
func (p EnergyParams) PerTxKWh(tps float64) (float64, error) {
	if tps <= 0 {
		return 0, errors.New("econ: tps must be positive")
	}
	gw, err := p.NetworkPowerGW()
	if err != nil {
		return 0, err
	}
	txPerDay := tps * 86_400
	dailyKWh := gw * 1e6 * 24
	return dailyKWh / txPerDay, nil
}
