package econ

import (
	"errors"
	"math"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// HardwareGen describes one mining hardware generation.
type HardwareGen struct {
	// Name labels the generation.
	Name string
	// HashPerSec is per-unit hashrate (consistent arbitrary units).
	HashPerSec float64
	// Watts is per-unit power draw.
	Watts float64
	// UnitCostUSD is the capital cost of one unit.
	UnitCostUSD float64
	// AvailableFrom is the first epoch the generation can be bought.
	AvailableFrom int
}

// DefaultHardwareGens returns the CPU → GPU → ASIC progression with
// efficiency (hash/joule) jumps of several orders of magnitude, matching the
// historical Bitcoin arms race.
func DefaultHardwareGens() []HardwareGen {
	return []HardwareGen{
		{Name: "cpu", HashPerSec: 1, Watts: 100, UnitCostUSD: 500, AvailableFrom: 0},
		{Name: "gpu", HashPerSec: 400, Watts: 300, UnitCostUSD: 800, AvailableFrom: 2},
		{Name: "asic-1", HashPerSec: 2e5, Watts: 1200, UnitCostUSD: 3000, AvailableFrom: 6},
		{Name: "asic-2", HashPerSec: 3e6, Watts: 1400, UnitCostUSD: 4000, AvailableFrom: 12},
	}
}

// MiningEconConfig parameterizes the mining-economy simulation.
type MiningEconConfig struct {
	// Epochs is the horizon (one epoch ≈ one month).
	Epochs int
	// RewardUSDPerEpoch is the total network mining revenue per epoch.
	RewardUSDPerEpoch float64
	// Hobbyists is the number of commodity miners (one unit each, retail
	// electricity); Farms is the number of industrial operations
	// (wholesale electricity, reinvested profits).
	Hobbyists, Farms int
	// RetailElecUSDPerKWh and WholesaleElecUSDPerKWh are electricity
	// prices for the two classes.
	RetailElecUSDPerKWh, WholesaleElecUSDPerKWh float64
	// Gens is the hardware roadmap (default DefaultHardwareGens).
	Gens []HardwareGen
	// ExitAfterLossEpochs is how many consecutive loss epochs a hobbyist
	// tolerates before quitting (default 2).
	ExitAfterLossEpochs int
}

func (c MiningEconConfig) withDefaults() (MiningEconConfig, error) {
	if c.Epochs <= 0 {
		return c, errors.New("econ: Epochs must be positive")
	}
	if c.Hobbyists <= 0 || c.Farms <= 0 {
		return c, errors.New("econ: need both hobbyists and farms")
	}
	if c.RewardUSDPerEpoch <= 0 {
		return c, errors.New("econ: RewardUSDPerEpoch must be positive")
	}
	if c.RetailElecUSDPerKWh <= 0 {
		c.RetailElecUSDPerKWh = 0.20
	}
	if c.WholesaleElecUSDPerKWh <= 0 {
		c.WholesaleElecUSDPerKWh = 0.04
	}
	if len(c.Gens) == 0 {
		c.Gens = DefaultHardwareGens()
	}
	if c.ExitAfterLossEpochs <= 0 {
		c.ExitAfterLossEpochs = 2
	}
	return c, nil
}

// EpochStat records the network state at one epoch.
type EpochStat struct {
	Epoch            int
	NetworkHash      float64
	HobbyistsActive  int
	FarmsActive      int
	HobbyistProfit   float64 // USD per hobbyist per epoch
	FarmShare        float64 // fraction of hashrate held by farms
	NetworkPowerWatt float64
}

// MiningEconResult reports the arms-race trajectory.
type MiningEconResult struct {
	Epochs []EpochStat
	// HobbyistExtinctionEpoch is the first epoch with no active
	// hobbyists (-1 if they survive the horizon).
	HobbyistExtinctionEpoch int
	// FinalFarmShare is the farms' final hashrate share.
	FinalFarmShare float64
}

const hoursPerEpoch = 730 // one month

// RunMiningEconomy simulates the hardware arms race: farms reinvest profit
// into the best available generation while hobbyists run one commodity unit
// at retail electricity prices and exit after sustained losses.
func RunMiningEconomy(g *sim.RNG, cfg MiningEconConfig) (*MiningEconResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	type agent struct {
		farm       bool
		units      float64
		gen        int
		elec       float64
		lossStreak int
		active     bool
	}
	agents := make([]*agent, 0, cfg.Hobbyists+cfg.Farms)
	for i := 0; i < cfg.Hobbyists; i++ {
		agents = append(agents, &agent{
			units:  1,
			gen:    0,
			elec:   cfg.RetailElecUSDPerKWh * (0.8 + 0.4*g.Float64()),
			active: true,
		})
	}
	for i := 0; i < cfg.Farms; i++ {
		agents = append(agents, &agent{
			farm:   true,
			units:  1 + g.Float64()*4,
			gen:    0,
			elec:   cfg.WholesaleElecUSDPerKWh * (0.8 + 0.4*g.Float64()),
			active: true,
		})
	}
	res := &MiningEconResult{HobbyistExtinctionEpoch: -1}
	bestGen := func(epoch int) int {
		best := 0
		for i, gen := range cfg.Gens {
			if gen.AvailableFrom <= epoch {
				best = i
			}
		}
		return best
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Farms upgrade to the newest generation and reinvest.
		for _, a := range agents {
			if !a.active || !a.farm {
				continue
			}
			if ng := bestGen(epoch); ng > a.gen {
				// Replace fleet: capital rolls over at half value.
				a.units = a.units*cfg.Gens[a.gen].UnitCostUSD/cfg.Gens[ng].UnitCostUSD/2 + 1
				a.gen = ng
			}
		}
		var totalHash, totalPower float64
		for _, a := range agents {
			if !a.active {
				continue
			}
			totalHash += a.units * cfg.Gens[a.gen].HashPerSec
		}
		if totalHash == 0 {
			break
		}
		var hobbyProfit float64
		var hobbyActive, farmActive int
		var farmHash float64
		for _, a := range agents {
			if !a.active {
				continue
			}
			hash := a.units * cfg.Gens[a.gen].HashPerSec
			watts := a.units * cfg.Gens[a.gen].Watts
			totalPower += watts
			revenue := cfg.RewardUSDPerEpoch * hash / totalHash
			cost := watts / 1000 * hoursPerEpoch * a.elec
			profit := revenue - cost
			if a.farm {
				farmActive++
				farmHash += hash
				if profit > 0 {
					// Reinvest into more units of the current generation.
					a.units += profit / cfg.Gens[a.gen].UnitCostUSD
				}
				continue
			}
			hobbyActive++
			hobbyProfit += profit
			if profit < 0 {
				a.lossStreak++
				if a.lossStreak >= cfg.ExitAfterLossEpochs {
					a.active = false
				}
			} else {
				a.lossStreak = 0
			}
		}
		stat := EpochStat{
			Epoch:            epoch,
			NetworkHash:      totalHash,
			HobbyistsActive:  hobbyActive,
			FarmsActive:      farmActive,
			FarmShare:        farmHash / totalHash,
			NetworkPowerWatt: totalPower,
		}
		if hobbyActive > 0 {
			stat.HobbyistProfit = hobbyProfit / float64(hobbyActive)
		}
		res.Epochs = append(res.Epochs, stat)
		if hobbyActive == 0 && res.HobbyistExtinctionEpoch < 0 {
			res.HobbyistExtinctionEpoch = epoch
		}
	}
	if n := len(res.Epochs); n > 0 {
		res.FinalFarmShare = res.Epochs[n-1].FarmShare
	}
	return res, nil
}

// PoolConfig parameterizes pool-concentration dynamics: miners pick pools to
// minimize payout variance, which favours large pools — preferential
// attachment again, now over hashpower.
type PoolConfig struct {
	// Pools is the number of candidate pools.
	Pools int
	// Miners is the number of miners choosing a pool.
	Miners int
	// SizeBias is the preferential-attachment exponent (1 = linear;
	// >1 = super-linear, winner-take-most).
	SizeBias float64
	// FeeSpread adds per-pool fitness noise (pool fees/reliability).
	FeeSpread float64
}

// PoolResult reports pool-concentration outcomes.
type PoolResult struct {
	// Shares is each pool's hashpower share, descending.
	Shares []float64
	// Top6 is the combined share of the six largest pools (the paper's
	// "six mining pools controlled 75%" comparison point).
	Top6 float64
	// HHI is the concentration index.
	HHI float64
}

// RunPoolFormation assigns miners to pools one at a time with probability
// proportional to fitness × (pool hashpower + 1)^SizeBias.
func RunPoolFormation(g *sim.RNG, cfg PoolConfig) (*PoolResult, error) {
	if cfg.Pools < 2 || cfg.Miners < cfg.Pools {
		return nil, errors.New("econ: need >=2 pools and more miners than pools")
	}
	if cfg.SizeBias <= 0 {
		cfg.SizeBias = 1
	}
	fitness := make([]float64, cfg.Pools)
	for i := range fitness {
		fitness[i] = 1
		if cfg.FeeSpread > 0 {
			fitness[i] = 1 + cfg.FeeSpread*g.Float64()
		}
	}
	size := make([]float64, cfg.Pools)
	for m := 0; m < cfg.Miners; m++ {
		var total float64
		weights := make([]float64, cfg.Pools)
		for i := range weights {
			weights[i] = fitness[i] * math.Pow(size[i]+1, cfg.SizeBias)
			total += weights[i]
		}
		target := g.Float64() * total
		var cum float64
		pick := cfg.Pools - 1
		for i, w := range weights {
			cum += w
			if target < cum {
				pick = i
				break
			}
		}
		size[pick]++
	}
	shares := make([]float64, cfg.Pools)
	for i, s := range size {
		shares[i] = s / float64(cfg.Miners)
	}
	for i := 1; i < len(shares); i++ {
		for j := i; j > 0 && shares[j] > shares[j-1]; j-- {
			shares[j], shares[j-1] = shares[j-1], shares[j]
		}
	}
	return &PoolResult{
		Shares: shares,
		Top6:   metrics.TopShare(shares, 6),
		HHI:    metrics.HHI(shares),
	}, nil
}
