package econ

import (
	"errors"
	"math"

	"repro/internal/sim"
)

// NodeCostParams models the resource demands a broadcast blockchain places
// on every full node: the chain grows with transaction rate, and validation
// bandwidth/CPU grows with it. Nodes whose resources fall below the demand
// demote to light clients — the paper's "retagging nodes as light nodes"
// observation.
type NodeCostParams struct {
	// TPS is the sustained transaction rate.
	TPS float64
	// TxBytes is the mean on-chain size per transaction.
	TxBytes int
	// Years is the horizon.
	Years int
	// Nodes is the node population.
	Nodes int
	// DiskGBMedian and DiskGBSigma describe the lognormal distribution of
	// per-node disk budgets for chain storage.
	DiskGBMedian, DiskGBSigma float64
	// InitialChainGB is the chain size at year zero.
	InitialChainGB float64
}

func (p NodeCostParams) withDefaults() (NodeCostParams, error) {
	if p.TPS <= 0 {
		return p, errors.New("econ: TPS must be positive")
	}
	if p.TxBytes <= 0 {
		p.TxBytes = 400
	}
	if p.Years <= 0 {
		p.Years = 10
	}
	if p.Nodes <= 0 {
		p.Nodes = 10_000
	}
	if p.DiskGBMedian <= 0 {
		p.DiskGBMedian = 320
	}
	if p.DiskGBSigma <= 0 {
		p.DiskGBSigma = 1.0
	}
	return p, nil
}

// ChainGrowthGBPerYear returns annual chain growth.
func (p NodeCostParams) ChainGrowthGBPerYear() float64 {
	return p.TPS * float64(p.TxBytes) * 86_400 * 365 / 1e9
}

// NodeYearStat records the node population split at one year.
type NodeYearStat struct {
	Year      int
	ChainGB   float64
	FullNodes int
	FullFrac  float64
}

// NodeCostResult reports the full-node erosion trajectory.
type NodeCostResult struct {
	Years []NodeYearStat
	// FullFracStart and FullFracEnd are the initial and final full-node
	// fractions.
	FullFracStart, FullFracEnd float64
}

// RunNodeCostModel draws per-node disk budgets and reports how the full-node
// fraction declines as the chain outgrows them. "Network size" counting
// light clients stays constant while the validating core shrinks.
func RunNodeCostModel(g *sim.RNG, p NodeCostParams) (*NodeCostResult, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	budgets := make([]float64, p.Nodes)
	mu := math.Log(p.DiskGBMedian)
	for i := range budgets {
		budgets[i] = math.Exp(mu + p.DiskGBSigma*g.NormFloat64())
	}
	res := &NodeCostResult{}
	growth := p.ChainGrowthGBPerYear()
	for year := 0; year <= p.Years; year++ {
		chain := p.InitialChainGB + growth*float64(year)
		full := 0
		for _, b := range budgets {
			if b >= chain {
				full++
			}
		}
		stat := NodeYearStat{
			Year:      year,
			ChainGB:   chain,
			FullNodes: full,
			FullFrac:  float64(full) / float64(p.Nodes),
		}
		res.Years = append(res.Years, stat)
	}
	res.FullFracStart = res.Years[0].FullFrac
	res.FullFracEnd = res.Years[len(res.Years)-1].FullFrac
	return res, nil
}
