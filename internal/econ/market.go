// Package econ models the economic dynamics the paper leans on: market
// concentration from preferential attachment (the CDN/cloud numbers of the
// introduction), the mining arms race that centralizes hashpower into a few
// pools and prices out commodity hardware, the equilibrium energy
// consumption of proof-of-work, and the node-resource growth that erodes the
// full-node population.
package econ

import (
	"errors"
	"math"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// MarketConfig parameterizes a preferential-attachment market-share model:
// customers arrive one by one and choose a provider with probability
// proportional to fitness × (installed base + k). This is exactly the
// "natural effect of market dynamics such as preferential attachment" the
// paper cites to explain CDN/cloud concentration.
type MarketConfig struct {
	// Providers is the number of competing providers.
	Providers int
	// Customers is the number of arriving customers.
	Customers int
	// FitnessSigma is the lognormal spread of provider quality
	// (0 = identical providers; larger = stronger winner-take-most).
	FitnessSigma float64
	// Smoothing is the additive constant k giving empty providers a
	// chance (default 1).
	Smoothing float64
	// Exploration is the probability a customer ignores installed base
	// and picks on fitness alone (idiosyncratic needs, regional pricing).
	// It tempers lock-in: 0 converges to near-monopoly, higher values
	// yield the oligopoly profile real CDN/cloud markets show.
	Exploration float64
}

// MarketResult reports the final share distribution.
type MarketResult struct {
	// Shares is each provider's customer share, descending.
	Shares []float64
	// Top1, Top3, Top5 are combined shares of the largest providers.
	Top1, Top3, Top5 float64
	// HHI is the Herfindahl–Hirschman index; Gini the Gini coefficient.
	HHI, Gini float64
}

// RunMarket simulates the arrival process and returns the concentration
// profile.
func RunMarket(g *sim.RNG, cfg MarketConfig) (*MarketResult, error) {
	if cfg.Providers < 2 {
		return nil, errors.New("econ: need at least two providers")
	}
	if cfg.Customers < cfg.Providers {
		return nil, errors.New("econ: need at least as many customers as providers")
	}
	if cfg.Smoothing <= 0 {
		cfg.Smoothing = 1
	}
	fitness := make([]float64, cfg.Providers)
	for i := range fitness {
		fitness[i] = math.Exp(cfg.FitnessSigma * g.NormFloat64())
	}
	customers := make([]float64, cfg.Providers)
	weights := make([]float64, cfg.Providers)
	for c := 0; c < cfg.Customers; c++ {
		explore := g.Bool(cfg.Exploration)
		var total float64
		for i := range weights {
			if explore {
				weights[i] = fitness[i]
			} else {
				weights[i] = fitness[i] * (customers[i] + cfg.Smoothing)
			}
			total += weights[i]
		}
		target := g.Float64() * total
		var cum float64
		pick := cfg.Providers - 1
		for i, w := range weights {
			cum += w
			if target < cum {
				pick = i
				break
			}
		}
		customers[pick]++
	}
	shares := make([]float64, cfg.Providers)
	for i, c := range customers {
		shares[i] = c / float64(cfg.Customers)
	}
	// Sort descending.
	for i := 1; i < len(shares); i++ {
		for j := i; j > 0 && shares[j] > shares[j-1]; j-- {
			shares[j], shares[j-1] = shares[j-1], shares[j]
		}
	}
	res := &MarketResult{
		Shares: shares,
		Top1:   metrics.TopShare(shares, 1),
		Top3:   metrics.TopShare(shares, 3),
		Top5:   metrics.TopShare(shares, 5),
		HHI:    metrics.HHI(shares),
		Gini:   metrics.Gini(shares),
	}
	return res, nil
}
