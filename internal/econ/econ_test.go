package econ

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestMarketValidation(t *testing.T) {
	g := sim.NewRNG(1)
	if _, err := RunMarket(g, MarketConfig{Providers: 1, Customers: 10}); err == nil {
		t.Fatal("one provider should error")
	}
	if _, err := RunMarket(g, MarketConfig{Providers: 10, Customers: 5}); err == nil {
		t.Fatal("too few customers should error")
	}
}

func TestMarketConcentrates(t *testing.T) {
	g := sim.NewRNG(2)
	res, err := RunMarket(g, MarketConfig{
		Providers:    30,
		Customers:    100_000,
		FitnessSigma: 1.0,
	})
	if err != nil {
		t.Fatalf("RunMarket: %v", err)
	}
	if res.Top1 < 0.15 {
		t.Fatalf("Top1 = %v, expected a dominant provider", res.Top1)
	}
	if res.Top3 < 0.5 {
		t.Fatalf("Top3 = %v, expected majority concentration", res.Top3)
	}
	if res.Top3 > res.Top5 || res.Top1 > res.Top3 {
		t.Fatal("share ordering violated")
	}
	// Shares must sum to ~1 and be sorted descending.
	var sum float64
	for i, s := range res.Shares {
		sum += s
		if i > 0 && s > res.Shares[i-1] {
			t.Fatal("shares not sorted descending")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum = %v, want 1", sum)
	}
}

func TestMarketUniformWithoutFitness(t *testing.T) {
	// With zero fitness spread the lock-in is weaker: top1 should be well
	// below the high-fitness case.
	g := sim.NewRNG(3)
	flat, err := RunMarket(g, MarketConfig{Providers: 30, Customers: 100_000, FitnessSigma: 0})
	if err != nil {
		t.Fatalf("RunMarket: %v", err)
	}
	skewed, err := RunMarket(g, MarketConfig{Providers: 30, Customers: 100_000, FitnessSigma: 1.5})
	if err != nil {
		t.Fatalf("RunMarket: %v", err)
	}
	if flat.HHI >= skewed.HHI {
		t.Fatalf("fitness spread should raise concentration: flat HHI %v, skewed %v", flat.HHI, skewed.HHI)
	}
}

func TestMiningEconomyValidation(t *testing.T) {
	g := sim.NewRNG(4)
	if _, err := RunMiningEconomy(g, MiningEconConfig{}); err == nil {
		t.Fatal("zero config should error")
	}
}

func TestMiningArmsRaceExpelsHobbyists(t *testing.T) {
	g := sim.NewRNG(5)
	res, err := RunMiningEconomy(g, MiningEconConfig{
		Epochs:            24,
		RewardUSDPerEpoch: 5_000_000,
		Hobbyists:         500,
		Farms:             20,
	})
	if err != nil {
		t.Fatalf("RunMiningEconomy: %v", err)
	}
	first := res.Epochs[0]
	last := res.Epochs[len(res.Epochs)-1]
	if last.NetworkHash <= first.NetworkHash*100 {
		t.Fatalf("hashrate should explode with ASICs: %v -> %v", first.NetworkHash, last.NetworkHash)
	}
	if res.FinalFarmShare < 0.95 {
		t.Fatalf("farm share = %v, want industrial dominance", res.FinalFarmShare)
	}
	if last.HobbyistsActive > first.HobbyistsActive/4 {
		t.Fatalf("hobbyists %d -> %d: retail mining should collapse", first.HobbyistsActive, last.HobbyistsActive)
	}
	// Hobbyist profitability must turn negative once ASICs arrive.
	sawLoss := false
	for _, e := range res.Epochs {
		if e.HobbyistsActive > 0 && e.HobbyistProfit < 0 {
			sawLoss = true
			break
		}
	}
	if !sawLoss {
		t.Fatal("hobbyist mining never became unprofitable")
	}
}

func TestPoolFormationConcentrates(t *testing.T) {
	g := sim.NewRNG(6)
	res, err := RunPoolFormation(g, PoolConfig{
		Pools:     20,
		Miners:    10_000,
		SizeBias:  1.3,
		FeeSpread: 0.3,
	})
	if err != nil {
		t.Fatalf("RunPoolFormation: %v", err)
	}
	if res.Top6 < 0.6 {
		t.Fatalf("Top6 = %v, want the paper's 'few pools dominate' shape (>60%%)", res.Top6)
	}
	var sum float64
	for _, s := range res.Shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pool shares sum = %v", sum)
	}
}

func TestPoolFormationLinearVsSuperlinear(t *testing.T) {
	g := sim.NewRNG(7)
	linear, err := RunPoolFormation(g, PoolConfig{Pools: 20, Miners: 10_000, SizeBias: 1})
	if err != nil {
		t.Fatal(err)
	}
	superlinear, err := RunPoolFormation(g, PoolConfig{Pools: 20, Miners: 10_000, SizeBias: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if superlinear.HHI <= linear.HHI {
		t.Fatalf("super-linear attachment should concentrate more: %v vs %v", superlinear.HHI, linear.HHI)
	}
}

func TestPoolValidation(t *testing.T) {
	g := sim.NewRNG(8)
	if _, err := RunPoolFormation(g, PoolConfig{Pools: 1, Miners: 10}); err == nil {
		t.Fatal("one pool should error")
	}
}

func TestEnergyModel2018(t *testing.T) {
	p := Bitcoin2018Energy()
	twh, err := p.AnnualTWh()
	if err != nil {
		t.Fatalf("AnnualTWh: %v", err)
	}
	// The Economist's 2018 figure is ~70 TWh; the model should land in
	// 40–100 TWh.
	if twh < 40 || twh > 100 {
		t.Fatalf("AnnualTWh = %v, want 40-100 (paper cites ~70)", twh)
	}
	perTx, err := p.PerTxKWh(4)
	if err != nil {
		t.Fatalf("PerTxKWh: %v", err)
	}
	// Hundreds of kWh per transaction — the absurdity the paper gestures at.
	if perTx < 100 || perTx > 2000 {
		t.Fatalf("PerTxKWh = %v, want hundreds", perTx)
	}
}

func TestEnergyScalesWithPrice(t *testing.T) {
	low := Bitcoin2018Energy()
	high := Bitcoin2018Energy()
	high.CoinPriceUSD *= 2
	lowTWh, err := low.AnnualTWh()
	if err != nil {
		t.Fatal(err)
	}
	highTWh, err := high.AnnualTWh()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(highTWh/lowTWh-2) > 1e-9 {
		t.Fatalf("energy should scale linearly with price: %v -> %v", lowTWh, highTWh)
	}
}

func TestEnergyValidation(t *testing.T) {
	p := Bitcoin2018Energy()
	p.ElecUSDPerKWh = 0
	if _, err := p.AnnualTWh(); err == nil {
		t.Fatal("zero electricity price should error")
	}
	p = Bitcoin2018Energy()
	p.CostShare = 0
	if _, err := p.NetworkPowerGW(); err == nil {
		t.Fatal("zero cost share should error")
	}
	p = Bitcoin2018Energy()
	if _, err := p.PerTxKWh(0); err == nil {
		t.Fatal("zero tps should error")
	}
}

func TestChainGrowth(t *testing.T) {
	p := NodeCostParams{TPS: 4, TxBytes: 400}
	p, err := p.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	// 4 tx/s * 400 B = 1600 B/s ~ 50.4 GB/year.
	if g := p.ChainGrowthGBPerYear(); math.Abs(g-50.4) > 1 {
		t.Fatalf("ChainGrowthGBPerYear = %v, want ~50", g)
	}
}

func TestNodeCostFullNodeErosion(t *testing.T) {
	g := sim.NewRNG(9)
	res, err := RunNodeCostModel(g, NodeCostParams{
		TPS:            4,
		TxBytes:        400,
		Years:          10,
		Nodes:          10_000,
		DiskGBMedian:   320,
		InitialChainGB: 150,
	})
	if err != nil {
		t.Fatalf("RunNodeCostModel: %v", err)
	}
	if res.FullFracEnd >= res.FullFracStart {
		t.Fatalf("full-node fraction should erode: %v -> %v", res.FullFracStart, res.FullFracEnd)
	}
	// Monotone non-increasing.
	for i := 1; i < len(res.Years); i++ {
		if res.Years[i].FullFrac > res.Years[i-1].FullFrac+1e-12 {
			t.Fatal("full-node fraction increased over time")
		}
	}
}

func TestNodeCostScaledThroughputErodesFaster(t *testing.T) {
	run := func(tps float64) float64 {
		g := sim.NewRNG(10)
		res, err := RunNodeCostModel(g, NodeCostParams{
			TPS: tps, TxBytes: 400, Years: 10, Nodes: 5000,
			DiskGBMedian: 320, InitialChainGB: 150,
		})
		if err != nil {
			t.Fatalf("RunNodeCostModel: %v", err)
		}
		return res.FullFracEnd
	}
	bitcoinScale := run(4)
	visaScale := run(4000)
	if visaScale >= bitcoinScale {
		t.Fatalf("VISA-scale throughput should erode full nodes faster: %v vs %v", visaScale, bitcoinScale)
	}
	if visaScale > 0.05 {
		t.Fatalf("at VISA scale almost nobody can run a full node, got %v", visaScale)
	}
}

func TestNodeCostValidation(t *testing.T) {
	g := sim.NewRNG(11)
	if _, err := RunNodeCostModel(g, NodeCostParams{}); err == nil {
		t.Fatal("zero TPS should error")
	}
}
