package netmodel

import (
	"time"

	"repro/internal/obs"
)

// Telemetry instrumentation for the transport. The instruments live as
// direct fields on Net (see netmodel.go); when no collector is attached
// they are all nil, and every recording call below degrades to a
// nil-receiver no-op — one predictable branch, zero allocations — so the
// hot paths carry their instrumentation unconditionally.

// regionLabels maps the Region enum (1-based; 0 is "unset") to lane labels.
var regionLabels = []string{"?", "NA", "EU", "AS", "SA", "OC", "AF"}

// observe registers the transport's instruments against the run collector.
// Called from New when the sim carries an observer.
func (n *Net) observe(col *obs.Collector) {
	col.SetRegions(regionLabels)
	n.col = col
	n.cSent = col.Counter("net.msgs_sent")
	n.cDelivered = col.Counter("net.msgs_delivered")
	n.cDropLoss = col.Counter("net.drop_loss")
	n.cDropDown = col.Counter("net.drop_down")
	n.cDropPartition = col.Counter("net.drop_partition")
	n.cDropInFlight = col.Counter("net.drop_in_flight")
	n.hDelay = col.Histogram("net.delivery_delay_ns")
	n.trace = col.Trace()
}

// noteSend records an admitted, transmitted message and its scheduled
// delivery delay.
func (n *Net) noteSend(from, to NodeID, size int, delay time.Duration) {
	n.cSent.Add(int(from), int(n.nodes[from].region), 1)
	n.hDelay.Observe(int64(delay))
	if n.trace != nil {
		n.trace.Span("send", "net", int64(n.sim.Now()), int64(delay), int64(from),
			"to", int64(to), "size", int64(size))
	}
}

// noteAdmissionDrop classifies a reachability rejection (offline endpoint
// vs. partition) at send time.
func (n *Net) noteAdmissionDrop(from, to NodeID) {
	if n.col == nil {
		return
	}
	reg := int(n.nodes[to].region)
	name := "drop.partition"
	if !n.nodes[from].up || !n.nodes[to].up {
		n.cDropDown.Add(int(to), reg, 1)
		name = "drop.down"
	} else {
		n.cDropPartition.Add(int(to), reg, 1)
	}
	n.trace.Instant(name, "net", int64(n.sim.Now()), int64(from), "to", int64(to))
}

// noteLossDrop records a message lost to the loss draw (transmitted, then
// dropped in flight).
func (n *Net) noteLossDrop(from, to NodeID) {
	if n.col == nil {
		return
	}
	n.cDropLoss.Add(int(to), int(n.nodes[to].region), 1)
	n.trace.Instant("drop.loss", "net", int64(n.sim.Now()), int64(from), "to", int64(to))
}

// noteInFlightDrop records a delivery-time drop: the receiver went down or
// a partition formed while the message was in flight.
func (n *Net) noteInFlightDrop(from, to NodeID) {
	if n.col == nil {
		return
	}
	n.cDropInFlight.Add(int(to), int(n.nodes[to].region), 1)
	n.trace.Instant("drop.in_flight", "net", int64(n.sim.Now()), int64(from), "to", int64(to))
}

// noteDelivered records a completed delivery.
func (n *Net) noteDelivered(to NodeID) {
	n.cDelivered.Add(int(to), int(n.nodes[to].region), 1)
}

// noteWindow emits the trace instants bracketing a condition window
// (partition, loss, outage). Edges are emitted when the window takes
// effect and releases, so the trace shows the actual intervals.
func (n *Net) noteWindow(name string, tid int64, key string, val int64) {
	if n.trace == nil {
		return
	}
	n.trace.Instant(name, "net.window", int64(n.sim.Now()), tid, key, val)
}
