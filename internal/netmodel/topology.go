package netmodel

import (
	"errors"
	"fmt"
)

// Topology construction. A TopologySpec describes a node population
// statistically — a weighted regional mix plus weighted access-bandwidth
// classes — and BuildTopology realizes it deterministically: region counts
// follow the weights exactly (largest-remainder apportionment), while the
// interleaving of regions and the per-node bandwidth class are drawn from
// the "netmodel" RNG stream, so a (seed, spec) pair always yields the same
// population without the region proportions themselves being noisy.

// RegionWeight is one component of a regional mix.
type RegionWeight struct {
	Region Region
	Weight float64
}

// BandwidthClass is one access-link tier with a selection weight. Zero
// bandwidth on either direction means unconstrained.
type BandwidthClass struct {
	Name        string
	UplinkBps   float64
	DownlinkBps float64
	Weight      float64
}

// TopologySpec describes a node population for BuildTopology.
type TopologySpec struct {
	// Nodes is the population size.
	Nodes int
	// Mix is the weighted regional composition; nil defaults to MixGlobal.
	Mix []RegionWeight
	// Classes are the weighted access-bandwidth tiers; nil means every
	// node gets an unconstrained link.
	Classes []BandwidthClass
}

// The named mix presets, selectable by experiments through a small-integer
// knob. Preset 0 is reserved by convention for "no transport / abstract
// model" at the experiment layer and is not a mix.
const (
	MixGlobal        = 1 // internet-like global spread
	MixAsiaPacific   = 2 // hashrate-concentration shape: Asia-Pacific heavy
	MixTransatlantic = 3 // NA+EU dominated, thin elsewhere
	MixUniform       = 4 // equal weight across all six regions
	NumMixPresets    = 4
)

// MixPreset returns one of the named regional mixes (1..NumMixPresets).
// Every preset places nodes on both sides of the Atlantic cut (the
// Americas vs the rest), so partition experiments always find a non-empty
// minority.
func MixPreset(i int) ([]RegionWeight, error) {
	switch i {
	case MixGlobal:
		return []RegionWeight{
			{NorthAmerica, 0.30}, {Europe, 0.30}, {Asia, 0.25},
			{SouthAmerica, 0.05}, {Oceania, 0.05}, {Africa, 0.05},
		}, nil
	case MixAsiaPacific:
		return []RegionWeight{
			{Asia, 0.55}, {Oceania, 0.10}, {NorthAmerica, 0.15},
			{Europe, 0.15}, {SouthAmerica, 0.05},
		}, nil
	case MixTransatlantic:
		return []RegionWeight{
			{NorthAmerica, 0.45}, {Europe, 0.45}, {Asia, 0.10},
		}, nil
	case MixUniform:
		return []RegionWeight{
			{NorthAmerica, 1}, {Europe, 1}, {Asia, 1},
			{SouthAmerica, 1}, {Oceania, 1}, {Africa, 1},
		}, nil
	default:
		return nil, fmt.Errorf("netmodel: unknown mix preset %d (want 1..%d)", i, NumMixPresets)
	}
}

// BuildTopology attaches spec.Nodes nodes to the network and returns their
// ids. Region counts follow the mix weights exactly; assignment order and
// bandwidth classes are drawn from the "netmodel" stream.
func (n *Net) BuildTopology(spec TopologySpec) ([]NodeID, error) {
	if spec.Nodes <= 0 {
		return nil, errors.New("netmodel: topology needs at least one node")
	}
	mix := spec.Mix
	if mix == nil {
		mix, _ = MixPreset(MixGlobal)
	}
	regions, err := apportionRegions(mix, spec.Nodes)
	if err != nil {
		return nil, err
	}
	// Shuffle so region blocks interleave; proportions are unaffected.
	n.rng.Shuffle(len(regions), func(i, j int) {
		regions[i], regions[j] = regions[j], regions[i]
	})
	var classTotal float64
	for _, c := range spec.Classes {
		if c.Weight < 0 {
			return nil, fmt.Errorf("netmodel: bandwidth class %q has negative weight", c.Name)
		}
		// Negative bandwidth would silently mean "unconstrained" at the
		// serialization layer — reject the sign error instead.
		if c.UplinkBps < 0 || c.DownlinkBps < 0 {
			return nil, fmt.Errorf("netmodel: bandwidth class %q has negative bandwidth", c.Name)
		}
		classTotal += c.Weight
	}
	if len(spec.Classes) > 0 && classTotal <= 0 {
		return nil, errors.New("netmodel: bandwidth classes need positive total weight")
	}
	ids := make([]NodeID, spec.Nodes)
	for i, region := range regions {
		var up, down float64
		if len(spec.Classes) > 0 {
			c := spec.Classes[pickWeighted(n.rng.Float64()*classTotal, spec.Classes)]
			up, down = c.UplinkBps, c.DownlinkBps
		}
		ids[i] = n.AddNodeLink(region, up, down)
	}
	return ids, nil
}

// pickWeighted returns the index of the class the cumulative draw lands in.
func pickWeighted(target float64, classes []BandwidthClass) int {
	var cum float64
	for i, c := range classes {
		cum += c.Weight
		if target < cum {
			return i
		}
	}
	return len(classes) - 1
}

// apportionRegions expands a weighted mix into an exact region-per-node
// slice using largest-remainder apportionment: counts are the floors of
// the ideal shares, and the leftover seats go to the largest fractional
// remainders (ties broken by mix order).
func apportionRegions(mix []RegionWeight, nodes int) ([]Region, error) {
	var total float64
	for _, rw := range mix {
		if rw.Region < NorthAmerica || rw.Region > Africa {
			return nil, fmt.Errorf("netmodel: invalid region %d in mix", int(rw.Region))
		}
		if rw.Weight < 0 {
			return nil, fmt.Errorf("netmodel: region %s has negative weight", rw.Region)
		}
		total += rw.Weight
	}
	if total <= 0 {
		return nil, errors.New("netmodel: mix needs positive total weight")
	}
	counts := make([]int, len(mix))
	remainders := make([]float64, len(mix))
	assigned := 0
	for i, rw := range mix {
		ideal := rw.Weight / total * float64(nodes)
		counts[i] = int(ideal)
		remainders[i] = ideal - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < nodes {
		best := 0
		for i := 1; i < len(remainders); i++ {
			if remainders[i] > remainders[best] {
				best = i
			}
		}
		counts[best]++
		remainders[best] = -1
		assigned++
	}
	out := make([]Region, 0, nodes)
	for i, rw := range mix {
		for k := 0; k < counts[i]; k++ {
			out = append(out, rw.Region)
		}
	}
	return out, nil
}
