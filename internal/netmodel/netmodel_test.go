package netmodel

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func newNet(t *testing.T, opts ...Option) (*sim.Sim, *Net) {
	t.Helper()
	s := sim.New(sim.WithSeed(7))
	return s, New(s, opts...)
}

func TestLatencyRegions(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	_ = s
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	c := n.AddNode(Asia, 0)
	if got := n.Latency(a, b); got != 15*time.Millisecond {
		t.Fatalf("intra-EU latency = %v, want 15ms", got)
	}
	if got := n.Latency(a, c); got != 80*time.Millisecond {
		t.Fatalf("EU->AS latency = %v, want 80ms", got)
	}
	if n.Latency(a, c) != n.Latency(c, a) {
		t.Fatal("latency must be symmetric without jitter")
	}
}

func TestJitterWithinBounds(t *testing.T) {
	_, n := newNet(t, WithJitter(0.2))
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	for i := 0; i < 500; i++ {
		d := n.Latency(a, b)
		if d < 12*time.Millisecond || d > 18*time.Millisecond {
			t.Fatalf("jittered latency %v outside ±20%% of 15ms", d)
		}
	}
}

func TestTransferTime(t *testing.T) {
	_, n := newNet(t)
	a := n.AddNode(Europe, 8e6) // 8 Mbit/s => 1 MB takes 1 s
	if got := n.TransferTime(a, 1_000_000); got != time.Second {
		t.Fatalf("TransferTime = %v, want 1s", got)
	}
	b := n.AddNode(Europe, 0)
	if got := n.TransferTime(b, 1_000_000); got != 0 {
		t.Fatalf("unconstrained TransferTime = %v, want 0", got)
	}
}

func TestSendDelivers(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	a := n.AddNode(NorthAmerica, 0)
	b := n.AddNode(Europe, 0)
	var deliveredAt time.Duration
	ok := n.Send(a, b, 100, func() { deliveredAt = s.Now() })
	if !ok {
		t.Fatal("Send returned false")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if deliveredAt != 45*time.Millisecond {
		t.Fatalf("delivered at %v, want 45ms", deliveredAt)
	}
	if n.BytesSent(a) != 100 || n.BytesReceived(b) != 100 {
		t.Fatalf("traffic accounting wrong: sent=%d recv=%d", n.BytesSent(a), n.BytesReceived(b))
	}
	if n.MessagesSent(a) != 1 {
		t.Fatalf("MessagesSent = %d, want 1", n.MessagesSent(a))
	}
}

func TestSendToOfflineNode(t *testing.T) {
	s, n := newNet(t)
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	n.SetUp(b, false)
	if n.Send(a, b, 10, func() { t.Fatal("delivered to offline node") }) {
		t.Fatal("Send to offline node should return false")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestReceiverGoesDownMidFlight(t *testing.T) {
	s, n := newNet(t)
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Asia, 0)
	delivered := false
	n.Send(a, b, 10, func() { delivered = true })
	s.After(time.Millisecond, func() { n.SetUp(b, false) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered {
		t.Fatal("message delivered to node that went offline mid-flight")
	}
	if n.BytesReceived(b) != 0 {
		t.Fatal("offline node accrued received bytes")
	}
}

func TestLoss(t *testing.T) {
	s, n := newNet(t, WithLoss(1.0))
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	if n.Send(a, b, 10, func() { t.Fatal("lossy link delivered") }) {
		t.Fatal("Send should report drop under 100% loss")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	s, n := newNet(t)
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	n.Partition(map[NodeID]int{a: 0, b: 1})
	if n.Send(a, b, 10, func() {}) {
		t.Fatal("Send across partition should fail")
	}
	n.Heal()
	delivered := false
	if !n.Send(a, b, 10, func() { delivered = true }) {
		t.Fatal("Send after Heal should succeed")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !delivered {
		t.Fatal("message not delivered after Heal")
	}
}

func TestPartitionDropsInFlight(t *testing.T) {
	s, n := newNet(t)
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Asia, 0)
	delivered := false
	n.Send(a, b, 10, func() { delivered = true })
	s.After(time.Millisecond, func() { n.Partition(map[NodeID]int{a: 0, b: 1}) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered {
		t.Fatal("in-flight message crossed a partition formed before delivery")
	}
}

func TestResetTraffic(t *testing.T) {
	s, n := newNet(t)
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	n.Send(a, b, 10, func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	n.ResetTraffic()
	if n.TotalBytesSent() != 0 || n.BytesReceived(b) != 0 {
		t.Fatal("ResetTraffic did not zero counters")
	}
}

func TestInvalidIDs(t *testing.T) {
	_, n := newNet(t)
	if n.Send(NodeID(0), NodeID(1), 10, func() {}) {
		t.Fatal("Send with unknown nodes should fail")
	}
	if n.Latency(-1, 0) != 0 || n.Region(-1) != 0 {
		t.Fatal("invalid ids should degrade to zero values")
	}
	if n.IsUp(-1) {
		t.Fatal("invalid id reported up")
	}
}

func TestRegionString(t *testing.T) {
	tests := []struct {
		r    Region
		want string
	}{
		{NorthAmerica, "NA"},
		{Europe, "EU"},
		{Asia, "AS"},
		{SouthAmerica, "SA"},
		{Oceania, "OC"},
		{Africa, "AF"},
		{Region(99), "Region(99)"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.r), got, tt.want)
		}
	}
}
