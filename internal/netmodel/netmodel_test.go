package netmodel

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func newNet(t *testing.T, opts ...Option) (*sim.Sim, *Net) {
	t.Helper()
	s := sim.New(sim.WithSeed(7))
	return s, New(s, opts...)
}

func TestLatencyRegions(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	_ = s
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	c := n.AddNode(Asia, 0)
	if got := n.Latency(a, b); got != 15*time.Millisecond {
		t.Fatalf("intra-EU latency = %v, want 15ms", got)
	}
	if got := n.Latency(a, c); got != 80*time.Millisecond {
		t.Fatalf("EU->AS latency = %v, want 80ms", got)
	}
	if n.Latency(a, c) != n.Latency(c, a) {
		t.Fatal("latency must be symmetric without jitter")
	}
}

func TestJitterWithinBounds(t *testing.T) {
	_, n := newNet(t, WithJitter(0.2))
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	for i := 0; i < 500; i++ {
		d := n.Latency(a, b)
		if d < 12*time.Millisecond || d > 18*time.Millisecond {
			t.Fatalf("jittered latency %v outside ±20%% of 15ms", d)
		}
	}
}

func TestTransferTime(t *testing.T) {
	_, n := newNet(t)
	a := n.AddNode(Europe, 8e6) // 8 Mbit/s => 1 MB takes 1 s
	b := n.AddNode(Europe, 0)
	if got := n.TransferTime(a, b, 1_000_000); got != time.Second {
		t.Fatalf("TransferTime = %v, want 1s", got)
	}
	if got := n.TransferTime(b, a, 1_000_000); got != 0 {
		t.Fatalf("unconstrained TransferTime = %v, want 0", got)
	}
}

func TestTransferTimeDownlink(t *testing.T) {
	_, n := newNet(t)
	a := n.AddNode(Europe, 8e6)           // 1 MB -> 1 s up
	b := n.AddNodeLink(Europe, 0, 4e6)    // 1 MB -> 2 s down
	c := n.AddNodeLink(Europe, 16e6, 1e6) // asymmetric: 0.5 s up, 8 s down
	if got := n.TransferTime(a, b, 1_000_000); got != 3*time.Second {
		t.Fatalf("uplink+downlink TransferTime = %v, want 3s", got)
	}
	if got := n.TransferTime(c, b, 1_000_000); got != 2500*time.Millisecond {
		t.Fatalf("asymmetric TransferTime = %v, want 2.5s", got)
	}
	// Receiving at c is dominated by its slow downlink.
	if got := n.TransferTime(b, c, 1_000_000); got != 8*time.Second {
		t.Fatalf("slow-downlink TransferTime = %v, want 8s", got)
	}
}

func TestSendDelivers(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	a := n.AddNode(NorthAmerica, 0)
	b := n.AddNode(Europe, 0)
	var deliveredAt time.Duration
	ok := n.Send(a, b, 100, func() { deliveredAt = s.Now() })
	if !ok {
		t.Fatal("Send returned false")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if deliveredAt != 45*time.Millisecond {
		t.Fatalf("delivered at %v, want 45ms", deliveredAt)
	}
	if n.BytesSent(a) != 100 || n.BytesReceived(b) != 100 {
		t.Fatalf("traffic accounting wrong: sent=%d recv=%d", n.BytesSent(a), n.BytesReceived(b))
	}
	if n.MessagesSent(a) != 1 {
		t.Fatalf("MessagesSent = %d, want 1", n.MessagesSent(a))
	}
}

func TestSendToOfflineNode(t *testing.T) {
	s, n := newNet(t)
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	n.SetUp(b, false)
	if n.Send(a, b, 10, func() { t.Fatal("delivered to offline node") }) {
		t.Fatal("Send to offline node should return false")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestReceiverGoesDownMidFlight(t *testing.T) {
	s, n := newNet(t)
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Asia, 0)
	delivered := false
	n.Send(a, b, 10, func() { delivered = true })
	s.After(time.Millisecond, func() { n.SetUp(b, false) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered {
		t.Fatal("message delivered to node that went offline mid-flight")
	}
	if n.BytesReceived(b) != 0 {
		t.Fatal("offline node accrued received bytes")
	}
}

func TestLoss(t *testing.T) {
	s, n := newNet(t, WithLoss(1.0))
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	if n.Send(a, b, 10, func() { t.Fatal("lossy link delivered") }) {
		t.Fatal("Send should report drop under 100% loss")
	}
	// The lost message was transmitted before vanishing: the sender is
	// billed, the receiver is not — same rule as Broadcast and Transfer.
	if n.BytesSent(a) != 10 || n.MessagesSent(a) != 1 {
		t.Fatalf("lost message billing: sent=%d msgs=%d, want 10/1", n.BytesSent(a), n.MessagesSent(a))
	}
	if n.BytesReceived(b) != 0 {
		t.Fatal("lost message credited to the receiver")
	}
	if _, ok := n.Transfer(a, b, 10); ok {
		t.Fatal("Transfer should report drop under 100% loss")
	}
	if n.BytesSent(a) != 20 || n.BytesReceived(b) != 0 {
		t.Fatalf("lost Transfer billing: sent=%d recvd=%d, want 20/0", n.BytesSent(a), n.BytesReceived(b))
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	s, n := newNet(t)
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	n.Partition(map[NodeID]int{a: 0, b: 1})
	if n.Send(a, b, 10, func() {}) {
		t.Fatal("Send across partition should fail")
	}
	n.Heal()
	delivered := false
	if !n.Send(a, b, 10, func() { delivered = true }) {
		t.Fatal("Send after Heal should succeed")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !delivered {
		t.Fatal("message not delivered after Heal")
	}
}

func TestPartitionDropsInFlight(t *testing.T) {
	s, n := newNet(t)
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Asia, 0)
	delivered := false
	n.Send(a, b, 10, func() { delivered = true })
	s.After(time.Millisecond, func() { n.Partition(map[NodeID]int{a: 0, b: 1}) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered {
		t.Fatal("in-flight message crossed a partition formed before delivery")
	}
}

// TestInFlightDroppedByLaterPartition pins the in-flight semantics: a
// message sent BEFORE a partition (or a receiver outage) forms but due
// AFTER it must be dropped at delivery time, not delivered through the
// cut.
func TestInFlightDroppedByLaterPartition(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Asia, 0) // 80 ms one way
	delivered := 0
	if !n.Send(a, b, 10, func() { delivered++ }) {
		t.Fatal("send before the partition should be admitted")
	}
	if err := n.SchedulePartitionWindow(10*time.Millisecond, 200*time.Millisecond,
		map[NodeID]int{a: 0, b: 1}); err != nil {
		t.Fatalf("SchedulePartitionWindow: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 0 {
		t.Fatal("message sent before the partition but due after it was delivered")
	}

	// Same shape with SetUp(to, false): sent while up, down at delivery.
	delivered = 0
	if !n.Send(a, b, 10, func() { delivered++ }) {
		t.Fatal("send to an online node should be admitted")
	}
	s.After(time.Millisecond, func() { n.SetUp(b, false) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 0 {
		t.Fatal("message delivered to a receiver that went down mid-flight")
	}
}

// TestPartitionWindowNoRetroactiveDelivery pins the other half of the
// window contract: a message sent DURING a partition window is dropped at
// send time and must NOT surface after Heal; only messages sent after the
// window delivers.
func TestPartitionWindowNoRetroactiveDelivery(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Asia, 0)
	if err := n.SchedulePartitionWindow(10*time.Millisecond, 50*time.Millisecond,
		map[NodeID]int{a: 0, b: 1}); err != nil {
		t.Fatalf("SchedulePartitionWindow: %v", err)
	}
	var deliveredAt []time.Duration
	deliver := func() { deliveredAt = append(deliveredAt, s.Now()) }
	s.At(20*time.Millisecond, func() {
		if n.Send(a, b, 10, deliver) {
			t.Error("send during the partition window should be dropped at send time")
		}
	})
	s.At(60*time.Millisecond, func() {
		if !n.Send(a, b, 10, deliver) {
			t.Error("send after Heal should be admitted")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(deliveredAt) != 1 {
		t.Fatalf("deliveries = %d, want exactly the post-heal send", len(deliveredAt))
	}
	if deliveredAt[0] != 140*time.Millisecond { // sent at 60ms + 80ms EU->AS
		t.Fatalf("post-heal delivery at %v, want 140ms", deliveredAt[0])
	}
}

func TestLossWindowRestoresPreviousRate(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	if err := n.ScheduleLossWindow(10*time.Millisecond, 20*time.Millisecond, 1); err != nil {
		t.Fatalf("ScheduleLossWindow: %v", err)
	}
	if err := n.ScheduleLossWindow(5*time.Millisecond, 4*time.Millisecond, 0.5); err == nil {
		t.Fatal("inverted window accepted")
	}
	if err := n.ScheduleLossWindow(30*time.Millisecond, 40*time.Millisecond, 1.5); err == nil {
		t.Fatal("out-of-range loss accepted")
	}
	results := make(map[time.Duration]bool)
	probe := func(at time.Duration) {
		s.At(at, func() { results[at] = n.Send(a, b, 1, func() {}) })
	}
	probe(5 * time.Millisecond)  // before the window
	probe(15 * time.Millisecond) // inside: 100% loss
	probe(25 * time.Millisecond) // after: restored to lossless
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !results[5*time.Millisecond] || results[15*time.Millisecond] || !results[25*time.Millisecond] {
		t.Fatalf("loss window admission = %v, want open/closed/open", results)
	}
	if n.Loss() != 0 {
		t.Fatalf("loss after window = %g, want 0", n.Loss())
	}
}

// TestOverlappingWindowsRejected pins the restore-at-end contract: two
// windows over the same state cannot interleave, because the second's
// snapshot would reinstate the first's mid-window value after both close.
func TestOverlappingWindowsRejected(t *testing.T) {
	s, n := newNet(t)
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	if err := n.ScheduleLossWindow(10*time.Millisecond, 30*time.Millisecond, 1); err != nil {
		t.Fatalf("first loss window: %v", err)
	}
	if err := n.ScheduleLossWindow(20*time.Millisecond, 40*time.Millisecond, 0.5); err == nil {
		t.Fatal("overlapping loss window accepted")
	}
	if err := n.ScheduleLossWindow(30*time.Millisecond, 40*time.Millisecond, 0.5); err != nil {
		t.Fatalf("adjacent loss window rejected: %v", err)
	}
	groups := map[NodeID]int{a: 0, b: 1}
	if err := n.SchedulePartitionWindow(10*time.Millisecond, 30*time.Millisecond, groups); err != nil {
		t.Fatalf("first partition window: %v", err)
	}
	if err := n.SchedulePartitionWindow(25*time.Millisecond, 50*time.Millisecond, groups); err == nil {
		t.Fatal("overlapping partition window accepted")
	}
	if err := n.ScheduleOutageWindow(10*time.Millisecond, 30*time.Millisecond, a); err != nil {
		t.Fatalf("first outage window: %v", err)
	}
	if err := n.ScheduleOutageWindow(20*time.Millisecond, 40*time.Millisecond, a); err == nil {
		t.Fatal("overlapping outage window for one node accepted")
	}
	// A different node's outage may overlap freely.
	if err := n.ScheduleOutageWindow(20*time.Millisecond, 40*time.Millisecond, b); err != nil {
		t.Fatalf("other-node outage window rejected: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n.Loss() != 0 {
		t.Fatalf("loss after all windows = %g, want 0", n.Loss())
	}
	if !n.IsUp(a) || !n.IsUp(b) {
		t.Fatal("nodes not restored after outage windows")
	}
}

// TestAdjacentWindowsAnyScheduleOrder pins the owner rule: when window A's
// end and window B's start land on the same instant, B's condition wins no
// matter which order the windows were scheduled in.
func TestAdjacentWindowsAnyScheduleOrder(t *testing.T) {
	for _, bFirst := range []bool{false, true} {
		s, n := newNet(t, WithJitter(0), WithLoss(0.01))
		a := n.AddNode(Europe, 0)
		b := n.AddNode(Europe, 0)
		_, _ = a, b
		schedA := func() {
			if err := n.ScheduleLossWindow(10*time.Millisecond, 30*time.Millisecond, 1); err != nil {
				t.Fatalf("window A: %v", err)
			}
		}
		schedB := func() {
			if err := n.ScheduleLossWindow(30*time.Millisecond, 40*time.Millisecond, 0.5); err != nil {
				t.Fatalf("window B: %v", err)
			}
		}
		if bFirst {
			schedB()
			schedA()
		} else {
			schedA()
			schedB()
		}
		var atBoundary, after float64
		s.At(31*time.Millisecond, func() { atBoundary = n.Loss() })
		s.At(41*time.Millisecond, func() { after = n.Loss() })
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if atBoundary != 0.5 {
			t.Fatalf("bFirst=%v: loss inside window B = %g, want 0.5 (A's end must not clobber B)", bFirst, atBoundary)
		}
		if after != 0.01 {
			t.Fatalf("bFirst=%v: loss after both windows = %g, want ambient 0.01", bFirst, after)
		}
	}
}

func TestOutageWindow(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	b := n.AddNode(Europe, 0)
	if err := n.ScheduleOutageWindow(10*time.Millisecond, 20*time.Millisecond, b); err != nil {
		t.Fatalf("ScheduleOutageWindow: %v", err)
	}
	if err := n.ScheduleOutageWindow(10*time.Millisecond, 20*time.Millisecond, NodeID(99)); err == nil {
		t.Fatal("unknown node accepted")
	}
	up := make(map[time.Duration]bool)
	s.At(15*time.Millisecond, func() { up[15*time.Millisecond] = n.IsUp(b) })
	s.At(25*time.Millisecond, func() { up[25*time.Millisecond] = n.IsUp(b) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if up[15*time.Millisecond] || !up[25*time.Millisecond] {
		t.Fatalf("outage window up-state = %v, want down then up", up)
	}
}

func TestResetTraffic(t *testing.T) {
	s, n := newNet(t)
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	n.Send(a, b, 10, func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	n.ResetTraffic()
	if n.TotalBytesSent() != 0 || n.BytesReceived(b) != 0 {
		t.Fatal("ResetTraffic did not zero counters")
	}
}

func TestInvalidIDs(t *testing.T) {
	_, n := newNet(t)
	if n.Send(NodeID(0), NodeID(1), 10, func() {}) {
		t.Fatal("Send with unknown nodes should fail")
	}
	if n.Latency(-1, 0) != 0 || n.Region(-1) != 0 {
		t.Fatal("invalid ids should degrade to zero values")
	}
	if n.IsUp(-1) {
		t.Fatal("invalid id reported up")
	}
}

func TestRegionString(t *testing.T) {
	tests := []struct {
		r    Region
		want string
	}{
		{NorthAmerica, "NA"},
		{Europe, "EU"},
		{Asia, "AS"},
		{SouthAmerica, "SA"},
		{Oceania, "OC"},
		{Africa, "AF"},
		{Region(99), "Region(99)"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.r), got, tt.want)
		}
	}
}

// TestNodeAddedDuringPartition pins that attaching a node while a
// partition is active neither panics nor isolates it from group 0.
func TestNodeAddedDuringPartition(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Asia, 0)
	n.Partition(map[NodeID]int{a: 0, b: 1})
	c := n.AddNode(Europe, 0)
	delivered := false
	if !n.Send(a, c, 10, func() { delivered = true }) {
		t.Fatal("late-attached node should join group 0")
	}
	if n.Send(b, c, 10, func() {}) {
		t.Fatal("group-1 node reached the group-0 newcomer")
	}
	if got := n.Broadcast(a, 10, func(NodeID) {}); got != 1 {
		t.Fatalf("broadcast reached %d nodes, want 1 (the newcomer)", got)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !delivered {
		t.Fatal("message to late-attached node not delivered")
	}
}

// TestWindowsRestoreAmbientState pins that window ends restore the
// Partition/SetUp state the experiment holds, not a hard-coded
// "healed/up": a manually-downed node stays down past an outage window,
// and a manual partition survives a partition window's end.
func TestWindowsRestoreAmbientState(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	c := n.AddNode(Asia, 0)
	if err := n.ScheduleOutageWindow(10*time.Millisecond, 20*time.Millisecond, b); err != nil {
		t.Fatalf("ScheduleOutageWindow: %v", err)
	}
	// Ambient: b is deliberately down before the window opens.
	n.SetUp(b, false)
	if err := n.SchedulePartitionWindow(10*time.Millisecond, 20*time.Millisecond,
		map[NodeID]int{a: 0, c: 1}); err != nil {
		t.Fatalf("SchedulePartitionWindow: %v", err)
	}
	// Ambient: a manual partition isolating c, set during the window.
	s.At(15*time.Millisecond, func() { n.Partition(map[NodeID]int{a: 0, c: 2}) })
	if err := s.RunUntil(30 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n.IsUp(b) {
		t.Fatal("outage window end resurrected a manually-downed node")
	}
	if !n.partitioned(a, c) {
		t.Fatal("partition window end erased the ambient partition")
	}
	// Lifting the ambient state works once no window is active.
	n.SetUp(b, true)
	n.Heal()
	if !n.IsUp(b) || n.partitioned(a, c) {
		t.Fatal("ambient state not restored by SetUp/Heal after windows")
	}
}

// TestPartitionWindowSnapshotsGroups pins that the groups map is expanded
// at schedule time: callers may reuse or mutate their map afterwards.
func TestPartitionWindowSnapshotsGroups(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Asia, 0)
	groups := map[NodeID]int{a: 0, b: 1}
	if err := n.SchedulePartitionWindow(10*time.Millisecond, 20*time.Millisecond, groups); err != nil {
		t.Fatalf("SchedulePartitionWindow: %v", err)
	}
	delete(groups, b) // caller reuses the map before the window opens
	var cut bool
	s.At(15*time.Millisecond, func() { cut = n.partitioned(a, b) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !cut {
		t.Fatal("window applied the mutated map instead of the scheduled snapshot")
	}
}
