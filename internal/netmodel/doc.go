// Package netmodel models the wide-area network underneath every
// simulated substrate: per-region propagation delays with jitter,
// per-node asymmetric access bandwidth (uplink serialization, per-node
// downlink), message loss, partitions, and traffic accounting. It
// deliberately models the network at the message level — the granularity
// at which overlay and blockchain behaviour (fork rates, lookup timeouts,
// broadcast latency) is determined.
//
// netmodel is the single transport layer of the reproduction: overlays,
// gossip, PBFT, Raft and the permissioned stack deliver via Send, the
// proof-of-work miner network relays blocks via the one-pass Broadcast,
// and synchronous substrates charge Transfer/TransferTime. Node
// populations are realized statistically from a TopologySpec (weighted
// regional mixes with largest-remainder apportionment plus bandwidth
// classes), and failure scenarios are declared as condition windows
// (SchedulePartitionWindow, ScheduleLossWindow, ScheduleOutageWindow)
// with pinned in-flight drop semantics.
//
// The hot path is allocation-free: Send and Broadcast recycle pooled
// handler events through the simulator's free list, a property pinned by
// AllocsPerRun tests and benchmarks.
package netmodel
