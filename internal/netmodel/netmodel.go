// Package netmodel models the wide-area network underneath every simulated
// overlay: per-region propagation delays with jitter, per-node access
// bandwidth (serialization delay), message loss, partitions, and traffic
// accounting. It deliberately models the network at the message level — the
// granularity at which overlay and blockchain behaviour (fork rates, lookup
// timeouts, broadcast latency) is determined.
package netmodel

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Region is a coarse geographic location used to derive baseline
// propagation delays.
type Region int

// The supported regions. Delay values between them follow public inter-region
// RTT measurements (order of magnitude, not a live snapshot).
const (
	NorthAmerica Region = iota + 1
	Europe
	Asia
	SouthAmerica
	Oceania
	Africa
)

// NumRegions is the count of defined regions.
const NumRegions = 6

func (r Region) String() string {
	switch r {
	case NorthAmerica:
		return "NA"
	case Europe:
		return "EU"
	case Asia:
		return "AS"
	case SouthAmerica:
		return "SA"
	case Oceania:
		return "OC"
	case Africa:
		return "AF"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// baseOneWay holds one-way propagation delays between regions in
// milliseconds, indexed by (Region-1).
var baseOneWay = [NumRegions][NumRegions]int{
	//        NA   EU   AS   SA   OC   AF
	/*NA*/ {20, 45, 90, 75, 85, 110},
	/*EU*/ {45, 15, 80, 100, 140, 70},
	/*AS*/ {90, 80, 30, 150, 60, 120},
	/*SA*/ {75, 100, 150, 25, 130, 160},
	/*OC*/ {85, 140, 60, 130, 20, 150},
	/*AF*/ {110, 70, 120, 160, 150, 35},
}

// NodeID identifies a node attached to the network.
type NodeID int

// Net is a simulated wide-area network. Construct with New; attach nodes
// with AddNode; deliver messages with Send.
type Net struct {
	sim    *sim.Sim
	rng    *sim.RNG
	nodes  []nodeState
	jitter float64
	loss   float64
	partOf []int // node index -> partition group; nil when unpartitioned

	// traffic accounting
	bytesSent  []int64
	bytesRecvd []int64
	msgsSent   []int64
}

type nodeState struct {
	region Region
	upBps  float64 // uplink bits/second; 0 = unconstrained
	up     bool
}

// Option configures a Net.
type Option func(*Net)

// WithJitter sets the symmetric latency jitter fraction (e.g. 0.2 = ±20 %).
func WithJitter(f float64) Option {
	return func(n *Net) { n.jitter = f }
}

// WithLoss sets the independent per-message loss probability.
func WithLoss(p float64) Option {
	return func(n *Net) { n.loss = p }
}

// New creates an empty network bound to the simulator, drawing randomness
// from the "netmodel" stream.
func New(s *sim.Sim, opts ...Option) *Net {
	n := &Net{
		sim:    s,
		rng:    s.Stream("netmodel"),
		jitter: 0.1,
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// AddNode attaches a node in the given region with the given uplink
// bandwidth in bits/second (0 means unconstrained) and returns its id.
func (n *Net) AddNode(region Region, uplinkBps float64) NodeID {
	n.nodes = append(n.nodes, nodeState{region: region, upBps: uplinkBps, up: true})
	n.bytesSent = append(n.bytesSent, 0)
	n.bytesRecvd = append(n.bytesRecvd, 0)
	n.msgsSent = append(n.msgsSent, 0)
	return NodeID(len(n.nodes) - 1)
}

// Size returns the number of attached nodes.
func (n *Net) Size() int { return len(n.nodes) }

// SetUp marks a node online or offline. Messages to or from offline nodes
// are silently dropped, mirroring unreachable peers.
func (n *Net) SetUp(id NodeID, up bool) {
	if n.valid(id) {
		n.nodes[id].up = up
	}
}

// IsUp reports whether a node is online.
func (n *Net) IsUp(id NodeID) bool {
	return n.valid(id) && n.nodes[id].up
}

// Region returns a node's region (0 for invalid ids).
func (n *Net) Region(id NodeID) Region {
	if !n.valid(id) {
		return 0
	}
	return n.nodes[id].region
}

func (n *Net) valid(id NodeID) bool {
	return id >= 0 && int(id) < len(n.nodes)
}

// Latency returns a jittered one-way propagation delay between two nodes.
func (n *Net) Latency(from, to NodeID) time.Duration {
	if !n.valid(from) || !n.valid(to) {
		return 0
	}
	a, b := n.nodes[from].region, n.nodes[to].region
	base := time.Duration(baseOneWay[a-1][b-1]) * time.Millisecond
	return n.rng.Jitter(base, n.jitter)
}

// TransferTime returns serialization delay for size bytes on the sender's
// uplink (zero when unconstrained).
func (n *Net) TransferTime(from NodeID, size int) time.Duration {
	if !n.valid(from) || size <= 0 {
		return 0
	}
	bps := n.nodes[from].upBps
	if bps <= 0 {
		return 0
	}
	seconds := float64(size*8) / bps
	return time.Duration(seconds * float64(time.Second))
}

// Partition assigns nodes to isolation groups: messages crossing groups are
// dropped until Heal is called. Nodes not present in groups stay in group 0.
func (n *Net) Partition(groups map[NodeID]int) {
	n.partOf = make([]int, len(n.nodes))
	for id, g := range groups {
		if n.valid(id) {
			n.partOf[id] = g
		}
	}
}

// Heal removes any active partition.
func (n *Net) Heal() { n.partOf = nil }

func (n *Net) partitioned(a, b NodeID) bool {
	if n.partOf == nil {
		return false
	}
	return n.partOf[a] != n.partOf[b]
}

// Send schedules delivery of a message of size bytes from one node to
// another, invoking deliver at the receive time. It returns false if the
// message was dropped (loss, partition, or an endpoint being offline at send
// time; delivery additionally checks the receiver is still online).
func (n *Net) Send(from, to NodeID, size int, deliver func()) bool {
	if !n.valid(from) || !n.valid(to) || deliver == nil {
		return false
	}
	if !n.nodes[from].up || !n.nodes[to].up {
		return false
	}
	if n.partitioned(from, to) {
		return false
	}
	if n.loss > 0 && n.rng.Bool(n.loss) {
		return false
	}
	n.bytesSent[from] += int64(size)
	n.msgsSent[from]++
	delay := n.TransferTime(from, size) + n.Latency(from, to)
	n.sim.After(delay, func() {
		if !n.nodes[to].up || n.partitioned(from, to) {
			return
		}
		n.bytesRecvd[to] += int64(size)
		deliver()
	})
	return true
}

// BytesSent returns the cumulative bytes sent by a node.
func (n *Net) BytesSent(id NodeID) int64 {
	if !n.valid(id) {
		return 0
	}
	return n.bytesSent[id]
}

// BytesReceived returns the cumulative bytes delivered to a node.
func (n *Net) BytesReceived(id NodeID) int64 {
	if !n.valid(id) {
		return 0
	}
	return n.bytesRecvd[id]
}

// MessagesSent returns the cumulative message count sent by a node.
func (n *Net) MessagesSent(id NodeID) int64 {
	if !n.valid(id) {
		return 0
	}
	return n.msgsSent[id]
}

// TotalBytesSent sums sent traffic over all nodes.
func (n *Net) TotalBytesSent() int64 {
	var total int64
	for _, b := range n.bytesSent {
		total += b
	}
	return total
}

// ResetTraffic zeroes all traffic counters (useful between warm-up and
// measurement phases).
func (n *Net) ResetTraffic() {
	for i := range n.bytesSent {
		n.bytesSent[i] = 0
		n.bytesRecvd[i] = 0
		n.msgsSent[i] = 0
	}
}
