package netmodel

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Region is a coarse geographic location used to derive baseline
// propagation delays.
type Region int

// The supported regions. Delay values between them follow public inter-region
// RTT measurements (order of magnitude, not a live snapshot).
const (
	NorthAmerica Region = iota + 1
	Europe
	Asia
	SouthAmerica
	Oceania
	Africa
)

// NumRegions is the count of defined regions.
const NumRegions = 6

func (r Region) String() string {
	switch r {
	case NorthAmerica:
		return "NA"
	case Europe:
		return "EU"
	case Asia:
		return "AS"
	case SouthAmerica:
		return "SA"
	case Oceania:
		return "OC"
	case Africa:
		return "AF"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// baseOneWay holds one-way propagation delays between regions in
// milliseconds, indexed by (Region-1).
var baseOneWay = [NumRegions][NumRegions]int{
	//        NA   EU   AS   SA   OC   AF
	/*NA*/ {20, 45, 90, 75, 85, 110},
	/*EU*/ {45, 15, 80, 100, 140, 70},
	/*AS*/ {90, 80, 30, 150, 60, 120},
	/*SA*/ {75, 100, 150, 25, 130, 160},
	/*OC*/ {85, 140, 60, 130, 20, 150},
	/*AF*/ {110, 70, 120, 160, 150, 35},
}

// NodeID identifies a node attached to the network.
type NodeID int

// Shared pacing defaults for substrates riding the transport. Retry and
// pacing delays that used to be hard-coded per substrate are centralized
// here so every layer backs off on the same timescale.
const (
	// DefaultRetryDelay is the resubmission backoff for transient
	// transport-level failures (no leader yet, full queues).
	DefaultRetryDelay = 250 * time.Millisecond
	// DefaultPacing spaces out repeated measurement or broadcast rounds so
	// they do not overlap in flight.
	DefaultPacing = time.Second
)

// Net is a simulated wide-area network. Construct with New; attach nodes
// with AddNode; deliver messages with Send.
type Net struct {
	sim      *sim.Sim
	rng      *sim.RNG
	nodes    []nodeState
	jitter   float64
	loss     float64 // effective rate (a window may be overriding base)
	baseLoss float64 // ambient rate set by WithLoss/SetLoss
	partOf   []int   // effective node->group map; nil when unpartitioned
	basePart []int   // ambient partition set by Partition/Heal

	// scheduled condition windows: intervals for overlap rejection plus
	// the currently-applied window per state, so a window's end never
	// clobbers an adjacent window that started at the same instant
	// (see schedule.go).
	lossWins   []window
	partWins   []window
	outageWins map[NodeID][]window
	lossOwner  *window
	partOwner  *window
	outOwner   map[NodeID]*window

	// sharded-execution binding (shard.go); nil on sequential nets.
	sh *sharding

	// traffic accounting. Entries are touched only by the owning node's
	// shard, so the slices need no synchronization in sharded runs.
	bytesSent  []int64
	bytesRecvd []int64
	msgsSent   []int64

	// telemetry instruments (observe.go); all nil when the run has no
	// collector, in which case every recording call is a nil-receiver
	// no-op on the hot path.
	col            *obs.Collector
	cSent          *obs.Counter
	cDelivered     *obs.Counter
	cDropLoss      *obs.Counter
	cDropDown      *obs.Counter
	cDropPartition *obs.Counter
	cDropInFlight  *obs.Counter
	hDelay         *obs.Histogram
	trace          *obs.Trace
}

type nodeState struct {
	region  Region
	upBps   float64 // uplink bits/second; 0 = unconstrained
	downBps float64 // downlink bits/second; 0 = unconstrained
	up      bool    // effective state (an outage window may override base)
	baseUp  bool    // ambient state set by SetUp
}

// Option configures a Net.
type Option func(*Net)

// WithJitter sets the symmetric latency jitter fraction (e.g. 0.2 = ±20 %).
func WithJitter(f float64) Option {
	return func(n *Net) { n.jitter = f }
}

// WithLoss sets the independent per-message loss probability.
func WithLoss(p float64) Option {
	return func(n *Net) { n.loss, n.baseLoss = p, p }
}

// New creates an empty network bound to the simulator, drawing randomness
// from the "netmodel" stream.
func New(s *sim.Sim, opts ...Option) *Net {
	n := &Net{
		sim:    s,
		rng:    s.Stream("netmodel"),
		jitter: 0.1,
	}
	for _, opt := range opts {
		opt(n)
	}
	if col := s.Observer(); col != nil {
		n.observe(col)
	}
	return n
}

// AddNode attaches a node in the given region with the given uplink
// bandwidth in bits/second (0 means unconstrained) and returns its id. The
// downlink is unconstrained; use AddNodeLink for asymmetric access links.
func (n *Net) AddNode(region Region, uplinkBps float64) NodeID {
	return n.AddNodeLink(region, uplinkBps, 0)
}

// AddNodeLink attaches a node with an asymmetric access link: uplink and
// downlink bandwidth in bits/second, 0 meaning unconstrained on that
// direction — the common edge case (home broadband, cellular) where a node
// can receive far faster than it can serve.
func (n *Net) AddNodeLink(region Region, uplinkBps, downlinkBps float64) NodeID {
	n.nodes = append(n.nodes, nodeState{region: region, upBps: uplinkBps, downBps: downlinkBps, up: true, baseUp: true})
	n.bytesSent = append(n.bytesSent, 0)
	n.bytesRecvd = append(n.bytesRecvd, 0)
	n.msgsSent = append(n.msgsSent, 0)
	if n.sh != nil {
		n.sh.owner = append(n.sh.owner, int32((len(n.nodes)-1)%len(n.sh.kerns)))
	}
	n.col.SetNodeSpace(len(n.nodes))
	return NodeID(len(n.nodes) - 1)
}

// Size returns the number of attached nodes.
func (n *Net) Size() int { return len(n.nodes) }

// SetUp marks a node's ambient state online or offline. Messages to or
// from offline nodes are silently dropped, mirroring unreachable peers.
// While a scheduled outage window holds the node down, the new ambient
// state takes effect when the window closes.
func (n *Net) SetUp(id NodeID, up bool) {
	if !n.valid(id) {
		return
	}
	n.nodes[id].baseUp = up
	if n.outOwner[id] == nil {
		n.nodes[id].up = up
	}
}

// IsUp reports whether a node is online.
func (n *Net) IsUp(id NodeID) bool {
	return n.valid(id) && n.nodes[id].up
}

// Region returns a node's region (0 for invalid ids).
func (n *Net) Region(id NodeID) Region {
	if !n.valid(id) {
		return 0
	}
	return n.nodes[id].region
}

func (n *Net) valid(id NodeID) bool {
	return id >= 0 && int(id) < len(n.nodes)
}

// Latency returns a jittered one-way propagation delay between two nodes.
// The draw comes from the sending node's stream (the net-wide stream on
// sequential nets; the owning shard's stream on sharded ones).
func (n *Net) Latency(from, to NodeID) time.Duration {
	if !n.valid(from) || !n.valid(to) {
		return 0
	}
	a, b := n.nodes[from].region, n.nodes[to].region
	base := time.Duration(baseOneWay[a-1][b-1]) * time.Millisecond
	return n.rngFor(from).Jitter(base, n.jitter)
}

// TransferTime returns serialization delay for size bytes across the pair
// of access links: the sender's uplink plus the receiver's downlink
// (store-and-forward through the wide-area core). Either side contributes
// zero when unconstrained, so symmetric nets behave exactly as before the
// downlink term existed.
func (n *Net) TransferTime(from, to NodeID, size int) time.Duration {
	if !n.valid(from) || size <= 0 {
		return 0
	}
	d := serialization(n.nodes[from].upBps, size)
	if n.valid(to) {
		d += serialization(n.nodes[to].downBps, size)
	}
	return d
}

// serialization is size bytes over bps bits/second (0 when unconstrained).
func serialization(bps float64, size int) time.Duration {
	if bps <= 0 {
		return 0
	}
	seconds := float64(size*8) / bps
	return time.Duration(seconds * float64(time.Second))
}

// Partition assigns the ambient partition: messages crossing groups are
// dropped until Heal is called. Nodes not present in groups stay in group
// 0. While a scheduled partition window is active, the new ambient
// partition takes effect when the window closes.
func (n *Net) Partition(groups map[NodeID]int) {
	n.basePart = n.groupSlice(groups)
	if n.partOwner == nil {
		n.partOf = n.basePart
	}
}

// Heal removes the ambient partition (deferred past any active window,
// like Partition).
func (n *Net) Heal() {
	n.basePart = nil
	if n.partOwner == nil {
		n.partOf = nil
	}
}

// groupSlice expands a partition map into the per-node group slice.
func (n *Net) groupSlice(groups map[NodeID]int) []int {
	out := make([]int, len(n.nodes))
	for id, g := range groups {
		if n.valid(id) {
			out[id] = g
		}
	}
	return out
}

// partitioned reports whether a partition separates two nodes. Nodes
// attached after the partition formed sit in group 0, like nodes absent
// from the Partition call.
func (n *Net) partitioned(a, b NodeID) bool {
	if n.partOf == nil {
		return false
	}
	var ga, gb int
	if int(a) < len(n.partOf) {
		ga = n.partOf[a]
	}
	if int(b) < len(n.partOf) {
		gb = n.partOf[b]
	}
	return ga != gb
}

// SetLoss updates the ambient per-message loss probability, clamped to
// [0, 1]. It applies to sends issued after the call; messages already in
// flight are unaffected. While a scheduled loss window is active, the new
// ambient rate takes effect when the window closes.
func (n *Net) SetLoss(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	n.baseLoss = p
	if n.lossOwner == nil {
		n.loss = p
	}
}

// Loss returns the current per-message loss probability.
func (n *Net) Loss() float64 { return n.loss }

// reachable reports whether a message can be put on the wire at all: both
// endpoints online and no partition between them. Loss is decided
// separately — a lost message was still transmitted (and billed) before
// vanishing in flight, identically on every transport primitive.
func (n *Net) reachable(from, to NodeID) bool {
	if !n.nodes[from].up || !n.nodes[to].up {
		return false
	}
	return !n.partitioned(from, to)
}

// deliverSend is the pooled delivery handler behind Send: Ctx is the *Net,
// Aux the caller's deliver callback, A/B the endpoints and C the size. The
// receiver must still be online and reachable at delivery time — a message
// in flight when a partition forms (or the receiver goes down) is dropped.
//
//decentlint:hotpath
func deliverSend(p sim.Payload) {
	n := p.Ctx.(*Net)
	from, to := NodeID(p.A), NodeID(p.B)
	if !n.nodes[to].up || n.partitioned(from, to) {
		n.noteInFlightDrop(from, to)
		return
	}
	n.bytesRecvd[to] += p.C
	n.noteDelivered(to)
	p.Aux.(func())()
}

// deliverBroadcast mirrors deliverSend for Broadcast's per-receiver
// callback, which takes the receiver's id.
//
//decentlint:hotpath
func deliverBroadcast(p sim.Payload) {
	n := p.Ctx.(*Net)
	from, to := NodeID(p.A), NodeID(p.B)
	if !n.nodes[to].up || n.partitioned(from, to) {
		n.noteInFlightDrop(from, to)
		return
	}
	n.bytesRecvd[to] += p.C
	n.noteDelivered(to)
	p.Aux.(func(NodeID))(to)
}

// Send schedules delivery of a message of size bytes from one node to
// another, invoking deliver at the receive time. It returns false if the
// message was dropped (loss, partition, or an endpoint being offline at send
// time; delivery additionally checks the receiver is still online and
// unpartitioned). A message to an unreachable peer is never transmitted and
// charges nothing; a message lost to the loss draw was transmitted and then
// dropped in flight, so it still bills the sender's traffic — the same rule
// Broadcast and Transfer apply. Send is the transport's hot path: delivery
// rides the sim kernel's pooled handler events, so a steady-state Send
// performs zero allocations (the deliver func itself should be reused by
// callers that care).
//
//decentlint:hotpath
func (n *Net) Send(from, to NodeID, size int, deliver func()) bool {
	if !n.valid(from) || !n.valid(to) || deliver == nil {
		return false
	}
	if !n.reachable(from, to) {
		n.noteAdmissionDrop(from, to)
		return false
	}
	n.bytesSent[from] += int64(size)
	n.msgsSent[from]++
	if n.loss > 0 && n.rngFor(from).Bool(n.loss) {
		n.noteLossDrop(from, to)
		return false
	}
	delay := n.TransferTime(from, to, size) + n.Latency(from, to)
	n.noteSend(from, to, size, delay)
	p := sim.Payload{Ctx: n, Aux: deliver, A: int64(from), B: int64(to), C: int64(size)}
	if n.sh != nil {
		return n.shSchedule(from, to, delay, deliverSend, p)
	}
	return n.sim.AfterFunc(delay, deliverSend, p)
}

// Broadcast schedules one-pass delivery of size bytes from one node to
// every other online, reachable node, invoking deliver(to) at each receive
// time. Copies serialize sequentially on the sender's uplink — the k-th
// receiver waits k uplink transfers plus its own downlink and propagation
// delay — which is what makes large blocks from low-bandwidth senders slow
// to blanket the network. Copies to offline or partitioned peers are never
// transmitted; a copy lost to the loss draw still consumed the sender's
// uplink slot and traffic (it was transmitted, then dropped in flight), so
// raising loss never speeds up the surviving copies. It returns the number
// of deliveries scheduled.
//
//decentlint:hotpath
func (n *Net) Broadcast(from NodeID, size int, deliver func(to NodeID)) int {
	if !n.valid(from) || deliver == nil || !n.nodes[from].up {
		return 0
	}
	scheduled := 0
	perCopy := serialization(n.nodes[from].upBps, size)
	var uplink time.Duration
	for i := range n.nodes {
		to := NodeID(i)
		if to == from {
			continue
		}
		if !n.nodes[to].up || n.partitioned(from, to) {
			n.noteAdmissionDrop(from, to)
			continue
		}
		uplink += perCopy
		n.bytesSent[from] += int64(size)
		n.msgsSent[from]++
		if n.loss > 0 && n.rngFor(from).Bool(n.loss) {
			n.noteLossDrop(from, to)
			continue
		}
		delay := uplink + serialization(n.nodes[to].downBps, size) + n.Latency(from, to)
		n.noteSend(from, to, size, delay)
		p := sim.Payload{Ctx: n, Aux: deliver, A: int64(from), B: int64(to), C: int64(size)}
		ok := false
		if n.sh != nil {
			ok = n.shSchedule(from, to, delay, deliverBroadcast, p)
		} else {
			ok = n.sim.AfterFunc(delay, deliverBroadcast, p)
		}
		if ok {
			scheduled++
		}
	}
	return scheduled
}

// Transfer charges one message on the transport without scheduling
// delivery: it applies Send's admission and billing rules and returns the
// one-way delay the message would take. Synchronous substrates (e.g. the
// off-chain payment router) use it to ride the same WAN model while
// advancing their own notion of time. As with Send, a message to an
// unreachable peer charges nothing, while one lost in flight bills the
// sender but not the receiver.
//
//decentlint:hotpath
func (n *Net) Transfer(from, to NodeID, size int) (time.Duration, bool) {
	if !n.valid(from) || !n.valid(to) {
		return 0, false
	}
	if !n.reachable(from, to) {
		n.noteAdmissionDrop(from, to)
		return 0, false
	}
	n.bytesSent[from] += int64(size)
	n.msgsSent[from]++
	if n.loss > 0 && n.rngFor(from).Bool(n.loss) {
		n.noteLossDrop(from, to)
		return 0, false
	}
	n.bytesRecvd[to] += int64(size)
	delay := n.TransferTime(from, to, size) + n.Latency(from, to)
	n.noteSend(from, to, size, delay)
	n.noteDelivered(to)
	return delay, true
}

// BytesSent returns the cumulative bytes sent by a node.
func (n *Net) BytesSent(id NodeID) int64 {
	if !n.valid(id) {
		return 0
	}
	return n.bytesSent[id]
}

// BytesReceived returns the cumulative bytes delivered to a node.
func (n *Net) BytesReceived(id NodeID) int64 {
	if !n.valid(id) {
		return 0
	}
	return n.bytesRecvd[id]
}

// MessagesSent returns the cumulative message count sent by a node.
func (n *Net) MessagesSent(id NodeID) int64 {
	if !n.valid(id) {
		return 0
	}
	return n.msgsSent[id]
}

// TotalBytesSent sums sent traffic over all nodes.
func (n *Net) TotalBytesSent() int64 {
	var total int64
	for _, b := range n.bytesSent {
		total += b
	}
	return total
}

// ResetTraffic zeroes all traffic counters (useful between warm-up and
// measurement phases).
func (n *Net) ResetTraffic() {
	for i := range n.bytesSent {
		n.bytesSent[i] = 0
		n.bytesRecvd[i] = 0
		n.msgsSent[i] = 0
	}
}
