package netmodel

import (
	"fmt"
	"time"
)

// Time-varying network conditions. Experiments describe degraded windows —
// a trans-continental partition, a lossy period — declaratively; the
// transport flips the condition on at the window start and restores the
// ambient state at the end. Messages in flight when a window opens are
// subject to the new condition at delivery time (a partition drops them),
// and messages dropped during a window are gone: healing does not
// retroactively deliver anything.
//
// Windows over the same state (the loss rate, the partition map, one
// node's up flag) must not overlap and are rejected at scheduling time.
// Back-to-back windows are fine: each window records itself as the state's
// owner while active, and its end event restores the ambient value only if
// it still owns the state — so when window A's end and window B's start
// land on the same instant, the outcome is B's condition regardless of
// event order.

// window is one scheduled [start, end) condition interval.
type window struct{ start, end time.Duration }

func overlapsAny(ws []window, w window) bool {
	for _, x := range ws {
		if w.start < x.end && x.start < w.end {
			return true
		}
	}
	return false
}

// SchedulePartitionWindow installs the given partition groups during
// [start, end) of virtual time, restoring the ambient partition (the
// Partition/Heal state) at end. Nodes absent from groups stay in group 0.
// Windows must lie in the future, be well-ordered, and not overlap another
// partition window.
func (n *Net) SchedulePartitionWindow(start, end time.Duration, groups map[NodeID]int) error {
	if err := n.checkWindow(start, end); err != nil {
		return err
	}
	w := &window{start, end}
	if overlapsAny(n.partWins, *w) {
		return fmt.Errorf("netmodel: partition window [%v, %v) overlaps an existing one", start, end)
	}
	n.partWins = append(n.partWins, *w)
	// Expand the groups now: the caller may reuse its map after this call,
	// and nodes attached before the window starts default to group 0 via
	// partitioned()'s bounds rule anyway.
	expanded := n.groupSlice(groups)
	n.sim.At(start, func() {
		n.partOwner = w
		n.partOf = expanded
		n.noteWindow("partition.start", 0, "groups", int64(len(groups)))
	})
	n.sim.At(end, func() {
		if n.partOwner == w {
			n.partOwner = nil
			n.partOf = n.basePart
			n.noteWindow("partition.end", 0, "", 0)
		}
	})
	return nil
}

// ScheduleLossWindow raises the per-message loss probability to p during
// [start, end), restoring the ambient rate (the WithLoss/SetLoss value) at
// the end. Loss windows must not overlap each other.
func (n *Net) ScheduleLossWindow(start, end time.Duration, p float64) error {
	if err := n.checkWindow(start, end); err != nil {
		return err
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("netmodel: loss probability %g outside [0, 1]", p)
	}
	w := &window{start, end}
	if overlapsAny(n.lossWins, *w) {
		return fmt.Errorf("netmodel: loss window [%v, %v) overlaps an existing one", start, end)
	}
	n.lossWins = append(n.lossWins, *w)
	n.sim.At(start, func() {
		n.lossOwner = w
		n.loss = p
		n.noteWindow("loss.start", 0, "ppm", int64(p*1e6))
	})
	n.sim.At(end, func() {
		if n.lossOwner == w {
			n.lossOwner = nil
			n.loss = n.baseLoss
			n.noteWindow("loss.end", 0, "ppm", int64(n.loss*1e6))
		}
	})
	return nil
}

// ScheduleOutageWindow takes a node offline during [start, end), restoring
// its ambient SetUp state at end (a node SetUp(id, false) before or during
// the window stays down). In-flight messages to the node are dropped at
// delivery time, exactly as with a manual SetUp(id, false). A node's
// outage windows must not overlap.
func (n *Net) ScheduleOutageWindow(start, end time.Duration, id NodeID) error {
	if err := n.checkWindow(start, end); err != nil {
		return err
	}
	if !n.valid(id) {
		return fmt.Errorf("netmodel: unknown node %d", id)
	}
	w := &window{start, end}
	if overlapsAny(n.outageWins[id], *w) {
		return fmt.Errorf("netmodel: outage window [%v, %v) for node %d overlaps an existing one", start, end, id)
	}
	if n.outageWins == nil {
		n.outageWins = make(map[NodeID][]window)
		n.outOwner = make(map[NodeID]*window)
	}
	n.outageWins[id] = append(n.outageWins[id], *w)
	n.sim.At(start, func() {
		n.outOwner[id] = w
		n.nodes[id].up = false
		n.noteWindow("outage.start", int64(id), "node", int64(id))
	})
	n.sim.At(end, func() {
		if n.outOwner[id] == w {
			delete(n.outOwner, id)
			n.nodes[id].up = n.nodes[id].baseUp
			n.noteWindow("outage.end", int64(id), "node", int64(id))
		}
	})
	return nil
}

func (n *Net) checkWindow(start, end time.Duration) error {
	if n.sh != nil {
		return fmt.Errorf("netmodel: condition windows mutate state shared across shards and are not supported on sharded nets")
	}
	if start < n.sim.Now() {
		return fmt.Errorf("netmodel: window start %v is in the past (now %v)", start, n.sim.Now())
	}
	if end <= start {
		return fmt.Errorf("netmodel: window end %v not after start %v", end, start)
	}
	return nil
}
