package netmodel

import (
	"testing"

	"repro/internal/sim"
)

// The transport's hot path contract: once the kernel's event pool and the
// heap's backing array are warm, Send and Broadcast schedule and deliver
// without allocating. These benchmarks (and the AllocsPerRun tests pinning
// the same property) are exported to CI as BENCH_transport.json.

func benchNet(nodes int) (*sim.Sim, *Net, []NodeID) {
	s := sim.New(sim.WithSeed(1))
	n := New(s)
	ids := make([]NodeID, nodes)
	for i := range ids {
		ids[i] = n.AddNode(Region(i%NumRegions+1), 0)
	}
	return s, n, ids
}

func BenchmarkTransportSend(b *testing.B) {
	s, n, ids := benchNet(2)
	deliver := func() {}
	// Warm the event pool and heap.
	for i := 0; i < 64; i++ {
		n.Send(ids[0], ids[1], 100, deliver)
	}
	if err := s.Run(); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(ids[0], ids[1], 100, deliver)
		if err := s.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
}

func BenchmarkTransportBroadcast(b *testing.B) {
	s, n, ids := benchNet(64)
	deliver := func(NodeID) {}
	n.Broadcast(ids[0], 1000, deliver)
	if err := s.Run(); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Broadcast(ids[0], 1000, deliver)
		if err := s.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
}

func TestSendSteadyStateZeroAllocs(t *testing.T) {
	s, n, ids := benchNet(2)
	deliver := func() {}
	for i := 0; i < 64; i++ {
		n.Send(ids[0], ids[1], 100, deliver)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			if !n.Send(ids[0], ids[1], 100, deliver) {
				t.Fatal("send refused")
			}
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Send allocates %.1f per batch, want 0", avg)
	}
}

func TestBroadcastSteadyStateZeroAllocs(t *testing.T) {
	s, n, ids := benchNet(32)
	deliver := func(NodeID) {}
	n.Broadcast(ids[0], 1000, deliver)
	if err := s.Run(); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if n.Broadcast(ids[0], 1000, deliver) != 31 {
			t.Fatal("broadcast did not reach everyone")
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Broadcast allocates %.1f per round, want 0", avg)
	}
}

// BenchmarkTransportSendLossy exercises the admission path with loss and
// partitions enabled so the non-trivial checks stay on the profile.
func BenchmarkTransportSendLossy(b *testing.B) {
	s, n, ids := benchNet(2)
	n.SetLoss(0.1)
	deliver := func() {}
	for i := 0; i < 64; i++ {
		n.Send(ids[0], ids[1], 100, deliver)
	}
	if err := s.Run(); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(ids[0], ids[1], 100, deliver)
		if err := s.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
}
