package netmodel

// Sharded execution binding. A Net built with NewSharded partitions its
// nodes across the logical shards of a sim.ShardedSim (round-robin by
// attach order, so shard load balances for any topology) and routes every
// scheduled delivery to the kernel owning the receiver: an intra-shard
// delivery is a plain pooled AtFunc on the owner, a cross-shard one rides
// the driver's mailbox and is merged deterministically at the next window
// barrier. Randomness splits into per-shard "netmodel" streams — a send
// draws loss and jitter from its *sender's* stream, on the sender's
// worker — so draw sequences depend only on per-shard event order, which
// the driver keeps worker-count invariant.
//
// The sharded transport is deliberately narrower than the sequential one:
// condition windows (partition/loss/outage) and the shared delay histogram
// and trace instruments mutate or append to state no single shard owns, so
// they are rejected or left unregistered. Topology mutations (SetUp,
// Partition, SetLoss) are setup-time only in sharded mode; during a run
// that shared state is read-only on the hot path.

import (
	"time"

	"repro/internal/sim"
)

// sharding is the per-Net sharded binding; nil on sequential nets.
type sharding struct {
	ss    *sim.ShardedSim
	kerns []*sim.Sim // cached shard kernels, indexed by shard
	rngs  []*sim.RNG // per-shard "netmodel" streams
	owner []int32    // node -> owning shard, assigned round-robin at attach
}

// NewSharded creates an empty network whose event scheduling is partitioned
// across the shards of ss. The caller must size the driver's window with
// DelayFloor over the regions (and jitter) the topology will use; the
// driver verifies the resulting schedule at run time. Transport telemetry
// instruments are not registered in sharded mode (kernel statistics still
// reach a collector attached to the driver); condition windows are
// rejected at scheduling time.
func NewSharded(ss *sim.ShardedSim, opts ...Option) *Net {
	n := &Net{
		sim:    ss.Shard(0),
		jitter: 0.1,
		sh:     &sharding{ss: ss},
	}
	for i := 0; i < ss.ShardCount(); i++ {
		k := ss.Shard(i)
		n.sh.kerns = append(n.sh.kerns, k)
		n.sh.rngs = append(n.sh.rngs, k.Stream("netmodel"))
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// Sharded reports whether the net routes scheduling across shards.
func (n *Net) Sharded() bool { return n.sh != nil }

// ShardOf returns the shard owning a node; 0 for sequential nets and
// invalid ids.
func (n *Net) ShardOf(id NodeID) int {
	if n.sh == nil || !n.valid(id) {
		return 0
	}
	return int(n.sh.owner[id])
}

// Kernel returns the sim kernel a node's events execute on: the owning
// shard's kernel in sharded mode, the single kernel otherwise. Substrates
// riding the sharded transport schedule their per-node control events
// (timeouts, retries) on it so those events run on the node's worker.
func (n *Net) Kernel(id NodeID) *sim.Sim {
	if n.sh == nil {
		return n.sim
	}
	return n.sh.kerns[n.ShardOf(id)]
}

// rngFor returns the stream a node's sends draw loss and jitter from: the
// owning shard's stream in sharded mode, the net-wide stream otherwise.
//
//decentlint:hotpath
func (n *Net) rngFor(id NodeID) *sim.RNG {
	if n.sh == nil {
		return n.rng
	}
	return n.sh.rngs[n.sh.owner[id]]
}

// shSchedule schedules a delivery in sharded mode: directly on the sender's
// kernel when it also owns the receiver, through the cross-shard mailbox
// otherwise. The fire time is anchored at the sender's clock, so the
// driver's window rule applies to the full delay (which DelayFloor bounds
// from below).
//
//decentlint:hotpath
func (n *Net) shSchedule(from, to NodeID, delay time.Duration, h sim.Handler, p sim.Payload) bool {
	sf := int(n.sh.owner[from])
	st := int(n.sh.owner[to])
	at := n.sh.kerns[sf].Now() + delay
	if sf == st {
		return n.sh.kerns[sf].AtFunc(at, h, p)
	}
	return n.sh.ss.Post(sf, st, at, h, p)
}

// DelayFloor returns the conservative window bound for a topology spanning
// the given regions under the given jitter fraction: the minimum one-way
// propagation delay over every ordered region pair (including same-region
// links — shards partition nodes, not regions), scaled by the jitter's
// lower edge. Any Send between nodes in these regions takes at least this
// long (transfer time only adds), so a sharded driver windowed at the
// floor never sees a cross-shard event land inside the window it was
// posted from. The scale arithmetic mirrors RNG.Jitter's minimum exactly.
func DelayFloor(jitter float64, regions ...Region) time.Duration {
	if jitter < 0 {
		jitter = 0
	}
	if jitter > 1 {
		jitter = 1
	}
	min := time.Duration(0)
	for _, a := range regions {
		for _, b := range regions {
			if a < NorthAmerica || a > Region(NumRegions) || b < NorthAmerica || b > Region(NumRegions) {
				continue
			}
			base := time.Duration(baseOneWay[a-1][b-1]) * time.Millisecond
			if min == 0 || base < min {
				min = base
			}
		}
	}
	if min == 0 {
		return 0
	}
	// RNG.Jitter's lowest draw scales by 1 + f*(2*0-1), which is exactly
	// 1-f in float arithmetic, so this floor is attained, never crossed.
	return time.Duration(float64(min) * (1 - jitter))
}
