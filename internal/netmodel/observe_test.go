package netmodel

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

func benchNetObs(nodes, traceLimit int) (*sim.Sim, *Net, []NodeID, *obs.Collector) {
	var opts []obs.Option
	if traceLimit > 0 {
		opts = append(opts, obs.WithTrace(traceLimit))
	}
	col := obs.NewCollector(opts...)
	s := sim.New(sim.WithSeed(1), sim.WithObserver(col))
	n := New(s)
	ids := make([]NodeID, nodes)
	for i := range ids {
		ids[i] = n.AddNode(Region(i%NumRegions+1), 0)
	}
	return s, n, ids, col
}

func TestObserveCountsTraffic(t *testing.T) {
	s, n, ids, col := benchNetObs(4, 0)
	delivered := 0
	for i := 0; i < 10; i++ {
		if !n.Send(ids[0], ids[1], 100, func() { delivered++ }) {
			t.Fatal("send refused")
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap := col.Snapshot()
	got := map[string]uint64{}
	for _, c := range snap.Counters {
		got[c.Name] = c.Total
	}
	if got["net.msgs_sent"] != 10 || got["net.msgs_delivered"] != 10 {
		t.Fatalf("sent/delivered = %d/%d, want 10/10", got["net.msgs_sent"], got["net.msgs_delivered"])
	}
	var hist obs.HistSnap
	for _, h := range snap.Hists {
		if h.Name == "net.delivery_delay_ns" {
			hist = h
		}
	}
	if hist.Count != 10 || hist.Min <= 0 {
		t.Fatalf("delay histogram = %+v, want 10 positive samples", hist)
	}
	if snap.Sim.Fired != 10 {
		t.Fatalf("kernel fired = %d, want 10", snap.Sim.Fired)
	}
	// Region lanes: the receiver (node 1) is in region EU (index 2).
	for _, c := range snap.Counters {
		if c.Name != "net.msgs_delivered" {
			continue
		}
		if len(c.Lanes) != 1 || c.Lanes[0].Region != "EU" {
			t.Fatalf("delivered lanes = %+v, want one EU lane", c.Lanes)
		}
	}
}

func TestObserveClassifiesDrops(t *testing.T) {
	s, n, ids, col := benchNetObs(4, 0)
	// Offline receiver at admission.
	n.SetUp(ids[1], false)
	n.Send(ids[0], ids[1], 10, func() {})
	n.SetUp(ids[1], true)
	// Partitioned pair at admission.
	n.Partition(map[NodeID]int{ids[2]: 1})
	n.Send(ids[0], ids[2], 10, func() {})
	n.Heal()
	// In-flight drop: receiver goes down before delivery.
	n.Send(ids[0], ids[3], 10, func() { t.Error("delivered to a dead node") })
	n.SetUp(ids[3], false)
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Loss drop: force certain loss.
	n.SetLoss(1)
	n.Send(ids[0], ids[1], 10, func() {})
	snap := col.Snapshot()
	got := map[string]uint64{}
	for _, c := range snap.Counters {
		got[c.Name] = c.Total
	}
	want := map[string]uint64{
		"net.drop_down": 1, "net.drop_partition": 1,
		"net.drop_in_flight": 1, "net.drop_loss": 1,
	}
	for name, w := range want {
		if got[name] != w {
			t.Fatalf("%s = %d, want %d (all: %v)", name, got[name], w, got)
		}
	}
}

func TestObserveTracesWindowEdges(t *testing.T) {
	s, n, ids, col := benchNetObs(2, 100)
	if err := n.ScheduleOutageWindow(time.Second, 2*time.Second, ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := n.ScheduleLossWindow(3*time.Second, 4*time.Second, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := n.SchedulePartitionWindow(5*time.Second, 6*time.Second, map[NodeID]int{ids[1]: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := col.Trace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"outage.start", "outage.end", "loss.start", "loss.end",
		"partition.start", "partition.end",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(`"name":"`+name+`"`)) {
			t.Fatalf("trace lacks %s instant:\n%s", name, buf.String())
		}
	}
}

// TestObserveDeterministic pins the telemetry-on determinism contract: two
// identical runs produce identical snapshots and byte-identical traces.
func TestObserveDeterministic(t *testing.T) {
	run := func() (obs.Snapshot, []byte) {
		s, n, ids, col := benchNetObs(8, 1000)
		n.SetLoss(0.2)
		deliver := func(NodeID) {}
		for round := 0; round < 5; round++ {
			n.Broadcast(ids[round%8], 1000, deliver)
			if err := s.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}
		}
		var buf bytes.Buffer
		if err := col.Trace().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return col.Snapshot(), buf.Bytes()
	}
	snapA, traceA := run()
	snapB, traceB := run()
	if !reflect.DeepEqual(snapA, snapB) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", snapA, snapB)
	}
	if !bytes.Equal(traceA, traceB) {
		t.Fatal("traces differ between identical runs")
	}
}

// TestSendTelemetryOnZeroAllocs proves the counters+histogram path (no
// trace) also allocates nothing once lanes are sealed — telemetry overhead
// is pure arithmetic.
func TestSendTelemetryOnZeroAllocs(t *testing.T) {
	s, n, ids, _ := benchNetObs(2, 0)
	deliver := func() {}
	for i := 0; i < 64; i++ {
		n.Send(ids[0], ids[1], 100, deliver)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			if !n.Send(ids[0], ids[1], 100, deliver) {
				t.Fatal("send refused")
			}
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("telemetry-on Send allocates %.1f per batch, want 0", avg)
	}
}

// BenchmarkTransportSendTelemetryOn is the telemetry-overhead row CI
// compares against BenchmarkTransportSend: same loop with counters and the
// delay histogram live.
func BenchmarkTransportSendTelemetryOn(b *testing.B) {
	s, n, ids, _ := benchNetObs(2, 0)
	deliver := func() {}
	for i := 0; i < 64; i++ {
		n.Send(ids[0], ids[1], 100, deliver)
	}
	if err := s.Run(); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(ids[0], ids[1], 100, deliver)
		if err := s.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
}

// BenchmarkTransportBroadcastTelemetryOn mirrors BenchmarkTransportBroadcast
// with telemetry live.
func BenchmarkTransportBroadcastTelemetryOn(b *testing.B) {
	s, n, ids, _ := benchNetObs(64, 0)
	deliver := func(NodeID) {}
	n.Broadcast(ids[0], 1000, deliver)
	if err := s.Run(); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Broadcast(ids[0], 1000, deliver)
		if err := s.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
}
