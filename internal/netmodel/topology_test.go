package netmodel

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestMixPresets(t *testing.T) {
	for i := 1; i <= NumMixPresets; i++ {
		mix, err := MixPreset(i)
		if err != nil {
			t.Fatalf("MixPreset(%d): %v", i, err)
		}
		americas, elsewhere := false, false
		for _, rw := range mix {
			if rw.Weight <= 0 {
				t.Errorf("preset %d: region %s has non-positive weight", i, rw.Region)
			}
			if rw.Region == NorthAmerica || rw.Region == SouthAmerica {
				americas = true
			} else {
				elsewhere = true
			}
		}
		if !americas || !elsewhere {
			t.Errorf("preset %d does not straddle the Atlantic cut", i)
		}
	}
	if _, err := MixPreset(0); err == nil {
		t.Fatal("preset 0 should be rejected (reserved for 'off')")
	}
	if _, err := MixPreset(NumMixPresets + 1); err == nil {
		t.Fatal("out-of-range preset accepted")
	}
}

func TestBuildTopologyExactProportions(t *testing.T) {
	_, n := newNet(t)
	ids, err := n.BuildTopology(TopologySpec{
		Nodes: 20,
		Mix:   []RegionWeight{{Europe, 0.5}, {Asia, 0.25}, {NorthAmerica, 0.25}},
	})
	if err != nil {
		t.Fatalf("BuildTopology: %v", err)
	}
	if len(ids) != 20 || n.Size() != 20 {
		t.Fatalf("built %d ids over %d nodes, want 20", len(ids), n.Size())
	}
	counts := make(map[Region]int)
	for _, id := range ids {
		counts[n.Region(id)]++
	}
	if counts[Europe] != 10 || counts[Asia] != 5 || counts[NorthAmerica] != 5 {
		t.Fatalf("region counts = %v, want exact weighted apportionment", counts)
	}
}

func TestBuildTopologyLargestRemainder(t *testing.T) {
	_, n := newNet(t)
	// 7 nodes at weights 0.5/0.3/0.2: floors are 3/2/1 (6 assigned), and
	// the leftover seat goes to the largest remainder (EU: 3.5 -> 0.5).
	ids, err := n.BuildTopology(TopologySpec{
		Nodes: 7,
		Mix:   []RegionWeight{{Europe, 0.5}, {Asia, 0.3}, {NorthAmerica, 0.2}},
	})
	if err != nil {
		t.Fatalf("BuildTopology: %v", err)
	}
	counts := make(map[Region]int)
	for _, id := range ids {
		counts[n.Region(id)]++
	}
	if counts[Europe] != 4 || counts[Asia] != 2 || counts[NorthAmerica] != 1 {
		t.Fatalf("region counts = %v, want EU:4 AS:2 NA:1", counts)
	}
}

func TestBuildTopologyDeterministic(t *testing.T) {
	build := func() []Region {
		s := sim.New(sim.WithSeed(42))
		n := New(s)
		ids, err := n.BuildTopology(TopologySpec{Nodes: 30})
		if err != nil {
			t.Fatalf("BuildTopology: %v", err)
		}
		out := make([]Region, len(ids))
		for i, id := range ids {
			out[i] = n.Region(id)
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d region differs across identical seeds: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestBuildTopologyBandwidthClasses(t *testing.T) {
	_, n := newNet(t)
	ids, err := n.BuildTopology(TopologySpec{
		Nodes: 50,
		Classes: []BandwidthClass{
			{Name: "fiber", UplinkBps: 100e6, DownlinkBps: 100e6, Weight: 0.5},
			{Name: "adsl", UplinkBps: 1e6, DownlinkBps: 16e6, Weight: 0.5},
		},
	})
	if err != nil {
		t.Fatalf("BuildTopology: %v", err)
	}
	tiers := make(map[time.Duration]int)
	for _, id := range ids {
		tiers[n.TransferTime(id, -1, 1_000_000)]++ // uplink-only serialization
	}
	if len(tiers) != 2 {
		t.Fatalf("distinct uplink tiers = %d, want 2 (fiber + adsl)", len(tiers))
	}
	if tiers[80*time.Millisecond] == 0 || tiers[8*time.Second] == 0 {
		t.Fatalf("tier histogram = %v, want both 100Mbit and 1Mbit uplinks present", tiers)
	}
}

func TestBuildTopologyValidation(t *testing.T) {
	_, n := newNet(t)
	if _, err := n.BuildTopology(TopologySpec{Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := n.BuildTopology(TopologySpec{Nodes: 5, Mix: []RegionWeight{{Region(99), 1}}}); err == nil {
		t.Fatal("invalid region accepted")
	}
	if _, err := n.BuildTopology(TopologySpec{Nodes: 5, Mix: []RegionWeight{{Europe, 0}}}); err == nil {
		t.Fatal("zero total weight accepted")
	}
	if _, err := n.BuildTopology(TopologySpec{Nodes: 5, Mix: []RegionWeight{{Europe, -1}, {Asia, 2}}}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := n.BuildTopology(TopologySpec{
		Nodes:   5,
		Classes: []BandwidthClass{{Name: "x", Weight: 0}},
	}); err == nil {
		t.Fatal("zero class weight accepted")
	}
}

func TestBroadcastReachesEveryoneOnce(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	ids, err := n.BuildTopology(TopologySpec{Nodes: 10})
	if err != nil {
		t.Fatalf("BuildTopology: %v", err)
	}
	got := make(map[NodeID]int)
	scheduled := n.Broadcast(ids[0], 100, func(to NodeID) { got[to]++ })
	if scheduled != 9 {
		t.Fatalf("scheduled %d deliveries, want 9", scheduled)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 9 {
		t.Fatalf("delivered to %d nodes, want 9", len(got))
	}
	for id, c := range got {
		if c != 1 {
			t.Fatalf("node %d received %d copies, want 1", id, c)
		}
	}
	if got[ids[0]] != 0 {
		t.Fatal("origin delivered to itself")
	}
	if n.MessagesSent(ids[0]) != 9 || n.BytesSent(ids[0]) != 900 {
		t.Fatalf("traffic: msgs=%d bytes=%d, want 9/900", n.MessagesSent(ids[0]), n.BytesSent(ids[0]))
	}
}

func TestBroadcastSerializesOnUplink(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	from := n.AddNode(Europe, 8e6) // 1 MB -> 1 s per copy
	b := n.AddNode(Europe, 0)
	c := n.AddNode(Europe, 0)
	var times []time.Duration
	n.Broadcast(from, 1_000_000, func(NodeID) { times = append(times, s.Now()) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	_ = b
	_ = c
	if len(times) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(times))
	}
	// First copy: 1 s transfer + 15 ms EU latency; second queues behind it.
	if times[0] != time.Second+15*time.Millisecond {
		t.Fatalf("first delivery at %v, want 1.015s", times[0])
	}
	if times[1] != 2*time.Second+15*time.Millisecond {
		t.Fatalf("second delivery at %v, want 2.015s (uplink serialization)", times[1])
	}
}

func TestBroadcastRespectsPartitionAndLoss(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	a := n.AddNode(Europe, 0)
	b := n.AddNode(Europe, 0)
	c := n.AddNode(Asia, 0)
	n.Partition(map[NodeID]int{a: 0, b: 0, c: 1})
	reached := make(map[NodeID]bool)
	if got := n.Broadcast(a, 10, func(to NodeID) { reached[to] = true }); got != 1 {
		t.Fatalf("scheduled %d deliveries across a partition, want 1", got)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reached[b] || reached[c] {
		t.Fatalf("reached = %v, want only the same-partition peer", reached)
	}
	n.Heal()
	n.SetLoss(1)
	sentBefore := n.BytesSent(a)
	if got := n.Broadcast(a, 10, func(NodeID) {}); got != 0 {
		t.Fatalf("scheduled %d deliveries at 100%% loss, want 0", got)
	}
	// Lost copies were still transmitted: they consume uplink and traffic.
	if n.BytesSent(a) != sentBefore+20 {
		t.Fatalf("bytes sent %d, want %d — lost copies must charge the sender", n.BytesSent(a), sentBefore+20)
	}
	if n.Broadcast(NodeID(99), 10, func(NodeID) {}) != 0 {
		t.Fatal("broadcast from unknown node scheduled deliveries")
	}
	if n.Broadcast(a, 10, nil) != 0 {
		t.Fatal("broadcast with nil deliver scheduled deliveries")
	}
}

// TestBroadcastLossStillChargesUplink pins that a copy lost in flight
// still occupied its uplink serialization slot: the surviving receiver
// behind it is NOT delivered earlier than on a lossless link.
func TestBroadcastLossStillChargesUplink(t *testing.T) {
	timeTo := func(loss float64) time.Duration {
		s := sim.New(sim.WithSeed(7))
		n := New(s, WithJitter(0))
		from := n.AddNode(Europe, 8e6) // 1 MB -> 1 s per copy
		n.AddNode(Europe, 0)
		last := n.AddNode(Europe, 0)
		n.SetLoss(loss)
		var at time.Duration
		n.Broadcast(from, 1_000_000, func(to NodeID) {
			if to == last {
				at = s.Now()
			}
		})
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return at
	}
	// Seed 7's first loss draw at p=0.5 drops the middle receiver; the
	// last receiver must still wait both uplink slots (2s + 15ms), exactly
	// as on the lossless link.
	lossless, lossy := timeTo(0), timeTo(0.5)
	if lossless != 2*time.Second+15*time.Millisecond {
		t.Fatalf("lossless last delivery at %v, want 2.015s", lossless)
	}
	if lossy != 0 && lossy < lossless {
		t.Fatalf("loss sped up delivery: %v < %v", lossy, lossless)
	}
}

func TestTransferChargesWithoutScheduling(t *testing.T) {
	s, n := newNet(t, WithJitter(0))
	a := n.AddNode(NorthAmerica, 8e6)
	b := n.AddNode(Europe, 0)
	d, ok := n.Transfer(a, b, 1_000_000)
	if !ok {
		t.Fatal("Transfer refused a valid message")
	}
	if d != time.Second+45*time.Millisecond {
		t.Fatalf("Transfer delay = %v, want 1.045s", d)
	}
	if s.Pending() != 0 {
		t.Fatalf("Transfer scheduled %d events, want 0", s.Pending())
	}
	if n.BytesSent(a) != 1_000_000 || n.BytesReceived(b) != 1_000_000 {
		t.Fatal("Transfer did not account traffic")
	}
	n.Partition(map[NodeID]int{a: 0, b: 1})
	if _, ok := n.Transfer(a, b, 10); ok {
		t.Fatal("Transfer crossed a partition")
	}
	if _, ok := n.Transfer(NodeID(99), b, 10); ok {
		t.Fatal("Transfer accepted an unknown sender")
	}
}

func TestBuildTopologyRejectsNegativeBandwidth(t *testing.T) {
	_, n := newNet(t)
	if _, err := n.BuildTopology(TopologySpec{
		Nodes:   5,
		Classes: []BandwidthClass{{Name: "adsl", UplinkBps: 1e6, DownlinkBps: -16e6, Weight: 1}},
	}); err == nil {
		t.Fatal("negative downlink accepted (would silently mean unconstrained)")
	}
	if _, err := n.BuildTopology(TopologySpec{
		Nodes:   5,
		Classes: []BandwidthClass{{Name: "x", UplinkBps: -1, Weight: 1}},
	}); err == nil {
		t.Fatal("negative uplink accepted")
	}
}
