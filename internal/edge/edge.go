// Package edge models the geography behind edge-centric computing (Garcia
// Lopez et al., the authors' own prior work and the paper's Figure 1):
// clients, nano-datacenter edge nodes, and a handful of regional cloud
// datacenters placed on a plane, with network latency driven by distance.
//
// The quantitative claim it supports (E14): placing latency-sensitive
// services on nearby edge nodes cuts client RTT by a large factor relative
// to a centralized cloud, while the permissioned-blockchain layer (built in
// internal/permissioned) provides the decentralized trust among edge
// operators.
package edge

import (
	"errors"
	"math"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config parameterizes a deployment geography.
type Config struct {
	// Clients, EdgeNodes and CloudDCs are the population sizes.
	Clients, EdgeNodes, CloudDCs int
	// AreaKM is the side of the square service region in kilometres
	// (default 3000, a continent).
	AreaKM float64
	// LastMileMs is the fixed access-network latency every path pays.
	LastMileMs float64
	// MsPerKM is one-way propagation per kilometre including routing
	// inflation (default 0.03 ms/km ≈ fibre at 2/3 c with 1.5x detours).
	MsPerKM float64
	// ServiceMs is the server-side processing time.
	ServiceMs float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Clients <= 0 || c.EdgeNodes <= 0 || c.CloudDCs <= 0 {
		return c, errors.New("edge: all population sizes must be positive")
	}
	if c.AreaKM <= 0 {
		c.AreaKM = 3000
	}
	if c.LastMileMs <= 0 {
		c.LastMileMs = 4
	}
	if c.MsPerKM <= 0 {
		c.MsPerKM = 0.03
	}
	if c.ServiceMs < 0 {
		c.ServiceMs = 0
	}
	return c, nil
}

type point struct {
	x, y float64
}

func dist(a, b point) float64 {
	dx, dy := a.x-b.x, a.y-b.y
	return math.Sqrt(dx*dx + dy*dy)
}

// Deployment is a placed geography.
type Deployment struct {
	cfg     Config
	clients []point
	edges   []point
	clouds  []point
}

// New places clients and edge nodes uniformly and cloud DCs at random
// metropolitan locations.
func New(g *sim.RNG, cfg Config) (*Deployment, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &Deployment{cfg: cfg}
	place := func(n int) []point {
		pts := make([]point, n)
		for i := range pts {
			pts[i] = point{x: g.Float64() * cfg.AreaKM, y: g.Float64() * cfg.AreaKM}
		}
		return pts
	}
	d.clients = place(cfg.Clients)
	d.edges = place(cfg.EdgeNodes)
	d.clouds = place(cfg.CloudDCs)
	return d, nil
}

// rttMs returns the request-response latency between a client and a server
// location.
func (d *Deployment) rttMs(c, s point) float64 {
	oneWay := d.cfg.LastMileMs + dist(c, s)*d.cfg.MsPerKM
	return 2*oneWay + d.cfg.ServiceMs
}

func nearest(c point, sites []point) point {
	best := sites[0]
	bestD := dist(c, best)
	for _, s := range sites[1:] {
		if ds := dist(c, s); ds < bestD {
			best, bestD = s, ds
		}
	}
	return best
}

// Placement selects which tier serves requests.
type Placement int

// The supported placements.
const (
	// EdgePlacement serves each client from its nearest edge node.
	EdgePlacement Placement = iota + 1
	// CloudPlacement serves each client from its nearest cloud DC.
	CloudPlacement
	// CentralPlacement serves every client from one fixed DC (the fully
	// centralized baseline).
	CentralPlacement
)

func (p Placement) String() string {
	switch p {
	case EdgePlacement:
		return "edge"
	case CloudPlacement:
		return "cloud"
	case CentralPlacement:
		return "central"
	default:
		return "unknown"
	}
}

// Latencies returns the per-client RTT sample (milliseconds) under the
// given placement.
func (d *Deployment) Latencies(p Placement) *metrics.Sample {
	var sample metrics.Sample
	for _, c := range d.clients {
		var server point
		switch p {
		case EdgePlacement:
			server = nearest(c, d.edges)
		case CloudPlacement:
			server = nearest(c, d.clouds)
		default:
			server = d.clouds[0]
		}
		sample.Add(d.rttMs(c, server))
	}
	return &sample
}

// Comparison summarizes edge-vs-cloud placement.
type Comparison struct {
	EdgeMedianMs, CloudMedianMs, CentralMedianMs float64
	EdgeP95Ms, CloudP95Ms                        float64
	// MedianSpeedup is cloud median / edge median.
	MedianSpeedup float64
	// WithinBudgetEdge/Cloud are the fractions of clients within the
	// latency budget.
	WithinBudgetEdge, WithinBudgetCloud float64
}

// Compare evaluates all placements against a latency budget in ms (e.g. 20
// ms for interactive control loops).
func (d *Deployment) Compare(budgetMs float64) Comparison {
	edge := d.Latencies(EdgePlacement)
	cloud := d.Latencies(CloudPlacement)
	central := d.Latencies(CentralPlacement)
	cmp := Comparison{
		EdgeMedianMs:    edge.Median(),
		CloudMedianMs:   cloud.Median(),
		CentralMedianMs: central.Median(),
		EdgeP95Ms:       edge.Percentile(95),
		CloudP95Ms:      cloud.Percentile(95),
	}
	if cmp.EdgeMedianMs > 0 {
		cmp.MedianSpeedup = cmp.CloudMedianMs / cmp.EdgeMedianMs
	}
	if budgetMs > 0 {
		cmp.WithinBudgetEdge = edge.Fraction(func(x float64) bool { return x <= budgetMs })
		cmp.WithinBudgetCloud = cloud.Fraction(func(x float64) bool { return x <= budgetMs })
	}
	return cmp
}

// TheoreticalNearestDistance returns the expected distance to the nearest
// of n uniform sites in a square of side a: ~0.5*a/sqrt(n). Used to sanity
// check the simulation against the analytic scaling.
func TheoreticalNearestDistance(areaKM float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	return 0.5 * areaKM / math.Sqrt(float64(n))
}

// Duration converts a latency in milliseconds to a time.Duration.
func Duration(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}
