package edge

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func deploy(t *testing.T, seed int64, cfg Config) *Deployment {
	t.Helper()
	d, err := New(sim.NewRNG(seed), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestValidation(t *testing.T) {
	if _, err := New(sim.NewRNG(1), Config{}); err == nil {
		t.Fatal("zero populations should error")
	}
}

func TestEdgeBeatsCloud(t *testing.T) {
	d := deploy(t, 2, Config{Clients: 2000, EdgeNodes: 50, CloudDCs: 3})
	cmp := d.Compare(20)
	if cmp.MedianSpeedup < 1.5 {
		t.Fatalf("median speedup = %v, want edge clearly faster", cmp.MedianSpeedup)
	}
	if cmp.EdgeMedianMs >= cmp.CloudMedianMs {
		t.Fatal("edge median must beat cloud median")
	}
	if cmp.CloudMedianMs > cmp.CentralMedianMs {
		t.Fatal("nearest-of-3 clouds cannot be slower than a single central DC")
	}
	if cmp.WithinBudgetEdge <= cmp.WithinBudgetCloud {
		t.Fatalf("edge budget fraction %v should exceed cloud %v",
			cmp.WithinBudgetEdge, cmp.WithinBudgetCloud)
	}
}

func TestMoreEdgeNodesLowerLatency(t *testing.T) {
	few := deploy(t, 3, Config{Clients: 1000, EdgeNodes: 10, CloudDCs: 3})
	many := deploy(t, 3, Config{Clients: 1000, EdgeNodes: 200, CloudDCs: 3})
	if many.Latencies(EdgePlacement).Median() >= few.Latencies(EdgePlacement).Median() {
		t.Fatal("denser edge deployment should cut latency")
	}
}

func TestNearestDistanceScaling(t *testing.T) {
	// Empirical nearest-edge distance should track the 0.5*a/sqrt(n) law
	// within a factor of ~2 (the constant depends on boundary effects).
	cfg := Config{Clients: 5000, EdgeNodes: 100, CloudDCs: 1}
	d := deploy(t, 4, cfg)
	var sum float64
	for _, c := range d.clients {
		sum += dist(c, nearest(c, d.edges))
	}
	mean := sum / float64(len(d.clients))
	want := TheoreticalNearestDistance(3000, 100)
	if mean < want/2 || mean > want*2 {
		t.Fatalf("mean nearest distance = %v km, analytic ~%v km", mean, want)
	}
}

func TestLatencyFloor(t *testing.T) {
	// Even with an edge node on top of the client, RTT >= 2*LastMile +
	// Service.
	d := deploy(t, 5, Config{Clients: 100, EdgeNodes: 5000, CloudDCs: 1, LastMileMs: 4, ServiceMs: 1})
	med := d.Latencies(EdgePlacement).Median()
	if med < 9 {
		t.Fatalf("median %v below physical floor 9ms", med)
	}
	if med > 25 {
		t.Fatalf("median %v too high with 5000 edge nodes", med)
	}
}

func TestCentralPlacementFixedDC(t *testing.T) {
	d := deploy(t, 6, Config{Clients: 500, EdgeNodes: 5, CloudDCs: 5})
	central := d.Latencies(CentralPlacement)
	cloud := d.Latencies(CloudPlacement)
	if central.Median() < cloud.Median() {
		t.Fatal("central single-DC median cannot beat nearest-of-5")
	}
}

func TestPlacementString(t *testing.T) {
	if EdgePlacement.String() != "edge" || CloudPlacement.String() != "cloud" ||
		CentralPlacement.String() != "central" || Placement(0).String() != "unknown" {
		t.Fatal("Placement strings wrong")
	}
}

func TestTheoreticalNearestDistance(t *testing.T) {
	if TheoreticalNearestDistance(3000, 0) != 0 {
		t.Fatal("n=0 should be 0")
	}
	if got := TheoreticalNearestDistance(3000, 100); math.Abs(got-150) > 1e-9 {
		t.Fatalf("analytic distance = %v, want 150", got)
	}
}

func TestDurationHelper(t *testing.T) {
	if Duration(1.5).Microseconds() != 1500 {
		t.Fatal("Duration conversion wrong")
	}
}
