package pow

import (
	"errors"
	"math"

	"repro/internal/sim"
)

// DoubleSpendProbability returns Nakamoto's closed-form probability (Bitcoin
// paper, section 11) that an attacker with share q of the hashrate
// eventually overtakes a transaction buried under z confirmations.
func DoubleSpendProbability(q float64, z int) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 0.5 {
		return 1
	}
	if z <= 0 {
		return 1
	}
	p := 1 - q
	lambda := float64(z) * q / p
	var sum float64
	// P = 1 - sum_{k=0}^{z} Poisson(k; lambda) * (1 - (q/p)^(z-k))
	poisson := math.Exp(-lambda)
	for k := 0; k <= z; k++ {
		if k > 0 {
			poisson *= lambda / float64(k)
		}
		sum += poisson * (1 - math.Pow(q/p, float64(z-k)))
	}
	pr := 1 - sum
	if pr < 0 {
		return 0
	}
	if pr > 1 {
		return 1
	}
	return pr
}

// DoubleSpendProbabilityExact returns the exact double-spend success
// probability under the block-race model (Rosenfeld 2014): the attacker's
// progress while the merchant waits for z honest blocks is negative
// binomial (not Nakamoto's Poisson approximation), and the attacker must
// overtake the honest chain strictly (a tie is not a win, unlike the
// (q/p)^0 = 1 term in Nakamoto's formula). SimulateDoubleSpend converges to
// this value.
func DoubleSpendProbabilityExact(q float64, z int) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 0.5 {
		return 1
	}
	if z <= 0 {
		return 1
	}
	p := 1 - q
	// P(k attacker blocks before z honest) = C(k+z-1, k) p^z q^k.
	nb := math.Pow(p, float64(z)) // k = 0 term
	var sum, tail float64
	tail = 1
	for k := 0; ; k++ {
		if k > 0 {
			nb *= q * float64(k+z-1) / float64(k)
		}
		tail -= nb
		deficit := z - k + 1
		win := 1.0
		if deficit > 0 {
			win = math.Pow(q/p, float64(deficit))
		}
		sum += nb * win
		if k > z && tail < 1e-12 {
			break
		}
		if k > z+2000 {
			break
		}
	}
	// Remaining tail (k very large) wins with certainty.
	if tail > 0 {
		sum += tail
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// SimulateDoubleSpend Monte-Carlos the same race: while the merchant waits
// for z honest confirmations the attacker mines privately (starting one
// block behind, as in Nakamoto's analysis); afterwards the attacker
// continues until it overtakes (success) or falls hopelessly behind
// (failure). It returns the empirical success probability.
func SimulateDoubleSpend(g *sim.RNG, q float64, z, trials int) (float64, error) {
	if q <= 0 || q >= 1 {
		return 0, errors.New("pow: attacker share must be in (0,1)")
	}
	if z < 0 {
		return 0, errors.New("pow: confirmations must be non-negative")
	}
	if trials <= 0 {
		trials = 10_000
	}
	const giveUpDeficit = 60 // P(recovery) < (q/p)^60: negligible
	wins := 0
	for t := 0; t < trials; t++ {
		// Phase 1: merchant waits for z honest blocks; attacker mines in
		// parallel. Count attacker blocks found while z honest blocks are
		// found: each next block is the attacker's with probability q.
		attacker := 0
		honest := 0
		for honest < z {
			if g.Bool(q) {
				attacker++
			} else {
				honest++
			}
		}
		// Attacker needs a strictly longer chain: deficit of honest chain
		// over attacker chain plus one.
		deficit := honest - attacker + 1
		// Phase 2: gambler's ruin.
		for deficit > 0 && deficit < giveUpDeficit {
			if g.Bool(q) {
				deficit--
			} else {
				deficit++
			}
		}
		if deficit <= 0 {
			wins++
		}
	}
	return float64(wins) / float64(trials), nil
}

// ConfirmationsForRisk returns the minimum confirmations z such that the
// double-spend probability falls below risk for an attacker share q, capped
// at maxZ (returns maxZ+1 if never reached — e.g. q >= 0.5).
func ConfirmationsForRisk(q, risk float64, maxZ int) int {
	for z := 1; z <= maxZ; z++ {
		if DoubleSpendProbability(q, z) < risk {
			return z
		}
	}
	return maxZ + 1
}
