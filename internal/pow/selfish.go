package pow

import (
	"errors"

	"repro/internal/sim"
)

// SelfishOutcome reports a selfish-mining run.
type SelfishOutcome struct {
	// Alpha is the selfish pool's hashrate share; Gamma the fraction of
	// honest miners that mine on the selfish branch during a tie.
	Alpha, Gamma float64
	// PoolBlocks and HonestBlocks count best-chain blocks won by each side.
	PoolBlocks, HonestBlocks int
	// RevenueShare is PoolBlocks / (PoolBlocks + HonestBlocks).
	RevenueShare float64
	// FairShare is Alpha: what honest mining would have earned.
	FairShare float64
}

// Profitable reports whether selfish mining beat honest mining.
func (o SelfishOutcome) Profitable() bool { return o.RevenueShare > o.FairShare }

// SimulateSelfishMining runs the Eyal–Sirer selfish-mining strategy as a
// discrete block-discovery race for the given number of found blocks.
//
// State machine (Eyal & Sirer 2014, Algorithm 1): the pool withholds found
// blocks, publishing just enough to orphan honest work; gamma is the share
// of honest hashpower that mines on the pool's branch during a tie.
func SimulateSelfishMining(g *sim.RNG, alpha, gamma float64, blocks int) (SelfishOutcome, error) {
	if alpha <= 0 || alpha >= 1 {
		return SelfishOutcome{}, errors.New("pow: alpha must be in (0,1)")
	}
	if gamma < 0 || gamma > 1 {
		return SelfishOutcome{}, errors.New("pow: gamma must be in [0,1]")
	}
	if blocks <= 0 {
		blocks = 100_000
	}
	var (
		lead      int  // private chain advantage
		tie       bool // branches of equal length competing
		pool, hon int
	)
	for i := 0; i < blocks; i++ {
		if g.Bool(alpha) {
			// Pool finds a block.
			if tie {
				// Pool extends its branch and publishes: wins both blocks.
				pool += 2
				tie = false
				lead = 0
				continue
			}
			lead++
			continue
		}
		// Honest network finds a block.
		switch {
		case tie:
			if g.Bool(gamma) {
				// Honest block extends the pool branch: pool keeps its
				// published block, honest miner gets the new one.
				pool++
				hon++
			} else {
				// Honest branch wins both.
				hon += 2
			}
			tie = false
			lead = 0
		case lead == 0:
			hon++
		case lead == 1:
			// Pool publishes its single private block: a tie race begins.
			tie = true
			lead = 0
		case lead == 2:
			// Pool publishes everything and takes both blocks; honest
			// block is orphaned.
			pool += 2
			lead = 0
		default:
			// Pool publishes one block (it stays ahead).
			pool++
			lead--
		}
	}
	// Settle any private lead at the end.
	pool += lead
	total := pool + hon
	out := SelfishOutcome{
		Alpha:        alpha,
		Gamma:        gamma,
		PoolBlocks:   pool,
		HonestBlocks: hon,
		FairShare:    alpha,
	}
	if total > 0 {
		out.RevenueShare = float64(pool) / float64(total)
	}
	return out, nil
}

// SelfishRevenueClosedForm returns the pool's expected revenue share from
// Eyal & Sirer's equation (8).
func SelfishRevenueClosedForm(alpha, gamma float64) float64 {
	a, g := alpha, gamma
	num := a*(1-a)*(1-a)*(4*a+g*(1-2*a)) - a*a*a
	den := 1 - a*(1+(2-a)*a)
	if den == 0 {
		return 0
	}
	return num / den
}

// SelfishThreshold returns the minimum profitable pool size for a given
// gamma: (1-gamma)/(3-2*gamma). At gamma=0 this is 1/3 — the paper's
// headline "majority is not enough" number.
func SelfishThreshold(gamma float64) float64 {
	return (1 - gamma) / (3 - 2*gamma)
}
