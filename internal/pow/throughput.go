package pow

import (
	"math"
	"time"
)

// ChainParams captures the throughput-determining parameters of a deployed
// permissionless chain.
type ChainParams struct {
	// Name labels the configuration in tables.
	Name string
	// BlockCapacity is the usable payload per block in bytes (size-capped
	// chains) — zero when GasLimit applies instead.
	BlockCapacity int
	// AvgTxSize is the mean transaction size in bytes.
	AvgTxSize int
	// GasLimit and AvgTxGas model Ethereum-style capacity; used when
	// BlockCapacity is zero.
	GasLimit, AvgTxGas float64
	// Interval is the average block interval.
	Interval time.Duration
}

// TxPerBlock returns the mean number of transactions fitting in a block.
func (p ChainParams) TxPerBlock() float64 {
	if p.BlockCapacity > 0 && p.AvgTxSize > 0 {
		return float64(p.BlockCapacity) / float64(p.AvgTxSize)
	}
	if p.GasLimit > 0 && p.AvgTxGas > 0 {
		return p.GasLimit / p.AvgTxGas
	}
	return 0
}

// TPS returns sustained transactions per second.
func (p ChainParams) TPS() float64 {
	if p.Interval <= 0 {
		return 0
	}
	return p.TxPerBlock() / p.Interval.Seconds()
}

// BitcoinParams returns the 2017-era Bitcoin configuration. With the
// historical transaction-size mix it yields the paper's 3.3–7 tps range
// (3.3 at ~500 B/tx, 7 at ~240 B/tx).
func BitcoinParams(avgTxSize int) ChainParams {
	if avgTxSize <= 0 {
		avgTxSize = 400
	}
	return ChainParams{
		Name:          "bitcoin",
		BlockCapacity: 1_000_000,
		AvgTxSize:     avgTxSize,
		Interval:      10 * time.Minute,
	}
}

// EthereumParams returns a 2018-era Ethereum configuration: 8M gas blocks
// every ~14s with a contract-heavy mix averaging ~38k gas/tx, matching the
// paper's "around 15 per second".
func EthereumParams() ChainParams {
	return ChainParams{
		Name:     "ethereum",
		GasLimit: 8_000_000,
		AvgTxGas: 38_000,
		Interval: 14 * time.Second,
	}
}

// VisaReferenceTPS is the paper's stated VISA processing capacity.
const VisaReferenceTPS = 24_000

// StaleRateModel returns the expected stale (orphan) rate for a given mean
// propagation delay and block interval under Poisson mining:
// 1 - e^(-delay/interval). It is the analytic companion to the fork-rate
// simulation (E8).
func StaleRateModel(propagation, interval time.Duration) float64 {
	if interval <= 0 || propagation <= 0 {
		return 0
	}
	return 1 - math.Exp(-propagation.Seconds()/interval.Seconds())
}

// EffectiveSecurityShare returns the honest-work fraction that actually
// secures the chain when a fraction stale of blocks is orphaned: wasted
// blocks do not contribute to the longest chain's weight, so an attacker's
// effective threshold drops from 50% to (1-stale)/(2-stale).
func EffectiveSecurityShare(stale float64) float64 {
	if stale < 0 {
		stale = 0
	}
	if stale >= 1 {
		return 0
	}
	return (1 - stale) / (2 - stale)
}
