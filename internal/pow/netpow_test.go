package pow

import (
	"testing"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func minerNet(t *testing.T, seed int64, n int, mixPreset int) (*sim.Sim, *netmodel.Net, []netmodel.NodeID) {
	t.Helper()
	s := sim.New(sim.WithSeed(seed))
	nm := netmodel.New(s, netmodel.WithJitter(0))
	mix, err := netmodel.MixPreset(mixPreset)
	if err != nil {
		t.Fatalf("MixPreset: %v", err)
	}
	addrs, err := nm.BuildTopology(netmodel.TopologySpec{Nodes: n, Mix: mix})
	if err != nil {
		t.Fatalf("BuildTopology: %v", err)
	}
	return s, nm, addrs
}

func TestNewNetworkOverNetValidation(t *testing.T) {
	s, nm, addrs := minerNet(t, 1, 3, netmodel.MixGlobal)
	params := Params{BlockInterval: time.Minute}
	if _, err := NewNetworkOverNet(s, nil, addrs, params, []float64{1, 1, 1}); err == nil {
		t.Fatal("nil transport accepted")
	}
	if _, err := NewNetworkOverNet(s, nm, addrs[:2], params, []float64{1, 1, 1}); err == nil {
		t.Fatal("address/hashrate length mismatch accepted")
	}
	dup := []netmodel.NodeID{addrs[0], addrs[0], addrs[1]}
	if _, err := NewNetworkOverNet(s, nm, dup, params, []float64{1, 1, 1}); err == nil {
		t.Fatal("duplicate miner address accepted")
	}
	// A transport with non-miner nodes is rejected: Broadcast blankets the
	// whole Net, so the relay requires a dedicated one.
	nm.AddNode(netmodel.Europe, 0)
	if _, err := NewNetworkOverNet(s, nm, addrs, params, []float64{1, 1, 1}); err == nil {
		t.Fatal("shared (non-dedicated) transport accepted")
	}
	s2, nm2, addrs2 := minerNet(t, 1, 3, netmodel.MixGlobal)
	if _, err := NewNetworkOverNet(s2, nm2, addrs2, params, []float64{1, 1, 1}); err != nil {
		t.Fatalf("valid construction failed: %v", err)
	}
}

// TestRelayOverTransportConverges checks the WAN-backed relay keeps miners
// on one chain when propagation is fast relative to the interval: stale
// rates stay low and every miner ends on the global best tip.
func TestRelayOverTransportConverges(t *testing.T) {
	s, nm, addrs := minerNet(t, 3, 8, netmodel.MixGlobal)
	nw, err := NewNetworkOverNet(s, nm, addrs, Params{
		BlockInterval:     10 * time.Minute,
		InitialDifficulty: 600, // total hashrate 1 -> on-target
	}, []float64{0.2, 0.2, 0.15, 0.15, 0.1, 0.1, 0.05, 0.05})
	if err != nil {
		t.Fatalf("NewNetworkOverNet: %v", err)
	}
	nw.Start()
	if err := s.RunUntil(200 * 10 * time.Minute); err != nil {
		t.Fatalf("run: %v", err)
	}
	nw.Stop()
	st := nw.Finalize()
	if st.BlocksFound < 100 {
		t.Fatalf("only %d blocks found", st.BlocksFound)
	}
	if st.StaleRate > 0.02 {
		t.Fatalf("stale rate %.3f with ms-scale relay and 600s intervals", st.StaleRate)
	}
	if nm.TotalBytesSent() == 0 {
		t.Fatal("relay sent no traffic over the transport")
	}
}

// TestPartitionForksThenHeals drives the partition schedule end to end: a
// 50/50 hashrate split mines two chains during the window, and after Heal
// one side's blocks go stale.
func TestPartitionForksThenHeals(t *testing.T) {
	s := sim.New(sim.WithSeed(5))
	nm := netmodel.New(s, netmodel.WithJitter(0))
	a := nm.AddNode(netmodel.NorthAmerica, 0)
	b := nm.AddNode(netmodel.Europe, 0)
	interval := 10 * time.Minute
	nw, err := NewNetworkOverNet(s, nm, []netmodel.NodeID{a, b}, Params{
		BlockInterval:     interval,
		InitialDifficulty: 600,
	}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatalf("NewNetworkOverNet: %v", err)
	}
	start, end := 100*interval, 200*interval
	if err := nm.SchedulePartitionWindow(start, end, map[netmodel.NodeID]int{a: 0, b: 1}); err != nil {
		t.Fatalf("SchedulePartitionWindow: %v", err)
	}
	nw.Start()
	if err := s.RunUntil(400 * interval); err != nil {
		t.Fatalf("run: %v", err)
	}
	nw.Stop()
	st := nw.Finalize()
	// During ~100 intervals of partition each side mines alone; the losing
	// side's window blocks are orphaned, so stale counts are a sizeable
	// fraction of the window.
	if st.StaleBlocks < 20 {
		t.Fatalf("stale blocks = %d; a 100-interval 50/50 partition should orphan far more", st.StaleBlocks)
	}
	// After healing, both miners converge on the same tip.
	if nw.miners[0].tipHash != nw.miners[1].tipHash {
		t.Fatal("miners did not converge after Heal")
	}
	if st.BestHeight < 250 {
		t.Fatalf("best height %d; the chain should keep growing through the partition", st.BestHeight)
	}
}

// TestAbstractDefaultUnchanged pins that a plain NewNetwork still uses the
// abstract propagation draw (no transport attached).
func TestAbstractDefaultUnchanged(t *testing.T) {
	s := sim.New(sim.WithSeed(2))
	nw, err := NewNetwork(s, Params{BlockInterval: time.Minute, InitialDifficulty: 60}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if nw.net != nil {
		t.Fatal("plain network has a transport attached")
	}
	nw.Start()
	if err := s.RunUntil(50 * time.Minute); err != nil {
		t.Fatalf("run: %v", err)
	}
	nw.Stop()
	if nw.BlocksFound() == 0 {
		t.Fatal("no blocks found")
	}
}
