package pow

import (
	"math"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/sim"
)

func TestNetworkValidation(t *testing.T) {
	s := sim.New()
	if _, err := NewNetwork(s, Params{}, []float64{1}); err == nil {
		t.Fatal("zero interval should error")
	}
	if _, err := NewNetwork(s, Params{BlockInterval: time.Minute}, nil); err == nil {
		t.Fatal("no miners should error")
	}
	if _, err := NewNetwork(s, Params{BlockInterval: time.Minute}, []float64{0}); err == nil {
		t.Fatal("zero total hashrate should error")
	}
	if _, err := NewNetwork(s, Params{BlockInterval: time.Minute}, []float64{-1, 2}); err == nil {
		t.Fatal("negative hashrate should error")
	}
}

func TestBlockIntervalMatchesTarget(t *testing.T) {
	s := sim.New(sim.WithSeed(1))
	// Difficulty and hashrate chosen so H/D = 1/600 blocks per second.
	nw, err := NewNetwork(s, Params{
		BlockInterval:     10 * time.Minute,
		InitialDifficulty: 600,
	}, []float64{0.4, 0.3, 0.3})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	nw.Start()
	if err := s.RunUntil(1000 * 10 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	nw.Stop()
	st := nw.Finalize()
	if st.BestHeight < 800 || st.BestHeight > 1200 {
		t.Fatalf("BestHeight = %d, want ~1000", st.BestHeight)
	}
	got := st.MeanInterval.Seconds()
	if math.Abs(got-600) > 60 {
		t.Fatalf("mean interval = %vs, want ~600s", got)
	}
}

func TestMinerSharesProportionalToHashrate(t *testing.T) {
	s := sim.New(sim.WithSeed(2))
	nw, err := NewNetwork(s, Params{
		BlockInterval:     time.Minute,
		InitialDifficulty: 60,
	}, []float64{0.5, 0.3, 0.2})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	nw.Start()
	if err := s.RunUntil(3000 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	nw.Stop()
	st := nw.Finalize()
	want := []float64{0.5, 0.3, 0.2}
	for i, share := range st.MinerShares {
		if math.Abs(share-want[i]) > 0.04 {
			t.Fatalf("miner %d share = %v, want ~%v", i, share, want[i])
		}
	}
}

func TestStaleRateGrowsWithPropagationDelay(t *testing.T) {
	run := func(delay time.Duration) float64 {
		s := sim.New(sim.WithSeed(3))
		nw, err := NewNetwork(s, Params{
			BlockInterval:     time.Minute,
			InitialDifficulty: 60,
			Propagation: func(g *sim.RNG, size int) time.Duration {
				return g.Jitter(delay, 0.2)
			},
		}, []float64{0.25, 0.25, 0.25, 0.25})
		if err != nil {
			t.Fatalf("NewNetwork: %v", err)
		}
		nw.Start()
		if err := s.RunUntil(4000 * time.Minute); err != nil {
			t.Fatalf("Run: %v", err)
		}
		nw.Stop()
		return nw.Finalize().StaleRate
	}
	fast := run(100 * time.Millisecond)
	slow := run(20 * time.Second)
	if fast > 0.02 {
		t.Fatalf("fast-propagation stale rate = %v, want <2%%", fast)
	}
	if slow < 5*fast || slow < 0.1 {
		t.Fatalf("slow-propagation stale rate = %v (fast %v), want a large increase", slow, fast)
	}
	// Compare with the analytic model: 1-e^(-d/i) for d=20s/i=60s ~ 0.28.
	model := StaleRateModel(20*time.Second, time.Minute)
	if math.Abs(slow-model) > 0.12 {
		t.Fatalf("simulated stale rate %v far from model %v", slow, model)
	}
}

func TestDifficultyRetargetTracksHashrateGrowth(t *testing.T) {
	s := sim.New(sim.WithSeed(4))
	nw, err := NewNetwork(s, Params{
		BlockInterval:     time.Minute,
		InitialDifficulty: 60,
		RetargetWindow:    50,
	}, []float64{1})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	nw.Start()
	// Double the hashrate every simulated hour, 6 times.
	for epoch := 1; epoch <= 6; epoch++ {
		epoch := epoch
		s.At(time.Duration(epoch)*time.Hour, func() {
			nw.SetHashrate(0, math.Pow(2, float64(epoch)))
		})
	}
	if err := s.RunUntil(10 * time.Hour); err != nil {
		t.Fatalf("Run: %v", err)
	}
	nw.Stop()
	if nw.Difficulty() < 20*60 {
		t.Fatalf("difficulty = %v, should have risen with 64x hashrate (start 60)", nw.Difficulty())
	}
	// Late-run interval should still be near target: measure last 50 blocks.
	st := nw.Finalize()
	if st.BestHeight < 300 {
		t.Fatalf("BestHeight = %d, expected hundreds of blocks", st.BestHeight)
	}
	// Mean interval over the whole run is biased by adjustment lag; assert
	// the difficulty kept within 4x of the ideal for the final hashrate.
	ideal := 64.0 * 60 // hashrate 64, 60s target
	ratio := nw.Difficulty() / ideal
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("final difficulty %v vs ideal %v (ratio %v)", nw.Difficulty(), ideal, ratio)
	}
}

func TestSelfishMiningMatchesClosedForm(t *testing.T) {
	g := sim.NewRNG(5)
	tests := []struct {
		alpha, gamma float64
	}{
		{0.2, 0},
		{0.35, 0},
		{0.45, 0},
		{0.3, 0.5},
		{0.4, 1},
	}
	for _, tt := range tests {
		out, err := SimulateSelfishMining(g, tt.alpha, tt.gamma, 400_000)
		if err != nil {
			t.Fatalf("SimulateSelfishMining: %v", err)
		}
		want := SelfishRevenueClosedForm(tt.alpha, tt.gamma)
		if math.Abs(out.RevenueShare-want) > 0.01 {
			t.Fatalf("alpha=%v gamma=%v: revenue %v, closed form %v",
				tt.alpha, tt.gamma, out.RevenueShare, want)
		}
	}
}

func TestSelfishThreshold(t *testing.T) {
	if got := SelfishThreshold(0); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("threshold(0) = %v, want 1/3", got)
	}
	if got := SelfishThreshold(1); math.Abs(got-0) > 1e-12 {
		t.Fatalf("threshold(1) = %v, want 0", got)
	}
	// Below the threshold selfish mining must lose; above it must win.
	g := sim.NewRNG(6)
	below, err := SimulateSelfishMining(g, 0.25, 0, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	if below.Profitable() {
		t.Fatalf("alpha=0.25 gamma=0 should be unprofitable, got share %v", below.RevenueShare)
	}
	above, err := SimulateSelfishMining(g, 0.4, 0, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	if !above.Profitable() {
		t.Fatalf("alpha=0.4 gamma=0 should be profitable, got share %v", above.RevenueShare)
	}
}

func TestSelfishValidation(t *testing.T) {
	g := sim.NewRNG(1)
	if _, err := SimulateSelfishMining(g, 0, 0, 10); err == nil {
		t.Fatal("alpha=0 should error")
	}
	if _, err := SimulateSelfishMining(g, 0.3, 2, 10); err == nil {
		t.Fatal("gamma>1 should error")
	}
}

func TestDoubleSpendClosedFormMatchesNakamoto(t *testing.T) {
	// Values from the Bitcoin paper, section 11 (q=0.1).
	tests := []struct {
		z    int
		want float64
	}{
		{1, 0.2045873},
		{2, 0.0509779},
		{5, 0.0009137},
		{10, 0.0000012},
	}
	for _, tt := range tests {
		got := DoubleSpendProbability(0.1, tt.z)
		if math.Abs(got-tt.want) > 1e-5 {
			t.Fatalf("P(q=0.1, z=%d) = %v, want %v", tt.z, got, tt.want)
		}
	}
	// q=0.3 from the paper: z=5 -> 0.1773523.
	if got := DoubleSpendProbability(0.3, 5); math.Abs(got-0.1773523) > 1e-5 {
		t.Fatalf("P(q=0.3, z=5) = %v, want 0.1773523", got)
	}
}

func TestDoubleSpendEdgeCases(t *testing.T) {
	if DoubleSpendProbability(0, 3) != 0 {
		t.Fatal("q=0 must be 0")
	}
	if DoubleSpendProbability(0.5, 3) != 1 {
		t.Fatal("q>=0.5 must be 1")
	}
	if DoubleSpendProbability(0.1, 0) != 1 {
		t.Fatal("z=0 must be 1 (no confirmations)")
	}
}

func TestDoubleSpendMonteCarloMatchesExactForm(t *testing.T) {
	g := sim.NewRNG(7)
	for _, q := range []float64{0.1, 0.25} {
		for _, z := range []int{1, 3, 6} {
			got, err := SimulateDoubleSpend(g, q, z, 40_000)
			if err != nil {
				t.Fatalf("SimulateDoubleSpend: %v", err)
			}
			want := DoubleSpendProbabilityExact(q, z)
			if math.Abs(got-want) > 0.015 {
				t.Fatalf("q=%v z=%d: monte carlo %v vs exact form %v", q, z, got, want)
			}
		}
	}
}

func TestNakamotoFormIsUpperBoundOfExact(t *testing.T) {
	// Nakamoto's Poisson/tie-wins approximation over-estimates the exact
	// race probability; both decay geometrically in z.
	for _, q := range []float64{0.1, 0.2, 0.3} {
		prev := 1.0
		for z := 1; z <= 8; z++ {
			nak := DoubleSpendProbability(q, z)
			exact := DoubleSpendProbabilityExact(q, z)
			if exact > nak {
				t.Fatalf("exact(%v,%d)=%v exceeds nakamoto=%v", q, z, exact, nak)
			}
			if exact > prev {
				t.Fatalf("exact not decreasing at z=%d for q=%v", z, q)
			}
			prev = exact
		}
	}
}

func TestConfirmationsForRisk(t *testing.T) {
	// Nakamoto's table: q=0.1 requires 5 confirmations for P<0.1%.
	if got := ConfirmationsForRisk(0.1, 0.001, 100); got != 5 {
		t.Fatalf("ConfirmationsForRisk(0.1, 0.1%%) = %d, want 5", got)
	}
	// q=0.45 requires far more.
	if got := ConfirmationsForRisk(0.45, 0.001, 1000); got < 100 {
		t.Fatalf("ConfirmationsForRisk(0.45) = %d, want >= 100", got)
	}
	if got := ConfirmationsForRisk(0.5, 0.001, 10); got != 11 {
		t.Fatalf("unreachable risk should return maxZ+1, got %d", got)
	}
}

func TestThroughputParams(t *testing.T) {
	slow := BitcoinParams(500)
	fast := BitcoinParams(240)
	if tps := slow.TPS(); math.Abs(tps-3.33) > 0.1 {
		t.Fatalf("bitcoin 500B tps = %v, want ~3.3", tps)
	}
	if tps := fast.TPS(); math.Abs(tps-6.94) > 0.15 {
		t.Fatalf("bitcoin 240B tps = %v, want ~7", tps)
	}
	eth := EthereumParams()
	if tps := eth.TPS(); tps < 12 || tps > 18 {
		t.Fatalf("ethereum tps = %v, want ~15", tps)
	}
	if VisaReferenceTPS/slow.TPS() < 1000 {
		t.Fatal("VISA/bitcoin ratio must be >= 3 orders of magnitude")
	}
}

func TestEffectiveSecurityShare(t *testing.T) {
	if got := EffectiveSecurityShare(0); got != 0.5 {
		t.Fatalf("no staleness -> 0.5, got %v", got)
	}
	if got := EffectiveSecurityShare(0.5); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("50%% stale -> 1/3, got %v", got)
	}
	if got := EffectiveSecurityShare(1); got != 0 {
		t.Fatalf("total staleness -> 0, got %v", got)
	}
}

func TestObserveCallback(t *testing.T) {
	s := sim.New(sim.WithSeed(8))
	nw, err := NewNetwork(s, Params{
		BlockInterval:     time.Minute,
		InitialDifficulty: 60,
	}, []float64{1})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	count := 0
	nw.Observe(func(b *ledger.Block, m *Miner) {
		count++
		if m.ID != 0 {
			t.Errorf("unexpected miner id %d", m.ID)
		}
	})
	nw.Start()
	if err := s.RunUntil(100 * time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	nw.Stop()
	if count == 0 || count != nw.BlocksFound() {
		t.Fatalf("observer saw %d blocks, network found %d", count, nw.BlocksFound())
	}
}
