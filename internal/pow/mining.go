// Package pow simulates permissionless proof-of-work blockchains at the
// network level: Poisson block discovery over a miner population, per-miner
// chain views with propagation delay, natural forks and stale blocks,
// difficulty retargeting, selfish mining, and double-spend races.
//
// It supports the paper's claims on permissionless performance (E6 and E7),
// the decentralization/throughput tension behind Buterin's trilemma (E8),
// the broken incentive compatibility shown by Eyal & Sirer (E9), and
// Nakamoto's confirmation-security arithmetic (E17).
package pow

import (
	"errors"
	"time"

	"repro/internal/ledger"
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Params configures a mining network simulation.
type Params struct {
	// BlockInterval is the target average time between blocks.
	BlockInterval time.Duration
	// BlockSize is the block size in bytes (drives propagation delay).
	BlockSize int
	// AvgTxSize is the mean transaction size; BlockSize/AvgTxSize is the
	// per-block transaction capacity.
	AvgTxSize int
	// Propagation draws the per-receiver one-way block propagation delay.
	// If nil, a default of median ~2s per MB with lognormal-ish spread is
	// used (the Decker–Wattenhofer measurement regime). Calibrate against
	// the gossip package for message-level fidelity.
	Propagation func(g *sim.RNG, size int) time.Duration
	// RetargetWindow is the number of blocks between difficulty
	// adjustments (0 disables retargeting).
	RetargetWindow int
	// InitialDifficulty is the expected number of hashes per block at
	// start. With TotalHashrate H and difficulty D, blocks arrive at rate
	// H/D.
	InitialDifficulty float64
}

func (p Params) withDefaults() (Params, error) {
	if p.BlockInterval <= 0 {
		return p, errors.New("pow: BlockInterval must be positive")
	}
	if p.BlockSize <= 0 {
		p.BlockSize = 1_000_000
	}
	if p.AvgTxSize <= 0 {
		p.AvgTxSize = 400
	}
	if p.Propagation == nil {
		p.Propagation = DefaultPropagation
	}
	if p.InitialDifficulty <= 0 {
		p.InitialDifficulty = 1
	}
	return p, nil
}

// DefaultPropagation models block relay delay: a per-hop base latency plus
// bandwidth-bound transfer, with multiplicative jitter. Roughly 2 s median
// per MB — the order measured for Bitcoin before compact blocks.
func DefaultPropagation(g *sim.RNG, size int) time.Duration {
	base := 200 * time.Millisecond
	transfer := time.Duration(float64(size) / 500_000 * float64(time.Second)) // 4 Mbit/s effective
	return g.Jitter(base+transfer, 0.5)
}

// Miner is one mining participant (a solo miner or a pool).
type Miner struct {
	// ID indexes the miner.
	ID int
	// Hashrate is in hashes/second (arbitrary consistent units).
	Hashrate float64

	tipHash ledger.Hash
	tipWork float64

	// Mined counts blocks found; Stale counts those off the final best
	// chain (filled by Finalize).
	Mined int
	Stale int
}

// Network is a PoW mining simulation.
type Network struct {
	sim    *sim.Sim
	rng    *sim.RNG
	params Params

	miners []*Miner
	chain  *ledger.Chain

	difficulty float64
	totalHash  float64
	nextFind   sim.Handle

	blockMiner map[ledger.Hash]int     // block -> miner id
	workCache  map[ledger.Hash]float64 // block -> cumulative work
	found      int

	// WAN-backed relay (NewNetworkOverNet); nil means the abstract
	// Params.Propagation draw is used instead.
	net    *netmodel.Net
	addrs  []netmodel.NodeID
	byAddr map[netmodel.NodeID]*Miner

	// onBlock, when set, observes every block found (before propagation).
	onBlock func(b *ledger.Block, miner *Miner)
}

// NewNetwork creates a mining network with the given per-miner hashrates.
func NewNetwork(s *sim.Sim, params Params, hashrates []float64) (*Network, error) {
	params, err := params.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(hashrates) == 0 {
		return nil, errors.New("pow: need at least one miner")
	}
	genesis := ledger.NewBlock(ledger.Hash{}, nil, 0, params.InitialDifficulty)
	nw := &Network{
		sim:        s,
		rng:        s.Stream("pow"),
		params:     params,
		chain:      ledger.NewChain(genesis),
		difficulty: params.InitialDifficulty,
		blockMiner: make(map[ledger.Hash]int),
		workCache:  make(map[ledger.Hash]float64),
	}
	gh := genesis.Hash()
	nw.workCache[gh] = params.InitialDifficulty
	for i, h := range hashrates {
		if h < 0 {
			return nil, errors.New("pow: negative hashrate")
		}
		nw.miners = append(nw.miners, &Miner{
			ID:       i,
			Hashrate: h,
			tipHash:  gh,
			tipWork:  params.InitialDifficulty,
		})
		nw.totalHash += h
	}
	if nw.totalHash <= 0 {
		return nil, errors.New("pow: zero total hashrate")
	}
	return nw, nil
}

// NewNetworkOverNet creates a mining network whose block relay rides the
// shared WAN transport instead of the abstract Propagation draw: addrs[i]
// is miner i's address on nm, and each found block is broadcast from the
// finder over the transport, so fork and stale-block rates respond to
// regional miner placement, access bandwidth, loss, and partition windows.
// The Net must be dedicated to the miner population — Broadcast blankets
// every node attached to it, so addrs must cover the whole Net (enforced
// here; nodes attached later are ignored by the relay).
func NewNetworkOverNet(s *sim.Sim, nm *netmodel.Net, addrs []netmodel.NodeID, params Params, hashrates []float64) (*Network, error) {
	if nm == nil {
		return nil, errors.New("pow: nil transport")
	}
	if len(addrs) != len(hashrates) {
		return nil, errors.New("pow: need one address per miner")
	}
	if len(addrs) != nm.Size() {
		return nil, errors.New("pow: transport must be dedicated to the miners (one address per attached node)")
	}
	nw, err := NewNetwork(s, params, hashrates)
	if err != nil {
		return nil, err
	}
	nw.net = nm
	nw.addrs = append([]netmodel.NodeID(nil), addrs...)
	nw.byAddr = make(map[netmodel.NodeID]*Miner, len(addrs))
	for i, addr := range addrs {
		if _, dup := nw.byAddr[addr]; dup {
			return nil, errors.New("pow: duplicate miner address")
		}
		nw.byAddr[addr] = nw.miners[i]
	}
	return nw, nil
}

// Chain returns the global block tree (all miners' blocks).
func (nw *Network) Chain() *ledger.Chain { return nw.chain }

// Miners returns the miner list (shared slice; do not modify).
func (nw *Network) Miners() []*Miner { return nw.miners }

// Difficulty returns the current difficulty.
func (nw *Network) Difficulty() float64 { return nw.difficulty }

// BlocksFound returns the total number of blocks found (including stale).
func (nw *Network) BlocksFound() int { return nw.found }

// SetHashrate updates a miner's hashrate (e.g. for growth schedules) and
// reschedules the discovery process.
func (nw *Network) SetHashrate(id int, hashrate float64) {
	if id < 0 || id >= len(nw.miners) || hashrate < 0 {
		return
	}
	nw.totalHash += hashrate - nw.miners[id].Hashrate
	nw.miners[id].Hashrate = hashrate
	if !nw.nextFind.IsZero() {
		nw.nextFind.Cancel()
		nw.scheduleNext()
	}
}

// TotalHashrate returns the current network hashrate.
func (nw *Network) TotalHashrate() float64 { return nw.totalHash }

// Observe registers a callback invoked for every block found.
func (nw *Network) Observe(fn func(b *ledger.Block, miner *Miner)) { nw.onBlock = fn }

// Start begins the mining process. Run the simulator to advance it.
func (nw *Network) Start() { nw.scheduleNext() }

// Stop halts block discovery.
func (nw *Network) Stop() {
	nw.nextFind.Cancel()
	nw.nextFind = sim.Handle{}
}

// scheduleNext draws the time to the next network-wide block discovery.
// Exponential inter-arrival with rate totalHash/difficulty; memorylessness
// makes cancel-and-redraw on parameter changes exact.
func (nw *Network) scheduleNext() {
	rate := nw.totalHash / nw.difficulty // blocks per second
	if rate <= 0 {
		return
	}
	mean := time.Duration(float64(time.Second) / rate)
	nw.nextFind = nw.sim.After(nw.rng.ExpDuration(mean), nw.blockFound)
}

// blockFound attributes the discovery to a miner proportionally to hashrate
// and extends that miner's current tip.
func (nw *Network) blockFound() {
	target := nw.rng.Float64() * nw.totalHash
	var miner *Miner
	var cum float64
	for _, m := range nw.miners {
		cum += m.Hashrate
		if target < cum {
			miner = m
			break
		}
	}
	if miner == nil {
		miner = nw.miners[len(nw.miners)-1]
	}
	b := ledger.NewBlock(miner.tipHash, nil, nw.sim.Now(), nw.difficulty)
	b.Header.Nonce = uint64(nw.found)
	nw.found++
	miner.Mined++
	h := b.Hash()
	nw.blockMiner[h] = miner.ID
	nw.workCache[h] = nw.workCache[b.Header.PrevHash] + b.Header.Difficulty
	newBest, _, err := nw.chain.AddBlock(b)
	if err == nil && newBest && nw.params.RetargetWindow > 0 {
		nw.maybeRetarget()
	}
	// The finder adopts its own block instantly.
	work := nw.workOf(h)
	if work > miner.tipWork {
		miner.tipHash, miner.tipWork = h, work
	}
	if nw.onBlock != nil {
		nw.onBlock(b, miner)
	}
	// Propagate to all other miners: over the WAN transport when attached
	// (partitions, loss and bandwidth apply), otherwise with the abstract
	// per-receiver Propagation draw.
	if nw.net != nil {
		nw.net.Broadcast(nw.addrs[miner.ID], nw.params.BlockSize, func(to netmodel.NodeID) {
			m := nw.byAddr[to]
			if m == nil {
				return // a non-miner node attached after construction
			}
			if work > m.tipWork {
				m.tipHash, m.tipWork = h, work
			}
		})
	} else {
		for _, m := range nw.miners {
			if m == miner {
				continue
			}
			m := m
			delay := nw.params.Propagation(nw.rng, nw.params.BlockSize)
			nw.sim.After(delay, func() {
				if work > m.tipWork {
					m.tipHash, m.tipWork = h, work
				}
			})
		}
	}
	nw.scheduleNext()
}

// workOf returns a block's cumulative work.
func (nw *Network) workOf(h ledger.Hash) float64 { return nw.workCache[h] }

// maybeRetarget adjusts difficulty when the best height crosses a window
// boundary, like Bitcoin's 2016-block rule, clamped to [1/4, 4].
func (nw *Network) maybeRetarget() {
	height := nw.chain.BestHeight()
	window := uint64(nw.params.RetargetWindow)
	if height == 0 || height%window != 0 {
		return
	}
	tip, _ := nw.chain.Block(nw.chain.BestHash())
	cur := tip
	for i := uint64(0); i < window; i++ {
		parent, ok := nw.chain.Block(cur.Header.PrevHash)
		if !ok {
			return
		}
		cur = parent
	}
	actual := tip.Header.Time - cur.Header.Time
	expected := time.Duration(window) * nw.params.BlockInterval
	if actual <= 0 {
		return
	}
	factor := float64(expected) / float64(actual)
	if factor > 4 {
		factor = 4
	}
	if factor < 0.25 {
		factor = 0.25
	}
	nw.difficulty *= factor
	// No rescheduling here: maybeRetarget only runs inside blockFound,
	// which schedules the next discovery after it returns.
}

// Stats summarizes a mining run.
type Stats struct {
	// BlocksFound is the total number of blocks found.
	BlocksFound int
	// BestHeight is the final best-chain height.
	BestHeight uint64
	// StaleBlocks and StaleRate describe blocks off the best chain.
	StaleBlocks int
	StaleRate   float64
	// MeanInterval is the observed mean time between best-chain blocks.
	MeanInterval time.Duration
	// TPS is effective transactions per second given block capacity and
	// the observed best-chain rate.
	TPS float64
	// MinerShares maps miner id to its share of best-chain blocks.
	MinerShares []float64
}

// Finalize computes run statistics and fills each miner's Stale count.
func (nw *Network) Finalize() Stats {
	st := Stats{
		BlocksFound: nw.found,
		BestHeight:  nw.chain.BestHeight(),
	}
	onBest := make(map[ledger.Hash]bool, len(nw.blockMiner))
	for _, h := range nw.chain.BestPath() {
		onBest[h] = true
	}
	wins := make([]int, len(nw.miners))
	for h, minerID := range nw.blockMiner {
		if onBest[h] {
			wins[minerID]++
		} else {
			nw.miners[minerID].Stale++
			st.StaleBlocks++
		}
	}
	if nw.found > 0 {
		st.StaleRate = float64(st.StaleBlocks) / float64(nw.found)
	}
	if st.BestHeight > 0 {
		tip, _ := nw.chain.Block(nw.chain.BestHash())
		st.MeanInterval = time.Duration(float64(tip.Header.Time) / float64(st.BestHeight))
		txPerBlock := float64(nw.params.BlockSize) / float64(nw.params.AvgTxSize)
		if st.MeanInterval > 0 {
			st.TPS = txPerBlock / st.MeanInterval.Seconds()
		}
	}
	st.MinerShares = make([]float64, len(nw.miners))
	if best := int(st.BestHeight); best > 0 {
		for i, w := range wins {
			st.MinerShares[i] = float64(w) / float64(best)
		}
	}
	return st
}
